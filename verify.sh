#!/bin/sh
# Tier-1 verification gate: build, vet, and test with the race
# detector. Every PR must pass this; the concurrent server tests only
# mean something under -race.
set -eux
cd "$(dirname "$0")"
go build ./...
go vet ./...
go test -race ./...
# Smoke the serving-path and offline-pipeline benchmarks (one
# iteration each) so they cannot rot between perf PRs; real numbers
# live in BENCH_link.json and BENCH_offline.json.
go test -run=NONE -bench='Link|PageRank|Build' -benchtime=1x .
# Route/metrics contract guard: every /v1 route answers wrong methods
# with 405 + Allow, and the request-lifecycle series are present in
# the /metrics exposition from the first scrape.
go test -race -run 'TestMethodEnforcement|TestMetricsLifecycleSeries' ./internal/server/
