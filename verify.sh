#!/bin/sh
# Tier-1 verification gate: build, vet, and test with the race
# detector. Every PR must pass this; the concurrent server tests only
# mean something under -race.
set -eux
cd "$(dirname "$0")"
go build ./...
go vet ./...
go test -race ./...
# Smoke the serving-path, offline-pipeline, snapshot, candidate-index,
# streaming, incremental-update and centrality-backend benchmarks (one
# iteration each) so they cannot rot between perf PRs; real numbers
# live in BENCH_link.json, BENCH_offline.json, BENCH_snapshot.json,
# BENCH_candidates.json, BENCH_stream.json, BENCH_incremental.json and
# BENCH_centrality.json.
go test -run=NONE -bench='Link|PageRank|Build|Snapshot|Candidates|Stream|Delta|WarmStart|Centrality' -benchtime=1x .
# Centrality-backend contract: the four-backend comparison harness
# (McNemar against the pagerank baseline) must keep its shape.
go test -run TestCentralityComparisonShape ./internal/experiments/
# Route/metrics contract guard: every /v1 route answers wrong methods
# with 405 + Allow, and the request-lifecycle series are present in
# the /metrics exposition from the first scrape.
go test -race -run 'TestMethodEnforcement|TestMetricsLifecycleSeries' ./internal/server/
# Fuzz smokes, five seconds each: the snapshot reader must never panic
# or over-allocate on hostile headers; the name parser must keep its
# invariants on arbitrary bytes; every trie lookup mode must stay
# equivalent to (or a superset of) the brute-force oracle; the NDJSON
# batch-line parser must never panic or accept an empty mention; the
# delta-op parser must only ever stage patches that merge into a graph
# passing Validate with a live degree cache.
go test -fuzz=FuzzReadBytes -fuzztime=5s -run=FuzzReadBytes ./internal/snapshot/
go test -fuzz=FuzzParse -fuzztime=5s -run=FuzzParse ./internal/namematch/
go test -fuzz=FuzzTrieLookup -fuzztime=5s -run=FuzzTrieLookup ./internal/surftrie/
go test -fuzz=FuzzNDJSONLine -fuzztime=5s -run=FuzzNDJSONLine ./internal/server/
go test -fuzz=FuzzDeltaPatch -fuzztime=5s -run=FuzzDeltaPatch ./internal/server/
# Snapshot CLI round trip: build an artifact from a generated dataset,
# inspect it, and link from it — the binary boot path end to end. Runs
# once per popularity backend: inspect must report the backend that
# built the artifact, and link must serve from it.
SNAPTMP=$(mktemp -d)
trap 'rm -rf "$SNAPTMP"' EXIT
go build -o "$SNAPTMP/shine" ./cmd/shine
"$SNAPTMP/shine" gen -graph "$SNAPTMP/g.hin" -docs "$SNAPTMP/d.json" -seed 7 -authors 40 -numdocs 20
for BACKEND in pagerank degree hits ppr; do
  "$SNAPTMP/shine" snapshot build -graph "$SNAPTMP/g.hin" -docs "$SNAPTMP/d.json" \
    -popularity "$BACKEND" -out "$SNAPTMP/m-$BACKEND.snap"
  "$SNAPTMP/shine" snapshot inspect "$SNAPTMP/m-$BACKEND.snap" | grep "centrality=$BACKEND"
  "$SNAPTMP/shine" link -snapshot "$SNAPTMP/m-$BACKEND.snap" -popularity "$BACKEND" \
    -docs "$SNAPTMP/d.json" | tail -1
done
# A backend mismatch between artifact and flags must refuse to serve.
if "$SNAPTMP/shine" link -snapshot "$SNAPTMP/m-degree.snap" -popularity hits -docs "$SNAPTMP/d.json"; then
  echo "mismatched -popularity accepted" >&2; exit 1
fi
ln -s "$SNAPTMP/m-pagerank.snap" "$SNAPTMP/m.snap"
# Loadgen smoke: boot a server from the artifact and push the same
# synthetic documents through /v1/link and the /v1/link/batch NDJSON
# stream over real HTTP. -max-failures 0 makes any unlinked document,
# truncated stream or missing summary trailer fail the gate.
SERVEPORT=$((19500 + $$ % 500))   # per-run port: a stale server can't shadow us
"$SNAPTMP/shine" serve -snapshot "$SNAPTMP/m.snap" -addr "127.0.0.1:$SERVEPORT" >"$SNAPTMP/serve.log" 2>&1 &
SERVEPID=$!
trap 'kill "$SERVEPID" 2>/dev/null; rm -rf "$SNAPTMP"' EXIT
sleep 1
# A dead server here means the boot failed or the port is taken —
# either way loadgen would test the wrong thing, so fail loudly with
# the server's own log.
kill -0 "$SERVEPID" || { cat "$SNAPTMP/serve.log"; exit 1; }
"$SNAPTMP/shine" loadgen -addr "http://127.0.0.1:$SERVEPORT" -docs 200 -concurrency 4 \
  -warmup 10 -seed 7 -authors 40 -numdocs 20 -wait-ready 30s -max-failures 0 \
  -json "$SNAPTMP/loadgen.json"
# Incremental-update smoke: push a self-contained NDJSON delta (new
# author + paper + venue with edges among them) through the update CLI
# and POST /v1/admin/update — a non-200 fails the gate — then replay
# the load against the swapped-in generation to prove it still serves.
cat >"$SNAPTMP/delta.ndjson" <<'NDJSON'
{"op":"object","type":"author","name":"Delta Smoke Author"}
{"op":"object","type":"venue","name":"Delta Smoke Venue"}
{"op":"object","type":"paper","name":"delta smoke paper"}
{"op":"edge","rel":"write","src":{"type":"author","name":"Delta Smoke Author"},"dst":{"type":"paper","name":"delta smoke paper"}}
{"op":"edge","rel":"publish","src":{"type":"venue","name":"Delta Smoke Venue"},"dst":{"type":"paper","name":"delta smoke paper"}}
NDJSON
"$SNAPTMP/shine" update -addr "http://127.0.0.1:$SERVEPORT" -in "$SNAPTMP/delta.ndjson"
"$SNAPTMP/shine" loadgen -addr "http://127.0.0.1:$SERVEPORT" -docs 50 -concurrency 4 \
  -seed 7 -authors 40 -numdocs 20 -wait-ready 10s -max-failures 0
kill "$SERVEPID"
