// Command shine is the command-line interface to the SHINE entity
// linking system: generating synthetic datasets, inspecting networks
// and meta-paths, linking mentions, and regenerating the paper's
// tables and figures.
//
// Usage:
//
//	shine gen   -graph FILE -docs FILE [flags]   generate a dataset
//	shine stats -graph FILE                      network statistics
//	shine paths [-maxlen N] [-enumerate]         show the meta-path set
//	shine link  -graph FILE -docs FILE [flags]   learn weights and link
//	shine bench -exp NAME [-quick]               regenerate a paper table/figure
//
// Every command is deterministic given its flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"text/tabwriter"
	"time"

	"shine/internal/annotate"
	"shine/internal/bibload"
	"shine/internal/corpus"
	"shine/internal/disambig"
	"shine/internal/experiments"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/obs"
	"shine/internal/server"
	"shine/internal/shine"
	"shine/internal/snapshot"
	"shine/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "disambig":
		err = cmdDisambig(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "paths":
		err = cmdPaths(os.Args[2:])
	case "link":
		err = cmdLink(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "annotate":
		err = cmdAnnotate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "update":
		err = cmdUpdate(os.Args[2:])
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "shine: unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "shine: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `shine - entity linking with heterogeneous information networks

Commands:
  gen    -graph FILE -docs FILE [-seed N] [-authors N] [-groups N] [-numdocs N]
         Generate a synthetic DBLP-schema network and document corpus.
  build  -pubs FILE -graph FILE
         Build a network from JSON-lines publication records
         ({"title", "authors", "venue", "year"}) instead of the
         synthetic generator.
  disambig -pubs FILE -out FILE [-min-shared-terms N]
         Split same-name authors in publication records into distinct
         suffixed entities (run before build on raw records).
  stats  -graph FILE
         Print network statistics.
  dot    -graph FILE -entity NAME [-type author] [-hops N] [-out FILE]
         Export an entity's neighbourhood as Graphviz DOT.
  paths  [-maxlen N] [-enumerate]
         Show the paper's meta-path set (Table 3), or enumerate all
         author-rooted meta-paths up to -maxlen by schema BFS.
  link   -graph FILE -docs FILE [-model FILE] [-snapshot FILE] [-theta F] [-uniform-pop] [-popularity NAME] [-no-learn] [-top N] [-workers N] [-fuzzy N]
         Ingest the documents, learn meta-path weights by EM (or load a
         trained model), link every mention and report accuracy.
         -snapshot skips -graph/-model and restores the whole model
         from a binary artifact. -popularity selects the centrality
         backend behind P(e): pagerank (default), degree, hits or
         ppr (type-personalized PageRank). -fuzzy N retries mentions
         with no exact candidates at edit distance ≤ N (max 2)
         against the surface-form trie — for noisy OCR-style input.
  train  -graph FILE -docs FILE -model FILE [-snapshot FILE] [-theta F] [-uniform-pop] [-popularity NAME] [-workers N]
         Learn meta-path weights by EM and save the trained model.
         -snapshot additionally writes the binary artifact servers
         boot and hot-swap from. -workers bounds offline (centrality)
         and training parallelism (0 = GOMAXPROCS); any worker count
         computes bit-identical scores and learns bit-identical
         weights.
  annotate -graph FILE -docs FILE [-model FILE] [-in FILE] [-min-posterior F]
         Detect every entity mention in raw text (stdin or -in) and
         link each one, printing spans, entities and confidences.
  serve  -graph FILE -docs FILE [-model FILE] [-snapshot FILE]
         [-addr :8080] [-nil-prior F] [-popularity NAME]
         [-metrics=true] [-pprof] [-drain 10s] [-workers N]
         [-timeout D] [-max-inflight N] [-max-queue N] [-fuzzy N]
         Serve the model over HTTP: /v1/link, /v1/annotate,
         /v1/explain, /v1/entity, /v1/healthz, /v1/readyz, plus
         Prometheus metrics at /metrics and optional /debug/pprof
         profiling. -timeout bounds each model-serving request;
         -max-inflight sheds excess load with 429 once its wait
         queue fills. SIGINT/SIGTERM drains in-flight requests
         before exiting. -snapshot boots from a binary artifact
         (no -graph/-docs needed) and enables zero-downtime hot
         swaps: SIGHUP or POST /v1/admin/reload re-reads the
         artifact and atomically swaps the serving model. -fuzzy N
         enables edit-distance candidate fallback on the serving
         endpoints and /v1/candidates?fuzzy=1 (survives hot swaps).
  snapshot build   -graph FILE -docs FILE [-model FILE] [-popularity NAME] [-precompute] -out FILE
         Package a model (trained via -model, or learned on the
         spot) into a versioned, checksummed binary artifact that
         loads in milliseconds. The artifact records which
         -popularity backend produced its popularity section, and
         loading refuses to mix backends.
  snapshot inspect FILE [-json]
         Validate an artifact end to end and print its version,
         checksum, size and contents summary.
  bench  -exp NAME [-quick] [-csv DIR]
         Regenerate a paper experiment. Names: table2, table3, table4,
         table5, fig3, fig4, fig5, fig6, lambda, pruning, sgd,
         calibration, ambiguity, nil, noise, significance, uwalk,
         imdb, centrality, all.
  loadgen -addr URL [-mode single|batch|both] [-docs N] [-concurrency N]
         [-rate F] [-warmup N] [-seed N] [-authors N] [-groups N]
         [-numdocs N] [-wait-ready D] [-max-failures N] [-json FILE]
         Drive a running server with synthetic documents and report
         end-to-end docs/sec and p50/p95/p99 latency per endpoint
         (/v1/link and the /v1/link/batch NDJSON stream). The dataset
         flags must match the server's "shine gen" flags so mentions
         resolve; -max-failures 0 turns the run into a smoke check.
  update -addr URL [-in FILE] [-timeout D]
         Apply an incremental graph delta to a running server via
         POST /v1/admin/update. The input (a file, or stdin with
         "-") is NDJSON, one operation per line:
           {"op":"object","type":"paper","name":"p-9"}
           {"op":"edge","rel":"write","src":{"type":"author","name":"A"},
            "dst":{"type":"paper","name":"p-9"}}
         The batch is transactional (a bad line rejects it all), a
         concurrent reload or update answers 409, and the server
         splices the delta into the serving graph in place of a full
         rebuild: CSR merge, warm-started PageRank and per-entity
         cache invalidation.
`)
}

// ------------------------------------------------------------------- gen

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "output path for the network")
	docsPath := fs.String("docs", "docs.json", "output path for the documents")
	seed := fs.Int64("seed", 1, "generation seed")
	authors := fs.Int("authors", 1800, "number of regular authors")
	groups := fs.Int("groups", 20, "number of ambiguous name groups")
	numDocs := fs.Int("numdocs", 700, "number of documents")
	fs.Parse(args)

	netCfg := synth.DefaultDBLPConfig()
	netCfg.Seed = *seed
	netCfg.RegularAuthors = *authors
	netCfg.AmbiguousGroups = *groups
	docCfg := synth.DefaultDocConfig()
	docCfg.Seed = *seed + 1
	docCfg.NumDocs = *numDocs

	ds, err := synth.BuildDataset(netCfg, docCfg)
	if err != nil {
		return err
	}
	gf, err := os.Create(*graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	if _, err := ds.Data.Graph.WriteTo(gf); err != nil {
		return fmt.Errorf("writing graph: %w", err)
	}
	df, err := os.Create(*docsPath)
	if err != nil {
		return err
	}
	defer df.Close()
	enc := json.NewEncoder(df)
	for _, rd := range ds.RawDocs {
		if err := enc.Encode(rd); err != nil {
			return fmt.Errorf("writing documents: %w", err)
		}
	}
	st := ds.Data.Graph.Stats()
	fmt.Printf("wrote %s (%d objects, %d links) and %s (%d documents)\n",
		*graphPath, st.Objects, st.Links, *docsPath, len(ds.RawDocs))
	return nil
}

// ----------------------------------------------------------------- build

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	pubsPath := fs.String("pubs", "pubs.json", "publication records (JSON lines)")
	graphPath := fs.String("graph", "dataset.hin", "output path for the network")
	fs.Parse(args)

	f, err := os.Open(*pubsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	_, g, st, err := bibload.Load(f)
	if err != nil {
		return err
	}
	out, err := os.Create(*graphPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if _, err := g.WriteTo(out); err != nil {
		return fmt.Errorf("writing graph: %w", err)
	}
	gs := g.Stats()
	fmt.Printf("built %s from %d publications: %d objects, %d links (%d title terms skipped)\n",
		*graphPath, st.Publications, gs.Objects, gs.Links, st.SkippedTerms)
	return nil
}

// -------------------------------------------------------------- disambig

func cmdDisambig(args []string) error {
	fs := flag.NewFlagSet("disambig", flag.ExitOnError)
	pubsPath := fs.String("pubs", "pubs.json", "raw publication records (JSON lines)")
	outPath := fs.String("out", "pubs-disambiguated.json", "output path")
	minShared := fs.Int("min-shared-terms", 2, "shared title stems (with a shared venue) needed to merge records")
	fs.Parse(args)

	in, err := os.Open(*pubsPath)
	if err != nil {
		return err
	}
	defer in.Close()
	var pubs []bibload.Publication
	dec := json.NewDecoder(in)
	for {
		var pub bibload.Publication
		if err := dec.Decode(&pub); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("parsing %s: %w", *pubsPath, err)
		}
		pubs = append(pubs, pub)
	}
	cfg := disambig.DefaultConfig()
	cfg.MinSharedTerms = *minShared
	out, rep, err := disambig.Disambiguate(pubs, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, pub := range out {
		if err := enc.Encode(pub); err != nil {
			return err
		}
	}
	fmt.Printf("examined %d names, split %d into %d total entities; wrote %s\n",
		rep.Names, rep.SplitNames, rep.Entities, *outPath)
	return nil
}

// ----------------------------------------------------------------- stats

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	fs.Parse(args)

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	st := g.Stats()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "objects\t%d\n", st.Objects)
	fmt.Fprintf(tw, "links\t%d\n", st.Links)
	fmt.Fprintf(tw, "isolated\t%d\n", st.Isolated)
	for name, n := range st.ObjectsByTyp {
		fmt.Fprintf(tw, "objects[%s]\t%d\n", name, n)
	}
	for name, n := range st.LinksByRel {
		fmt.Fprintf(tw, "links[%s]\t%d\n", name, n)
	}
	// Degree distributions per (type, forward relation from it).
	schema := g.Schema()
	for ti := 0; ti < schema.NumTypes(); ti++ {
		t := hin.TypeID(ti)
		for _, rel := range schema.RelationsFrom(t) {
			ds, err := g.DegreeDistribution(t, rel)
			if err != nil {
				continue
			}
			fmt.Fprintf(tw, "degree[%s.%s]\tmean %.2f, median %.0f, p99 %d, max %d, gini %.2f\n",
				schema.Type(t).Abbrev, schema.Relation(rel).Name,
				ds.Mean, ds.Median, ds.P99, ds.Max, ds.Gini)
		}
	}
	return tw.Flush()
}

// ------------------------------------------------------------------- dot

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	entity := fs.String("entity", "", "object name to centre on")
	typeName := fs.String("type", "author", "object type of -entity")
	hops := fs.Int("hops", 2, "neighbourhood radius")
	outPath := fs.String("out", "", "output file (default: stdout)")
	fs.Parse(args)

	if *entity == "" {
		return fmt.Errorf("dot: -entity is required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	t, ok := g.Schema().TypeByName(*typeName)
	if !ok {
		return fmt.Errorf("dot: graph has no type %q", *typeName)
	}
	obj, ok := g.Lookup(t, *entity)
	if !ok {
		return fmt.Errorf("dot: no %s named %q", *typeName, *entity)
	}
	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteDOT(w, []hin.ObjectID{obj}, *hops)
}

// ----------------------------------------------------------------- paths

func cmdPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	maxLen := fs.Int("maxlen", 4, "maximum meta-path length for -enumerate")
	enumerate := fs.Bool("enumerate", false, "enumerate all author-rooted paths by schema BFS")
	fs.Parse(args)

	d := hin.NewDBLPSchema()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *enumerate {
		paths, err := metapath.Enumerate(d.Schema, d.Author, *maxLen)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d author-rooted meta-paths up to length %d:\n", len(paths), *maxLen)
		for _, p := range paths {
			fmt.Fprintf(tw, "%s\tlength %d\n", p, p.Len())
		}
		return tw.Flush()
	}
	fmt.Fprintln(tw, "Table 3: meta-paths in the DBLP network")
	fmt.Fprintln(tw, "meta-path\tsemantic meaning")
	semantics := experiments.Table3Semantics()
	for _, p := range metapath.DBLPPaperPaths(d) {
		fmt.Fprintf(tw, "%s\t%s\n", p, semantics[p.String()])
	}
	return tw.Flush()
}

// ------------------------------------------------------------------ link

// loadCorpus reads and ingests a document file against a graph.
func loadCorpus(g *hin.Graph, d *hin.DBLPSchema, docsPath string) (*corpus.Corpus, error) {
	raws, err := loadDocs(docsPath)
	if err != nil {
		return nil, err
	}
	ing, err := corpus.NewIngester(g, corpus.DBLPIngestConfig(d))
	if err != nil {
		return nil, err
	}
	c := &corpus.Corpus{}
	for _, rd := range raws {
		c.Add(ing.Ingest(rd.ID, rd.Mention, rd.Gold, rd.Text))
	}
	return c, nil
}

func cmdLink(args []string) error {
	fs := flag.NewFlagSet("link", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	docsPath := fs.String("docs", "docs.json", "documents file (JSON lines of RawDoc)")
	modelPath := fs.String("model", "", "trained model file (from `shine train`); skips learning")
	snapPath := fs.String("snapshot", "", "binary artifact (from `shine snapshot build`); skips -graph and -model")
	theta := fs.Float64("theta", 0.2, "smoothing parameter θ")
	uniformPop := fs.Bool("uniform-pop", false, "use the uniform popularity model")
	popularity := fs.String("popularity", "", "centrality backend for P(e): pagerank, degree, hits or ppr (default pagerank; with -snapshot, asserts the artifact's backend)")
	noLearn := fs.Bool("no-learn", false, "skip EM learning; use uniform meta-path weights")
	top := fs.Int("top", 0, "print the top-N candidate posteriors per mention")
	workers := fs.Int("workers", 0, "offline-pipeline and training worker goroutines (0 = GOMAXPROCS)")
	precompute := fs.Bool("precompute", false, "eagerly build the frozen entity-mixture index before linking")
	fuzzy := fs.Int("fuzzy", 0, "fall back to edit-distance-N candidate retrieval when the exact rules find none (0 = off, max 2)")
	fs.Parse(args)

	if *snapPath != "" {
		// The artifact carries the graph, so only the documents load
		// from disk.
		snap, err := snapshot.ReadFile(*snapPath)
		if err != nil {
			return err
		}
		if err := checkSnapshotCentrality(snap.Info(), *popularity); err != nil {
			return err
		}
		m, err := snap.Model()
		if err != nil {
			return err
		}
		if err := m.SetFuzzyDistance(*fuzzy); err != nil {
			return err
		}
		fmt.Printf("loaded %s\n", snap.Info())
		g := m.Graph()
		d, err := dblpHandles(g)
		if err != nil {
			return err
		}
		c, err := loadCorpus(g, d, *docsPath)
		if err != nil {
			return err
		}
		return linkCorpus(m, g, c, *top)
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	d, err := dblpHandles(g)
	if err != nil {
		return err
	}
	c, err := loadCorpus(g, d, *docsPath)
	if err != nil {
		return err
	}

	var m *shine.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if m, err = shine.Load(f, g, c); err != nil {
			return fmt.Errorf("loading model: %w", err)
		}
		fmt.Printf("loaded trained model from %s\n", *modelPath)
	} else {
		cfg := shine.DefaultConfig()
		cfg.Theta = *theta
		if *uniformPop {
			cfg.Popularity = shine.PopularityUniform
		}
		if *popularity != "" {
			cfg.Centrality = *popularity
		}
		if *workers > 0 {
			cfg.Workers = *workers
		}
		if m, err = shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, cfg); err != nil {
			return err
		}
		if !*noLearn {
			stats, err := m.Learn(c)
			if err != nil {
				return err
			}
			fmt.Printf("learned weights in %d EM iterations (%d gradient steps, %v/EM iter)\n",
				stats.EMIterations, stats.GDIterations, stats.EMIterTime)
			for i, p := range m.Paths() {
				fmt.Printf("  w(%s) = %.4f\n", p, m.Weights()[i])
			}
		}
	}

	if err := m.SetFuzzyDistance(*fuzzy); err != nil {
		return err
	}
	if *precompute {
		start := time.Now()
		if err := m.PrecomputeMixtures(); err != nil {
			return fmt.Errorf("precomputing mixtures: %w", err)
		}
		fmt.Printf("precomputed %d entity mixtures in %v\n",
			m.MixtureStats().Entries, time.Since(start).Round(time.Millisecond))
	}

	return linkCorpus(m, g, c, *top)
}

// linkCorpus links every document and reports accuracy over the
// labelled ones — shared by the from-scratch and from-snapshot paths
// of `shine link`.
func linkCorpus(m *shine.Model, g *hin.Graph, c *corpus.Corpus, top int) error {
	correct, labelled := 0, 0
	for _, doc := range c.Docs {
		r, err := m.Link(doc)
		if err != nil {
			fmt.Printf("%s\t%q\tUNLINKED: %v\n", doc.ID, doc.Mention, err)
			continue
		}
		fmt.Printf("%s\t%q\t-> %s (posterior %.3f)\n",
			doc.ID, doc.Mention, g.Name(r.Entity), r.Candidates[0].Posterior)
		if top > 0 {
			for i, cs := range r.Candidates {
				if i >= top {
					break
				}
				fmt.Printf("\t\t#%d %s\tposterior %.4f\n", i+1, g.Name(cs.Entity), cs.Posterior)
			}
		}
		if doc.Gold != hin.NoObject {
			labelled++
			if r.Entity == doc.Gold {
				correct++
			}
		}
	}
	if labelled > 0 {
		fmt.Printf("accuracy: %d/%d = %.3f\n", correct, labelled, float64(correct)/float64(labelled))
	}
	return nil
}

// ----------------------------------------------------------------- train

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	docsPath := fs.String("docs", "docs.json", "documents file (JSON lines of RawDoc)")
	modelPath := fs.String("model", "model.json", "output path for the trained model")
	snapPath := fs.String("snapshot", "", "also write the binary artifact servers boot and hot-swap from")
	theta := fs.Float64("theta", 0.2, "smoothing parameter θ")
	uniformPop := fs.Bool("uniform-pop", false, "use the uniform popularity model")
	popularity := fs.String("popularity", "", "centrality backend for P(e): pagerank, degree, hits or ppr (default pagerank)")
	workers := fs.Int("workers", 0, "offline-pipeline and training worker goroutines (0 = GOMAXPROCS)")
	precompute := fs.Bool("precompute", false, "eagerly rebuild the frozen entity-mixture index after each weight install")
	fs.Parse(args)

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	d, err := dblpHandles(g)
	if err != nil {
		return err
	}
	c, err := loadCorpus(g, d, *docsPath)
	if err != nil {
		return err
	}
	cfg := shine.DefaultConfig()
	cfg.Theta = *theta
	if *uniformPop {
		cfg.Popularity = shine.PopularityUniform
	}
	if *popularity != "" {
		cfg.Centrality = *popularity
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.PrecomputeMixtures = *precompute
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, cfg)
	if err != nil {
		return err
	}
	stats, err := m.Learn(c)
	if err != nil {
		return err
	}
	f, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return fmt.Errorf("saving model: %w", err)
	}
	fmt.Printf("trained on %d documents in %d EM iterations (converged=%v); model saved to %s\n",
		c.Len(), stats.EMIterations, stats.Converged, *modelPath)
	if *snapPath != "" {
		info, err := snapshot.WriteFile(*snapPath, m.Parts())
		if err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
		fmt.Printf("wrote %s to %s\n", info, *snapPath)
	}
	return nil
}

// -------------------------------------------------------------- annotate

func cmdAnnotate(args []string) error {
	fs := flag.NewFlagSet("annotate", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	docsPath := fs.String("docs", "docs.json", "documents file (for the generic object model)")
	modelPath := fs.String("model", "", "trained model file; omit to learn on the fly")
	inPath := fs.String("in", "", "text file to annotate (default: stdin)")
	minPosterior := fs.Float64("min-posterior", 0, "suppress annotations below this confidence")
	fs.Parse(args)

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	d, err := dblpHandles(g)
	if err != nil {
		return err
	}
	c, err := loadCorpus(g, d, *docsPath)
	if err != nil {
		return err
	}

	var m *shine.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if m, err = shine.Load(f, g, c); err != nil {
			return err
		}
	} else {
		if m, err = shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig()); err != nil {
			return err
		}
		if _, err := m.Learn(c); err != nil {
			return err
		}
	}

	var text []byte
	if *inPath != "" {
		if text, err = os.ReadFile(*inPath); err != nil {
			return err
		}
	} else {
		if text, err = io.ReadAll(os.Stdin); err != nil {
			return err
		}
	}

	a, err := annotate.New(m, corpus.DBLPIngestConfig(d), annotate.Options{MinPosterior: *minPosterior})
	if err != nil {
		return err
	}
	anns, err := a.Annotate("input", string(text))
	if err != nil {
		return err
	}
	if len(anns) == 0 {
		fmt.Println("no entity mentions found")
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "span\tsurface\tentity\tposterior\tcandidates")
	for _, an := range anns {
		fmt.Fprintf(tw, "[%d,%d)\t%q\t%s\t%.3f\t%d\n",
			an.Start, an.End, an.Surface, an.EntityName, an.Posterior, an.Candidates)
	}
	return tw.Flush()
}

// ----------------------------------------------------------------- serve

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	docsPath := fs.String("docs", "docs.json", "documents file (for the generic object model)")
	modelPath := fs.String("model", "", "trained model file; omit to learn on startup")
	snapPath := fs.String("snapshot", "", "binary artifact to boot from and hot-swap on SIGHUP or POST /v1/admin/reload")
	addr := fs.String("addr", ":8080", "listen address")
	nilPrior := fs.Float64("nil-prior", 0, "enable NIL detection on /v1/link with this prior")
	popularity := fs.String("popularity", "", "centrality backend for P(e) when learning on startup: pagerank, degree, hits or ppr (default pagerank; with -snapshot, asserts the artifact's backend)")
	metricsOn := fs.Bool("metrics", true, "expose Prometheus metrics at GET /metrics")
	pprofOn := fs.Bool("pprof", false, "mount profiling handlers under /debug/pprof/")
	drain := fs.Duration("drain", 10*time.Second, "connection drain deadline on SIGINT/SIGTERM")
	workers := fs.Int("workers", 0, "startup offline-pipeline and training worker goroutines (0 = GOMAXPROCS)")
	precompute := fs.Bool("precompute", false, "build the frozen entity-mixture index before accepting traffic")
	timeout := fs.Duration("timeout", 0, "per-request deadline for model-serving endpoints (0 = none)")
	maxInFlight := fs.Int("max-inflight", 0, "cap on concurrently executing model-serving requests; excess is queued then shed with 429 (0 = unlimited)")
	maxQueued := fs.Int("max-queue", 0, "admission wait-queue depth when -max-inflight is set (0 = same as -max-inflight, negative = no queue)")
	fuzzy := fs.Int("fuzzy", 0, "fall back to edit-distance-N candidate retrieval when the exact rules find none (0 = off, max 2)")
	fs.Parse(args)

	// One registry for the whole process, wired before learning so a
	// startup EM run's iteration metrics are visible on /metrics.
	reg := obs.NewRegistry()
	var m *shine.Model
	var snapInfo *snapshot.Info
	var g *hin.Graph
	if *snapPath != "" {
		// Snapshot boot: the artifact carries graph, weights, config
		// and the frozen mixture index — no -graph/-docs load, no EM.
		loadStart := time.Now()
		snap, err := snapshot.ReadFile(*snapPath)
		if err != nil {
			return err
		}
		if err := checkSnapshotCentrality(snap.Info(), *popularity); err != nil {
			return err
		}
		if m, err = snap.Model(); err != nil {
			return err
		}
		info := snap.Info()
		snapInfo = &info
		g = m.Graph()
		reg.Gauge(server.MetricSnapshotLoadSeconds).Set(time.Since(loadStart).Seconds())
		fmt.Printf("loaded %s in %v\n", info, time.Since(loadStart).Round(time.Millisecond))
	} else {
		buildStart := time.Now()
		var err error
		if g, err = loadGraph(*graphPath); err != nil {
			return err
		}
		reg.Gauge(shine.MetricGraphBuildSeconds).Set(time.Since(buildStart).Seconds())
		d, err := dblpHandles(g)
		if err != nil {
			return err
		}
		c, err := loadCorpus(g, d, *docsPath)
		if err != nil {
			return err
		}
		if *modelPath != "" {
			f, err := os.Open(*modelPath)
			if err != nil {
				return err
			}
			m, err = shine.Load(f, g, c)
			f.Close()
			if err != nil {
				return err
			}
		} else {
			cfg := shine.DefaultConfig()
			if *popularity != "" {
				cfg.Centrality = *popularity
			}
			if *workers > 0 {
				cfg.Workers = *workers
			}
			if m, err = shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, cfg); err != nil {
				return err
			}
			m.SetMetrics(reg)
			if _, err := m.Learn(c); err != nil {
				return err
			}
		}
	}
	d, err := dblpHandles(g)
	if err != nil {
		return err
	}
	srv, err := server.New(m, corpus.DBLPIngestConfig(d), server.Options{
		NILPrior:          *nilPrior,
		Metrics:           reg,
		NoMetricsEndpoint: !*metricsOn,
		Pprof:             *pprofOn,
		Precompute:        *precompute,
		FuzzyDistance:     *fuzzy,
		RequestTimeout:    *timeout,
		MaxInFlight:       *maxInFlight,
		MaxQueued:         *maxQueued,
		SnapshotPath:      *snapPath,
		SnapshotInfo:      snapInfo,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Bound slow-loris header reads and idle keep-alive
		// connections; request bodies are already capped by the
		// server's MaxBodyBytes.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *snapPath != "" {
		// SIGHUP hot-swaps the serving model from the artifact — the
		// same path POST /v1/admin/reload takes, so a deploy can use
		// either `kill -HUP` or the admin endpoint.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if info, err := srv.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "shine: SIGHUP reload failed (still serving previous model): %v\n", err)
				} else {
					fmt.Printf("SIGHUP reload: now serving %s\n", info)
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("serving %d objects on %s (metrics=%v pprof=%v)\n",
		g.NumObjects(), *addr, *metricsOn, *pprofOn)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Second signal kills immediately; first drains in-flight
		// requests up to the deadline.
		stop()
		fmt.Fprintf(os.Stderr, "shine: signal received, draining connections (deadline %v)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return nil
	}
}

// -------------------------------------------------------------- snapshot

// checkSnapshotCentrality asserts that a booted artifact's recorded
// popularity backend matches an explicit -popularity flag. The
// snapshot's config already enforces consistency internally (FromParts
// refuses mixed backends); this check catches the operator error of
// pointing a -popularity override at an artifact built differently,
// where the flag would otherwise be silently ignored.
func checkSnapshotCentrality(info snapshot.Info, popularity string) error {
	if popularity != "" && popularity != info.Centrality {
		return fmt.Errorf("snapshot was built with centrality backend %q, but -popularity requests %q; rebuild the artifact with `shine snapshot build -popularity %s`",
			info.Centrality, popularity, popularity)
	}
	return nil
}

func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: shine snapshot build|inspect [flags]")
	}
	switch args[0] {
	case "build":
		return cmdSnapshotBuild(args[1:])
	case "inspect":
		return cmdSnapshotInspect(args[1:])
	default:
		return fmt.Errorf("unknown snapshot subcommand %q (want build or inspect)", args[0])
	}
}

func cmdSnapshotBuild(args []string) error {
	fs := flag.NewFlagSet("snapshot build", flag.ExitOnError)
	graphPath := fs.String("graph", "dataset.hin", "network file")
	docsPath := fs.String("docs", "docs.json", "documents file (JSON lines of RawDoc)")
	modelPath := fs.String("model", "", "trained model file (from `shine train`); omit to learn here")
	outPath := fs.String("out", "model.snap", "output path for the artifact")
	popularity := fs.String("popularity", "", "centrality backend for P(e) when learning here: pagerank, degree, hits or ppr (default pagerank)")
	workers := fs.Int("workers", 0, "offline-pipeline and training worker goroutines (0 = GOMAXPROCS)")
	precompute := fs.Bool("precompute", true, "bake the frozen entity-mixture index into the artifact so replicas boot warm")
	fs.Parse(args)

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	d, err := dblpHandles(g)
	if err != nil {
		return err
	}
	c, err := loadCorpus(g, d, *docsPath)
	if err != nil {
		return err
	}
	var m *shine.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		m, err = shine.Load(f, g, c)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cfg := shine.DefaultConfig()
		if *popularity != "" {
			cfg.Centrality = *popularity
		}
		if *workers > 0 {
			cfg.Workers = *workers
		}
		if m, err = shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, cfg); err != nil {
			return err
		}
		if _, err := m.Learn(c); err != nil {
			return err
		}
	}
	if *precompute {
		start := time.Now()
		if err := m.PrecomputeMixtures(); err != nil {
			return fmt.Errorf("precomputing mixtures: %w", err)
		}
		fmt.Printf("precomputed %d entity mixtures in %v\n",
			m.MixtureStats().Entries, time.Since(start).Round(time.Millisecond))
	}
	info, err := snapshot.WriteFile(*outPath, m.Parts())
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s to %s\n", info, *outPath)
	return nil
}

func cmdSnapshotInspect(args []string) error {
	fs := flag.NewFlagSet("snapshot inspect", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: shine snapshot inspect FILE [-json]")
	}
	snap, err := snapshot.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap.Info())
	}
	fmt.Println(snap.Info())
	return nil
}

// ----------------------------------------------------------------- bench

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment: table2..5, fig3..6, lambda, pruning, sgd, calibration, ambiguity, nil, noise, significance, uwalk, imdb, centrality, all")
	quick := fs.Bool("quick", false, "use the reduced quick dataset")
	csvDir := fs.String("csv", "", "also write each experiment's data as CSV into this directory")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	fs.Parse(args)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shine: writing heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "shine: writing heap profile: %v\n", err)
			}
		}()
	}

	writeCSV := func(name string, header []string, rows [][]string) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return experiments.WriteCSV(f, header, rows)
	}

	var env *experiments.Env
	var err error
	if *quick {
		env, err = experiments.QuickEnv()
	} else {
		env, err = experiments.DefaultEnv()
	}
	if err != nil {
		return err
	}
	st := env.DS.Data.Graph.Stats()
	fmt.Printf("dataset: %d objects, %d links, %d documents\n\n", st.Objects, st.Links, env.DS.Corpus.Len())

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table2") {
		ran = true
		r, err := env.Table2()
		if err != nil {
			return err
		}
		r.WriteTo(os.Stdout)
		h, rows := r.CSV()
		if err := writeCSV("table2", h, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("table3") {
		ran = true
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Table 3: meta-paths in the DBLP network")
		for _, row := range env.Table3() {
			fmt.Fprintf(tw, "%s\t%s\n", row.Path, row.Semantic)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("table4") {
		ran = true
		r, err := env.Table4()
		if err != nil {
			return err
		}
		r.WriteTo(os.Stdout)
		h, rows := r.CSV()
		if err := writeCSV("table4", h, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("table5") {
		ran = true
		r, err := env.Table5()
		if err != nil {
			return err
		}
		r.WriteTo(os.Stdout)
		h, rows := r.CSV()
		if err := writeCSV("table5", h, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("fig3") {
		ran = true
		rows, err := env.Figure3()
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Figure 3: entity object model Pe(v) per candidate")
		fmt.Fprintln(tw, "candidate\tobject\ttype\tPe(v)")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.5g\n", r.Candidate, r.Object, r.Type, r.Prob)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("fig4") || want("fig4a") || want("fig4b") {
		ran = true
		sizes := []int{100, 200, 300, 400, 500, 600, 700}
		if *quick {
			sizes = []int{30, 60, 90, 120}
		}
		r, err := env.Figure4(sizes)
		if err != nil {
			return err
		}
		r.WriteTo(os.Stdout)
		h, rows := r.CSV()
		if err := writeCSV("figure4", h, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("fig5") {
		ran = true
		pts, err := env.Figure5(nil)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Figure 5 (Section 5.4): accuracy vs theta")
		fmt.Fprintln(tw, "theta\taccuracy")
		for _, p := range pts {
			fmt.Fprintf(tw, "%.1f\t%.3f\n", p.Theta, p.Accuracy)
		}
		tw.Flush()
		h, rows := experiments.Figure5CSV(pts)
		if err := writeCSV("figure5", h, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("fig6") {
		ran = true
		rows, stats, err := env.Figure6()
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "Figure 6 (Section 5.5): learned meta-path weights (%d EM iterations)\n", stats.EMIterations)
		fmt.Fprintln(tw, "meta-path\tweight")
		for _, r := range rows {
			fmt.Fprintf(tw, "%s\t%.4f\n", r.Path, r.Weight)
		}
		tw.Flush()
		h, csvRows := experiments.Figure6CSV(rows)
		if err := writeCSV("figure6", h, csvRows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("lambda") {
		ran = true
		pts, err := env.LambdaSweep(nil)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Ablation: PageRank damping λ vs accuracy")
		fmt.Fprintln(tw, "lambda\taccuracy")
		for _, p := range pts {
			fmt.Fprintf(tw, "%.1f\t%.3f\n", p.Lambda, p.Accuracy)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("pruning") {
		ran = true
		pts, err := env.PruningSweep(nil)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Ablation: walk pruning (top-k support) vs accuracy and learn time")
		fmt.Fprintln(tw, "max support\taccuracy\tlearn time")
		for _, p := range pts {
			label := fmt.Sprintf("%d", p.MaxSupport)
			if p.MaxSupport == 0 {
				label = "exact"
			}
			fmt.Fprintf(tw, "%s\t%.3f\t%v\n", label, p.Accuracy, p.LearnTime.Round(time.Millisecond))
		}
		tw.Flush()
		fmt.Println()
	}
	if want("sgd") {
		ran = true
		batch := 100
		if *quick {
			batch = 20
		}
		cmp, err := env.CompareSGD(batch)
		if err != nil {
			return err
		}
		fmt.Printf("Ablation: full-batch vs stochastic M-step (batch %d)\n", batch)
		fmt.Printf("full: accuracy %.3f, %v per EM iteration\n", cmp.FullAccuracy, cmp.FullEMIter)
		fmt.Printf("sgd:  accuracy %.3f, %v per EM iteration\n", cmp.SGDAccuracy, cmp.SGDEMIter)
		fmt.Println()
	}
	if want("calibration") {
		ran = true
		r, err := env.Calibration(10)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "Extra: posterior calibration (ECE %.3f)\n", r.ECE)
		fmt.Fprintln(tw, "posterior bin\tmentions\tmean posterior\taccuracy")
		for _, b := range r.Bins {
			if b.Count == 0 {
				continue
			}
			fmt.Fprintf(tw, "[%.1f, %.1f)\t%d\t%.3f\t%.3f\n", b.Lo, b.Hi, b.Count, b.MeanPosterior, b.Accuracy)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("ambiguity") {
		ran = true
		pts, err := env.AmbiguityBreakdown()
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Extra: accuracy by candidate-set size")
		fmt.Fprintln(tw, "candidates\tmentions\taccuracy")
		for _, p := range pts {
			hi := fmt.Sprintf("%d", p.MaxCands)
			if p.MaxCands > 1000 {
				hi = "+"
			}
			fmt.Fprintf(tw, "%d-%s\t%d\t%.3f\n", p.MinCands, hi, p.Mentions, p.Accuracy)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("noise") {
		ran = true
		netCfg := synth.DefaultDBLPConfig()
		docCfg := synth.DefaultDocConfig()
		if *quick {
			netCfg.RegularAuthors = 400
			netCfg.AmbiguousGroups = 8
			docCfg.NumDocs = 120
		}
		pts, err := env.NoiseSweep(netCfg, docCfg, nil)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Extra: robustness to document noise")
		fmt.Fprintln(tw, "noise terms\tVSim\tSHINEall")
		for _, p := range pts {
			fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", p.NoiseTerms, p.VSim, p.SHINEall)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("uwalk") {
		ran = true
		r, err := env.WalkAblation()
		if err != nil {
			return err
		}
		fmt.Println("Extra: meta-path constraints vs unconstrained uniform walks")
		fmt.Printf("unconstrained walks %.3f\nSHINEall            %.3f\n\n", r.Unconstrained, r.SHINEall)
	}
	if want("nil") {
		ran = true
		netCfg := synth.DefaultDBLPConfig()
		docCfg := synth.DefaultDocConfig()
		if *quick {
			netCfg.RegularAuthors = 400
			netCfg.AmbiguousGroups = 8
			docCfg.NumDocs = 120
		}
		pts, err := experiments.NILSweep(netCfg, docCfg, nil)
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Extra: NIL detection (future work of Section 2.2) — prior sweep")
		fmt.Fprintln(tw, "NIL prior\taccuracy\tNIL recall\tfalse-NIL rate")
		for _, p := range pts {
			fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.3f\n", p.Prior, p.Accuracy, p.NILRecall, p.FalseNILRate)
		}
		tw.Flush()
		fmt.Println()
	}
	if want("significance") {
		ran = true
		r, err := env.Significance()
		if err != nil {
			return err
		}
		fmt.Println("Extra: McNemar's test, SHINEall vs VSim")
		fmt.Printf("accuracy: SHINEall %.3f, VSim %.3f\n", r.SHINEAccuracy, r.VSimAccuracy)
		fmt.Printf("discordant pairs: %d only-SHINE vs %d only-VSim; p = %.2g (exact=%v)\n",
			r.McNemar.OnlyA, r.McNemar.OnlyB, r.McNemar.PValue, r.McNemar.Exact)
		if r.McNemar.Significant(0.05) {
			fmt.Println("difference significant at the 0.05 level")
		} else {
			fmt.Println("difference NOT significant at the 0.05 level")
		}
		fmt.Println()
	}
	if want("centrality") {
		ran = true
		r, err := env.CentralityComparison()
		if err != nil {
			return err
		}
		r.WriteTo(os.Stdout)
		h, rows := r.CSV()
		if err := writeCSV("centrality", h, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if want("imdb") {
		ran = true
		cfg := synth.DefaultIMDBConfig()
		if *quick {
			cfg.RegularActors = 150
			cfg.NumDocs = 40
		}
		r, err := experiments.IMDBComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Extra: schema generality — actor linking over IMDb (%d documents)\n", r.Documents)
		fmt.Printf("POP   %.3f\nSHINE %.3f  (EM converged in %d iterations)\n\n", r.POP, r.SHINE, r.EMIterations)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// --------------------------------------------------------------- helpers

func loadGraph(path string) (*hin.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hin.ReadGraph(f)
}

func loadDocs(path string) ([]synth.RawDoc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var out []synth.RawDoc
	for {
		var rd synth.RawDoc
		if err := dec.Decode(&rd); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		out = append(out, rd)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no documents", path)
	}
	return out, nil
}

// dblpHandles reconstructs the DBLP schema handles from a loaded
// graph by looking up the canonical type and relation names.
func dblpHandles(g *hin.Graph) (*hin.DBLPSchema, error) {
	s := g.Schema()
	d := &hin.DBLPSchema{Schema: s}
	var ok bool
	lookups := []struct {
		id   *hin.TypeID
		name string
	}{
		{&d.Author, "author"}, {&d.Paper, "paper"}, {&d.Venue, "venue"},
		{&d.Term, "term"}, {&d.Year, "year"},
	}
	for _, l := range lookups {
		if *l.id, ok = s.TypeByName(l.name); !ok {
			return nil, fmt.Errorf("graph has no %q type; not a DBLP-schema network", l.name)
		}
	}
	rels := []struct {
		id   *hin.RelationID
		name string
	}{
		{&d.Write, "write"}, {&d.Publish, "publish"},
		{&d.Contain, "contain"}, {&d.PublishedIn, "publishedIn"},
	}
	for _, l := range rels {
		if *l.id, ok = s.RelationByName(l.name); !ok {
			return nil, fmt.Errorf("graph has no %q relation; not a DBLP-schema network", l.name)
		}
	}
	d.WrittenBy = s.Inverse(d.Write)
	d.PublishedAt = s.Inverse(d.Publish)
	d.ContainedIn = s.Inverse(d.Contain)
	d.YearOf = s.Inverse(d.PublishedIn)
	return d, nil
}
