package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shine/internal/synth"
)

// cmdLoadgen drives a running shine server with synthetic documents
// and reports end-to-end throughput and latency percentiles — the
// numbers that matter for capacity planning, measured through the real
// HTTP stack rather than in-process benchmarks.
//
// The generator regenerates the same synthetic dataset the server was
// built from (same -seed/-authors/-groups), so every mention resolves
// against the server's graph and a healthy run has zero failures.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the server under test")
	mode := fs.String("mode", "both", "endpoint to drive: single (/v1/link), batch (/v1/link/batch) or both")
	docs := fs.Int("docs", 1000, "number of documents to send per mode")
	concurrency := fs.Int("concurrency", 8, "concurrent requests (single) or concurrent batch streams (batch)")
	rate := fs.Float64("rate", 0, "target offered load in docs/sec across all workers (0 = unlimited)")
	warmup := fs.Int("warmup", 50, "untimed warmup requests before measurement")
	seed := fs.Int64("seed", 1, "dataset seed; must match the server's `shine gen -seed`")
	authors := fs.Int("authors", 1800, "dataset regular authors; must match the server's graph")
	groups := fs.Int("groups", 20, "dataset ambiguous name groups; must match the server's graph")
	numDocs := fs.Int("numdocs", 700, "generated document pool size (cycled when -docs exceeds it)")
	waitReady := fs.Duration("wait-ready", 0, "poll /v1/readyz up to this long before starting (0 = don't wait)")
	maxFailures := fs.Int("max-failures", -1, "exit non-zero when a mode exceeds this many failed documents (-1 = don't enforce)")
	jsonPath := fs.String("json", "", "also write the report as JSON to this file")
	fs.Parse(args)

	if *mode != "single" && *mode != "batch" && *mode != "both" {
		return fmt.Errorf("loadgen: unknown -mode %q (want single, batch or both)", *mode)
	}
	base := strings.TrimRight(*addr, "/")

	netCfg := synth.DefaultDBLPConfig()
	netCfg.Seed = *seed
	netCfg.RegularAuthors = *authors
	netCfg.AmbiguousGroups = *groups
	docCfg := synth.DefaultDocConfig()
	docCfg.Seed = *seed + 1
	docCfg.NumDocs = *numDocs
	ds, err := synth.BuildDataset(netCfg, docCfg)
	if err != nil {
		return err
	}
	pool := ds.RawDocs
	fmt.Printf("generated %d documents (seed %d); target %s\n", len(pool), *seed, base)

	client := &http.Client{} // batch responses stream; no client deadline
	if *waitReady > 0 {
		if err := waitForReady(client, base, *waitReady); err != nil {
			return err
		}
	}

	report := loadReport{Target: base, Docs: *docs, Concurrency: *concurrency, Rate: *rate}
	runs := []string{*mode}
	if *mode == "both" {
		runs = []string{"single", "batch"}
	}
	for _, m := range runs {
		var res *modeResult
		var err error
		switch m {
		case "single":
			res, err = runSingle(client, base, pool, *docs, *concurrency, *rate, *warmup)
		case "batch":
			res, err = runBatch(client, base, pool, *docs, *concurrency, *rate)
		}
		if err != nil {
			return fmt.Errorf("loadgen %s: %w", m, err)
		}
		report.Modes = append(report.Modes, *res)
		fmt.Printf("%-7s %8.1f docs/sec   p50 %6.2fms  p95 %6.2fms  p99 %6.2fms   %d/%d failed (%.2fs wall)\n",
			m, res.DocsPerSec, res.P50Millis, res.P95Millis, res.P99Millis, res.Failures, res.Docs, res.Seconds)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(report)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing %s: %w", *jsonPath, err)
		}
	}
	if *maxFailures >= 0 {
		for _, res := range report.Modes {
			if res.Failures > *maxFailures {
				return fmt.Errorf("loadgen: %s mode failed %d documents (limit %d)", res.Mode, res.Failures, *maxFailures)
			}
		}
	}
	return nil
}

// loadReport is the machine-readable output of one loadgen run.
type loadReport struct {
	Target      string       `json:"target"`
	Docs        int          `json:"docs"`
	Concurrency int          `json:"concurrency"`
	Rate        float64      `json:"rate,omitempty"`
	Modes       []modeResult `json:"modes"`
}

// modeResult is the measurement for one endpoint mode.
type modeResult struct {
	Mode       string  `json:"mode"`
	Docs       int     `json:"docs"`
	Failures   int     `json:"failures"`
	Seconds    float64 `json:"seconds"`
	DocsPerSec float64 `json:"docs_per_sec"`
	P50Millis  float64 `json:"p50_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
}

// waitForReady polls /v1/readyz until the server answers 200 or the
// deadline passes — lets a fresh `shine serve` finish booting before
// the load starts.
func waitForReady(client *http.Client, base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/v1/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v", base, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// rateGate returns a channel ticking at the target docs/sec, or nil
// for unlimited load (a nil channel never blocks the senders' select).
func rateGate(ctx context.Context, rate float64) <-chan struct{} {
	if rate <= 0 {
		return nil
	}
	ch := make(chan struct{})
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				close(ch)
				return
			case <-tick.C:
				select {
				case ch <- struct{}{}:
				case <-ctx.Done():
					close(ch)
					return
				}
			}
		}
	}()
	return ch
}

// runSingle drives POST /v1/link with one request per document from a
// pool of worker goroutines, recording per-request latency.
func runSingle(client *http.Client, base string, pool []synth.RawDoc, docs, concurrency int, rate float64, warmup int) (*modeResult, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	post := func(rd synth.RawDoc) (int, error) {
		body, _ := json.Marshal(struct {
			Mention string `json:"mention"`
			Text    string `json:"text"`
		}{rd.Mention, rd.Text})
		resp, err := client.Post(base+"/v1/link", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Warmup: serial, untimed, primes the server's caches and the
	// client's connection pool.
	for i := 0; i < warmup; i++ {
		if _, err := post(pool[i%len(pool)]); err != nil {
			return nil, fmt.Errorf("warmup request: %w", err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := rateGate(ctx, rate)
	jobs := make(chan synth.RawDoc)
	latencies := make([]time.Duration, docs)
	var next, failures int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rd := range jobs {
				if gate != nil {
					<-gate
				}
				slot := atomic.AddInt64(&next, 1) - 1
				t0 := time.Now()
				code, err := post(rd)
				latencies[slot] = time.Since(t0)
				if err != nil || code != http.StatusOK {
					atomic.AddInt64(&failures, 1)
				}
			}
		}()
	}
	for i := 0; i < docs; i++ {
		jobs <- pool[i%len(pool)]
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	return summarize("single", docs, int(failures), wall, latencies), nil
}

// runBatch streams the documents through POST /v1/link/batch as
// concurrent NDJSON streams, recording per-line completion gaps as the
// per-document latency proxy (the pipeline overlaps work, so a line's
// inter-arrival gap is its marginal service time).
func runBatch(client *http.Client, base string, pool []synth.RawDoc, docs, concurrency int, rate float64) (*modeResult, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > docs {
		concurrency = docs
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := rateGate(ctx, rate)

	type streamOut struct {
		latencies []time.Duration
		answered  int
		failures  int
		err       error
	}
	outs := make([]streamOut, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		// Split the document load across the streams; the first
		// streams take the remainder.
		share := docs / concurrency
		if w < docs%concurrency {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			outs[w] = driveBatchStream(client, base, pool, w, share, gate)
		}(w, share)
	}
	wg.Wait()
	wall := time.Since(start)

	var latencies []time.Duration
	answered, failures := 0, 0
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		latencies = append(latencies, o.latencies...)
		answered += o.answered
		failures += o.failures
	}
	// Lines the server never answered (cut stream) count as failures.
	failures += docs - answered
	return summarize("batch", docs, failures, wall, latencies), nil
}

// driveBatchStream runs one NDJSON request. The request body is
// composed up front (HTTP/1.x clients are not full-duplex: once the
// server's streamed response begins, the transport stops sending the
// rest of a piped request body, silently truncating the batch); the
// rate gate therefore paces document admission, not upload bytes. The
// response is read line by line as the server flushes it.
func driveBatchStream(client *http.Client, base string, pool []synth.RawDoc, stream, share int, gate <-chan struct{}) (out struct {
	latencies []time.Duration
	answered  int
	failures  int
	err       error
}) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := 0; i < share; i++ {
		if gate != nil {
			<-gate
		}
		rd := pool[(stream+i*7)%len(pool)]
		line := struct {
			ID      string `json:"id"`
			Mention string `json:"mention"`
			Text    string `json:"text"`
		}{fmt.Sprintf("s%d-%d", stream, i), rd.Mention, rd.Text}
		if err := enc.Encode(line); err != nil {
			out.err = err
			return
		}
	}

	resp, err := client.Post(base+"/v1/link/batch", "application/x-ndjson", &body)
	if err != nil {
		out.err = err
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		out.err = fmt.Errorf("batch stream: status %d: %s", resp.StatusCode, body)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawTrailer := false
	prev := time.Now()
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		if bytes.Contains(raw, []byte(`"summary"`)) {
			var tr struct {
				Summary struct {
					Docs     int `json:"docs"`
					Failures int `json:"failures"`
				} `json:"summary"`
			}
			if err := json.Unmarshal(raw, &tr); err == nil {
				sawTrailer = true
				out.failures += tr.Summary.Failures
			}
			continue
		}
		now := time.Now()
		out.latencies = append(out.latencies, now.Sub(prev))
		prev = now
		out.answered++
	}
	if err := sc.Err(); err != nil {
		out.err = fmt.Errorf("batch stream: reading response: %w", err)
		return
	}
	if !sawTrailer {
		out.err = fmt.Errorf("batch stream: response ended without a summary trailer (cut stream)")
	}
	return
}

// summarize folds raw latencies into the per-mode report row.
func summarize(mode string, docs, failures int, wall time.Duration, latencies []time.Duration) *modeResult {
	slices.Sort(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	res := &modeResult{
		Mode:      mode,
		Docs:      docs,
		Failures:  failures,
		Seconds:   wall.Seconds(),
		P50Millis: pct(0.50),
		P95Millis: pct(0.95),
		P99Millis: pct(0.99),
	}
	if wall > 0 {
		res.DocsPerSec = float64(docs) / wall.Seconds()
	}
	return res
}
