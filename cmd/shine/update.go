package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// cmdUpdate pushes an NDJSON graph delta batch to a running server's
// POST /v1/admin/update — the operational face of incremental HIN
// updates. The batch is applied transactionally: a malformed line
// rejects the whole batch, a concurrent reload or update answers 409,
// and on success the server prints the update stats it returned (new
// objects/edges, invalidation ball size, cache survival counts,
// warm-PageRank sweeps).
func cmdUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the server to update")
	in := fs.String("in", "-", "NDJSON delta file (\"-\" reads stdin)")
	timeout := fs.Duration("timeout", 2*time.Minute, "request deadline")
	fs.Parse(args)

	var body io.Reader
	if *in == "-" {
		body = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		body = f
	}

	url := strings.TrimRight(*addr, "/") + "/v1/admin/update"
	req, err := http.NewRequest(http.MethodPost, url, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("update: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("update: reading response: %w", err)
	}
	out := strings.TrimSpace(string(payload))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("update: server answered %s: %s", resp.Status, out)
	}
	fmt.Println(out)
	return nil
}
