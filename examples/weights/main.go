// Weights: inspect how the unsupervised EM learner (Algorithm 1)
// behaves — the objective trajectory, per-M-step gains, and how the
// learned meta-path weights shift mass onto discriminative paths
// (the paper's Section 5.5 investigation).
//
// Run with:
//
//	go run ./examples/weights
package main

import (
	"fmt"
	"log"

	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/synth"
)

func main() {
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 600
	net.AmbiguousGroups = 10
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 200
	ds, err := synth.BuildDataset(net, doc)
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Data.Schema

	m, err := shine.New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, shine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial weights (uniform before learning):")
	printWeights(m)

	stats, err := m.Learn(ds.Corpus)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nEM trace (%d iterations, converged=%v):\n", stats.EMIterations, stats.Converged)
	fmt.Println("iter  objective J       M-step gain")
	for i := range stats.Objective {
		fmt.Printf("%4d  %14.2f  %12.4f\n", i+1, stats.Objective[i], stats.MStepGain[i])
	}
	fmt.Printf("avg time: %v per EM iteration, %v per gradient step\n",
		stats.EMIterTime, stats.GDIterTime)

	fmt.Println("\nweight evolution across EM iterations:")
	fmt.Printf("%-10s", "path")
	for i := range stats.Weights {
		fmt.Printf("  iter%-2d", i+1)
	}
	fmt.Println()
	for pi, p := range m.Paths() {
		fmt.Printf("%-10s", p)
		for _, w := range stats.Weights {
			fmt.Printf("  %.4f", w[pi])
		}
		fmt.Println()
	}

	fmt.Println("\nfinal learned weights:")
	printWeights(m)
}

func printWeights(m *shine.Model) {
	for i, p := range m.Paths() {
		fmt.Printf("  %-10s %.4f\n", p, m.Weights()[i])
	}
}
