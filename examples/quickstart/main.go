// Quickstart: build a tiny DBLP-style network by hand, write one Web
// document, and link its ambiguous "Wei Wang" mention — the paper's
// Figure 1 scenario at miniature scale.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
)

func main() {
	// 1. Build the heterogeneous information network. Two authors
	// share the name "Wei Wang": one at UCLA publishing data mining
	// papers at SIGMOD with Richard R. Muntz, one publishing theory
	// papers at STOC.
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)

	ucla := b.MustAddObject(d.Author, "Wei Wang 0001")
	theory := b.MustAddObject(d.Author, "Wei Wang 0002")
	muntz := b.MustAddObject(d.Author, "Richard R. Muntz")
	sigmod := b.MustAddObject(d.Venue, "SIGMOD")
	stoc := b.MustAddObject(d.Venue, "STOC")
	data := b.MustAddObject(d.Term, "data")
	mine := b.MustAddObject(d.Term, "mine") // Porter stem of "mining"
	proof := b.MustAddObject(d.Term, "proof")
	y1999 := b.MustAddObject(d.Year, "1999")

	for i := 0; i < 4; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("ucla-p%d", i))
		b.MustAddLink(d.Write, ucla, p)
		b.MustAddLink(d.Write, muntz, p)
		b.MustAddLink(d.Publish, sigmod, p)
		b.MustAddLink(d.Contain, p, data)
		b.MustAddLink(d.Contain, p, mine)
		b.MustAddLink(d.PublishedIn, p, y1999)
	}
	p := b.MustAddObject(d.Paper, "theory-p0")
	b.MustAddLink(d.Write, theory, p)
	b.MustAddLink(d.Publish, stoc, p)
	b.MustAddLink(d.Contain, p, proof)
	b.MustAddLink(d.PublishedIn, p, y1999)

	g := b.Build()
	fmt.Printf("network: %d objects, %d links\n", g.NumObjects(), g.NumLinks())

	// 2. Ingest a raw Web document through the preprocessing pipeline:
	// tokenisation, dictionary matching of author and venue names,
	// year recognition, stop-word filtering and stemming.
	ing, err := corpus.NewIngester(g, corpus.DBLPIngestConfig(d))
	if err != nil {
		log.Fatal(err)
	}
	text := "Wei Wang received a Ph.D in 1999 under the supervision of " +
		"Prof. Richard R. Muntz. Her research interests include data " +
		"mining. She has published at SIGMOD."
	doc := ing.Ingest("homepage", "Wei Wang", hin.NoObject, text)
	fmt.Printf("document ingested into %d typed objects\n", doc.TotalCount())

	c := &corpus.Corpus{}
	c.Add(doc)

	// 3. Build the SHINE model with the paper's ten meta-paths and
	// link the mention.
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Link(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmention %q links to %q\n", doc.Mention, g.Name(res.Entity))
	for _, cs := range res.Candidates {
		fmt.Printf("  %-16s posterior %.4f  (popularity %.4f)\n",
			g.Name(cs.Entity), cs.Posterior, m.Popularity(cs.Entity))
	}
}
