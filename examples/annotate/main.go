// Annotate: the paper's text-annotation application (Section 1) — a
// reader-facing pipeline that detects every entity mention in a raw
// Web page, links each one against the network, and explains the
// decision evidence the way a production system's debug view would.
//
// Run with:
//
//	go run ./examples/annotate
package main

import (
	"fmt"
	"log"

	"shine/internal/annotate"
	"shine/internal/corpus"
	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/synth"
)

func main() {
	// Generate a small network and seed corpus, and train the model.
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 400
	net.AmbiguousGroups = 8
	net.Topics = 4
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 120
	ds, err := synth.BuildDataset(net, doc)
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Data.Schema
	m, err := shine.New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, shine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Learn(ds.Corpus); err != nil {
		log.Fatal(err)
	}

	a, err := annotate.New(m, corpus.DBLPIngestConfig(d), annotate.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Annotate a fresh page about one ambiguous author. The generator
	// gives us gold, so we can check the annotation; a real deployment
	// would render the spans as links.
	page := ds.RawDocs[0]
	fmt.Printf("page text:\n  %s\n\n", page.Text)
	anns, err := a.Annotate(page.ID, page.Text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d mentions detected and linked:\n", len(anns))
	for _, an := range anns {
		marker := ""
		if an.Surface == page.Mention && an.Entity == page.Gold {
			marker = "  <- matches gold"
		}
		fmt.Printf("  [%3d,%3d) %-22q -> %-22s posterior %.3f (%d candidates)%s\n",
			an.Start, an.End, an.Surface, an.EntityName, an.Posterior, an.Candidates, marker)
	}

	// Explain the headline mention's linking decision.
	ing := ds.Ingester
	docObj := ing.Ingest("explain", page.Mention, page.Gold, page.Text)
	ex, err := m.Explain(docObj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhy %q -> %s (margin %.2f over %s):\n",
		page.Mention, ds.Data.Graph.Name(ex.Entity), ex.Margin, ds.Data.Graph.Name(ex.RunnerUp))
	fmt.Printf("  popularity prior: %+.3f\n", ex.PopularityLogOdds)
	for i, oc := range ex.Objects {
		if i == 5 {
			fmt.Printf("  … %d more objects\n", len(ex.Objects)-5)
			break
		}
		fmt.Printf("  %-20s (%s) x%d: %+.3f\n", oc.Name, oc.Type, oc.Count, oc.LogOdds)
	}
}
