// Populate: the paper's motivating application (Section 1) and its
// Section 4 extension worked end to end.
//
//  1. Link an ambiguous mention against the network.
//  2. Populate an extracted affiliation fact ("Wei Wang" —
//     isAffiliatedWith -> "UCLA") into the network under the linked
//     entity, creating the organization type on the fly.
//  3. Add the new meta-path A-ORG to the model's path set, exactly as
//     Section 4 describes, and observe the enriched network resolving
//     a document that was previously ambiguous.
//
// Run with:
//
//	go run ./examples/populate
package main

import (
	"fmt"
	"log"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/populate"
	"shine/internal/shine"
)

func main() {
	// A deliberately symmetric network: two authors named Wei Wang
	// with near-identical publication behaviour, so context alone
	// cannot separate them.
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	w1 := b.MustAddObject(d.Author, "Wei Wang 0001")
	w2 := b.MustAddObject(d.Author, "Wei Wang 0002")
	sigmod := b.MustAddObject(d.Venue, "SIGMOD")
	data := b.MustAddObject(d.Term, "data")
	for i, a := range []hin.ObjectID{w1, w2} {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("p%d", i))
		b.MustAddLink(d.Write, a, p)
		b.MustAddLink(d.Publish, sigmod, p)
		b.MustAddLink(d.Contain, p, data)
	}
	g := b.Build()

	doc := corpus.NewDocument("homepage", "Wei Wang", hin.NoObject,
		[]hin.ObjectID{sigmod, data})
	c := &corpus.Corpus{}
	c.Add(doc)

	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	before, err := m.Link(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before enrichment (symmetric network):")
	for _, cs := range before.Candidates {
		fmt.Printf("  %-16s posterior %.3f\n", g.Name(cs.Entity), cs.Posterior)
	}

	// Populate extracted facts: an information extractor read
	// "Wei Wang received a Ph.D from UCLA" on a page previously
	// linked to Wei Wang 0001, and a Tsinghua page for 0002.
	e := populate.NewEnricher(g)
	org, err := e.EnsureType("organization", "ORG")
	if err != nil {
		log.Fatal(err)
	}
	aff, err := e.EnsureRelation("isAffiliatedWith", "hasMember", d.Author, org)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range []populate.Fact{
		{Relation: aff, Subject: w1, ObjectName: "UCLA"},
		{Relation: aff, Subject: w2, ObjectName: "Tsinghua"},
	} {
		if err := e.Add(f); err != nil {
			log.Fatal(err)
		}
	}
	g2, err := e.Graph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npopulated %d affiliation facts; network now has %d objects\n",
		e.Facts(), g2.NumObjects())

	// Section 4: "we could simply add some new meta-paths (such as
	// A-ORG and A-P-A-ORG) into the meta-path set used in our model."
	paths := metapath.DBLPPaperPaths(d)
	aOrg, err := metapath.New(d.Schema, aff)
	if err != nil {
		log.Fatal(err)
	}
	paths = append(paths, aOrg)

	// A new document that names the organization: the enriched
	// network plus the A-ORG path makes the mention resolvable.
	ucla, _ := g2.Lookup(org, "UCLA")
	doc2 := corpus.NewDocument("homepage2", "Wei Wang", hin.NoObject,
		[]hin.ObjectID{sigmod, data, ucla})
	c2 := &corpus.Corpus{}
	c2.Add(doc2)

	// With a two-object document, a high θ lets the entity-specific
	// evidence dominate the generic model (the paper's θ sweep shows
	// the best value is corpus-dependent).
	cfg := shine.DefaultConfig()
	cfg.Theta = 0.8
	m2, err := shine.New(g2, d.Author, paths, c2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := m2.Link(doc2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter enrichment, document mentioning UCLA (uniform weights):")
	for _, cs := range after.Candidates {
		fmt.Printf("  %-16s posterior %.3f\n", g2.Name(cs.Entity), cs.Posterior)
	}

	// The EM learner then adapts the weights to the new path set —
	// "our model can automatically learn the relative importance for
	// these new meta-paths" (Section 4).
	if _, err := m2.Learn(c2); err != nil {
		log.Fatal(err)
	}
	learned, err := m2.Link(doc2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter EM learning (w(A-ORG) = %.3f):\n", m2.Weights()[len(paths)-1])
	for _, cs := range learned.Candidates {
		fmt.Printf("  %-16s posterior %.3f\n", g2.Name(cs.Entity), cs.Posterior)
	}
	fmt.Printf("\nlinked to %s\n", g2.Name(learned.Entity))
}
