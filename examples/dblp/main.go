// DBLP scenario: the paper's full experimental pipeline on a
// generated bibliographic network — candidate generation, baselines,
// unsupervised EM weight learning, and a head-to-head accuracy
// comparison (the Table 5 experiment as a library consumer would run
// it).
//
// Run with:
//
//	go run ./examples/dblp [-authors N] [-docs N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"shine/internal/baselines"
	"shine/internal/corpus"
	"shine/internal/eval"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/pagerank"
	"shine/internal/shine"
	"shine/internal/synth"
)

func main() {
	authors := flag.Int("authors", 900, "number of regular authors")
	docs := flag.Int("docs", 250, "number of Web documents")
	seed := flag.Int64("seed", 7, "generation seed")
	flag.Parse()

	// 1. Generate the dataset: a DBLP-schema network with ambiguous
	// author names, plus homepage-style documents with gold labels.
	netCfg := synth.DefaultDBLPConfig()
	netCfg.Seed = *seed
	netCfg.RegularAuthors = *authors
	netCfg.AmbiguousGroups = 12
	docCfg := synth.DefaultDocConfig()
	docCfg.Seed = *seed + 1
	docCfg.NumDocs = *docs

	ds, err := synth.BuildDataset(netCfg, docCfg)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Data.Graph.Stats()
	fmt.Printf("network: %d objects, %d links; corpus: %d documents\n",
		st.Objects, st.Links, ds.Corpus.Len())
	for _, grp := range ds.Data.Groups[:3] {
		fmt.Printf("  ambiguous name %q: %d candidate authors\n", grp.Surface, len(grp.Members))
	}

	d := ds.Data.Schema
	g := ds.Data.Graph

	// 2. Baselines.
	pop, err := baselines.NewPOP(g, d.Author, nil, pagerank.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	popSum, err := eval.Evaluate(pop, ds.Corpus)
	if err != nil {
		log.Fatal(err)
	}
	vsim, err := baselines.NewVSim(g, d.Author, d.Author, d.Venue, d.Term, d.Year)
	if err != nil {
		log.Fatal(err)
	}
	vsimSum, err := eval.Evaluate(vsim, ds.Corpus)
	if err != nil {
		log.Fatal(err)
	}

	// 3. SHINE: learn meta-path weights by EM (no labels used), then
	// link.
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, shine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stats, err := m.Learn(ds.Corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEM converged=%v after %d iterations (%d gradient steps)\n",
		stats.Converged, stats.EMIterations, stats.GDIterations)

	shineSum, err := eval.Evaluate(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	}), ds.Corpus)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\napproach   accuracy")
	fmt.Printf("POP        %.3f\n", popSum.Accuracy)
	fmt.Printf("VSim       %.3f\n", vsimSum.Accuracy)
	fmt.Printf("SHINEall   %.3f\n", shineSum.Accuracy)

	fmt.Println("\nlearned meta-path weights:")
	for i, p := range m.Paths() {
		fmt.Printf("  %-10s %.4f\n", p, m.Weights()[i])
	}
}
