// IMDb scenario: the schema-generality claim of the paper's Section 4
// — the same SHINE model links ambiguous *actor* mentions against an
// IMDb-schema network, with nothing changed but the meta-path set.
//
// Run with:
//
//	go run ./examples/imdb
package main

import (
	"fmt"
	"log"

	"shine/internal/corpus"
	"shine/internal/eval"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/synth"
)

func main() {
	// 1. Generate an IMDb-schema network (movies, actors, genres,
	// keywords, directors) with ambiguous actor names, plus fan-page
	// style documents.
	data, err := synth.GenerateIMDB(synth.DefaultIMDBConfig())
	if err != nil {
		log.Fatal(err)
	}
	st := data.Graph.Stats()
	fmt.Printf("IMDb network: %d objects, %d links; %d documents\n",
		st.Objects, st.Links, data.Corpus.Len())

	// 2. The only schema-specific input: the fourteen actor-rooted
	// meta-paths the paper lists for IMDb.
	paths := metapath.IMDBActorPaths(data.Schema)
	fmt.Printf("meta-path set: %d actor-rooted paths\n", len(paths))

	m, err := shine.New(data.Graph, data.Schema.Actor, paths, data.Corpus, shine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stats, err := m.Learn(data.Corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM: %d iterations, converged=%v\n", stats.EMIterations, stats.Converged)

	sum, err := eval.Evaluate(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	}), data.Corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nactor linking accuracy: %s\n", sum)

	fmt.Println("\nlearned meta-path weights:")
	for i, p := range m.Paths() {
		fmt.Printf("  %-14s %.4f\n", p, m.Weights()[i])
	}

	// 3. Show one linked mention in detail.
	doc := data.Corpus.Docs[0]
	r, err := m.Link(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample: mention %q -> %q (gold %q)\n",
		doc.Mention, data.Graph.Name(r.Entity), data.Graph.Name(doc.Gold))
}
