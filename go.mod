module shine

go 1.22
