// Package bench holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section 5). Each
// benchmark prints or reports the same rows/series the paper does;
// accuracies are attached as custom metrics so `go test -bench` output
// doubles as the experiment record.
//
// The quick dataset (~400 authors, 120 documents) keeps a full sweep
// under a minute; run `go run ./cmd/shine bench -exp all` for the
// full-scale (2,000 authors, 700 documents) version of every
// experiment.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"shine/internal/annotate"
	"shine/internal/baselines"
	"shine/internal/bibload"
	"shine/internal/corpus"
	"shine/internal/eval"
	"shine/internal/experiments"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/namematch"
	"shine/internal/pagerank"
	"shine/internal/server"
	"shine/internal/shine"
	"shine/internal/snapshot"
	"shine/internal/surftrie"
	"shine/internal/synth"
)

var (
	envOnce sync.Once
	env     *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { env, envErr = experiments.QuickEnv() })
	if envErr != nil {
		b.Fatalf("building benchmark dataset: %v", envErr)
	}
	return env
}

// BenchmarkTable2Popularity regenerates Table 2: PageRank-based
// popularity of every candidate of the most ambiguous name. The
// dominant candidate's popularity share is reported as a metric.
func BenchmarkTable2Popularity(b *testing.B) {
	e := benchEnv(b)
	var top float64
	for i := 0; i < b.N; i++ {
		r, err := e.Table2()
		if err != nil {
			b.Fatal(err)
		}
		top = r.Rows[0].Popularity
	}
	b.ReportMetric(top, "top-popularity")
}

// BenchmarkTable3Enumeration regenerates Table 3's path set by BFS
// over the DBLP schema and verifies all ten paper paths are found.
func BenchmarkTable3Enumeration(b *testing.B) {
	d := hin.NewDBLPSchema()
	want := metapath.DBLPPaperPaths(d)
	var found int
	for i := 0; i < b.N; i++ {
		all, err := metapath.Enumerate(d.Schema, d.Author, 4)
		if err != nil {
			b.Fatal(err)
		}
		keys := make(map[string]bool, len(all))
		for _, p := range all {
			keys[p.Key()] = true
		}
		found = 0
		for _, p := range want {
			if keys[p.Key()] {
				found++
			}
		}
	}
	if found != 10 {
		b.Fatalf("enumeration found %d of 10 Table 3 paths", found)
	}
}

// BenchmarkTable4VSim regenerates Table 4: VSim accuracy per object
// type subset. The all-type accuracy is reported as a metric.
func BenchmarkTable4VSim(b *testing.B) {
	e := benchEnv(b)
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := e.Table4()
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Rows[len(r.Rows)-1].Accuracy
	}
	b.ReportMetric(acc, "vsim-all-accuracy")
}

// BenchmarkTable5Approaches regenerates Table 5: POP, VSim and the
// four SHINE configurations, reporting each accuracy as a metric.
func BenchmarkTable5Approaches(b *testing.B) {
	e := benchEnv(b)
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		r, err := e.Table5()
		if err != nil {
			b.Fatal(err)
		}
		rows = r.Rows
	}
	for _, row := range rows {
		b.ReportMetric(row.Accuracy, row.Approach+"-acc")
	}
}

// BenchmarkFigure3ObjectModel regenerates Figure 3: the
// entity-specific object model over one document's objects for the
// three most popular candidates.
func BenchmarkFigure3ObjectModel(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4aScalability regenerates Figure 4(a): per-iteration
// EM and gradient descent time at increasing mention-set sizes. One
// sub-benchmark per size; the per-EM-iteration time is the metric —
// the paper's finding is that it grows linearly with the size.
func BenchmarkFigure4aScalability(b *testing.B) {
	e := benchEnv(b)
	for _, n := range []int{30, 60, 90, 120} {
		n := n
		b.Run(fmt.Sprintf("mentions=%d", n), func(b *testing.B) {
			sub, err := e.DS.Corpus.Subset(n)
			if err != nil {
				b.Fatal(err)
			}
			var emIter, gdIter float64
			for i := 0; i < b.N; i++ {
				m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author,
					e.Paths10, e.DS.Corpus, shine.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				stats, err := m.Learn(sub)
				if err != nil {
					b.Fatal(err)
				}
				emIter = float64(stats.EMIterTime.Microseconds())
				gdIter = float64(stats.GDIterTime.Microseconds())
			}
			b.ReportMetric(emIter, "µs/EM-iter")
			b.ReportMetric(gdIter, "µs/GD-iter")
		})
	}
}

// BenchmarkFigure4bAccuracy regenerates Figure 4(b): SHINEall
// accuracy at each mention-set size (expected: roughly flat).
func BenchmarkFigure4bAccuracy(b *testing.B) {
	e := benchEnv(b)
	sizes := []int{30, 60, 90, 120}
	var pts []experiments.Figure4Point
	for i := 0; i < b.N; i++ {
		r, err := e.Figure4(sizes)
		if err != nil {
			b.Fatal(err)
		}
		pts = r.Points
	}
	for _, p := range pts {
		b.ReportMetric(p.Accuracy, fmt.Sprintf("acc@%d", p.Mentions))
	}
}

// BenchmarkFigure5ThetaSweep regenerates Figure 5 (Section 5.4):
// accuracy as θ varies from 0.1 to 0.9.
func BenchmarkFigure5ThetaSweep(b *testing.B) {
	e := benchEnv(b)
	var pts []experiments.Figure5Point
	for i := 0; i < b.N; i++ {
		p, err := e.Figure5([]float64{0.1, 0.3, 0.5, 0.7, 0.9})
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	for _, p := range pts {
		b.ReportMetric(p.Accuracy, fmt.Sprintf("acc@theta=%.1f", p.Theta))
	}
}

// BenchmarkFigure6WeightLearning regenerates Figure 6 (Section 5.5):
// the full EM learning run producing the meta-path weight vector. The
// weight mass on length-2 paths is reported (the paper finds short
// discriminative paths dominate).
func BenchmarkFigure6WeightLearning(b *testing.B) {
	e := benchEnv(b)
	var short float64
	for i := 0; i < b.N; i++ {
		rows, _, err := e.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		short = 0
		for _, r := range rows {
			if len(r.Path) == len("A-P-A") {
				short += r.Weight
			}
		}
	}
	b.ReportMetric(short, "length2-weight-mass")
}

// BenchmarkAblationLambda sweeps the PageRank damping λ.
func BenchmarkAblationLambda(b *testing.B) {
	e := benchEnv(b)
	var pts []experiments.LambdaPoint
	for i := 0; i < b.N; i++ {
		p, err := e.LambdaSweep([]float64{0.2, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	for _, p := range pts {
		b.ReportMetric(p.Accuracy, fmt.Sprintf("acc@lambda=%.1f", p.Lambda))
	}
}

// BenchmarkAblationPruning measures the accuracy/cost trade-off of
// top-k walk pruning.
func BenchmarkAblationPruning(b *testing.B) {
	e := benchEnv(b)
	var pts []experiments.PruningPoint
	for i := 0; i < b.N; i++ {
		p, err := e.PruningSweep([]int{0, 100})
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	for _, p := range pts {
		b.ReportMetric(p.Accuracy, fmt.Sprintf("acc@k=%d", p.MaxSupport))
	}
}

// BenchmarkAblationSGD contrasts full-batch and stochastic M-steps.
func BenchmarkAblationSGD(b *testing.B) {
	e := benchEnv(b)
	var cmp *experiments.SGDComparison
	for i := 0; i < b.N; i++ {
		c, err := e.CompareSGD(20)
		if err != nil {
			b.Fatal(err)
		}
		cmp = c
	}
	b.ReportMetric(cmp.FullAccuracy, "full-acc")
	b.ReportMetric(cmp.SGDAccuracy, "sgd-acc")
}

// learnWithWorkers trains a fresh model (cold walk cache — the
// preparation phase is the parallel hot spot) over the quick corpus
// with the given worker count and returns the Learn wall time.
func learnWithWorkers(b *testing.B, e *experiments.Env, workers int) time.Duration {
	b.Helper()
	cfg := shine.DefaultConfig()
	cfg.Workers = workers
	b.StopTimer() // model construction (PageRank, indexing) is not training
	m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, e.Paths10, e.DS.Corpus, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
	start := time.Now()
	if _, err := m.Learn(e.DS.Corpus); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

// BenchmarkLearnSerial measures the full training pipeline
// (preparation + EM) with Workers=1 — the deterministic baseline the
// parallel path must reproduce bit-for-bit.
func BenchmarkLearnSerial(b *testing.B) {
	e := benchEnv(b)
	var total time.Duration
	for i := 0; i < b.N; i++ {
		total += learnWithWorkers(b, e, 1)
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "learn-ns/op")
}

// BenchmarkLearnParallel measures the same pipeline at 8 workers and
// reports the speedup over a serial run measured in the same process.
// The speedup tracks available cores: ~1.0 on a single-core host
// (parallelism cannot beat the hardware), approaching min(8, cores)
// on multi-core machines since preparation, the E-step and the M-step
// reductions all fan out.
func BenchmarkLearnParallel(b *testing.B) {
	e := benchEnv(b)
	serial := learnWithWorkers(b, e, 1) // untimed baseline for the ratio
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		total += learnWithWorkers(b, e, 8)
	}
	perOp := total / time.Duration(b.N)
	b.ReportMetric(float64(perOp.Nanoseconds()), "learn-ns/op")
	b.ReportMetric(float64(serial)/float64(perOp), "speedup-vs-serial")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// ----------------------------------------------------------- micro level

// BenchmarkPageRank measures the offline popularity computation over
// the benchmark network.
func BenchmarkPageRank(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := pagerank.Compute(e.DS.Data.Graph, pagerank.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCentrality measures each popularity backend's
// whole-network Compute over the benchmark graph — the per-backend
// offline cost column of the centrality comparison.
func BenchmarkCentrality(b *testing.B) {
	e := benchEnv(b)
	g := e.DS.Data.Graph
	for _, name := range pagerank.CentralityNames() {
		b.Run(name, func(b *testing.B) {
			cen, err := pagerank.NewCentrality(name, e.DS.Data.Schema.Author)
			if err != nil {
				b.Fatal(err)
			}
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := cen.Compute(g, pagerank.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "sweeps")
			b.ReportMetric(float64(g.NumLinks()), "edges")
		})
	}
}

// pageRankWithWorkers times one pull-kernel run at the given fan-out
// and reports edges processed per second per iteration.
func pageRankWithWorkers(b *testing.B, g *hin.Graph, workers int) time.Duration {
	b.Helper()
	opts := pagerank.DefaultOptions()
	opts.Workers = workers
	start := time.Now()
	res, err := pagerank.Compute(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	if res.Iterations > 0 {
		perIter := elapsed / time.Duration(res.Iterations)
		b.ReportMetric(float64(g.NumLinks())/perIter.Seconds(), "edges/s")
	}
	return elapsed
}

// BenchmarkPageRankSerial measures the CSR pull kernel at Workers=1 —
// the deterministic baseline every parallel run reproduces
// bit-for-bit.
func BenchmarkPageRankSerial(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		pageRankWithWorkers(b, e.DS.Data.Graph, 1)
	}
}

// BenchmarkPageRankParallel measures the pull kernel at 8 workers and
// reports the speedup over a serial run measured in the same process.
// Like the training benchmarks, the speedup tracks available cores:
// ~1.0 on a single-core host, approaching min(8, cores) elsewhere.
func BenchmarkPageRankParallel(b *testing.B) {
	e := benchEnv(b)
	serial := pageRankWithWorkers(b, e.DS.Data.Graph, 1) // untimed ratio baseline
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		total += pageRankWithWorkers(b, e.DS.Data.Graph, 8)
	}
	perOp := total / time.Duration(b.N)
	b.ReportMetric(float64(serial)/float64(perOp), "speedup-vs-serial")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkPageRankReference measures the retired edge-push kernel
// (the oracle pull is tested against); the pull kernel should beat its
// per-iteration edge throughput.
func BenchmarkPageRankReference(b *testing.B) {
	e := benchEnv(b)
	g := e.DS.Data.Graph
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := pagerank.ReferenceCompute(g, pagerank.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations > 0 {
			perIter := time.Since(start) / time.Duration(res.Iterations)
			b.ReportMetric(float64(g.NumLinks())/perIter.Seconds(), "edges/s")
		}
	}
}

// BenchmarkGraphBuild measures Builder.Build — CSR construction fanned
// out across relation pairs — on the benchmark network's edge set.
func BenchmarkGraphBuild(b *testing.B) {
	e := benchEnv(b)
	orig := e.DS.Data.Graph
	builder := hin.NewBuilderFromGraph(orig)
	b.ReportMetric(float64(orig.NumLinks()), "links")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := builder.Build()
		if g.NumLinks() != orig.NumLinks() {
			b.Fatalf("rebuild produced %d links, want %d", g.NumLinks(), orig.NumLinks())
		}
	}
}

// BenchmarkMetaPathWalk measures a single length-4 constrained random
// walk without caching.
func BenchmarkMetaPathWalk(b *testing.B) {
	e := benchEnv(b)
	d := e.DS.Data.Schema
	w := metapath.NewWalker(e.DS.Data.Graph, 0)
	p := metapath.MustParse(d.Schema, "A-P-A-P-V")
	entity := e.DS.Data.Groups[0].Members[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Walk(entity, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkSingleMention measures linking one mention with a
// ready model (warm walk cache), the online serving cost.
func BenchmarkLinkSingleMention(b *testing.B) {
	e := benchEnv(b)
	m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, e.Paths10,
		e.DS.Corpus, shine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	doc := e.DS.Corpus.Docs[0]
	if _, err := m.Link(doc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Link(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngest measures the text preprocessing pipeline on one
// generated document.
func BenchmarkIngest(b *testing.B) {
	e := benchEnv(b)
	rd := e.DS.RawDocs[0]
	var doc *corpus.Document
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc = e.DS.Ingester.Ingest(rd.ID, rd.Mention, rd.Gold, rd.Text)
	}
	if doc.TotalCount() == 0 {
		b.Fatal("ingested document empty")
	}
}

// BenchmarkDatasetGeneration measures full synthetic dataset
// construction (network + documents + ingestion).
func BenchmarkDatasetGeneration(b *testing.B) {
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 200
	net.AmbiguousGroups = 5
	net.Topics = 4
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 50
	for i := 0; i < b.N; i++ {
		if _, err := synth.BuildDataset(net, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateVSim measures a full VSim evaluation pass, the
// baseline's end-to-end cost.
func BenchmarkEvaluateVSim(b *testing.B) {
	e := benchEnv(b)
	d := e.DS.Data.Schema
	for i := 0; i < b.N; i++ {
		vs, err := baselines.NewVSim(e.DS.Data.Graph, d.Author, d.Author, d.Venue, d.Term, d.Year)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eval.Evaluate(vs, e.DS.Corpus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnotate measures mention detection plus linking over one
// generated page.
func BenchmarkAnnotate(b *testing.B) {
	e := benchEnv(b)
	m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, e.Paths10,
		e.DS.Corpus, shine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a, err := annotate.New(m, corpus.DBLPIngestConfig(e.DS.Data.Schema), annotate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	text := e.DS.RawDocs[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Annotate("bench", text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerLink measures one /v1/link request through the full
// HTTP handler stack.
func BenchmarkServerLink(b *testing.B) {
	e := benchEnv(b)
	m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, e.Paths10,
		e.DS.Corpus, shine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(m, corpus.DBLPIngestConfig(e.DS.Data.Schema), server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rd := e.DS.RawDocs[0]
	body, err := json.Marshal(map[string]string{"mention": rd.Mention, "text": rd.Text})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/link", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkBibloadAndDisambig measures the preprocessing chain over
// an exported network: export -> disambiguate -> reload.
func BenchmarkBibloadAndDisambig(b *testing.B) {
	e := benchEnv(b)
	var buf bytes.Buffer
	if err := bibload.Export(&buf, e.DS.Data.Schema, e.DS.Data.Graph); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := bibload.Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplain measures the per-decision evidence breakdown.
func BenchmarkExplain(b *testing.B) {
	e := benchEnv(b)
	m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, e.Paths10,
		e.DS.Corpus, shine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	doc := e.DS.Corpus.Docs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Explain(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphSerialization measures WriteTo+ReadGraph round trips.
func BenchmarkGraphSerialization(b *testing.B) {
	e := benchEnv(b)
	g := e.DS.Data.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := hin.ReadGraph(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRankScale measures PageRank cost as the network grows;
// the per-size ns/op should grow roughly linearly with the link count
// (power iteration is O(|Z|) per pass).
func BenchmarkPageRankScale(b *testing.B) {
	for _, authors := range []int{250, 500, 1000, 2000} {
		authors := authors
		b.Run(fmt.Sprintf("authors=%d", authors), func(b *testing.B) {
			cfg := synth.DefaultDBLPConfig()
			cfg.RegularAuthors = authors
			cfg.AmbiguousGroups = 5
			data, err := synth.GenerateDBLP(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(data.Graph.NumLinks()), "links")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pagerank.Compute(data.Graph, pagerank.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --------------------------------------------------------- serving path

// linkModel builds a model over the quick dataset with a warm frozen
// mixture index, the steady-state serving configuration.
func linkModel(b *testing.B, e *experiments.Env) *shine.Model {
	b.Helper()
	m, err := shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, e.Paths10,
		e.DS.Corpus, shine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.PrecomputeMixtures(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkLinkSerial measures linking the whole quick corpus one
// document at a time on a warm model — the frozen-CSR serving path.
// docs/sec is the headline throughput number recorded in
// BENCH_link.json.
func BenchmarkLinkSerial(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	docs := e.DS.Corpus
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := m.LinkAll(docs); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)*float64(docs.Len())/elapsed.Seconds(), "docs/sec")
}

// BenchmarkLinkParallel measures the same batch fanned out over 8
// workers. On a single-core host this matches BenchmarkLinkSerial
// (parallelism cannot beat the hardware); on multi-core hosts the
// docs/sec metric scales with available cores because the frozen index
// makes linking read-only and contention-free.
func BenchmarkLinkParallel(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	docs := e.DS.Corpus
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.LinkAllParallel(docs, 8); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)*float64(docs.Len())/elapsed.Seconds(), "docs/sec")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// streamDocCount sizes the streaming-vs-materialized comparison: large
// enough that O(n) result materialization dominates the materialized
// path's footprint, small enough to keep the bench under seconds.
const streamDocCount = 10000

// liveHeapMB forces a collection and returns the live heap in MiB —
// the number the streaming pipeline's O(workers+window) bound is
// stated in.
func liveHeapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// BenchmarkLinkStream measures LinkStream over a 10k-document stream
// on a warm model: documents flow through a bounded worker pipeline
// and results are consumed as they emit, so peak-heap-mb stays flat
// regardless of stream length. Contrast with BenchmarkLinkParallel10K,
// which materializes all 10k results.
func BenchmarkLinkStream(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	docs := e.DS.Corpus.Docs
	for _, doc := range docs {
		if _, err := m.Link(doc); err != nil {
			b.Fatal(err)
		}
	}
	base := liveHeapMB()
	var peak float64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		in := make(chan *corpus.Document, 64)
		go func() {
			for j := 0; j < streamDocCount; j++ {
				in <- docs[j%len(docs)]
			}
			close(in)
		}()
		count := 0
		for sr := range m.LinkStream(context.Background(), in, 8) {
			if sr.Err != nil {
				b.Fatal(sr.Err)
			}
			if count++; count == streamDocCount/2 {
				if h := liveHeapMB() - base; h > peak {
					peak = h
				}
			}
		}
		if count != streamDocCount {
			b.Fatalf("stream emitted %d results, want %d", count, streamDocCount)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)*streamDocCount/elapsed.Seconds(), "docs/sec")
	b.ReportMetric(peak, "peak-heap-mb")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkLinkParallel10K is the materialized counterpart: the same
// 10k documents through LinkAllParallel, which must hold the whole
// result slice (candidate lists included) in memory at once. Its
// peak-heap-mb grows with the batch while BenchmarkLinkStream's does
// not — the reason the batch endpoint streams.
func BenchmarkLinkParallel10K(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	big := &corpus.Corpus{}
	for j := 0; j < streamDocCount; j++ {
		big.Add(e.DS.Corpus.Docs[j%e.DS.Corpus.Len()])
	}
	for _, doc := range e.DS.Corpus.Docs {
		if _, err := m.Link(doc); err != nil {
			b.Fatal(err)
		}
	}
	base := liveHeapMB()
	var peak float64
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		results, failures, err := m.LinkAllParallel(big, 8)
		if err != nil {
			b.Fatal(err)
		}
		if failures != 0 {
			b.Fatalf("%d documents failed", failures)
		}
		if h := liveHeapMB() - base; h > peak {
			peak = h
		}
		runtime.KeepAlive(results)
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N)*streamDocCount/elapsed.Seconds(), "docs/sec")
	b.ReportMetric(peak, "peak-heap-mb")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// ------------------------------------------------------------- snapshot

// BenchmarkSnapshotLoad measures restoring a ready-to-serve model from
// the binary artifact — CRC validation, section slicing and FromParts
// — the replica cold-start path. MB/s comes from SetBytes; contrast
// with BenchmarkSnapshotColdJSON, the path the artifact replaces.
func BenchmarkSnapshotLoad(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	data, err := snapshot.Encode(m.Parts())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := snapshot.ReadBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Model(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotColdJSON measures reaching the same warm serving
// state without the artifact: graph deserialisation, model
// reconstruction from the JSON state (PageRank, candidate indexing)
// and the full mixture precompute. The ratio to BenchmarkSnapshotLoad
// is the artifact's cold-start speedup, recorded in
// BENCH_snapshot.json.
func BenchmarkSnapshotColdJSON(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	var graphBuf, modelBuf bytes.Buffer
	if _, err := e.DS.Data.Graph.WriteTo(&graphBuf); err != nil {
		b.Fatal(err)
	}
	if err := m.Save(&modelBuf); err != nil {
		b.Fatal(err)
	}
	graphData, modelData := graphBuf.Bytes(), modelBuf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := hin.ReadGraph(bytes.NewReader(graphData))
		if err != nil {
			b.Fatal(err)
		}
		m2, err := shine.Load(bytes.NewReader(modelData), g, e.DS.Corpus)
		if err != nil {
			b.Fatal(err)
		}
		if err := m2.PrecomputeMixtures(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotWrite measures producing the artifact (Parts
// decomposition + encode), the offline half of the pipeline.
func BenchmarkSnapshotWrite(b *testing.B) {
	e := benchEnv(b)
	m := linkModel(b, e)
	data, err := snapshot.Encode(m.Parts())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Encode(m.Parts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------ candidate index

// benchMentions cycles the quick corpus's mention surface forms, the
// realistic lookup workload.
func benchMentions(b *testing.B, e *experiments.Env) []string {
	b.Helper()
	out := make([]string, e.DS.Corpus.Len())
	for i, doc := range e.DS.Corpus.Docs {
		out[i] = doc.Mention
	}
	return out
}

// BenchmarkCandidatesMap measures exact candidate lookup on the
// hash-blocked brute-force reference index (namematch.Index) — the
// baseline BENCH_candidates.json contrasts the trie against.
func BenchmarkCandidatesMap(b *testing.B) {
	e := benchEnv(b)
	idx, err := namematch.BuildIndex(e.DS.Data.Graph, e.DS.Data.Schema.Author)
	if err != nil {
		b.Fatal(err)
	}
	mentions := benchMentions(b, e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(idx.Candidates(mentions[i%len(mentions)])) == 0 {
			b.Fatal("corpus mention with no candidates")
		}
	}
}

// BenchmarkCandidatesTrie measures the same workload on the
// path-compressed surface trie, the production candidate source.
func BenchmarkCandidatesTrie(b *testing.B) {
	e := benchEnv(b)
	trie, err := surftrie.Build(e.DS.Data.Graph, e.DS.Data.Schema.Author)
	if err != nil {
		b.Fatal(err)
	}
	mentions := benchMentions(b, e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(trie.Candidates(mentions[i%len(mentions)])) == 0 {
			b.Fatal("corpus mention with no candidates")
		}
	}
}

// BenchmarkCandidatesFuzzy measures the edit-distance-2 Levenshtein
// row-walk over noisy mentions (each corpus mention with its last byte
// corrupted), the OCR-fallback cost ceiling.
func BenchmarkCandidatesFuzzy(b *testing.B) {
	e := benchEnv(b)
	trie, err := surftrie.Build(e.DS.Data.Graph, e.DS.Data.Schema.Author)
	if err != nil {
		b.Fatal(err)
	}
	mentions := benchMentions(b, e)
	for i, m := range mentions {
		if len(m) > 1 {
			mentions[i] = m[:len(m)-1] + "~"
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.FuzzyCandidates(mentions[i%len(mentions)], surftrie.MaxDistance)
	}
}

// BenchmarkWalkKernel contrasts the two walk kernels on an uncached
// length-4 walk: "map" is the original map-backed frontier
// (ReferenceWalk, kept as the testing oracle), "csr" the pooled dense
// scatter-gather kernel serving production traffic. Same bits out —
// the equivalence tests prove it — different ns/op and allocs/op.
func BenchmarkWalkKernel(b *testing.B) {
	e := benchEnv(b)
	d := e.DS.Data.Schema
	g := e.DS.Data.Graph
	p := metapath.MustParse(d.Schema, "A-P-A-P-V")
	entity := e.DS.Data.Groups[0].Members[0]

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := metapath.ReferenceWalk(g, entity, p, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		w := metapath.NewWalker(g, 0) // cache off: measure the kernel
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Walk(entity, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWalkScale measures a length-4 constrained walk as the
// author's neighbourhood grows with the network.
func BenchmarkWalkScale(b *testing.B) {
	for _, authors := range []int{250, 1000} {
		authors := authors
		b.Run(fmt.Sprintf("authors=%d", authors), func(b *testing.B) {
			cfg := synth.DefaultDBLPConfig()
			cfg.RegularAuthors = authors
			cfg.AmbiguousGroups = 5
			data, err := synth.GenerateDBLP(cfg)
			if err != nil {
				b.Fatal(err)
			}
			w := metapath.NewWalker(data.Graph, 0)
			p := metapath.MustParse(data.Schema.Schema, "A-P-A-P-T")
			entity := data.Groups[0].Members[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Walk(entity, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchDelta stages a graph delta of roughly one percent of the
// benchmark network's links, shaped like a freshly crawled workshop's
// proceedings: a new venue, new vocabulary, and new papers written by
// a handful of existing low-productivity authors. The shape matters —
// new objects are only reachable through the staged edges, so typed
// invalidation confines the blast radius to the contributing authors
// and their coauthor neighbourhoods rather than a venue or topic
// community.
func benchDelta(b *testing.B, g *hin.Graph, s *hin.DBLPSchema) *hin.Delta {
	b.Helper()
	// The three least-productive authors (smallest write out-degree,
	// ties by ID) become the workshop's contributors.
	var contributors []hin.ObjectID
	for _, a := range g.ObjectsOfType(s.Author) {
		contributors = append(contributors, a)
	}
	if len(contributors) < 3 {
		b.Fatal("benchmark dataset has fewer than 3 authors")
	}
	sort.SliceStable(contributors, func(i, j int) bool {
		return g.Degree(s.Write, contributors[i]) < g.Degree(s.Write, contributors[j])
	})
	contributors = contributors[:3]

	target := g.NumLinks() / 100
	d := g.Append()
	venue := d.MustAppend(s.Venue, "delta workshop")
	var terms []hin.ObjectID
	for i := 0; i < 4; i++ {
		terms = append(terms, d.MustAppend(s.Term, fmt.Sprintf("deltaterm%d", i)))
	}
	for i := 0; d.NumEdges() == 0 || d.NumEdges()+4 <= target; i++ {
		p := d.MustAppend(s.Paper, fmt.Sprintf("delta paper %d", i))
		d.MustPatch(s.Write, contributors[i%len(contributors)], p)
		d.MustPatch(s.Publish, venue, p)
		d.MustPatch(s.Contain, p, terms[i%len(terms)])
		d.MustPatch(s.Contain, p, terms[(i+1)%len(terms)])
	}
	return d
}

// BenchmarkDeltaMerge measures splicing a ~1% staged delta into the
// CSR against rebuilding the merged graph from scratch — the
// bit-identical pair (TestMergeMatchesBuild pins byte equality), so
// the ratio is pure construction cost.
func BenchmarkDeltaMerge(b *testing.B) {
	e := benchEnv(b)
	g := e.DS.Data.Graph
	d := benchDelta(b, e.DS.Data.Graph, e.DS.Data.Schema)
	merged, _, err := d.Merge()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("splice", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(d.NumEdges()), "delta-edges")
		b.ReportMetric(100*float64(d.NumEdges())/float64(g.NumLinks()), "delta-pct")
		for i := 0; i < b.N; i++ {
			if _, _, err := d.Merge(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The comparator times Builder.Build alone (as BenchmarkGraphBuild
	// does), not builder loading — conservative in the splice's favor.
	b.Run("full-build", func(b *testing.B) {
		builder := hin.NewBuilderFromGraph(merged)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := builder.Build(); got.NumLinks() != merged.NumLinks() {
				b.Fatalf("rebuild produced %d links, want %d", got.NumLinks(), merged.NumLinks())
			}
		}
	})
}

// BenchmarkPageRankWarmStart measures refreshing popularity after a
// ~1% delta by warm-starting from the previous revision's scores
// (Gauss–Southwell push + certifying sweeps) against a cold power
// iteration on the merged graph. Both converge to the same 1e-10
// tolerance; agreement to 1e-9 L∞ is asserted before timing.
func BenchmarkPageRankWarmStart(b *testing.B) {
	e := benchEnv(b)
	g := e.DS.Data.Graph
	d := benchDelta(b, e.DS.Data.Graph, e.DS.Data.Schema)
	merged, _, err := d.Merge()
	if err != nil {
		b.Fatal(err)
	}
	prev, err := pagerank.Compute(g, pagerank.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	warm, err := pagerank.Refine(merged, pagerank.DefaultOptions(), prev.Scores)
	if err != nil {
		b.Fatal(err)
	}
	cold, err := pagerank.Compute(merged, pagerank.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for v := range cold.Scores {
		if diff := warm.Scores[v] - cold.Scores[v]; diff > 1e-9 || diff < -1e-9 {
			b.Fatalf("warm and cold scores disagree at %d: %g vs %g", v, warm.Scores[v], cold.Scores[v])
		}
	}
	b.Run("warm", func(b *testing.B) {
		b.ReportMetric(float64(warm.Iterations), "sweeps")
		b.ReportMetric(float64(warm.Pushes), "pushes")
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.Refine(merged, pagerank.DefaultOptions(), prev.Scores); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportMetric(float64(cold.Iterations), "sweeps")
		for i := 0; i < b.N; i++ {
			if _, err := pagerank.Compute(merged, pagerank.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMixturePartialInvalidate measures the end-to-end
// incremental model update — Model.WithDelta (CSR splice + warm
// PageRank + per-entity cache migration) followed by re-warming only
// the invalidated mixtures — against the global-flush path it
// replaces: a from-scratch merge, a cold model build (cold PageRank
// included) and a full mixture precompute. Both end in the same fully
// warm serving state; update_test.go pins that the incremental one is
// bit-identical to the cold rebuild. Like BenchmarkWalkScale this runs
// on its own mid-size network (1,000 regular authors) rather than the
// quick dataset: the comparison is about how re-warming scales, so the
// mixture flush should carry its realistic share of the rebuild cost.
func BenchmarkMixturePartialInvalidate(b *testing.B) {
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 1000
	net.AmbiguousGroups = 10
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 60
	ds, err := synth.BuildDataset(net, doc)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Data.Graph
	s := ds.Data.Schema
	paths := metapath.DBLPPaperPaths(s)
	m, err := shine.New(g, s.Author, paths, ds.Corpus, shine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.PrecomputeMixtures(); err != nil {
		b.Fatal(err)
	}
	d := benchDelta(b, g, s)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m2, stats, err := m.WithDelta(d)
			if err != nil {
				b.Fatal(err)
			}
			if err := m2.PrecomputeMixtures(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(stats.MixturesKept), "mixtures-kept")
				b.ReportMetric(float64(stats.MixturesDropped), "mixtures-dropped")
				b.ReportMetric(float64(stats.AffectedObjects), "affected-objects")
				b.ReportMetric(float64(stats.WarmIterations), "warm-sweeps")
			}
		}
	})
	merged, _, err := d.Merge()
	if err != nil {
		b.Fatal(err)
	}
	builder := hin.NewBuilderFromGraph(merged)
	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g2 := builder.Build()
			m2, err := shine.New(g2, s.Author, paths, ds.Corpus, shine.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := m2.PrecomputeMixtures(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
