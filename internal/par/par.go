// Package par provides the deterministic fan-out primitives shared by
// the training and offline pipelines.
//
// The hot loops these primitives serve are floating-point sums (the EM
// objective of Formula 22, its gradient, the PageRank dangling-mass
// and convergence-delta sweeps). Naively sharding such sums across
// goroutines makes the result depend on the worker count and the
// scheduler, because float addition is not associative. Every
// reduction here is therefore *blocked*: the item range is partitioned
// into fixed-size blocks whose boundaries depend only on the item
// count and the block size, each block's partial is accumulated
// serially left-to-right, and the partials are merged serially in
// block order after all workers finish. The worker count then only
// decides which goroutine computes a block — never the shape of the
// summation tree — so results are bit-for-bit identical for any
// Workers value, including 1 (which runs inline, spawning no
// goroutines).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultBlock is the block size used by the EM reductions. It is a
// constant precisely so that block boundaries — and therefore the
// floating-point summation tree — never vary with configuration or
// hardware. Vertex-ranged sweeps (PageRank) use larger blocks to
// amortise scheduling; any constant preserves determinism.
const DefaultBlock = 32

// ClampWorkers resolves a requested worker count against n work
// items: non-positive requests take GOMAXPROCS, and the result is
// bounded to [1, n] so callers can never spawn idle goroutines or
// divide work zero ways.
func ClampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// with dynamic scheduling. Each item must write only its own output
// slot; under that contract the result is independent of scheduling.
// workers <= 1 runs inline in index order.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = ClampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// NumBlocks is the number of fixed-size blocks covering n items.
func NumBlocks(n, block int) int {
	return (n + block - 1) / block
}

// Blocks invokes fn(b, lo, hi) for every block of the given size
// covering [0, n), fanning blocks out over up to workers goroutines.
func Blocks(n, block, workers int, fn func(b, lo, hi int)) {
	For(NumBlocks(n, block), workers, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(b, lo, hi)
	})
}

// ReduceSum computes Σ compute(block) over [0, n) with block partials
// merged in block-index order. Bit-for-bit identical for any worker
// count.
func ReduceSum(n, block, workers int, compute func(lo, hi int) float64) float64 {
	partials := make([]float64, NumBlocks(n, block))
	Blocks(n, block, workers, func(b, lo, hi int) {
		partials[b] = compute(lo, hi)
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}

// ReduceVecSum is ReduceSum for dim-dimensional accumulator vectors:
// compute adds block [lo, hi)'s contribution into a zeroed acc, and
// the per-block accumulators are merged coordinate-wise in
// block-index order. Bit-for-bit identical for any worker count.
func ReduceVecSum(n, block, dim, workers int, compute func(lo, hi int, acc []float64)) []float64 {
	partials := make([][]float64, NumBlocks(n, block))
	Blocks(n, block, workers, func(b, lo, hi int) {
		acc := make([]float64, dim)
		compute(lo, hi, acc)
		partials[b] = acc
	})
	out := make([]float64, dim)
	for _, p := range partials {
		for k, v := range p {
			out[k] += v
		}
	}
	return out
}
