package par

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		workers, n, min, max int
	}{
		{0, 10, 1, 10},   // GOMAXPROCS, bounded by n
		{-3, 5, 1, 5},    // negative → GOMAXPROCS, bounded by n
		{4, 2, 2, 2},     // more workers than items
		{4, 100, 4, 4},   // plenty of items
		{1, 0, 1, 1},     // no items still yields 1
		{8, 1000, 8, 8},  // exact
		{3, 3, 3, 3},     // equal
		{100, 7, 7, 7},   // clamp down
		{2, 1 << 30, 2, 2}, // huge n
	}
	for _, c := range cases {
		got := ClampWorkers(c.workers, c.n)
		if got < c.min || got > c.max {
			t.Errorf("ClampWorkers(%d, %d) = %d, want in [%d, %d]", c.workers, c.n, got, c.min, c.max)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 1000
		var counts [n]atomic.Int32
		For(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestBlocksCoverRangeExactly(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 33, 100, 513} {
		covered := make([]bool, n)
		Blocks(n, 32, 1, func(b, lo, hi int) {
			if lo != b*32 {
				t.Fatalf("n=%d block %d: lo=%d", n, b, lo)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("n=%d: index %d covered twice", n, i)
				}
				covered[i] = true
			}
		})
		for i, ok := range covered {
			if !ok {
				t.Fatalf("n=%d: index %d not covered", n, i)
			}
		}
	}
}

// TestReduceSumBitIdenticalAcrossWorkers is the load-bearing contract:
// the summation tree depends only on (n, block), never on the worker
// count. Adversarial values (wide magnitude spread) make any
// reordering visible in the low bits.
func TestReduceSumBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4097
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	compute := func(lo, hi int) float64 {
		s := 0.0
		for _, v := range vals[lo:hi] {
			s += v
		}
		return s
	}
	for _, block := range []int{32, 512} {
		want := ReduceSum(n, block, 1, compute)
		for _, workers := range []int{2, 4, 8} {
			got := ReduceSum(n, block, workers, compute)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("block=%d workers=%d: %x != serial %x",
					block, workers, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestReduceVecSumBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim = 1000, 5
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = make([]float64, dim)
		for k := range vals[i] {
			vals[i][k] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
		}
	}
	compute := func(lo, hi int, acc []float64) {
		for i := lo; i < hi; i++ {
			for k, v := range vals[i] {
				acc[k] += v
			}
		}
	}
	want := ReduceVecSum(n, DefaultBlock, dim, 1, compute)
	for _, workers := range []int{3, 8} {
		got := ReduceVecSum(n, DefaultBlock, dim, workers, compute)
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("workers=%d dim %d: %v != %v", workers, k, got[k], want[k])
			}
		}
	}
}
