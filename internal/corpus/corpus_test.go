package corpus

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"shine/internal/hin"
)

func TestNewDocumentSortsAndDeduplicates(t *testing.T) {
	d := NewDocument("d1", "Wei Wang", hin.ObjectID(7),
		[]hin.ObjectID{5, 3, 5, 5, 1})
	if len(d.Objects) != 3 {
		t.Fatalf("got %d distinct objects, want 3", len(d.Objects))
	}
	want := []ObjectCount{{1, 1}, {3, 1}, {5, 3}}
	for i, oc := range d.Objects {
		if oc != want[i] {
			t.Errorf("Objects[%d] = %+v, want %+v", i, oc, want[i])
		}
	}
	if d.TotalCount() != 5 {
		t.Errorf("TotalCount = %d, want 5", d.TotalCount())
	}
	bag := d.Bag()
	if bag.Get(5) != 3 || bag.Get(1) != 1 {
		t.Errorf("Bag = %v", bag)
	}
}

func TestEmptyDocument(t *testing.T) {
	d := NewDocument("d", "m", hin.NoObject, nil)
	if d.TotalCount() != 0 || len(d.Objects) != 0 {
		t.Errorf("empty document has objects: %+v", d)
	}
	if d.Bag().Len() != 0 {
		t.Error("empty bag non-empty")
	}
}

func TestCorpusSubset(t *testing.T) {
	c := &Corpus{}
	for i := 0; i < 5; i++ {
		c.Add(NewDocument("d", "m", hin.NoObject, []hin.ObjectID{hin.ObjectID(i)}))
	}
	sub, err := c.Subset(3)
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	if sub.Len() != 3 {
		t.Errorf("Subset len = %d", sub.Len())
	}
	if _, err := c.Subset(6); err == nil {
		t.Error("oversized subset accepted")
	}
	if _, err := c.Subset(-1); err == nil {
		t.Error("negative subset accepted")
	}
}

func TestEstimateGeneric(t *testing.T) {
	c := &Corpus{}
	c.Add(NewDocument("d1", "m", hin.NoObject, []hin.ObjectID{1, 1, 2}))
	c.Add(NewDocument("d2", "m", hin.NoObject, []hin.ObjectID{2}))
	g, err := EstimateGeneric(c)
	if err != nil {
		t.Fatalf("EstimateGeneric: %v", err)
	}
	if math.Abs(g.Prob(1)-0.5) > 1e-12 {
		t.Errorf("Pg(1) = %v, want 0.5", g.Prob(1))
	}
	if math.Abs(g.Prob(2)-0.5) > 1e-12 {
		t.Errorf("Pg(2) = %v, want 0.5", g.Prob(2))
	}
	if g.Prob(99) != 0 {
		t.Errorf("Pg(unseen) = %v, want 0", g.Prob(99))
	}
	if g.Support() != 2 {
		t.Errorf("Support = %d, want 2", g.Support())
	}
	if !g.Vector().IsDistribution(1e-12) {
		t.Error("generic model is not a distribution")
	}
}

func TestEstimateGenericEmptyCorpus(t *testing.T) {
	if _, err := EstimateGeneric(&Corpus{}); err == nil {
		t.Error("empty corpus accepted")
	}
	c := &Corpus{}
	c.Add(NewDocument("d", "m", hin.NoObject, nil))
	if _, err := EstimateGeneric(c); err == nil {
		t.Error("object-free corpus accepted")
	}
}

func TestCorpusSerializationRoundTrip(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "A")
	v := b.MustAddObject(d.Venue, "V")
	g := b.Build()

	c := &Corpus{}
	c.Add(NewDocument("d1", "A Name", a, []hin.ObjectID{v, v, a}))
	c.Add(NewDocument("d2", "B Name", hin.NoObject, nil))

	var buf bytes.Buffer
	if err := c.WriteTo(&buf, g); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	c2, err := ReadCorpus(&buf, g)
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if c2.Len() != 2 {
		t.Fatalf("round trip has %d docs", c2.Len())
	}
	if c2.Docs[0].Mention != "A Name" || c2.Docs[0].Gold != a {
		t.Errorf("doc 0 = %+v", c2.Docs[0])
	}
	if got := c2.Docs[0].Bag().Get(int32(v)); got != 2 {
		t.Errorf("count(v) = %v, want 2", got)
	}
	if c2.Docs[1].Gold != hin.NoObject || c2.Docs[1].TotalCount() != 0 {
		t.Errorf("doc 1 = %+v", c2.Docs[1])
	}
}

func TestReadCorpusRejectsBadInput(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	b.MustAddObject(d.Author, "A")
	g := b.Build()

	cases := []string{
		`not json`,
		`{"version": 9, "graphObjects": 1, "documents": 0}`,
		`{"version": 1, "graphObjects": 99, "documents": 0}`,
		`{"version": 1, "graphObjects": 1, "documents": 2}`, // count mismatch
		`{"version": 1, "graphObjects": 1, "documents": 1}
{"id": "d", "mention": "m", "gold": -1, "objects": [[5, 1]]}`, // object out of range
		`{"version": 1, "graphObjects": 1, "documents": 1}
{"id": "d", "mention": "m", "gold": -1, "objects": [[0, 0]]}`, // zero count
		`{"version": 1, "graphObjects": 1, "documents": 1}
{"id": "d", "mention": "m", "gold": -1, "objects": [[0, 1], [0, 1]]}`, // duplicate object
	}
	for i, in := range cases {
		if _, err := ReadCorpus(strings.NewReader(in), g); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
