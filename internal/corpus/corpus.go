// Package corpus models the Web-document side of the entity linking
// task: documents as bags of typed network objects, entity mentions
// with gold labels, the preprocessing pipeline that turns raw text
// into object bags (Section 5.1 of the paper), and the generic object
// model Pg(v) estimated from the whole collection (Section 3.2).
package corpus

import (
	"cmp"
	"fmt"
	"slices"

	"shine/internal/hin"
	"shine/internal/sparse"
)

// ObjectCount is one object of the network observed in a document,
// with its occurrence count.
type ObjectCount struct {
	Object hin.ObjectID
	Count  int
}

// Document is one Web document containing a single entity mention, in
// the bag-of-typed-objects representation the SHINE model consumes:
// the document "consists of various multi-type objects v's from the
// heterogeneous information network".
type Document struct {
	// ID identifies the document within its corpus.
	ID string
	// Mention is the surface form of the named entity mention to be
	// linked, e.g. "Wei Wang".
	Mention string
	// Gold is the true mapping entity, or hin.NoObject when unknown.
	Gold hin.ObjectID
	// Objects is the typed-object bag, sorted by ascending object ID
	// with no duplicate objects.
	Objects []ObjectCount
}

// TotalCount returns the total number of object occurrences in the
// document (the bag size counting multiplicity).
func (d *Document) TotalCount() int {
	n := 0
	for _, oc := range d.Objects {
		n += oc.Count
	}
	return n
}

// Bag returns the document's object counts as a sparse vector.
func (d *Document) Bag() sparse.Vector {
	v := sparse.NewWithCapacity(len(d.Objects))
	for _, oc := range d.Objects {
		v.Set(int32(oc.Object), float64(oc.Count))
	}
	return v
}

// NewDocument builds a Document from an unsorted, possibly duplicated
// object list, normalising it to the sorted deduplicated form.
func NewDocument(id, mention string, gold hin.ObjectID, objects []hin.ObjectID) *Document {
	counts := make(map[hin.ObjectID]int)
	for _, o := range objects {
		counts[o]++
	}
	d := &Document{ID: id, Mention: mention, Gold: gold}
	d.Objects = make([]ObjectCount, 0, len(counts))
	for o, c := range counts {
		d.Objects = append(d.Objects, ObjectCount{Object: o, Count: c})
	}
	slices.SortFunc(d.Objects, func(a, b ObjectCount) int { return cmp.Compare(a.Object, b.Object) })
	return d
}

// Corpus is an ordered document collection D.
type Corpus struct {
	Docs []*Document
}

// Add appends a document.
func (c *Corpus) Add(d *Document) { c.Docs = append(c.Docs, d) }

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// Subset returns a corpus over the first n documents, sharing the
// underlying document values. It is the slicing operation used by the
// paper's scalability sweep over mention-set sizes.
func (c *Corpus) Subset(n int) (*Corpus, error) {
	if n < 0 || n > len(c.Docs) {
		return nil, fmt.Errorf("corpus: subset of %d from %d documents", n, len(c.Docs))
	}
	return &Corpus{Docs: c.Docs[:n]}, nil
}

// GenericModel is the domain's generic object model Pg(v), "learned
// by counting the frequencies of multi-type objects appearing in the
// document collection D". It smooths the entity-specific object model
// so that observed objects never have zero probability.
type GenericModel struct {
	probs sparse.Vector
}

// EstimateGeneric builds the generic object model from a corpus. It
// returns an error if the corpus contains no object occurrences at
// all, since then no distribution exists.
func EstimateGeneric(c *Corpus) (*GenericModel, error) {
	counts := sparse.New()
	total := 0
	for _, d := range c.Docs {
		for _, oc := range d.Objects {
			counts.Add(int32(oc.Object), float64(oc.Count))
			total += oc.Count
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("corpus: cannot estimate generic model from %d documents with no objects", c.Len())
	}
	counts.Scale(1 / float64(total))
	return &GenericModel{probs: counts}, nil
}

// GenericFromVector adopts a previously estimated probability vector
// as a GenericModel — the binary-snapshot load path, which restores
// the exact Pg estimated at build time instead of re-counting the
// corpus. The vector is retained (not copied) and must not be
// modified afterwards.
func GenericFromVector(v sparse.Vector) (*GenericModel, error) {
	if v.Len() == 0 {
		return nil, fmt.Errorf("corpus: empty generic object model")
	}
	return &GenericModel{probs: v}, nil
}

// Prob returns Pg(v). Objects never seen in the collection have
// probability zero; the SHINE model only evaluates Pg on objects of
// the document being scored, which by construction were seen.
func (g *GenericModel) Prob(v hin.ObjectID) float64 {
	return g.probs.Get(int32(v))
}

// Support returns the number of objects with non-zero generic
// probability.
func (g *GenericModel) Support() int { return g.probs.Len() }

// Vector returns the underlying probability vector (shared; do not
// modify).
func (g *GenericModel) Vector() sparse.Vector { return g.probs }
