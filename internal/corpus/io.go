package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"shine/internal/hin"
)

// JSON-lines serialisation of ingested corpora, so that expensive
// preprocessing runs once and experiments replay from the object-bag
// form. Object IDs are graph-specific: a saved corpus is only valid
// against the graph it was ingested over (the header records the
// graph's object count as a cheap compatibility check).

type corpusHeader struct {
	Version int `json:"version"`
	// GraphObjects pins the corpus to a graph size; a mismatch at load
	// time means the corpus was ingested over a different network.
	GraphObjects int `json:"graphObjects"`
	Documents    int `json:"documents"`
}

type documentJSON struct {
	ID      string   `json:"id"`
	Mention string   `json:"mention"`
	Gold    int32    `json:"gold"`
	Objects [][2]int `json:"objects"` // [objectID, count] pairs
}

const corpusVersion = 1

// WriteTo serialises the corpus for the given graph.
func (c *Corpus) WriteTo(w io.Writer, g *hin.Graph) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(corpusHeader{
		Version:      corpusVersion,
		GraphObjects: g.NumObjects(),
		Documents:    c.Len(),
	}); err != nil {
		return fmt.Errorf("corpus: writing header: %w", err)
	}
	for _, d := range c.Docs {
		dj := documentJSON{ID: d.ID, Mention: d.Mention, Gold: int32(d.Gold)}
		for _, oc := range d.Objects {
			dj.Objects = append(dj.Objects, [2]int{int(oc.Object), oc.Count})
		}
		if err := enc.Encode(dj); err != nil {
			return fmt.Errorf("corpus: writing document %s: %w", d.ID, err)
		}
	}
	return bw.Flush()
}

// ReadCorpus deserialises a corpus written by WriteTo, validating it
// against the graph it will be used with.
func ReadCorpus(r io.Reader, g *hin.Graph) (*Corpus, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr corpusHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("corpus: reading header: %w", err)
	}
	if hdr.Version != corpusVersion {
		return nil, fmt.Errorf("corpus: unsupported corpus version %d", hdr.Version)
	}
	if hdr.GraphObjects != g.NumObjects() {
		return nil, fmt.Errorf("corpus: corpus was ingested over a graph with %d objects, this graph has %d",
			hdr.GraphObjects, g.NumObjects())
	}
	c := &Corpus{}
	for {
		var dj documentJSON
		if err := dec.Decode(&dj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("corpus: reading document %d: %w", c.Len(), err)
		}
		d := &Document{ID: dj.ID, Mention: dj.Mention, Gold: hin.ObjectID(dj.Gold)}
		for _, pair := range dj.Objects {
			obj, count := pair[0], pair[1]
			if obj < 0 || obj >= g.NumObjects() {
				return nil, fmt.Errorf("corpus: document %s references object %d outside the graph", dj.ID, obj)
			}
			if count < 1 {
				return nil, fmt.Errorf("corpus: document %s has non-positive count %d", dj.ID, count)
			}
			d.Objects = append(d.Objects, ObjectCount{Object: hin.ObjectID(obj), Count: count})
		}
		// Enforce the sorted-unique invariant NewDocument provides.
		for i := 1; i < len(d.Objects); i++ {
			if d.Objects[i].Object <= d.Objects[i-1].Object {
				return nil, fmt.Errorf("corpus: document %s objects not sorted/unique", dj.ID)
			}
		}
		c.Add(d)
	}
	if c.Len() != hdr.Documents {
		return nil, fmt.Errorf("corpus: header promises %d documents, file has %d", hdr.Documents, c.Len())
	}
	return c, nil
}
