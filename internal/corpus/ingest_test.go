package corpus

import (
	"testing"

	"shine/internal/hin"
)

// ingestGraph builds a DBLP graph with the vocabulary of the paper's
// Figure 1 example.
func ingestGraph(t testing.TB) (*hin.DBLPSchema, *hin.Graph, map[string]hin.ObjectID) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	ids := map[string]hin.ObjectID{
		"wei":    b.MustAddObject(d.Author, "Wei Wang 0003"),
		"muntz":  b.MustAddObject(d.Author, "Richard R. Muntz"),
		"sigmod": b.MustAddObject(d.Venue, "SIGMOD"),
		"vldb":   b.MustAddObject(d.Venue, "VLDB"),
		"data":   b.MustAddObject(d.Term, "data"),
		"mine":   b.MustAddObject(d.Term, "mine"), // stem of "mining"
		"1999":   b.MustAddObject(d.Year, "1999"),
	}
	return d, b.Build(), ids
}

func TestIngestRecognisesAllObjectTypes(t *testing.T) {
	d, g, ids := ingestGraph(t)
	in, err := NewIngester(g, DBLPIngestConfig(d))
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	text := "Wei Wang received a Ph.D in 1999 under Richard R. Muntz. " +
		"Her interests include data mining. She serves on SIGMOD and VLDB."
	doc := in.Ingest("doc1", "Wei Wang", ids["wei"], text)

	bag := doc.Bag()
	for _, key := range []string{"muntz", "sigmod", "vldb", "data", "mine", "1999"} {
		if bag.Get(int32(ids[key])) == 0 {
			t.Errorf("object %s not recognised", key)
		}
	}
	// The mention itself must have been removed.
	if bag.Get(int32(ids["wei"])) != 0 {
		t.Error("mention surface form appears in its own object bag")
	}
	if doc.Gold != ids["wei"] {
		t.Errorf("Gold = %d", doc.Gold)
	}
}

func TestIngestStripsDisambiguationSuffixInDictionary(t *testing.T) {
	d, g, ids := ingestGraph(t)
	in, err := NewIngester(g, DBLPIngestConfig(d))
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	// The graph stores "Wei Wang 0003" but the document says "Wei Wang";
	// ingesting a document about someone else must still resolve it.
	doc := in.Ingest("doc2", "Richard Muntz", ids["muntz"], "Joint work with Wei Wang on data.")
	if doc.Bag().Get(int32(ids["wei"])) == 0 {
		t.Error("suffixed author name not matched by plain surface form")
	}
}

func TestIngestDropsStopWordsAndUnknownTerms(t *testing.T) {
	d, g, ids := ingestGraph(t)
	in, err := NewIngester(g, DBLPIngestConfig(d))
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	doc := in.Ingest("doc3", "Wei Wang", ids["wei"],
		"The and of with zzzunknownzzz data")
	if got := doc.TotalCount(); got != 1 {
		t.Errorf("TotalCount = %d, want 1 (only 'data')", got)
	}
	if doc.Bag().Get(int32(ids["data"])) != 1 {
		t.Error("'data' not recognised")
	}
}

func TestIngestYearOutsideGraphDropped(t *testing.T) {
	d, g, ids := ingestGraph(t)
	in, err := NewIngester(g, DBLPIngestConfig(d))
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	doc := in.Ingest("doc4", "Wei Wang", ids["wei"], "in 1999 and 2005")
	if doc.Bag().Get(int32(ids["1999"])) != 1 {
		t.Error("1999 not recognised")
	}
	// 2005 is a valid year token but has no year object in the graph.
	if doc.TotalCount() != 1 {
		t.Errorf("TotalCount = %d, want 1", doc.TotalCount())
	}
}

func TestIngestCountsRepeats(t *testing.T) {
	d, g, ids := ingestGraph(t)
	in, err := NewIngester(g, DBLPIngestConfig(d))
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	doc := in.Ingest("doc5", "Wei Wang", ids["wei"], "data data data mining")
	if got := doc.Bag().Get(int32(ids["data"])); got != 3 {
		t.Errorf("count(data) = %v, want 3", got)
	}
	if got := doc.Bag().Get(int32(ids["mine"])); got != 1 {
		t.Errorf("count(mine) = %v, want 1", got)
	}
}

func TestNewIngesterRequiresDictObjects(t *testing.T) {
	d := hin.NewDBLPSchema()
	g := hin.NewBuilder(d.Schema).Build()
	if _, err := NewIngester(g, DBLPIngestConfig(d)); err == nil {
		t.Error("ingester over empty dictionary types accepted")
	}
}

func TestIngestConfigWithoutTermAndYear(t *testing.T) {
	d, g, ids := ingestGraph(t)
	cfg := IngestConfig{DictTypes: []hin.TypeID{d.Author, d.Venue}, YearType: hin.NoType, TermType: hin.NoType}
	in, err := NewIngester(g, cfg)
	if err != nil {
		t.Fatalf("NewIngester: %v", err)
	}
	doc := in.Ingest("doc6", "Wei Wang", ids["wei"], "SIGMOD 1999 data mining")
	if doc.TotalCount() != 1 {
		t.Errorf("TotalCount = %d, want 1 (only SIGMOD)", doc.TotalCount())
	}
}
