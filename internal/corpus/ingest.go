package corpus

import (
	"fmt"
	"strings"

	"shine/internal/hin"
	"shine/internal/textproc"
)

// IngestConfig declares, for a given schema, which object types are
// recognised in raw text and how — mirroring the paper's
// preprocessing: "we recognized objects of author type and objects of
// venue type from DBLP … using dictionary-based exact matching method.
// We identified objects of year type using regular expression. All
// remaining terms … are filtered by a stop word list and stemmed by
// Porter Stemmer."
type IngestConfig struct {
	// DictTypes are object types recognised by dictionary-based exact
	// matching of their names (e.g. author and venue in DBLP).
	DictTypes []hin.TypeID
	// YearType, if not hin.NoType, is the type assigned to four-digit
	// year tokens.
	YearType hin.TypeID
	// TermType, if not hin.NoType, is the type of stemmed leftover
	// terms.
	TermType hin.TypeID
}

// DBLPIngestConfig is the paper's DBLP configuration: dictionary
// matching for authors and venues, years by pattern, everything else
// stemmed into terms.
func DBLPIngestConfig(d *hin.DBLPSchema) IngestConfig {
	return IngestConfig{
		DictTypes: []hin.TypeID{d.Author, d.Venue},
		YearType:  d.Year,
		TermType:  d.Term,
	}
}

// IMDBIngestConfig recognises actors, directors and genres by
// dictionary and keywords as stemmed terms; movie plot text has no
// year role in the schema of Figure 2(b).
func IMDBIngestConfig(m *hin.IMDBSchema) IngestConfig {
	return IngestConfig{
		DictTypes: []hin.TypeID{m.Actor, m.Director, m.Genre},
		YearType:  hin.NoType,
		TermType:  m.Keyword,
	}
}

// Ingester converts raw document text into the typed-object bag
// representation, resolving surface forms against a graph. It is
// immutable after construction and safe for concurrent use.
type Ingester struct {
	g    *hin.Graph
	cfg  IngestConfig
	dict *textproc.Dictionary
}

// NewIngester builds the surface-form dictionary from the names of
// all objects of the configured dictionary types.
func NewIngester(g *hin.Graph, cfg IngestConfig) (*Ingester, error) {
	dict := textproc.NewDictionary()
	for _, t := range cfg.DictTypes {
		objs := g.ObjectsOfType(t)
		if objs == nil {
			return nil, fmt.Errorf("corpus: dictionary type %d has no objects", t)
		}
		for _, o := range objs {
			dict.Add(canonicalSurface(g.Name(o)), o)
		}
	}
	return &Ingester{g: g, cfg: cfg, dict: dict}, nil
}

// canonicalSurface strips a DBLP-style numeric disambiguation suffix
// ("Wei Wang 0010" -> "Wei Wang") so that documents, which use the
// plain surface form, still match the entity's dictionary entry.
func canonicalSurface(name string) string {
	fields := strings.Fields(name)
	if n := len(fields); n > 1 && isAllDigits(fields[n-1]) {
		fields = fields[:n-1]
	}
	return strings.Join(fields, " ")
}

// joinTokens renders a token sequence as space-joined text.
func joinTokens(toks []textproc.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Ingest converts text into a Document. The mention surface form
// itself is removed from the object bag, per the paper ("removed the
// author name mention itself"). Tokens and dictionary matches that
// resolve to no network object are dropped.
func (in *Ingester) Ingest(id, mention string, gold hin.ObjectID, text string) *Document {
	tokens := textproc.Tokenize(text)
	matches := in.dict.FindAll(tokens)
	// Normalise the mention the same way match surfaces are rendered
	// (tokenised and space-joined), so punctuation variants like
	// "Richard R. Muntz" still match their in-text occurrences.
	mentionLower := strings.ToLower(joinTokens(textproc.Tokenize(mention)))

	var objects []hin.ObjectID
	matched := make([]bool, len(tokens))
	for _, m := range matches {
		if strings.ToLower(m.Surface(tokens)) == mentionLower {
			// The mention itself: mark consumed but emit nothing.
			for i := m.TokenStart; i < m.TokenEnd; i++ {
				matched[i] = true
			}
			continue
		}
		for i := m.TokenStart; i < m.TokenEnd; i++ {
			matched[i] = true
		}
		objects = append(objects, m.Value.(hin.ObjectID))
	}

	for i, tok := range tokens {
		if matched[i] {
			continue
		}
		if in.cfg.YearType != hin.NoType && textproc.IsYear(tok.Lower) {
			if o, ok := in.g.Lookup(in.cfg.YearType, tok.Lower); ok {
				objects = append(objects, o)
			}
			continue
		}
		if in.cfg.TermType == hin.NoType {
			continue
		}
		if textproc.IsStopWord(tok.Lower) {
			continue
		}
		term := textproc.NormalizeTerm(tok.Lower)
		if term == "" {
			continue
		}
		if o, ok := in.g.Lookup(in.cfg.TermType, term); ok {
			objects = append(objects, o)
		}
	}
	return NewDocument(id, mention, gold, objects)
}
