package eval

import (
	"errors"
	"strings"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
)

func doc(id string, gold hin.ObjectID) *corpus.Document {
	return corpus.NewDocument(id, "Some Name", gold, nil)
}

func TestEvaluate(t *testing.T) {
	c := &corpus.Corpus{}
	c.Add(doc("a", 1))
	c.Add(doc("b", 2))
	c.Add(doc("c", 3))

	// A linker that gets a and b right and fails on c.
	l := LinkerFunc(func(d *corpus.Document) (hin.ObjectID, error) {
		switch d.ID {
		case "a":
			return 1, nil
		case "b":
			return 2, nil
		default:
			return hin.NoObject, errors.New("no candidates")
		}
	})
	s, err := Evaluate(l, c)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if s.Total != 3 || s.Linked != 2 || s.Correct != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.Accuracy != 2.0/3 {
		t.Errorf("Accuracy = %v", s.Accuracy)
	}
	if !strings.Contains(s.String(), "2/3") {
		t.Errorf("String = %q", s.String())
	}
}

func TestEvaluateErrors(t *testing.T) {
	l := LinkerFunc(func(d *corpus.Document) (hin.ObjectID, error) { return 1, nil })
	if _, err := Evaluate(l, &corpus.Corpus{}); err == nil {
		t.Error("empty corpus accepted")
	}
	c := &corpus.Corpus{}
	c.Add(doc("a", hin.NoObject))
	if _, err := Evaluate(l, c); err == nil {
		t.Error("unlabelled document accepted")
	}
}

func TestEvaluateNIL(t *testing.T) {
	c := &corpus.Corpus{}
	c.Add(doc("in-correct", 1))             // predicted 1: correct
	c.Add(doc("in-falsenil", 2))            // predicted NIL: false NIL
	c.Add(doc("nil-correct", hin.NoObject)) // predicted NIL: correct NIL
	c.Add(doc("nil-wrong", hin.NoObject))   // predicted 5: wrong

	l := LinkerFunc(func(d *corpus.Document) (hin.ObjectID, error) {
		switch d.ID {
		case "in-correct":
			return 1, nil
		case "in-falsenil", "nil-correct":
			return hin.NoObject, nil
		default:
			return 5, nil
		}
	})
	s, err := EvaluateNIL(l, c)
	if err != nil {
		t.Fatalf("EvaluateNIL: %v", err)
	}
	if s.Total != 4 || s.Correct != 2 || s.GoldNIL != 2 || s.CorrectNIL != 1 || s.FalseNIL != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Accuracy != 0.5 {
		t.Errorf("Accuracy = %v", s.Accuracy)
	}
	if _, err := EvaluateNIL(l, &corpus.Corpus{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]hin.ObjectID{1, 2, 3}, []hin.ObjectID{1, 9, 3})
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if acc != 2.0/3 {
		t.Errorf("Accuracy = %v", acc)
	}
	if _, err := Accuracy([]hin.ObjectID{1}, []hin.ObjectID{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}
