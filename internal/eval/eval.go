// Package eval provides the evaluation harness: the accuracy measure
// used throughout the paper's Section 5 ("the number of correctly
// linked entity mentions divided by the total number of all
// mentions"), a uniform Linker interface over SHINE and the
// baselines, and timing helpers for the scalability experiments.
package eval

import (
	"fmt"
	"time"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// Linker resolves one document's mention to an entity. Both baselines
// implement it directly; shine.Model is adapted with LinkerFunc.
type Linker interface {
	Link(doc *corpus.Document) (hin.ObjectID, error)
}

// LinkerFunc adapts a function to the Linker interface.
type LinkerFunc func(doc *corpus.Document) (hin.ObjectID, error)

// Link implements Linker.
func (f LinkerFunc) Link(doc *corpus.Document) (hin.ObjectID, error) { return f(doc) }

// Summary is the outcome of evaluating a linker on a corpus.
type Summary struct {
	// Total is the number of documents evaluated.
	Total int
	// Linked is the number of mentions the linker produced an entity
	// for.
	Linked int
	// Correct is the number of mentions linked to their gold entity.
	Correct int
	// Accuracy is Correct / Total.
	Accuracy float64
	// Elapsed is the wall-clock time of the whole evaluation.
	Elapsed time.Duration
}

// String renders the summary in the style of the paper's tables.
func (s Summary) String() string {
	return fmt.Sprintf("%d/%d correct, accuracy %.3f (%.2fs)",
		s.Correct, s.Total, s.Accuracy, s.Elapsed.Seconds())
}

// Evaluate runs the linker over every document and scores it against
// the gold labels. Documents with unknown gold (hin.NoObject) are
// rejected: accuracy over them is undefined.
func Evaluate(l Linker, c *corpus.Corpus) (Summary, error) {
	if c.Len() == 0 {
		return Summary{}, fmt.Errorf("eval: empty corpus")
	}
	start := time.Now()
	s := Summary{Total: c.Len()}
	for _, doc := range c.Docs {
		if doc.Gold == hin.NoObject {
			return Summary{}, fmt.Errorf("eval: document %s has no gold label", doc.ID)
		}
		e, err := l.Link(doc)
		if err != nil {
			continue // unlinked mentions count as incorrect
		}
		s.Linked++
		if e == doc.Gold {
			s.Correct++
		}
	}
	s.Accuracy = float64(s.Correct) / float64(s.Total)
	s.Elapsed = time.Since(start)
	return s, nil
}

// NILSummary extends Summary with the NIL-specific counts of an
// evaluation where gold labels may be hin.NoObject (the mention's
// entity is absent from the network).
type NILSummary struct {
	Summary
	// GoldNIL is how many documents have a NIL gold label.
	GoldNIL int
	// CorrectNIL is how many NIL documents were predicted NIL.
	CorrectNIL int
	// FalseNIL is how many in-network mentions were predicted NIL.
	FalseNIL int
}

// EvaluateNIL scores a NIL-capable linker: a prediction of
// hin.NoObject means "not in the network", and a gold label of
// hin.NoObject means the mention truly has no network entity. Linker
// errors still count as incorrect (and as unlinked).
func EvaluateNIL(l Linker, c *corpus.Corpus) (NILSummary, error) {
	if c.Len() == 0 {
		return NILSummary{}, fmt.Errorf("eval: empty corpus")
	}
	start := time.Now()
	s := NILSummary{Summary: Summary{Total: c.Len()}}
	for _, doc := range c.Docs {
		if doc.Gold == hin.NoObject {
			s.GoldNIL++
		}
		e, err := l.Link(doc)
		if err != nil {
			continue
		}
		s.Linked++
		switch {
		case e == doc.Gold && e == hin.NoObject:
			s.Correct++
			s.CorrectNIL++
		case e == doc.Gold:
			s.Correct++
		case e == hin.NoObject:
			s.FalseNIL++
		}
	}
	s.Accuracy = float64(s.Correct) / float64(s.Total)
	s.Elapsed = time.Since(start)
	return s, nil
}

// Accuracy computes the paper's accuracy measure from parallel gold
// and predicted entity slices.
func Accuracy(gold, pred []hin.ObjectID) (float64, error) {
	if len(gold) != len(pred) {
		return 0, fmt.Errorf("eval: %d gold labels for %d predictions", len(gold), len(pred))
	}
	if len(gold) == 0 {
		return 0, fmt.Errorf("eval: no predictions")
	}
	correct := 0
	for i := range gold {
		if gold[i] == pred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(gold)), nil
}
