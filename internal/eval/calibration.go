package eval

import (
	"fmt"
	"math"
)

// CalibrationBin is one confidence bucket of a calibration analysis:
// of the predictions whose posterior fell in [Lo, Hi), how many were
// actually right. A well-calibrated linker has Accuracy ≈
// MeanPosterior in every bin — then the posterior can be trusted as a
// confidence score for downstream filtering (e.g. only auto-populate
// facts above 0.9).
type CalibrationBin struct {
	// Lo and Hi bound the bin, half-open except the last bin which
	// includes 1.
	Lo, Hi float64
	// Count is the number of predictions in the bin; Correct how many
	// matched gold.
	Count, Correct int
	// MeanPosterior is the average predicted confidence in the bin.
	MeanPosterior float64
	// Accuracy is Correct/Count (0 for empty bins).
	Accuracy float64
}

// Calibration buckets predictions by posterior into the given number
// of equal-width bins over [0, 1] and scores each bucket.
func Calibration(posteriors []float64, correct []bool, bins int) ([]CalibrationBin, error) {
	if len(posteriors) != len(correct) {
		return nil, fmt.Errorf("eval: %d posteriors for %d outcomes", len(posteriors), len(correct))
	}
	if len(posteriors) == 0 {
		return nil, fmt.Errorf("eval: no predictions to calibrate")
	}
	if bins < 1 {
		return nil, fmt.Errorf("eval: %d bins", bins)
	}
	out := make([]CalibrationBin, bins)
	width := 1.0 / float64(bins)
	for i := range out {
		out[i].Lo = float64(i) * width
		out[i].Hi = float64(i+1) * width
	}
	sums := make([]float64, bins)
	for i, p := range posteriors {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("eval: posterior %v outside [0, 1]", p)
		}
		b := int(p / width)
		if b >= bins {
			b = bins - 1 // p == 1 lands in the top bin
		}
		out[b].Count++
		sums[b] += p
		if correct[i] {
			out[b].Correct++
		}
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].MeanPosterior = sums[i] / float64(out[i].Count)
			out[i].Accuracy = float64(out[i].Correct) / float64(out[i].Count)
		}
	}
	return out, nil
}

// ExpectedCalibrationError summarises calibration as the
// count-weighted mean |Accuracy − MeanPosterior| across bins — 0 for
// a perfectly calibrated model.
func ExpectedCalibrationError(bins []CalibrationBin) float64 {
	total := 0
	ece := 0.0
	for _, b := range bins {
		total += b.Count
		ece += float64(b.Count) * math.Abs(b.Accuracy-b.MeanPosterior)
	}
	if total == 0 {
		return 0
	}
	return ece / float64(total)
}
