package eval

import (
	"errors"
	"math"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
)

func TestMcNemarIdenticalLinkers(t *testing.T) {
	a := []bool{true, false, true, true}
	r, err := McNemar(a, a)
	if err != nil {
		t.Fatalf("McNemar: %v", err)
	}
	if r.OnlyA != 0 || r.OnlyB != 0 {
		t.Errorf("discordants = %d, %d", r.OnlyA, r.OnlyB)
	}
	if r.PValue != 1 {
		t.Errorf("PValue = %v, want 1", r.PValue)
	}
	if r.Significant(0.05) {
		t.Error("identical linkers significantly different")
	}
}

func TestMcNemarExactBranch(t *testing.T) {
	// 8 discordant pairs, all favouring A: exact two-sided binomial
	// p = 2 * 0.5^8 = 0.0078125.
	a := make([]bool, 20)
	b := make([]bool, 20)
	for i := 0; i < 8; i++ {
		a[i] = true // A right, B wrong
	}
	for i := 8; i < 20; i++ {
		a[i], b[i] = true, true // concordant
	}
	r, err := McNemar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Error("exact branch not used for 8 discordant pairs")
	}
	if math.Abs(r.PValue-2*math.Pow(0.5, 8)) > 1e-9 {
		t.Errorf("PValue = %v, want %v", r.PValue, 2*math.Pow(0.5, 8))
	}
	if !r.Significant(0.05) {
		t.Error("one-sided sweep of 8 pairs not significant")
	}
}

func TestMcNemarChiSquaredBranch(t *testing.T) {
	// 40 discordant pairs: 30 favour A, 10 favour B.
	n := 100
	a := make([]bool, n)
	b := make([]bool, n)
	for i := 0; i < 30; i++ {
		a[i] = true
	}
	for i := 30; i < 40; i++ {
		b[i] = true
	}
	r, err := McNemar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Error("exact branch used for 40 discordant pairs")
	}
	// Statistic = (|30-10|-1)^2/40 = 361/40 = 9.025 -> p ≈ 0.0027.
	if math.Abs(r.Statistic-9.025) > 1e-9 {
		t.Errorf("Statistic = %v", r.Statistic)
	}
	if r.PValue > 0.01 || r.PValue < 0.001 {
		t.Errorf("PValue = %v, want ≈ 0.0027", r.PValue)
	}
	// Balanced discordants are not significant.
	b2 := make([]bool, n)
	a2 := make([]bool, n)
	for i := 0; i < 20; i++ {
		a2[i] = true
	}
	for i := 20; i < 40; i++ {
		b2[i] = true
	}
	r2, _ := McNemar(a2, b2)
	if r2.Significant(0.05) {
		t.Errorf("balanced discordants significant: p = %v", r2.PValue)
	}
}

func TestMcNemarErrors(t *testing.T) {
	if _, err := McNemar([]bool{true}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := McNemar(nil, nil); err == nil {
		t.Error("empty outcomes accepted")
	}
}

func TestCompareLinkers(t *testing.T) {
	c := &corpus.Corpus{}
	for i := 0; i < 10; i++ {
		c.Add(doc("d", hin.ObjectID(i)))
	}
	// Linker A gets everything right; B fails on gold >= 5 and errors
	// on gold 9.
	perfect := LinkerFunc(func(d *corpus.Document) (hin.ObjectID, error) { return d.Gold, nil })
	flaky := LinkerFunc(func(d *corpus.Document) (hin.ObjectID, error) {
		if d.Gold == 9 {
			return hin.NoObject, errors.New("boom")
		}
		if d.Gold >= 5 {
			return d.Gold + 100, nil
		}
		return d.Gold, nil
	})
	r, err := CompareLinkers(perfect, flaky, c)
	if err != nil {
		t.Fatalf("CompareLinkers: %v", err)
	}
	if r.OnlyA != 5 || r.OnlyB != 0 {
		t.Errorf("discordants = %d, %d; want 5, 0", r.OnlyA, r.OnlyB)
	}
	if _, err := CompareLinkers(perfect, flaky, &corpus.Corpus{}); err == nil {
		t.Error("empty corpus accepted")
	}
}
