package eval

import (
	"fmt"
	"math"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// McNemarResult reports McNemar's test over paired linking outcomes —
// the standard significance test for two classifiers evaluated on the
// same items, matching the paper's claim language ("SHINE
// significantly outperforms the baselines").
type McNemarResult struct {
	// OnlyANCorrect counts items A got right and B got wrong; OnlyB
	// the reverse. Concordant items carry no information about the
	// difference and are discarded by the test.
	OnlyA, OnlyB int
	// Statistic is the test statistic (continuity-corrected
	// chi-squared for large discordant counts; reported as 0 when the
	// exact binomial branch is taken).
	Statistic float64
	// PValue is the two-sided p-value for the null hypothesis that
	// both linkers have the same error rate.
	PValue float64
	// Exact reports whether the exact binomial test was used (small
	// discordant counts) rather than the chi-squared approximation.
	Exact bool
}

// Significant reports whether the difference is significant at the
// given level (e.g. 0.05).
func (r McNemarResult) Significant(alpha float64) bool {
	return r.PValue < alpha
}

// McNemar runs the test over paired correctness outcomes. Slices must
// be equal length, one entry per evaluated item.
func McNemar(correctA, correctB []bool) (McNemarResult, error) {
	if len(correctA) != len(correctB) {
		return McNemarResult{}, fmt.Errorf("eval: %d vs %d outcomes", len(correctA), len(correctB))
	}
	if len(correctA) == 0 {
		return McNemarResult{}, fmt.Errorf("eval: no outcomes")
	}
	var r McNemarResult
	for i := range correctA {
		switch {
		case correctA[i] && !correctB[i]:
			r.OnlyA++
		case !correctA[i] && correctB[i]:
			r.OnlyB++
		}
	}
	n := r.OnlyA + r.OnlyB
	if n == 0 {
		// The linkers agree everywhere; no evidence of a difference.
		r.PValue = 1
		r.Exact = true
		return r, nil
	}
	if n < 25 {
		// Exact two-sided binomial test on the discordant pairs.
		r.Exact = true
		k := r.OnlyA
		if r.OnlyB < k {
			k = r.OnlyB
		}
		p := 0.0
		for i := 0; i <= k; i++ {
			p += binomPMF(n, i)
		}
		r.PValue = math.Min(1, 2*p)
		return r, nil
	}
	// Chi-squared with continuity correction:
	// (|b−c|−1)² / (b+c), 1 degree of freedom.
	d := math.Abs(float64(r.OnlyA-r.OnlyB)) - 1
	if d < 0 {
		d = 0
	}
	r.Statistic = d * d / float64(n)
	// P(X² ≥ s) for 1 df equals erfc(sqrt(s/2)).
	r.PValue = math.Erfc(math.Sqrt(r.Statistic / 2))
	return r, nil
}

// binomPMF is C(n, k)·0.5^n computed in log space for stability.
func binomPMF(n, k int) float64 {
	lg := lgammaInt(n+1) - lgammaInt(k+1) - lgammaInt(n-k+1) + float64(n)*math.Log(0.5)
	return math.Exp(lg)
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// CompareLinkers evaluates both linkers on the corpus and runs
// McNemar's test over the paired outcomes. An error from either
// linker on a document counts as an incorrect outcome for it.
func CompareLinkers(a, b Linker, c *corpus.Corpus) (McNemarResult, error) {
	if c.Len() == 0 {
		return McNemarResult{}, fmt.Errorf("eval: empty corpus")
	}
	outcomesA := make([]bool, c.Len())
	outcomesB := make([]bool, c.Len())
	for i, doc := range c.Docs {
		if doc.Gold == hin.NoObject {
			return McNemarResult{}, fmt.Errorf("eval: document %s has no gold label", doc.ID)
		}
		if e, err := a.Link(doc); err == nil && e == doc.Gold {
			outcomesA[i] = true
		}
		if e, err := b.Link(doc); err == nil && e == doc.Gold {
			outcomesB[i] = true
		}
	}
	return McNemar(outcomesA, outcomesB)
}
