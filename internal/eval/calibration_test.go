package eval

import (
	"math"
	"testing"
)

func TestCalibrationBuckets(t *testing.T) {
	posteriors := []float64{0.05, 0.15, 0.95, 0.95, 1.0}
	correct := []bool{false, false, true, true, true}
	bins, err := Calibration(posteriors, correct, 10)
	if err != nil {
		t.Fatalf("Calibration: %v", err)
	}
	if len(bins) != 10 {
		t.Fatalf("got %d bins", len(bins))
	}
	if bins[0].Count != 1 || bins[0].Correct != 0 {
		t.Errorf("bin 0 = %+v", bins[0])
	}
	if bins[1].Count != 1 {
		t.Errorf("bin 1 = %+v", bins[1])
	}
	// p = 1.0 must land in the last bin, not out of range.
	if bins[9].Count != 3 || bins[9].Correct != 3 {
		t.Errorf("bin 9 = %+v", bins[9])
	}
	if bins[9].Accuracy != 1 {
		t.Errorf("bin 9 accuracy = %v", bins[9].Accuracy)
	}
	if math.Abs(bins[9].MeanPosterior-(0.95+0.95+1.0)/3) > 1e-12 {
		t.Errorf("bin 9 mean posterior = %v", bins[9].MeanPosterior)
	}
}

func TestCalibrationErrors(t *testing.T) {
	if _, err := Calibration([]float64{0.5}, []bool{true, false}, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Calibration(nil, nil, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Calibration([]float64{0.5}, []bool{true}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Calibration([]float64{1.5}, []bool{true}, 10); err == nil {
		t.Error("out-of-range posterior accepted")
	}
}

func TestExpectedCalibrationError(t *testing.T) {
	// Perfectly calibrated: accuracy equals mean posterior per bin.
	perfect := []CalibrationBin{
		{Count: 10, Correct: 9, MeanPosterior: 0.9, Accuracy: 0.9},
		{Count: 10, Correct: 5, MeanPosterior: 0.5, Accuracy: 0.5},
	}
	if got := ExpectedCalibrationError(perfect); got != 0 {
		t.Errorf("ECE of perfect calibration = %v", got)
	}
	// Overconfident: predicts 0.9, achieves 0.5.
	over := []CalibrationBin{
		{Count: 10, Correct: 5, MeanPosterior: 0.9, Accuracy: 0.5},
	}
	if got := ExpectedCalibrationError(over); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("ECE = %v, want 0.4", got)
	}
	if got := ExpectedCalibrationError(nil); got != 0 {
		t.Errorf("ECE of no bins = %v", got)
	}
}
