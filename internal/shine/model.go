package shine

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/pagerank"
	"shine/internal/surftrie"
)

// ErrNoCandidates is returned by Link when a mention's surface form
// matches no entity in the network. The paper assumes the network
// contains all mapping entities, so this signals a dataset problem
// rather than a NIL prediction.
var ErrNoCandidates = errors.New("shine: mention has no candidate entities")

// Model is a SHINE entity linking model over a fixed network, entity
// type and meta-path set. Construct with New, optionally learn
// meta-path weights with Learn, then Link documents. A Model is safe
// for concurrent Link calls, and Learn or SetWeights may run while
// readers are active: each read snapshots the weight vector, so a
// concurrent reader sees either the old or the new weights, never a
// partial write. Rebind and SetGeneric still must not race with any
// other use.
type Model struct {
	graph      *hin.Graph
	entityType hin.TypeID
	paths      []metapath.Path
	cfg        Config

	// wmu guards weights and wver: Link-path readers snapshot under
	// RLock while Learn/SetWeights install a full vector under Lock.
	wmu     sync.RWMutex
	weights []float64
	// wver counts weight installs. Frozen mixture-index entries are
	// tagged with the version they were built at, so a concurrent
	// install can never leave stale mixtures serving new weights.
	wver uint64

	// mixtures is the frozen serving index: per candidate entity, the
	// full meta-path mixture Σ_p w_p·Pe(v|p) as an immutable CSR
	// distribution. Built lazily (or via PrecomputeMixtures) and
	// invalidated by installWeights and Rebind.
	mixtures mixtureIndex

	popularity map[hin.ObjectID]float64
	// prScores is the raw whole-network centrality vector behind
	// popularity (nil under PopularityUniform), produced by the
	// cfg.Centrality backend. WithDelta warm-starts the backend's
	// Refine from it where supported, so an incremental update
	// re-converges in a handful of sweeps instead of a cold run.
	prScores []float64
	// prSeconds/prIterations record the most recent offline PageRank
	// run (zero under PopularityUniform); published as gauges by
	// SetMetrics and refreshed by Rebind. prWarmIterations is the
	// sweep count of the most recent warm-started refresh (zero for
	// cold-built models).
	prSeconds        float64
	prIterations     int
	prWarmIterations int
	// cands generates candidate entities; by default the surface-form
	// trie in trie, but replaceable via SetCandidateSource. trie keeps
	// the concrete pointer for snapshotting and is nil when a custom
	// source is installed.
	cands  CandidateSource
	trie   *surftrie.Trie
	walker *metapath.Walker
	generic      *corpus.GenericModel
	// metrics, when non-nil, instruments link and EM hot paths; see
	// SetMetrics.
	metrics *modelMetrics
}

// New builds a model: it computes the entity popularity offline (the
// paper computes PageRank scores offline for the whole network),
// indexes entity names for candidate generation, and estimates the
// generic object model from the document collection. Weights start
// uniform over the path set; call Learn to fit them, or SetWeights to
// impose them.
func New(g *hin.Graph, entityType hin.TypeID, paths []metapath.Path, docs *corpus.Corpus, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, errors.New("shine: empty meta-path set")
	}
	for _, p := range paths {
		if p.IsEmpty() {
			return nil, errors.New("shine: empty meta-path in path set")
		}
		if st := p.StartType(g.Schema()); st != entityType {
			return nil, fmt.Errorf("shine: path %s starts at type %s, entity type is %s",
				p, g.Schema().Type(st).Abbrev, g.Schema().Type(entityType).Abbrev)
		}
	}

	pop, prScores, prSeconds, prIters, err := computePopularity(g, entityType, cfg)
	if err != nil {
		return nil, err
	}

	trie, err := surftrie.Build(g, entityType)
	if err != nil {
		return nil, fmt.Errorf("shine: indexing entity names: %w", err)
	}
	gen, err := corpus.EstimateGeneric(docs)
	if err != nil {
		return nil, fmt.Errorf("shine: estimating generic object model: %w", err)
	}

	m := &Model{
		graph:        g,
		entityType:   entityType,
		paths:        append([]metapath.Path(nil), paths...),
		weights:      make([]float64, len(paths)),
		cfg:          cfg,
		popularity:   pop,
		prScores:     prScores,
		prSeconds:    prSeconds,
		prIterations: prIters,
		cands:        trie,
		trie:         trie,
		walker:       metapath.NewWalker(g, cfg.WalkCacheSize),
		generic:      gen,
	}
	for i := range m.weights {
		m.weights[i] = 1 / float64(len(paths))
	}
	return m, nil
}

// computePopularity runs the configured offline popularity model over
// g: uniform (Formula 5), or the configured centrality backend
// normalised over the entity set (Formulas 6–7 with "pagerank", the
// paper's choice and the default; see pagerank.NewCentrality for
// "degree", "hits" and "ppr"). The centrality kernel inherits
// cfg.Workers when cfg.PageRank.Workers is unset, so `-workers`
// bounds the whole offline pipeline, not just EM; any worker count
// produces bit-identical scores. Returns the popularity map, the raw
// score vector (nil in uniform mode; WithDelta warm-starts from it),
// plus the centrality wall-clock seconds and iteration count (both
// zero in uniform mode) for the shine_pagerank_*/shine_centrality_*
// gauges.
func computePopularity(g *hin.Graph, entityType hin.TypeID, cfg Config) (map[hin.ObjectID]float64, []float64, float64, int, error) {
	if cfg.Popularity == PopularityUniform {
		p, err := pagerank.UniformPopularity(g, entityType)
		return p, nil, 0, 0, err
	}
	cen, err := pagerank.NewCentrality(cfg.CentralityName(), entityType)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("shine: computing popularity: %w", err)
	}
	prOpts := cfg.PageRank
	if prOpts.Workers == 0 {
		prOpts.Workers = cfg.Workers
	}
	start := time.Now()
	res, err := cen.Compute(g, prOpts)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("shine: computing popularity: %w", err)
	}
	seconds := time.Since(start).Seconds()
	p, err := pagerank.EntityPopularity(g, res.Scores, entityType)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return p, res.Scores, seconds, res.Iterations, nil
}

// Graph returns the model's network.
func (m *Model) Graph() *hin.Graph { return m.graph }

// EntityType returns the type of the entities the model links to.
func (m *Model) EntityType() hin.TypeID { return m.entityType }

// Paths returns the meta-path set (shared; do not modify).
func (m *Model) Paths() []metapath.Path { return m.paths }

// Weights returns a copy of the current meta-path weight vector.
func (m *Model) Weights() []float64 {
	return m.snapshotWeights()
}

// snapshotWeights copies the weight vector under the read lock; the
// Link hot path scores a whole mention against one consistent
// snapshot even while Learn installs a new vector.
func (m *Model) snapshotWeights() []float64 {
	m.wmu.RLock()
	defer m.wmu.RUnlock()
	return append([]float64(nil), m.weights...)
}

// installWeights replaces the weight vector under the write lock and
// invalidates the frozen mixture index — its entries embed the old
// weights.
func (m *Model) installWeights(w []float64) {
	m.wmu.Lock()
	copy(m.weights, w)
	m.wver++
	ver := m.wver
	m.wmu.Unlock()
	m.mixtures.invalidate(ver)
	if m.cfg.PrecomputeMixtures {
		// Eager mode: rebuild the serving index now so the first
		// request after a weight install pays no walk latency. Errors
		// here are walk failures a later lazy build would hit too.
		m.PrecomputeMixtures()
	}
}

// SetWeights imposes a weight vector. Weights must be non-negative
// and are renormalised to sum to 1.
func (m *Model) SetWeights(w []float64) error {
	if len(w) != len(m.paths) {
		return fmt.Errorf("shine: %d weights for %d paths", len(w), len(m.paths))
	}
	sum := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("shine: invalid weight %v", x)
		}
		sum += x
	}
	if sum == 0 {
		return errors.New("shine: all-zero weight vector")
	}
	norm := make([]float64, len(w))
	for i, x := range w {
		norm[i] = x / sum
	}
	m.installWeights(norm)
	return nil
}

// Rebind moves the model onto a new graph — typically the same
// network after enrichment (populate) — keeping the learned weights
// and configuration. Popularity, the name index and the walk cache
// are recomputed; the meta-path set is re-validated against the new
// schema. Object IDs need not be compatible between the graphs.
func (m *Model) Rebind(g *hin.Graph) error {
	for _, p := range m.paths {
		if st := p.StartType(g.Schema()); st != m.entityType {
			return fmt.Errorf("shine: path %s starts at type %d on the new schema, entity type is %d",
				p, st, m.entityType)
		}
	}
	pop, prScores, prSeconds, prIters, err := computePopularity(g, m.entityType, m.cfg)
	if err != nil {
		return err
	}
	trie, err := surftrie.Build(g, m.entityType)
	if err != nil {
		return fmt.Errorf("shine: reindexing entity names: %w", err)
	}
	m.graph = g
	m.popularity = pop
	m.prScores = prScores
	m.prSeconds, m.prIterations = prSeconds, prIters
	m.prWarmIterations = 0 // a rebind is a cold recompute
	m.metrics.observePageRank(prSeconds, prIters, 0)
	m.cands = trie
	m.trie = trie
	m.walker = metapath.NewWalker(g, m.cfg.WalkCacheSize)
	// Frozen mixtures embed walk distributions over the old graph's
	// object IDs; bump the version so none survive the rebind.
	m.wmu.Lock()
	m.wver++
	ver := m.wver
	m.wmu.Unlock()
	m.mixtures.invalidate(ver)
	return nil
}

// SetGeneric re-estimates the generic object model Pg from a new
// document collection, keeping everything else (popularity, weights,
// walk caches) intact. A serving deployment calls this as its corpus
// grows, so smoothing tracks the evolving domain vocabulary without
// re-running PageRank or EM. Must not race with concurrent Link
// calls.
func (m *Model) SetGeneric(docs *corpus.Corpus) error {
	gen, err := corpus.EstimateGeneric(docs)
	if err != nil {
		return fmt.Errorf("shine: re-estimating generic object model: %w", err)
	}
	m.generic = gen
	return nil
}

// Popularity returns P(e) for an entity (0 for non-entities).
func (m *Model) Popularity(e hin.ObjectID) float64 { return m.popularity[e] }

// Candidates returns the candidate entity set for a mention surface
// form, per the paper's string-comparison rules. The returned slice is
// freshly allocated on every call and owned by the caller; mutating it
// cannot corrupt the index.
func (m *Model) Candidates(mention string) []hin.ObjectID {
	return m.cands.Candidates(mention)
}

// EntityObjectProb returns the smoothed object model probability
// P(v|e) = θ·Pe(v) + (1−θ)·Pg(v) (Formula 9) for a single object —
// the quantity tabulated per candidate in the paper's Figure 3. The
// entity's full mixture is memoised in the mixture index, so probing N
// objects of one entity walks the meta-paths once, not N times.
func (m *Model) EntityObjectProb(e, v hin.ObjectID) (float64, error) {
	pe, err := m.entityMixture(e)
	if err != nil {
		return 0, err
	}
	return m.cfg.Theta*pe.Get(int32(v)) + (1-m.cfg.Theta)*m.generic.Prob(v), nil
}

// EntitySpecificProb returns the unsmoothed Pe(v) = Σ_p w_p Pe(v|p)
// (Formula 12).
func (m *Model) EntitySpecificProb(e, v hin.ObjectID) (float64, error) {
	pe, err := m.entityMixture(e)
	if err != nil {
		return 0, err
	}
	return pe.Get(int32(v)), nil
}

// CandidateScore is one candidate's posterior under the model.
type CandidateScore struct {
	Entity hin.ObjectID
	// LogJoint is ln P(m, d, e) = ln η + ln P(e) + ln P(d|e).
	LogJoint float64
	// Posterior is P(e|m, d) over the candidate set (Formula 18).
	Posterior float64
}

// Result is the outcome of linking one mention.
type Result struct {
	// Entity is the argmax candidate.
	Entity hin.ObjectID
	// Candidates holds every candidate's score, sorted by descending
	// posterior (ties broken by ascending entity ID).
	Candidates []CandidateScore
}

// Link resolves the document's mention to its most likely entity
// (Problem 1: argmax_e P(e|m, d)).
func (m *Model) Link(doc *corpus.Document) (Result, error) {
	return m.LinkContext(context.Background(), doc)
}

// LinkContext is Link under a request context. Cancellation is
// checked between candidates and — inside the walker — between
// meta-path hops, so a client that disconnects or times out stops
// paying for the remaining walk work instead of completing it. A
// canceled link returns an error satisfying errors.Is(err, ctx.Err())
// and leaves no partial state behind (unfinished walks and mixtures
// are discarded, not cached).
func (m *Model) LinkContext(ctx context.Context, doc *corpus.Document) (Result, error) {
	mm := m.metrics
	var start time.Time
	if mm != nil {
		start = time.Now()
	}
	res, err := m.link(ctx, doc)
	mm.observeLink(start, res, err)
	return res, err
}

func (m *Model) link(ctx context.Context, doc *corpus.Document) (Result, error) {
	cands := m.lookupCandidates(doc.Mention)
	if len(cands) == 0 {
		return Result{Entity: hin.NoObject}, fmt.Errorf("%w: %q", ErrNoCandidates, doc.Mention)
	}
	w, ver := m.snapshotWeightsVer()
	mx, err := m.prepareMentionMixtures(ctx, doc, cands, w, ver)
	if err != nil {
		return Result{Entity: hin.NoObject}, err
	}
	logs := make([]float64, len(cands))
	for i, e := range cands {
		logs[i] = m.logJointFrozen(mx, i, e)
	}
	post := softmax(logs)

	res := Result{Candidates: make([]CandidateScore, len(cands))}
	for i, e := range cands {
		res.Candidates[i] = CandidateScore{Entity: e, LogJoint: logs[i], Posterior: post[i]}
	}
	slices.SortFunc(res.Candidates, func(ca, cb CandidateScore) int {
		if ca.Posterior != cb.Posterior {
			return cmp.Compare(cb.Posterior, ca.Posterior)
		}
		return cmp.Compare(ca.Entity, cb.Entity)
	})
	res.Entity = res.Candidates[0].Entity
	return res, nil
}

// LinkAll links every document in the corpus, returning one result
// per document in order. Documents without candidates produce a
// Result with Entity == hin.NoObject and are counted in the returned
// error only if all fail.
func (m *Model) LinkAll(c *corpus.Corpus) ([]Result, error) {
	results := make([]Result, c.Len())
	failures := 0
	for i, doc := range c.Docs {
		r, err := m.Link(doc)
		if err != nil {
			failures++
		}
		results[i] = r
	}
	if failures == c.Len() && c.Len() > 0 {
		return results, fmt.Errorf("shine: all %d mentions failed to link", failures)
	}
	return results, nil
}

// logJoint computes ln(η·P(e)·P(d|e)) for candidate i of a prepared
// mention under the given weight vector, flooring probabilities at
// cfg.ProbFloor.
func (m *Model) logJoint(md *mentionData, i int, weights []float64) float64 {
	c := &md.cands[i]
	score := math.Log(m.cfg.Eta) + math.Log(math.Max(m.popularity[c.entity], m.cfg.ProbFloor))
	theta := m.cfg.Theta
	for oi := range md.counts {
		pe := 0.0
		for pi := range weights {
			pe += weights[pi] * c.pathProb[pi][oi]
		}
		pv := theta*pe + (1-theta)*md.generic[oi]
		score += md.counts[oi] * math.Log(math.Max(pv, m.cfg.ProbFloor))
	}
	return score
}

// softmax converts log scores into a normalised posterior.
func softmax(logs []float64) []float64 {
	max := math.Inf(-1)
	for _, l := range logs {
		if l > max {
			max = l
		}
	}
	out := make([]float64, len(logs))
	sum := 0.0
	for i, l := range logs {
		out[i] = math.Exp(l - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
