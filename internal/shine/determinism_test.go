package shine

import (
	"bytes"
	"math"
	"testing"

	"shine/internal/metapath"
	"shine/internal/synth"
)

// determinismDataset is a quick synthetic dataset for the golden
// worker-count tests: small enough that training three models stays
// fast, large enough that EM runs several iterations and the blocked
// reductions span many blocks.
func determinismDataset(t testing.TB) *synth.Dataset {
	t.Helper()
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 150
	net.AmbiguousGroups = 4
	net.Topics = 4
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 40
	ds, err := synth.BuildDataset(net, doc)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	return ds
}

// trainWithWorkers builds a fresh model over ds with the given worker
// count and runs one full Learn.
func trainWithWorkers(t *testing.T, ds *synth.Dataset, workers int) (*Model, *LearnStats) {
	t.Helper()
	d := ds.Data.Schema
	cfg := DefaultConfig()
	cfg.Workers = workers
	m, err := New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, cfg)
	if err != nil {
		t.Fatalf("New(workers=%d): %v", workers, err)
	}
	stats, err := m.Learn(ds.Corpus)
	if err != nil {
		t.Fatalf("Learn(workers=%d): %v", workers, err)
	}
	return m, stats
}

// sameBits reports bit-for-bit float equality — the determinism
// guarantee is exact, not approximate.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestLearnDeterministicAcrossWorkers is the golden determinism test:
// training serially (Workers=1) and with parallel fan-out (4, 8
// workers) must produce bit-identical objectives per EM iteration,
// bit-identical weight traces, byte-identical saved models, and
// identical link decisions.
func TestLearnDeterministicAcrossWorkers(t *testing.T) {
	ds := determinismDataset(t)
	base, baseStats := trainWithWorkers(t, ds, 1)

	var baseSaved bytes.Buffer
	if err := base.Save(&baseSaved); err != nil {
		t.Fatalf("Save: %v", err)
	}
	baseResults, _, err := base.LinkAllParallel(ds.Corpus, 1)
	if err != nil {
		t.Fatalf("LinkAllParallel: %v", err)
	}

	for _, workers := range []int{4, 8} {
		m, stats := trainWithWorkers(t, ds, workers)

		if stats.EMIterations != baseStats.EMIterations {
			t.Fatalf("workers=%d: %d EM iterations, serial ran %d",
				workers, stats.EMIterations, baseStats.EMIterations)
		}
		if stats.GDIterations != baseStats.GDIterations {
			t.Errorf("workers=%d: %d GD iterations, serial ran %d",
				workers, stats.GDIterations, baseStats.GDIterations)
		}
		for it := range baseStats.Objective {
			if !sameBits(stats.Objective[it], baseStats.Objective[it]) {
				t.Errorf("workers=%d iteration %d: objective %v != serial %v",
					workers, it, stats.Objective[it], baseStats.Objective[it])
			}
		}
		for it := range baseStats.Weights {
			for k := range baseStats.Weights[it] {
				if !sameBits(stats.Weights[it][k], baseStats.Weights[it][k]) {
					t.Errorf("workers=%d iteration %d: weight[%d] %v != serial %v",
						workers, it, k, stats.Weights[it][k], baseStats.Weights[it][k])
				}
			}
		}
		w, bw := m.Weights(), base.Weights()
		for k := range bw {
			if !sameBits(w[k], bw[k]) {
				t.Errorf("workers=%d: final weight[%d] %v != serial %v", workers, k, w[k], bw[k])
			}
		}

		var saved bytes.Buffer
		if err := m.Save(&saved); err != nil {
			t.Fatalf("Save(workers=%d): %v", workers, err)
		}
		if !bytes.Equal(saved.Bytes(), baseSaved.Bytes()) {
			t.Errorf("workers=%d: saved model differs from serial model byte-for-byte:\n%s\nvs serial:\n%s",
				workers, saved.String(), baseSaved.String())
		}

		results, _, err := m.LinkAllParallel(ds.Corpus, workers)
		if err != nil {
			t.Fatalf("LinkAllParallel(workers=%d): %v", workers, err)
		}
		for i := range baseResults {
			if results[i].Entity != baseResults[i].Entity {
				t.Errorf("workers=%d doc %d: linked to %d, serial linked to %d",
					workers, i, results[i].Entity, baseResults[i].Entity)
			}
			for ci := range baseResults[i].Candidates {
				got, want := results[i].Candidates[ci], baseResults[i].Candidates[ci]
				if got.Entity != want.Entity || !sameBits(got.Posterior, want.Posterior) ||
					!sameBits(got.LogJoint, want.LogJoint) {
					t.Errorf("workers=%d doc %d candidate %d: %+v != serial %+v",
						workers, i, ci, got, want)
				}
			}
		}
	}
}

// TestLearnDeterministicWithSGD covers the stochastic M-step: batch
// selection uses a fixed-seed rng on the main goroutine, so SGD
// training must also be reproducible across worker counts.
func TestLearnDeterministicWithSGD(t *testing.T) {
	ds := determinismDataset(t)
	d := ds.Data.Schema
	train := func(workers int) []float64 {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.SGDBatch = 10
		cfg.MaxEMIterations = 5
		m, err := New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := m.Learn(ds.Corpus); err != nil {
			t.Fatalf("Learn: %v", err)
		}
		return m.Weights()
	}
	serial := train(1)
	for _, workers := range []int{3, 8} {
		w := train(workers)
		for k := range serial {
			if !sameBits(w[k], serial[k]) {
				t.Errorf("SGD workers=%d: weight[%d] %v != serial %v", workers, k, w[k], serial[k])
			}
		}
	}
}
