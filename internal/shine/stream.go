package shine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// ErrNilDocument is the per-document error carried by a StreamResult
// whose input document was nil. Nil documents flow through LinkStream
// in position rather than being dropped, so a producer that
// interleaves unparseable records (the NDJSON batch endpoint) keeps
// its output aligned with its input line by line.
var ErrNilDocument = errors.New("shine: nil document")

// StreamResult is the outcome of linking one document of a stream.
type StreamResult struct {
	// Seq is the document's 0-based position in the input stream.
	// LinkStream emits results in strictly ascending Seq order.
	Seq int
	// Doc is the input document (nil when the input was nil).
	Doc *corpus.Document
	// Result is the link outcome; on error it has Entity ==
	// hin.NoObject, matching Link's degraded return.
	Result Result
	// Err is the per-document failure, if any — ErrNoCandidates, a
	// walk error, ErrNilDocument, or the stream context's error for
	// documents aborted mid-link by cancellation.
	Err error

	// start is the dispatch timestamp, threaded through the pipeline
	// for the shine_stream_seconds residency histogram; zero on an
	// uninstrumented model.
	start time.Time
}

// streamJob is one dispatched document with its stream position and
// dispatch time (zero when the model is uninstrumented).
type streamJob struct {
	seq   int
	doc   *corpus.Document
	start time.Time
}

// LinkStream links every document read from docs using a bounded
// worker pool and returns the results on the output channel in input
// order. It is the constant-memory counterpart of LinkAllParallel:
// nothing is materialized per stream except the in-flight window, so
// memory is O(workers + reorder window) no matter how many documents
// flow through — the shape a million-document batch job needs.
// workers <= 0 uses GOMAXPROCS.
//
// Ordering: results are emitted in exactly the order documents were
// read from docs, restored by a sequence-numbered reorder buffer. The
// buffer is bounded by a credit window of 2×workers documents between
// dispatch and emission, which doubles as backpressure: a slow
// consumer stops the pool from racing ahead, and a slow head-of-line
// document stops faster workers from piling up completed results.
//
// Errors: a document that fails to link (no candidates, walk failure)
// flows through as a StreamResult with Err set and a NIL Result —
// degraded documents do not abort the stream, matching
// LinkAllParallel's semantics. A nil input document flows through with
// Err == ErrNilDocument.
//
// Cancellation: when ctx ends, the pipeline drains cleanly — no more
// input is read, documents still queued are not linked (their results
// are discarded, not emitted), in-flight links abort mid-walk via
// LinkContext, and the output channel closes once every worker has
// exited. The consumer observes a channel close; it is never sent a
// post-cancellation result and never blocks forever.
//
// The output channel closes when the input channel closes and all
// results have been emitted, or when ctx is canceled. The caller owns
// closing docs; LinkStream never does.
func (m *Model) LinkStream(ctx context.Context, docs <-chan *corpus.Document, workers int) <-chan StreamResult {
	workers = clampWorkers(workers, math.MaxInt)
	window := 2 * workers

	out := make(chan StreamResult)
	// jobs is bounded-buffered: a canceled stream stops dispatching
	// immediately and workers drain at most the buffer, not the whole
	// input.
	jobs := make(chan streamJob, workers)
	results := make(chan StreamResult, workers)
	// credits bounds the number of documents between dispatch and
	// emission; the emitter returns a credit only after a result
	// leaves the window, so the reorder buffer can never hold more
	// than window results.
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}

	mm := m.metrics

	// Dispatcher: assign sequence numbers in input order and feed the
	// bounded jobs channel, blocking on the credit window.
	go func() {
		defer close(jobs)
		for seq := 0; ; seq++ {
			var doc *corpus.Document
			var ok bool
			select {
			case <-ctx.Done():
				return
			case doc, ok = <-docs:
				if !ok {
					return
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-credits:
			}
			job := streamJob{seq: seq, doc: doc, start: mm.streamDispatch()}
			select {
			case <-ctx.Done():
				// Dispatched into the metrics but never into the
				// pool; undo the in-flight count.
				mm.streamSettle(job.start, false)
				return
			case jobs <- job:
			}
		}
	}()

	// Workers: the existing Link hot path, one document at a time.
	// Results go to the unordered results channel; the emitter always
	// drains it, so these sends cannot deadlock.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				sr := StreamResult{Seq: job.seq, Doc: job.doc, start: job.start}
				switch {
				case job.doc == nil:
					sr.Result = Result{Entity: hin.NoObject}
					sr.Err = ErrNilDocument
				case ctx.Err() != nil:
					// Canceled with the job already queued: don't pay
					// for the link, just flow the context error
					// through for the emitter to discard.
					sr.Result = Result{Entity: hin.NoObject}
					sr.Err = ctx.Err()
				default:
					sr.Result, sr.Err = m.LinkContext(ctx, job.doc)
				}
				results <- sr
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Emitter: restore input order through the bounded reorder buffer
	// and return credits as results leave the window.
	go func() {
		defer close(out)
		pending := make(map[int]StreamResult, window)
		next := 0
		canceled := false
		for sr := range results {
			pending[sr.Seq] = sr
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if !canceled {
					// Check cancellation with priority over the send,
					// so a consumer that cancels but keeps reading
					// still sees the stream end promptly.
					select {
					case <-ctx.Done():
						canceled = true
					default:
					}
				}
				if !canceled {
					select {
					case out <- r:
						mm.streamSettle(r.start, true)
					case <-ctx.Done():
						canceled = true
					}
				}
				if canceled {
					mm.streamSettle(r.start, false)
				}
				credits <- struct{}{}
			}
		}
	}()
	return out
}

// LinkAllParallelContext links every document of the corpus through
// the streaming pipeline under a context, returning results in
// document order. A canceled batch stops promptly — no further
// documents are dispatched and queued documents are skipped — and
// returns the results completed so far alongside ctx.Err();
// unprocessed documents hold a NIL Result. The failure count covers
// per-document link errors only, never cancellation.
func (m *Model) LinkAllParallelContext(ctx context.Context, c *corpus.Corpus, workers int) ([]Result, int, error) {
	n := c.Len()
	if n == 0 {
		return nil, 0, nil
	}
	// Clamp rather than trust the caller: a zero/negative request
	// takes GOMAXPROCS and the pool never exceeds the document count,
	// so no worker configuration can stall the job channel.
	workers = clampWorkers(workers, n)

	// Feed the corpus through a bounded channel; the feeder aborts as
	// soon as the context ends instead of draining every queued doc.
	docs := make(chan *corpus.Document, workers)
	go func() {
		defer close(docs)
		for _, doc := range c.Docs {
			select {
			case <-ctx.Done():
				return
			case docs <- doc:
			}
		}
	}()

	results := make([]Result, n)
	for i := range results {
		results[i].Entity = hin.NoObject
	}
	failures := 0
	for sr := range m.LinkStream(ctx, docs, workers) {
		results[sr.Seq] = sr.Result
		if sr.Err != nil && !isStreamCtxErr(ctx, sr.Err) {
			failures++
		}
	}
	m.metrics.observeBatchFailures(failures)
	if err := ctx.Err(); err != nil {
		return results, failures, err
	}
	if failures == n {
		return results, failures, fmt.Errorf("shine: all %d mentions failed to link", failures)
	}
	return results, failures, nil
}

// LinkAllParallel links every document using the given number of
// worker goroutines, returning results in document order — identical
// to LinkAll's output, faster on multi-core machines. workers <= 0
// uses GOMAXPROCS. The paper's implementation is single-threaded
// ("we do not utilize the parallel computing technique"); linking is
// embarrassingly parallel, so a serving deployment should not be.
//
// The second return value counts documents that failed to link
// (their Result has Entity == hin.NoObject); it is non-zero for
// degraded batches even when the call as a whole succeeds, and is
// also recorded in the shine_link_batch_failures_total metric on an
// instrumented model. The error is non-nil only when every document
// fails.
//
// LinkAllParallel is LinkAllParallelContext under context.Background;
// both run on the LinkStream pipeline, so there is exactly one worker
// pool implementation.
func (m *Model) LinkAllParallel(c *corpus.Corpus, workers int) ([]Result, int, error) {
	return m.LinkAllParallelContext(context.Background(), c, workers)
}

// isStreamCtxErr reports whether a per-document stream error was
// caused by the stream's own context ending — those documents were
// never really processed and must not count as link failures.
func isStreamCtxErr(ctx context.Context, err error) bool {
	cause := ctx.Err()
	return cause != nil && errors.Is(err, cause)
}
