package shine

import (
	"bytes"
	"math"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/synth"
)

// integrationDataset builds a small but realistic dataset through the
// full generator + ingestion pipeline.
func integrationDataset(t testing.TB) *synth.Dataset {
	t.Helper()
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 300
	net.AmbiguousGroups = 6
	net.Topics = 4
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 80
	ds, err := synth.BuildDataset(net, doc)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	return ds
}

func TestIntegrationFullPipelineAccuracy(t *testing.T) {
	ds := integrationDataset(t)
	d := ds.Data.Schema
	m, err := New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Learn(ds.Corpus); err != nil {
		t.Fatalf("Learn: %v", err)
	}
	correct := 0
	for _, doc := range ds.Corpus.Docs {
		r, err := m.Link(doc)
		if err != nil {
			t.Fatalf("Link(%s): %v", doc.ID, err)
		}
		if r.Entity == doc.Gold {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Corpus.Len())
	// Ambiguity groups average ~8 candidates; random guessing would
	// sit near 0.2 even popularity-weighted. The learned model must be
	// far above that.
	if acc < 0.6 {
		t.Errorf("end-to-end accuracy %.3f below 0.6 (%d/%d)", acc, correct, ds.Corpus.Len())
	}
}

func TestIntegrationLearningShiftsWeights(t *testing.T) {
	ds := integrationDataset(t)
	d := ds.Data.Schema
	m, err := New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Learn(ds.Corpus); err != nil {
		t.Fatalf("Learn: %v", err)
	}
	w := m.Weights()
	uniform := 1.0 / float64(len(w))
	maxDev := 0.0
	for _, x := range w {
		if dev := math.Abs(x - uniform); dev > maxDev {
			maxDev = dev
		}
	}
	if maxDev < 0.005 {
		t.Errorf("learned weights barely deviate from uniform (max dev %v); EM learned nothing", maxDev)
	}
}

func TestIntegrationGraphRoundTripPreservesLinking(t *testing.T) {
	ds := integrationDataset(t)
	d := ds.Data.Schema

	var buf bytes.Buffer
	if _, err := ds.Data.Graph.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g2, err := hin.ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	// Rebuild schema handles over the reloaded graph by name.
	author, ok := g2.Schema().TypeByName("author")
	if !ok {
		t.Fatal("author type lost")
	}
	paths := make([]metapath.Path, 0, 10)
	for _, p := range metapath.DBLPPaperPaths(d) {
		// Re-parse over the reloaded schema.
		paths = append(paths, metapath.MustParse(g2.Schema(), p.String()))
	}

	m1, err := New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(g2, author, paths, ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range ds.Corpus.Docs[:20] {
		r1, err1 := m1.Link(doc)
		r2, err2 := m2.Link(doc)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("doc %s: error mismatch %v vs %v", doc.ID, err1, err2)
		}
		if err1 == nil && r1.Entity != r2.Entity {
			t.Errorf("doc %s links to %d before round trip, %d after", doc.ID, r1.Entity, r2.Entity)
		}
	}
}

func TestIntegrationIMDBSchemaGenerality(t *testing.T) {
	cfg := synth.DefaultIMDBConfig()
	cfg.RegularActors = 150
	cfg.NumDocs = 40
	data, err := synth.GenerateIMDB(cfg)
	if err != nil {
		t.Fatalf("GenerateIMDB: %v", err)
	}
	m, err := New(data.Graph, data.Schema.Actor, metapath.IMDBActorPaths(data.Schema), data.Corpus, DefaultConfig())
	if err != nil {
		t.Fatalf("New over IMDb schema: %v", err)
	}
	if _, err := m.Learn(data.Corpus); err != nil {
		t.Fatalf("Learn over IMDb: %v", err)
	}
	correct := 0
	for _, doc := range data.Corpus.Docs {
		r, err := m.Link(doc)
		if err != nil {
			t.Fatalf("Link: %v", err)
		}
		if r.Entity == doc.Gold {
			correct++
		}
	}
	if acc := float64(correct) / float64(data.Corpus.Len()); acc < 0.5 {
		t.Errorf("IMDb actor linking accuracy %.3f below 0.5", acc)
	}
}

func TestIntegrationSubsetAccuracyStable(t *testing.T) {
	// Figure 4(b)'s robustness claim as an invariant: accuracy on a
	// half corpus is within a reasonable band of the full corpus.
	ds := integrationDataset(t)
	d := ds.Data.Schema

	evalOn := func(c *corpus.Corpus) float64 {
		m, err := New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Learn(c); err != nil {
			t.Fatal(err)
		}
		correct := 0
		for _, doc := range c.Docs {
			if r, err := m.Link(doc); err == nil && r.Entity == doc.Gold {
				correct++
			}
		}
		return float64(correct) / float64(c.Len())
	}
	half, err := ds.Corpus.Subset(ds.Corpus.Len() / 2)
	if err != nil {
		t.Fatal(err)
	}
	full := evalOn(ds.Corpus)
	part := evalOn(half)
	if math.Abs(full-part) > 0.2 {
		t.Errorf("accuracy unstable across sizes: full %.3f vs half %.3f", full, part)
	}
}
