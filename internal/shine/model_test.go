package shine

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
)

// twoWangs builds a hand-crafted disambiguation scenario: two authors
// named "Wei Wang" in different communities.
//
//   - Wei Wang 0001: 6 papers at SIGMOD on data/mining, coauthor
//     Richard R. Muntz, years 1999.
//   - Wei Wang 0002: 2 papers at NIPS on neural/learning, coauthor
//     Eric Martin, years 2005.
//
// A document talking about SIGMOD, mining and Muntz must link to 0001;
// one talking about NIPS and learning must link to 0002.
type fixture struct {
	d      *hin.DBLPSchema
	g      *hin.Graph
	ids    map[string]hin.ObjectID
	corpus *corpus.Corpus
	docA   *corpus.Document // about Wei Wang 0001
	docB   *corpus.Document // about Wei Wang 0002
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	ids := map[string]hin.ObjectID{
		"w1":     b.MustAddObject(d.Author, "Wei Wang 0001"),
		"w2":     b.MustAddObject(d.Author, "Wei Wang 0002"),
		"muntz":  b.MustAddObject(d.Author, "Richard R. Muntz"),
		"martin": b.MustAddObject(d.Author, "Eric Martin"),
		"sigmod": b.MustAddObject(d.Venue, "SIGMOD"),
		"nips":   b.MustAddObject(d.Venue, "NIPS"),
		"data":   b.MustAddObject(d.Term, "data"),
		"mine":   b.MustAddObject(d.Term, "mine"),
		"neural": b.MustAddObject(d.Term, "neural"),
		"learn":  b.MustAddObject(d.Term, "learn"),
		"1999":   b.MustAddObject(d.Year, "1999"),
		"2005":   b.MustAddObject(d.Year, "2005"),
	}
	for i := 0; i < 6; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("w1-p%d", i))
		b.MustAddLink(d.Write, ids["w1"], p)
		b.MustAddLink(d.Publish, ids["sigmod"], p)
		b.MustAddLink(d.Contain, p, ids["data"])
		b.MustAddLink(d.Contain, p, ids["mine"])
		b.MustAddLink(d.PublishedIn, p, ids["1999"])
		if i < 3 {
			b.MustAddLink(d.Write, ids["muntz"], p)
		}
	}
	for i := 0; i < 2; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("w2-p%d", i))
		b.MustAddLink(d.Write, ids["w2"], p)
		b.MustAddLink(d.Publish, ids["nips"], p)
		b.MustAddLink(d.Contain, p, ids["neural"])
		b.MustAddLink(d.Contain, p, ids["learn"])
		b.MustAddLink(d.PublishedIn, p, ids["2005"])
		b.MustAddLink(d.Write, ids["martin"], p)
	}
	g := b.Build()

	docA := corpus.NewDocument("a", "Wei Wang", ids["w1"],
		[]hin.ObjectID{ids["muntz"], ids["sigmod"], ids["data"], ids["mine"], ids["1999"]})
	docB := corpus.NewDocument("b", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["martin"], ids["nips"], ids["neural"], ids["learn"], ids["2005"]})
	c := &corpus.Corpus{}
	c.Add(docA)
	c.Add(docB)
	return &fixture{d: d, g: g, ids: ids, corpus: c, docA: docA, docB: docB}
}

func newModel(t testing.TB, f *fixture, mutate func(*Config)) *Model {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(f.g, f.d.Author, metapath.DBLPPaperPaths(f.d), f.corpus, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	f := newFixture(t)
	paths := metapath.DBLPPaperPaths(f.d)

	bad := DefaultConfig()
	bad.Theta = 1.5
	if _, err := New(f.g, f.d.Author, paths, f.corpus, bad); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(f.g, f.d.Author, nil, f.corpus, DefaultConfig()); err == nil {
		t.Error("empty path set accepted")
	}
	// Path starting at the wrong type.
	vp := metapath.MustParse(f.d.Schema, "V-P-A")
	if _, err := New(f.g, f.d.Author, []metapath.Path{vp}, f.corpus, DefaultConfig()); err == nil {
		t.Error("venue-rooted path accepted for author linking")
	}
	if _, err := New(f.g, f.d.Author, paths, &corpus.Corpus{}, DefaultConfig()); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestLinkUsesContext(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)

	ra, err := m.Link(f.docA)
	if err != nil {
		t.Fatalf("Link(docA): %v", err)
	}
	if ra.Entity != f.ids["w1"] {
		t.Errorf("docA linked to %d (%s), want w1", ra.Entity, f.g.Name(ra.Entity))
	}
	rb, err := m.Link(f.docB)
	if err != nil {
		t.Fatalf("Link(docB): %v", err)
	}
	if rb.Entity != f.ids["w2"] {
		t.Errorf("docB linked to %d (%s), want w2 despite lower popularity", rb.Entity, f.g.Name(rb.Entity))
	}
	// Posteriors form a distribution and are sorted descending.
	sum := 0.0
	for i, cs := range rb.Candidates {
		sum += cs.Posterior
		if i > 0 && cs.Posterior > rb.Candidates[i-1].Posterior {
			t.Error("candidates not sorted by posterior")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posteriors sum to %v", sum)
	}
}

func TestLinkNoCandidates(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	doc := corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil)
	_, err := m.Link(doc)
	if !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestLinkAll(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	res, err := m.LinkAll(f.corpus)
	if err != nil {
		t.Fatalf("LinkAll: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Entity != f.ids["w1"] || res[1].Entity != f.ids["w2"] {
		t.Errorf("LinkAll = %d, %d", res[0].Entity, res[1].Entity)
	}
	// A corpus where every mention is unknown errors as a whole.
	badCorpus := &corpus.Corpus{}
	badCorpus.Add(corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil))
	if _, err := m.LinkAll(badCorpus); err == nil {
		t.Error("all-unlinkable corpus accepted")
	}
}

func TestPopularityFavoursProlificAuthor(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if m.Popularity(f.ids["w1"]) <= m.Popularity(f.ids["w2"]) {
		t.Errorf("P(w1)=%v <= P(w2)=%v; 6-paper author should be more popular",
			m.Popularity(f.ids["w1"]), m.Popularity(f.ids["w2"]))
	}
	// Uniform mode equalises them.
	mu := newModel(t, f, func(c *Config) { c.Popularity = PopularityUniform })
	if mu.Popularity(f.ids["w1"]) != mu.Popularity(f.ids["w2"]) {
		t.Error("uniform popularity not uniform")
	}
}

func TestSetWeights(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	n := len(m.Paths())

	w := make([]float64, n)
	w[0] = 2
	w[1] = 2
	if err := m.SetWeights(w); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	got := m.Weights()
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.5) > 1e-12 {
		t.Errorf("weights not normalised: %v", got)
	}
	if err := m.SetWeights(make([]float64, n)); err == nil {
		t.Error("all-zero weights accepted")
	}
	if err := m.SetWeights([]float64{1}); err == nil {
		t.Error("wrong-length weights accepted")
	}
	bad := make([]float64, n)
	bad[0] = -1
	bad[1] = 2
	if err := m.SetWeights(bad); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestEntityObjectProbMatchesFigure3Shape(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)

	// P(SIGMOD | w1) must exceed P(SIGMOD | w2): w1 publishes there.
	p1, err := m.EntityObjectProb(f.ids["w1"], f.ids["sigmod"])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.EntityObjectProb(f.ids["w2"], f.ids["sigmod"])
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p2 {
		t.Errorf("P(SIGMOD|w1)=%v <= P(SIGMOD|w2)=%v", p1, p2)
	}
	// Smoothing keeps even the wrong candidate's probability positive,
	// since SIGMOD occurs in the collection.
	if p2 <= 0 {
		t.Errorf("smoothed P(SIGMOD|w2) = %v, want > 0", p2)
	}
	// Unsmoothed entity-specific probability is zero for w2.
	raw2, err := m.EntitySpecificProb(f.ids["w2"], f.ids["sigmod"])
	if err != nil {
		t.Fatal(err)
	}
	if raw2 != 0 {
		t.Errorf("Pe(SIGMOD|w2) = %v, want 0", raw2)
	}
}

func TestCandidates(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if got := m.Candidates("Wei Wang"); len(got) != 2 {
		t.Errorf("Candidates(Wei Wang) = %v", got)
	}
	if got := m.Candidates("Richard Muntz"); len(got) != 1 {
		t.Errorf("Candidates(Richard Muntz) = %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Theta = 0 },
		func(c *Config) { c.Theta = 1 },
		func(c *Config) { c.Eta = 0 },
		func(c *Config) { c.Eta = 1.5 },
		func(c *Config) { c.Popularity = PopularityMode(9) },
		func(c *Config) { c.MaxEMIterations = 0 },
		func(c *Config) { c.MaxGDIterations = 0 },
		func(c *Config) { c.EMTolerance = 0 },
		func(c *Config) { c.GDTolerance = 0 },
		func(c *Config) { c.SGDBatch = -1 },
		func(c *Config) { c.WalkPruning = -1 },
		func(c *Config) { c.ProbFloor = 0 },
		func(c *Config) { c.ProbFloor = 0.5 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestLinkWithWalkPruning(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) { c.WalkPruning = 8 })
	for _, doc := range f.corpus.Docs {
		r, err := m.Link(doc)
		if err != nil {
			t.Fatalf("Link(%s) with pruning: %v", doc.ID, err)
		}
		if r.Entity != doc.Gold {
			t.Errorf("doc %s mislinked under pruning: %d, want %d", doc.ID, r.Entity, doc.Gold)
		}
	}
	// Learning also works with pruned walks.
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatalf("Learn with pruning: %v", err)
	}
}

func TestPopularityModeString(t *testing.T) {
	if PopularityPageRank.String() != "pagerank" || PopularityUniform.String() != "uniform" {
		t.Error("PopularityMode.String wrong")
	}
	if PopularityMode(9).String() == "" {
		t.Error("unknown mode renders empty")
	}
}

func TestSetGeneric(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)

	// A corpus heavily skewed to one object shifts Pg and therefore
	// the smoothed object probability.
	before, err := m.EntityObjectProb(f.ids["w2"], f.ids["sigmod"])
	if err != nil {
		t.Fatal(err)
	}
	skewed := &corpus.Corpus{}
	skewed.Add(corpus.NewDocument("s", "x", hin.NoObject,
		[]hin.ObjectID{f.ids["sigmod"], f.ids["sigmod"], f.ids["sigmod"]}))
	if err := m.SetGeneric(skewed); err != nil {
		t.Fatalf("SetGeneric: %v", err)
	}
	after, err := m.EntityObjectProb(f.ids["w2"], f.ids["sigmod"])
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("Pg shift not reflected: %v -> %v", before, after)
	}
	if err := m.SetGeneric(&corpus.Corpus{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestRebindAfterEnrichment(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}
	weightsBefore := m.Weights()

	// Enrich: clone the graph and add a new paper for w2 so its
	// popularity rises.
	b := hin.NewBuilderFromGraph(f.g)
	for i := 0; i < 10; i++ {
		p := b.MustAddObject(f.d.Paper, fmt.Sprintf("new-p%d", i))
		b.MustAddLink(f.d.Write, f.ids["w2"], p)
		b.MustAddLink(f.d.Publish, f.ids["nips"], p)
	}
	g2 := b.Build()
	if err := m.Rebind(g2); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	// Weights survive; graph swapped.
	weightsAfter := m.Weights()
	for i := range weightsBefore {
		if weightsBefore[i] != weightsAfter[i] {
			t.Fatal("Rebind changed the learned weights")
		}
	}
	if m.Graph() != g2 {
		t.Error("graph not swapped")
	}
	// Linking still works on the enriched graph.
	r, err := m.Link(f.docB)
	if err != nil {
		t.Fatalf("Link after Rebind: %v", err)
	}
	if r.Entity != f.ids["w2"] {
		t.Errorf("docB linked to %d after Rebind", r.Entity)
	}
}
