package shine

import (
	"errors"
	"fmt"
	"time"

	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/pagerank"
	"shine/internal/surftrie"
)

// UpdateStats reports what an incremental update cost and what it
// managed to keep warm across the generation swap.
type UpdateStats struct {
	// NewObjects/NewEdges are the delta's size after merging (edges
	// counted once per undirected link, as staged).
	NewObjects int
	NewEdges   int
	// TouchedObjects is the number of objects whose adjacency rows the
	// delta changed — the seeds of the invalidation ball.
	TouchedObjects int
	// AffectedObjects counts the objects whose cached walks or frozen
	// mixture could have changed: the touched objects plus every walk
	// source that reaches one along a typed prefix of a model
	// meta-path. Everything outside the set survives the swap warm.
	AffectedObjects int
	// MergeSeconds is the wall-clock of the CSR splice alone.
	MergeSeconds float64
	// PageRankSeconds/WarmIterations/WarmPushes describe the warm
	// popularity refresh (all zero under PopularityUniform).
	PageRankSeconds float64
	WarmIterations  int
	WarmPushes      int
	// ColdPopularity records that the popularity refresh ran cold
	// instead of warm-starting from the previous revision's scores —
	// either the centrality backend cannot warm-start (HITS: its
	// L2-normalised alternating sweeps have no warm/push formulation),
	// or the model had no score vector to start from (snapshot-restored
	// models persist only the densified popularity). Also counted by
	// the shine_centrality_cold_restarts_total metric.
	ColdPopularity bool
	// MixturesKept/Dropped and WalkEntriesKept/Dropped count the
	// frozen-mixture and walk-cache entries that survived per-entity
	// invalidation versus the ones inside the ball.
	MixturesKept    int
	MixturesDropped int
	WalkEntriesKept    int
	WalkEntriesDropped int
	// TrieRebuilt records whether the surface-form index had to be
	// rebuilt (only when the delta added entity-type objects).
	TrieRebuilt bool
}

// WithDelta applies a staged graph delta and returns a new Model over
// the merged graph — the incremental-update path. Where Rebind throws
// every warm structure away, WithDelta invalidates per entity: a
// cached walk or frozen mixture depends only on the adjacency rows a
// meta-path walk from the source entity can read, so after a small
// delta only entities that reach a touched object (an endpoint of a
// new edge, or a new object) along a typed path prefix can have
// changed — see affectedSources. Everything else — most of the cache,
// for a small delta — migrates to the new model as-is, object IDs
// being stable across MergeDeltas.
//
// Popularity is refreshed over the whole merged graph: uniform mode
// renormalises (so posteriors stay bit-identical to a cold rebuild
// when the delta adds no entities), and PageRank mode warm-starts
// pagerank.Refine from the previous revision's scores, converging to
// the same tolerance as a cold run in far fewer sweeps. The
// surface-form trie is rebuilt only when the delta added entity-type
// objects; weights, meta-paths, config and the generic object model
// carry over untouched.
//
// The receiver is only read — under the same snapshot disciplines the
// Link path uses — so WithDelta is safe to run while the old model
// serves traffic; the caller swaps the returned model in when ready.
// A custom candidate source installed with SetCandidateSource is
// carried over verbatim and must tolerate the appended objects.
func (m *Model) WithDelta(d *hin.Delta) (*Model, UpdateStats, error) {
	var stats UpdateStats
	if d == nil {
		return nil, stats, errors.New("shine: nil delta")
	}
	if d.Base() != m.graph {
		return nil, stats, errors.New("shine: delta was staged against a different graph")
	}

	mergeStart := time.Now()
	g2, ms, err := d.Merge()
	if err != nil {
		return nil, stats, fmt.Errorf("shine: merging delta: %w", err)
	}
	stats.MergeSeconds = time.Since(mergeStart).Seconds()
	stats.NewObjects = ms.NewObjects
	stats.NewEdges = ms.NewEdges
	stats.TouchedObjects = len(ms.Touched)

	// Invalidation keying: a walk over path r1..rL from source e reads
	// exactly the r_{j+1}-out-rows of the objects at position j of the
	// path, j = 0..L−1, so e's cached walks (and its frozen mixture)
	// are stale iff a touched object is reachable from e along a typed
	// path prefix. Sweeping each prefix backward from the touched set
	// computes that reachability exactly at object granularity.
	affected := affectedSources(g2, m.paths, ms.Touched)
	for _, hit := range affected {
		if hit {
			stats.AffectedObjects++
		}
	}
	keep := func(e hin.ObjectID) bool {
		return int(e) < len(affected) && !affected[e]
	}

	nm := &Model{
		graph:      g2,
		entityType: m.entityType,
		paths:      m.paths,
		cfg:        m.cfg,
		generic:    m.generic,
		cands:      m.cands,
		trie:       m.trie,
	}

	// Weights and version move together: the migrated mixtures were
	// frozen at this version, and the new model keeps serving them
	// under it.
	w, ver := m.snapshotWeightsVer()
	nm.weights = w
	nm.wver = ver

	// Popularity refresh over the merged graph.
	if m.cfg.Popularity == PopularityUniform {
		pop, err := pagerank.UniformPopularity(g2, m.entityType)
		if err != nil {
			return nil, stats, err
		}
		nm.popularity = pop
	} else {
		cen, err := pagerank.NewCentrality(m.cfg.CentralityName(), m.entityType)
		if err != nil {
			return nil, stats, fmt.Errorf("shine: refreshing popularity: %w", err)
		}
		prOpts := m.cfg.PageRank
		if prOpts.Workers == 0 {
			prOpts.Workers = m.cfg.Workers
		}
		start := time.Now()
		var res *pagerank.Result
		if wc, ok := cen.(pagerank.WarmCentrality); ok && len(m.prScores) > 0 {
			res, err = wc.Refine(g2, prOpts, m.prScores)
		} else {
			// Either the backend cannot warm-start (HITS), or there are
			// no scores to start from (e.g. a snapshot-restored model);
			// fall back to a cold run and record it.
			stats.ColdPopularity = true
			m.metrics.observeCentralityColdRestart()
			res, err = cen.Compute(g2, prOpts)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("shine: refreshing popularity: %w", err)
		}
		stats.PageRankSeconds = time.Since(start).Seconds()
		stats.WarmIterations = res.Iterations
		stats.WarmPushes = res.Pushes
		pop, err := pagerank.EntityPopularity(g2, res.Scores, m.entityType)
		if err != nil {
			return nil, stats, err
		}
		nm.popularity = pop
		nm.prScores = res.Scores
		nm.prSeconds = stats.PageRankSeconds
		nm.prIterations = res.Iterations
		nm.prWarmIterations = res.Iterations
	}

	// Surface-form index: object IDs and names are stable across a
	// merge, so the trie is only stale if the delta added entity-type
	// objects. (A custom candidate source is carried over as-is.)
	if m.trie != nil {
		oldN := g2.NumObjects() - ms.NewObjects
		for v := oldN; v < g2.NumObjects(); v++ {
			if g2.TypeOf(hin.ObjectID(v)) == m.entityType {
				trie, err := surftrie.Build(g2, m.entityType)
				if err != nil {
					return nil, stats, fmt.Errorf("shine: reindexing entity names: %w", err)
				}
				nm.trie = trie
				nm.cands = trie
				stats.TrieRebuilt = true
				break
			}
		}
	}

	// Walk cache: migrate every entry whose entity is outside the ball.
	var wstats metapath.MigrateStats
	nm.walker, wstats = m.walker.CloneFor(g2, keep)
	stats.WalkEntriesKept = wstats.Kept
	stats.WalkEntriesDropped = wstats.Dropped

	// Frozen mixtures: same predicate, same version. Counters carry
	// over so the monitoring series continue across the swap.
	entries := m.mixtures.snapshotEntries(ver)
	kept := entries[:0]
	for _, en := range entries {
		if keep(en.Entity) {
			kept = append(kept, en)
		} else {
			stats.MixturesDropped++
		}
	}
	stats.MixturesKept = len(kept)
	nm.mixtures.installEntries(kept, ver)
	nm.mixtures.hits.Store(m.mixtures.hits.Load())
	nm.mixtures.misses.Store(m.mixtures.misses.Load())
	nm.mixtures.builds.Store(m.mixtures.builds.Load())
	nm.mixtures.invalidations.Store(m.mixtures.invalidations.Load())

	return nm, stats, nil
}

// affectedSources marks every object that, as a walk source for one
// of the model's meta-paths, could observe a changed adjacency row on
// the merged graph. A walk over p = r1..rL visits positions 0..L and
// reads the r_{j+1}-out-row of each object it holds at position j,
// j = 0..L−1; the walk's distribution (pruned or not — pruning reads
// a subset of the same rows) is therefore a function of exactly those
// rows. A source is stale iff some touched object sits at a readable
// position, i.e. is forward-reachable from it along a typed prefix
// r1..rj. That set is computed backward: seed position j with the
// touched objects of the position's node type, pull the set through
// inverse relations toward position 0, and union across positions and
// paths.
//
// Granularity is per object, not per (object, relation) row: a
// touched object counts as changed at every position its type can
// occupy. Staged objects have only new rows, and in schemas like DBLP
// each type carries a single relation pair, so little tightness is
// lost. Compared to an undirected distance ball this keeps the blast
// radius of a new paper to its authors' coauthor neighbourhoods and
// its venue's community rather than everything within maxPathLen
// hops.
//
// Touched objects themselves are always marked (their own rows
// changed, covering position 0 of every path). The result is indexed
// by ObjectID on the merged graph.
func affectedSources(g *hin.Graph, paths []metapath.Path, touched []hin.ObjectID) []bool {
	n := g.NumObjects()
	s := g.Schema()
	affected := make([]bool, n)
	for _, v := range touched {
		if int(v) < n {
			affected[v] = true
		}
	}
	// stamp deduplicates per (path, position): an object can occupy
	// several positions of one path, so membership cannot be tracked
	// with a single visited array.
	stamp := make([]int32, n)
	gen := int32(0)
	var cur, next []hin.ObjectID
	for _, p := range paths {
		L := p.Len()
		if L == 0 {
			continue
		}
		rels := p.Relations()
		cur = cur[:0]
		gen++
		// Seed the deepest readable position, then alternate "pull the
		// set back one relation" with "admit touched objects of the
		// shallower position's type" until position 0 is reached.
		for _, u := range touched {
			if g.TypeOf(u) == s.Relation(rels[L-1]).From && stamp[u] != gen {
				stamp[u] = gen
				cur = append(cur, u)
			}
		}
		for j := L - 1; j >= 1; j-- {
			gen++
			next = next[:0]
			inv := s.Inverse(rels[j-1])
			for _, u := range cur {
				for _, w := range g.Neighbors(inv, u) {
					if stamp[w] != gen {
						stamp[w] = gen
						next = append(next, w)
					}
				}
			}
			for _, u := range touched {
				if g.TypeOf(u) == s.Relation(rels[j-1]).From && stamp[u] != gen {
					stamp[u] = gen
					next = append(next, u)
				}
			}
			cur, next = next, cur
		}
		for _, v := range cur {
			affected[v] = true
		}
	}
	return affected
}
