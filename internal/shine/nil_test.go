package shine

import (
	"fmt"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
)

// nilFixture extends the two-Wangs fixture with a third research
// community (ICML, deep learning, Grace Kim) that neither "Wei Wang"
// has any connection to — the home turf of an out-of-network Wei
// Wang.
func nilFixture(t testing.TB) (*fixture, *corpus.Document) {
	t.Helper()
	f := newFixture(t)
	d := f.d
	b := hin.NewBuilder(d.Schema)

	// Rebuild the fixture graph contents plus the third community.
	// (Builders are cheap; reconstruct from scratch for clarity.)
	ids := map[string]hin.ObjectID{}
	for v := 0; v < f.g.NumObjects(); v++ {
		id := b.MustAddObject(f.g.TypeOf(hin.ObjectID(v)), f.g.Name(hin.ObjectID(v)))
		ids[f.g.Name(hin.ObjectID(v))] = id
	}
	f.g.ForEachLink(func(rel hin.RelationID, src, dst hin.ObjectID) {
		if rel%2 == 0 { // forward links only; inverses are derived
			b.MustAddLink(rel, ids[f.g.Name(src)], ids[f.g.Name(dst)])
		}
	})
	kim := b.MustAddObject(d.Author, "Grace Kim")
	icml := b.MustAddObject(d.Venue, "ICML")
	deep := b.MustAddObject(d.Term, "deep")
	for i := 0; i < 3; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("kim-p%d", i))
		b.MustAddLink(d.Write, kim, p)
		b.MustAddLink(d.Publish, icml, p)
		b.MustAddLink(d.Contain, p, deep)
	}
	g := b.Build()

	// The NIL document: mention "Wei Wang", context entirely in the
	// third community, with enough objects that the evidence (rather
	// than the popularity prior) decides.
	var objs []hin.ObjectID
	for i := 0; i < 4; i++ {
		objs = append(objs, kim, icml, deep)
	}
	nilDoc := corpus.NewDocument("nil", "Wei Wang", hin.NoObject, objs)

	// Re-point the fixture documents at the rebuilt graph (object IDs
	// are preserved by reconstruction order).
	c := &corpus.Corpus{}
	c.Add(f.docA)
	c.Add(f.docB)
	c.Add(nilDoc)
	f.g = g
	f.corpus = c
	return f, nilDoc
}

func newNILModel(t testing.TB, f *fixture) *Model {
	t.Helper()
	m, err := New(f.g, f.d.Author, metapath.DBLPPaperPaths(f.d), f.corpus, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestLinkNILDetectsOutOfNetworkMention(t *testing.T) {
	f, nilDoc := nilFixture(t)
	m := newNILModel(t, f)

	r, err := m.LinkNIL(nilDoc, NILPrior)
	if err != nil {
		t.Fatalf("LinkNIL: %v", err)
	}
	if r.Entity != hin.NoObject {
		t.Errorf("NIL document linked to %s, want NIL", f.g.Name(r.Entity))
	}
	// The NIL pseudo-candidate appears in the candidate list.
	found := false
	for _, cs := range r.Candidates {
		if cs.Entity == hin.NoObject {
			found = true
		}
	}
	if !found {
		t.Error("NIL pseudo-candidate missing from result")
	}
}

func TestLinkNILKeepsInNetworkMentions(t *testing.T) {
	f, _ := nilFixture(t)
	m := newNILModel(t, f)

	// Strong in-network evidence must still beat NIL.
	for _, doc := range []*corpus.Document{f.docA, f.docB} {
		r, err := m.LinkNIL(doc, NILPrior)
		if err != nil {
			t.Fatalf("LinkNIL(%s): %v", doc.ID, err)
		}
		if r.Entity != doc.Gold {
			t.Errorf("doc %s: LinkNIL chose %d, want gold %d", doc.ID, r.Entity, doc.Gold)
		}
	}
}

func TestLinkNILUnknownSurfaceFormIsNIL(t *testing.T) {
	f, _ := nilFixture(t)
	m := newNILModel(t, f)
	doc := corpus.NewDocument("x", "Totally Unknown", hin.NoObject, nil)
	r, err := m.LinkNIL(doc, NILPrior)
	if err != nil {
		t.Fatalf("LinkNIL: %v", err)
	}
	if r.Entity != hin.NoObject {
		t.Errorf("unknown surface form linked to %d", r.Entity)
	}
	if len(r.Candidates) != 1 || r.Candidates[0].Posterior != 1 {
		t.Errorf("candidates = %+v", r.Candidates)
	}
}

func TestLinkNILPriorMonotonicity(t *testing.T) {
	f, nilDoc := nilFixture(t)
	m := newNILModel(t, f)

	nilPosterior := func(prior float64) float64 {
		r, err := m.LinkNIL(nilDoc, prior)
		if err != nil {
			t.Fatalf("LinkNIL(prior=%v): %v", prior, err)
		}
		for _, cs := range r.Candidates {
			if cs.Entity == hin.NoObject {
				return cs.Posterior
			}
		}
		t.Fatal("no NIL candidate")
		return 0
	}
	lo, hi := nilPosterior(0.01), nilPosterior(0.5)
	if hi <= lo {
		t.Errorf("NIL posterior not increasing in prior: %v at 0.01, %v at 0.5", lo, hi)
	}
}

func TestLinkNILPriorValidation(t *testing.T) {
	f, nilDoc := nilFixture(t)
	m := newNILModel(t, f)
	for _, bad := range []float64{0, 1, -0.1, 1.5} {
		if _, err := m.LinkNIL(nilDoc, bad); err == nil {
			t.Errorf("prior %v accepted", bad)
		}
	}
}

func TestLinkNILPosteriorsSumToOne(t *testing.T) {
	f, nilDoc := nilFixture(t)
	m := newNILModel(t, f)
	r, err := m.LinkNIL(nilDoc, NILPrior)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, cs := range r.Candidates {
		sum += cs.Posterior
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("posteriors sum to %v", sum)
	}
}
