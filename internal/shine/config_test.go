package shine

import (
	"runtime"
	"strings"
	"testing"
)

func TestValidateWorkers(t *testing.T) {
	cases := []struct {
		workers int
		wantErr bool
	}{
		{0, true},
		{-3, true},
		{1, false},
		{64, false},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.Workers = c.workers
		err := cfg.Validate()
		if (err != nil) != c.wantErr {
			t.Errorf("Validate(Workers=%d) error = %v, want error = %v", c.workers, err, c.wantErr)
		}
		if err != nil && !strings.Contains(err.Error(), "Workers") {
			t.Errorf("Validate(Workers=%d) error %q does not name the field", c.workers, err)
		}
	}
}

func TestDefaultConfigWorkersIsGOMAXPROCS(t *testing.T) {
	if got, want := DefaultConfig().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("DefaultConfig().Workers = %d, want GOMAXPROCS = %d", got, want)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

// TestLearnClampsMutatedWorkers guards the in-package escape hatch:
// New rejects a non-positive Workers, but if cfg is mutated after
// construction the pipeline must clamp to GOMAXPROCS rather than
// spawn zero workers and deadlock.
func TestLearnClampsMutatedWorkers(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) { c.MaxEMIterations = 2 })
	m.cfg.Workers = -2
	if got := m.workers(); got < 1 {
		t.Fatalf("workers() = %d with mutated negative Workers", got)
	}
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatalf("Learn with mutated negative Workers: %v", err)
	}
}

// TestLinkAllParallelClampsWorkers: negative and zero worker requests
// must degrade to GOMAXPROCS, and worker counts beyond the document
// count must not stall the job channel.
func TestLinkAllParallelClampsWorkers(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	want, err := m.LinkAll(f.corpus)
	if err != nil {
		t.Fatalf("LinkAll: %v", err)
	}
	for _, workers := range []int{-7, 0, 1, 1000} {
		got, failures, err := m.LinkAllParallel(f.corpus, workers)
		if err != nil {
			t.Fatalf("LinkAllParallel(workers=%d): %v", workers, err)
		}
		if failures != 0 {
			t.Errorf("LinkAllParallel(workers=%d): %d failures", workers, failures)
		}
		for i := range want {
			if got[i].Entity != want[i].Entity {
				t.Errorf("workers=%d doc %d: entity %d, want %d", workers, i, got[i].Entity, want[i].Entity)
			}
		}
	}
}
