package shine

import (
	"time"

	"shine/internal/hin"
	"shine/internal/obs"
)

// Metric names recorded by an instrumented Model. Exported as
// constants so the server, tests and dashboards reference the exact
// strings the model writes.
const (
	// MetricLinkSeconds is the latency histogram of Link/LinkNIL calls.
	MetricLinkSeconds = "shine_link_seconds"
	// MetricLinkCandidates is the candidate-set-size histogram of
	// successful link calls (including the NIL pseudo-candidate in NIL
	// mode).
	MetricLinkCandidates = "shine_link_candidates"
	// MetricLinkTotal counts Link/LinkNIL calls.
	MetricLinkTotal = "shine_link_total"
	// MetricLinkFailures counts link calls that returned an error
	// (no candidates, walk failures).
	MetricLinkFailures = "shine_link_failures_total"
	// MetricLinkNIL counts NIL decisions — mentions resolved to no
	// entity.
	MetricLinkNIL = "shine_link_nil_total"
	// MetricBatchFailures counts per-document failures inside batch
	// linking (LinkAllParallel) — the partial-failure signal.
	MetricBatchFailures = "shine_link_batch_failures_total"
	// MetricEMIterations counts EM iterations across Learn calls.
	MetricEMIterations = "shine_em_iterations_total"
	// MetricEMIterationSeconds is the per-EM-iteration duration
	// histogram.
	MetricEMIterationSeconds = "shine_em_iteration_seconds"
	// MetricEMPrepareSeconds is the per-Learn corpus preparation
	// duration histogram — the meta-path walk precompute that
	// dominates cold-cache training and fans out across
	// Config.Workers goroutines.
	MetricEMPrepareSeconds = "shine_em_prepare_seconds"
	// MetricEMLogLikelihood is the M-step objective J (the expected
	// complete-data log-likelihood term of Formula 22) after the most
	// recent EM iteration.
	MetricEMLogLikelihood = "shine_em_log_likelihood"
	// MetricPageRankSeconds is the wall-clock of the most recent
	// offline whole-network PageRank run (Model construction or
	// Rebind); 0 under the uniform popularity model.
	MetricPageRankSeconds = "shine_pagerank_seconds"
	// MetricPageRankIterations is the power-iteration count of the
	// most recent PageRank run.
	MetricPageRankIterations = "shine_pagerank_iterations"
	// MetricPageRankWarmIterations is the sweep count of the most
	// recent warm-started PageRank refresh (Model.WithDelta); 0 for a
	// cold-built model. Compare against shine_pagerank_iterations to
	// see what the warm start saved.
	MetricPageRankWarmIterations = "shine_pagerank_warm_iterations"
	// MetricCentralityBackend is an info-style gauge: the series
	// labelled with the serving model's centrality backend name
	// (backend="pagerank"|"degree"|"hits"|"ppr") is set to 1.
	MetricCentralityBackend = "shine_centrality_backend"
	// MetricCentralitySeconds / MetricCentralityIterations mirror the
	// shine_pagerank_* gauges for the configured centrality backend —
	// the wall-clock and iteration count of the most recent offline
	// popularity run, whichever backend produced it. The legacy
	// shine_pagerank_* names keep reporting the same values for
	// dashboard continuity.
	MetricCentralitySeconds    = "shine_centrality_seconds"
	MetricCentralityIterations = "shine_centrality_iterations"
	// MetricCentralityColdRestarts counts incremental updates
	// (Model.WithDelta) whose popularity refresh could not warm-start
	// and ran cold instead — HITS always lands here (no warm
	// formulation), as does any backend on a snapshot-restored model
	// whose raw score vector was not persisted.
	MetricCentralityColdRestarts = "shine_centrality_cold_restarts_total"
	// MetricGraphBuildSeconds is the wall-clock of loading and
	// building the immutable CSR graph, recorded by `shine serve` at
	// startup.
	MetricGraphBuildSeconds = "shine_graph_build_seconds"
	// MetricMixtureEntries is the number of candidate entities with a
	// frozen mixture cached at the current weight version.
	MetricMixtureEntries = "shine_mixture_entries"
	// MetricMixtureHits / MetricMixtureMisses count mixture-index
	// lookups on the serving path.
	MetricMixtureHits   = "shine_mixture_hits_total"
	MetricMixtureMisses = "shine_mixture_misses_total"
	// MetricMixtureBuilds counts mixtures computed, lazily or via
	// PrecomputeMixtures.
	MetricMixtureBuilds = "shine_mixture_builds_total"
	// MetricMixtureInvalidations counts full index flushes (weight
	// installs, rebinds).
	MetricMixtureInvalidations = "shine_mixture_invalidations_total"
	// MetricCandidatesLookups counts serving-path candidate lookups
	// (one per linked/explained mention).
	MetricCandidatesLookups = "shine_candidates_lookups_total"
	// MetricCandidatesFuzzy counts lookups that fell back to
	// bounded-edit-distance retrieval after the exact rules came up
	// empty.
	MetricCandidatesFuzzy = "shine_candidates_fuzzy_total"
	// MetricCandidatesSeconds is the candidate-lookup latency
	// histogram, fuzzy fallback included.
	MetricCandidatesSeconds = "shine_candidates_seconds"
	// MetricStreamDocs counts documents emitted by LinkStream
	// pipelines (results the consumer actually received; documents
	// discarded by cancellation are not counted).
	MetricStreamDocs = "shine_stream_docs_total"
	// MetricStreamInFlight gauges documents currently inside a
	// LinkStream pipeline — dispatched but not yet emitted (or
	// discarded). Bounded by 2×workers per stream by construction.
	MetricStreamInFlight = "shine_stream_inflight"
	// MetricStreamSeconds is the per-document pipeline residency
	// histogram: dispatch to emission, queueing and reordering
	// included. Contrast with shine_link_seconds, which times only
	// the link computation itself.
	MetricStreamSeconds = "shine_stream_seconds"
)

// candidateBuckets bound the candidate-set-size histogram; ambiguity
// in real networks is small-integer-valued with a heavy tail.
var candidateBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// modelMetrics bundles the model's instruments. A nil *modelMetrics
// is valid and records nothing, so every hot path pays one pointer
// check when uninstrumented.
type modelMetrics struct {
	linkSeconds    *obs.Histogram
	linkCandidates *obs.Histogram
	linkTotal      *obs.Counter
	linkFailures   *obs.Counter
	linkNIL        *obs.Counter
	batchFailures  *obs.Counter
	emIterations   *obs.Counter
	emIterSeconds  *obs.Histogram
	emPrepSeconds  *obs.Histogram
	emLogLik       *obs.Gauge
	prSeconds      *obs.Gauge
	prIterations   *obs.Gauge
	prWarmIters    *obs.Gauge
	cenSeconds     *obs.Gauge
	cenIterations  *obs.Gauge
	cenColdStarts  *obs.Counter
	candLookups    *obs.Counter
	candFuzzy      *obs.Counter
	candSeconds    *obs.Histogram
	streamDocs     *obs.Counter
	streamInFlight *obs.Gauge
	streamSeconds  *obs.Histogram
}

// SetMetrics instruments the model against a registry: link latency,
// candidate-set sizes, NIL decisions and failures are recorded per
// call, EM iterations per Learn, and the walker cache is registered
// as a collector so its hit/miss/eviction counters appear in the
// registry's exposition. A nil registry removes instrumentation.
//
// Call before serving traffic or learning; like SetWeights, SetMetrics
// must not race with concurrent Link calls. Calling it again with the
// same registry is idempotent. After Rebind (which replaces the
// walker), call SetMetrics again to scrape the new walker's cache.
func (m *Model) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		m.metrics = nil
		return
	}
	reg.Register(m.walker)
	reg.Register(&m.mixtures)
	m.metrics = &modelMetrics{
		linkSeconds:    reg.Histogram(MetricLinkSeconds, nil),
		linkCandidates: reg.Histogram(MetricLinkCandidates, candidateBuckets),
		linkTotal:      reg.Counter(MetricLinkTotal),
		linkFailures:   reg.Counter(MetricLinkFailures),
		linkNIL:        reg.Counter(MetricLinkNIL),
		batchFailures:  reg.Counter(MetricBatchFailures),
		emIterations:   reg.Counter(MetricEMIterations),
		emIterSeconds:  reg.Histogram(MetricEMIterationSeconds, nil),
		emPrepSeconds:  reg.Histogram(MetricEMPrepareSeconds, nil),
		emLogLik:       reg.Gauge(MetricEMLogLikelihood),
		prSeconds:      reg.Gauge(MetricPageRankSeconds),
		prIterations:   reg.Gauge(MetricPageRankIterations),
		prWarmIters:    reg.Gauge(MetricPageRankWarmIterations),
		cenSeconds:     reg.Gauge(MetricCentralitySeconds),
		cenIterations:  reg.Gauge(MetricCentralityIterations),
		cenColdStarts:  reg.Counter(MetricCentralityColdRestarts),
		candLookups:    reg.Counter(MetricCandidatesLookups),
		candFuzzy:      reg.Counter(MetricCandidatesFuzzy),
		candSeconds:    reg.Histogram(MetricCandidatesSeconds, nil),
		streamDocs:     reg.Counter(MetricStreamDocs),
		streamInFlight: reg.Gauge(MetricStreamInFlight),
		streamSeconds:  reg.Histogram(MetricStreamSeconds, nil),
	}
	// Identify the backend that produced this model's popularity
	// section; under the uniform model no centrality ran at all.
	if m.cfg.Popularity != PopularityUniform {
		reg.Gauge(MetricCentralityBackend, "backend", m.cfg.CentralityName()).Set(1)
	}
	// The offline centrality run happened during construction (or
	// during the WithDelta that produced this generation), before any
	// registry was attached; publish the recorded run so the gauges are
	// correct from the first scrape. Rebind refreshes them.
	m.metrics.observePageRank(m.prSeconds, m.prIterations, m.prWarmIterations)
}

// UnregisterCollectors detaches the model's walker-cache and
// mixture-index collectors from the registry. The hot-swap path calls
// this on the outgoing model before SetMetrics on its replacement, so
// one scrape never sees the walker/mixture series emitted twice. The
// outgoing model keeps its instruments — in-flight requests may still
// be recording — which is harmless: instruments are shared get-or-
// create by name, only collectors are per-model.
func (m *Model) UnregisterCollectors(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Unregister(m.walker)
	reg.Unregister(&m.mixtures)
}

// observePageRank publishes the most recent offline centrality run and
// the warm-refresh sweep count, under both the legacy shine_pagerank_*
// names and the backend-neutral shine_centrality_* ones. Safe on a nil
// receiver.
func (mm *modelMetrics) observePageRank(seconds float64, iterations, warmIterations int) {
	if mm == nil {
		return
	}
	mm.prSeconds.Set(seconds)
	mm.prIterations.Set(float64(iterations))
	mm.prWarmIters.Set(float64(warmIterations))
	mm.cenSeconds.Set(seconds)
	mm.cenIterations.Set(float64(iterations))
}

// observeCentralityColdRestart counts one incremental update whose
// popularity refresh ran cold (see UpdateStats.ColdPopularity). Safe
// on a nil receiver.
func (mm *modelMetrics) observeCentralityColdRestart() {
	if mm == nil {
		return
	}
	mm.cenColdStarts.Inc()
}

// observeLink records the outcome of one link call. Safe on a nil
// receiver (uninstrumented model).
func (mm *modelMetrics) observeLink(start time.Time, res Result, err error) {
	if mm == nil {
		return
	}
	mm.linkTotal.Inc()
	mm.linkSeconds.ObserveSince(start)
	if err != nil {
		mm.linkFailures.Inc()
		return
	}
	mm.linkCandidates.Observe(float64(len(res.Candidates)))
	if res.Entity == hin.NoObject {
		mm.linkNIL.Inc()
	}
}

// observeCandidates records one serving-path candidate lookup. Safe
// on a nil receiver.
func (mm *modelMetrics) observeCandidates(start time.Time, fuzzy bool) {
	if mm == nil {
		return
	}
	mm.candLookups.Inc()
	mm.candSeconds.ObserveSince(start)
	if fuzzy {
		mm.candFuzzy.Inc()
	}
}

// observeEMIteration records one EM iteration's duration and
// objective. Safe on a nil receiver.
func (mm *modelMetrics) observeEMIteration(start time.Time, objective float64) {
	if mm == nil {
		return
	}
	mm.emIterations.Inc()
	mm.emIterSeconds.ObserveSince(start)
	mm.emLogLik.Set(objective)
}

// observeEMPrepare records one Learn call's corpus preparation
// duration. Safe on a nil receiver.
func (mm *modelMetrics) observeEMPrepare(start time.Time) {
	if mm == nil {
		return
	}
	mm.emPrepSeconds.ObserveSince(start)
}

// streamDispatch records one document entering a LinkStream pipeline
// and returns the dispatch timestamp for the residency histogram.
// Safe on a nil receiver (returns the zero time, which streamSettle
// treats as "uninstrumented").
func (mm *modelMetrics) streamDispatch() time.Time {
	if mm == nil {
		return time.Time{}
	}
	mm.streamInFlight.Add(1)
	return time.Now()
}

// streamSettle records one document leaving a LinkStream pipeline:
// emitted to the consumer, or discarded by cancellation. Safe on a
// nil receiver.
func (mm *modelMetrics) streamSettle(start time.Time, emitted bool) {
	if mm == nil {
		return
	}
	mm.streamInFlight.Add(-1)
	if emitted {
		mm.streamDocs.Inc()
		if !start.IsZero() {
			mm.streamSeconds.ObserveSince(start)
		}
	}
}

// observeBatchFailures records per-document failures from a batch
// link. Safe on a nil receiver.
func (mm *modelMetrics) observeBatchFailures(n int) {
	if mm == nil || n <= 0 {
		return
	}
	mm.batchFailures.Add(uint64(n))
}
