package shine

import (
	"strings"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/obs"
)

func TestLinkMetrics(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)

	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(f.docB); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil)); err == nil {
		t.Fatal("unknown mention linked")
	}

	if got := reg.Counter(MetricLinkTotal).Value(); got != 3 {
		t.Errorf("link total = %d, want 3", got)
	}
	if got := reg.Counter(MetricLinkFailures).Value(); got != 1 {
		t.Errorf("link failures = %d, want 1", got)
	}
	lat := reg.Histogram(MetricLinkSeconds, nil)
	if got := lat.Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
	// Both Wei Wang docs have 2 candidates; failures record none.
	cands := reg.Histogram(MetricLinkCandidates, nil)
	if got := cands.Count(); got != 2 {
		t.Errorf("candidate observations = %d, want 2", got)
	}
	if got := cands.Sum(); got != 4 {
		t.Errorf("candidate sum = %v, want 4", got)
	}
}

func TestLinkNILMetrics(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)

	// An unknown surface form in NIL mode is a NIL prediction, not an
	// error.
	r, err := m.LinkNIL(corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Entity != hin.NoObject {
		t.Fatalf("unknown mention resolved to %v", r.Entity)
	}
	if got := reg.Counter(MetricLinkNIL).Value(); got != 1 {
		t.Errorf("NIL decisions = %d, want 1", got)
	}
	if got := reg.Counter(MetricLinkFailures).Value(); got != 0 {
		t.Errorf("failures = %d, want 0", got)
	}
}

func TestLearnMetrics(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)

	stats, err := m.Learn(f.corpus)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricEMIterations).Value(); got != uint64(stats.EMIterations) {
		t.Errorf("EM iterations metric = %d, stats say %d", got, stats.EMIterations)
	}
	if got := reg.Histogram(MetricEMIterationSeconds, nil).Count(); got != uint64(stats.EMIterations) {
		t.Errorf("EM duration observations = %d, want %d", got, stats.EMIterations)
	}
	wantJ := stats.Objective[len(stats.Objective)-1]
	if got := reg.Gauge(MetricEMLogLikelihood).Value(); got != wantJ {
		t.Errorf("log-likelihood gauge = %v, want %v", got, wantJ)
	}
}

func TestBatchFailureMetric(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)

	c := &corpus.Corpus{}
	c.Add(f.docA)
	c.Add(corpus.NewDocument("bad", "Unknown Person", hin.NoObject, nil))
	if _, failed, err := m.LinkAllParallel(c, 2); err != nil || failed != 1 {
		t.Fatalf("failed=%d err=%v, want 1/nil", failed, err)
	}
	if got := reg.Counter(MetricBatchFailures).Value(); got != 1 {
		t.Errorf("batch failures = %d, want 1", got)
	}
}

func TestSetMetricsRegistersWalkerCollector(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	m.SetMetrics(reg) // idempotent

	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "shine_walker_cache_misses_total") {
		t.Errorf("walker cache counters missing from exposition:\n%s", out)
	}
	if strings.Count(out, "shine_walker_cache_entries") != 1 {
		t.Error("walker collector registered twice")
	}
}

func TestUninstrumentedModelLinks(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	m.SetMetrics(nil)
	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
}
