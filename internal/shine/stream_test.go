package shine

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/obs"
)

// feedDocs streams a document slice into a channel, closing it when
// done. The channel is unbuffered so tests exercise the dispatcher's
// blocking read path.
func feedDocs(docs []*corpus.Document) <-chan *corpus.Document {
	ch := make(chan *corpus.Document)
	go func() {
		defer close(ch)
		for _, d := range docs {
			ch <- d
		}
	}()
	return ch
}

// collectStream drains a stream into a slice.
func collectStream(out <-chan StreamResult) []StreamResult {
	var got []StreamResult
	for sr := range out {
		got = append(got, sr)
	}
	return got
}

// goroutineSettled waits for the goroutine count to return to at most
// base, tolerating the runtime's brief teardown lag.
func goroutineSettled(base int) bool {
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestLinkStreamMatchesParallel: the acceptance contract — streaming
// output is bit-identical (same entities, same posteriors, same
// order) to LinkAllParallel on the golden corpus for several worker
// counts.
func TestLinkStreamMatchesParallel(t *testing.T) {
	ds := integrationDataset(t)
	d := ds.Data.Schema
	m, err := New(ds.Data.Graph, d.Author, pathsFor(t, d), ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Learn(ds.Corpus); err != nil {
		t.Fatal(err)
	}
	want, wantFailed, err := m.LinkAllParallel(ds.Corpus, 4)
	if err != nil {
		t.Fatalf("LinkAllParallel: %v", err)
	}
	if wantFailed != 0 {
		t.Fatalf("%d failures on a fully-linkable corpus", wantFailed)
	}
	for _, workers := range []int{1, 4, 8} {
		got := collectStream(m.LinkStream(context.Background(), feedDocs(ds.Corpus.Docs), workers))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i, sr := range got {
			if sr.Seq != i {
				t.Fatalf("workers=%d: result %d has seq %d; stream out of order", workers, i, sr.Seq)
			}
			if sr.Err != nil {
				t.Fatalf("workers=%d doc %d: %v", workers, i, sr.Err)
			}
			if sr.Doc != ds.Corpus.Docs[i] {
				t.Fatalf("workers=%d doc %d: result carries the wrong document", workers, i)
			}
			if sr.Result.Entity != want[i].Entity {
				t.Errorf("workers=%d doc %d: entity %d vs parallel %d",
					workers, i, sr.Result.Entity, want[i].Entity)
			}
			if len(sr.Result.Candidates) != len(want[i].Candidates) {
				t.Fatalf("workers=%d doc %d: %d candidates vs %d",
					workers, i, len(sr.Result.Candidates), len(want[i].Candidates))
			}
			for j, cs := range sr.Result.Candidates {
				w := want[i].Candidates[j]
				if cs.Entity != w.Entity ||
					math.Float64bits(cs.Posterior) != math.Float64bits(w.Posterior) ||
					math.Float64bits(cs.LogJoint) != math.Float64bits(w.LogJoint) {
					t.Errorf("workers=%d doc %d cand %d: %+v vs parallel %+v", workers, i, j, cs, w)
				}
			}
		}
	}
}

// TestLinkStreamDegradedDocsFlowThrough: per-document failures are
// carried in-stream as NIL results, not dropped and not fatal.
func TestLinkStreamDegradedDocsFlowThrough(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	bad := corpus.NewDocument("bad", "Unknown Person", hin.NoObject, nil)
	got := collectStream(m.LinkStream(context.Background(),
		feedDocs([]*corpus.Document{f.docA, bad, f.docB}), 2))
	if len(got) != 3 {
		t.Fatalf("%d results, want 3", len(got))
	}
	if got[1].Err == nil || !errors.Is(got[1].Err, ErrNoCandidates) {
		t.Errorf("degraded doc err = %v, want ErrNoCandidates", got[1].Err)
	}
	if got[1].Result.Entity != hin.NoObject {
		t.Errorf("degraded doc entity = %d, want NoObject", got[1].Result.Entity)
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("healthy documents failed in a degraded stream: %v, %v", got[0].Err, got[2].Err)
	}
}

// TestLinkStreamNilDocument: a nil input flows through in position
// with ErrNilDocument — the hook the NDJSON batch endpoint uses to
// keep per-line error records aligned with input lines.
func TestLinkStreamNilDocument(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	got := collectStream(m.LinkStream(context.Background(),
		feedDocs([]*corpus.Document{f.docA, nil, f.docB}), 2))
	if len(got) != 3 {
		t.Fatalf("%d results, want 3", len(got))
	}
	if !errors.Is(got[1].Err, ErrNilDocument) {
		t.Errorf("nil doc err = %v, want ErrNilDocument", got[1].Err)
	}
	if got[1].Result.Entity != hin.NoObject || got[1].Doc != nil {
		t.Errorf("nil doc result = %+v", got[1])
	}
}

// TestLinkStreamCancelAfterK: the countdown contract — a stream
// canceled after exactly K documents have been consumed yields
// exactly those K in-order results and then closes, with every
// pipeline goroutine gone.
func TestLinkStreamCancelAfterK(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	const total, k = 40, 7
	docs := make([]*corpus.Document, total)
	for i := range docs {
		docs[i] = f.docA
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Feed only K documents before the cancellation point: the input
	// channel stays open (the producer is "mid-stream"), so the
	// pipeline's exit is driven purely by ctx, not input exhaustion.
	in := make(chan *corpus.Document)
	go func() {
		for i := 0; i < k; i++ {
			in <- docs[i]
		}
	}()

	out := m.LinkStream(ctx, in, 4)
	var got []StreamResult
	for i := 0; i < k; i++ {
		sr, ok := <-out
		if !ok {
			t.Fatalf("stream closed after %d results, want %d before cancel", i, k)
		}
		got = append(got, sr)
	}
	cancel()
	extra := collectStream(out) // must terminate: the channel closes on cancel
	if len(extra) != 0 {
		t.Errorf("%d results emitted after cancellation, want 0", len(extra))
	}
	for i, sr := range got {
		if sr.Seq != i || sr.Err != nil {
			t.Errorf("result %d: seq %d err %v, want in-order success", i, sr.Seq, sr.Err)
		}
	}
	if !goroutineSettled(base) {
		t.Errorf("pipeline goroutines leaked: %d running, started from %d", runtime.NumGoroutine(), base)
	}
}

// TestLinkStreamCancelMidFlow: cancellation racing live traffic still
// yields a strictly in-order prefix and a closed channel, and the
// canceled LinkAllParallelContext wrapper surfaces ctx.Err() with
// NIL-filled unprocessed slots.
func TestLinkStreamCancelMidFlow(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	const total = 500
	c := &corpus.Corpus{}
	for i := 0; i < total; i++ {
		c.Add(f.docA)
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The feeder must itself be ctx-aware: once the dispatcher stops
	// reading, an unconditional send would block forever.
	in := make(chan *corpus.Document)
	go func() {
		defer close(in)
		for _, d := range c.Docs {
			select {
			case <-ctx.Done():
				return
			case in <- d:
			}
		}
	}()
	out := m.LinkStream(ctx, in, 4)
	seen := 0
	for sr := range out {
		if sr.Seq != seen {
			t.Fatalf("result %d has seq %d; not a contiguous prefix", seen, sr.Seq)
		}
		seen++
		if seen == 20 {
			cancel()
		}
	}
	if seen < 20 || seen == total {
		t.Errorf("stream emitted %d of %d results; cancel at 20 should stop it early but not before", seen, total)
	}
	if !goroutineSettled(base) {
		t.Errorf("pipeline goroutines leaked: %d running, started from %d", runtime.NumGoroutine(), base)
	}

	// The corpus wrapper under the same mid-flow cancellation.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	results, failures, err := m.LinkAllParallelContext(ctx2, c, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled batch err = %v, want context.Canceled", err)
	}
	if failures != 0 {
		t.Errorf("pre-canceled batch counted %d failures, want 0", failures)
	}
	if len(results) != total {
		t.Fatalf("%d results, want %d", len(results), total)
	}
	for i, r := range results {
		if r.Entity != hin.NoObject {
			t.Errorf("unprocessed doc %d holds entity %d, want NoObject", i, r.Entity)
		}
	}
}

// TestLinkAllParallelContextMatchesPlain: the context variant under
// context.Background is the plain call, bit for bit.
func TestLinkAllParallelContextMatchesPlain(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	plain, pf, err := m.LinkAllParallel(f.corpus, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, cf, err := m.LinkAllParallelContext(context.Background(), f.corpus, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pf != cf || len(plain) != len(ctxed) {
		t.Fatalf("failures %d vs %d, results %d vs %d", pf, cf, len(plain), len(ctxed))
	}
	for i := range plain {
		if plain[i].Entity != ctxed[i].Entity {
			t.Errorf("doc %d: %d vs %d", i, plain[i].Entity, ctxed[i].Entity)
		}
	}
}

// TestLinkStreamBoundedMemory: the acceptance memory bound — a
// 100k-document stream holds live heap to O(workers + window), far
// below what materializing the corpus and results would take. The
// corpus side reuses two documents, so the only per-volume memory a
// leak could accumulate is results; the ceiling catches any
// materialization creeping back in.
func TestLinkStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-document stream run")
	}
	f := newFixture(t)
	m := newModel(t, f, nil)
	const total = 100_000
	const workers = 4

	// Warm every lazily-built structure (mixture index, walker cache)
	// before the baseline so growth measures the stream alone.
	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(f.docB); err != nil {
		t.Fatal(err)
	}

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	in := make(chan *corpus.Document)
	go func() {
		defer close(in)
		for i := 0; i < total; i++ {
			if i%2 == 0 {
				in <- f.docA
			} else {
				in <- f.docB
			}
		}
	}()

	var peak uint64
	seen := 0
	for sr := range m.LinkStream(context.Background(), in, workers) {
		if sr.Err != nil {
			t.Fatalf("doc %d: %v", sr.Seq, sr.Err)
		}
		seen++
		if seen%20_000 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	if seen != total {
		t.Fatalf("stream emitted %d of %d documents", seen, total)
	}
	// Materialized results alone would be ≥ total × sizeof(Result+
	// candidates) ≈ 16 MB; the pipeline's window is a few KB. 4 MB of
	// headroom over the baseline tolerates GC noise while still
	// failing hard if any per-document state accumulates.
	const ceiling = 4 << 20
	growth := int64(peak) - int64(base)
	if growth > ceiling {
		t.Errorf("peak live heap grew %d bytes over baseline (limit %d); stream is materializing", growth, ceiling)
	}
}

// TestLinkStreamMetrics: the shine_stream_* series reflect one
// completed stream run.
func TestLinkStreamMetrics(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	got := collectStream(m.LinkStream(context.Background(),
		feedDocs([]*corpus.Document{f.docA, f.docB, f.docA}), 2))
	if len(got) != 3 {
		t.Fatalf("%d results, want 3", len(got))
	}
	if n := reg.Counter(MetricStreamDocs).Value(); n != 3 {
		t.Errorf("%s = %d, want 3", MetricStreamDocs, n)
	}
	if v := reg.Gauge(MetricStreamInFlight).Value(); v != 0 {
		t.Errorf("%s = %v after stream end, want 0", MetricStreamInFlight, v)
	}
	if n := reg.Histogram(MetricStreamSeconds, nil).Count(); n != 3 {
		t.Errorf("%s count = %d, want 3", MetricStreamSeconds, n)
	}
}
