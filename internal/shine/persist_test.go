package shine

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(&buf, f.g, f.corpus)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	w1, w2 := m.Weights(), m2.Weights()
	if len(w1) != len(w2) {
		t.Fatalf("weight lengths %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-12 {
			t.Errorf("weight %d: %v vs %v", i, w1[i], w2[i])
		}
	}
	// Linking decisions must be identical.
	for _, doc := range f.corpus.Docs {
		r1, err1 := m.Link(doc)
		r2, err2 := m2.Link(doc)
		if err1 != nil || err2 != nil {
			t.Fatalf("Link errors: %v, %v", err1, err2)
		}
		if r1.Entity != r2.Entity {
			t.Errorf("doc %s: %d vs %d after reload", doc.ID, r1.Entity, r2.Entity)
		}
		if math.Abs(r1.Candidates[0].Posterior-r2.Candidates[0].Posterior) > 1e-9 {
			t.Errorf("doc %s: posterior drifted after reload", doc.ID)
		}
	}
}

func TestLoadRejectsBadState(t *testing.T) {
	f := newFixture(t)
	cases := []string{
		"not json",
		`{"version": 99}`,
		`{"version": 1, "entityType": "nosuchtype", "paths": ["A-P-V"], "weights": [1]}`,
		`{"version": 1, "entityType": "author", "paths": ["A-P-V"], "weights": [1, 2]}`,
		`{"version": 1, "entityType": "author", "paths": [], "weights": []}`,
		`{"version": 1, "entityType": "author", "paths": ["A-X-B"], "weights": [1]}`,
	}
	for i, s := range cases {
		if _, err := Load(strings.NewReader(s), f.g, f.corpus); err == nil {
			t.Errorf("case %d accepted: %s", i, s)
		}
	}
}

func TestLoadRejectsNewerVersion(t *testing.T) {
	f := newFixture(t)
	s := `{"version": 2, "entityType": "author", "paths": ["A-P-V"], "weights": [1]}`
	_, err := Load(strings.NewReader(s), f.g, f.corpus)
	if err == nil || !strings.Contains(err.Error(), "newer shine") {
		t.Errorf("newer-version artifact error = %v, want \"built by a newer shine\"", err)
	}
}

func TestLoadRejectsInvalidWeights(t *testing.T) {
	f := newFixture(t)
	s := `{"version": 1, "entityType": "author", "paths": ["A-P-V", "A-P-T"],
	       "weights": [-1, 2],
	       "config": {"Theta": 0.2, "Eta": 1, "PageRank": {"Lambda": 0.2, "Tolerance": 1e-10, "MaxIterations": 50},
	                  "MaxEMIterations": 5, "MaxGDIterations": 5, "EMTolerance": 1e-4,
	                  "GDTolerance": 1e-7, "WalkCacheSize": 16, "ProbFloor": 1e-12}}`
	if _, err := Load(strings.NewReader(s), f.g, f.corpus); err == nil {
		t.Error("negative weight accepted")
	}
}
