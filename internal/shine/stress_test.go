package shine

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// stressModel runs Learn concurrently with batch linking on one
// shared model — the serving pattern the concurrency contract
// promises: readers snapshot the weight vector while the learner
// installs new ones, and every walk goes through the shared cache.
// Run under -race (verify.sh does), this is the race detector's view
// of the whole parallel pipeline.
func stressModel(t *testing.T, cacheSize int) {
	t.Helper()
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) {
		c.WalkCacheSize = cacheSize
		c.Workers = 4
		c.MaxEMIterations = 3
	})

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.Learn(f.corpus); err != nil {
			errc <- fmt.Errorf("Learn: %w", err)
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				if _, _, err := m.LinkAllParallel(f.corpus, 4); err != nil {
					errc <- fmt.Errorf("LinkAllParallel round %d: %w", round, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The weight vector the readers raced against must still be a
	// valid simplex point.
	sum := 0.0
	for k, w := range m.Weights() {
		if w < 0 || math.IsNaN(w) {
			t.Fatalf("weight[%d] = %v after concurrent Learn", k, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v after concurrent Learn", sum)
	}

	res, err := m.Link(f.docA)
	if err != nil {
		t.Fatalf("Link after stress: %v", err)
	}
	if res.Entity != f.ids["w1"] {
		t.Errorf("docA linked to %d after stress, want %d", res.Entity, f.ids["w1"])
	}
}

// TestConcurrentLearnAndLinkTinyCache uses a cache far below the
// working set, so the single-stripe LRU churns: every goroutine
// contends on the same shard's lock and eviction list.
func TestConcurrentLearnAndLinkTinyCache(t *testing.T) {
	stressModel(t, 8)
}

// TestConcurrentLearnAndLinkShardedCache uses a sharded cache (>=
// 1024 entries selects 16 stripes), exercising the striped-lock
// lookup/store/eviction paths under the same concurrent load.
func TestConcurrentLearnAndLinkShardedCache(t *testing.T) {
	stressModel(t, 4096)
}
