package shine

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/sparse"
	"shine/internal/surftrie"
)

// Parts is the flat decomposition of a trained Model: everything a
// binary snapshot persists so that FromParts can reassemble a serving
// model without re-running PageRank, re-estimating the generic object
// model, re-walking meta-paths, or re-freezing the surface-form trie.
// The walker cache is deliberately absent — a cheap rebuild from the
// graph.
type Parts struct {
	Graph      *hin.Graph
	EntityType hin.TypeID
	Paths      []metapath.Path
	Config     Config
	// Weights is the learned meta-path weight vector exactly as the
	// model serves it (already normalised); FromParts installs it
	// verbatim, never through SetWeights' renormalisation, so restored
	// Link scores are bit-identical.
	Weights []float64
	// Popularity is P(e) densely indexed by position in
	// Graph.ObjectsOfType(EntityType) — the offline centrality result
	// (Formula 6 under the default "pagerank" backend), restored
	// instead of recomputed.
	Popularity   []float64
	PRSeconds    float64
	PRIterations int
	// Centrality names the pagerank.Centrality backend that produced
	// Popularity. FromParts refuses a Parts whose Centrality disagrees
	// with Config.CentralityName(), so an artifact's popularity section
	// is never silently served under a different backend's name. Empty
	// means "recorded before the field existed", which is accepted and
	// treated as the then-only backend, "pagerank".
	Centrality string
	// Generic is the corpus-wide object model Pg.
	Generic sparse.Vector
	// Mixtures is the frozen per-candidate mixture index, sorted by
	// ascending entity ID. May be empty: the index refills lazily.
	Mixtures []MixtureEntry
	// Trie is the frozen surface-form candidate index. May be nil —
	// from a model with a custom candidate source, or a snapshot
	// written before the trie section existed — in which case
	// FromParts rebuilds it from the graph.
	Trie *surftrie.Trie
}

// MixtureEntry is one frozen candidate mixture Pe(v) = Σ_p w_p·Pe(v|p).
type MixtureEntry struct {
	Entity  hin.ObjectID
	Mixture sparse.Dist
}

// Parts decomposes the model for snapshotting. The returned slices
// and graph are shared with the live model and must not be modified;
// weight vector and mixture set are taken under one version so they
// are mutually consistent even if Learn runs concurrently.
func (m *Model) Parts() Parts {
	w, ver := m.snapshotWeightsVer()
	ents := m.graph.ObjectsOfType(m.entityType)
	pop := make([]float64, len(ents))
	for i, e := range ents {
		pop[i] = m.popularity[e]
	}
	return Parts{
		Graph:        m.graph,
		EntityType:   m.entityType,
		Paths:        m.paths,
		Config:       m.cfg,
		Weights:      w,
		Popularity:   pop,
		PRSeconds:    m.prSeconds,
		PRIterations: m.prIterations,
		Centrality:   m.cfg.CentralityName(),
		Generic:      m.generic.Vector(),
		Mixtures:     m.mixtures.snapshotEntries(ver),
		Trie:         m.trie,
	}
}

// FromParts reassembles a serving model from its flat decomposition.
// Unlike New, nothing expensive runs: popularity, the generic model
// and any frozen mixtures are adopted after validation, and only the
// O(entities) name index and the empty walker cache are rebuilt. The
// weight vector is installed verbatim — not renormalised — so a
// restored model's Link output is bit-identical to the model that was
// decomposed.
func FromParts(p Parts) (*Model, error) {
	if p.Graph == nil {
		return nil, errors.New("shine: FromParts: nil graph")
	}
	cfg := p.Config
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.Centrality != "" && p.Centrality != cfg.CentralityName() {
		return nil, fmt.Errorf("shine: FromParts: popularity was computed by centrality backend %q but the config selects %q; rebuild the artifact instead of mixing backends",
			p.Centrality, cfg.CentralityName())
	}
	if len(p.Paths) == 0 {
		return nil, errors.New("shine: FromParts: empty meta-path set")
	}
	for _, path := range p.Paths {
		if path.IsEmpty() {
			return nil, errors.New("shine: FromParts: empty meta-path in path set")
		}
		if st := path.StartType(p.Graph.Schema()); st != p.EntityType {
			return nil, fmt.Errorf("shine: FromParts: path %s starts at type %d, entity type is %d",
				path, st, p.EntityType)
		}
	}
	if len(p.Weights) != len(p.Paths) {
		return nil, fmt.Errorf("shine: FromParts: %d weights for %d paths", len(p.Weights), len(p.Paths))
	}
	sum := 0.0
	for _, w := range p.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("shine: FromParts: invalid weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, errors.New("shine: FromParts: all-zero weight vector")
	}

	ents := p.Graph.ObjectsOfType(p.EntityType)
	if len(p.Popularity) != len(ents) {
		return nil, fmt.Errorf("shine: FromParts: %d popularity scores for %d entities",
			len(p.Popularity), len(ents))
	}
	pop := make(map[hin.ObjectID]float64, len(ents))
	for i, e := range ents {
		s := p.Popularity[i]
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("shine: FromParts: invalid popularity %v for entity %d", s, e)
		}
		pop[e] = s
	}

	gen, err := corpus.GenericFromVector(p.Generic)
	if err != nil {
		return nil, fmt.Errorf("shine: FromParts: %w", err)
	}
	trie := p.Trie
	if trie == nil {
		trie, err = surftrie.Build(p.Graph, p.EntityType)
		if err != nil {
			return nil, fmt.Errorf("shine: FromParts: indexing entity names: %w", err)
		}
	} else if err := trie.CheckGraph(p.Graph, p.EntityType); err != nil {
		return nil, fmt.Errorf("shine: FromParts: %w", err)
	}

	for i, en := range p.Mixtures {
		if en.Entity < 0 || int(en.Entity) >= p.Graph.NumObjects() {
			return nil, fmt.Errorf("shine: FromParts: mixture %d for out-of-range entity %d", i, en.Entity)
		}
		if p.Graph.TypeOf(en.Entity) != p.EntityType {
			return nil, fmt.Errorf("shine: FromParts: mixture %d for non-entity object %d", i, en.Entity)
		}
		if i > 0 && p.Mixtures[i-1].Entity >= en.Entity {
			return nil, fmt.Errorf("shine: FromParts: mixture entities not strictly ascending at %d", i)
		}
	}

	m := &Model{
		graph:        p.Graph,
		entityType:   p.EntityType,
		paths:        append([]metapath.Path(nil), p.Paths...),
		cfg:          cfg,
		weights:      append([]float64(nil), p.Weights...),
		wver:         1,
		popularity:   pop,
		prSeconds:    p.PRSeconds,
		prIterations: p.PRIterations,
		cands:        trie,
		trie:         trie,
		walker:       metapath.NewWalker(p.Graph, cfg.WalkCacheSize),
		generic:      gen,
	}
	m.mixtures.installEntries(p.Mixtures, 1)
	return m, nil
}
