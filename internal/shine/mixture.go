package shine

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/sparse"
)

// The serving path's second level: once Learn (or SetWeights) has
// frozen the meta-path weights, the full entity-specific object model
// Pe(v) = Σ_p w_p · Pe(v|p) (Formula 12) of each candidate entity is
// itself a constant. The mixture index memoises those mixtures as
// immutable frozen sparse.Dist values, so linking a document scores
// each candidate by merging the document's sorted object IDs against
// one frozen array — no per-request re-mixing of |paths| walk
// distributions, no map allocation, no hashing.
//
// Entries are built lazily on first use (or eagerly via
// PrecomputeMixtures / the -precompute CLI flag) and are invalidated
// whenever the weight vector or the graph changes: installWeights and
// Rebind bump the model's weight version, and every lookup validates
// the entry's version against the snapshot it is serving. A stale
// compute that loses the race with a concurrent weight install is
// still returned to its caller — that caller's whole mention is
// scored under the snapshot it took, matching the Link/Learn
// concurrency contract — but is never stored.

// mixtureIndex is the per-model cache of frozen candidate mixtures.
// The counters are atomics so cache hits — the steady-state serving
// path — never take the write lock.
type mixtureIndex struct {
	mu  sync.RWMutex
	ver uint64 // weight version the entries were built against
	mix map[hin.ObjectID]sparse.Dist

	hits, misses, builds, invalidations atomic.Uint64
}

// invalidate drops every entry and records the new weight version.
func (mi *mixtureIndex) invalidate(ver uint64) {
	mi.mu.Lock()
	mi.ver = ver
	mi.mix = nil
	mi.mu.Unlock()
	mi.invalidations.Add(1)
}

// lookup returns the frozen mixture for e if one is cached at version
// ver, recording the hit or miss.
func (mi *mixtureIndex) lookup(e hin.ObjectID, ver uint64) (sparse.Dist, bool) {
	mi.mu.RLock()
	var d sparse.Dist
	ok := false
	if mi.ver == ver && mi.mix != nil {
		d, ok = mi.mix[e]
	}
	mi.mu.RUnlock()
	if ok {
		mi.hits.Add(1)
	} else {
		mi.misses.Add(1)
	}
	return d, ok
}

// store records a freshly built mixture, unless the index has moved
// past ver (a newer weight vector was installed while it was being
// computed) — storing it then would serve stale mixtures forever.
func (mi *mixtureIndex) store(e hin.ObjectID, d sparse.Dist, ver uint64) {
	mi.builds.Add(1)
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if mi.ver != ver {
		return
	}
	if mi.mix == nil {
		mi.mix = make(map[hin.ObjectID]sparse.Dist)
	}
	mi.mix[e] = d
}

// snapshotEntries returns every mixture cached at version ver, sorted
// by ascending entity ID — the serialisation order binary snapshots
// write. Returns nil if the index has moved past ver or holds nothing.
func (mi *mixtureIndex) snapshotEntries(ver uint64) []MixtureEntry {
	mi.mu.RLock()
	defer mi.mu.RUnlock()
	if mi.ver != ver || len(mi.mix) == 0 {
		return nil
	}
	out := make([]MixtureEntry, 0, len(mi.mix))
	for e, d := range mi.mix {
		out = append(out, MixtureEntry{Entity: e, Mixture: d})
	}
	slices.SortFunc(out, func(a, b MixtureEntry) int { return cmp.Compare(a.Entity, b.Entity) })
	return out
}

// installEntries replaces the whole index with pre-built mixtures at
// the given weight version — the snapshot load path, which restores
// the serving index without re-walking a single meta-path.
func (mi *mixtureIndex) installEntries(entries []MixtureEntry, ver uint64) {
	var mix map[hin.ObjectID]sparse.Dist
	if len(entries) > 0 {
		mix = make(map[hin.ObjectID]sparse.Dist, len(entries))
		for _, en := range entries {
			mix[en.Entity] = en.Mixture
		}
	}
	mi.mu.Lock()
	mi.ver = ver
	mi.mix = mix
	mi.mu.Unlock()
}

// MixtureIndexStats reports the mixture index's occupancy and
// lifecycle counters.
type MixtureIndexStats struct {
	// Entries is the number of candidate entities with a frozen
	// mixture at the current weight version.
	Entries int
	// Hits and Misses count lookups on the serving path.
	Hits, Misses uint64
	// Builds counts mixtures computed (lazily or via precompute).
	Builds uint64
	// Invalidations counts full flushes (weight installs, rebinds).
	Invalidations uint64
}

// MixtureStats returns the mixture index counters.
func (m *Model) MixtureStats() MixtureIndexStats {
	mi := &m.mixtures
	mi.mu.RLock()
	entries := len(mi.mix)
	mi.mu.RUnlock()
	return MixtureIndexStats{
		Entries:       entries,
		Hits:          mi.hits.Load(),
		Misses:        mi.misses.Load(),
		Builds:        mi.builds.Load(),
		Invalidations: mi.invalidations.Load(),
	}
}

// Collect emits the mixture index counters; the signature matches
// obs.Collector structurally so SetMetrics can register the index
// alongside the walker cache.
func (mi *mixtureIndex) Collect(emit func(name string, value float64)) {
	mi.mu.RLock()
	entries := len(mi.mix)
	mi.mu.RUnlock()
	emit(MetricMixtureEntries, float64(entries))
	emit(MetricMixtureHits, float64(mi.hits.Load()))
	emit(MetricMixtureMisses, float64(mi.misses.Load()))
	emit(MetricMixtureBuilds, float64(mi.builds.Load()))
	emit(MetricMixtureInvalidations, float64(mi.invalidations.Load()))
}

// snapshotWeightsVer copies the weight vector and its version under
// one read lock, so a whole mention is scored — and its mixtures
// validated — against a single consistent snapshot.
func (m *Model) snapshotWeightsVer() ([]float64, uint64) {
	m.wmu.RLock()
	defer m.wmu.RUnlock()
	return append([]float64(nil), m.weights...), m.wver
}

// mixtureFor returns candidate e's frozen mixture under the given
// weight snapshot, building and (version permitting) caching it on
// miss. A canceled context aborts the build mid-walk; the partial
// mixture is never stored.
func (m *Model) mixtureFor(ctx context.Context, e hin.ObjectID, w []float64, ver uint64) (sparse.Dist, error) {
	mi := &m.mixtures
	if d, ok := mi.lookup(e, ver); ok {
		return d, nil
	}
	d, err := m.walker.WalkMixtureDistContext(ctx, e, m.paths, w, m.cfg.WalkPruning)
	if err != nil {
		return sparse.Dist{}, err
	}
	mi.store(e, d, ver)
	return d, nil
}

// entityMixture returns entity e's frozen mixture under the current
// weights — the memo behind EntityObjectProb/EntitySpecificProb, so
// an explain-style loop probing N objects of one entity walks the
// meta-paths once, not N times.
func (m *Model) entityMixture(e hin.ObjectID) (sparse.Dist, error) {
	w, ver := m.snapshotWeightsVer()
	return m.mixtureFor(context.Background(), e, w, ver)
}

// mentionMixtures is the frozen-path scoring state for one mention:
// the document's object IDs (ascending), their counts and generic
// probabilities, and per candidate the mixture Pe(v) restricted to
// those objects. It is the serving-time analogue of mentionData,
// with the per-path dimension already contracted against the weight
// snapshot.
type mentionMixtures struct {
	objs    []int32
	counts  []float64
	generic []float64
	// pe[ci][oi] = Σ_p w_p · Pe(object oi | path p) for candidate ci.
	pe [][]float64
}

// prepareMentionMixtures gathers the frozen mixtures of every
// candidate and contracts them against the document's object bag.
// Document.Objects is sorted by ascending object ID, so each
// candidate costs one linear merge against its frozen array.
// Cancellation is checked before each candidate (and, on a cold
// mixture index, between walk hops inside mixtureFor), so a canceled
// request aborts after the current candidate rather than scoring the
// whole set.
func (m *Model) prepareMentionMixtures(ctx context.Context, doc *corpus.Document, cands []hin.ObjectID, w []float64, ver uint64) (*mentionMixtures, error) {
	nObj := len(doc.Objects)
	mx := &mentionMixtures{
		objs:    make([]int32, nObj),
		counts:  make([]float64, nObj),
		generic: make([]float64, nObj),
		pe:      make([][]float64, len(cands)),
	}
	for oi, oc := range doc.Objects {
		mx.objs[oi] = int32(oc.Object)
		mx.counts[oi] = float64(oc.Count)
		mx.generic[oi] = m.generic.Prob(oc.Object)
	}
	rows := make([]float64, len(cands)*nObj)
	for ci, e := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := m.mixtureFor(ctx, e, w, ver)
		if err != nil {
			return nil, fmt.Errorf("shine: mixing walks for entity %d: %w", e, err)
		}
		row := rows[ci*nObj : (ci+1)*nObj : (ci+1)*nObj]
		d.GetMany(mx.objs, row)
		mx.pe[ci] = row
	}
	return mx, nil
}

// logJointFrozen computes ln(η·P(e)·P(d|e)) for candidate i of a
// prepared mention from its precontracted mixture row. It performs
// the same floating-point operations in the same order as logJoint's
// per-path loop — the mixture was accumulated in path order per
// object — so the two paths agree bit-for-bit.
func (m *Model) logJointFrozen(mx *mentionMixtures, i int, entity hin.ObjectID) float64 {
	score := math.Log(m.cfg.Eta) + math.Log(math.Max(m.popularity[entity], m.cfg.ProbFloor))
	theta := m.cfg.Theta
	row := mx.pe[i]
	for oi := range mx.counts {
		pv := theta*row[oi] + (1-theta)*mx.generic[oi]
		score += mx.counts[oi] * math.Log(math.Max(pv, m.cfg.ProbFloor))
	}
	return score
}
