package shine

import (
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
)

// pathsFor returns the Table 3 path set for a schema.
func pathsFor(t testing.TB, d *hin.DBLPSchema) []metapath.Path {
	t.Helper()
	return metapath.DBLPPaperPaths(d)
}

func TestLinkAllParallelMatchesSequential(t *testing.T) {
	ds := integrationDataset(t)
	d := ds.Data.Schema
	m, err := New(ds.Data.Graph, d.Author, pathsFor(t, d), ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Learn(ds.Corpus); err != nil {
		t.Fatal(err)
	}
	seq, err := m.LinkAll(ds.Corpus)
	if err != nil {
		t.Fatalf("LinkAll: %v", err)
	}
	for _, workers := range []int{0, 1, 4, 100} {
		par, failed, err := m.LinkAllParallel(ds.Corpus, workers)
		if err != nil {
			t.Fatalf("LinkAllParallel(%d): %v", workers, err)
		}
		if failed != 0 {
			t.Fatalf("workers=%d: %d failures on a fully-linkable corpus", workers, failed)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Entity != seq[i].Entity {
				t.Errorf("workers=%d doc %d: %d vs sequential %d",
					workers, i, par[i].Entity, seq[i].Entity)
			}
		}
	}
}

func TestLinkAllParallelAllFailures(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil))
	c.Add(corpus.NewDocument("y", "Another Unknown", hin.NoObject, nil))
	_, failed, err := m.LinkAllParallel(c, 2)
	if err == nil {
		t.Error("all-unlinkable corpus accepted")
	}
	if failed != 2 {
		t.Errorf("failures = %d, want 2", failed)
	}
}

func TestLinkAllParallelPartialFailure(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	c := &corpus.Corpus{}
	c.Add(f.docA) // linkable
	c.Add(corpus.NewDocument("bad", "Unknown Person", hin.NoObject, nil))
	c.Add(f.docB) // linkable
	results, failed, err := m.LinkAllParallel(c, 2)
	if err != nil {
		t.Fatalf("partial failure escalated to an error: %v", err)
	}
	if failed != 1 {
		t.Errorf("failures = %d, want 1", failed)
	}
	if results[1].Entity != hin.NoObject {
		t.Errorf("failed doc result = %v, want NoObject", results[1].Entity)
	}
	if results[0].Entity == hin.NoObject || results[2].Entity == hin.NoObject {
		t.Error("healthy documents did not link in a degraded batch")
	}
}
