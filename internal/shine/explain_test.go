package shine

import (
	"errors"
	"math"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
)

func TestExplainDecomposesExactly(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)

	for _, doc := range f.corpus.Docs {
		ex, err := m.Explain(doc)
		if err != nil {
			t.Fatalf("Explain(%s): %v", doc.ID, err)
		}
		if ex.Entity != doc.Gold {
			t.Errorf("doc %s: explanation winner %d, want gold %d", doc.ID, ex.Entity, doc.Gold)
		}
		// Exact decomposition: popularity + object shares = margin.
		sum := ex.PopularityLogOdds
		for _, oc := range ex.Objects {
			sum += oc.LogOdds
		}
		if math.Abs(sum-ex.Margin) > 1e-9 {
			t.Errorf("doc %s: decomposition sums to %v, margin is %v", doc.ID, sum, ex.Margin)
		}
		if ex.Margin <= 0 {
			t.Errorf("doc %s: non-positive margin %v for the winner", doc.ID, ex.Margin)
		}
		// Sorted by decisiveness.
		for i := 1; i < len(ex.Objects); i++ {
			if math.Abs(ex.Objects[i].LogOdds) > math.Abs(ex.Objects[i-1].LogOdds)+1e-12 {
				t.Errorf("doc %s: objects not sorted by |log-odds|", doc.ID)
			}
		}
	}
}

func TestExplainIdentifiesDecisiveEvidence(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	ex, err := m.Explain(f.docA)
	if err != nil {
		t.Fatal(err)
	}
	// For docA (the SIGMOD/mining document), the top evidence must
	// favour the winner, and it should be one of the community
	// signals (not the shared year).
	top := ex.Objects[0]
	if top.LogOdds <= 0 {
		t.Errorf("most decisive object works against the winner: %+v", top)
	}
}

func TestExplainSingleCandidate(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	doc := corpus.NewDocument("x", "Eric Martin", f.ids["martin"],
		[]hin.ObjectID{f.ids["nips"]})
	ex, err := m.Explain(doc)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if ex.Entity != f.ids["martin"] || ex.RunnerUp != hin.NoObject {
		t.Errorf("single-candidate explanation = %+v", ex)
	}
	if len(ex.Objects) != 0 || ex.Margin != 0 {
		t.Errorf("single-candidate explanation carries evidence: %+v", ex)
	}
}

func TestExplainNoCandidates(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	_, err := m.Explain(corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil))
	if !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v", err)
	}
}

func TestExplainAgreesWithLink(t *testing.T) {
	ds := integrationDataset(t)
	d := ds.Data.Schema
	m, err := New(ds.Data.Graph, d.Author, pathsFor(t, d), ds.Corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Learn(ds.Corpus); err != nil {
		t.Fatal(err)
	}
	for _, doc := range ds.Corpus.Docs[:25] {
		r, err := m.Link(doc)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := m.Explain(doc)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Entity != r.Entity {
			t.Errorf("doc %s: Explain winner %d != Link winner %d", doc.ID, ex.Entity, r.Entity)
		}
	}
}

func TestExplainPaths(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	imps, err := m.ExplainPaths(f.docA)
	if err != nil {
		t.Fatalf("ExplainPaths: %v", err)
	}
	if len(imps) != len(m.Paths()) {
		t.Fatalf("got %d importances for %d paths", len(imps), len(m.Paths()))
	}
	// Sorted by descending margin drop.
	for i := 1; i < len(imps); i++ {
		if imps[i].MarginDrop > imps[i-1].MarginDrop+1e-12 {
			t.Error("importances not sorted")
		}
	}
	// At least one path must materially support the decision.
	if imps[0].MarginDrop <= 0 {
		t.Errorf("no path supports the decision: top drop %v", imps[0].MarginDrop)
	}
	// Weights echo the model's weights.
	sum := 0.0
	for _, im := range imps {
		sum += im.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("reported weights sum to %v", sum)
	}
}

func TestExplainPathsNoCandidates(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.ExplainPaths(corpus.NewDocument("x", "Unknown Person", hin.NoObject, nil)); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v", err)
	}
}

func TestExplainPathsSingleCandidate(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	doc := corpus.NewDocument("x", "Eric Martin", f.ids["martin"], []hin.ObjectID{f.ids["nips"]})
	imps, err := m.ExplainPaths(doc)
	if err != nil {
		t.Fatalf("ExplainPaths: %v", err)
	}
	for _, im := range imps {
		if im.MarginDrop != 0 {
			t.Errorf("single-candidate margin drop %v for %s", im.MarginDrop, im.Path)
		}
	}
}
