package shine

import (
	"math"
	"math/rand"
	"time"

	"shine/internal/corpus"
)

// LearnStats reports what the EM learner did.
type LearnStats struct {
	// EMIterations is the number of outer EM iterations run.
	EMIterations int
	// GDIterations is the total number of inner gradient ascent
	// iterations across all M-steps.
	GDIterations int
	// Objective traces the M-step objective J (Formula 22) at the end
	// of each EM iteration, under that iteration's posterior. The
	// trace is not necessarily monotone, because the posterior (and
	// with it the dropped popularity term of Formula 19) changes
	// between iterations; the within-M-step guarantee is MStepGain.
	Objective []float64
	// MStepGain traces, per EM iteration, the objective improvement
	// achieved by the M-step under that iteration's fixed posterior.
	// With backtracking line search it is never negative.
	MStepGain []float64
	// Weights traces the weight vector after each EM iteration.
	Weights [][]float64
	// SkippedMentions counts documents with no candidate entities.
	SkippedMentions int
	// Converged reports whether the weight vector stabilised before
	// MaxEMIterations.
	Converged bool
	// PrepareTime is the wall-clock duration of the corpus
	// preparation phase (the per-mention meta-path walk precompute),
	// which runs once before the EM loop and dominates cold-cache
	// training cost.
	PrepareTime time.Duration
	// EMIterTime and GDIterTime are the average wall-clock durations
	// of one EM iteration and one inner gradient iteration — the
	// quantities plotted in the paper's Figure 4(a).
	EMIterTime, GDIterTime time.Duration
}

// Learn fits the meta-path weights on a document collection by
// expectation-maximisation (Algorithm 1), without any labelled data:
// it maximises the likelihood of observing the mentions M in the
// document collection D. On success the model's weights are updated
// in place and the learning trace is returned. Gold labels in the
// corpus are ignored — learning is fully unsupervised.
//
// Preparation, the E-step and the M-step reductions fan out across
// cfg.Workers goroutines; the blocked fixed-order merges (see
// accumulate.go) make the learned weights bit-for-bit identical for
// every worker count. Learn may run concurrently with Link calls —
// readers see the old weight vector until the final install — but
// must not race with another Learn, SetWeights or Rebind.
func (m *Model) Learn(c *corpus.Corpus) (*LearnStats, error) {
	prepStart := time.Now()
	mds, skipped, err := m.prepareCorpus(c)
	if err != nil {
		return nil, err
	}
	stats := &LearnStats{SkippedMentions: skipped, PrepareTime: time.Since(prepStart)}
	m.metrics.observeEMPrepare(prepStart)
	workers := m.workers()

	// Algorithm 1 line 1–3: initialise every weight to zero. The
	// model then scores candidates by popularity and the generic
	// object model alone, which bootstraps the first E-step.
	w := make([]float64, len(m.paths))

	// Per-mention posterior storage for the E-step.
	post := make([][]float64, len(mds))
	for i, md := range mds {
		post[i] = make([]float64, len(md.cands))
	}

	rng := rand.New(rand.NewSource(1)) // deterministic SGD batches
	emStart := time.Now()
	prev := append([]float64(nil), w...)
	for iter := 0; iter < m.cfg.MaxEMIterations; iter++ {
		iterStart := time.Now()
		// E-step (Formula 18): E(π(m,d,e)) = P(m,d,e) / Σ_e' P(m,d,e').
		// Mentions are independent and each writes only its own
		// posterior row, so the per-item fan-out is deterministic.
		parallelFor(len(mds), workers, func(i int) {
			md := mds[i]
			logs := make([]float64, len(md.cands))
			for ci := range md.cands {
				logs[ci] = m.logJoint(md, ci, w)
			}
			copy(post[i], softmax(logs))
		})

		// M-step: maximise J(w) = Σ f(m,d,e) ln P(d|e) by projected
		// gradient ascent on the weight simplex (Formulas 22–24 plus
		// the normalisation step of Algorithm 1 line 13).
		jBefore := m.objective(mds, post, w)
		gd := m.maximize(mds, post, w, rng)
		stats.GDIterations += gd
		jAfter := m.objective(mds, post, w)

		stats.EMIterations = iter + 1
		stats.Objective = append(stats.Objective, jAfter)
		stats.MStepGain = append(stats.MStepGain, jAfter-jBefore)
		stats.Weights = append(stats.Weights, append([]float64(nil), w...))
		m.metrics.observeEMIteration(iterStart, jAfter)

		delta := 0.0
		for k := range w {
			delta += math.Abs(w[k] - prev[k])
		}
		copy(prev, w)
		if delta < m.cfg.EMTolerance {
			stats.Converged = true
			break
		}
	}
	if stats.EMIterations > 0 {
		stats.EMIterTime = time.Since(emStart) / time.Duration(stats.EMIterations)
	}
	if stats.GDIterations > 0 {
		stats.GDIterTime = time.Since(emStart) / time.Duration(stats.GDIterations)
	}

	m.installWeights(w)
	return stats, nil
}

// objective evaluates J (Formula 22) over all mentions under the
// current posteriors, as a blocked fixed-order reduction across
// cfg.Workers goroutines.
func (m *Model) objective(mds []*mentionData, post [][]float64, w []float64) float64 {
	theta := m.cfg.Theta
	return reduceSum(len(mds), m.workers(), func(lo, hi int) float64 {
		j := 0.0
		for i := lo; i < hi; i++ {
			md := mds[i]
			for ci := range md.cands {
				f := post[i][ci]
				if f == 0 {
					continue
				}
				prof := &md.cands[ci]
				for oi := range md.counts {
					pe := 0.0
					for pi := range w {
						pe += w[pi] * prof.pathProb[pi][oi]
					}
					pv := theta*pe + (1-theta)*md.generic[oi]
					j += f * md.counts[oi] * math.Log(math.Max(pv, m.cfg.ProbFloor))
				}
			}
		}
		return j
	})
}

// gradient accumulates ∂J/∂w_p (Formula 24) over the given mention
// subset into grad, as a blocked fixed-order reduction across
// cfg.Workers goroutines.
func (m *Model) gradient(mds []*mentionData, post [][]float64, w []float64, subset []int, grad []float64) {
	theta := m.cfg.Theta
	sum := reduceVecSum(len(subset), len(grad), m.workers(), func(lo, hi int, acc []float64) {
		for _, i := range subset[lo:hi] {
			md := mds[i]
			for ci := range md.cands {
				f := post[i][ci]
				if f == 0 {
					continue
				}
				prof := &md.cands[ci]
				for oi := range md.counts {
					pe := 0.0
					for pi := range w {
						pe += w[pi] * prof.pathProb[pi][oi]
					}
					pv := theta*pe + (1-theta)*md.generic[oi]
					if pv < m.cfg.ProbFloor {
						pv = m.cfg.ProbFloor
					}
					scale := f * md.counts[oi] * theta / pv
					for pi := range w {
						acc[pi] += scale * prof.pathProb[pi][oi]
					}
				}
			}
		}
	})
	copy(grad, sum)
}

// maximize runs the inner gradient ascent loop of Algorithm 1 (lines
// 9–15), updating w in place, and returns the number of iterations
// performed. Each accepted step is projected back onto the weight
// simplex: negative weights clamp to zero ("we do not consider
// negative w_p") and the vector is renormalised to Σw_p = 1.
func (m *Model) maximize(mds []*mentionData, post [][]float64, w []float64, rng *rand.Rand) int {
	all := make([]int, len(mds))
	for i := range all {
		all[i] = i
	}
	grad := make([]float64, len(w))
	trial := make([]float64, len(w))

	jCur := m.objective(mds, post, w)
	step := m.cfg.LearningRate
	iters := 0
	for t := 0; t < m.cfg.MaxGDIterations; t++ {
		subset := all
		if m.cfg.SGDBatch > 0 && m.cfg.SGDBatch < len(mds) {
			subset = make([]int, m.cfg.SGDBatch)
			for k := range subset {
				subset[k] = rng.Intn(len(mds))
			}
		}
		m.gradient(mds, post, w, subset, grad)

		gInf := 0.0
		for _, g := range grad {
			if a := math.Abs(g); a > gInf {
				gInf = a
			}
		}
		if gInf == 0 {
			break
		}

		if m.cfg.LearningRate > 0 {
			// Paper-faithful fixed step α.
			for k := range w {
				trial[k] = w[k] + step*grad[k]
			}
			project(trial)
			copy(w, trial)
			iters++
			jNew := m.objective(mds, post, w)
			if converged(jCur, jNew, m.cfg.GDTolerance) {
				jCur = jNew
				break
			}
			jCur = jNew
			continue
		}

		// Backtracking line search: start from a step that moves the
		// largest coordinate by ~0.25 and halve until J does not
		// decrease. This automates the paper's requirement that α be
		// "small enough to guarantee the increase of the objective".
		s := 0.25 / gInf
		improved := false
		for bt := 0; bt < 40; bt++ {
			for k := range w {
				trial[k] = w[k] + s*grad[k]
			}
			project(trial)
			jNew := m.objective(mds, post, trial)
			if jNew >= jCur {
				done := converged(jCur, jNew, m.cfg.GDTolerance)
				copy(w, trial)
				jCur = jNew
				improved = true
				iters++
				if done {
					return iters
				}
				break
			}
			s /= 2
		}
		if !improved {
			break
		}
	}
	return iters
}

// converged reports whether the relative objective change is below
// tol.
func converged(jOld, jNew, tol float64) bool {
	return math.Abs(jNew-jOld) <= tol*(math.Abs(jOld)+1)
}

// project maps a weight vector onto the simplex: negatives clamp to
// zero, then the vector is renormalised. An all-zero vector is left
// as zeros (the model then relies on the generic object model alone).
func project(w []float64) {
	sum := 0.0
	for k := range w {
		if w[k] < 0 {
			w[k] = 0
		}
		sum += w[k]
	}
	if sum == 0 {
		return
	}
	for k := range w {
		w[k] /= sum
	}
}
