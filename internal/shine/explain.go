package shine

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// Explanation breaks a linking decision down into the evidence that
// produced it: the log-odds between the winning candidate and the
// runner-up, attributed to the popularity prior and to each document
// object. Positive contributions favour the winner. The decomposition
// is exact:
//
//	PopularityLogOdds + Σ Objects[i].LogOdds
//	  = ln P(m,d,winner) − ln P(m,d,runnerUp)
type Explanation struct {
	// Entity is the winning candidate; RunnerUp the second-best (or
	// hin.NoObject when the mention had a single candidate).
	Entity, RunnerUp hin.ObjectID
	// Margin is the total log-odds between winner and runner-up.
	Margin float64
	// PopularityLogOdds is the share contributed by the entity
	// popularity model P(e).
	PopularityLogOdds float64
	// Objects lists each document object's contribution, sorted by
	// descending absolute log-odds (the most decisive evidence
	// first).
	Objects []ObjectContribution
}

// ObjectContribution is one document object's share of the log-odds.
type ObjectContribution struct {
	Object hin.ObjectID
	// Name and Type describe the object.
	Name, Type string
	// Count is the object's occurrence count in the document.
	Count int
	// LogOdds is count · (ln P(v|winner) − ln P(v|runnerUp)).
	LogOdds float64
}

// PathImportance is one meta-path's leave-one-out effect on a
// linking decision.
type PathImportance struct {
	// Path is the meta-path notation.
	Path string
	// Weight is its current learned weight.
	Weight float64
	// MarginDrop is how much the winner's log-odds margin over the
	// runner-up shrinks when this path is removed (its weight
	// redistributed over the rest). Positive means the path supports
	// the decision; negative means it argues against it.
	MarginDrop float64
}

// ExplainPaths measures each meta-path's leave-one-out importance for
// the document's linking decision: the complement of Explain's
// object-level view, and the per-decision analogue of the global
// learned weights (the paper's Section 5.5 analysis). The winner and
// runner-up are fixed by the full model; paths are then removed one
// at a time.
func (m *Model) ExplainPaths(doc *corpus.Document) ([]PathImportance, error) {
	cands := m.lookupCandidates(doc.Mention)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoCandidates, doc.Mention)
	}
	md, err := m.prepareMention(context.Background(), doc, cands)
	if err != nil {
		return nil, err
	}
	weights := m.snapshotWeights()
	logs := make([]float64, len(cands))
	for i := range md.cands {
		logs[i] = m.logJoint(md, i, weights)
	}
	win, run := 0, -1
	for i := 1; i < len(cands); i++ {
		if logs[i] > logs[win] {
			win = i
		}
	}
	for i := range cands {
		if i != win && (run < 0 || logs[i] > logs[run]) {
			run = i
		}
	}
	out := make([]PathImportance, len(m.paths))
	baseMargin := 0.0
	if run >= 0 {
		baseMargin = logs[win] - logs[run]
	}
	loo := make([]float64, len(weights))
	for pi := range m.paths {
		copy(loo, weights)
		loo[pi] = 0
		project(loo)
		margin := 0.0
		if run >= 0 {
			margin = m.logJoint(md, win, loo) - m.logJoint(md, run, loo)
		}
		out[pi] = PathImportance{
			Path:       m.paths[pi].String(),
			Weight:     weights[pi],
			MarginDrop: baseMargin - margin,
		}
	}
	slices.SortFunc(out, func(pa, pb PathImportance) int {
		if pa.MarginDrop != pb.MarginDrop {
			return cmp.Compare(pb.MarginDrop, pa.MarginDrop)
		}
		return cmp.Compare(pa.Path, pb.Path)
	})
	return out, nil
}

// Explain links the document and decomposes the decision. It is the
// production answer to "why did this mention link there?".
func (m *Model) Explain(doc *corpus.Document) (Explanation, error) {
	return m.ExplainContext(context.Background(), doc)
}

// ExplainContext is Explain under a request context, with the same
// cancellation points as LinkContext: between candidates and between
// walk hops.
func (m *Model) ExplainContext(ctx context.Context, doc *corpus.Document) (Explanation, error) {
	cands := m.lookupCandidates(doc.Mention)
	if len(cands) == 0 {
		return Explanation{}, fmt.Errorf("%w: %q", ErrNoCandidates, doc.Mention)
	}
	md, err := m.prepareMention(ctx, doc, cands)
	if err != nil {
		return Explanation{}, err
	}
	weights := m.snapshotWeights()
	logs := make([]float64, len(cands))
	for i := range md.cands {
		logs[i] = m.logJoint(md, i, weights)
	}
	// Identify winner and runner-up (Link's ordering: posterior desc,
	// then ascending ID — identical to log-joint ordering).
	win, run := 0, -1
	for i := 1; i < len(cands); i++ {
		if logs[i] > logs[win] {
			win = i
		}
	}
	for i := range cands {
		if i == win {
			continue
		}
		if run < 0 || logs[i] > logs[run] {
			run = i
		}
	}

	ex := Explanation{Entity: cands[win]}
	if run < 0 {
		ex.RunnerUp = hin.NoObject
		return ex, nil
	}
	ex.RunnerUp = cands[run]
	ex.Margin = logs[win] - logs[run]
	ex.PopularityLogOdds = math.Log(math.Max(m.popularity[cands[win]], m.cfg.ProbFloor)) -
		math.Log(math.Max(m.popularity[cands[run]], m.cfg.ProbFloor))

	g := m.graph
	theta := m.cfg.Theta
	for oi, oc := range doc.Objects {
		pv := func(ci int) float64 {
			pe := 0.0
			for pi := range weights {
				pe += weights[pi] * md.cands[ci].pathProb[pi][oi]
			}
			return math.Max(theta*pe+(1-theta)*md.generic[oi], m.cfg.ProbFloor)
		}
		ex.Objects = append(ex.Objects, ObjectContribution{
			Object:  oc.Object,
			Name:    g.Name(oc.Object),
			Type:    g.Schema().Type(g.TypeOf(oc.Object)).Abbrev,
			Count:   oc.Count,
			LogOdds: float64(oc.Count) * (math.Log(pv(win)) - math.Log(pv(run))),
		})
	}
	slices.SortFunc(ex.Objects, func(oa, ob ObjectContribution) int {
		if math.Abs(oa.LogOdds) != math.Abs(ob.LogOdds) {
			return cmp.Compare(math.Abs(ob.LogOdds), math.Abs(oa.LogOdds))
		}
		return cmp.Compare(oa.Object, ob.Object)
	})
	return ex, nil
}
