package shine

import (
	"context"
	"errors"
	"testing"
)

// TestLinkContextPreCanceled: the acceptance contract of the request
// lifecycle — a Link under an already-canceled context returns
// ctx.Err() without completing a single full meta-path walk.
func TestLinkContextPreCanceled(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	before := m.walker.WalkStats()
	if before.Completed != 0 {
		t.Fatalf("model construction ran %d walks; test assumes 0", before.Completed)
	}
	_, err := m.LinkContext(ctx, f.docA)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("LinkContext(canceled) err = %v, want context.Canceled", err)
	}
	after := m.walker.WalkStats()
	if after.Completed != 0 {
		t.Errorf("canceled LinkContext completed %d walks, want 0", after.Completed)
	}
	if after.Hops != 0 {
		t.Errorf("canceled LinkContext expanded %d hops, want 0", after.Hops)
	}
}

func TestLinkNILContextPreCanceled(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.LinkNILContext(ctx, f.docA, 0.1); !errors.Is(err, context.Canceled) {
		t.Errorf("LinkNILContext(canceled) err = %v, want context.Canceled", err)
	}
	if st := m.walker.WalkStats(); st.Completed != 0 {
		t.Errorf("canceled LinkNILContext completed %d walks, want 0", st.Completed)
	}
}

func TestExplainContextPreCanceled(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ExplainContext(ctx, f.docA); !errors.Is(err, context.Canceled) {
		t.Errorf("ExplainContext(canceled) err = %v, want context.Canceled", err)
	}
}

// TestLinkContextBackgroundMatchesLink: threading context.Background
// through the serving path is a pure pass-through — identical entity,
// identical posteriors, bit for bit.
func TestLinkContextBackgroundMatchesLink(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	plain, err := m.Link(f.docA)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := m.LinkContext(context.Background(), f.docA)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Entity != ctxed.Entity {
		t.Fatalf("entity: %d vs %d", plain.Entity, ctxed.Entity)
	}
	if len(plain.Candidates) != len(ctxed.Candidates) {
		t.Fatalf("candidate count: %d vs %d", len(plain.Candidates), len(ctxed.Candidates))
	}
	for i := range plain.Candidates {
		if plain.Candidates[i] != ctxed.Candidates[i] {
			t.Errorf("candidate %d: %+v vs %+v", i, plain.Candidates[i], ctxed.Candidates[i])
		}
	}
}
