// Package shine implements the paper's probabilistic entity linking
// model: P(m, d, e) = η · P(e) · P(d|e), combining the entity
// popularity model (PageRank over the whole network, Section 3.1)
// with the entity object model (meta-path constrained random walk
// mixtures smoothed by a generic corpus model, Section 3.2), and the
// unsupervised EM learning algorithm for the meta-path weights
// (Section 4, Algorithm 1).
package shine

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"shine/internal/pagerank"
	"shine/internal/surftrie"
)

// PopularityMode selects the entity popularity model P(e).
type PopularityMode int

const (
	// PopularityPageRank is the paper's entity popularity model
	// (Formula 7): PageRank scores normalised over the entity set.
	PopularityPageRank PopularityMode = iota
	// PopularityUniform is the uniform model P(e) = 1/|E| (Formula
	// 5), used by the paper's "-eom" ablations.
	PopularityUniform
)

// String names the mode for logs and flags.
func (m PopularityMode) String() string {
	switch m {
	case PopularityPageRank:
		return "pagerank"
	case PopularityUniform:
		return "uniform"
	default:
		return fmt.Sprintf("PopularityMode(%d)", int(m))
	}
}

// Config holds all model and learning hyper-parameters. Start from
// DefaultConfig; the zero value is invalid.
type Config struct {
	// Theta balances the entity-specific object model against the
	// generic object model (Formula 9). The paper sets θ = 0.2.
	Theta float64
	// Eta is the constant P(m|e) (Formula 4). It cancels in every
	// argmax and posterior, but is kept so reported joint scores match
	// the paper's formulation.
	Eta float64
	// Popularity selects the P(e) model.
	Popularity PopularityMode
	// Centrality names the pagerank.Centrality backend that computes
	// the raw importance scores under PopularityPageRank mode —
	// "pagerank" (the paper's Formula 6), "degree", "hits", or "ppr"
	// (type-personalized PageRank). Empty selects "pagerank", which
	// also keeps models and snapshots saved before the field existed
	// loading unchanged. Ignored under PopularityUniform.
	Centrality string
	// PageRank configures the popularity computation (λ = 0.2 in the
	// paper). All centrality backends share these options: Tolerance
	// and MaxIterations govern HITS's alternating sweeps too, while
	// single-pass backends (degree) only validate them.
	PageRank pagerank.Options

	// LearningRate is the gradient ascent step α (Formula 23). The
	// paper uses a fixed 3e-6 tuned to its corpus; a non-positive
	// value selects backtracking line search, which adapts the step to
	// guarantee the objective never decreases (the property the paper
	// tunes α for).
	LearningRate float64
	// MaxEMIterations bounds the outer EM loop.
	MaxEMIterations int
	// MaxGDIterations bounds the inner gradient ascent loop per
	// M-step.
	MaxGDIterations int
	// EMTolerance stops the EM loop when the L1 change of the weight
	// vector falls below it ("until the meta-path weight vector
	// stabilizes within some threshold").
	EMTolerance float64
	// GDTolerance stops the inner loop when the relative objective
	// improvement falls below it.
	GDTolerance float64
	// SGDBatch, when positive, switches the M-step to stochastic
	// gradient ascent over batches of this many mentions — the
	// large-scale variant Section 4 suggests. Zero uses full batches.
	SGDBatch int

	// Workers is the number of goroutines the offline and training
	// pipelines fan out to: the whole-network PageRank popularity
	// computation (unless PageRank.Workers overrides it), corpus
	// preparation (the per-mention meta-path walk precompute), the
	// E-step posterior pass, and the blocked objective/gradient
	// reductions of the M-step. Every reduction merges per-block
	// partials in a fixed order, so the learned weights and PageRank
	// scores are bit-for-bit identical for every Workers value.
	// DefaultConfig sets GOMAXPROCS. Workers is an execution knob,
	// not learned state: it is excluded from saved models, and a
	// loaded model runs with the host's GOMAXPROCS.
	Workers int `json:"-"`

	// FuzzyDistance, when positive, enables the serving-path fuzzy
	// fallback: a mention whose exact candidate set is empty is
	// retried against the surface-form trie at this edit distance
	// (capped at surftrie.MaxDistance), so noisy OCR-style mentions
	// still reach their candidate block. Training is unaffected —
	// prepareCorpus always uses the strict rules. Like Workers it is
	// an execution knob, excluded from saved models; the -fuzzy CLI
	// flag sets it.
	FuzzyDistance int `json:"-"`

	// PrecomputeMixtures, when true, eagerly rebuilds the frozen
	// entity-mixture serving index after every weight install
	// (Learn/SetWeights) instead of letting Link fill it lazily — the
	// first request after training then pays no meta-path walk latency.
	// Like Workers it is an execution knob, excluded from saved models;
	// the -precompute CLI flag sets it (and triggers one build at
	// startup for loaded models).
	PrecomputeMixtures bool `json:"-"`

	// WalkCacheSize bounds the meta-path walk cache.
	WalkCacheSize int
	// WalkPruning, when positive, truncates each intermediate random
	// walk distribution to its largest WalkPruning entries — an
	// approximation that bounds walk cost on networks with hub
	// objects. Zero computes exact walks (the paper's setting).
	WalkPruning int
	// ProbFloor is the smallest probability used inside logarithms,
	// guarding against documents containing objects unseen in the
	// generic model.
	ProbFloor float64
}

// DefaultConfig returns the paper's experimental configuration:
// θ = 0.2, PageRank popularity with λ = 0.2, backtracking gradient
// ascent.
func DefaultConfig() Config {
	return Config{
		Theta:           0.2,
		Eta:             1.0,
		Popularity:      PopularityPageRank,
		Centrality:      pagerank.DefaultCentrality,
		PageRank:        pagerank.DefaultOptions(),
		LearningRate:    0, // backtracking
		MaxEMIterations: 20,
		MaxGDIterations: 50,
		EMTolerance:     1e-4,
		GDTolerance:     1e-7,
		SGDBatch:        0,
		Workers:         runtime.GOMAXPROCS(0),
		WalkCacheSize:   metapathCacheDefault,
		ProbFloor:       1e-12,
	}
}

const metapathCacheDefault = 65536

// CentralityName resolves the configured centrality backend,
// defaulting the empty string to "pagerank" so configs decoded from
// artifacts saved before the field existed keep their old behaviour.
func (c Config) CentralityName() string {
	if c.Centrality == "" {
		return pagerank.DefaultCentrality
	}
	return c.Centrality
}

// Validate reports the first configuration problem, or nil. Every
// float field is checked for NaN explicitly: NaN fails both halves of
// a range test like `x <= 0 || x >= 1`, so without the explicit test a
// NaN would sail through and poison downstream arithmetic.
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.Theta) || c.Theta <= 0 || c.Theta >= 1:
		return fmt.Errorf("shine: theta %v outside (0, 1)", c.Theta)
	case math.IsNaN(c.Eta) || c.Eta <= 0 || c.Eta > 1:
		return fmt.Errorf("shine: eta %v outside (0, 1]", c.Eta)
	case c.Popularity != PopularityPageRank && c.Popularity != PopularityUniform:
		return fmt.Errorf("shine: unknown popularity mode %d", c.Popularity)
	case c.Centrality != "" && !pagerank.ValidCentrality(c.Centrality):
		return fmt.Errorf("shine: unknown centrality backend %q (have %s)",
			c.Centrality, strings.Join(pagerank.CentralityNames(), ", "))
	case math.IsNaN(c.LearningRate) || math.IsInf(c.LearningRate, 0):
		return fmt.Errorf("shine: LearningRate %v is not finite", c.LearningRate)
	case c.MaxEMIterations < 1:
		return fmt.Errorf("shine: MaxEMIterations %d must be positive", c.MaxEMIterations)
	case c.MaxGDIterations < 1:
		return fmt.Errorf("shine: MaxGDIterations %d must be positive", c.MaxGDIterations)
	case math.IsNaN(c.EMTolerance) || math.IsInf(c.EMTolerance, 0) || c.EMTolerance <= 0:
		return fmt.Errorf("shine: EMTolerance %v must be positive and finite", c.EMTolerance)
	case math.IsNaN(c.GDTolerance) || math.IsInf(c.GDTolerance, 0) || c.GDTolerance <= 0:
		return fmt.Errorf("shine: GDTolerance %v must be positive and finite", c.GDTolerance)
	case c.SGDBatch < 0:
		return fmt.Errorf("shine: SGDBatch %d negative", c.SGDBatch)
	case c.Workers < 1:
		return fmt.Errorf("shine: Workers %d must be positive (DefaultConfig uses GOMAXPROCS)", c.Workers)
	case c.FuzzyDistance < 0 || c.FuzzyDistance > surftrie.MaxDistance:
		return fmt.Errorf("shine: FuzzyDistance %d outside [0, %d]", c.FuzzyDistance, surftrie.MaxDistance)
	case c.WalkPruning < 0:
		return fmt.Errorf("shine: WalkPruning %d negative", c.WalkPruning)
	case math.IsNaN(c.ProbFloor) || c.ProbFloor <= 0 || c.ProbFloor >= 1e-3:
		return fmt.Errorf("shine: ProbFloor %v outside (0, 1e-3)", c.ProbFloor)
	}
	// The nested centrality options carry their own float fields;
	// validate them here so a NaN λ fails at config time, not at the
	// first popularity computation.
	if err := c.PageRank.Validate(); err != nil {
		return fmt.Errorf("shine: %w", err)
	}
	return nil
}
