package shine

import (
	"fmt"
	"time"

	"shine/internal/hin"
	"shine/internal/surftrie"
)

// CandidateSource generates candidate entities for a mention surface
// form. Both methods return freshly allocated slices in ascending ID
// order with no duplicates. The production implementation is
// surftrie.Trie; namematch.Index is the brute-force reference the
// test harness holds it against.
type CandidateSource interface {
	// Candidates applies the paper's Section 5.1 exact rules.
	Candidates(mention string) []hin.ObjectID
	// LooseCandidates extends Candidates with first-initial matching
	// for citation-style mentions ("W. Wang" finds every "Wei Wang").
	LooseCandidates(mention string) []hin.ObjectID
}

// FuzzyCandidateSource is a CandidateSource that can additionally
// retrieve by bounded edit distance, for noisy OCR-style mentions.
// FuzzyCandidates(m, d) must be a superset of Candidates(m) for every
// d ≥ 0.
type FuzzyCandidateSource interface {
	CandidateSource
	FuzzyCandidates(mention string, dist int) []hin.ObjectID
}

// Statically bind the contract both implementations are tested
// against.
var _ FuzzyCandidateSource = (*surftrie.Trie)(nil)

// CandidateSource returns the model's candidate generator.
func (m *Model) CandidateSource() CandidateSource { return m.cands }

// SetCandidateSource replaces the model's candidate generator —
// primarily a testing seam for running the serving path against the
// brute-force namematch oracle. Like SetGeneric, it must not race
// with concurrent Link calls.
func (m *Model) SetCandidateSource(s CandidateSource) {
	m.cands = s
	m.trie, _ = s.(*surftrie.Trie)
}

// Trie returns the model's surface-form trie, or nil when a custom
// candidate source was installed. The snapshot encoder persists it so
// restored models skip the rebuild.
func (m *Model) Trie() *surftrie.Trie { return m.trie }

// LooseCandidates returns the first-initial candidate set for a
// mention. The slice is freshly allocated and owned by the caller.
func (m *Model) LooseCandidates(mention string) []hin.ObjectID {
	return m.cands.LooseCandidates(mention)
}

// FuzzyCandidates returns the bounded-edit-distance candidate set for
// a mention, or nil when the model's candidate source cannot do fuzzy
// retrieval.
func (m *Model) FuzzyCandidates(mention string, dist int) []hin.ObjectID {
	fz, ok := m.cands.(FuzzyCandidateSource)
	if !ok {
		return nil
	}
	return fz.FuzzyCandidates(mention, dist)
}

// SetFuzzyDistance sets the serving-path fuzzy fallback distance (see
// Config.FuzzyDistance); 0 disables the fallback. Must not race with
// concurrent Link calls.
func (m *Model) SetFuzzyDistance(dist int) error {
	if dist < 0 || dist > surftrie.MaxDistance {
		return fmt.Errorf("shine: FuzzyDistance %d outside [0, %d]", dist, surftrie.MaxDistance)
	}
	m.cfg.FuzzyDistance = dist
	return nil
}

// lookupCandidates is the serving-path candidate lookup: the exact
// rules first, then — only when they come up empty, fuzzy fallback is
// enabled, and the source supports it — a bounded-edit-distance
// retrieval. Training (prepareCorpus) deliberately bypasses this and
// stays strict, so EM sees the paper's candidate sets regardless of
// serving knobs.
func (m *Model) lookupCandidates(mention string) []hin.ObjectID {
	mm := m.metrics
	var start time.Time
	if mm != nil {
		start = time.Now()
	}
	out := m.cands.Candidates(mention)
	fuzzy := false
	if len(out) == 0 && m.cfg.FuzzyDistance > 0 {
		if fz, ok := m.cands.(FuzzyCandidateSource); ok {
			out = fz.FuzzyCandidates(mention, m.cfg.FuzzyDistance)
			fuzzy = true
		}
	}
	mm.observeCandidates(start, fuzzy)
	return out
}
