package shine

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
)

// Model persistence: a trained model is its configuration, entity
// type, meta-path set and learned weight vector. Everything else
// (popularity, walk caches, the generic object model) is derived
// deterministically from the graph and corpus at load time, so the
// saved artifact stays small and graph-version-independent: load the
// same snapshot against an updated network and the weights carry
// over.

// modelState is the on-disk JSON representation.
type modelState struct {
	Version    int       `json:"version"`
	EntityType string    `json:"entityType"`
	Paths      []string  `json:"paths"`
	Weights    []float64 `json:"weights"`
	Config     Config    `json:"config"`
}

const modelStateVersion = 1

// Save writes the model's learned state (config, meta-path set and
// weights) as JSON.
func (m *Model) Save(w io.Writer) error {
	st := modelState{
		Version:    modelStateVersion,
		EntityType: m.graph.Schema().Type(m.entityType).Name,
		Weights:    m.Weights(),
		Config:     m.cfg,
	}
	for _, p := range m.paths {
		st.Paths = append(st.Paths, p.String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// Load reconstructs a model saved with Save over the given graph and
// document collection. The graph's schema must contain the saved
// entity type and support the saved meta-path notations; the corpus
// provides the generic object model exactly as in New.
func Load(r io.Reader, g *hin.Graph, docs *corpus.Corpus) (*Model, error) {
	var st modelState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("shine: decoding model state: %w", err)
	}
	if st.Version > modelStateVersion {
		return nil, fmt.Errorf("shine: model state version %d was built by a newer shine (this build reads up to version %d); upgrade the binary or re-save the model",
			st.Version, modelStateVersion)
	}
	if st.Version != modelStateVersion {
		return nil, fmt.Errorf("shine: unsupported model state version %d", st.Version)
	}
	// Workers and PrecomputeMixtures are execution knobs excluded from
	// the artifact (json:"-"), so a decoded Config always carries their
	// zero values; resolve Workers to this host's parallelism before
	// validation. PrecomputeMixtures stays off — the deployment decides
	// (server.Options.Precompute / the -precompute flag); the frozen
	// mixture index otherwise fills lazily from the restored weights,
	// which SetWeights below installs through the usual
	// version-bump-and-invalidate path.
	st.Config.Workers = runtime.GOMAXPROCS(0)
	entityType, ok := g.Schema().TypeByName(st.EntityType)
	if !ok {
		return nil, fmt.Errorf("shine: graph schema has no type %q", st.EntityType)
	}
	if len(st.Paths) == 0 || len(st.Paths) != len(st.Weights) {
		return nil, fmt.Errorf("shine: model state has %d paths and %d weights",
			len(st.Paths), len(st.Weights))
	}
	paths, err := metapath.ParseAll(g.Schema(), st.Paths)
	if err != nil {
		return nil, fmt.Errorf("shine: reparsing meta-paths: %w", err)
	}
	m, err := New(g, entityType, paths, docs, st.Config)
	if err != nil {
		return nil, err
	}
	if err := m.SetWeights(st.Weights); err != nil {
		return nil, fmt.Errorf("shine: restoring weights: %w", err)
	}
	return m, nil
}
