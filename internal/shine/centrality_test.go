package shine

import (
	"math"
	"strings"
	"testing"

	"shine/internal/pagerank"
)

// TestValidateRejectsNaN sweeps every float field of Config for the
// NaN hole: NaN fails both halves of a range comparison, so each
// field's validation needs an explicit IsNaN (and, for open-ended
// fields, IsInf) term. One table row per field.
func TestValidateRejectsNaN(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		field  string // substring the error must carry
		mutate func(*Config)
	}{
		{"theta", func(c *Config) { c.Theta = nan }},
		{"eta", func(c *Config) { c.Eta = nan }},
		{"LearningRate", func(c *Config) { c.LearningRate = nan }},
		{"LearningRate", func(c *Config) { c.LearningRate = inf }},
		{"EMTolerance", func(c *Config) { c.EMTolerance = nan }},
		{"EMTolerance", func(c *Config) { c.EMTolerance = inf }},
		{"GDTolerance", func(c *Config) { c.GDTolerance = nan }},
		{"GDTolerance", func(c *Config) { c.GDTolerance = inf }},
		{"ProbFloor", func(c *Config) { c.ProbFloor = nan }},
		// The nested pagerank options go through the same sweep.
		{"lambda", func(c *Config) { c.PageRank.Lambda = nan }},
		{"tolerance", func(c *Config) { c.PageRank.Tolerance = nan }},
		{"tolerance", func(c *Config) { c.PageRank.Tolerance = inf }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a NaN/Inf value", tc.field)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.field)) {
			t.Errorf("%s: error %q does not name the field", tc.field, err)
		}
	}
}

func TestValidateRejectsUnknownCentrality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Centrality = "closeness"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown centrality backend accepted")
	}
	if !strings.Contains(err.Error(), "closeness") {
		t.Errorf("error %q does not name the offending backend", err)
	}
	// Empty means "default": valid, resolves to pagerank.
	cfg.Centrality = ""
	if err := cfg.Validate(); err != nil {
		t.Errorf("empty Centrality rejected: %v", err)
	}
	if cfg.CentralityName() != pagerank.DefaultCentrality {
		t.Errorf("CentralityName() = %q for empty field", cfg.CentralityName())
	}
}

// TestLinkNILRejectsNonFinitePrior is the regression test for the NaN
// hole in linkNIL's guard: `nilPrior <= 0 || nilPrior >= 1` is false
// for NaN, which used to let a NaN prior through to the posterior
// arithmetic and return NaN-scored candidates.
func TestLinkNILRejectsNonFinitePrior(t *testing.T) {
	f, nilDoc := nilFixture(t)
	m := newNILModel(t, f)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r, err := m.LinkNIL(nilDoc, bad)
		if err == nil {
			t.Errorf("prior %v accepted; result %+v", bad, r)
		}
	}
}

// TestModelTrainsAndLinksUnderEveryBackend runs the full pipeline —
// construction (popularity via the backend), EM learning, serving —
// once per centrality backend. The two-Wangs fixture's communities are
// disconnected, which exposes HITS's known tyranny-of-the-dominant-
// component behaviour: the principal eigenvector puts essentially all
// authority on the larger SIGMOD community, so the NIPS Wei Wang's
// prior collapses and doc b is expected to mislink under hits. Every
// other backend must link both documents to gold.
func TestModelTrainsAndLinksUnderEveryBackend(t *testing.T) {
	f := newFixture(t)
	for _, name := range pagerank.CentralityNames() {
		t.Run(name, func(t *testing.T) {
			m := newModel(t, f, func(c *Config) { c.Centrality = name })
			if _, err := m.Learn(f.corpus); err != nil {
				t.Fatalf("Learn: %v", err)
			}
			for _, doc := range f.corpus.Docs {
				r, err := m.Link(doc)
				if err != nil {
					t.Fatalf("Link(%s): %v", doc.ID, err)
				}
				if name == "hits" && doc == f.docB {
					continue // dominated component; prior ≈ 0 by design
				}
				if r.Entity != doc.Gold {
					t.Errorf("doc %s linked to %d, want gold %d", doc.ID, r.Entity, doc.Gold)
				}
			}
			// The backend's name round-trips through Parts.
			if got := m.Parts().Centrality; got != name {
				t.Errorf("Parts().Centrality = %q, want %q", got, name)
			}
		})
	}
}

// TestFromPartsRejectsCentralityMismatch: an artifact's popularity
// section must never be served under a different backend's name.
func TestFromPartsRejectsCentralityMismatch(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) { c.Centrality = "degree" })
	p := m.Parts()
	if p.Centrality != "degree" {
		t.Fatalf("Parts().Centrality = %q", p.Centrality)
	}

	// Same backend: reassembles fine.
	if _, err := FromParts(p); err != nil {
		t.Fatalf("FromParts(matching): %v", err)
	}

	// Mismatched config: rejected, error names both backends.
	bad := p
	bad.Config.Centrality = "hits"
	_, err := FromParts(bad)
	if err == nil {
		t.Fatal("FromParts accepted degree popularity under a hits config")
	}
	if !strings.Contains(err.Error(), "degree") || !strings.Contains(err.Error(), "hits") {
		t.Errorf("error %q does not name both backends", err)
	}

	// Pre-field artifacts (empty Centrality) load as pagerank only.
	legacy := newModel(t, f, nil).Parts()
	legacy.Centrality = ""
	if _, err := FromParts(legacy); err != nil {
		t.Errorf("FromParts(legacy empty centrality, pagerank config): %v", err)
	}
	legacy.Config.Centrality = "degree"
	legacyPop := legacy
	if _, err := FromParts(legacyPop); err != nil {
		// Empty Centrality is accepted under any config — it predates
		// the field, so there is nothing to enforce against.
		t.Errorf("FromParts(legacy empty centrality, degree config): %v", err)
	}
}
