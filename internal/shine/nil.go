package shine

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"time"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// NIL prediction — the paper's stated future work ("the method for
// predicting entity mentions that do not have their corresponding
// entity records in the heterogeneous information network is left for
// future research", Section 2.2) — implemented inside the generative
// model rather than as an ad-hoc threshold:
//
// A NIL pseudo-candidate is added to every candidate set. Its prior
// is a configurable mass π: the probability that the mention's true
// referent has no record, given its surface form. The remaining 1−π
// is distributed over the real candidates in proportion to their
// popularity (renormalised over the candidate set — the global P(e)
// sums to 1 over *all* entities, so using it raw would let any
// non-trivial π swamp the handful of candidates). The NIL object
// model is the generic model alone — a document about an entity the
// network does not know looks, to the network, like generic domain
// text:
//
//	P(m, d, NIL)  = η · π · Π_v Pg(v)^count(v)
//	P(m, d, e)    = η · (1−π) · P(e)/Σ_{e'∈cand}P(e') · P(d|e)
//
// Renormalising the candidate priors leaves candidate-vs-candidate
// posteriors identical to Link's; only the NIL-vs-candidates balance
// is governed by π. The mention maps to NIL exactly when no
// candidate's neighbourhood explains the document better than the
// domain background does.

// NILPrior is the default prior mass reserved for the NIL outcome.
const NILPrior = 0.05

// LinkNIL resolves the document's mention like Link, but may return
// hin.NoObject (NIL) when the document is better explained by the
// generic domain model than by any candidate. nilPrior ∈ (0, 1) is
// the prior probability that the mention's entity is absent from the
// network; higher values predict NIL more eagerly.
//
// Unlike Link, a mention whose surface form matches no entity at all
// is not an error here: it is a NIL prediction with posterior 1.
func (m *Model) LinkNIL(doc *corpus.Document, nilPrior float64) (Result, error) {
	return m.LinkNILContext(context.Background(), doc, nilPrior)
}

// LinkNILContext is LinkNIL under a request context, with the same
// cancellation points as LinkContext: between candidates and between
// walk hops.
func (m *Model) LinkNILContext(ctx context.Context, doc *corpus.Document, nilPrior float64) (Result, error) {
	mm := m.metrics
	var start time.Time
	if mm != nil {
		start = time.Now()
	}
	res, err := m.linkNIL(ctx, doc, nilPrior)
	mm.observeLink(start, res, err)
	return res, err
}

func (m *Model) linkNIL(ctx context.Context, doc *corpus.Document, nilPrior float64) (Result, error) {
	// The NaN test must be explicit: NaN <= 0 and NaN >= 1 are both
	// false, so a NaN prior would pass the range check and then
	// propagate through log(1−π) into every candidate's posterior.
	// ±Inf is caught by the range comparisons.
	if math.IsNaN(nilPrior) || nilPrior <= 0 || nilPrior >= 1 {
		return Result{}, fmt.Errorf("shine: NIL prior %v outside (0, 1)", nilPrior)
	}
	cands := m.lookupCandidates(doc.Mention)
	if len(cands) == 0 {
		return Result{
			Entity: hin.NoObject,
			Candidates: []CandidateScore{{
				Entity:    hin.NoObject,
				LogJoint:  m.nilLogJoint(doc, nilPrior),
				Posterior: 1,
			}},
		}, nil
	}
	w, ver := m.snapshotWeightsVer()
	mx, err := m.prepareMentionMixtures(ctx, doc, cands, w, ver)
	if err != nil {
		return Result{}, err
	}

	candMass := 0.0
	for _, e := range cands {
		candMass += m.popularity[e]
	}
	if candMass < m.cfg.ProbFloor {
		candMass = m.cfg.ProbFloor
	}
	logs := make([]float64, len(cands)+1)
	// (1−π) / Σ P(e') rescales the candidate priors so they compete
	// with π on equal footing.
	scale := math.Log(1-nilPrior) - math.Log(candMass)
	for i, e := range cands {
		logs[i] = scale + m.logJointFrozen(mx, i, e)
	}
	logs[len(cands)] = m.nilLogJoint(doc, nilPrior)
	post := softmax(logs)

	res := Result{Candidates: make([]CandidateScore, len(logs))}
	for i, e := range cands {
		res.Candidates[i] = CandidateScore{Entity: e, LogJoint: logs[i], Posterior: post[i]}
	}
	res.Candidates[len(cands)] = CandidateScore{
		Entity:    hin.NoObject,
		LogJoint:  logs[len(cands)],
		Posterior: post[len(cands)],
	}
	slices.SortFunc(res.Candidates, func(ca, cb CandidateScore) int {
		if ca.Posterior != cb.Posterior {
			return cmp.Compare(cb.Posterior, ca.Posterior)
		}
		return cmp.Compare(ca.Entity, cb.Entity)
	})
	res.Entity = res.Candidates[0].Entity
	return res, nil
}

// nilLogJoint scores the NIL pseudo-candidate: prior mass times the
// generic object model over the document.
func (m *Model) nilLogJoint(doc *corpus.Document, nilPrior float64) float64 {
	score := math.Log(m.cfg.Eta) + math.Log(nilPrior)
	for _, oc := range doc.Objects {
		pg := m.generic.Prob(oc.Object)
		score += float64(oc.Count) * math.Log(math.Max(pg, m.cfg.ProbFloor))
	}
	return score
}
