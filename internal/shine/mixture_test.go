package shine

import (
	"context"
	"testing"

	"shine/internal/hin"
)

// TestFrozenLinkMatchesLogJoint: the frozen serving path produces
// bit-for-bit the scores of the training-path formula (prepareMention
// per-path probabilities folded by logJoint). This is the end-to-end
// determinism contract of the mixture index.
func TestFrozenLinkMatchesLogJoint(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	w := make([]float64, len(m.Paths()))
	for i := range w {
		w[i] = float64(i + 1) // non-uniform, renormalised by SetWeights
	}
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	for _, doc := range f.corpus.Docs {
		res, err := m.Link(doc)
		if err != nil {
			t.Fatalf("Link(%s): %v", doc.ID, err)
		}
		cands := m.Candidates(doc.Mention)
		md, err := m.prepareMention(context.Background(), doc, cands)
		if err != nil {
			t.Fatal(err)
		}
		w := m.snapshotWeights()
		want := make(map[hin.ObjectID]float64, len(cands))
		for i, e := range cands {
			want[e] = m.logJoint(md, i, w)
		}
		for _, cs := range res.Candidates {
			if got := cs.LogJoint; got != want[cs.Entity] {
				t.Errorf("doc %s entity %d: frozen LogJoint = %v, map path %v (bit-for-bit)",
					doc.ID, cs.Entity, got, want[cs.Entity])
			}
		}
	}
}

// TestMixtureInvalidationOnSetWeights: weight installs flush the
// frozen index, and the rebuilt entries serve the new weights.
func TestMixtureInvalidationOnSetWeights(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
	st := m.MixtureStats()
	if st.Entries == 0 || st.Builds == 0 {
		t.Fatalf("no mixtures built by Link: %+v", st)
	}
	before := st.Invalidations

	n := len(m.Paths())
	w := make([]float64, n)
	w[0] = 1 // all mass on the first path: scores must change
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	st = m.MixtureStats()
	if st.Entries != 0 {
		t.Errorf("%d stale mixtures survive SetWeights", st.Entries)
	}
	if st.Invalidations != before+1 {
		t.Errorf("invalidations %d, want %d", st.Invalidations, before+1)
	}

	// Rebuilt entries must reflect the new weights bit-for-bit.
	res, err := m.Link(f.docA)
	if err != nil {
		t.Fatal(err)
	}
	cands := m.Candidates(f.docA.Mention)
	md, err := m.prepareMention(context.Background(), f.docA, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range cands {
		want := m.logJoint(md, i, m.snapshotWeights())
		for _, cs := range res.Candidates {
			if cs.Entity == e && cs.LogJoint != want {
				t.Errorf("entity %d after SetWeights: LogJoint = %v, want %v", e, cs.LogJoint, want)
			}
		}
	}
}

// TestMixtureInvalidationOnRebind: rebinding to a (new) graph flushes
// the index — its distributions are over the old graph's object IDs.
func TestMixtureInvalidationOnRebind(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
	if m.MixtureStats().Entries == 0 {
		t.Fatal("no mixtures before Rebind")
	}
	if err := m.Rebind(newFixture(t).g); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	if n := m.MixtureStats().Entries; n != 0 {
		t.Errorf("%d stale mixtures survive Rebind", n)
	}
	if _, err := m.Link(f.docA); err != nil {
		t.Fatalf("Link after Rebind: %v", err)
	}
}

// TestEntityObjectProbMemoised: probing N objects of one entity builds
// its mixture once, and every probe matches the frozen Link-path
// quantities exactly.
func TestEntityObjectProbMemoised(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	e := f.ids["w1"]
	probes := []hin.ObjectID{f.ids["sigmod"], f.ids["data"], f.ids["mine"], f.ids["nips"], f.ids["1999"]}

	before := m.MixtureStats().Builds
	var first []float64
	for _, v := range probes {
		p, err := m.EntityObjectProb(e, v)
		if err != nil {
			t.Fatalf("EntityObjectProb(%d): %v", v, err)
		}
		first = append(first, p)
	}
	st := m.MixtureStats()
	if got := st.Builds - before; got != 1 {
		t.Errorf("%d probes built the mixture %d times, want 1", len(probes), got)
	}

	// The memo must agree with the definition: θ·Pe(v) + (1−θ)·Pg(v).
	for i, v := range probes {
		pe, err := m.EntitySpecificProb(e, v)
		if err != nil {
			t.Fatal(err)
		}
		want := m.cfg.Theta*pe + (1-m.cfg.Theta)*m.generic.Prob(v)
		if first[i] != want {
			t.Errorf("EntityObjectProb(%d) = %v, want %v", v, first[i], want)
		}
	}
}

// TestPrecomputeMixtures: the eager build covers every entity of the
// model's type, and serving afterwards is all cache hits.
func TestPrecomputeMixtures(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if err := m.PrecomputeMixtures(); err != nil {
		t.Fatalf("PrecomputeMixtures: %v", err)
	}
	st := m.MixtureStats()
	if want := len(f.g.ObjectsOfType(f.d.Author)); st.Entries != want {
		t.Errorf("precompute built %d mixtures, want %d", st.Entries, want)
	}
	missesBefore := st.Misses
	if _, err := m.Link(f.docA); err != nil {
		t.Fatal(err)
	}
	if st := m.MixtureStats(); st.Misses != missesBefore {
		t.Errorf("Link after precompute missed the index (%d -> %d misses)", missesBefore, st.Misses)
	}
}

// TestEagerRebuildOnInstall: Config.PrecomputeMixtures makes every
// weight install rebuild the serving index without any Link traffic.
func TestEagerRebuildOnInstall(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) { c.PrecomputeMixtures = true })
	n := len(m.Paths())
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i + 1)
	}
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	st := m.MixtureStats()
	if want := len(f.g.ObjectsOfType(f.d.Author)); st.Entries != want {
		t.Errorf("eager install left %d mixtures, want %d", st.Entries, want)
	}
}

// TestCandidatesCallerOwned: mutating a returned candidate slice must
// not corrupt later lookups (slice-ownership audit).
func TestCandidatesCallerOwned(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	first := m.Candidates("Wei Wang")
	if len(first) == 0 {
		t.Fatal("no candidates for Wei Wang")
	}
	want := append([]hin.ObjectID(nil), first...)
	for i := range first {
		first[i] = hin.ObjectID(99999) // attack the returned slice
	}
	second := m.Candidates("Wei Wang")
	if len(second) != len(want) {
		t.Fatalf("candidate count changed: %d vs %d", len(second), len(want))
	}
	for i := range second {
		if second[i] != want[i] {
			t.Errorf("candidate[%d] = %d after caller mutation, want %d", i, second[i], want[i])
		}
	}
}

// TestLinkSteadyStateAllocs pins the allocation count of a cached-hit
// Link call. The frozen path allocates only per-request state (result
// slices, the mention's row buffer) — if this regresses, the serving
// path has picked up per-request walk or map work again.
func TestLinkSteadyStateAllocs(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Link(f.docA); err != nil { // warm the mixture index
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := m.Link(f.docA); err != nil {
			t.Fatal(err)
		}
	})
	// Pre-PR, a single Link ran ~390 allocations (walk mixing, map
	// scatter); the frozen path runs ~20. Leave modest headroom so the
	// pin flags regressions, not noise.
	if avg > 40 {
		t.Errorf("cached-hit Link allocates %.1f objects/op, want <= 40", avg)
	}
}
