package shine

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// workerCounts spans the shapes that matter: inline (1), fewer/more
// workers than blocks, and counts that do not divide the block count.
var workerCounts = []int{1, 2, 3, 4, 7, 8, 16, 33}

func TestClampWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, min(maxprocs, 100)},
		{-5, 100, min(maxprocs, 100)},
		{1, 100, 1},
		{8, 3, 3},
		{8, 100, 8},
		{4, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := clampWorkers(c.workers, c.n); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestParallelForCoversEachIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range workerCounts {
		hits := make([]int32, n)
		parallelFor(n, workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
	parallelFor(0, 4, func(i int) { t.Errorf("fn called for n=0 (i=%d)", i) })
}

// TestReduceSumBitIdenticalAcrossWorkers is the core determinism
// property: the summation tree depends only on the item count, so any
// worker count yields the exact bits the serial run yields. Checked
// with quick over arbitrary float slices (including denormals and
// huge magnitudes, where reordering would show immediately).
func TestReduceSumBitIdenticalAcrossWorkers(t *testing.T) {
	property := func(vals []float64) bool {
		sum := func(workers int) float64 {
			return reduceSum(len(vals), workers, func(lo, hi int) float64 {
				s := 0.0
				for _, v := range vals[lo:hi] {
					s += v
				}
				return s
			})
		}
		serial := sum(1)
		for _, workers := range workerCounts {
			if math.Float64bits(sum(workers)) != math.Float64bits(serial) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReduceVecSumBitIdenticalAcrossWorkers(t *testing.T) {
	const dim = 5
	property := func(vals []float64) bool {
		sum := func(workers int) []float64 {
			return reduceVecSum(len(vals), dim, workers, func(lo, hi int, acc []float64) {
				for i, v := range vals[lo:hi] {
					acc[(lo+i)%dim] += v
					acc[0] += v / 2
				}
			})
		}
		serial := sum(1)
		for _, workers := range workerCounts {
			got := sum(workers)
			for k := range serial {
				if math.Float64bits(got[k]) != math.Float64bits(serial[k]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReduceSumMatchesNaiveSum checks the blocked reduction against a
// plain left-to-right sum on posterior-like values in [0, 1): the two
// summation trees differ, so equality is approximate, but for
// well-conditioned sums they must agree to near machine precision.
func TestReduceSumMatchesNaiveSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		vals := make([]float64, 1+rng.Intn(500))
		naive := 0.0
		for i := range vals {
			vals[i] = rng.Float64()
			naive += vals[i]
		}
		got := reduceSum(len(vals), 4, func(lo, hi int) float64 {
			s := 0.0
			for _, v := range vals[lo:hi] {
				s += v
			}
			return s
		})
		if math.Abs(got-naive) > 1e-9*(1+math.Abs(naive)) {
			t.Fatalf("trial %d: blocked sum %v, naive sum %v", trial, got, naive)
		}
	}
}

// randomMentionData fabricates prepared-mention state with the shapes
// Learn produces: per-candidate path-probability matrices, counts and
// generic probabilities, plus a normalised posterior row per mention.
func randomMentionData(rng *rand.Rand, mentions, paths int) ([]*mentionData, [][]float64) {
	mds := make([]*mentionData, mentions)
	post := make([][]float64, mentions)
	for i := range mds {
		objects := 1 + rng.Intn(6)
		cands := 1 + rng.Intn(4)
		md := &mentionData{
			counts:  make([]float64, objects),
			generic: make([]float64, objects),
			cands:   make([]candidateProfile, cands),
		}
		for oi := 0; oi < objects; oi++ {
			md.counts[oi] = float64(1 + rng.Intn(5))
			md.generic[oi] = rng.Float64()
		}
		for ci := range md.cands {
			md.cands[ci].pathProb = make([][]float64, paths)
			for pi := 0; pi < paths; pi++ {
				row := make([]float64, objects)
				for oi := range row {
					row[oi] = rng.Float64()
				}
				md.cands[ci].pathProb[pi] = row
			}
		}
		mds[i] = md
		row := make([]float64, cands)
		sum := 0.0
		for ci := range row {
			row[ci] = rng.Float64()
			sum += row[ci]
		}
		for ci := range row {
			row[ci] /= sum
		}
		post[i] = row
	}
	return mds, post
}

// TestObjectiveAndGradientBitIdenticalAcrossWorkers drives the actual
// EM reductions (Formulas 22 and 24) over random posterior matrices
// and requires bit-identical results for every worker count.
func TestObjectiveAndGradientBitIdenticalAcrossWorkers(t *testing.T) {
	const paths = 3
	rng := rand.New(rand.NewSource(42))
	mds, post := randomMentionData(rng, 137, paths)
	w := []float64{0.5, 0.3, 0.2}
	subset := make([]int, len(mds))
	for i := range subset {
		subset[i] = i
	}

	modelWith := func(workers int) *Model {
		cfg := DefaultConfig()
		cfg.Workers = workers
		return &Model{cfg: cfg}
	}
	serial := modelWith(1)
	wantObj := serial.objective(mds, post, w)
	wantGrad := make([]float64, paths)
	serial.gradient(mds, post, w, subset, wantGrad)

	for _, workers := range workerCounts {
		m := modelWith(workers)
		if got := m.objective(mds, post, w); math.Float64bits(got) != math.Float64bits(wantObj) {
			t.Errorf("workers=%d: objective %v != serial %v", workers, got, wantObj)
		}
		grad := make([]float64, paths)
		m.gradient(mds, post, w, subset, grad)
		for k := range grad {
			if math.Float64bits(grad[k]) != math.Float64bits(wantGrad[k]) {
				t.Errorf("workers=%d: grad[%d] %v != serial %v", workers, k, grad[k], wantGrad[k])
			}
		}
	}
}

// TestProjectKeepsSimplex: after projection the weight vector is
// non-negative and sums to 1 (or is identically zero when nothing
// positive remains) — for any input, hence under any worker count's
// gradient steps.
func TestProjectKeepsSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		w := make([]float64, 1+rng.Intn(10))
		for k := range w {
			w[k] = (rng.Float64() - 0.5) * 20
		}
		project(w)
		sum := 0.0
		for k, x := range w {
			if x < 0 {
				t.Fatalf("trial %d: w[%d] = %v negative after project", trial, k, x)
			}
			sum += x
		}
		if sum != 0 && math.Abs(sum-1) > 1e-12 {
			t.Fatalf("trial %d: projected weights sum to %v", trial, sum)
		}
	}
	// All-negative input degenerates to the zero vector, not NaN.
	w := []float64{-1, -2}
	project(w)
	if w[0] != 0 || w[1] != 0 {
		t.Errorf("all-negative projection = %v, want zeros", w)
	}
}
