package shine

import (
	"fmt"
	"math"
	"testing"

	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/synth"
)

// stageW2Paper stages an edge-heavy delta confined to Wei Wang 0002's
// community: one new paper written by w2 and martin, published at
// NIPS, containing existing terms. No new entity-type objects.
func stageW2Paper(f *fixture) *hin.Delta {
	d := f.g.Append()
	p := d.MustAppend(f.d.Paper, "w2-delta-paper")
	d.MustPatch(f.d.Write, f.ids["w2"], p)
	d.MustPatch(f.d.Write, f.ids["martin"], p)
	d.MustPatch(f.d.Publish, f.ids["nips"], p)
	d.MustPatch(f.d.Contain, p, f.ids["neural"])
	return d
}

// coldRebuild merges the same delta from scratch and builds a fresh
// model over it — the expensive baseline WithDelta must match.
func coldRebuild(t *testing.T, f *fixture, d *hin.Delta, mutate func(*Config)) *Model {
	t.Helper()
	g2, _, err := hin.MergeDeltas(f.g, d)
	if err != nil {
		t.Fatalf("MergeDeltas: %v", err)
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := New(g2, f.d.Author, metapath.DBLPPaperPaths(f.d), f.corpus, cfg)
	if err != nil {
		t.Fatalf("New on merged graph: %v", err)
	}
	return m
}

// TestWithDeltaPosteriorsBitIdenticalUniform pins the strongest
// equivalence the incremental path offers: under uniform popularity,
// with a delta that adds no entity-type objects, every candidate's
// LogJoint and Posterior after WithDelta is bit-identical to a cold
// rebuild — migrated mixtures included, because an unaffected entity's
// walks traverse byte-identical CSR rows on either graph.
func TestWithDeltaPosteriorsBitIdenticalUniform(t *testing.T) {
	f := newFixture(t)
	uniform := func(c *Config) { c.Popularity = PopularityUniform }
	m1 := newModel(t, f, uniform)
	// Warm both mentions so migrated mixtures are actually exercised.
	for _, doc := range f.corpus.Docs {
		if _, err := m1.Link(doc); err != nil {
			t.Fatalf("warm Link: %v", err)
		}
	}

	delta := stageW2Paper(f)
	m2, stats, err := m1.WithDelta(delta)
	if err != nil {
		t.Fatalf("WithDelta: %v", err)
	}
	if stats.NewObjects != 1 || stats.NewEdges != 4 {
		t.Errorf("stats = %+v, want 1 new object, 4 new edges", stats)
	}
	if stats.TrieRebuilt {
		t.Error("trie rebuilt for a delta with no new entities")
	}
	mCold := coldRebuild(t, f, delta, uniform)

	for _, doc := range f.corpus.Docs {
		inc, err := m2.Link(doc)
		if err != nil {
			t.Fatalf("incremental Link(%s): %v", doc.ID, err)
		}
		cold, err := mCold.Link(doc)
		if err != nil {
			t.Fatalf("cold Link(%s): %v", doc.ID, err)
		}
		if inc.Entity != cold.Entity {
			t.Fatalf("doc %s: incremental links %d, cold links %d", doc.ID, inc.Entity, cold.Entity)
		}
		if len(inc.Candidates) != len(cold.Candidates) {
			t.Fatalf("doc %s: candidate sets differ", doc.ID)
		}
		for i := range inc.Candidates {
			ic, cc := inc.Candidates[i], cold.Candidates[i]
			if ic.Entity != cc.Entity ||
				math.Float64bits(ic.LogJoint) != math.Float64bits(cc.LogJoint) ||
				math.Float64bits(ic.Posterior) != math.Float64bits(cc.Posterior) {
				t.Errorf("doc %s candidate %d: incremental (%d, %x, %x) vs cold (%d, %x, %x)",
					doc.ID, i,
					ic.Entity, math.Float64bits(ic.LogJoint), math.Float64bits(ic.Posterior),
					cc.Entity, math.Float64bits(cc.LogJoint), math.Float64bits(cc.Posterior))
			}
		}
	}
}

// TestWithDeltaPageRankEquivalence: in PageRank mode the warm-started
// refresh converges to the same tolerance as a cold run, so popularity
// agrees to 1e-9 and linking decisions are unchanged.
func TestWithDeltaPageRankEquivalence(t *testing.T) {
	f := newFixture(t)
	m1 := newModel(t, f, nil)
	delta := stageW2Paper(f)
	m2, stats, err := m1.WithDelta(delta)
	if err != nil {
		t.Fatalf("WithDelta: %v", err)
	}
	if stats.WarmIterations == 0 {
		t.Error("PageRank mode did not record a warm refresh")
	}
	mCold := coldRebuild(t, f, delta, nil)

	for _, a := range m2.Graph().ObjectsOfType(f.d.Author) {
		if d := math.Abs(m2.Popularity(a) - mCold.Popularity(a)); d > 1e-9 {
			t.Errorf("popularity of author %d differs by %g", a, d)
		}
	}
	for _, doc := range f.corpus.Docs {
		inc, err := m2.Link(doc)
		if err != nil {
			t.Fatalf("incremental Link(%s): %v", doc.ID, err)
		}
		cold, err := mCold.Link(doc)
		if err != nil {
			t.Fatalf("cold Link(%s): %v", doc.ID, err)
		}
		if inc.Entity != cold.Entity {
			t.Errorf("doc %s: incremental links %d, cold links %d", doc.ID, inc.Entity, cold.Entity)
		}
		for i := range inc.Candidates {
			if d := math.Abs(inc.Candidates[i].Posterior - cold.Candidates[i].Posterior); d > 1e-6 {
				t.Errorf("doc %s candidate %d: posterior differs by %g", doc.ID, i, d)
			}
		}
	}
}

// TestWithDeltaInvalidationKeying pins the point of per-entity
// invalidation: a delta inside one community leaves the other
// community's frozen mixture and walk-cache entries serving — no
// rebuild, no recomputation — while entities inside the ball are
// dropped and rebuilt on demand.
func TestWithDeltaInvalidationKeying(t *testing.T) {
	f := newFixture(t)
	m1 := newModel(t, f, func(c *Config) { c.Popularity = PopularityUniform })
	// Build mixtures for one entity on each side of the graph.
	probe := f.ids["mine"]
	if _, err := m1.EntitySpecificProb(f.ids["w1"], probe); err != nil {
		t.Fatalf("probe w1: %v", err)
	}
	if _, err := m1.EntitySpecificProb(f.ids["w2"], probe); err != nil {
		t.Fatalf("probe w2: %v", err)
	}

	delta := stageW2Paper(f)
	m2, stats, err := m1.WithDelta(delta)
	if err != nil {
		t.Fatalf("WithDelta: %v", err)
	}
	if stats.MixturesKept != 1 || stats.MixturesDropped != 1 {
		t.Errorf("mixtures kept/dropped = %d/%d, want 1/1", stats.MixturesKept, stats.MixturesDropped)
	}
	if stats.WalkEntriesKept == 0 || stats.WalkEntriesDropped == 0 {
		t.Errorf("walk entries kept/dropped = %d/%d, want both > 0",
			stats.WalkEntriesKept, stats.WalkEntriesDropped)
	}
	// w2's whole community is inside the radius-(maxLen-1) ball; w1's
	// community is disconnected from it, so nothing there is affected.
	if stats.AffectedObjects >= m2.Graph().NumObjects() {
		t.Errorf("affected %d of %d objects — invalidation is not selective",
			stats.AffectedObjects, m2.Graph().NumObjects())
	}

	// The surviving community serves from cache: probing w1 must not
	// build anything, probing w2 must rebuild exactly once.
	b0 := m2.MixtureStats().Builds
	if _, err := m2.EntitySpecificProb(f.ids["w1"], probe); err != nil {
		t.Fatalf("probe w1 on new model: %v", err)
	}
	if b := m2.MixtureStats().Builds; b != b0 {
		t.Errorf("probing an unaffected entity rebuilt its mixture (builds %d -> %d)", b0, b)
	}
	if _, err := m2.EntitySpecificProb(f.ids["w2"], probe); err != nil {
		t.Fatalf("probe w2 on new model: %v", err)
	}
	if b := m2.MixtureStats().Builds; b != b0+1 {
		t.Errorf("probing an affected entity built %d mixtures, want 1", b-b0)
	}
}

// TestWithDeltaNewEntityRebuildsTrie: adding an entity-type object
// forces a surface-form reindex, and the new entity is immediately
// linkable.
func TestWithDeltaNewEntityRebuildsTrie(t *testing.T) {
	f := newFixture(t)
	m1 := newModel(t, f, func(c *Config) { c.Popularity = PopularityUniform })
	d := f.g.Append()
	a := d.MustAppend(f.d.Author, "Grace Hopper")
	p := d.MustAppend(f.d.Paper, "gh-p0")
	d.MustPatch(f.d.Write, a, p)
	d.MustPatch(f.d.Publish, f.ids["sigmod"], p)

	m2, stats, err := m1.WithDelta(d)
	if err != nil {
		t.Fatalf("WithDelta: %v", err)
	}
	if !stats.TrieRebuilt {
		t.Error("trie not rebuilt despite a new entity-type object")
	}
	cands := m2.Candidates("Grace Hopper")
	if len(cands) != 1 || cands[0] != a {
		t.Errorf("Candidates(new entity) = %v, want [%d]", cands, a)
	}
	if m1.Candidates("Grace Hopper") != nil {
		t.Error("old generation's candidate index saw the new entity")
	}
}

// TestWithDeltaValidation covers the error paths.
func TestWithDeltaValidation(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) { c.Popularity = PopularityUniform })
	if _, _, err := m.WithDelta(nil); err == nil {
		t.Error("nil delta accepted")
	}
	other := newFixture(t)
	if _, _, err := m.WithDelta(other.g.Append()); err == nil {
		t.Error("delta staged against a foreign graph accepted")
	}
}

// TestWithDeltaChained applies several deltas back to back, checking
// each generation keeps linking correctly and the graph grows as the
// merged stats claim.
func TestWithDeltaChained(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) { c.Popularity = PopularityUniform })
	for round := 0; round < 5; round++ {
		d := m.Graph().Append()
		p := d.MustAppend(f.d.Paper, fmt.Sprintf("chain-p%d", round))
		d.MustPatch(f.d.Write, f.ids["w1"], p)
		d.MustPatch(f.d.Publish, f.ids["sigmod"], p)
		next, stats, err := m.WithDelta(d)
		if err != nil {
			t.Fatalf("round %d: WithDelta: %v", round, err)
		}
		if stats.NewObjects != 1 || stats.NewEdges != 2 {
			t.Fatalf("round %d: stats = %+v", round, stats)
		}
		m = next
		r, err := m.Link(f.docA)
		if err != nil {
			t.Fatalf("round %d: Link: %v", round, err)
		}
		if r.Entity != f.ids["w1"] {
			t.Fatalf("round %d: linked %d, want %d", round, r.Entity, f.ids["w1"])
		}
	}
	if got := m.Graph().NumObjects(); got != f.g.NumObjects()+5 {
		t.Errorf("final graph has %d objects, want %d", got, f.g.NumObjects()+5)
	}
}

// TestAffectedSourcesSoundness pins the typed invalidation against a
// brute-force oracle on a generated network: after a mixed delta — a
// new paper wired into an existing venue and term community, a
// brand-new author/venue pair, and a pure edge patch between existing
// objects — every entity NOT marked affected must produce
// bit-identical walk distributions on the old and merged graphs for
// every model meta-path. Precision is sanity-checked both ways: the
// delta must invalidate someone, and must not invalidate everyone.
func TestAffectedSourcesSoundness(t *testing.T) {
	cfg := synth.DefaultDBLPConfig()
	cfg.RegularAuthors = 48
	cfg.AmbiguousGroups = 3
	cfg.Topics = 2
	cfg.MaxPapersPerAuthor = 8
	cfg.StarBoostMin = 4
	data, err := synth.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := data.Graph
	s := data.Schema
	paths := metapath.DBLPPaperPaths(s)

	authors := g.ObjectsOfType(s.Author)
	papers := g.ObjectsOfType(s.Paper)
	venues := g.ObjectsOfType(s.Venue)
	terms := g.ObjectsOfType(s.Term)

	d := g.Append()
	p1 := d.MustAppend(s.Paper, "soundness paper 1")
	d.MustPatch(s.Write, authors[0], p1)
	d.MustPatch(s.Publish, venues[0], p1)
	d.MustPatch(s.Contain, p1, terms[0])
	a2 := d.MustAppend(s.Author, "Soundness Author")
	v2 := d.MustAppend(s.Venue, "Soundness Venue")
	p2 := d.MustAppend(s.Paper, "soundness paper 2")
	d.MustPatch(s.Write, a2, p2)
	d.MustPatch(s.Publish, v2, p2)
	d.MustPatch(s.Write, authors[1], papers[len(papers)-1])

	g2, ms, err := hin.MergeDeltas(g, d)
	if err != nil {
		t.Fatal(err)
	}
	affected := affectedSources(g2, paths, ms.Touched)

	w1 := metapath.NewWalker(g, 0)
	w2 := metapath.NewWalker(g2, 0)
	var kept, dropped int
	for _, a := range authors {
		if affected[a] {
			dropped++
			continue
		}
		kept++
		for _, p := range paths {
			d1, err := w1.Walk(a, p)
			if err != nil {
				t.Fatalf("Walk(%s, %s) on base: %v", g.Name(a), p.String(), err)
			}
			d2, err := w2.Walk(a, p)
			if err != nil {
				t.Fatalf("Walk(%s, %s) on merged: %v", g.Name(a), p.String(), err)
			}
			if d1.Len() != d2.Len() {
				t.Fatalf("unaffected entity %s: %s walk changed size %d -> %d",
					g.Name(a), p.String(), d1.Len(), d2.Len())
			}
			for k := 0; k < d1.Len(); k++ {
				i1, x1 := d1.At(k)
				i2, x2 := d2.At(k)
				if i1 != i2 || math.Float64bits(x1) != math.Float64bits(x2) {
					t.Fatalf("unaffected entity %s: %s walk differs at entry %d",
						g.Name(a), p.String(), k)
				}
			}
		}
	}
	if dropped == 0 {
		t.Fatal("delta invalidated no entity; the fixture should touch at least one community")
	}
	if kept == 0 {
		t.Fatal("delta invalidated every entity; typed keying lost all precision")
	}
	t.Logf("kept %d of %d entities (%d invalidated)", kept, len(authors), dropped)
}
