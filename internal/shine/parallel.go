package shine

import (
	"fmt"
	"runtime"
	"sync"

	"shine/internal/corpus"
)

// LinkAllParallel links every document using the given number of
// worker goroutines, returning results in document order — identical
// to LinkAll's output, faster on multi-core machines. workers <= 0
// uses GOMAXPROCS. The paper's implementation is single-threaded
// ("we do not utilize the parallel computing technique"); linking is
// embarrassingly parallel, so a serving deployment should not be.
func (m *Model) LinkAllParallel(c *corpus.Corpus, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := c.Len()
	if workers > n {
		workers = n
	}
	results := make([]Result, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = m.Link(c.Docs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	failures := 0
	for _, err := range errs {
		if err != nil {
			failures++
		}
	}
	if failures == n && n > 0 {
		return results, fmt.Errorf("shine: all %d mentions failed to link", failures)
	}
	return results, nil
}
