package shine

import (
	"context"
	"fmt"
	"sync"

	"shine/internal/corpus"
)

// LinkAllParallel links every document using the given number of
// worker goroutines, returning results in document order — identical
// to LinkAll's output, faster on multi-core machines. workers <= 0
// uses GOMAXPROCS. The paper's implementation is single-threaded
// ("we do not utilize the parallel computing technique"); linking is
// embarrassingly parallel, so a serving deployment should not be.
//
// The second return value counts documents that failed to link
// (their Result has Entity == hin.NoObject); it is non-zero for
// degraded batches even when the call as a whole succeeds, and is
// also recorded in the shine_link_batch_failures_total metric on an
// instrumented model. The error is non-nil only when every document
// fails.
func (m *Model) LinkAllParallel(c *corpus.Corpus, workers int) ([]Result, int, error) {
	n := c.Len()
	if n == 0 {
		return nil, 0, nil
	}
	// Clamp rather than trust the caller: a zero/negative request
	// takes GOMAXPROCS and the pool never exceeds the document count,
	// so no worker configuration can stall the job channel.
	workers = clampWorkers(workers, n)
	results := make([]Result, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = m.Link(c.Docs[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	failures := 0
	for _, err := range errs {
		if err != nil {
			failures++
		}
	}
	m.metrics.observeBatchFailures(failures)
	if failures == n && n > 0 {
		return results, failures, fmt.Errorf("shine: all %d mentions failed to link", failures)
	}
	return results, failures, nil
}

// PrecomputeMixtures eagerly builds the frozen mixture index for every
// entity of the model's entity type under the current weights, fanning
// out across Config.Workers goroutines. After it returns, Link serves
// every candidate from a frozen array and never walks meta-paths on
// the request path — the -precompute flag on `shine train`/`shine
// serve` calls this at startup, and models configured with
// Config.PrecomputeMixtures re-run it after every weight install.
//
// Safe to call concurrently with Link (readers fall back to lazy
// builds for entities not yet stored). If a weight install lands while
// precompute is running, the stale entries are discarded by the
// version check and the call reports no error; the install itself
// re-triggers precompute in eager mode. Returns the first walk error
// encountered, if any.
func (m *Model) PrecomputeMixtures() error {
	entities := m.graph.ObjectsOfType(m.entityType)
	if len(entities) == 0 {
		return nil
	}
	w, ver := m.snapshotWeightsVer()
	workers := clampWorkers(m.cfg.Workers, len(entities))
	errs := make([]error, len(entities))
	parallelFor(len(entities), workers, func(i int) {
		_, errs[i] = m.mixtureFor(context.Background(), entities[i], w, ver)
	})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("shine: precomputing mixtures: %w", err)
		}
	}
	return nil
}
