package shine

import (
	"context"
	"fmt"
)

// Batch linking lives in stream.go: LinkAllParallel and
// LinkAllParallelContext are thin order-preserving collectors over
// the LinkStream worker pool.

// PrecomputeMixtures eagerly builds the frozen mixture index for every
// entity of the model's entity type under the current weights, fanning
// out across Config.Workers goroutines. After it returns, Link serves
// every candidate from a frozen array and never walks meta-paths on
// the request path — the -precompute flag on `shine train`/`shine
// serve` calls this at startup, and models configured with
// Config.PrecomputeMixtures re-run it after every weight install.
//
// Safe to call concurrently with Link (readers fall back to lazy
// builds for entities not yet stored). If a weight install lands while
// precompute is running, the stale entries are discarded by the
// version check and the call reports no error; the install itself
// re-triggers precompute in eager mode. Returns the first walk error
// encountered, if any.
func (m *Model) PrecomputeMixtures() error {
	entities := m.graph.ObjectsOfType(m.entityType)
	if len(entities) == 0 {
		return nil
	}
	w, ver := m.snapshotWeightsVer()
	workers := clampWorkers(m.cfg.Workers, len(entities))
	errs := make([]error, len(entities))
	parallelFor(len(entities), workers, func(i int) {
		_, errs[i] = m.mixtureFor(context.Background(), entities[i], w, ver)
	})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("shine: precomputing mixtures: %w", err)
		}
	}
	return nil
}
