package shine

import (
	"slices"
	"testing"

	"shine/internal/hin"
	"shine/internal/namematch"
	"shine/internal/obs"
	"shine/internal/surftrie"
)

func TestSetFuzzyDistanceValidation(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	for _, dist := range []int{0, 1, surftrie.MaxDistance} {
		if err := m.SetFuzzyDistance(dist); err != nil {
			t.Errorf("SetFuzzyDistance(%d): %v", dist, err)
		}
	}
	for _, dist := range []int{-1, surftrie.MaxDistance + 1, 99} {
		if err := m.SetFuzzyDistance(dist); err == nil {
			t.Errorf("SetFuzzyDistance(%d) accepted", dist)
		}
	}
	cfg := DefaultConfig()
	cfg.FuzzyDistance = surftrie.MaxDistance + 1
	if err := cfg.Validate(); err == nil {
		t.Error("Config.Validate accepted an out-of-range FuzzyDistance")
	}
}

// TestLookupCandidatesFuzzyFallback: the serving path falls back to
// edit-distance retrieval only when the exact rules find nothing AND
// the knob is on; exact hits never take the fuzzy path.
func TestLookupCandidatesFuzzyFallback(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	// "Wei Wing" is one edit from "Wei Wang": invisible to the strict
	// rules, reachable at distance 1.
	const noisy = "Wei Wing"
	if got := m.lookupCandidates(noisy); len(got) != 0 {
		t.Fatalf("fuzzy off, lookup(%q) = %v, want none", noisy, got)
	}
	if err := m.SetFuzzyDistance(1); err != nil {
		t.Fatal(err)
	}
	got := m.lookupCandidates(noisy)
	want := []hin.ObjectID{f.ids["w1"], f.ids["w2"]}
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Errorf("fuzzy on, lookup(%q) = %v, want %v", noisy, got, want)
	}
	// An exact hit must return the strict candidate set untouched.
	if got := m.lookupCandidates("Wei Wang"); !slices.Equal(got, m.cands.Candidates("Wei Wang")) {
		t.Errorf("exact hit diverged from strict candidates: %v", got)
	}
}

// TestSetCandidateSourceOracle swaps the trie for the brute-force
// namematch.Index and verifies the model serves identically — the
// testing seam the equivalence harness relies on.
func TestSetCandidateSourceOracle(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	trieCands := m.lookupCandidates("Wei Wang")
	trieLoose := m.LooseCandidates("W. Wang")
	if m.Trie() == nil {
		t.Fatal("freshly built model has no trie")
	}

	idx, err := namematch.BuildIndex(f.g, f.d.Author)
	if err != nil {
		t.Fatal(err)
	}
	m.SetCandidateSource(idx)
	if m.Trie() != nil {
		t.Error("Trie() non-nil after installing a custom source")
	}
	if got := m.lookupCandidates("Wei Wang"); !slices.Equal(got, trieCands) {
		t.Errorf("oracle source diverges on exact lookup: %v vs %v", got, trieCands)
	}
	if got := m.LooseCandidates("W. Wang"); !slices.Equal(got, trieLoose) {
		t.Errorf("oracle source diverges on loose lookup: %v vs %v", got, trieLoose)
	}
	// The index cannot do fuzzy: FuzzyCandidates degrades to nil and
	// the fallback quietly stays strict.
	if got := m.FuzzyCandidates("Wei Wing", 2); got != nil {
		t.Errorf("FuzzyCandidates on a non-fuzzy source = %v", got)
	}
	if err := m.SetFuzzyDistance(2); err != nil {
		t.Fatal(err)
	}
	if got := m.lookupCandidates("Wei Wing"); len(got) != 0 {
		t.Errorf("non-fuzzy source still produced fuzzy results: %v", got)
	}

	// Linking still works end to end against the oracle source.
	if _, err := m.Link(f.docA); err != nil {
		t.Errorf("Link with oracle source: %v", err)
	}
}

// TestCandidateMetrics: every serving-path lookup is counted and
// timed, and fuzzy fallbacks are counted separately.
func TestCandidateMetrics(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	reg := obs.NewRegistry()
	m.SetMetrics(reg)
	if err := m.SetFuzzyDistance(2); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Link(f.docA); err != nil { // exact hit
		t.Fatal(err)
	}
	lookupsAfterExact := reg.Counter(MetricCandidatesLookups).Value()
	if lookupsAfterExact == 0 {
		t.Fatal("exact link recorded no candidate lookups")
	}
	if got := reg.Counter(MetricCandidatesFuzzy).Value(); got != 0 {
		t.Errorf("fuzzy counter = %d after an exact hit, want 0", got)
	}

	m.lookupCandidates("Wei Wing") // falls back
	if got := reg.Counter(MetricCandidatesLookups).Value(); got != lookupsAfterExact+1 {
		t.Errorf("lookups = %d, want %d", got, lookupsAfterExact+1)
	}
	if got := reg.Counter(MetricCandidatesFuzzy).Value(); got != 1 {
		t.Errorf("fuzzy counter = %d, want 1", got)
	}
	hist := reg.Histogram(MetricCandidatesSeconds, nil)
	if got := hist.Count(); got != lookupsAfterExact+1 {
		t.Errorf("latency histogram count = %d, want %d", got, lookupsAfterExact+1)
	}
}
