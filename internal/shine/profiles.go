package shine

import (
	"fmt"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// mentionData is the precomputed scoring state for one mention: for
// every candidate entity and every meta-path, the walk probability
// Pe(v|p) restricted to the document's objects. With these matrices
// in memory, one evaluation of the objective or its gradient is a
// pure floating-point loop — this is what makes the EM inner loop
// linear in the number of mentions (Section 4's complexity analysis:
// O(|M| · |Em| · |Vd| · |W|) per iteration).
type mentionData struct {
	doc *corpus.Document
	// counts[oi] is the occurrence count of document object oi.
	counts []float64
	// generic[oi] is Pg(v) for document object oi.
	generic []float64
	// cands holds the per-candidate walk profiles.
	cands []candidateProfile
}

type candidateProfile struct {
	entity hin.ObjectID
	// pathProb[pi][oi] = Pe(object oi | path pi) for this candidate.
	pathProb [][]float64
}

// prepareMention computes the profile matrices for one document and
// candidate set.
func (m *Model) prepareMention(doc *corpus.Document, cands []hin.ObjectID) (*mentionData, error) {
	md := &mentionData{
		doc:     doc,
		counts:  make([]float64, len(doc.Objects)),
		generic: make([]float64, len(doc.Objects)),
		cands:   make([]candidateProfile, len(cands)),
	}
	for oi, oc := range doc.Objects {
		md.counts[oi] = float64(oc.Count)
		md.generic[oi] = m.generic.Prob(oc.Object)
	}
	for ci, e := range cands {
		prof := candidateProfile{
			entity:   e,
			pathProb: make([][]float64, len(m.paths)),
		}
		for pi, p := range m.paths {
			dist, err := m.walker.WalkPruned(e, p, m.cfg.WalkPruning)
			if err != nil {
				return nil, fmt.Errorf("shine: walking %s from entity %d: %w", p, e, err)
			}
			row := make([]float64, len(doc.Objects))
			for oi, oc := range doc.Objects {
				row[oi] = dist.Get(int32(oc.Object))
			}
			prof.pathProb[pi] = row
		}
		md.cands[ci] = prof
	}
	return md, nil
}

// prepareCorpus computes mention data for every document that has at
// least one candidate. Documents with no candidates are skipped (and
// counted); the paper's task setting guarantees none, but synthetic
// or user data may violate it.
func (m *Model) prepareCorpus(c *corpus.Corpus) ([]*mentionData, int, error) {
	var out []*mentionData
	skipped := 0
	for _, doc := range c.Docs {
		cands := m.index.Candidates(doc.Mention)
		if len(cands) == 0 {
			skipped++
			continue
		}
		md, err := m.prepareMention(doc, cands)
		if err != nil {
			return nil, skipped, err
		}
		out = append(out, md)
	}
	if len(out) == 0 {
		return nil, skipped, fmt.Errorf("shine: no linkable mentions in corpus of %d documents", c.Len())
	}
	return out, skipped, nil
}
