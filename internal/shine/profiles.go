package shine

import (
	"context"
	"fmt"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// mentionData is the precomputed scoring state for one mention: for
// every candidate entity and every meta-path, the walk probability
// Pe(v|p) restricted to the document's objects. With these matrices
// in memory, one evaluation of the objective or its gradient is a
// pure floating-point loop — this is what makes the EM inner loop
// linear in the number of mentions (Section 4's complexity analysis:
// O(|M| · |Em| · |Vd| · |W|) per iteration).
type mentionData struct {
	doc *corpus.Document
	// counts[oi] is the occurrence count of document object oi.
	counts []float64
	// generic[oi] is Pg(v) for document object oi.
	generic []float64
	// cands holds the per-candidate walk profiles.
	cands []candidateProfile
}

type candidateProfile struct {
	entity hin.ObjectID
	// pathProb[pi][oi] = Pe(object oi | path pi) for this candidate.
	pathProb [][]float64
}

// prepareMention computes the profile matrices for one document and
// candidate set. Cancellation is checked before each candidate and,
// inside the walker, between hops; training passes
// context.Background() so the EM pipeline is unaffected.
func (m *Model) prepareMention(ctx context.Context, doc *corpus.Document, cands []hin.ObjectID) (*mentionData, error) {
	md := &mentionData{
		doc:     doc,
		counts:  make([]float64, len(doc.Objects)),
		generic: make([]float64, len(doc.Objects)),
		cands:   make([]candidateProfile, len(cands)),
	}
	for oi, oc := range doc.Objects {
		md.counts[oi] = float64(oc.Count)
		md.generic[oi] = m.generic.Prob(oc.Object)
	}
	for ci, e := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prof := candidateProfile{
			entity:   e,
			pathProb: make([][]float64, len(m.paths)),
		}
		for pi, p := range m.paths {
			dist, err := m.walker.WalkPrunedContext(ctx, e, p, m.cfg.WalkPruning)
			if err != nil {
				return nil, fmt.Errorf("shine: walking %s from entity %d: %w", p, e, err)
			}
			row := make([]float64, len(doc.Objects))
			for oi, oc := range doc.Objects {
				row[oi] = dist.Get(int32(oc.Object))
			}
			prof.pathProb[pi] = row
		}
		md.cands[ci] = prof
	}
	return md, nil
}

// prepareCorpus computes mention data for every document that has at
// least one candidate. Documents with no candidates are skipped (and
// counted); the paper's task setting guarantees none, but synthetic
// or user data may violate it.
//
// Preparation is the cold-cache cost of training — one constrained
// random walk per (candidate, path) pair — so the per-mention work
// fans out across cfg.Workers goroutines. Each mention writes only
// its own pre-assigned slot, so the returned slice is in document
// order regardless of scheduling; on failure the first error in
// document order is reported, matching the serial behaviour.
func (m *Model) prepareCorpus(c *corpus.Corpus) ([]*mentionData, int, error) {
	type prepJob struct {
		doc   *corpus.Document
		cands []hin.ObjectID
	}
	var jobs []prepJob
	skipped := 0
	for _, doc := range c.Docs {
		// Training stays strict — no fuzzy fallback — so EM sees the
		// paper's candidate sets regardless of serving knobs.
		cands := m.cands.Candidates(doc.Mention)
		if len(cands) == 0 {
			skipped++
			continue
		}
		jobs = append(jobs, prepJob{doc, cands})
	}
	if len(jobs) == 0 {
		return nil, skipped, fmt.Errorf("shine: no linkable mentions in corpus of %d documents", c.Len())
	}

	out := make([]*mentionData, len(jobs))
	errs := make([]error, len(jobs))
	parallelFor(len(jobs), m.workers(), func(i int) {
		out[i], errs[i] = m.prepareMention(context.Background(), jobs[i].doc, jobs[i].cands)
	})
	for _, err := range errs {
		if err != nil {
			return nil, skipped, err
		}
	}
	return out, skipped, nil
}
