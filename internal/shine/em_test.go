package shine

import (
	"math"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
)

// corpusDoc builds an empty document with the given mention.
func corpusDoc(id, mention string) *corpus.Document {
	return corpus.NewDocument(id, mention, hin.NoObject, nil)
}

func TestLearnImprovesObjectiveAndConverges(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	stats, err := m.Learn(f.corpus)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if stats.EMIterations < 1 {
		t.Fatal("no EM iterations run")
	}
	if len(stats.Objective) != stats.EMIterations {
		t.Fatalf("objective trace %d entries for %d iterations", len(stats.Objective), stats.EMIterations)
	}
	// Under backtracking line search, every M-step must improve (or
	// at worst preserve) the objective for its own posterior.
	for i, gain := range stats.MStepGain {
		if gain < -1e-9 {
			t.Errorf("M-step %d decreased the objective by %v", i, -gain)
		}
	}
	if !stats.Converged {
		t.Error("EM did not converge on a 2-mention corpus")
	}
	if stats.SkippedMentions != 0 {
		t.Errorf("SkippedMentions = %d", stats.SkippedMentions)
	}
}

func TestLearnedWeightsOnSimplex(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	sum := 0.0
	for _, x := range w {
		if x < 0 {
			t.Errorf("negative weight %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestLearnImprovesLinking(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}
	for _, doc := range f.corpus.Docs {
		r, err := m.Link(doc)
		if err != nil {
			t.Fatalf("Link(%s): %v", doc.ID, err)
		}
		if r.Entity != doc.Gold {
			t.Errorf("doc %s linked to %s, want %s",
				doc.ID, f.g.Name(r.Entity), f.g.Name(doc.Gold))
		}
	}
}

func TestLearnFixedLearningRate(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) {
		// A step small relative to this tiny corpus's gradient scale.
		c.LearningRate = 1e-4
		c.MaxGDIterations = 200
	})
	stats, err := m.Learn(f.corpus)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if stats.GDIterations == 0 {
		t.Fatal("fixed-rate mode ran no gradient iterations")
	}
	// Fixed-step projected ascent may oscillate by tiny amounts once
	// it reaches the simplex-constrained optimum (the projection
	// renormalises every step), but it must never move materially
	// downhill.
	for i, gain := range stats.MStepGain {
		if gain < -0.01 {
			t.Errorf("fixed-rate M-step %d decreased the objective by %v", i, -gain)
		}
	}
	// Linking still resolves both documents after fixed-rate learning.
	for _, doc := range f.corpus.Docs {
		r, err := m.Link(doc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Entity != doc.Gold {
			t.Errorf("doc %s mislinked after fixed-rate learning", doc.ID)
		}
	}
}

func TestLearnSGDMode(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, func(c *Config) {
		c.SGDBatch = 1
	})
	if _, err := m.Learn(f.corpus); err != nil {
		t.Fatalf("Learn with SGD: %v", err)
	}
	w := m.Weights()
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("SGD weights sum to %v", sum)
	}
}

func TestLearnSkipsUnlinkableMentions(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	// Add a document about a name outside the network.
	c := *f.corpus
	c.Add(corpusDoc("zz", "Nobody Known"))
	stats, err := m.Learn(&c)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if stats.SkippedMentions != 1 {
		t.Errorf("SkippedMentions = %d, want 1", stats.SkippedMentions)
	}
}

func TestLearnFailsOnFullyUnlinkableCorpus(t *testing.T) {
	f := newFixture(t)
	m := newModel(t, f, nil)
	var c = *f.corpus
	c.Docs = nil
	c.Add(corpusDoc("zz", "Nobody Known"))
	if _, err := m.Learn(&c); err == nil {
		t.Error("corpus with zero linkable mentions accepted")
	}
}

func TestLearnIsDeterministic(t *testing.T) {
	f := newFixture(t)
	m1 := newModel(t, f, nil)
	m2 := newModel(t, f, nil)
	if _, err := m1.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}
	w1, w2 := m1.Weights(), m2.Weights()
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-12 {
			t.Fatalf("weights differ at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestProject(t *testing.T) {
	w := []float64{-1, 2, 2}
	project(w)
	if w[0] != 0 || math.Abs(w[1]-0.5) > 1e-12 || math.Abs(w[2]-0.5) > 1e-12 {
		t.Errorf("project = %v", w)
	}
	zero := []float64{0, 0}
	project(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("project(0) = %v", zero)
	}
	neg := []float64{-1, -2}
	project(neg)
	if neg[0] != 0 || neg[1] != 0 {
		t.Errorf("project(all negative) = %v", neg)
	}
}

func TestSoftmax(t *testing.T) {
	p := softmax([]float64{math.Log(1), math.Log(3)})
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Errorf("softmax = %v", p)
	}
	// Extreme log gaps must not produce NaN.
	p = softmax([]float64{-1e9, 0})
	if math.IsNaN(p[0]) || math.Abs(p[1]-1) > 1e-12 {
		t.Errorf("softmax with extreme gap = %v", p)
	}
}

func TestLearnOrderInvariant(t *testing.T) {
	// Full-batch EM sums over mentions; document order must not
	// change the learned weights.
	f := newFixture(t)
	m1 := newModel(t, f, nil)
	if _, err := m1.Learn(f.corpus); err != nil {
		t.Fatal(err)
	}
	reversed := &corpus.Corpus{}
	for i := len(f.corpus.Docs) - 1; i >= 0; i-- {
		reversed.Add(f.corpus.Docs[i])
	}
	m2 := newModel(t, f, nil)
	if _, err := m2.Learn(reversed); err != nil {
		t.Fatal(err)
	}
	w1, w2 := m1.Weights(), m2.Weights()
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-9 {
			t.Fatalf("weights depend on document order: %v vs %v at %d", w1[i], w2[i], i)
		}
	}
}

func TestEtaDoesNotAffectDecisions(t *testing.T) {
	// η is a constant factor of every joint score (Formula 4); the
	// argmax and posteriors must be invariant to it.
	f := newFixture(t)
	m1 := newModel(t, f, nil)
	m2 := newModel(t, f, func(c *Config) { c.Eta = 0.01 })
	for _, doc := range f.corpus.Docs {
		r1, err1 := m1.Link(doc)
		r2, err2 := m2.Link(doc)
		if err1 != nil || err2 != nil {
			t.Fatalf("Link: %v, %v", err1, err2)
		}
		if r1.Entity != r2.Entity {
			t.Errorf("doc %s: eta changed the decision", doc.ID)
		}
		if math.Abs(r1.Candidates[0].Posterior-r2.Candidates[0].Posterior) > 1e-9 {
			t.Errorf("doc %s: eta changed the posterior", doc.ID)
		}
	}
}
