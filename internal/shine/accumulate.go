package shine

import (
	"math"

	"shine/internal/par"
)

// Deterministic fan-out primitives for the training pipeline.
//
// The EM learner's hot loops are sums over mentions (the objective of
// Formula 22 and the gradient of Formula 24). These wrappers delegate
// to the shared internal/par primitives with a fixed 32-item block
// size; because the block boundaries and merge order depend only on
// the item count, the learned weights are bit-for-bit identical for
// any Workers value (see the par package docs for the full argument).

// reduceBlockSize is the fixed number of items per reduction block.
// It must never change: existing golden determinism tests pin the
// exact summation tree it induces.
const reduceBlockSize = par.DefaultBlock

// clampWorkers resolves a requested worker count against n work
// items; see par.ClampWorkers.
func clampWorkers(workers, n int) int {
	return par.ClampWorkers(workers, n)
}

// workers returns the model's effective training fan-out width.
func (m *Model) workers() int {
	return clampWorkers(m.cfg.Workers, math.MaxInt)
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines with dynamic scheduling; see par.For.
func parallelFor(n, workers int, fn func(i int)) {
	par.For(n, workers, fn)
}

// numReduceBlocks is the number of fixed-size blocks covering n items.
func numReduceBlocks(n int) int {
	return par.NumBlocks(n, reduceBlockSize)
}

// runBlocks invokes fn(block, lo, hi) for every reduction block
// covering [0, n), fanning blocks out over up to workers goroutines.
func runBlocks(n, workers int, fn func(block, lo, hi int)) {
	par.Blocks(n, reduceBlockSize, workers, fn)
}

// reduceSum computes Σ compute(block) over [0, n) with block partials
// merged in block-index order. Bit-for-bit identical for any worker
// count.
func reduceSum(n, workers int, compute func(lo, hi int) float64) float64 {
	return par.ReduceSum(n, reduceBlockSize, workers, compute)
}

// reduceVecSum is reduceSum for dim-dimensional accumulator vectors;
// see par.ReduceVecSum.
func reduceVecSum(n, dim, workers int, compute func(lo, hi int, acc []float64)) []float64 {
	return par.ReduceVecSum(n, reduceBlockSize, dim, workers, compute)
}
