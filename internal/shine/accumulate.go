package shine

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic fan-out primitives for the training pipeline.
//
// The EM learner's hot loops are sums over mentions (the objective of
// Formula 22 and the gradient of Formula 24). Naively sharding those
// sums across goroutines would make the floating-point result depend
// on the worker count and the scheduler, because addition of floats
// is not associative. Instead every reduction here is *blocked*: the
// mention range is partitioned into fixed-size blocks whose
// boundaries depend only on the item count, each block's partial is
// accumulated serially left-to-right, and the partials are merged
// serially in block order after all workers finish. The worker count
// then only decides which goroutine computes a block — never the
// shape of the summation tree — so results are bit-for-bit identical
// for any Workers value, including 1 (which runs inline, spawning no
// goroutines).

// reduceBlockSize is the fixed number of items per reduction block.
// It is a compile-time constant precisely so that block boundaries —
// and therefore the floating-point summation tree — never vary with
// configuration or hardware.
const reduceBlockSize = 32

// clampWorkers resolves a requested worker count against n work
// items: non-positive requests take GOMAXPROCS, and the result is
// bounded to [1, n] so callers can never spawn idle goroutines or
// divide work zero ways.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// workers returns the model's effective training fan-out width.
func (m *Model) workers() int {
	return clampWorkers(m.cfg.Workers, math.MaxInt)
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines with dynamic scheduling. Each item must write only its
// own output slot; under that contract the result is independent of
// scheduling. workers <= 1 runs inline in index order.
func parallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// numReduceBlocks is the number of fixed-size blocks covering n items.
func numReduceBlocks(n int) int {
	return (n + reduceBlockSize - 1) / reduceBlockSize
}

// runBlocks invokes fn(block, lo, hi) for every reduction block
// covering [0, n), fanning blocks out over up to workers goroutines.
func runBlocks(n, workers int, fn func(block, lo, hi int)) {
	parallelFor(numReduceBlocks(n), workers, func(b int) {
		lo := b * reduceBlockSize
		hi := lo + reduceBlockSize
		if hi > n {
			hi = n
		}
		fn(b, lo, hi)
	})
}

// reduceSum computes Σ compute(block) over [0, n) with block partials
// merged in block-index order. Bit-for-bit identical for any worker
// count.
func reduceSum(n, workers int, compute func(lo, hi int) float64) float64 {
	partials := make([]float64, numReduceBlocks(n))
	runBlocks(n, workers, func(b, lo, hi int) {
		partials[b] = compute(lo, hi)
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}

// reduceVecSum is reduceSum for dim-dimensional accumulator vectors:
// compute adds block [lo, hi)'s contribution into a zeroed acc, and
// the per-block accumulators are merged coordinate-wise in
// block-index order. Bit-for-bit identical for any worker count.
func reduceVecSum(n, dim, workers int, compute func(lo, hi int, acc []float64)) []float64 {
	partials := make([][]float64, numReduceBlocks(n))
	runBlocks(n, workers, func(b, lo, hi int) {
		acc := make([]float64, dim)
		compute(lo, hi, acc)
		partials[b] = acc
	})
	out := make([]float64, dim)
	for _, p := range partials {
		for k, v := range p {
			out[k] += v
		}
	}
	return out
}
