package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("events_total", "kind", "x")
	b := r.Counter("events_total", "kind", "x")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	other := r.Counter("events_total", "kind", "y")
	if a == other {
		t.Error("different labels returned the same counter")
	}
	a.Inc()
	a.Add(4)
	if got := b.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "b", "2", "a", "1")
	b := r.Counter("c_total", "a", "1", "b", "2")
	if a != b {
		t.Error("label order changed metric identity")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Errorf("gauge = %v, want 4.5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("acquiring a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	r.Counter("x_total", "dangling")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("conflicting bucket bounds did not panic")
		}
	}()
	r.Histogram("h_seconds", []float64{1, 2, 3})
}

type staticCollector struct {
	name  string
	value float64
}

func (c *staticCollector) Collect(emit func(string, float64)) {
	emit(c.name, c.value)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "endpoint", "/v1/link", "code", "2xx").Add(3)
	r.Gauge("in_flight").Set(2)
	h := r.Histogram("lat_seconds", []float64{0.1, 1}, "endpoint", "/v1/link")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	col := &staticCollector{name: "cache_hits_total", value: 42}
	r.Register(col)
	r.Register(col) // idempotent

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="2xx",endpoint="/v1/link"} 3`,
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{endpoint="/v1/link",le="0.1"} 1`,
		`lat_seconds_bucket{endpoint="/v1/link",le="1"} 2`,
		`lat_seconds_bucket{endpoint="/v1/link",le="+Inf"} 3`,
		`lat_seconds_sum{endpoint="/v1/link"} 5.55`,
		`lat_seconds_count{endpoint="/v1/link"} 3`,
		"cache_hits_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "cache_hits_total 42") != 1 {
		t.Error("double-registered collector emitted twice")
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "q", `a"b\c`+"\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `weird_total{q="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("hits_total").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat_seconds", nil).Observe(0.01)
			}
		}()
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 4000 {
		t.Errorf("hits_total = %d, want 4000", got)
	}
	if got := r.Histogram("lat_seconds", nil).Count(); got != 4000 {
		t.Errorf("histogram count = %d, want 4000", got)
	}
}
