package obs

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestMiddlewareRecordsRequests(t *testing.T) {
	r := NewRegistry()
	var inFlightSeen float64
	h := r.Middleware("/v1/thing", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		inFlightSeen = r.Gauge(MetricHTTPInFlight).Value()
		switch req.URL.Query().Get("code") {
		case "404":
			w.WriteHeader(http.StatusNotFound)
		case "500":
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.Write([]byte("ok")) // implicit 200
		}
	}))

	for _, q := range []string{"", "", "?code=404", "?code=500"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/thing"+q, nil))
	}

	if got := r.Counter(MetricHTTPRequests, "endpoint", "/v1/thing", "code", "2xx").Value(); got != 2 {
		t.Errorf("2xx = %d, want 2", got)
	}
	if got := r.Counter(MetricHTTPRequests, "endpoint", "/v1/thing", "code", "4xx").Value(); got != 1 {
		t.Errorf("4xx = %d, want 1", got)
	}
	if got := r.Counter(MetricHTTPRequests, "endpoint", "/v1/thing", "code", "5xx").Value(); got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if got := r.Histogram(MetricHTTPRequestSeconds, nil, "endpoint", "/v1/thing").Count(); got != 4 {
		t.Errorf("latency observations = %d, want 4", got)
	}
	if inFlightSeen != 1 {
		t.Errorf("in-flight during request = %v, want 1", inFlightSeen)
	}
	if got := r.Gauge(MetricHTTPInFlight).Value(); got != 0 {
		t.Errorf("in-flight after requests = %v, want 0", got)
	}
}

func TestMiddlewareConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Middleware("/x", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("ok"))
	}))
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/x", nil))
		}()
	}
	wg.Wait()
	if got := r.Counter(MetricHTTPRequests, "endpoint", "/x", "code", "2xx").Value(); got != n {
		t.Errorf("2xx = %d, want %d", got, n)
	}
	if got := r.Gauge(MetricHTTPInFlight).Value(); got != 0 {
		t.Errorf("in-flight = %v, want 0", got)
	}
}
