package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets spans 0.5 ms to 10 s — the range a request to the
// SHINE server plausibly occupies, from cache-hit candidate lookups
// to cold meta-path walks over hub entities.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic counters: Observe
// is lock-free and safe for concurrent use. Bounds are bucket upper
// limits (inclusive, per Prometheus `le` semantics) in ascending
// order; observations above the last bound land in an implicit +Inf
// bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	total   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the common
// latency-recording call.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot copies the per-bucket counts, total and sum. Buckets are
// read individually, so a snapshot taken during concurrent Observe
// calls may be off by in-flight observations — fine for monitoring.
func (h *Histogram) snapshot() (counts []uint64, total uint64, sum float64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.total.Load(), h.Sum()
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the bucket containing the target rank — the
// same estimate Prometheus' histogram_quantile computes. Returns 0
// with no observations; observations in the +Inf bucket clamp to the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (h.bounds[i]-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSummary condenses a histogram for logs and reports.
type HistogramSummary struct {
	Count         uint64
	Sum           float64
	P50, P95, P99 float64
}

// Summary returns count, sum and the p50/p95/p99 estimates.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
