package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// le semantics are inclusive: 1 lands in the first bucket, 2 in
	// the second, 4 in the third, 100 in +Inf.
	counts, total, sum := h.snapshot()
	wantCounts := []uint64{2, 2, 2, 1}
	for i, want := range wantCounts {
		if counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want)
		}
	}
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
	if math.Abs(sum-112) > 1e-9 {
		t.Errorf("sum = %v, want 112", sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.02, 0.05, 0.1, 0.5, 1})
	// 100 observations spread uniformly over (0, 0.1].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.02 || p50 > 0.06 {
		t.Errorf("p50 = %v, want ~0.05", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.05 || p99 > 0.1 {
		t.Errorf("p99 = %v, want ~0.1", p99)
	}
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Errorf("q<0 not clamped: %v", q)
	}
	s := h.Summary()
	if s.Count != 100 || s.P50 != p50 || s.P99 != p99 {
		t.Errorf("summary = %+v", s)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramQuantileInfBucketClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(60)
	if q := h.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", q)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	srv := r.Handler()

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "up_total 1") {
		t.Errorf("body = %q", w.Body.String())
	}

	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", w.Code)
	}
}
