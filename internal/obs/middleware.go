package obs

import (
	"net/http"
	"time"
)

// Metric names recorded by Middleware. Exported so tests and
// dashboards reference the same strings the middleware writes.
const (
	MetricHTTPRequests       = "shine_http_requests_total"
	MetricHTTPInFlight       = "shine_http_in_flight"
	MetricHTTPRequestSeconds = "shine_http_request_seconds"
)

// Middleware instruments next under a fixed endpoint label,
// recording:
//
//	shine_http_requests_total{endpoint,code}   per status class (2xx..5xx)
//	shine_http_in_flight                       gauge, all endpoints
//	shine_http_request_seconds{endpoint}       latency histogram
//
// The endpoint is a caller-supplied constant (the route pattern), not
// the raw URL path, keeping label cardinality bounded.
func (r *Registry) Middleware(endpoint string, next http.Handler) http.Handler {
	// Pre-acquire every instrument so the request path is pure atomics.
	classes := [6]*Counter{}
	for class := 1; class <= 5; class++ {
		classes[class] = r.Counter(MetricHTTPRequests,
			"endpoint", endpoint, "code", statusClass(class*100))
	}
	inFlight := r.Gauge(MetricHTTPInFlight)
	latency := r.Histogram(MetricHTTPRequestSeconds, nil, "endpoint", endpoint)

	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		defer inFlight.Add(-1)
		sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, req)
		latency.ObserveSince(start)
		class := sw.status / 100
		if class < 1 || class > 5 {
			class = 5
		}
		classes[class].Inc()
	})
}

// statusClass renders a status code as its Prometheus label ("2xx").
func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}

// statusRecorder captures the response status for the counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// streaming handlers behind the middleware can still flush and enable
// full-duplex mode.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }
