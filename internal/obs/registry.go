// Package obs is a stdlib-only observability toolkit for the SHINE
// serving system: a concurrent-safe metrics registry holding
// counters, gauges and fixed-bucket histograms, Prometheus
// text-format exposition, and an HTTP middleware that instruments a
// handler per endpoint.
//
// Metrics are acquired get-or-create by (name, label set); repeated
// acquisitions return the same instrument, so hot paths keep a
// pointer and update it with atomic operations — no lock is taken on
// the record path. External sources (for example the meta-path walker
// cache, which the registry cannot import without a cycle) plug in
// through the Collector interface, whose signature uses only builtin
// types so implementors never need to import this package.
//
// Metric names follow Prometheus conventions: `snake_case`, a
// `_total` suffix on counters, base units (seconds) in histogram
// names.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Collector is anything that can contribute externally-owned metrics
// at scrape time. The signature deliberately uses only builtin types
// so packages the registry depends on (walker caches, pools) can
// implement it structurally, without importing obs and creating an
// import cycle. Emitted values are exposed as untyped Prometheus
// samples.
type Collector interface {
	Collect(emit func(name string, value float64))
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family groups every labelled instance of one metric name.
type family struct {
	kind   kind
	bounds []float64 // histogram bucket bounds; nil otherwise
	// metrics maps a canonical label signature (`{k="v",...}` or "")
	// to the instrument.
	metrics map[string]interface{}
}

// Registry is a concurrent-safe collection of metrics. The zero value
// is not usable; construct with NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name and the given label key-value
// pairs, creating it on first use. It panics if name is already
// registered as a different metric kind or labels has an odd length —
// both are programming errors, not runtime conditions.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.metric(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge for name and labels, creating it on first
// use. Panics on kind mismatch, like Counter.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.metric(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram for name and labels, creating it on
// first use with the given bucket upper bounds (nil selects
// DefLatencyBuckets). Every instance of one name shares one bound
// set; a conflicting bounds argument panics.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.metric(name, kindHistogram, bounds, labels).(*Histogram)
}

// Register adds a collector scraped on every exposition. Registering
// the same collector again is a no-op, so idempotent wiring code can
// call it freely.
func (r *Registry) Register(c Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.collectors {
		if existing == c {
			return
		}
	}
	r.collectors = append(r.collectors, c)
}

// Unregister removes a previously registered collector, matching by
// identity. Unknown collectors are a no-op. The hot-swap path uses
// this to detach the outgoing model's walker and mixture collectors
// before registering the replacement's, so one scrape never sees the
// same series emitted twice.
func (r *Registry) Unregister(c Collector) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, existing := range r.collectors {
		if existing == c {
			r.collectors = append(r.collectors[:i], r.collectors[i+1:]...)
			return
		}
	}
}

func (r *Registry) metric(name string, k kind, bounds []float64, labels []string) interface{} {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{kind: k, metrics: make(map[string]interface{})}
		if k == kindHistogram {
			if bounds == nil {
				bounds = DefLatencyBuckets
			}
			fam.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = fam
	}
	if fam.kind != k {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, fam.kind, k))
	}
	if k == kindHistogram && bounds != nil && !equalBounds(fam.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-acquired with different buckets", name))
	}
	if m, ok := fam.metrics[sig]; ok {
		return m
	}
	var m interface{}
	switch k {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(fam.bounds)
	}
	fam.metrics[sig] = m
	return m
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSignature canonicalises label pairs into the exposition form
// `{k1="v1",k2="v2"}` with keys sorted, or "" for no labels. An odd
// number of label arguments panics.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	slices.SortFunc(pairs, func(a, b pair) int { return strings.Compare(a.k, b.k) })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// withLabel splices one more label pair into a canonical signature —
// used to add `le` to a histogram series' labels.
func withLabel(sig, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// WritePrometheus writes every metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and
// series sorted by label signature, then every registered collector's
// samples. Deterministic output for a fixed state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	slices.Sort(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()

	var err error
	pr := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for i, name := range names {
		fam := fams[i]
		pr("# TYPE %s %s\n", name, fam.kind)
		sigs := make([]string, 0, len(fam.metrics))
		for sig := range fam.metrics {
			sigs = append(sigs, sig)
		}
		slices.Sort(sigs)
		for _, sig := range sigs {
			switch m := fam.metrics[sig].(type) {
			case *Counter:
				pr("%s%s %d\n", name, sig, m.Value())
			case *Gauge:
				pr("%s%s %s\n", name, sig, formatFloat(m.Value()))
			case *Histogram:
				counts, total, sum := m.snapshot()
				cum := uint64(0)
				for bi, bound := range m.bounds {
					cum += counts[bi]
					pr("%s_bucket%s %d\n", name, withLabel(sig, "le", formatFloat(bound)), cum)
				}
				pr("%s_bucket%s %d\n", name, withLabel(sig, "le", "+Inf"), total)
				pr("%s_sum%s %s\n", name, sig, formatFloat(sum))
				pr("%s_count%s %d\n", name, sig, total)
			}
		}
	}
	for _, c := range collectors {
		c.Collect(func(name string, value float64) {
			pr("%s %s\n", name, formatFloat(value))
		})
	}
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics endpoint serving WritePrometheus.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
