package namematch

import (
	"strings"
	"testing"
)

// FuzzParse drives the name parser with arbitrary bytes and checks its
// invariants: parsing never panics, is deterministic, produces
// lowercase parts whose tokens carry no trailing periods, and every
// non-empty parse matches itself under both rule sets (the property
// candidate indexing depends on — an entity must be findable by its
// own surface form).
func FuzzParse(f *testing.F) {
	f.Add("Wei Wang")
	f.Add("Muntz, Richard R.")
	f.Add("Wei Wang 0010")
	f.Add("José García-López")
	f.Add("Élodie É. Durand")
	f.Add("Jan Van Der Berg")
	f.Add("Wang,")
	f.Add(",")
	f.Add("... 0003")
	f.Add("O'Brien, Sø")
	f.Add("\xc3\x28 broken utf8")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		n := Parse(s)
		if again := Parse(s); again != n {
			t.Fatalf("Parse(%q) not deterministic: %+v vs %+v", s, n, again)
		}
		if n.IsEmpty() {
			return
		}
		if !n.Matches(n) {
			t.Fatalf("Parse(%q) = %+v does not match itself", s, n)
		}
		if !n.MatchesLoose(n) {
			t.Fatalf("Parse(%q) = %+v does not loose-match itself", s, n)
		}
		for _, part := range []string{n.First, n.Middle, n.Last} {
			if part != strings.ToLower(part) {
				t.Fatalf("Parse(%q): part %q not lowercase", s, part)
			}
			for _, tok := range strings.Fields(part) {
				if strings.HasSuffix(tok, ".") {
					t.Fatalf("Parse(%q): token %q keeps a trailing period", s, tok)
				}
			}
		}
		if strings.Count(n.Key(), "\x00") < 1 {
			t.Fatalf("Parse(%q): key %q lost its separator", s, n.Key())
		}
	})
}
