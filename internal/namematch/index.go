package namematch

import (
	"cmp"
	"fmt"
	"slices"

	"shine/internal/hin"
)

// Index maps surface names to candidate entities in a heterogeneous
// information network. It blocks on the (first, last) key so that a
// lookup only scans entities that could possibly satisfy the matching
// rules, then applies the full rules to each.
type Index struct {
	byKey map[string][]indexed
	// byLast blocks on the last name alone, for the loose
	// (first-initial) matching mode.
	byLast map[string][]indexed
}

type indexed struct {
	entity hin.ObjectID
	name   Name
}

// BuildIndex parses the name of every object of entityType in g and
// indexes it. Objects whose names parse to nothing are skipped.
func BuildIndex(g *hin.Graph, entityType hin.TypeID) (*Index, error) {
	entities := g.ObjectsOfType(entityType)
	if len(entities) == 0 {
		return nil, fmt.Errorf("namematch: no objects of type %d to index", entityType)
	}
	idx := &Index{
		byKey:  make(map[string][]indexed),
		byLast: make(map[string][]indexed),
	}
	for _, e := range entities {
		n := Parse(g.Name(e))
		if n.IsEmpty() {
			continue
		}
		k := n.Key()
		idx.byKey[k] = append(idx.byKey[k], indexed{entity: e, name: n})
		idx.byLast[n.Last] = append(idx.byLast[n.Last], indexed{entity: e, name: n})
	}
	return idx, nil
}

// Candidates returns the entities whose names are compatible with the
// mention surface form under the paper's rules, in ascending ID
// order. An unknown name yields an empty slice.
func (idx *Index) Candidates(mention string) []hin.ObjectID {
	n := Parse(mention)
	if n.IsEmpty() {
		return nil
	}
	var out []hin.ObjectID
	for _, cand := range idx.byKey[n.Key()] {
		if n.Matches(cand.name) {
			out = append(out, cand.entity)
		}
	}
	return sortedUnique(out)
}

// LooseCandidates extends Candidates with first-initial matching
// ("W. Wang" finds every "Wei Wang", "Wendy Wang", …). It trades
// precision for recall; use it for citation-style mentions where
// first names are initialised.
func (idx *Index) LooseCandidates(mention string) []hin.ObjectID {
	n := Parse(mention)
	if n.IsEmpty() {
		return nil
	}
	var out []hin.ObjectID
	for _, cand := range idx.byLast[n.Last] {
		if n.MatchesLoose(cand.name) {
			out = append(out, cand.entity)
		}
	}
	return sortedUnique(out)
}

// sortedUnique sorts ascending and drops duplicate IDs, so an entity
// indexed under colliding normalized keys still appears once.
func sortedUnique(ids []hin.ObjectID) []hin.ObjectID {
	if len(ids) == 0 {
		return ids
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// AmbiguousNames returns, for each (first, last) key shared by at
// least minEntities distinct entities, one representative surface
// form "First Last" along with the entity count. The result is sorted
// by descending count, then by name. This is how the experiment
// harness discovers "Wei Wang"-style ambiguity groups to build test
// mentions from.
func (idx *Index) AmbiguousNames(minEntities int) []AmbiguousName {
	var out []AmbiguousName
	for _, group := range idx.byKey {
		if len(group) < minEntities {
			continue
		}
		n := group[0].name
		surface := n.First + " " + n.Last
		if n.First == "" {
			surface = n.Last
		}
		out = append(out, AmbiguousName{Surface: surface, Count: len(group)})
	}
	slices.SortFunc(out, func(a, b AmbiguousName) int {
		if a.Count != b.Count {
			return cmp.Compare(b.Count, a.Count)
		}
		return cmp.Compare(a.Surface, b.Surface)
	})
	return out
}

// AmbiguousName is one shared surface form and how many entities
// carry it.
type AmbiguousName struct {
	Surface string
	Count   int
}

// NumKeys returns the number of distinct (first, last) blocking keys.
func (idx *Index) NumKeys() int { return len(idx.byKey) }
