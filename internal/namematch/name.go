// Package namematch implements personal-name parsing and the
// candidate-entity generation rules of the paper's experimental
// setting (Section 5.1): all author entities whose names satisfy one
// of the predefined string-comparison rules are extracted as the
// candidate entities for a mention. The rules are
//
//  1. the two names match exactly;
//  2. the two names share first and last name, and either one of them
//     has no middle name (Richard Muntz ↔ Richard R. Muntz), or one
//     middle name is the initial of the other (Michael J. Jordan ↔
//     Michael Jeffrey Jordan).
//
// DBLP-style disambiguation suffixes — a four-digit number appended to
// an ambiguous name, as in "Wei Wang 0010" — are stripped before
// comparison, mirroring how the paper's partially disambiguated DBLP
// network represents distinct authors sharing one surface name.
package namematch

import (
	"strings"
	"unicode/utf8"
)

// Name is a parsed personal name.
type Name struct {
	// First, Middle and Last are the lowercase name parts. Middle may
	// be empty; multi-token middles are joined by spaces.
	First, Middle, Last string
}

// Parse splits a personal name into first/middle/last parts. Both the
// "First [Middle...] Last" convention of DBLP author records and the
// citation-style "Last, First [Middle...]" form are accepted. A
// trailing all-digit disambiguation token is dropped. Periods after
// initials are ignored. A single-token name parses as a last name
// only.
func Parse(name string) Name {
	// Strip the DBLP disambiguation suffix before any rearrangement,
	// so "Wang, Wei 0003" loses the suffix rather than keeping it as
	// a middle token.
	if all := strings.Fields(name); len(all) > 1 && isDigits(all[len(all)-1]) {
		name = strings.Join(all[:len(all)-1], " ")
	}
	if comma := strings.Index(name, ","); comma >= 0 {
		last := strings.TrimSpace(name[:comma])
		rest := strings.TrimSpace(name[comma+1:])
		if last != "" && rest != "" {
			name = rest + " " + last
		} else {
			name = last + rest
		}
	}
	fields := strings.Fields(name)
	// Strip a DBLP disambiguation suffix such as "0010".
	if n := len(fields); n > 0 && isDigits(fields[n-1]) {
		fields = fields[:n-1]
	}
	for i, f := range fields {
		fields[i] = strings.ToLower(strings.TrimRight(f, "."))
	}
	switch len(fields) {
	case 0:
		return Name{}
	case 1:
		return Name{Last: fields[0]}
	case 2:
		return Name{First: fields[0], Last: fields[1]}
	default:
		return Name{
			First:  fields[0],
			Middle: strings.Join(fields[1:len(fields)-1], " "),
			Last:   fields[len(fields)-1],
		}
	}
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Key returns the (first, last) blocking key used to index candidate
// entities. Names that can never satisfy the matching rules have
// different keys.
func (n Name) Key() string { return n.First + "\x00" + n.Last }

// IsEmpty reports whether the name has no parts at all.
func (n Name) IsEmpty() bool {
	return n.First == "" && n.Middle == "" && n.Last == ""
}

// Matches reports whether two parsed names refer to compatible
// surface forms under the paper's rules.
func (n Name) Matches(o Name) bool {
	if n.First != o.First || n.Last != o.Last {
		return false
	}
	if n.Middle == o.Middle {
		return true // rule 1: exact match
	}
	if n.Middle == "" || o.Middle == "" {
		return true // rule 2a: one name has no middle name
	}
	return initialOf(n.Middle, o.Middle) || initialOf(o.Middle, n.Middle)
}

// MatchesLoose extends Matches with first-name-initial matching:
// "W. Wang" is compatible with "Wei Wang". The last names must still
// match exactly, and the middle-name rules still apply. Looser
// matching raises candidate recall (fewer missed true entities) at
// the cost of larger candidate sets, so it is a separate opt-in.
func (n Name) MatchesLoose(o Name) bool {
	if n.Matches(o) {
		return true
	}
	if n.Last != o.Last {
		return false
	}
	if !initialOf(n.First, o.First) && !initialOf(o.First, n.First) {
		return false
	}
	if n.Middle == o.Middle || n.Middle == "" || o.Middle == "" {
		return true
	}
	return initialOf(n.Middle, o.Middle) || initialOf(o.Middle, n.Middle)
}

// initialOf reports whether a is the initialised form of b: each token
// of a is a single letter equal to the first letter of the
// corresponding token of b (allowing b's token to also be an initial).
func initialOf(a, b string) bool {
	at := strings.Fields(a)
	bt := strings.Fields(b)
	if len(at) != len(bt) {
		return false
	}
	for i := range at {
		// Compare first runes, not first bytes: "é" is a single-rune
		// initial of "élodie" even though it is two bytes long.
		ar, size := utf8.DecodeRuneInString(at[i])
		if size != len(at[i]) {
			return false // a's token is more than one rune: not an initial
		}
		br, _ := utf8.DecodeRuneInString(bt[i])
		if ar != br {
			return false
		}
	}
	return true
}
