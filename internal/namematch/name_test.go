package namematch

import (
	"reflect"
	"testing"

	"shine/internal/hin"
)

func TestParse(t *testing.T) {
	cases := map[string]Name{
		"Wei Wang":               {First: "wei", Last: "wang"},
		"Richard R. Muntz":       {First: "richard", Middle: "r", Last: "muntz"},
		"Michael Jeffrey Jordan": {First: "michael", Middle: "jeffrey", Last: "jordan"},
		"Wei Wang 0010":          {First: "wei", Last: "wang"},
		"Plato":                  {Last: "plato"},
		"":                       {},
		"  ":                     {},
		"Jan Van Der Berg":       {First: "jan", Middle: "van der", Last: "berg"},
	}
	for in, want := range cases {
		if got := Parse(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Parse(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestMatchesExact(t *testing.T) {
	a := Parse("Wei Wang")
	b := Parse("Wei Wang 0003")
	if !a.Matches(b) {
		t.Error("disambiguated form does not match its surface name")
	}
	if !a.Matches(a) {
		t.Error("name does not match itself")
	}
}

func TestMatchesMissingMiddleName(t *testing.T) {
	// Paper example: Richard Muntz and Richard R. Muntz.
	a := Parse("Richard Muntz")
	b := Parse("Richard R. Muntz")
	if !a.Matches(b) || !b.Matches(a) {
		t.Error("missing-middle-name rule failed")
	}
}

func TestMatchesMiddleInitial(t *testing.T) {
	// Paper example: Michael J. Jordan and Michael Jeffrey Jordan.
	a := Parse("Michael J. Jordan")
	b := Parse("Michael Jeffrey Jordan")
	if !a.Matches(b) || !b.Matches(a) {
		t.Error("middle-initial rule failed")
	}
}

func TestMatchesRejections(t *testing.T) {
	cases := [][2]string{
		{"Wei Wang", "Wei Zhang"},                          // different last name
		{"Wei Wang", "Lei Wang"},                           // different first name
		{"Michael J. Jordan", "Michael K. Jordan"},         // conflicting initials
		{"Michael Jeffrey Jordan", "Michael James Jordan"}, // conflicting middles
		{"Jan Van Der Berg", "Jan V. Berg"},                // middle token count differs
	}
	for _, c := range cases {
		if Parse(c[0]).Matches(Parse(c[1])) {
			t.Errorf("%q matches %q, should not", c[0], c[1])
		}
	}
}

func TestMatchesMultiTokenInitials(t *testing.T) {
	a := Parse("Jan V. D. Berg")
	b := Parse("Jan Van Der Berg")
	if !a.Matches(b) || !b.Matches(a) {
		t.Error("multi-token middle initials failed")
	}
}

// TestMatchesUnicodeInitial is the regression test for the
// byte-vs-rune bug in initialOf: a single-rune initial like "É." is
// two bytes long, and the old length-based check rejected it.
func TestMatchesUnicodeInitial(t *testing.T) {
	a := Parse("Élodie É. Durand")
	b := Parse("Élodie Éliane Durand")
	if !a.Matches(b) || !b.Matches(a) {
		t.Error("non-ASCII middle initial rejected")
	}
	if !Parse("É. Durand").MatchesLoose(Parse("Élodie Durand")) {
		t.Error("non-ASCII first initial rejected in loose mode")
	}
	// A wrong initial must still be rejected, and a multi-rune token is
	// never an initial.
	if Parse("Élodie Ó. Durand").Matches(Parse("Élodie Éliane Durand")) {
		t.Error("conflicting non-ASCII initials matched")
	}
	if Parse("Él. Durand").MatchesLoose(Parse("Élodie Durand")) {
		t.Error("two-rune token treated as an initial")
	}
}

func TestKeyBlocksOnFirstAndLast(t *testing.T) {
	if Parse("Wei Wang").Key() != Parse("Wei X. Wang").Key() {
		t.Error("middle name changed the blocking key")
	}
	if Parse("Wei Wang").Key() == Parse("Wei Zhang").Key() {
		t.Error("different last names share a key")
	}
}

func buildAuthorGraph(t testing.TB, names ...string) (*hin.DBLPSchema, *hin.Graph) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	for _, n := range names {
		b.MustAddObject(d.Author, n)
	}
	return d, b.Build()
}

func TestIndexCandidates(t *testing.T) {
	d, g := buildAuthorGraph(t,
		"Wei Wang 0001", "Wei Wang 0002", "Wei Wang 0003",
		"Richard R. Muntz", "Eric Martin 0001", "Lei Wang",
	)
	idx, err := BuildIndex(g, d.Author)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	cands := idx.Candidates("Wei Wang")
	if len(cands) != 3 {
		t.Fatalf("Candidates(Wei Wang) = %d entities, want 3", len(cands))
	}
	// Results must be sorted by ID.
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Error("candidates not sorted")
		}
	}
	if got := idx.Candidates("Richard Muntz"); len(got) != 1 {
		t.Errorf("Candidates(Richard Muntz) = %d, want 1 via middle-name rule", len(got))
	}
	if got := idx.Candidates("Nobody Here"); len(got) != 0 {
		t.Errorf("Candidates(unknown) = %v", got)
	}
	if got := idx.Candidates(""); got != nil {
		t.Errorf("Candidates(empty) = %v", got)
	}
}

func TestIndexAmbiguousNames(t *testing.T) {
	d, g := buildAuthorGraph(t,
		"Wei Wang 0001", "Wei Wang 0002", "Wei Wang 0003",
		"Eric Martin 0001", "Eric Martin 0002",
		"Solo Author",
	)
	idx, err := BuildIndex(g, d.Author)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	amb := idx.AmbiguousNames(2)
	if len(amb) != 2 {
		t.Fatalf("AmbiguousNames = %v, want 2 groups", amb)
	}
	if amb[0].Surface != "wei wang" || amb[0].Count != 3 {
		t.Errorf("top group = %+v", amb[0])
	}
	if amb[1].Surface != "eric martin" || amb[1].Count != 2 {
		t.Errorf("second group = %+v", amb[1])
	}
}

func TestBuildIndexErrors(t *testing.T) {
	d, g := buildAuthorGraph(t, "Wei Wang")
	if _, err := BuildIndex(g, d.Venue); err == nil {
		t.Error("indexing empty type accepted")
	}
}

func TestParseCommaForm(t *testing.T) {
	cases := map[string]Name{
		"Wang, Wei":         {First: "wei", Last: "wang"},
		"Muntz, Richard R.": {First: "richard", Middle: "r", Last: "muntz"},
		"Wang, Wei 0003":    {First: "wei", Last: "wang"},
		"Wang,":             {Last: "wang"},
	}
	for in, want := range cases {
		if got := Parse(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Parse(%q) = %+v, want %+v", in, got, want)
		}
	}
	// Comma and plain forms of the same name must match.
	if !Parse("Wang, Wei").Matches(Parse("Wei Wang")) {
		t.Error("comma form does not match plain form")
	}
}

func TestMatchesLoose(t *testing.T) {
	pairs := [][2]string{
		{"W. Wang", "Wei Wang"},
		{"W. Wang", "Wei Wang 0003"},
		{"Wei Wang", "W. Wang"},
		{"R. Muntz", "Richard R. Muntz"},
		{"Richard Muntz", "Richard R. Muntz"}, // strict rule still applies
	}
	for _, p := range pairs {
		if !Parse(p[0]).MatchesLoose(Parse(p[1])) {
			t.Errorf("%q !~loose %q", p[0], p[1])
		}
	}
	rejections := [][2]string{
		{"W. Wang", "Lei Wang"},       // initial conflicts
		{"W. Wang", "Wei Zhang"},      // last name differs
		{"W. K. Wang", "Wei J. Wang"}, // middle initial conflicts
	}
	for _, p := range rejections {
		if Parse(p[0]).MatchesLoose(Parse(p[1])) {
			t.Errorf("%q ~loose %q, should not", p[0], p[1])
		}
	}
}

func TestLooseCandidates(t *testing.T) {
	d, g := buildAuthorGraph(t,
		"Wei Wang 0001", "Wei Wang 0002", "Wendy Wang", "Lei Wang", "Wei Zhang",
	)
	idx, err := BuildIndex(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	// Strict: only the exact Wei Wangs.
	if got := idx.Candidates("W. Wang"); len(got) != 0 {
		t.Errorf("strict Candidates(W. Wang) = %v, want none", got)
	}
	// Loose: both Wei Wangs and Wendy Wang, but not Lei Wang or Wei Zhang.
	got := idx.LooseCandidates("W. Wang")
	if len(got) != 3 {
		t.Fatalf("LooseCandidates(W. Wang) = %d entities, want 3", len(got))
	}
	// Loose lookup of a full name still includes exact matches.
	if got := idx.LooseCandidates("Wei Wang"); len(got) != 2 {
		t.Errorf("LooseCandidates(Wei Wang) = %d, want 2", len(got))
	}
	if got := idx.LooseCandidates(""); got != nil {
		t.Errorf("LooseCandidates(empty) = %v", got)
	}
}
