package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"shine/internal/shine"
)

// ---------------------------------------------------------------- Figure 4

// Figure4Point is one mention-set size's measurements.
type Figure4Point struct {
	Mentions int
	// EMIterTime and GDIterTime are the average wall-clock durations
	// of one EM iteration and one inner gradient iteration (Figure
	// 4(a)); both should grow about linearly with Mentions.
	EMIterTime, GDIterTime time.Duration
	// Accuracy is SHINEall's accuracy on this subset (Figure 4(b));
	// it should stay roughly flat.
	Accuracy float64
}

// Figure4Result holds the scalability sweep.
type Figure4Result struct {
	Points []Figure4Point
}

// Figure4 sweeps mention-set sizes and measures per-iteration
// learning time and accuracy, reproducing both panels of Figure 4.
// Sizes lists the subset sizes; values exceeding the corpus are
// clamped to it, and duplicates after clamping are dropped.
func (e *Env) Figure4(sizes []int) (*Figure4Result, error) {
	out := &Figure4Result{}
	seen := map[int]bool{}
	for _, n := range sizes {
		if n > e.DS.Corpus.Len() {
			n = e.DS.Corpus.Len()
		}
		if n < 1 || seen[n] {
			continue
		}
		seen[n] = true
		sub, err := e.DS.Corpus.Subset(n)
		if err != nil {
			return nil, err
		}
		m, err := e.newModel(e.Paths10, nil)
		if err != nil {
			return nil, err
		}
		stats, err := m.Learn(sub)
		if err != nil {
			return nil, err
		}
		s, err := e.evalModel(m, sub)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Figure4Point{
			Mentions:   n,
			EMIterTime: stats.EMIterTime,
			GDIterTime: stats.GDIterTime,
			Accuracy:   s.Accuracy,
		})
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("experiments: no valid subset sizes in %v", sizes)
	}
	return out, nil
}

// WriteTo renders both panels as one table.
func (r *Figure4Result) WriteTo(w io.Writer) (int64, error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 4: scalability and robustness of SHINEall")
	fmt.Fprintln(tw, "mentions\tEM iter (ms)\tGD iter (ms)\taccuracy")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%.2f\t%.3f\t%.3f\n",
			p.Mentions,
			float64(p.EMIterTime.Microseconds())/1000,
			float64(p.GDIterTime.Microseconds())/1000,
			p.Accuracy)
	}
	return 0, tw.Flush()
}

// ---------------------------------------------------------------- Figure 5

// Figure5Point is one θ value's accuracy.
type Figure5Point struct {
	Theta    float64
	Accuracy float64
}

// Figure5 sweeps the smoothing parameter θ from 0.1 to 0.9 (Section
// 5.4) and reports SHINEall accuracy at each value.
func (e *Env) Figure5(thetas []float64) ([]Figure5Point, error) {
	if len(thetas) == 0 {
		thetas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	var out []Figure5Point
	for _, th := range thetas {
		theta := th
		s, _, err := e.evaluateShine(e.Paths10, func(c *shine.Config) { c.Theta = theta }, e.DS.Corpus)
		if err != nil {
			return nil, fmt.Errorf("experiments: theta %v: %w", theta, err)
		}
		out = append(out, Figure5Point{Theta: theta, Accuracy: s.Accuracy})
	}
	return out, nil
}

// ---------------------------------------------------------------- Figure 6

// Figure6Row is one meta-path's learned weight.
type Figure6Row struct {
	Path   string
	Weight float64
}

// Figure6 learns SHINEall's weights on the full corpus and reports
// the final meta-path weight vector (Section 5.5's investigation of
// learned weights).
func (e *Env) Figure6() ([]Figure6Row, *shine.LearnStats, error) {
	m, err := e.newModel(e.Paths10, nil)
	if err != nil {
		return nil, nil, err
	}
	stats, err := m.Learn(e.DS.Corpus)
	if err != nil {
		return nil, nil, err
	}
	w := m.Weights()
	rows := make([]Figure6Row, len(e.Paths10))
	for i, p := range e.Paths10 {
		rows[i] = Figure6Row{Path: p.String(), Weight: w[i]}
	}
	return rows, stats, nil
}

// ------------------------------------------------------------- Ablations

// LambdaPoint is one PageRank damping value's accuracy.
type LambdaPoint struct {
	Lambda   float64
	Accuracy float64
}

// LambdaSweep varies the PageRank balance parameter λ (Formula 6; the
// paper fixes it at 0.2) and reports SHINEall accuracy.
func (e *Env) LambdaSweep(lambdas []float64) ([]LambdaPoint, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0.1, 0.2, 0.5, 0.8}
	}
	var out []LambdaPoint
	for _, l := range lambdas {
		lambda := l
		s, _, err := e.evaluateShine(e.Paths10, func(c *shine.Config) { c.PageRank.Lambda = lambda }, e.DS.Corpus)
		if err != nil {
			return nil, err
		}
		out = append(out, LambdaPoint{Lambda: lambda, Accuracy: s.Accuracy})
	}
	return out, nil
}

// PruningPoint is one walk-pruning level's accuracy and learn time.
type PruningPoint struct {
	MaxSupport int // 0 = exact walks
	Accuracy   float64
	LearnTime  time.Duration
}

// PruningSweep measures the accuracy/cost trade-off of truncating
// random walk distributions to their top-k entries — the
// approximation a deployment needs once hub objects make exact
// frontiers too large. Expected shape: accuracy degrades gracefully
// as k shrinks, with exact walks (k = 0) as the reference.
func (e *Env) PruningSweep(supports []int) ([]PruningPoint, error) {
	if len(supports) == 0 {
		supports = []int{0, 1000, 100, 10}
	}
	var out []PruningPoint
	for _, k := range supports {
		k := k
		m, err := e.newModel(e.Paths10, func(c *shine.Config) { c.WalkPruning = k })
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := m.Learn(e.DS.Corpus); err != nil {
			return nil, err
		}
		learn := time.Since(start)
		s, err := e.evalModel(m, e.DS.Corpus)
		if err != nil {
			return nil, err
		}
		out = append(out, PruningPoint{MaxSupport: k, Accuracy: s.Accuracy, LearnTime: learn})
	}
	return out, nil
}

// SGDComparison contrasts the full-batch M-step with the stochastic
// variant Section 4 proposes for large mention sets.
type SGDComparison struct {
	FullAccuracy, SGDAccuracy float64
	FullEMIter, SGDEMIter     time.Duration
}

// CompareSGD runs SHINEall with full gradients and with stochastic
// batches of the given size.
func (e *Env) CompareSGD(batch int) (*SGDComparison, error) {
	out := &SGDComparison{}
	m, err := e.newModel(e.Paths10, nil)
	if err != nil {
		return nil, err
	}
	st, err := m.Learn(e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	s, err := e.evalModel(m, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	out.FullAccuracy, out.FullEMIter = s.Accuracy, st.EMIterTime

	ms, err := e.newModel(e.Paths10, func(c *shine.Config) { c.SGDBatch = batch })
	if err != nil {
		return nil, err
	}
	st, err = ms.Learn(e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	if s, err = e.evalModel(ms, e.DS.Corpus); err != nil {
		return nil, err
	}
	out.SGDAccuracy, out.SGDEMIter = s.Accuracy, st.EMIterTime
	return out, nil
}
