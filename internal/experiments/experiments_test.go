package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"shine/internal/pagerank"
	"shine/internal/synth"
)

// sharedEnv builds the quick environment once for all tests in the
// package; generation plus learning is the expensive part.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func quickEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = QuickEnv() })
	if envErr != nil {
		t.Fatalf("QuickEnv: %v", envErr)
	}
	return envVal
}

func TestTable2Shape(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("Table 2 has %d rows", len(r.Rows))
	}
	// Rows are sorted by popularity; the paper's finding is that the
	// most prolific candidate tops the table and the least prolific
	// ends it.
	top, bottom := r.Rows[0], r.Rows[len(r.Rows)-1]
	if top.Papers < bottom.Papers {
		t.Errorf("most popular candidate has %d papers, least popular has %d — popularity inverted",
			top.Papers, bottom.Papers)
	}
	sum := 0.0
	for i, row := range r.Rows {
		if row.Popularity <= 0 {
			t.Errorf("row %d has non-positive popularity", i)
		}
		if i > 0 && row.Popularity > r.Rows[i-1].Popularity {
			t.Error("rows not sorted by popularity")
		}
		sum += row.Popularity
	}
	if sum > 1.0001 {
		t.Errorf("candidate popularity sums to %v > 1", sum)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("rendered table missing header")
	}
}

func TestTable3ListsTenPaths(t *testing.T) {
	e := quickEnv(t)
	rows := e.Table3()
	if len(rows) != 10 {
		t.Fatalf("Table 3 has %d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if row.Semantic == "" {
			t.Errorf("path %s has no semantic gloss", row.Path)
		}
		if row.Length != 2 && row.Length != 4 {
			t.Errorf("path %s has length %d", row.Path, row.Length)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("Table 4 has %d rows, want 9", len(r.Rows))
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.TypeSet] = row.Accuracy
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("%s accuracy %v out of range", row.TypeSet, row.Accuracy)
		}
	}
	// Paper shape: year is by far the weakest single type, and the
	// all-type union beats every single type.
	for _, single := range []string{"Coauthor", "Venue", "Term"} {
		if byName["Year"] >= byName[single] {
			t.Errorf("Year (%v) not weakest: %s = %v", byName["Year"], single, byName[single])
		}
		if byName["Coauthor+Venue+Term+Year"] < byName[single] {
			t.Errorf("all-type VSim (%v) below single type %s (%v)",
				byName["Coauthor+Venue+Term+Year"], single, byName[single])
		}
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Coauthor+Venue+Term+Year") {
		t.Error("rendered table missing rows")
	}
}

func TestTable5Shape(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Table5()
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("Table 5 has %d rows, want 6", len(r.Rows))
	}
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Approach] = row.Accuracy
	}
	// The paper's headline orderings.
	if byName["POP"] >= byName["VSim"] {
		t.Errorf("POP (%v) >= VSim (%v)", byName["POP"], byName["VSim"])
	}
	for _, s := range []string{"SHINE4-eom", "SHINE4", "SHINEall-eom", "SHINEall"} {
		if byName[s] <= byName["POP"] {
			t.Errorf("%s (%v) <= POP (%v)", s, byName[s], byName["POP"])
		}
	}
	// PageRank popularity vs uniform is a small effect in the paper
	// too (0.6–1.1 points); at this reduced scale allow a few
	// documents of slack rather than demanding a strict ordering.
	const slack = 0.03
	if byName["SHINE4"] < byName["SHINE4-eom"]-slack {
		t.Errorf("PageRank popularity (%v) materially below uniform (%v) for SHINE4",
			byName["SHINE4"], byName["SHINE4-eom"])
	}
	if byName["SHINEall"] < byName["SHINEall-eom"]-slack {
		t.Errorf("PageRank popularity (%v) materially below uniform (%v) for SHINEall",
			byName["SHINEall"], byName["SHINEall-eom"])
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SHINEall") {
		t.Error("rendered table missing rows")
	}
}

func TestFigure3Shape(t *testing.T) {
	e := quickEnv(t)
	rows, err := e.Figure3()
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("Figure 3 empty")
	}
	candidates := map[string]bool{}
	for _, row := range rows {
		candidates[row.Candidate] = true
		if row.Prob < 0 || row.Prob > 1 {
			t.Errorf("Pe(%s|%s) = %v out of range", row.Object, row.Candidate, row.Prob)
		}
	}
	if len(candidates) < 2 {
		t.Errorf("Figure 3 covers %d candidates, want >= 2", len(candidates))
	}
}

func TestFigure4Shape(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Figure4([]int{30, 60, 120})
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("Figure 4 has %d points", len(r.Points))
	}
	for i, p := range r.Points {
		if p.EMIterTime <= 0 || p.GDIterTime < 0 {
			t.Errorf("point %d has non-positive timings: %+v", i, p)
		}
		if p.Accuracy <= 0.4 {
			t.Errorf("point %d accuracy %v suspiciously low", i, p.Accuracy)
		}
	}
	// Scalability: quadrupling the mentions must not blow up the
	// per-iteration time superlinearly (allow 3x headroom over the 4x
	// linear growth for timing noise at this tiny scale).
	t0, t1 := r.Points[0].EMIterTime, r.Points[2].EMIterTime
	if t1 > t0*12 {
		t.Errorf("EM iteration time grew from %v (30 mentions) to %v (120): superlinear", t0, t1)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mentions") {
		t.Error("rendered figure missing header")
	}
	if _, err := e.Figure4([]int{0}); err == nil {
		t.Error("empty size list accepted")
	}
}

func TestFigure5Shape(t *testing.T) {
	e := quickEnv(t)
	pts, err := e.Figure5([]float64{0.2, 0.8})
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Accuracy <= 0.4 {
			t.Errorf("theta %v accuracy %v suspiciously low", p.Theta, p.Accuracy)
		}
	}
	// Default grid has 9 points.
	if pts, err = e.Figure5(nil); err != nil || len(pts) != 9 {
		t.Errorf("default grid: %d points, err %v", len(pts), err)
	}
}

func TestFigure6Shape(t *testing.T) {
	e := quickEnv(t)
	rows, stats, err := e.Figure6()
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("Figure 6 has %d rows", len(rows))
	}
	sum := 0.0
	for _, r := range rows {
		if r.Weight < 0 {
			t.Errorf("path %s has negative weight", r.Path)
		}
		sum += r.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %v", sum)
	}
	if stats.EMIterations < 1 {
		t.Error("no EM iterations recorded")
	}
}

func TestLambdaSweep(t *testing.T) {
	e := quickEnv(t)
	pts, err := e.LambdaSweep([]float64{0.2, 0.8})
	if err != nil {
		t.Fatalf("LambdaSweep: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts, err = e.LambdaSweep(nil); err != nil || len(pts) != 4 {
		t.Errorf("default sweep: %d points, err %v", len(pts), err)
	}
}

func TestPruningSweep(t *testing.T) {
	e := quickEnv(t)
	pts, err := e.PruningSweep([]int{0, 200})
	if err != nil {
		t.Fatalf("PruningSweep: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	exact, pruned := pts[0], pts[1]
	if exact.MaxSupport != 0 {
		t.Error("first point not exact")
	}
	// Generous pruning must not collapse accuracy.
	if pruned.Accuracy < exact.Accuracy-0.1 {
		t.Errorf("pruning to 200 dropped accuracy %v -> %v", exact.Accuracy, pruned.Accuracy)
	}
}

func TestCompareSGD(t *testing.T) {
	e := quickEnv(t)
	cmp, err := e.CompareSGD(20)
	if err != nil {
		t.Fatalf("CompareSGD: %v", err)
	}
	if cmp.FullAccuracy <= 0.4 || cmp.SGDAccuracy <= 0.4 {
		t.Errorf("accuracies suspiciously low: %+v", cmp)
	}
}

func TestCalibration(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Calibration(10)
	if err != nil {
		t.Fatalf("Calibration: %v", err)
	}
	if len(r.Bins) != 10 {
		t.Fatalf("got %d bins", len(r.Bins))
	}
	total := 0
	for _, b := range r.Bins {
		total += b.Count
	}
	if total != e.DS.Corpus.Len() {
		t.Errorf("bins cover %d predictions of %d documents", total, e.DS.Corpus.Len())
	}
	if r.ECE < 0 || r.ECE > 1 {
		t.Errorf("ECE = %v out of range", r.ECE)
	}
}

func TestAmbiguityBreakdown(t *testing.T) {
	e := quickEnv(t)
	pts, err := e.AmbiguityBreakdown()
	if err != nil {
		t.Fatalf("AmbiguityBreakdown: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("no ambiguity ranges populated")
	}
	mentions := 0
	for _, p := range pts {
		mentions += p.Mentions
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("range %d-%d accuracy %v", p.MinCands, p.MaxCands, p.Accuracy)
		}
		// Far above the random 1/candidates baseline.
		if p.Accuracy < 1.5/float64(p.MinCands) && p.Accuracy < 0.5 {
			t.Errorf("range %d-%d accuracy %v barely above random", p.MinCands, p.MaxCands, p.Accuracy)
		}
	}
	if mentions != e.DS.Corpus.Len() {
		t.Errorf("breakdown covers %d of %d mentions", mentions, e.DS.Corpus.Len())
	}
}

func TestNoiseSweep(t *testing.T) {
	netCfg := synthSmallNet()
	docCfg := synthSmallDocs()
	e := quickEnv(t)
	pts, err := e.NoiseSweep(netCfg, docCfg, []int{0, 16})
	if err != nil {
		t.Fatalf("NoiseSweep: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	clean, noisy := pts[0], pts[1]
	// More noise must not help VSim.
	if noisy.VSim > clean.VSim+0.05 {
		t.Errorf("VSim improved under noise: %v -> %v", clean.VSim, noisy.VSim)
	}
	if noisy.SHINEall <= 0.3 {
		t.Errorf("SHINE collapsed under noise: %v", noisy.SHINEall)
	}
}

func TestIMDBComparison(t *testing.T) {
	cfg := synth.DefaultIMDBConfig()
	cfg.RegularActors = 120
	cfg.NumDocs = 40
	r, err := IMDBComparison(cfg)
	if err != nil {
		t.Fatalf("IMDBComparison: %v", err)
	}
	if r.Documents != 40 {
		t.Errorf("documents = %d", r.Documents)
	}
	if r.SHINE <= r.POP {
		t.Errorf("SHINE (%v) not above POP (%v) on IMDb", r.SHINE, r.POP)
	}
	if r.EMIterations < 1 {
		t.Error("EM did not run")
	}
}

// synthSmallNet and synthSmallDocs mirror QuickEnv's scale for
// experiments that build their own datasets.
func synthSmallNet() synth.DBLPConfig {
	cfg := synth.DefaultDBLPConfig()
	cfg.RegularAuthors = 300
	cfg.AmbiguousGroups = 6
	cfg.Topics = 4
	cfg.MaxPapersPerAuthor = 30
	return cfg
}

func synthSmallDocs() synth.DocConfig {
	cfg := synth.DefaultDocConfig()
	cfg.NumDocs = 80
	return cfg
}

func TestSignificance(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Significance()
	if err != nil {
		t.Fatalf("Significance: %v", err)
	}
	if r.SHINEAccuracy <= r.VSimAccuracy {
		t.Errorf("SHINE (%v) not above VSim (%v)", r.SHINEAccuracy, r.VSimAccuracy)
	}
	if r.McNemar.PValue < 0 || r.McNemar.PValue > 1 {
		t.Errorf("p-value %v out of range", r.McNemar.PValue)
	}
	if r.McNemar.OnlyA <= r.McNemar.OnlyB {
		t.Errorf("discordants %d vs %d do not favour SHINE", r.McNemar.OnlyA, r.McNemar.OnlyB)
	}
}

func TestNILSweep(t *testing.T) {
	netCfg := synthSmallNet()
	docCfg := synthSmallDocs()
	docCfg.NILDocs = 30
	pts, err := NILSweep(netCfg, docCfg, []float64{0.02, 0.3})
	if err != nil {
		t.Fatalf("NILSweep: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	low, high := pts[0], pts[1]
	// A higher prior must not lower NIL recall and must not lower the
	// false-NIL rate's monotone counterpart.
	if high.NILRecall < low.NILRecall {
		t.Errorf("NIL recall fell with prior: %v -> %v", low.NILRecall, high.NILRecall)
	}
	if high.FalseNILRate < low.FalseNILRate-1e-9 {
		t.Errorf("false-NIL rate fell with prior: %v -> %v", low.FalseNILRate, high.FalseNILRate)
	}
	for _, p := range pts {
		if p.Accuracy <= 0.3 {
			t.Errorf("prior %v accuracy %v collapsed", p.Prior, p.Accuracy)
		}
	}
}

func TestWalkAblation(t *testing.T) {
	e := quickEnv(t)
	r, err := e.WalkAblation()
	if err != nil {
		t.Fatalf("WalkAblation: %v", err)
	}
	// Section 3.2's claim: constrained walks with learned weights beat
	// the intuitive unconstrained variant.
	if r.SHINEall <= r.Unconstrained {
		t.Errorf("SHINEall (%v) not above unconstrained walks (%v)", r.SHINEall, r.Unconstrained)
	}
}

func TestCentralityComparisonShape(t *testing.T) {
	e := quickEnv(t)
	r, err := e.CentralityComparison()
	if err != nil {
		t.Fatalf("CentralityComparison: %v", err)
	}
	if len(r.Rows) != len(pagerank.CentralityNames()) {
		t.Fatalf("comparison has %d rows, want one per backend (%d)",
			len(r.Rows), len(pagerank.CentralityNames()))
	}
	if r.Rows[0].Backend != pagerank.DefaultCentrality {
		t.Errorf("baseline row is %q, want %q", r.Rows[0].Backend, pagerank.DefaultCentrality)
	}
	for _, row := range r.Rows {
		if row.Total == 0 {
			t.Errorf("%s evaluated zero mentions", row.Backend)
		}
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("%s accuracy %v out of range", row.Backend, row.Accuracy)
		}
		if row.Backend != pagerank.DefaultCentrality {
			if row.McNemar.PValue < 0 || row.McNemar.PValue > 1 {
				t.Errorf("%s p-value %v out of range", row.Backend, row.McNemar.PValue)
			}
		}
	}
	// POP rides the baseline model's candidate source; on a corpus this
	// size full context should not lose to no context.
	if r.POP.Total == 0 {
		t.Error("POP row evaluated zero mentions")
	}
	if r.POP.Accuracy > r.Rows[0].Accuracy {
		t.Errorf("POP (%v) beat the full model (%v)", r.POP.Accuracy, r.Rows[0].Accuracy)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"backend", "pagerank", "degree", "hits", "ppr", "POP"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	h, rows := r.CSV()
	if len(h) == 0 || len(rows) != len(r.Rows)+1 {
		t.Errorf("CSV export: %d header cols, %d rows (want %d)", len(h), len(rows), len(r.Rows)+1)
	}
}
