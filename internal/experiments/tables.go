package experiments

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"text/tabwriter"

	"shine/internal/eval"
	"shine/internal/hin"
	"shine/internal/pagerank"

	"shine/internal/baselines"
	"shine/internal/corpus"
	"shine/internal/shine"
)

// ---------------------------------------------------------------- Table 2

// Table2Row is one candidate entity of the example group with its
// popularity (paper's Table 2).
type Table2Row struct {
	Entity     hin.ObjectID
	Name       string
	Papers     int
	Popularity float64
}

// Table2Result reproduces Table 2: PageRank-based entity popularity
// for every candidate of the most ambiguous surface name. The
// expected shape: the most prolific candidate has the highest
// popularity and the least prolific the lowest.
type Table2Result struct {
	Surface string
	Rows    []Table2Row
}

// Table2 computes the popularity of every candidate in the largest
// ambiguity group.
func (e *Env) Table2() (*Table2Result, error) {
	grp, err := e.largestGroup()
	if err != nil {
		return nil, err
	}
	res, err := pagerank.Compute(e.DS.Data.Graph, pagerank.DefaultOptions())
	if err != nil {
		return nil, err
	}
	pop, err := pagerank.EntityPopularity(e.DS.Data.Graph, res.Scores, e.DS.Data.Schema.Author)
	if err != nil {
		return nil, err
	}
	out := &Table2Result{Surface: grp.Surface}
	for _, m := range grp.Members {
		out.Rows = append(out.Rows, Table2Row{
			Entity:     m,
			Name:       e.DS.Data.Graph.Name(m),
			Papers:     e.DS.Data.PaperCount[m],
			Popularity: pop[m],
		})
	}
	slices.SortFunc(out.Rows, func(a, b Table2Row) int { return cmp.Compare(b.Popularity, a.Popularity) })
	return out, nil
}

// WriteTo renders the table.
func (r *Table2Result) WriteTo(w io.Writer) (int64, error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 2: entity popularity for candidates of %q\n", r.Surface)
	fmt.Fprintln(tw, "candidate\tpapers\tpopularity")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4g\n", row.Name, row.Papers, row.Popularity)
	}
	return 0, tw.Flush()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one meta-path with its semantic gloss.
type Table3Row struct {
	Path     string
	Length   int
	Semantic string
}

// Table3Semantics maps each Table 3 meta-path notation to the paper's
// semantic description of the relation it denotes.
func Table3Semantics() map[string]string {
	return map[string]string{
		"A-P-A":     "Authors who coauthor with author e",
		"A-P-A-P-A": "Authors who coauthor with the coauthors of author e",
		"A-P-V-P-A": "Authors who publish papers in the same venues as author e's papers",
		"A-P-V":     "Venues where author e publishes papers",
		"A-P-A-P-V": "Venues where the coauthors of author e publish papers",
		"A-P-T-P-V": "Venues that publish papers containing the same title terms as author e's papers",
		"A-P-T":     "Terms that author e's papers contain",
		"A-P-A-P-T": "Terms that the papers of author e's coauthors contain",
		"A-P-V-P-T": "Terms contained in papers published in the same venues as author e's papers",
		"A-P-Y":     "Years when author e's papers are published",
	}
}

// Table3 lists the meta-path set used by SHINEall, with the paper's
// semantic descriptions (Table 3).
func (e *Env) Table3() []Table3Row {
	semantics := Table3Semantics()
	rows := make([]Table3Row, 0, len(e.Paths10))
	for _, p := range e.Paths10 {
		rows = append(rows, Table3Row{Path: p.String(), Length: p.Len(), Semantic: semantics[p.String()]})
	}
	return rows
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one VSim configuration's result.
type Table4Row struct {
	TypeSet  string
	Correct  int
	Accuracy float64
}

// Table4Result reproduces Table 4: VSim accuracy per object type
// subset. Expected shape: every single type helps (year weakest by
// far), and the union of all four types is best or near-best.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 evaluates VSim under the paper's nine object type subsets.
func (e *Env) Table4() (*Table4Result, error) {
	d := e.DS.Data.Schema
	subsets := []struct {
		name  string
		types []hin.TypeID
	}{
		{"Coauthor", []hin.TypeID{d.Author}},
		{"Venue", []hin.TypeID{d.Venue}},
		{"Term", []hin.TypeID{d.Term}},
		{"Year", []hin.TypeID{d.Year}},
		{"Coauthor+Venue", []hin.TypeID{d.Author, d.Venue}},
		{"Coauthor+Term", []hin.TypeID{d.Author, d.Term}},
		{"Venue+Term", []hin.TypeID{d.Venue, d.Term}},
		{"Coauthor+Venue+Term", []hin.TypeID{d.Author, d.Venue, d.Term}},
		{"Coauthor+Venue+Term+Year", []hin.TypeID{d.Author, d.Venue, d.Term, d.Year}},
	}
	out := &Table4Result{}
	for _, sub := range subsets {
		vs, err := baselines.NewVSim(e.DS.Data.Graph, d.Author, sub.types...)
		if err != nil {
			return nil, err
		}
		s, err := eval.Evaluate(vs, e.DS.Corpus)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Table4Row{TypeSet: sub.name, Correct: s.Correct, Accuracy: s.Accuracy})
	}
	return out, nil
}

// WriteTo renders the table.
func (r *Table4Result) WriteTo(w io.Writer) (int64, error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 4: VSim with different object type sets")
	fmt.Fprintln(tw, "object type set\t# correctly linked\taccuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\n", row.TypeSet, row.Correct, row.Accuracy)
	}
	return 0, tw.Flush()
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one approach's result.
type Table5Row struct {
	Approach string
	Correct  int
	Accuracy float64
}

// Table5Result reproduces Table 5: all six approaches on the full
// corpus. Expected shape, as in the paper:
//
//	POP < VSim < SHINE4-eom ≤ SHINE4 ≤ SHINEall-eom ≤ SHINEall
//
// i.e. context beats popularity alone, the object model beats raw
// vector similarity, PageRank popularity beats uniform when combined
// with the object model, and more meta-paths beat fewer.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 evaluates POP, VSim and the four SHINE configurations.
func (e *Env) Table5() (*Table5Result, error) {
	d := e.DS.Data.Schema
	out := &Table5Result{}
	add := func(name string, s eval.Summary) {
		out.Rows = append(out.Rows, Table5Row{Approach: name, Correct: s.Correct, Accuracy: s.Accuracy})
	}

	pop, err := baselines.NewPOP(e.DS.Data.Graph, d.Author, nil, pagerank.DefaultOptions())
	if err != nil {
		return nil, err
	}
	s, err := eval.Evaluate(pop, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	add("POP", s)

	vs, err := baselines.NewVSim(e.DS.Data.Graph, d.Author, d.Author, d.Venue, d.Term, d.Year)
	if err != nil {
		return nil, err
	}
	if s, err = eval.Evaluate(vs, e.DS.Corpus); err != nil {
		return nil, err
	}
	add("VSim", s)

	uniform := func(c *shine.Config) { c.Popularity = shine.PopularityUniform }
	if s, _, err = e.evaluateShine(e.Paths4, uniform, e.DS.Corpus); err != nil {
		return nil, err
	}
	add("SHINE4-eom", s)
	if s, _, err = e.evaluateShine(e.Paths4, nil, e.DS.Corpus); err != nil {
		return nil, err
	}
	add("SHINE4", s)
	if s, _, err = e.evaluateShine(e.Paths10, uniform, e.DS.Corpus); err != nil {
		return nil, err
	}
	add("SHINEall-eom", s)
	if s, _, err = e.evaluateShine(e.Paths10, nil, e.DS.Corpus); err != nil {
		return nil, err
	}
	add("SHINEall", s)
	return out, nil
}

// WriteTo renders the table.
func (r *Table5Result) WriteTo(w io.Writer) (int64, error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 5: experimental results of all approaches")
	fmt.Fprintln(tw, "approach\t# correctly linked\taccuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\n", row.Approach, row.Correct, row.Accuracy)
	}
	return 0, tw.Flush()
}

// ---------------------------------------------------------------- Figure 3

// Figure3Row is one (candidate, object) probability.
type Figure3Row struct {
	Candidate string
	Object    string
	Type      string
	Prob      float64
}

// Figure3 reproduces the Figure 3 illustration: for the first
// document mentioning the most ambiguous name, the entity-specific
// object model probability Pe(v) of each document object under the
// three most popular candidates.
func (e *Env) Figure3() ([]Figure3Row, error) {
	grp, err := e.largestGroup()
	if err != nil {
		return nil, err
	}
	var doc *corpus.Document
	for _, dd := range e.DS.Corpus.Docs {
		if dd.Mention == grp.Surface {
			doc = dd
			break
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("experiments: no document mentions %q", grp.Surface)
	}
	t2, err := e.Table2()
	if err != nil {
		return nil, err
	}
	top := t2.Rows
	if len(top) > 3 {
		top = top[:3]
	}
	m, err := e.newModel(e.Paths10, nil)
	if err != nil {
		return nil, err
	}
	g := e.DS.Data.Graph
	var rows []Figure3Row
	for _, cand := range top {
		for _, oc := range doc.Objects {
			p, err := m.EntitySpecificProb(cand.Entity, oc.Object)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure3Row{
				Candidate: cand.Name,
				Object:    g.Name(oc.Object),
				Type:      g.Schema().Type(g.TypeOf(oc.Object)).Abbrev,
				Prob:      p,
			})
		}
	}
	return rows, nil
}
