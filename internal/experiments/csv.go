package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV export: each experiment's result can be rendered as a header
// plus rows, ready for plotting tools. WriteCSV streams them through
// encoding/csv.

// WriteCSV writes one header and the rows.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiments: CSV row has %d fields, header has %d", len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func f64(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Microseconds())/1000, 'f', 3, 64)
}

// CSV renders Table 2.
func (r *Table2Result) CSV() ([]string, [][]string) {
	header := []string{"candidate", "papers", "popularity"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, strconv.Itoa(row.Papers), f64(row.Popularity)})
	}
	return header, rows
}

// CSV renders Table 4.
func (r *Table4Result) CSV() ([]string, [][]string) {
	header := []string{"type_set", "correct", "accuracy"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.TypeSet, strconv.Itoa(row.Correct), f64(row.Accuracy)})
	}
	return header, rows
}

// CSV renders Table 5.
func (r *Table5Result) CSV() ([]string, [][]string) {
	header := []string{"approach", "correct", "accuracy"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Approach, strconv.Itoa(row.Correct), f64(row.Accuracy)})
	}
	return header, rows
}

// CSV renders both Figure 4 panels.
func (r *Figure4Result) CSV() ([]string, [][]string) {
	header := []string{"mentions", "em_iter_ms", "gd_iter_ms", "accuracy"}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Mentions), ms(p.EMIterTime), ms(p.GDIterTime), f64(p.Accuracy),
		})
	}
	return header, rows
}

// Figure5CSV renders the θ sweep.
func Figure5CSV(pts []Figure5Point) ([]string, [][]string) {
	header := []string{"theta", "accuracy"}
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{f64(p.Theta), f64(p.Accuracy)})
	}
	return header, rows
}

// Figure6CSV renders the learned weights.
func Figure6CSV(rows6 []Figure6Row) ([]string, [][]string) {
	header := []string{"meta_path", "weight"}
	rows := make([][]string, 0, len(rows6))
	for _, r := range rows6 {
		rows = append(rows, []string{r.Path, f64(r.Weight)})
	}
	return header, rows
}

// Figure3CSV renders the per-candidate object model.
func Figure3CSV(rows3 []Figure3Row) ([]string, [][]string) {
	header := []string{"candidate", "object", "type", "prob"}
	rows := make([][]string, 0, len(rows3))
	for _, r := range rows3 {
		rows = append(rows, []string{r.Candidate, r.Object, r.Type, f64(r.Prob)})
	}
	return header, rows
}
