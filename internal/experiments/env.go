// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5) over the synthetic dataset: Table 2
// (entity popularity), Figure 3 (entity object model), Table 3
// (meta-path set), Table 4 (VSim by object type subset), Table 5 (all
// approaches), Figure 4(a) (per-iteration learning time vs. mention
// count), Figure 4(b) (accuracy vs. mention count), Figure 5
// (θ sweep, Section 5.4) and Figure 6 (learned meta-path weights,
// Section 5.5), plus ablations the paper discusses in passing
// (PageRank λ, full vs. stochastic gradient).
package experiments

import (
	"fmt"

	"shine/internal/corpus"
	"shine/internal/eval"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/synth"
)

// Env is a generated dataset shared across experiments, so that every
// table and figure of one run describes the same data — as in the
// paper, where all of Section 5 uses one DBLP snapshot and one
// 709-document corpus.
type Env struct {
	DS *synth.Dataset
	// Paths10 is the Table 3 meta-path set; Paths4 its length-2
	// subset (the SHINE4 configuration).
	Paths10, Paths4 []metapath.Path
}

// NewEnv generates the dataset.
func NewEnv(netCfg synth.DBLPConfig, docCfg synth.DocConfig) (*Env, error) {
	ds, err := synth.BuildDataset(netCfg, docCfg)
	if err != nil {
		return nil, err
	}
	return &Env{
		DS:      ds,
		Paths10: metapath.DBLPPaperPaths(ds.Data.Schema),
		Paths4:  metapath.DBLPLength2Paths(ds.Data.Schema),
	}, nil
}

// DefaultEnv generates the full-scale default dataset (≈2,000
// authors, 700 documents).
func DefaultEnv() (*Env, error) {
	return NewEnv(synth.DefaultDBLPConfig(), synth.DefaultDocConfig())
}

// QuickEnv generates a reduced dataset for fast tests: ~400 authors
// and 120 documents.
func QuickEnv() (*Env, error) {
	net := synth.DefaultDBLPConfig()
	net.RegularAuthors = 400
	net.AmbiguousGroups = 8
	net.Topics = 4
	net.MaxPapersPerAuthor = 30
	doc := synth.DefaultDocConfig()
	doc.NumDocs = 120
	return NewEnv(net, doc)
}

// newModel builds a SHINE model over the environment's graph and
// corpus with the given path set and configuration.
func (e *Env) newModel(paths []metapath.Path, mutate func(*shine.Config)) (*shine.Model, error) {
	cfg := shine.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	return shine.New(e.DS.Data.Graph, e.DS.Data.Schema.Author, paths, e.DS.Corpus, cfg)
}

// evaluateShine builds, learns and evaluates one SHINE configuration
// on a corpus, returning the evaluation summary.
func (e *Env) evaluateShine(paths []metapath.Path, mutate func(*shine.Config), c *corpus.Corpus) (eval.Summary, *shine.Model, error) {
	m, err := e.newModel(paths, mutate)
	if err != nil {
		return eval.Summary{}, nil, err
	}
	if _, err := m.Learn(c); err != nil {
		return eval.Summary{}, nil, err
	}
	s, err := eval.Evaluate(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	}), c)
	if err != nil {
		return eval.Summary{}, nil, err
	}
	return s, m, nil
}

// evalModel evaluates an already-configured (and typically learned)
// model on a corpus.
func (e *Env) evalModel(m *shine.Model, c *corpus.Corpus) (eval.Summary, error) {
	return eval.Evaluate(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	}), c)
}

// largestGroup returns the ambiguity group with the most members —
// the synthetic stand-in for the paper's 45-way "Wei Wang" example.
func (e *Env) largestGroup() (synth.AmbiguityGroup, error) {
	if len(e.DS.Data.Groups) == 0 {
		return synth.AmbiguityGroup{}, fmt.Errorf("experiments: dataset has no ambiguity groups")
	}
	best := e.DS.Data.Groups[0]
	for _, g := range e.DS.Data.Groups[1:] {
		if len(g.Members) > len(best.Members) {
			best = g
		}
	}
	return best, nil
}
