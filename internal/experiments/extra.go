package experiments

import (
	"fmt"

	"shine/internal/baselines"
	"shine/internal/corpus"
	"shine/internal/eval"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/synth"
)

// These experiments go beyond the paper's tables: calibration of the
// posterior, accuracy as a function of ambiguity, robustness to
// document noise, and the IMDb generality claim measured rather than
// asserted.

// CalibrationResult reports how trustworthy SHINEall's posterior is
// as a confidence score.
type CalibrationResult struct {
	Bins []eval.CalibrationBin
	// ECE is the expected calibration error (0 = perfectly
	// calibrated).
	ECE float64
}

// Calibration learns SHINEall and buckets its top posteriors against
// correctness.
func (e *Env) Calibration(bins int) (*CalibrationResult, error) {
	m, err := e.newModel(e.Paths10, nil)
	if err != nil {
		return nil, err
	}
	if _, err := m.Learn(e.DS.Corpus); err != nil {
		return nil, err
	}
	var posteriors []float64
	var correct []bool
	for _, doc := range e.DS.Corpus.Docs {
		r, err := m.Link(doc)
		if err != nil {
			continue
		}
		posteriors = append(posteriors, r.Candidates[0].Posterior)
		correct = append(correct, r.Entity == doc.Gold)
	}
	cb, err := eval.Calibration(posteriors, correct, bins)
	if err != nil {
		return nil, err
	}
	return &CalibrationResult{Bins: cb, ECE: eval.ExpectedCalibrationError(cb)}, nil
}

// AmbiguityPoint is the accuracy over mentions with a given candidate
// count range.
type AmbiguityPoint struct {
	// MinCands and MaxCands bound the candidate set size, inclusive.
	MinCands, MaxCands int
	Mentions           int
	Accuracy           float64
}

// AmbiguityBreakdown slices SHINEall accuracy by how ambiguous each
// mention is. Expected shape: accuracy decreases with the candidate
// count, but far more slowly than the 1/|candidates| random baseline.
func (e *Env) AmbiguityBreakdown() ([]AmbiguityPoint, error) {
	m, err := e.newModel(e.Paths10, nil)
	if err != nil {
		return nil, err
	}
	if _, err := m.Learn(e.DS.Corpus); err != nil {
		return nil, err
	}
	ranges := []AmbiguityPoint{
		{MinCands: 2, MaxCands: 4},
		{MinCands: 5, MaxCands: 8},
		{MinCands: 9, MaxCands: 1 << 30},
	}
	correct := make([]int, len(ranges))
	for _, doc := range e.DS.Corpus.Docs {
		n := len(m.Candidates(doc.Mention))
		for ri := range ranges {
			if n < ranges[ri].MinCands || n > ranges[ri].MaxCands {
				continue
			}
			ranges[ri].Mentions++
			r, err := m.Link(doc)
			if err == nil && r.Entity == doc.Gold {
				correct[ri]++
			}
		}
	}
	var out []AmbiguityPoint
	for ri, rg := range ranges {
		if rg.Mentions == 0 {
			continue
		}
		rg.Accuracy = float64(correct[ri]) / float64(rg.Mentions)
		out = append(out, rg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no mentions in any ambiguity range")
	}
	return out, nil
}

// NoisePoint is one noise level's accuracies.
type NoisePoint struct {
	NoiseTerms int
	VSim       float64
	SHINEall   float64
}

// NoiseSweep regenerates the document corpus at increasing noise
// levels over a fixed network and compares VSim with SHINEall.
// Expected shape: both degrade with noise, SHINE more slowly — the
// generic object model absorbs background vocabulary that corrupts a
// raw cosine.
func (e *Env) NoiseSweep(netCfg synth.DBLPConfig, docCfg synth.DocConfig, noiseLevels []int) ([]NoisePoint, error) {
	if len(noiseLevels) == 0 {
		noiseLevels = []int{0, 8, 16, 32}
	}
	data, err := synth.GenerateDBLP(netCfg)
	if err != nil {
		return nil, err
	}
	d := data.Schema
	ing, err := corpus.NewIngester(data.Graph, corpus.DBLPIngestConfig(d))
	if err != nil {
		return nil, err
	}

	var out []NoisePoint
	for _, noise := range noiseLevels {
		cfg := docCfg
		cfg.NoiseTerms = noise
		raws, err := synth.GenerateDocs(data, cfg)
		if err != nil {
			return nil, err
		}
		c := &corpus.Corpus{}
		for _, rd := range raws {
			c.Add(ing.Ingest(rd.ID, rd.Mention, rd.Gold, rd.Text))
		}

		vs, err := baselines.NewVSim(data.Graph, d.Author, d.Author, d.Venue, d.Term, d.Year)
		if err != nil {
			return nil, err
		}
		vsSum, err := eval.Evaluate(vs, c)
		if err != nil {
			return nil, err
		}

		m, err := shine.New(data.Graph, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if _, err := m.Learn(c); err != nil {
			return nil, err
		}
		shSum, err := eval.Evaluate(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
			r, err := m.Link(doc)
			if err != nil {
				return hin.NoObject, err
			}
			return r.Entity, nil
		}), c)
		if err != nil {
			return nil, err
		}
		out = append(out, NoisePoint{NoiseTerms: noise, VSim: vsSum.Accuracy, SHINEall: shSum.Accuracy})
	}
	return out, nil
}

// WalkAblationResult isolates the value of meta-path constraints:
// the same probabilistic model scored with unconstrained uniform
// random walks (the "intuitive way" Section 3.2 rejects) versus
// SHINE's constrained, weight-learned walks.
type WalkAblationResult struct {
	Unconstrained float64
	SHINEall      float64
}

// WalkAblation evaluates both variants on the environment corpus.
func (e *Env) WalkAblation() (*WalkAblationResult, error) {
	d := e.DS.Data.Schema
	uw, err := baselines.NewUWalk(e.DS.Data.Graph, d.Author, e.DS.Corpus, 4, shine.DefaultConfig().Theta)
	if err != nil {
		return nil, err
	}
	uwSum, err := eval.Evaluate(uw, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	shSum, _, err := e.evaluateShine(e.Paths10, nil, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	return &WalkAblationResult{Unconstrained: uwSum.Accuracy, SHINEall: shSum.Accuracy}, nil
}

// NILPoint is one NIL-prior setting's evaluation over a corpus mixing
// in-network and out-of-network mentions.
type NILPoint struct {
	Prior float64
	// Accuracy is over all documents (NIL gold counts as correct only
	// when predicted NIL).
	Accuracy float64
	// NILRecall is the fraction of truly-NIL mentions predicted NIL;
	// FalseNILRate the fraction of in-network mentions wrongly
	// predicted NIL.
	NILRecall, FalseNILRate float64
}

// NILSweep evaluates the NIL extension: a corpus with out-of-network
// mentions mixed in, linked by LinkNIL under a range of priors.
// Expected shape: raising the prior trades false NILs for NIL recall,
// with overall accuracy peaking at a moderate prior.
func NILSweep(netCfg synth.DBLPConfig, docCfg synth.DocConfig, priors []float64) ([]NILPoint, error) {
	if len(priors) == 0 {
		priors = []float64{0.01, 0.05, 0.15, 0.3}
	}
	if docCfg.NILDocs == 0 {
		docCfg.NILDocs = docCfg.NumDocs / 4
	}
	ds, err := synth.BuildDataset(netCfg, docCfg)
	if err != nil {
		return nil, err
	}
	d := ds.Data.Schema
	m, err := shine.New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, shine.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// Learn on the in-network portion only; learning is unsupervised
	// but NIL documents would pull weights towards impostor contexts.
	inNet := &corpus.Corpus{}
	for _, doc := range ds.Corpus.Docs {
		if doc.Gold != hin.NoObject {
			inNet.Add(doc)
		}
	}
	if _, err := m.Learn(inNet); err != nil {
		return nil, err
	}

	var out []NILPoint
	for _, prior := range priors {
		prior := prior
		s, err := eval.EvaluateNIL(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
			r, err := m.LinkNIL(doc, prior)
			if err != nil {
				return hin.NoObject, err
			}
			return r.Entity, nil
		}), ds.Corpus)
		if err != nil {
			return nil, err
		}
		pt := NILPoint{Prior: prior, Accuracy: s.Accuracy}
		if s.GoldNIL > 0 {
			pt.NILRecall = float64(s.CorrectNIL) / float64(s.GoldNIL)
		}
		if inNetCount := s.Total - s.GoldNIL; inNetCount > 0 {
			pt.FalseNILRate = float64(s.FalseNIL) / float64(inNetCount)
		}
		out = append(out, pt)
	}
	return out, nil
}

// SignificanceResult reports McNemar's test between SHINEall and
// VSim over the environment corpus — the statistical backing for the
// paper's "significantly outperforms" claim.
type SignificanceResult struct {
	SHINEAccuracy, VSimAccuracy float64
	McNemar                     eval.McNemarResult
}

// Significance runs both systems on the full corpus and tests the
// difference.
func (e *Env) Significance() (*SignificanceResult, error) {
	d := e.DS.Data.Schema
	vs, err := baselines.NewVSim(e.DS.Data.Graph, d.Author, d.Author, d.Venue, d.Term, d.Year)
	if err != nil {
		return nil, err
	}
	m, err := e.newModel(e.Paths10, nil)
	if err != nil {
		return nil, err
	}
	if _, err := m.Learn(e.DS.Corpus); err != nil {
		return nil, err
	}
	shLinker := eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	})
	res := &SignificanceResult{}
	sh, err := eval.Evaluate(shLinker, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	vv, err := eval.Evaluate(vs, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	res.SHINEAccuracy, res.VSimAccuracy = sh.Accuracy, vv.Accuracy
	mc, err := eval.CompareLinkers(shLinker, vs, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	res.McNemar = mc
	return res, nil
}

// IMDBResult is the generality experiment: the unchanged model over
// the IMDb schema.
type IMDBResult struct {
	Documents int
	POP       float64
	SHINE     float64
	// EMIterations shows learning converged on the new schema too.
	EMIterations int
}

// IMDBComparison generates an IMDb dataset and runs actor linking
// with the paper's 14 actor meta-paths, against the POP baseline.
func IMDBComparison(cfg synth.IMDBConfig) (*IMDBResult, error) {
	data, err := synth.GenerateIMDB(cfg)
	if err != nil {
		return nil, err
	}
	res := &IMDBResult{Documents: data.Corpus.Len()}

	pop, err := baselines.NewPOP(data.Graph, data.Schema.Actor, nil, shine.DefaultConfig().PageRank)
	if err != nil {
		return nil, err
	}
	popSum, err := eval.Evaluate(pop, data.Corpus)
	if err != nil {
		return nil, err
	}
	res.POP = popSum.Accuracy

	m, err := shine.New(data.Graph, data.Schema.Actor, metapath.IMDBActorPaths(data.Schema), data.Corpus, shine.DefaultConfig())
	if err != nil {
		return nil, err
	}
	stats, err := m.Learn(data.Corpus)
	if err != nil {
		return nil, err
	}
	res.EMIterations = stats.EMIterations
	shSum, err := eval.Evaluate(eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	}), data.Corpus)
	if err != nil {
		return nil, err
	}
	res.SHINE = shSum.Accuracy
	return res, nil
}
