package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"shine/internal/baselines"
	"shine/internal/corpus"
	"shine/internal/eval"
	"shine/internal/hin"
	"shine/internal/pagerank"
	"shine/internal/shine"
)

// CentralityRow is one popularity backend's head-to-head result: a
// full SHINE model trained with P(e) behind that backend, evaluated on
// the shared corpus, and tested against the pagerank-backed baseline
// model with McNemar over paired outcomes.
type CentralityRow struct {
	Backend string
	// Accuracy and Correct/Total come from eval.Evaluate on the whole
	// corpus.
	Accuracy float64
	Correct  int
	Total    int
	// CentralitySeconds is the offline wall-clock of the backend's
	// whole-network run during model construction; Iterations its
	// sweep count (1 for degree).
	CentralitySeconds float64
	Iterations        int
	// LinkMicros is the mean serving-path latency per linked mention
	// during the evaluation pass, in microseconds.
	LinkMicros float64
	// McNemar compares this backend against the pagerank baseline
	// (OnlyA = pagerank-only correct, OnlyB = this-backend-only
	// correct). Zero-valued for the baseline row itself.
	McNemar     eval.McNemarResult
	Significant bool
}

// CentralityResult is the backend comparison: the paper's PageRank
// popularity against degree, HITS and type-personalized PageRank, all
// inside otherwise identical SHINE models, plus the context-free POP
// baseline resolving candidates through the pagerank model's own
// candidate source (so its McNemar pairing is candidate-set-identical
// by construction).
type CentralityResult struct {
	// Alpha is the significance level the Significant flags use.
	Alpha float64
	// Rows holds one entry per backend, pagerank (the baseline) first.
	Rows []CentralityRow
	// POP is the popularity-only baseline over the same candidate
	// source as the baseline model, McNemar-tested against it.
	POP CentralityRow
}

// CentralityComparison trains one SHINE model per centrality backend
// on the environment's dataset — EM included, since popularity enters
// the E-step posteriors and each backend deserves its own learned
// weights — and evaluates them head-to-head with McNemar significance
// against the pagerank-backed model at α = 0.05.
func (e *Env) CentralityComparison() (*CentralityResult, error) {
	const alpha = 0.05
	out := &CentralityResult{Alpha: alpha}

	var baseline eval.Linker
	var baseModel *shine.Model
	for _, name := range pagerank.CentralityNames() {
		m, err := e.newModel(e.Paths10, func(c *shine.Config) { c.Centrality = name })
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s model: %w", name, err)
		}
		if _, err := m.Learn(e.DS.Corpus); err != nil {
			return nil, fmt.Errorf("experiments: learning %s model: %w", name, err)
		}
		sum, err := e.evalModel(m, e.DS.Corpus)
		if err != nil {
			return nil, err
		}
		parts := m.Parts()
		row := CentralityRow{
			Backend:           name,
			Accuracy:          sum.Accuracy,
			Correct:           sum.Correct,
			Total:             sum.Total,
			CentralitySeconds: parts.PRSeconds,
			Iterations:        parts.PRIterations,
		}
		if sum.Total > 0 {
			row.LinkMicros = sum.Elapsed.Seconds() * 1e6 / float64(sum.Total)
		}
		linker := modelLinker(m)
		if name == pagerank.DefaultCentrality {
			baseline, baseModel = linker, m
		} else {
			mc, err := eval.CompareLinkers(baseline, linker, e.DS.Corpus)
			if err != nil {
				return nil, err
			}
			row.McNemar = mc
			row.Significant = mc.Significant(alpha)
		}
		out.Rows = append(out.Rows, row)
	}

	// POP rides along on the baseline model's candidate source, making
	// the paired outcomes candidate-set-identical — the property the
	// McNemar pairing needs.
	pop, err := baselines.NewPOP(e.DS.Data.Graph, e.DS.Data.Schema.Author,
		baseModel.CandidateSource(), shine.DefaultConfig().PageRank)
	if err != nil {
		return nil, err
	}
	popSum, err := eval.Evaluate(pop, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	out.POP = CentralityRow{
		Backend:  "POP (no context)",
		Accuracy: popSum.Accuracy,
		Correct:  popSum.Correct,
		Total:    popSum.Total,
	}
	if popSum.Total > 0 {
		out.POP.LinkMicros = popSum.Elapsed.Seconds() * 1e6 / float64(popSum.Total)
	}
	mc, err := eval.CompareLinkers(baseline, pop, e.DS.Corpus)
	if err != nil {
		return nil, err
	}
	out.POP.McNemar = mc
	out.POP.Significant = mc.Significant(alpha)
	return out, nil
}

// modelLinker adapts a SHINE model to the eval.Linker interface.
func modelLinker(m *shine.Model) eval.Linker {
	return eval.LinkerFunc(func(doc *corpus.Document) (hin.ObjectID, error) {
		r, err := m.Link(doc)
		if err != nil {
			return hin.NoObject, err
		}
		return r.Entity, nil
	})
}

// WriteTo renders the comparison table.
func (r *CentralityResult) WriteTo(w io.Writer) (int64, error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Extra: centrality backends for P(e), head-to-head (McNemar vs pagerank)")
	fmt.Fprintln(tw, "backend\taccuracy\tcorrect\toffline(s)\titers\tlink(µs)\tonly-pr\tonly-it\tp\tsignif")
	rows := append(append([]CentralityRow(nil), r.Rows...), r.POP)
	for _, row := range rows {
		p, sig := "-", "-"
		if row.Backend != pagerank.DefaultCentrality {
			p = fmt.Sprintf("%.3g", row.McNemar.PValue)
			if row.Significant {
				sig = fmt.Sprintf("yes (α=%.2f)", r.Alpha)
			} else {
				sig = "no"
			}
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%d/%d\t%.3f\t%d\t%.1f\t%d\t%d\t%s\t%s\n",
			row.Backend, row.Accuracy, row.Correct, row.Total,
			row.CentralitySeconds, row.Iterations, row.LinkMicros,
			row.McNemar.OnlyA, row.McNemar.OnlyB, p, sig)
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	return 0, nil
}

// CSV exports the comparison for -csv.
func (r *CentralityResult) CSV() ([]string, [][]string) {
	header := []string{"backend", "accuracy", "correct", "total",
		"centrality_seconds", "iterations", "link_micros",
		"only_pagerank", "only_backend", "p_value", "significant"}
	var rows [][]string
	for _, row := range append(append([]CentralityRow(nil), r.Rows...), r.POP) {
		rows = append(rows, []string{
			row.Backend,
			fmt.Sprintf("%.4f", row.Accuracy),
			fmt.Sprintf("%d", row.Correct),
			fmt.Sprintf("%d", row.Total),
			fmt.Sprintf("%.4f", row.CentralitySeconds),
			fmt.Sprintf("%d", row.Iterations),
			fmt.Sprintf("%.2f", row.LinkMicros),
			fmt.Sprintf("%d", row.McNemar.OnlyA),
			fmt.Sprintf("%d", row.McNemar.OnlyB),
			fmt.Sprintf("%.4g", row.McNemar.PValue),
			fmt.Sprintf("%v", row.Significant),
		})
	}
	return header, rows
}
