package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"x, y", "3"}})
	if err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header missing: %q", out)
	}
	// Commas inside fields must be quoted.
	if !strings.Contains(out, `"x, y"`) {
		t.Errorf("field not quoted: %q", out)
	}
}

func TestWriteCSVRejectsRaggedRows(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1"}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestResultCSVShapes(t *testing.T) {
	t2 := &Table2Result{Rows: []Table2Row{{Name: "Wei Wang 0001", Papers: 5, Popularity: 0.01}}}
	h, rows := t2.CSV()
	if len(h) != 3 || len(rows) != 1 || rows[0][0] != "Wei Wang 0001" {
		t.Errorf("Table2 CSV = %v %v", h, rows)
	}

	t4 := &Table4Result{Rows: []Table4Row{{TypeSet: "Year", Correct: 10, Accuracy: 0.4}}}
	if h, rows := t4.CSV(); len(h) != 3 || rows[0][2] != "0.4" {
		t.Errorf("Table4 CSV = %v %v", h, rows)
	}

	t5 := &Table5Result{Rows: []Table5Row{{Approach: "POP", Correct: 3, Accuracy: 0.5}}}
	if h, rows := t5.CSV(); len(h) != 3 || rows[0][0] != "POP" {
		t.Errorf("Table5 CSV = %v %v", h, rows)
	}

	f4 := &Figure4Result{Points: []Figure4Point{{Mentions: 100, EMIterTime: 5 * time.Millisecond, Accuracy: 0.9}}}
	if h, rows := f4.CSV(); len(h) != 4 || rows[0][0] != "100" || rows[0][1] != "5.000" {
		t.Errorf("Figure4 CSV = %v %v", h, rows)
	}

	if h, rows := Figure5CSV([]Figure5Point{{Theta: 0.2, Accuracy: 0.88}}); len(h) != 2 || rows[0][0] != "0.2" {
		t.Errorf("Figure5 CSV = %v %v", h, rows)
	}
	if h, rows := Figure6CSV([]Figure6Row{{Path: "A-P-V", Weight: 0.1}}); len(h) != 2 || rows[0][0] != "A-P-V" {
		t.Errorf("Figure6 CSV = %v %v", h, rows)
	}
	if h, rows := Figure3CSV([]Figure3Row{{Candidate: "c", Object: "o", Type: "V", Prob: 0.5}}); len(h) != 4 || rows[0][3] != "0.5" {
		t.Errorf("Figure3 CSV = %v %v", h, rows)
	}
}

// TestCSVEndToEnd writes a real experiment result and parses it back.
func TestCSVEndToEnd(t *testing.T) {
	e := quickEnv(t)
	r, err := e.Table4()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	h, rows := r.CSV()
	if err := WriteCSV(&buf, h, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 { // header + 9 subsets
		t.Errorf("CSV has %d lines, want 10", len(lines))
	}
}
