package sparse

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
)

// Dist is an immutable sparse distribution in CSR-style layout:
// parallel arrays of strictly ascending int32 indices and their
// non-zero float64 values. It stores the same information as a Vector
// but without per-entry hashing: lookups are binary searches, scans
// are cache-friendly array walks, and the footprint per entry is 12
// bytes plus no bucket overhead — the representation PathSim-style
// meta-path engines use for frozen walk statistics.
//
// The zero value is a usable empty distribution. A Dist must never be
// mutated after construction; all methods are read-only and the
// backing arrays may be shared by many readers (the walker cache
// hands the same Dist to every caller).
type Dist struct {
	idx []int32
	val []float64
}

// Freeze converts a map-backed Vector into a Dist. Entries whose
// value is exactly zero are dropped (a Vector built through Set/Add
// never stores them, but a literal might). The input is not retained.
func Freeze(v Vector) Dist {
	if len(v) == 0 {
		return Dist{}
	}
	idx := make([]int32, 0, len(v))
	for i, x := range v {
		if x != 0 {
			idx = append(idx, i)
		}
	}
	slices.Sort(idx)
	val := make([]float64, len(idx))
	for k, i := range idx {
		val[k] = v[i]
	}
	return Dist{idx: idx, val: val}
}

// Thaw converts the Dist back into a map-backed Vector. The result is
// freshly allocated and owned by the caller.
func (d Dist) Thaw() Vector {
	v := make(Vector, len(d.idx))
	for k, i := range d.idx {
		v[i] = d.val[k]
	}
	return v
}

// UnitDist returns the distribution with a single entry of 1 at index
// i — the starting distribution of a random walk rooted at object i.
func UnitDist(i int32) Dist {
	return Dist{idx: []int32{i}, val: []float64{1}}
}

// Len returns the number of stored (non-zero) entries.
func (d Dist) Len() int { return len(d.idx) }

// At returns the k-th entry in ascending index order.
func (d Dist) At(k int) (int32, float64) { return d.idx[k], d.val[k] }

// Get returns the value at index i (zero if absent) by binary search.
func (d Dist) Get(i int32) float64 {
	lo, hi := 0, len(d.idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.idx[mid] < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.idx) && d.idx[lo] == i {
		return d.val[lo]
	}
	return 0
}

// GetMany writes the value at each index of sorted into out (zero for
// absent indices) with a single linear merge over the two ascending
// sequences. sorted must be in ascending order; out must have
// len(sorted) capacity. This is the serving-path primitive: scoring a
// document merges its sorted object IDs against a frozen mixture in
// O(|doc| + |dist|) with no hashing.
func (d Dist) GetMany(sorted []int32, out []float64) {
	k := 0
	for j, i := range sorted {
		for k < len(d.idx) && d.idx[k] < i {
			k++
		}
		if k < len(d.idx) && d.idx[k] == i {
			out[j] = d.val[k]
		} else {
			out[j] = 0
		}
	}
}

// Sum returns the sum of all entries, accumulated in ascending index
// order (deterministic).
func (d Dist) Sum() float64 {
	s := 0.0
	for _, x := range d.val {
		s += x
	}
	return s
}

// Dot returns the inner product of d and e by a linear merge over the
// two sorted index arrays.
func (d Dist) Dot(e Dist) float64 {
	s := 0.0
	a, b := 0, 0
	for a < len(d.idx) && b < len(e.idx) {
		switch {
		case d.idx[a] < e.idx[b]:
			a++
		case d.idx[a] > e.idx[b]:
			b++
		default:
			s += d.val[a] * e.val[b]
			a++
			b++
		}
	}
	return s
}

// ScaledAddTo accumulates c·d into the map-backed vector v, visiting
// entries in ascending index order.
func (d Dist) ScaledAddTo(v Vector, c float64) {
	if c == 0 {
		return
	}
	for k, i := range d.idx {
		v.Add(i, c*d.val[k])
	}
}

// ForEach calls fn for every entry in ascending index order.
func (d Dist) ForEach(fn func(i int32, x float64)) {
	for k, i := range d.idx {
		fn(i, d.val[k])
	}
}

// Top returns the n largest entries in descending value order (ties
// broken by ascending index) — the same selection rule as Vector.Top.
func (d Dist) Top(n int) []Entry {
	entries := make([]Entry, len(d.idx))
	for k, i := range d.idx {
		entries[k] = Entry{Index: i, Value: d.val[k]}
	}
	slices.SortFunc(entries, compareTopEntries)
	if len(entries) > n {
		entries = entries[:n]
	}
	return entries
}

// compareTopEntries orders entries by descending value, ties broken
// by ascending index — the shared selection rule of Vector.Top,
// Dist.Top and Accum.TopDist.
func compareTopEntries(a, b Entry) int {
	switch {
	case a.Value > b.Value:
		return -1
	case a.Value < b.Value:
		return 1
	case a.Index < b.Index:
		return -1
	case a.Index > b.Index:
		return 1
	}
	return 0
}

// Indices returns a copy of the stored indices in ascending order.
func (d Dist) Indices() []int32 {
	return append([]int32(nil), d.idx...)
}

// Raw exposes the backing arrays: strictly ascending indices and
// their values. Both slices are shared with the Dist and must not be
// modified — this is the zero-copy accessor binary snapshot writers
// iterate.
func (d Dist) Raw() (idx []int32, val []float64) {
	return d.idx, d.val
}

// NewDistFromRaw adopts pre-built index/value arrays as a Dist without
// copying, after validating the Dist invariants: equal lengths,
// strictly ascending indices, no stored zeros and no non-finite
// values. The slices are retained and must not be modified afterwards.
// This is the snapshot load path: a deserialised artifact becomes a
// servable distribution in one O(n) validation pass.
func NewDistFromRaw(idx []int32, val []float64) (Dist, error) {
	if len(idx) != len(val) {
		return Dist{}, fmt.Errorf("sparse: %d indices for %d values", len(idx), len(val))
	}
	for k, i := range idx {
		if k > 0 && idx[k-1] >= i {
			return Dist{}, fmt.Errorf("sparse: indices not strictly ascending at position %d (%d after %d)", k, i, idx[k-1])
		}
		if i < 0 {
			return Dist{}, fmt.Errorf("sparse: negative index %d at position %d", i, k)
		}
		if x := val[k]; x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return Dist{}, fmt.Errorf("sparse: invalid stored value %v at position %d", x, k)
		}
	}
	return Dist{idx: idx, val: val}, nil
}

// Equal reports whether d and e agree entry-wise within tol.
func (d Dist) Equal(e Dist, tol float64) bool {
	a, b := 0, 0
	for a < len(d.idx) && b < len(e.idx) {
		switch {
		case d.idx[a] < e.idx[b]:
			if abs(d.val[a]) > tol {
				return false
			}
			a++
		case d.idx[a] > e.idx[b]:
			if abs(e.val[b]) > tol {
				return false
			}
			b++
		default:
			if abs(d.val[a]-e.val[b]) > tol {
				return false
			}
			a++
			b++
		}
	}
	for ; a < len(d.idx); a++ {
		if abs(d.val[a]) > tol {
			return false
		}
	}
	for ; b < len(e.idx); b++ {
		if abs(e.val[b]) > tol {
			return false
		}
	}
	return true
}

// IsDistribution reports whether d is a probability distribution: all
// entries non-negative and summing to 1 within tol. An empty Dist is
// not a distribution.
func (d Dist) IsDistribution(tol float64) bool {
	if len(d.idx) == 0 {
		return false
	}
	for _, x := range d.val {
		if x < -tol {
			return false
		}
	}
	return abs(d.Sum()-1) <= tol
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// String renders up to 8 entries in index order, for debugging.
func (d Dist) String() string {
	var b strings.Builder
	b.WriteString("{")
	for k, i := range d.idx {
		if k == 8 {
			fmt.Fprintf(&b, " …+%d", len(d.idx)-8)
			break
		}
		if k > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%.4g", i, d.val[k])
	}
	b.WriteString("}")
	return b.String()
}

// MixDists returns Σ c_k · ds_k as a frozen Dist: the CSR counterpart
// of Mix. For every output index, contributions are accumulated in
// slice order k — the same per-index addition sequence as the
// map-backed Mix — so the two agree bit-for-bit. len(cs) must equal
// len(ds).
func MixDists(ds []Dist, cs []float64) Dist {
	if len(ds) != len(cs) {
		panic(fmt.Sprintf("sparse: MixDists with %d distributions and %d coefficients", len(ds), len(cs)))
	}
	n := int32(0)
	for _, d := range ds {
		if l := len(d.idx); l > 0 && d.idx[l-1]+1 > n {
			n = d.idx[l-1] + 1
		}
	}
	acc := NewAccum(int(n))
	acc.AddMix(ds, cs)
	return acc.Dist()
}

// Accum is a dense scatter-gather accumulator: a dense value array
// plus the list of touched indices, so building a sparse result costs
// O(touched) and resetting costs O(touched) rather than O(dense). It
// is the workhorse of the CSR walk kernel — frontier expansion
// scatters into the dense array without hashing, and the sorted
// touched list yields the next frontier in ascending index order.
//
// An Accum is not safe for concurrent use; check one out per
// goroutine (see AccumPool).
type Accum struct {
	dense   []float64
	seen    []bool
	touched []int32
}

// NewAccum returns an accumulator over indices [0, n).
func NewAccum(n int) *Accum {
	return &Accum{dense: make([]float64, n), seen: make([]bool, n)}
}

// Grow ensures the accumulator covers indices [0, n). Existing
// accumulated state is preserved.
func (a *Accum) Grow(n int) {
	if n <= len(a.dense) {
		return
	}
	dense := make([]float64, n)
	copy(dense, a.dense)
	seen := make([]bool, n)
	copy(seen, a.seen)
	a.dense, a.seen = dense, seen
}

// Size returns the dense capacity (the exclusive index upper bound).
func (a *Accum) Size() int { return len(a.dense) }

// Len returns the number of distinct indices touched since the last
// Reset.
func (a *Accum) Len() int { return len(a.touched) }

// Add accumulates x into index i.
func (a *Accum) Add(i int32, x float64) {
	if !a.seen[i] {
		a.seen[i] = true
		a.touched = append(a.touched, i)
	}
	a.dense[i] += x
}

// AddScaled accumulates c·d entry-wise.
func (a *Accum) AddScaled(d Dist, c float64) {
	if c == 0 {
		return
	}
	for k, i := range d.idx {
		a.Add(i, c*d.val[k])
	}
}

// AddMix accumulates Σ c_k · ds_k, skipping zero coefficients (a
// zero-weight meta-path must not enlarge the touched set).
func (a *Accum) AddMix(ds []Dist, cs []float64) {
	for k, d := range ds {
		a.AddScaled(d, cs[k])
	}
}

// Reset clears the accumulator in O(touched).
func (a *Accum) Reset() {
	for _, i := range a.touched {
		a.dense[i] = 0
		a.seen[i] = false
	}
	a.touched = a.touched[:0]
}

// sortTouched orders the touched list ascending. Sorting makes every
// consumer deterministic: the walk kernel expands the next frontier
// in ascending index order, and frozen results list indices in CSR
// order, independent of the scatter order that built them.
func (a *Accum) sortTouched() {
	slices.Sort(a.touched)
}

// Dist freezes the accumulated values into a new immutable Dist,
// dropping entries that cancelled to exactly zero (matching Vector's
// Add semantics, which delete them). The accumulator is left intact;
// call Reset to reuse it.
func (a *Accum) Dist() Dist {
	a.sortTouched()
	nz := 0
	for _, i := range a.touched {
		if a.dense[i] != 0 {
			nz++
		}
	}
	idx := make([]int32, 0, nz)
	val := make([]float64, 0, nz)
	for _, i := range a.touched {
		if x := a.dense[i]; x != 0 {
			idx = append(idx, i)
			val = append(val, x)
		}
	}
	return Dist{idx: idx, val: val}
}

// TopDist freezes only the n largest accumulated entries (descending
// value, ties broken by ascending index — Vector.Top's selection
// rule) into a Dist. This is the support-pruning path of the walk
// kernel.
func (a *Accum) TopDist(n int) Dist {
	a.sortTouched()
	entries := make([]Entry, 0, len(a.touched))
	for _, i := range a.touched {
		if x := a.dense[i]; x != 0 {
			entries = append(entries, Entry{Index: i, Value: x})
		}
	}
	slices.SortFunc(entries, compareTopEntries)
	if len(entries) > n {
		entries = entries[:n]
	}
	slices.SortFunc(entries, func(x, y Entry) int { return cmp.Compare(x.Index, y.Index) })
	idx := make([]int32, len(entries))
	val := make([]float64, len(entries))
	for k, e := range entries {
		idx[k] = e.Index
		val[k] = e.Value
	}
	return Dist{idx: idx, val: val}
}

// AccumPool is a sync.Pool of equally sized accumulators. Hot paths
// (walk hops, mixture builds) check an Accum out per operation instead
// of allocating an O(|V|) dense array each time.
type AccumPool struct {
	n    int
	pool sync.Pool
}

// NewAccumPool returns a pool of accumulators over indices [0, n).
func NewAccumPool(n int) *AccumPool {
	p := &AccumPool{n: n}
	p.pool.New = func() interface{} { return NewAccum(n) }
	return p
}

// Get checks out a reset accumulator.
func (p *AccumPool) Get() *Accum {
	return p.pool.Get().(*Accum)
}

// Put resets the accumulator and returns it to the pool.
func (p *AccumPool) Put(a *Accum) {
	if a == nil || len(a.dense) != p.n {
		return
	}
	a.Reset()
	p.pool.Put(a)
}
