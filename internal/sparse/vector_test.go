package sparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetGetAddDeleteZeros(t *testing.T) {
	v := New()
	v.Set(3, 1.5)
	if got := v.Get(3); got != 1.5 {
		t.Errorf("Get(3) = %v, want 1.5", got)
	}
	if got := v.Get(99); got != 0 {
		t.Errorf("Get(99) = %v, want 0", got)
	}
	v.Add(3, -1.5)
	if v.Len() != 0 {
		t.Errorf("entry cancelled to zero not deleted: Len = %d", v.Len())
	}
	v.Set(7, 2)
	v.Set(7, 0)
	if v.Len() != 0 {
		t.Errorf("Set(i, 0) not deleted: Len = %d", v.Len())
	}
}

func TestUnit(t *testing.T) {
	u := Unit(42)
	if u.Len() != 1 || u.Get(42) != 1 {
		t.Errorf("Unit(42) = %v", u)
	}
	if !u.IsDistribution(1e-12) {
		t.Error("Unit vector is not a distribution")
	}
}

func TestSumAndNorms(t *testing.T) {
	v := Vector{1: 3, 2: -4}
	if got := v.Sum(); got != -1 {
		t.Errorf("Sum = %v, want -1", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.Norm2(); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestDotAndCosine(t *testing.T) {
	v := Vector{1: 1, 2: 2, 5: 3}
	w := Vector{2: 4, 5: -1, 9: 10}
	want := 2.0*4 + 3.0*(-1)
	if got := v.Dot(w); got != want {
		t.Errorf("Dot = %v, want %v", got, want)
	}
	if got, wantAgain := w.Dot(v), want; got != wantAgain {
		t.Errorf("Dot not symmetric: %v vs %v", got, wantAgain)
	}
	if got := v.Cosine(New()); got != 0 {
		t.Errorf("Cosine with empty = %v, want 0", got)
	}
	if got := v.Cosine(v); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine(v, v) = %v, want 1", got)
	}
}

func TestScale(t *testing.T) {
	v := Vector{1: 2, 2: -3}
	v.Scale(2)
	if v.Get(1) != 4 || v.Get(2) != -6 {
		t.Errorf("Scale(2) = %v", v)
	}
	v.Scale(0)
	if v.Len() != 0 {
		t.Errorf("Scale(0) left entries: %v", v)
	}
}

func TestAccumScaled(t *testing.T) {
	v := Vector{1: 1}
	w := Vector{1: 2, 3: 4}
	v.AccumScaled(w, 0.5)
	if v.Get(1) != 2 || v.Get(3) != 2 {
		t.Errorf("AccumScaled = %v", v)
	}
	before := v.Clone()
	v.AccumScaled(w, 0)
	if !v.Equal(before, 0) {
		t.Errorf("AccumScaled with 0 changed the vector")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := Vector{1: 1}
	c := v.Clone()
	c.Set(1, 99)
	if v.Get(1) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{1: 2, 2: 6}
	v.Normalize()
	if !v.IsDistribution(1e-12) {
		t.Errorf("Normalize did not produce a distribution: %v", v)
	}
	if math.Abs(v.Get(2)-0.75) > 1e-12 {
		t.Errorf("Get(2) = %v, want 0.75", v.Get(2))
	}
	empty := New()
	empty.Normalize() // must not panic or divide by zero
	if empty.Len() != 0 {
		t.Error("Normalize of empty changed it")
	}
}

func TestMix(t *testing.T) {
	a := Vector{1: 1}
	b := Vector{1: 1, 2: 1}
	m := Mix([]Vector{a, b}, []float64{0.25, 0.75})
	if math.Abs(m.Get(1)-1) > 1e-12 || math.Abs(m.Get(2)-0.75) > 1e-12 {
		t.Errorf("Mix = %v", m)
	}
}

func TestMixPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mix with mismatched lengths did not panic")
		}
	}()
	Mix([]Vector{New()}, []float64{1, 2})
}

func TestIndicesSorted(t *testing.T) {
	v := Vector{5: 1, 1: 1, 3: 1}
	idx := v.Indices()
	if len(idx) != 3 || idx[0] != 1 || idx[1] != 3 || idx[2] != 5 {
		t.Errorf("Indices = %v", idx)
	}
}

func TestTop(t *testing.T) {
	v := Vector{1: 0.1, 2: 0.5, 3: 0.3, 4: 0.5}
	top := v.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d entries", len(top))
	}
	// Ties (2 and 4 at 0.5) broken by ascending index.
	if top[0].Index != 2 || top[1].Index != 4 || top[2].Index != 3 {
		t.Errorf("Top order = %v", top)
	}
	if got := v.Top(10); len(got) != 4 {
		t.Errorf("Top(10) returned %d entries, want all 4", len(got))
	}
}

func TestEqual(t *testing.T) {
	v := Vector{1: 1.0}
	w := Vector{1: 1.0 + 1e-12}
	if !v.Equal(w, 1e-9) {
		t.Error("nearly equal vectors not Equal")
	}
	if v.Equal(Vector{1: 2}, 1e-9) {
		t.Error("different vectors Equal")
	}
	if v.Equal(Vector{1: 1, 2: 5}, 1e-9) {
		t.Error("vector with extra entry Equal")
	}
	if !v.Equal(Vector{1: 1, 2: 1e-15}, 1e-9) {
		t.Error("vector with negligible extra entry not Equal")
	}
}

func TestIsDistribution(t *testing.T) {
	if (Vector{}).IsDistribution(1e-9) {
		t.Error("empty vector reported as distribution")
	}
	if !(Vector{1: 0.5, 2: 0.5}).IsDistribution(1e-9) {
		t.Error("valid distribution rejected")
	}
	if (Vector{1: 1.5, 2: -0.5}).IsDistribution(1e-9) {
		t.Error("negative-entry vector accepted")
	}
	if (Vector{1: 0.7}).IsDistribution(1e-9) {
		t.Error("non-normalised vector accepted")
	}
}

func TestString(t *testing.T) {
	v := Vector{1: 0.5}
	if s := v.String(); !strings.Contains(s, "1:0.5") {
		t.Errorf("String = %q", s)
	}
	big := New()
	for i := int32(0); i < 20; i++ {
		big.Set(i, 1)
	}
	if s := big.String(); !strings.Contains(s, "…+12") {
		t.Errorf("String of big vector = %q", s)
	}
}

// randomVector builds a vector with n random entries for property
// tests.
func randomVector(r *rand.Rand, n int) Vector {
	v := New()
	for k := 0; k < n; k++ {
		v.Set(int32(r.Intn(100)), r.Float64()*10-5)
	}
	return v
}

func TestQuickNormalizePreservesSupportAndSums(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVector(r, int(n%32)+1)
		// Make all entries positive so Normalize yields a distribution.
		for i, x := range v {
			v[i] = math.Abs(x) + 0.001
		}
		support := v.Len()
		v.Normalize()
		return v.Len() == support && v.IsDistribution(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDotSymmetricAndCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVector(r, 10)
		w := randomVector(r, 10)
		d1, d2 := v.Dot(w), w.Dot(v)
		if math.Abs(d1-d2) > 1e-9 {
			return false
		}
		return math.Abs(d1) <= v.Norm2()*w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMixOfDistributionsIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]Vector, 3)
		for k := range vs {
			vs[k] = randomVector(r, 8)
			for i, x := range vs[k] {
				vs[k][i] = math.Abs(x) + 0.001
			}
			vs[k].Normalize()
		}
		// Random convex coefficients.
		cs := []float64{r.Float64(), r.Float64(), r.Float64()}
		sum := cs[0] + cs[1] + cs[2]
		for k := range cs {
			cs[k] /= sum
		}
		return Mix(vs, cs).IsDistribution(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
