// Package sparse provides sparse float64 vectors keyed by int32 object
// IDs. They are the arithmetic substrate for the meta-path constrained
// random walks and the EM learning math in SHINE: the distribution
// Pe(v|p) of observing each object v after walking meta-path p from an
// entity e touches only a tiny fraction of the network's objects, so a
// map-backed representation is both compact and fast to mix.
package sparse

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Vector is a sparse vector over int32 indices. Absent keys are zero.
// The zero value (nil map) is a usable empty vector for reading;
// writing requires construction via New or NewWithCapacity.
type Vector map[int32]float64

// New returns an empty vector.
func New() Vector { return make(Vector) }

// NewWithCapacity returns an empty vector with room for n entries.
func NewWithCapacity(n int) Vector { return make(Vector, n) }

// Unit returns the vector with a single entry of 1 at index i — the
// starting distribution of a random walk rooted at object i.
func Unit(i int32) Vector { return Vector{i: 1} }

// Get returns the value at index i (zero if absent).
func (v Vector) Get(i int32) float64 { return v[i] }

// Set assigns value x at index i. Setting zero deletes the entry so
// that Len always counts non-zeros.
func (v Vector) Set(i int32, x float64) {
	if x == 0 {
		delete(v, i)
		return
	}
	v[i] = x
}

// Add accumulates x into index i.
func (v Vector) Add(i int32, x float64) {
	nx := v[i] + x
	if nx == 0 {
		delete(v, i)
		return
	}
	v[i] = nx
}

// Len returns the number of stored (non-zero) entries.
func (v Vector) Len() int { return len(v) }

// Sum returns the sum of all entries.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns the L1 norm Σ|x|.
func (v Vector) Norm1() float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the L2 norm sqrt(Σx²).
func (v Vector) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of v and w, iterating over the smaller
// of the two.
func (v Vector) Dot(w Vector) float64 {
	if len(w) < len(v) {
		v, w = w, v
	}
	s := 0.0
	for i, x := range v {
		if y, ok := w[i]; ok {
			s += x * y
		}
	}
	return s
}

// Cosine returns the cosine similarity of v and w, or 0 if either has
// zero norm.
func (v Vector) Cosine(w Vector) float64 {
	nv, nw := v.Norm2(), w.Norm2()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Scale multiplies every entry by c in place and returns v. Scaling by
// zero empties the vector.
func (v Vector) Scale(c float64) Vector {
	if c == 0 {
		for i := range v {
			delete(v, i)
		}
		return v
	}
	for i, x := range v {
		v[i] = x * c
	}
	return v
}

// AccumScaled adds c*w into v in place and returns v.
func (v Vector) AccumScaled(w Vector, c float64) Vector {
	if c == 0 {
		return v
	}
	for i, x := range w {
		v.Add(i, c*x)
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	for i, x := range v {
		c[i] = x
	}
	return c
}

// Normalize scales v in place so its entries sum to 1 and returns v.
// A vector whose sum is zero is left unchanged.
func (v Vector) Normalize() Vector {
	s := v.Sum()
	if s == 0 {
		return v
	}
	return v.Scale(1 / s)
}

// Mix returns Σ c_k · vs_k as a new vector: the weighted combination
// used for the entity-specific object model Pe(v) = Σ_p w_p Pe(v|p)
// (Formula 12 of the paper). len(cs) must equal len(vs).
func Mix(vs []Vector, cs []float64) Vector {
	if len(vs) != len(cs) {
		panic(fmt.Sprintf("sparse: Mix with %d vectors and %d coefficients", len(vs), len(cs)))
	}
	out := New()
	for k, w := range vs {
		out.AccumScaled(w, cs[k])
	}
	return out
}

// Indices returns the stored indices in ascending order. Useful for
// deterministic iteration.
func (v Vector) Indices() []int32 {
	idx := make([]int32, 0, len(v))
	for i := range v {
		idx = append(idx, i)
	}
	slices.Sort(idx)
	return idx
}

// Top returns the n largest entries as (index, value) pairs in
// descending value order (ties broken by ascending index). If the
// vector has fewer than n entries, all are returned.
func (v Vector) Top(n int) []Entry {
	entries := make([]Entry, 0, len(v))
	for i, x := range v {
		entries = append(entries, Entry{Index: i, Value: x})
	}
	slices.SortFunc(entries, compareTopEntries)
	if len(entries) > n {
		entries = entries[:n]
	}
	return entries
}

// Entry is one (index, value) pair of a sparse vector.
type Entry struct {
	Index int32
	Value float64
}

// Equal reports whether v and w store the same entries to within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	for i, x := range v {
		if math.Abs(x-w[i]) > tol {
			return false
		}
	}
	for i, y := range w {
		if _, ok := v[i]; !ok && math.Abs(y) > tol {
			return false
		}
	}
	return true
}

// IsDistribution reports whether v is a probability distribution: all
// entries non-negative and summing to 1 within tol. An empty vector is
// not a distribution.
func (v Vector) IsDistribution(tol float64) bool {
	if len(v) == 0 {
		return false
	}
	for _, x := range v {
		if x < -tol {
			return false
		}
	}
	return math.Abs(v.Sum()-1) <= tol
}

// String renders up to 8 entries in index order, for debugging.
func (v Vector) String() string {
	idx := v.Indices()
	var b strings.Builder
	b.WriteString("{")
	for k, i := range idx {
		if k == 8 {
			fmt.Fprintf(&b, " …+%d", len(idx)-8)
			break
		}
		if k > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%.4g", i, v[i])
	}
	b.WriteString("}")
	return b.String()
}
