package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randomDistVector builds a Vector with nz entries drawn from [0, n) with
// values in (-1, 1), occasionally cancelling an entry to exactly zero
// through Add (which deletes it) so frozen forms must match.
func randomDistVector(rng *rand.Rand, n, nz int) Vector {
	v := New()
	for j := 0; j < nz; j++ {
		i := int32(rng.Intn(n))
		x := rng.Float64()*2 - 1
		v.Add(i, x)
		if rng.Intn(8) == 0 {
			v.Add(i, -x) // exact cancellation: Add deletes the entry
		}
	}
	return v
}

// TestFreezeThawRoundTrip: Thaw(Freeze(v)) reproduces v bit-for-bit.
func TestFreezeThawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		v := randomDistVector(rng, 200, rng.Intn(60))
		d := Freeze(v)
		back := d.Thaw()
		if len(back) != len(v) {
			t.Fatalf("trial %d: round trip has %d entries, want %d", trial, len(back), len(v))
		}
		for i, x := range v {
			if got := back[i]; got != x {
				t.Fatalf("trial %d: round trip [%d] = %v, want %v", trial, i, got, x)
			}
		}
	}
}

// TestFreezeDropsExactZeros: a literal Vector holding explicit zeros
// freezes to a Dist without them.
func TestFreezeDropsExactZeros(t *testing.T) {
	v := Vector{3: 0, 5: 0.25, 9: 0}
	d := Freeze(v)
	if d.Len() != 1 {
		t.Fatalf("frozen literal has %d entries, want 1", d.Len())
	}
	if i, x := d.At(0); i != 5 || x != 0.25 {
		t.Fatalf("frozen entry = (%d, %v), want (5, 0.25)", i, x)
	}
}

// TestDistGetMatchesVector: Get agrees with the map bit-for-bit, on
// present and absent indices alike.
func TestDistGetMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		v := randomDistVector(rng, 300, rng.Intn(80))
		d := Freeze(v)
		for probe := 0; probe < 100; probe++ {
			i := int32(rng.Intn(310))
			if got, want := d.Get(i), v.Get(i); got != want {
				t.Fatalf("trial %d: Get(%d) = %v, want %v", trial, i, got, want)
			}
		}
	}
}

// TestDistGetManyMatchesGet: the linear merge agrees with per-index
// binary search for ascending query sets with gaps and absent IDs.
func TestDistGetManyMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		v := randomDistVector(rng, 300, rng.Intn(80))
		d := Freeze(v)
		nq := rng.Intn(50)
		sorted := make([]int32, 0, nq)
		next := int32(0)
		for j := 0; j < nq; j++ {
			next += int32(1 + rng.Intn(12))
			sorted = append(sorted, next)
		}
		out := make([]float64, len(sorted))
		d.GetMany(sorted, out)
		for j, i := range sorted {
			if want := d.Get(i); out[j] != want {
				t.Fatalf("trial %d: GetMany[%d]=%v, Get(%d)=%v", trial, j, out[j], i, want)
			}
		}
	}
}

// TestMixDistsMatchesMix: the CSR mixture is bit-for-bit identical to
// the map-backed Mix — same per-index addition order, same dropped
// zeros.
func TestMixDistsMatchesMix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		vs := make([]Vector, k)
		ds := make([]Dist, k)
		cs := make([]float64, k)
		for p := 0; p < k; p++ {
			vs[p] = randomDistVector(rng, 150, rng.Intn(40))
			ds[p] = Freeze(vs[p])
			cs[p] = rng.Float64()
			if rng.Intn(4) == 0 {
				cs[p] = 0 // zero-weight paths must not contribute
			}
		}
		want := Mix(vs, cs)
		got := MixDists(ds, cs)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: mixture has %d entries, want %d", trial, got.Len(), len(want))
		}
		got.ForEach(func(i int32, x float64) {
			if wx := want[i]; x != wx {
				t.Fatalf("trial %d: mixture[%d] = %v, want %v (bit-for-bit)", trial, i, x, wx)
			}
		})
	}
}

// TestDistTopMatchesVectorTop: identical selection, order and values.
func TestDistTopMatchesVectorTop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		v := randomDistVector(rng, 100, rng.Intn(50))
		// Force value ties so the index tiebreak is exercised.
		if len(v) >= 2 {
			idx := v.Indices()
			v[idx[0]] = 0.5
			v[idx[len(idx)-1]] = 0.5
		}
		d := Freeze(v)
		n := rng.Intn(12)
		got, want := d.Top(n), v.Top(n)
		if len(got) != len(want) {
			t.Fatalf("trial %d: Top(%d) lengths %d vs %d", trial, n, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("trial %d: Top[%d] = %+v, want %+v", trial, j, got[j], want[j])
			}
		}
	}
}

// TestDistDotMatchesSortedReference: Dot agrees with an ascending-order
// reference accumulation bit-for-bit (Vector.Dot iterates in map order,
// so it is only approximately comparable).
func TestDistDotMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		a := Freeze(randomDistVector(rng, 120, rng.Intn(40)))
		b := Freeze(randomDistVector(rng, 120, rng.Intn(40)))
		want := 0.0
		a.ForEach(func(i int32, x float64) {
			if y := b.Get(i); y != 0 {
				want += x * y
			}
		})
		if got := a.Dot(b); got != want {
			t.Fatalf("trial %d: Dot = %v, want %v", trial, got, want)
		}
		// Cross-check against the map implementation within tolerance.
		av, bv := a.Thaw(), b.Thaw()
		if mapDot := av.Dot(bv); math.Abs(a.Dot(b)-mapDot) > 1e-12 {
			t.Fatalf("trial %d: Dot = %v, map Dot = %v", trial, a.Dot(b), mapDot)
		}
	}
}

// TestAccumMatchesVectorAdds: scattering a random Add sequence through
// an Accum freezes to exactly what the same sequence builds in a map.
func TestAccumMatchesVectorAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		const n = 128
		acc := NewAccum(n)
		v := New()
		for j := 0; j < rng.Intn(200); j++ {
			i := int32(rng.Intn(n))
			x := rng.Float64()*2 - 1
			acc.Add(i, x)
			v.Add(i, x)
			if rng.Intn(10) == 0 {
				acc.Add(i, -acc.dense[i]) // cancel to exactly zero
				v.Add(i, -v[i])
			}
		}
		d := acc.Dist()
		if d.Len() != len(v) {
			t.Fatalf("trial %d: frozen accum has %d entries, want %d", trial, d.Len(), len(v))
		}
		d.ForEach(func(i int32, x float64) {
			if wx, ok := v[i]; !ok || x != wx {
				t.Fatalf("trial %d: accum[%d] = %v, map %v", trial, i, x, wx)
			}
		})
		// Reset must fully clear in O(touched).
		acc.Reset()
		if acc.Len() != 0 {
			t.Fatalf("trial %d: %d touched after Reset", trial, acc.Len())
		}
		for i := 0; i < n; i++ {
			if acc.dense[i] != 0 || acc.seen[i] {
				t.Fatalf("trial %d: index %d dirty after Reset", trial, i)
			}
		}
	}
}

// TestAccumTopDistMatchesVectorTop: the pruning path applies exactly
// Vector.Top's selection rule, then re-sorts by index.
func TestAccumTopDistMatchesVectorTop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		const n = 96
		acc := NewAccum(n)
		v := New()
		for j := 0; j < 5+rng.Intn(120); j++ {
			i := int32(rng.Intn(n))
			x := rng.Float64()
			acc.Add(i, x)
			v.Add(i, x)
		}
		k := 1 + rng.Intn(10)
		got := acc.TopDist(k)
		want := v.Top(k)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: TopDist(%d) has %d entries, want %d", trial, k, got.Len(), len(want))
		}
		for _, e := range want {
			if x := got.Get(e.Index); x != e.Value {
				t.Fatalf("trial %d: TopDist[%d] = %v, want %v", trial, e.Index, x, e.Value)
			}
		}
		// CSR invariant: strictly ascending indices.
		for j := 1; j < got.Len(); j++ {
			a, _ := got.At(j - 1)
			b, _ := got.At(j)
			if a >= b {
				t.Fatalf("trial %d: TopDist indices not ascending: %d then %d", trial, a, b)
			}
		}
	}
}

// TestAccumPool: checked-out accumulators are always clean, and a
// wrong-size accumulator is rejected rather than poisoning the pool.
func TestAccumPool(t *testing.T) {
	p := NewAccumPool(64)
	a := p.Get()
	if a.Size() != 64 || a.Len() != 0 {
		t.Fatalf("fresh accum: size %d touched %d", a.Size(), a.Len())
	}
	a.Add(7, 1.5)
	p.Put(a)
	b := p.Get()
	if b.Len() != 0 || b.dense[7] != 0 {
		t.Fatal("pooled accum returned dirty")
	}
	p.Put(NewAccum(8)) // wrong size: must be dropped
	c := p.Get()
	if c.Size() != 64 {
		t.Fatalf("pool handed out wrong-size accum (%d)", c.Size())
	}
	p.Put(nil) // must not panic
}

// TestUnitDistMatchesUnit and basic invariants of the tiny helpers.
func TestUnitDistMatchesUnit(t *testing.T) {
	d := UnitDist(42)
	if !d.Equal(Freeze(Unit(42)), 0) {
		t.Error("UnitDist(42) != Freeze(Unit(42))")
	}
	if !d.IsDistribution(0) {
		t.Error("UnitDist not a distribution")
	}
	if (Dist{}).IsDistribution(1e-9) {
		t.Error("empty Dist is a distribution")
	}
	if s := d.Sum(); s != 1 {
		t.Errorf("UnitDist sum %v", s)
	}
}

// TestAccumGrow preserves accumulated state while extending capacity.
func TestAccumGrow(t *testing.T) {
	a := NewAccum(4)
	a.Add(2, 0.5)
	a.Grow(16)
	if a.Size() != 16 {
		t.Fatalf("size after Grow = %d", a.Size())
	}
	a.Add(10, 0.25)
	d := a.Dist()
	if d.Get(2) != 0.5 || d.Get(10) != 0.25 {
		t.Fatalf("state lost across Grow: %v", d)
	}
}
