package textproc

import "strings"

// stopWordList is the stop-word inventory used when filtering document
// and title terms. The paper filters with a 667-word list; this list
// covers the same classes of words (articles, pronouns, prepositions,
// conjunctions, auxiliaries, common adverbs and quantifiers, and the
// boilerplate vocabulary of academic web pages).
var stopWordList = []string{
	"a", "about", "above", "across", "after", "afterwards", "again",
	"against", "all", "almost", "alone", "along", "already", "also",
	"although", "always", "am", "among", "amongst", "an", "and",
	"another", "any", "anyhow", "anyone", "anything", "anyway",
	"anywhere", "are", "around", "as", "at", "back", "be", "became",
	"because", "become", "becomes", "becoming", "been", "before",
	"beforehand", "behind", "being", "below", "beside", "besides",
	"between", "beyond", "both", "bottom", "but", "by", "call", "can",
	"cannot", "could", "did", "do", "does", "doing", "done", "down",
	"due", "during", "each", "either", "else", "elsewhere", "enough",
	"etc", "even", "ever", "every", "everyone", "everything",
	"everywhere", "except", "few", "for", "former", "formerly", "from",
	"front", "further", "get", "give", "go", "had", "has", "have",
	"having", "he", "hence", "her", "here", "hereafter", "hereby",
	"herein", "hereupon", "hers", "herself", "him", "himself", "his",
	"how", "however", "i", "ie", "if", "in", "indeed", "instead",
	"into", "is", "it", "its", "itself", "just", "last", "latter",
	"latterly", "least", "less", "let", "like", "made", "make", "many",
	"may", "me", "meanwhile", "might", "mine", "more", "moreover",
	"most", "mostly", "much", "must", "my", "myself", "namely",
	"neither", "never", "nevertheless", "next", "no", "nobody", "none",
	"nonetheless", "noone", "nor", "not", "nothing", "now", "nowhere",
	"of", "off", "often", "on", "once", "one", "only", "onto", "or",
	"other", "others", "otherwise", "our", "ours", "ourselves", "out",
	"over", "own", "per", "perhaps", "please", "put", "rather", "re",
	"same", "see", "seem", "seemed", "seeming", "seems", "several",
	"she", "should", "since", "so", "some", "somehow", "someone",
	"something", "sometime", "sometimes", "somewhere", "still", "such",
	"take", "than", "that", "the", "their", "theirs", "them",
	"themselves", "then", "thence", "there", "thereafter", "thereby",
	"therefore", "therein", "thereupon", "these", "they", "this",
	"those", "though", "through", "throughout", "thru", "thus", "to",
	"together", "too", "toward", "towards", "under", "until", "up",
	"upon", "us", "used", "using", "various", "very", "via", "was",
	"we", "well", "were", "what", "whatever", "when", "whence",
	"whenever", "where", "whereafter", "whereas", "whereby", "wherein",
	"whereupon", "wherever", "whether", "which", "while", "whither",
	"who", "whoever", "whole", "whom", "whose", "why", "will", "with",
	"within", "without", "would", "yet", "you", "your", "yours",
	"yourself", "yourselves",
	// Academic web-page boilerplate.
	"university", "department", "professor", "prof", "dr", "phd",
	"degree", "received", "page", "home", "homepage", "email", "www",
	"http", "https", "edu", "org", "com",
}

var stopWords = func() map[string]bool {
	m := make(map[string]bool, len(stopWordList))
	for _, w := range stopWordList {
		m[w] = true
	}
	return m
}()

// IsStopWord reports whether the (case-insensitive) token is on the
// stop-word list.
func IsStopWord(tok string) bool {
	return stopWords[strings.ToLower(tok)]
}

// NumStopWords returns the size of the stop-word list.
func NumStopWords() int { return len(stopWords) }
