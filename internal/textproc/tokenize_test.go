package textproc

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("Wei Wang received a Ph.D degree in 1999.")
	var words []string
	for _, tok := range toks {
		words = append(words, tok.Text)
	}
	want := []string{"Wei", "Wang", "received", "a", "Ph", "D", "degree", "in", "1999"}
	if !reflect.DeepEqual(words, want) {
		t.Errorf("Tokenize = %v, want %v", words, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "data, mining"
	toks := Tokenize(text)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	for _, tok := range toks {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("token %q offsets [%d,%d) give %q", tok.Text, tok.Start, tok.End, text[tok.Start:tok.End])
		}
	}
	if toks[1].Lower != "mining" {
		t.Errorf("Lower = %q", toks[1].Lower)
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	if got := Tokenize(""); got != nil {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("..., --- !!"); got != nil {
		t.Errorf("Tokenize(punct) = %v", got)
	}
	// Trailing token without following separator.
	toks := Tokenize("VLDB")
	if len(toks) != 1 || toks[0].Text != "VLDB" {
		t.Errorf("Tokenize(VLDB) = %v", toks)
	}
	// Unicode letters form tokens.
	toks = Tokenize("naïve café")
	if len(toks) != 2 || toks[0].Text != "naïve" {
		t.Errorf("Tokenize(unicode) = %v", toks)
	}
}

func TestIsYear(t *testing.T) {
	for _, y := range []string{"1900", "1999", "2013", "2099"} {
		if !IsYear(y) {
			t.Errorf("IsYear(%s) = false", y)
		}
	}
	for _, y := range []string{"199", "19999", "1899", "2100", "abcd", "20x3", ""} {
		if IsYear(y) {
			t.Errorf("IsYear(%s) = true", y)
		}
	}
}

func TestNormalizeTerm(t *testing.T) {
	cases := map[string]string{
		"Mining":    "mine",
		"DATABASES": "databas",
		"1999":      "",
		"x":         "x",
		"don't":     "dont",
	}
	for in, want := range cases {
		if got := NormalizeTerm(in); got != want {
			t.Errorf("NormalizeTerm(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStopWords(t *testing.T) {
	for _, w := range []string{"the", "The", "and", "of", "university"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"mining", "database", "wang", ""} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
	if NumStopWords() < 200 {
		t.Errorf("stop list has only %d words", NumStopWords())
	}
}

func TestDictionaryLongestMatch(t *testing.T) {
	d := NewDictionary()
	d.Add("Wei Wang", 1)
	d.Add("Wang", 2)
	d.Add("Richard R. Muntz", 3)
	d.Add("SIGMOD", 4)

	toks := Tokenize("supervision of Prof. Richard R. Muntz at SIGMOD by Wei Wang")
	matches := d.FindAll(toks)
	if len(matches) != 3 {
		t.Fatalf("got %d matches: %v", len(matches), matches)
	}
	if matches[0].Value != 3 {
		t.Errorf("first match value = %v, want Muntz", matches[0].Value)
	}
	if matches[1].Value != 4 {
		t.Errorf("second match value = %v, want SIGMOD", matches[1].Value)
	}
	// "Wei Wang" must beat the shorter "Wang".
	if matches[2].Value != 1 {
		t.Errorf("third match value = %v, want Wei Wang (longest)", matches[2].Value)
	}
	if got := matches[2].Surface(toks); got != "Wei Wang" {
		t.Errorf("Surface = %q", got)
	}
}

func TestDictionaryCaseInsensitive(t *testing.T) {
	d := NewDictionary()
	d.Add("data mining", "dm")
	toks := Tokenize("interests include Data Mining and more")
	matches := d.FindAll(toks)
	if len(matches) != 1 || matches[0].Value != "dm" {
		t.Errorf("matches = %v", matches)
	}
}

func TestDictionaryNonOverlapping(t *testing.T) {
	d := NewDictionary()
	d.Add("a b", 1)
	d.Add("b c", 2)
	toks := Tokenize("a b c")
	matches := d.FindAll(toks)
	// Greedy left-to-right: "a b" consumes b, so "b c" cannot match.
	if len(matches) != 1 || matches[0].Value != 1 {
		t.Errorf("matches = %v", matches)
	}
}

func TestDictionaryOverwriteAndLen(t *testing.T) {
	d := NewDictionary()
	d.Add("VLDB", 1)
	d.Add("VLDB", 2)
	d.Add("", 3) // ignored
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
	matches := d.FindAll(Tokenize("VLDB"))
	if len(matches) != 1 || matches[0].Value != 2 {
		t.Errorf("overwrite failed: %v", matches)
	}
}

func TestDictionaryEmpty(t *testing.T) {
	d := NewDictionary()
	if got := d.FindAll(Tokenize("anything at all")); got != nil {
		t.Errorf("empty dictionary matched: %v", got)
	}
}

func TestDictionaryPunctuationInsensitiveForms(t *testing.T) {
	d := NewDictionary()
	d.Add("Michael J. Jordan", 7)
	// Document omits the period after the middle initial.
	matches := d.FindAll(Tokenize("with Michael J Jordan today"))
	if len(matches) != 1 || matches[0].Value != 7 {
		t.Errorf("matches = %v", matches)
	}
}
