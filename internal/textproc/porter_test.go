package textproc

import "testing"

func TestStemKnownPairs(t *testing.T) {
	// Canonical examples from Porter's paper and the reference
	// implementation's vocabulary.
	cases := map[string]string{
		// Step 1a.
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b.
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c.
		"happy": "happi",
		"sky":   "sky",
		// Step 2.
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3.
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4.
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5.
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// Domain words used by the DBLP experiments.
		"mining":         "mine",
		"databases":      "databas",
		"bioinformatics": "bioinformat",
		"computational":  "comput",
		"biology":        "biologi", // m("bio") = 0, so step 2 leaves "logi"
		"apology":        "apolog",  // m("apo") = 1, so step 2 rewrites "logi"
		"learning":       "learn",
		"networks":       "network",
		"queries":        "queri",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "go"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonASCIIPassesThrough(t *testing.T) {
	for _, w := range []string{"naïve", "sigmod14", "x-ray", "ABC"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged (non a-z input)", w, got)
		}
	}
}

func TestStemDeterministic(t *testing.T) {
	// Porter stemming is not idempotent in general ("databas" stems
	// further to "databa"), but it must be deterministic: repeated
	// calls on the same input agree.
	words := []string{
		"mining", "databases", "learning", "relational", "networks",
		"probabilistic", "heterogeneous", "information", "entities",
	}
	for _, w := range words {
		if s1, s2 := Stem(w), Stem(w); s1 != s2 {
			t.Errorf("Stem(%q) nondeterministic: %q vs %q", w, s1, s2)
		}
	}
}

func TestStemTinyShrinkage(t *testing.T) {
	// Words that shrink to a single letter must not panic the later
	// steps (regression guard for the k<1 bounds in steps 2 and 4).
	for _, w := range []string{"ies", "eas", "oed", "aes"} {
		_ = Stem(w)
	}
}
