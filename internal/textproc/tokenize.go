// Package textproc implements the text preprocessing pipeline of the
// paper's experimental setting (Section 5.1): tokenisation, stop-word
// filtering, Porter stemming, publication-year recognition and
// dictionary-based exact matching of multi-word surface forms (author
// and venue names).
package textproc

import (
	"strings"
	"unicode"
)

// Token is one token of an input document with its original position,
// so multi-word dictionary matches can be reported as spans.
type Token struct {
	// Text is the token as it appeared, case preserved.
	Text string
	// Lower is the lowercase form used for matching.
	Lower string
	// Start and End are byte offsets into the original text.
	Start, End int
}

// Tokenize splits text into tokens of consecutive letters or digits.
// Punctuation and whitespace separate tokens and are dropped, matching
// the paper's "removing all punctuation symbols" preprocessing.
// Apostrophes and hyphens inside words split them ("don't" -> "don",
// "t"), which is the behaviour of the simple scanner the paper's
// pipeline implies.
func Tokenize(text string) []Token {
	var tokens []Token
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			tokens = append(tokens, newToken(text, start, i))
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, newToken(text, start, len(text)))
	}
	return tokens
}

func newToken(text string, start, end int) Token {
	t := text[start:end]
	return Token{Text: t, Lower: strings.ToLower(t), Start: start, End: end}
}

// IsYear reports whether the token is a plausible publication year.
// The paper identifies year objects "using regular expression"; we
// accept four-digit tokens from 1900 through 2099.
func IsYear(tok string) bool {
	if len(tok) != 4 {
		return false
	}
	for _, c := range tok {
		if c < '0' || c > '9' {
			return false
		}
	}
	return tok >= "1900" && tok <= "2099"
}

// NormalizeTerm lowercases, strips non-letters and stems a token,
// returning the canonical term form used for term objects in the
// network. It returns "" for tokens that normalise away entirely
// (pure digits, punctuation artifacts).
func NormalizeTerm(tok string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(tok) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
		}
	}
	w := b.String()
	if w == "" {
		return ""
	}
	return Stem(w)
}
