package textproc

import (
	"strings"
)

// Dictionary performs dictionary-based exact matching of multi-word
// surface forms over a token stream — the paper recognises author and
// venue objects in web text this way ("using dictionary-based exact
// matching method", Section 5.1). Matching is case-insensitive and
// greedy: at each position the longest entry that matches is
// reported, and scanning resumes after it.
//
// The dictionary is a token-level trie, so lookup time per position
// is bounded by the longest entry, independent of dictionary size.
type Dictionary struct {
	root    *trieNode
	entries int
	maxLen  int
}

type trieNode struct {
	children map[string]*trieNode
	// value is the payload of an entry terminating here; nil means no
	// entry ends at this node.
	value interface{}
	isEnd bool
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{root: &trieNode{}}
}

// Add registers the surface form with an arbitrary payload (typically
// an object ID). Forms are tokenised with Tokenize, so punctuation in
// names ("Richard R. Muntz") is handled uniformly with document text.
// Adding an existing form overwrites its payload. Empty forms are
// ignored.
func (d *Dictionary) Add(form string, value interface{}) {
	toks := Tokenize(form)
	if len(toks) == 0 {
		return
	}
	node := d.root
	for _, t := range toks {
		if node.children == nil {
			node.children = make(map[string]*trieNode)
		}
		next, ok := node.children[t.Lower]
		if !ok {
			next = &trieNode{}
			node.children[t.Lower] = next
		}
		node = next
	}
	if !node.isEnd {
		d.entries++
	}
	node.isEnd = true
	node.value = value
	if len(toks) > d.maxLen {
		d.maxLen = len(toks)
	}
}

// Len returns the number of distinct surface forms stored.
func (d *Dictionary) Len() int { return d.entries }

// Match is one dictionary hit over a token stream.
type Match struct {
	// Value is the payload stored with the matched form.
	Value interface{}
	// TokenStart and TokenEnd delimit the matched tokens,
	// half-open: tokens[TokenStart:TokenEnd].
	TokenStart, TokenEnd int
}

// Surface reconstructs the matched surface text from the token slice
// the match was produced over.
func (m Match) Surface(tokens []Token) string {
	parts := make([]string, 0, m.TokenEnd-m.TokenStart)
	for _, t := range tokens[m.TokenStart:m.TokenEnd] {
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, " ")
}

// FindAll scans the token stream left to right and returns all
// non-overlapping matches, preferring the longest match at each
// position.
func (d *Dictionary) FindAll(tokens []Token) []Match {
	var out []Match
	for i := 0; i < len(tokens); {
		m, ok := d.longestAt(tokens, i)
		if !ok {
			i++
			continue
		}
		out = append(out, m)
		i = m.TokenEnd
	}
	return out
}

// longestAt finds the longest entry starting at token position i.
func (d *Dictionary) longestAt(tokens []Token, i int) (Match, bool) {
	node := d.root
	best := Match{}
	found := false
	for j := i; j < len(tokens) && j-i < d.maxLen; j++ {
		next, ok := node.children[tokens[j].Lower]
		if !ok {
			break
		}
		node = next
		if node.isEnd {
			best = Match{Value: node.value, TokenStart: i, TokenEnd: j + 1}
			found = true
		}
	}
	return best, found
}
