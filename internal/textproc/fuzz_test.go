package textproc

import (
	"testing"
	"unicode/utf8"
)

// Fuzz targets double as robustness unit tests: `go test` runs the
// seed corpus; `go test -fuzz=FuzzStem ./internal/textproc` explores
// further.

func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "flies", "agreed", "ies", "sssss",
		"caresses", "y", "yy", "bioinformatics", "zzzzed", "oed",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		got := Stem(word) // must not panic
		if len(got) > len(word) {
			t.Errorf("Stem(%q) = %q grew the word", word, got)
		}
		if got2 := Stem(word); got2 != got {
			t.Errorf("Stem(%q) nondeterministic: %q vs %q", word, got, got2)
		}
	})
}

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "Wei Wang", "a.b,c", "日本語 text", "1999!", "---", "a\x80b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(text) {
				t.Fatalf("token %+v has invalid offsets in %q", tok, text)
			}
			if text[tok.Start:tok.End] != tok.Text {
				t.Fatalf("token %q does not slice back from [%d,%d)", tok.Text, tok.Start, tok.End)
			}
			prevEnd = tok.End
		}
	})
}

func FuzzNormalizeTerm(f *testing.F) {
	for _, seed := range []string{"Mining", "don't", "1999", "ÅNGSTRÖM", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, tok string) {
		got := NormalizeTerm(tok) // must not panic
		for _, r := range got {
			if r < 'a' || r > 'z' {
				t.Errorf("NormalizeTerm(%q) = %q contains non a-z rune", tok, got)
			}
		}
		if !utf8.ValidString(got) {
			t.Errorf("NormalizeTerm(%q) produced invalid UTF-8", tok)
		}
	})
}

func FuzzDictionaryFindAll(f *testing.F) {
	f.Add("Wei Wang and Richard R. Muntz at SIGMOD")
	f.Add("")
	f.Add("wang wang wang")
	f.Fuzz(func(t *testing.T, text string) {
		d := NewDictionary()
		d.Add("Wei Wang", 1)
		d.Add("Richard R. Muntz", 2)
		d.Add("SIGMOD", 3)
		toks := Tokenize(text)
		matches := d.FindAll(toks)
		prevEnd := 0
		for _, m := range matches {
			if m.TokenStart < prevEnd || m.TokenEnd <= m.TokenStart || m.TokenEnd > len(toks) {
				t.Fatalf("match %+v overlaps or out of range", m)
			}
			prevEnd = m.TokenEnd
		}
	})
}
