package metapath

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"shine/internal/hin"
)

// randomDBLP builds a random DBLP-schema graph for walk property
// tests.
func randomDBLP(seed int64) (*hin.DBLPSchema, *hin.Graph, []hin.ObjectID) {
	rng := rand.New(rand.NewSource(seed))
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	nAuthors := 1 + rng.Intn(8)
	authors := make([]hin.ObjectID, nAuthors)
	for i := range authors {
		authors[i] = b.MustAddObject(d.Author, fmt.Sprintf("a%d", i))
	}
	venue := b.MustAddObject(d.Venue, "V")
	term := b.MustAddObject(d.Term, "t")
	for i := 0; i < 1+rng.Intn(15); i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("p%d", i))
		for k := rng.Intn(3); k > 0; k-- {
			b.MustAddLink(d.Write, authors[rng.Intn(nAuthors)], p)
		}
		if rng.Intn(3) > 0 {
			b.MustAddLink(d.Publish, venue, p)
		}
		if rng.Intn(3) > 0 {
			b.MustAddLink(d.Contain, p, term)
		}
	}
	return d, b.Build(), authors
}

// TestQuickWalksAreSubProbability: every meta-path walk yields
// non-negative entries summing to at most 1 (mass may die at dead
// ends, never appear from nowhere).
func TestQuickWalksAreSubProbability(t *testing.T) {
	f := func(seed int64) bool {
		d, g, authors := randomDBLP(seed)
		w := NewWalker(g, 64)
		for _, p := range DBLPPaperPaths(d) {
			for _, a := range authors {
				dist, err := w.Walk(a, p)
				if err != nil {
					return false
				}
				sum := 0.0
				ok := true
				dist.ForEach(func(_ int32, x float64) {
					if x < 0 {
						ok = false
					}
					sum += x
				})
				if !ok || sum > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWalkEndTypesRespectPath: every object with mass after a
// walk has the path's end type.
func TestQuickWalkEndTypesRespectPath(t *testing.T) {
	f := func(seed int64) bool {
		d, g, authors := randomDBLP(seed)
		w := NewWalker(g, 64)
		for _, p := range DBLPPaperPaths(d) {
			end := p.EndType(d.Schema)
			for _, a := range authors {
				dist, err := w.Walk(a, p)
				if err != nil {
					return false
				}
				ok := true
				dist.ForEach(func(i int32, _ float64) {
					if g.TypeOf(hin.ObjectID(i)) != end {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPrunedDominatedByExact: pruned walks are entry-wise lower
// bounds on exact walks.
func TestQuickPrunedDominatedByExact(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		d, g, authors := randomDBLP(seed)
		k := int(kRaw%8) + 1
		w := NewWalker(g, 64)
		p := MustParse(d.Schema, "A-P-A-P-V")
		for _, a := range authors {
			exact, err := w.Walk(a, p)
			if err != nil {
				return false
			}
			pruned, err := w.WalkPruned(a, p, k)
			if err != nil {
				return false
			}
			if pruned.Len() > k {
				return false
			}
			ok := true
			pruned.ForEach(func(i int32, x float64) {
				if x > exact.Get(i)+1e-12 {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
