package metapath

import (
	"strings"
	"sync"
	"testing"
)

func TestWalkerShardCount(t *testing.T) {
	_, g, _ := paperExample(t)
	cases := []struct {
		capacity   int
		wantShards int
	}{
		{0, 0},                      // caching disabled
		{2, 1},                      // tiny: exact global LRU
		{minShardedCapacity - 1, 1}, // just below the threshold
		{minShardedCapacity, cacheShards},
		{65536, cacheShards},
	}
	for _, c := range cases {
		w := NewWalker(g, c.capacity)
		if got := len(w.shards); got != c.wantShards {
			t.Errorf("NewWalker(capacity=%d): %d shards, want %d", c.capacity, got, c.wantShards)
		}
		// The summed per-shard capacity must cover the requested total.
		total := 0
		for _, s := range w.shards {
			total += s.capacity
		}
		if c.capacity > 0 && total < c.capacity {
			t.Errorf("NewWalker(capacity=%d): shard capacities sum to %d", c.capacity, total)
		}
	}
}

func TestWalkerShardedHitsAndMisses(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2048)
	apv := MustParse(d.Schema, "A-P-V")
	for i := 0; i < 3; i++ {
		if _, err := w.Walk(ids["wei"], apv); err != nil {
			t.Fatal(err)
		}
	}
	st := w.CacheStats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("sharded cache after 3 identical walks: %+v, want 2 hits / 1 miss / 1 entry", st)
	}
}

func TestWalkerShardStatsAggregate(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2048)
	for _, spec := range []string{"A-P-V", "A-P-A", "A-P-T", "A-P-Y", "A-P-A-P-V"} {
		for _, e := range []string{"wei", "coauthor"} {
			if _, err := w.Walk(ids[e], MustParse(d.Schema, spec)); err != nil {
				t.Fatal(err)
			}
		}
	}
	shards := w.ShardStats()
	if len(shards) != cacheShards {
		t.Fatalf("ShardStats returned %d shards, want %d", len(shards), cacheShards)
	}
	var sum CacheStats
	for _, s := range shards {
		sum.Entries += s.Entries
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Evictions += s.Evictions
	}
	if sum != w.CacheStats() {
		t.Errorf("ShardStats sum %+v != CacheStats %+v", sum, w.CacheStats())
	}
	// 10 distinct (entity, path) keys must spread across more than one
	// stripe — a degenerate hash would funnel them into one.
	occupied := 0
	for _, s := range shards {
		if s.Entries > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("all %d cached walks landed in %d shard(s)", sum.Entries, occupied)
	}
}

func TestWalkerShardedCollect(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2048)
	apv := MustParse(d.Schema, "A-P-V")
	for i := 0; i < 3; i++ {
		if _, err := w.Walk(ids["wei"], apv); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]float64{}
	w.Collect(func(name string, value float64) { got[name] = value })
	if got["shine_walker_cache_hits_total"] != 2 || got["shine_walker_cache_misses_total"] != 1 {
		t.Errorf("aggregate series wrong: %v", got)
	}
	// One labelled series per shard and per counter, summing back to
	// the aggregate.
	shardLines, shardHits, shardEntries := 0, 0.0, 0.0
	for name, v := range got {
		if !strings.Contains(name, `{shard="`) {
			continue
		}
		shardLines++
		if strings.HasPrefix(name, "shine_walker_cache_shard_hits_total{") {
			shardHits += v
		}
		if strings.HasPrefix(name, "shine_walker_cache_shard_entries{") {
			shardEntries += v
		}
	}
	if want := cacheShards * 4; shardLines != want {
		t.Errorf("%d per-shard series emitted, want %d", shardLines, want)
	}
	if shardHits != 2 || shardEntries != 1 {
		t.Errorf("per-shard series sum to hits=%v entries=%v, want 2/1", shardHits, shardEntries)
	}
}

func TestWalkerSingleShardCollectOmitsShardSeries(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2)
	if _, err := w.Walk(ids["wei"], MustParse(d.Schema, "A-P-V")); err != nil {
		t.Fatal(err)
	}
	w.Collect(func(name string, _ float64) {
		if strings.Contains(name, "shard") {
			t.Errorf("single-shard cache emitted per-shard series %q", name)
		}
	})
}

func TestWalkerShardedClearCache(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2048)
	if _, err := w.Walk(ids["wei"], MustParse(d.Schema, "A-P-V")); err != nil {
		t.Fatal(err)
	}
	w.ClearCache()
	if st := w.CacheStats(); st.Entries != 0 {
		t.Errorf("sharded cache holds %d entries after clear", st.Entries)
	}
	if st := w.CacheStats(); st.Misses != 1 {
		t.Errorf("clear reset the miss counter: %+v", st)
	}
}

// TestWalkerShardedConcurrentStress hammers a sharded cache from many
// goroutines with a widened key space (distinct pruning bounds
// multiply the keys per path), then checks the counter invariants
// that must hold exactly once the walker is quiescent:
//
//	hits + misses == total lookups
//	entries       <= total capacity
//	entries + evictions <= misses (stores never outnumber misses)
//
// Run under -race in verify.sh, this also proves shard striping
// introduces no data races.
func TestWalkerShardedConcurrentStress(t *testing.T) {
	d, g, ids := paperExample(t)
	const capacity = 2048
	w := NewWalker(g, capacity)
	if len(w.shards) != cacheShards {
		t.Fatalf("capacity %d produced %d shards, want %d", capacity, len(w.shards), cacheShards)
	}
	paths := DBLPPaperPaths(d)
	entities := []string{"wei", "coauthor"}

	const goroutines = 8
	const opsPer = 400
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for op := 0; op < opsPer; op++ {
				// Mixed-radix decode of (op + offset) so every
				// goroutine sweeps all 2×10×10 = 200 distinct cache
				// keys, each starting at a different point.
				k := (op + gi*25) % 200
				e := ids[entities[k%len(entities)]]
				p := paths[(k/2)%len(paths)]
				prune := k / 20 // 10 distinct cache keys per (entity, path)
				if _, err := w.WalkPruned(e, p, prune); err != nil {
					errc <- err
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent WalkPruned: %v", err)
	}

	st := w.CacheStats()
	total := uint64(goroutines * opsPer)
	if st.Hits+st.Misses != total {
		t.Errorf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, total)
	}
	if st.Entries > capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, capacity)
	}
	if uint64(st.Entries)+st.Evictions > st.Misses {
		t.Errorf("entries %d + evictions %d exceed misses %d", st.Entries, st.Evictions, st.Misses)
	}

	// Quiescent re-walks of every key must all hit.
	before := w.CacheStats()
	seen := 0
	for _, en := range entities {
		for _, p := range paths {
			for prune := 0; prune < 10; prune++ {
				if _, err := w.WalkPruned(ids[en], p, prune); err != nil {
					t.Fatal(err)
				}
				seen++
			}
		}
	}
	after := w.CacheStats()
	if after.Hits-before.Hits != uint64(seen) {
		t.Errorf("re-walking %d cached keys produced %d hits and %d new misses",
			seen, after.Hits-before.Hits, after.Misses-before.Misses)
	}
}
