package metapath

import (
	"fmt"
	"math"
	"testing"

	"shine/internal/hin"
	"shine/internal/sparse"
)

// paperExample builds the Section 3.2 scenario: an author with six
// SIGMOD papers, one VLDB paper and one SIGMETRICS paper, plus a
// coauthor on one of the SIGMOD papers who also publishes in VLDB.
func paperExample(t testing.TB) (*hin.DBLPSchema, *hin.Graph, map[string]hin.ObjectID) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	ids := map[string]hin.ObjectID{
		"wei":        b.MustAddObject(d.Author, "Wei Wang"),
		"coauthor":   b.MustAddObject(d.Author, "Richard R. Muntz"),
		"sigmod":     b.MustAddObject(d.Venue, "SIGMOD"),
		"vldb":       b.MustAddObject(d.Venue, "VLDB"),
		"sigmetrics": b.MustAddObject(d.Venue, "SIGMETRICS"),
	}
	for i := 0; i < 6; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("sigmod-p%d", i))
		b.MustAddLink(d.Write, ids["wei"], p)
		b.MustAddLink(d.Publish, ids["sigmod"], p)
		if i == 0 {
			b.MustAddLink(d.Write, ids["coauthor"], p)
			ids["shared"] = p
		}
	}
	pv := b.MustAddObject(d.Paper, "vldb-p")
	b.MustAddLink(d.Write, ids["wei"], pv)
	b.MustAddLink(d.Publish, ids["vldb"], pv)
	ps := b.MustAddObject(d.Paper, "sigmetrics-p")
	b.MustAddLink(d.Write, ids["wei"], ps)
	b.MustAddLink(d.Publish, ids["sigmetrics"], ps)
	// The coauthor publishes two more papers in VLDB.
	for i := 0; i < 2; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("co-vldb-p%d", i))
		b.MustAddLink(d.Write, ids["coauthor"], p)
		b.MustAddLink(d.Publish, ids["vldb"], p)
	}
	return d, b.Build(), ids
}

func TestWalkEmptyPathIsUnit(t *testing.T) {
	_, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	d, err := w.Walk(ids["wei"], Path{})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if d.Len() != 1 || d.Get(int32(ids["wei"])) != 1 {
		t.Errorf("empty-path walk = %v", d)
	}
}

func TestWalkAPVMatchesPaperRatios(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	apv := MustParse(d.Schema, "A-P-V")
	dist, err := w.Walk(ids["wei"], apv)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	// Wei has 8 papers: 6 SIGMOD, 1 VLDB, 1 SIGMETRICS. The paper
	// reports the SIGMOD probability is exactly 6x the VLDB one and
	// VLDB equals SIGMETRICS.
	ps := dist.Get(int32(ids["sigmod"]))
	pv := dist.Get(int32(ids["vldb"]))
	pm := dist.Get(int32(ids["sigmetrics"]))
	if math.Abs(ps-0.75) > 1e-12 {
		t.Errorf("P(SIGMOD) = %v, want 0.75", ps)
	}
	if math.Abs(pv-pm) > 1e-12 {
		t.Errorf("P(VLDB)=%v != P(SIGMETRICS)=%v", pv, pm)
	}
	if math.Abs(ps/pv-6) > 1e-9 {
		t.Errorf("SIGMOD/VLDB ratio = %v, want 6", ps/pv)
	}
	if !dist.IsDistribution(1e-12) {
		t.Errorf("A-P-V walk is not a distribution: sum = %v", dist.Sum())
	}
}

func TestWalkAPACoauthors(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	apa := MustParse(d.Schema, "A-P-A")
	dist, err := w.Walk(ids["wei"], apa)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	// From wei: 8 papers uniformly; the shared paper has authors
	// {wei, coauthor}, the others only wei. So P(coauthor) = 1/8 * 1/2.
	want := 1.0 / 16
	if got := dist.Get(int32(ids["coauthor"])); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(coauthor) = %v, want %v", got, want)
	}
	// Walks may return to the start: P(wei) = 7/8 + 1/16.
	if got := dist.Get(int32(ids["wei"])); math.Abs(got-(7.0/8+1.0/16)) > 1e-12 {
		t.Errorf("P(wei) = %v", got)
	}
}

func TestWalkLength4DiffersFromLength2(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	apv, _ := w.Walk(ids["wei"], MustParse(d.Schema, "A-P-V"))
	apapv, err := w.Walk(ids["wei"], MustParse(d.Schema, "A-P-A-P-V"))
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	// Via the coauthor (who favours VLDB), the length-4 path shifts
	// relative mass towards VLDB compared to the direct path.
	direct := apv.Get(int32(ids["vldb"])) / apv.Get(int32(ids["sigmod"]))
	viaCo := apapv.Get(int32(ids["vldb"])) / apapv.Get(int32(ids["sigmod"]))
	if viaCo <= direct {
		t.Errorf("A-P-A-P-V VLDB share (%v) not above A-P-V share (%v)", viaCo, direct)
	}
	if apapv.Sum() > 1+1e-12 {
		t.Errorf("walk mass exceeds 1: %v", apapv.Sum())
	}
}

func TestWalkMassDiesAtDeadEnds(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "A1")
	p1 := b.MustAddObject(d.Paper, "P1") // has a venue
	p2 := b.MustAddObject(d.Paper, "P2") // no venue: dead end for A-P-V
	v := b.MustAddObject(d.Venue, "V1")
	b.MustAddLink(d.Write, a, p1)
	b.MustAddLink(d.Write, a, p2)
	b.MustAddLink(d.Publish, v, p1)
	g := b.Build()

	w := NewWalker(g, 16)
	dist, err := w.Walk(a, MustParse(d.Schema, "A-P-V"))
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if math.Abs(dist.Sum()-0.5) > 1e-12 {
		t.Errorf("sum = %v, want 0.5 (half the mass dies at the venue-less paper)", dist.Sum())
	}
	if got := dist.Get(int32(v)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(V1) = %v, want 0.5", got)
	}
}

func TestWalkTypeMismatch(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	if _, err := w.Walk(ids["sigmod"], MustParse(d.Schema, "A-P-V")); err == nil {
		t.Error("walking an author path from a venue accepted")
	}
	if _, err := w.Walk(hin.ObjectID(10_000), MustParse(d.Schema, "A-P-V")); err == nil {
		t.Error("walking from out-of-range object accepted")
	}
}

func TestWalkMixture(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	paths := []Path{MustParse(d.Schema, "A-P-V"), MustParse(d.Schema, "A-P-A")}
	mix, err := w.WalkMixture(ids["wei"], paths, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("WalkMixture: %v", err)
	}
	apv, _ := w.Walk(ids["wei"], paths[0])
	apa, _ := w.Walk(ids["wei"], paths[1])
	want := sparse.Mix([]sparse.Vector{apv.Thaw(), apa.Thaw()}, []float64{0.5, 0.5})
	if !mix.Equal(want, 1e-12) {
		t.Errorf("mixture = %v, want %v", mix, want)
	}
	// Zero-weight paths must be skipped entirely.
	onlyAPV, err := w.WalkMixture(ids["wei"], paths, []float64{1, 0})
	if err != nil {
		t.Fatalf("WalkMixture: %v", err)
	}
	if !onlyAPV.Equal(apv.Thaw(), 1e-12) {
		t.Error("zero-weight path contributed mass")
	}
	if _, err := w.WalkMixture(ids["wei"], paths, []float64{1}); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestWalkerCacheHitsAndEviction(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2)
	apv := MustParse(d.Schema, "A-P-V")
	apa := MustParse(d.Schema, "A-P-A")
	apt := MustParse(d.Schema, "A-P-T")

	if _, err := w.Walk(ids["wei"], apv); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Walk(ids["wei"], apv); err != nil {
		t.Fatal(err)
	}
	st := w.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("after repeat walk: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}

	// Fill beyond capacity; the least recently used entry (apv after
	// touching apa) must be evicted.
	if _, err := w.Walk(ids["wei"], apa); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Walk(ids["wei"], apt); err != nil {
		t.Fatal(err)
	}
	if st := w.CacheStats(); st.Entries != 2 {
		t.Errorf("cache entries = %d, want 2", st.Entries)
	}
	before := w.CacheStats().Misses
	if _, err := w.Walk(ids["wei"], apv); err != nil {
		t.Fatal(err)
	}
	if after := w.CacheStats().Misses; after != before+1 {
		t.Error("evicted entry served from cache")
	}
}

func TestWalkerCacheDisabled(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 0)
	apv := MustParse(d.Schema, "A-P-V")
	d1, err := w.Walk(ids["wei"], apv)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := w.Walk(ids["wei"], apv)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Equal(d2, 1e-15) {
		t.Error("uncached walks disagree")
	}
	if st := w.CacheStats(); st.Entries != 0 {
		t.Errorf("disabled cache holds %d entries", st.Entries)
	}
}

func TestWalkerClearCache(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	if _, err := w.Walk(ids["wei"], MustParse(d.Schema, "A-P-V")); err != nil {
		t.Fatal(err)
	}
	w.ClearCache()
	if st := w.CacheStats(); st.Entries != 0 {
		t.Errorf("cache holds %d entries after clear", st.Entries)
	}
}

func TestWalkerConcurrentUse(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 4)
	paths := DBLPPaperPaths(d)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 50; j++ {
				if _, err := w.Walk(ids["wei"], paths[(i+j)%len(paths)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent walk: %v", err)
		}
	}
}

func TestWalkPrunedSubsetOfExact(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 64)
	p := MustParse(d.Schema, "A-P-A-P-V")
	exact, err := w.Walk(ids["wei"], p)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := w.WalkPruned(ids["wei"], p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Len() > 2 {
		t.Fatalf("pruned support %d > 2", pruned.Len())
	}
	pruned.ForEach(func(i int32, x float64) {
		if x > exact.Get(i)+1e-12 {
			t.Errorf("pruned[%d] = %v exceeds exact %v", i, x, exact.Get(i))
		}
	})
	if pruned.Sum() > exact.Sum()+1e-12 {
		t.Error("pruned mass exceeds exact mass")
	}
}

func TestWalkPrunedZeroIsExact(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 64)
	p := MustParse(d.Schema, "A-P-V")
	exact, _ := w.Walk(ids["wei"], p)
	viaPruned, err := w.WalkPruned(ids["wei"], p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Equal(viaPruned, 0) {
		t.Error("WalkPruned(0) differs from Walk")
	}
}

func TestWalkPrunedCacheKeysDistinct(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 64)
	p := MustParse(d.Schema, "A-P-V")
	exact, _ := w.Walk(ids["wei"], p)
	pruned, err := w.WalkPruned(ids["wei"], p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Len() == pruned.Len() {
		t.Fatal("test needs a path with support > 1")
	}
	// Re-fetch both; the cache must not have mixed them up.
	exact2, _ := w.Walk(ids["wei"], p)
	if !exact.Equal(exact2, 0) {
		t.Error("exact walk corrupted by pruned cache entry")
	}
}

func TestWalkPrunedRejectsNegative(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 4)
	if _, err := w.WalkPruned(ids["wei"], MustParse(d.Schema, "A-P-V"), -1); err == nil {
		t.Error("negative pruning bound accepted")
	}
}

func TestWalkMixturePruned(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 64)
	paths := []Path{MustParse(d.Schema, "A-P-V"), MustParse(d.Schema, "A-P-A-P-V")}
	mix, err := w.WalkMixturePruned(ids["wei"], paths, []float64{0.5, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	exactMix, _ := w.WalkMixture(ids["wei"], paths, []float64{0.5, 0.5})
	if mix.Sum() > exactMix.Sum()+1e-12 {
		t.Error("pruned mixture mass exceeds exact")
	}
}

func TestWalkerEvictionCounter(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2)
	for _, spec := range []string{"A-P-V", "A-P-A", "A-P-T"} {
		if _, err := w.Walk(ids["wei"], MustParse(d.Schema, spec)); err != nil {
			t.Fatal(err)
		}
	}
	st := w.CacheStats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (capacity 2, 3 distinct walks)", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

func TestWalkerCollect(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 2)
	apv := MustParse(d.Schema, "A-P-V")
	for i := 0; i < 3; i++ {
		if _, err := w.Walk(ids["wei"], apv); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]float64{}
	w.Collect(func(name string, value float64) { got[name] = value })
	want := map[string]float64{
		"shine_walker_cache_entries":         1,
		"shine_walker_cache_hits_total":      2,
		"shine_walker_cache_misses_total":    1,
		"shine_walker_cache_evictions_total": 0,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}
