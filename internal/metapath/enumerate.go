package metapath

import (
	"fmt"

	"shine/internal/hin"
)

// Enumerate lists all meta-paths starting from the given object type
// with length between 1 and maxLen, by breadth-first traversal of the
// network schema — the mechanical alternative the paper offers to
// expert-specified path sets ("these meta-paths could be determined …
// by traversing the network schema starting from the same object type
// as entity e with a length constraint using standard traversal
// methods such as the BFS algorithm", Section 3.2).
//
// Paths are returned in BFS order: all length-1 paths first (in
// relation-ID order), then length-2, and so on. Immediate
// backtracking (following a relation and then its inverse) is allowed
// — A-P-A is exactly such a path and is semantically central — so the
// number of paths grows with the schema's branching factor.
func Enumerate(s *hin.Schema, start hin.TypeID, maxLen int) ([]Path, error) {
	if maxLen < 1 {
		return nil, fmt.Errorf("metapath: maxLen %d must be at least 1", maxLen)
	}
	if start < 0 || int(start) >= s.NumTypes() {
		return nil, fmt.Errorf("metapath: invalid start type %d", start)
	}
	var out []Path
	frontier := [][]hin.RelationID{nil}
	for depth := 1; depth <= maxLen; depth++ {
		var next [][]hin.RelationID
		for _, prefix := range frontier {
			at := start
			if len(prefix) > 0 {
				at = s.Relation(prefix[len(prefix)-1]).To
			}
			for _, r := range s.RelationsFrom(at) {
				seq := make([]hin.RelationID, len(prefix)+1)
				copy(seq, prefix)
				seq[len(prefix)] = r
				p, err := New(s, seq...)
				if err != nil {
					return nil, err
				}
				out = append(out, p)
				next = append(next, seq)
			}
		}
		frontier = next
	}
	return out, nil
}

// EnumerateEndingIn filters Enumerate's output to paths whose end type
// is one of the given types. SHINE's object model only benefits from
// paths ending in types that appear in documents (e.g. authors,
// venues, terms and years in DBLP web text), so this is the natural
// automatic path-set constructor.
func EnumerateEndingIn(s *hin.Schema, start hin.TypeID, maxLen int, endTypes ...hin.TypeID) ([]Path, error) {
	all, err := Enumerate(s, start, maxLen)
	if err != nil {
		return nil, err
	}
	allowed := make(map[hin.TypeID]bool, len(endTypes))
	for _, t := range endTypes {
		allowed[t] = true
	}
	var out []Path
	for _, p := range all {
		if allowed[p.EndType(s)] {
			out = append(out, p)
		}
	}
	return out, nil
}

// DBLPPaperPaths returns the ten DBLP meta-paths of Table 3, in the
// paper's order: A-P-A, A-P-A-P-A, A-P-V-P-A, A-P-V, A-P-A-P-V,
// A-P-T-P-V, A-P-T, A-P-A-P-T, A-P-V-P-T, A-P-Y.
func DBLPPaperPaths(d *hin.DBLPSchema) []Path {
	notations := []string{
		"A-P-A", "A-P-A-P-A", "A-P-V-P-A",
		"A-P-V", "A-P-A-P-V", "A-P-T-P-V",
		"A-P-T", "A-P-A-P-T", "A-P-V-P-T",
		"A-P-Y",
	}
	paths, err := ParseAll(d.Schema, notations)
	if err != nil {
		panic(err) // static notation over a static schema cannot fail
	}
	return paths
}

// DBLPLength2Paths returns the four length-2 DBLP meta-paths used by
// the paper's SHINE4 configuration: A-P-A, A-P-V, A-P-T, A-P-Y.
func DBLPLength2Paths(d *hin.DBLPSchema) []Path {
	paths, err := ParseAll(d.Schema, []string{"A-P-A", "A-P-V", "A-P-T", "A-P-Y"})
	if err != nil {
		panic(err)
	}
	return paths
}

// IMDBActorPaths returns the fourteen actor-rooted IMDb meta-paths the
// paper lists at the end of Section 4 for linking actor mentions.
func IMDBActorPaths(m *hin.IMDBSchema) []Path {
	notations := []string{
		"Ac-M-Ac", "Ac-M-Ac-M-Ac", "Ac-M-G-M-Ac", "Ac-M-D-M-Ac",
		"Ac-M-G", "Ac-M-Ac-M-G", "Ac-M-D-M-G",
		"Ac-M-K", "Ac-M-Ac-M-K", "Ac-M-G-M-K", "Ac-M-D-M-K",
		"Ac-M-D", "Ac-M-Ac-M-D", "Ac-M-G-M-D",
	}
	paths, err := ParseAll(m.Schema, notations)
	if err != nil {
		panic(err)
	}
	return paths
}
