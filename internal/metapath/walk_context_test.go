package metapath

import (
	"context"
	"sync/atomic"
	"testing"
)

// countdownCtx is a context whose Err() starts returning
// context.Canceled after a fixed number of calls — a deterministic
// way to cancel "mid-walk" at an exact checkpoint.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestWalkContextPreCanceled(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := w.WalkContext(ctx, ids["wei"], MustParse(d.Schema, "A-P-V"))
	if err != context.Canceled {
		t.Fatalf("WalkContext on canceled ctx: err = %v, want context.Canceled", err)
	}
	st := w.WalkStats()
	if st.Completed != 0 || st.Hops != 0 {
		t.Errorf("pre-canceled walk did work: %+v", st)
	}
	if st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}
}

// TestWalkContextMidWalkCancel cancels between the two hops of A-P-V:
// the walk must abort after the first hop, complete zero walks, and
// store nothing in the cache.
func TestWalkContextMidWalkCancel(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	apv := MustParse(d.Schema, "A-P-V")
	// Err() is consulted once at WalkPrunedContext entry and once
	// before each of the two hops; budget 2 calls so the second hop's
	// check fails.
	ctx := newCountdownCtx(2)
	if _, err := w.WalkContext(ctx, ids["wei"], apv); err != context.Canceled {
		t.Fatalf("mid-walk cancel: err = %v, want context.Canceled", err)
	}
	st := w.WalkStats()
	if st.Completed != 0 {
		t.Errorf("Completed = %d, want 0 (walk was canceled)", st.Completed)
	}
	if st.Hops != 1 {
		t.Errorf("Hops = %d, want 1 (canceled before the second hop)", st.Hops)
	}
	if st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}

	// The partial walk must not have been cached: a fresh walk on a
	// live context recomputes from scratch and reports a cache miss.
	dist, err := w.WalkContext(context.Background(), ids["wei"], apv)
	if err != nil {
		t.Fatalf("Walk after canceled walk: %v", err)
	}
	if got := dist.Get(int32(ids["sigmod"])); got != 0.75 {
		t.Errorf("P(SIGMOD) after canceled walk = %v, want 0.75", got)
	}
	if cs := w.CacheStats(); cs.Hits != 0 {
		t.Errorf("cache hits = %d, want 0 (canceled walk must not populate the cache)", cs.Hits)
	}
	if st := w.WalkStats(); st.Completed != 1 || st.Hops != 3 {
		t.Errorf("after recompute: %+v, want Completed=1 Hops=3", st)
	}
}

func TestWalkMixtureDistContextCancel(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	paths := []Path{MustParse(d.Schema, "A-P-V"), MustParse(d.Schema, "A-P-A")}
	weights := []float64{0.5, 0.5}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.WalkMixtureDistContext(ctx, ids["wei"], paths, weights, 0); err != context.Canceled {
		t.Fatalf("mixture on canceled ctx: err = %v, want context.Canceled", err)
	}
	if st := w.WalkStats(); st.Completed != 0 {
		t.Errorf("Completed = %d, want 0", st.Completed)
	}
}

// TestWalkContextMatchesWalk: threading a live context changes
// nothing about the result — same Dist, bit for bit.
func TestWalkContextMatchesWalk(t *testing.T) {
	d, g, ids := paperExample(t)
	apv := MustParse(d.Schema, "A-P-V")
	plain := NewWalker(g, 16)
	want, err := plain.Walk(ids["wei"], apv)
	if err != nil {
		t.Fatal(err)
	}
	ctxed := NewWalker(g, 16)
	got, err := ctxed.WalkContext(context.Background(), ids["wei"], apv)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != got.Len() {
		t.Fatalf("Len: %d vs %d", want.Len(), got.Len())
	}
	for k := 0; k < want.Len(); k++ {
		wi, wv := want.At(k)
		gi, gv := got.At(k)
		if wi != gi || wv != gv {
			t.Fatalf("entry %d: (%d,%v) vs (%d,%v)", k, wi, wv, gi, gv)
		}
	}
}
