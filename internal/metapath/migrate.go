package metapath

import (
	"container/list"

	"shine/internal/hin"
	"shine/internal/sparse"
)

// MigrateStats reports what CloneFor carried across generations.
type MigrateStats struct {
	Kept    int // cached distributions migrated to the new walker
	Dropped int // cached distributions discarded by the keep predicate
}

// CloneFor builds a Walker over g — typically the merged graph of a
// delta — seeded with the cache entries of w whose source entity keep
// accepts. A walk distribution depends only on the rows reachable from
// its entity within the path length, so after a small graph delta most
// cached walks are still exact; the caller passes a keep predicate that
// rejects exactly the entities whose walks could have changed (see
// shine's per-entity invalidation) and every other entry survives the
// generation swap as a warm hit instead of a recomputation.
//
// The clone mirrors w's shard layout — shard count and per-shard
// capacity — so shardFor assigns every surviving key to the same
// stripe, and entries are re-inserted in recency order, so the new
// LRU evicts in the same order the old one would have. Hit/miss and
// walk counters carry over: the clone continues the lineage of the
// walker it replaces rather than resetting monitoring series. A nil
// keep keeps everything. w is only read (under each shard's lock), so
// CloneFor is safe against concurrent walks on the old generation;
// the cached sparse.Dist values are frozen and shared, not copied.
func (w *Walker) CloneFor(g *hin.Graph, keep func(hin.ObjectID) bool) (*Walker, MigrateStats) {
	nw := &Walker{g: g, accums: sparse.NewAccumPool(g.NumObjects())}
	nw.walks.Store(w.walks.Load())
	nw.hops.Store(w.hops.Load())
	nw.canceled.Store(w.canceled.Load())

	var stats MigrateStats
	if w.shards == nil {
		return nw, stats
	}
	nw.shards = make([]*walkShard, len(w.shards))
	for i, src := range w.shards {
		dst := &walkShard{
			cache: make(map[walkKey]*list.Element),
			order: list.New(),
		}
		src.mu.Lock()
		dst.capacity = src.capacity
		dst.hits = src.hits
		dst.misses = src.misses
		dst.evictions = src.evictions
		// Walk LRU→MRU and push to the front so the clone's recency
		// order matches the source's with the dropped entries elided.
		for el := src.order.Back(); el != nil; el = el.Prev() {
			ent := el.Value.(*cacheEntry)
			if keep != nil && !keep(ent.key.entity) {
				stats.Dropped++
				continue
			}
			dst.cache[ent.key] = dst.order.PushFront(&cacheEntry{key: ent.key, dist: ent.dist})
			stats.Kept++
		}
		src.mu.Unlock()
		nw.shards[i] = dst
	}
	return nw, stats
}
