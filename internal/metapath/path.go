// Package metapath implements meta-paths over a heterogeneous
// information network schema and the meta-path constrained random
// walks (Formulas 10–11 of the SHINE paper) that generate the
// entity-specific object distributions Pe(v|p).
//
// A meta-path is a composite relation R1 ∘ R2 ∘ … ∘ Rl defined at the
// schema level. Following the paper, a path can be written as a
// sequence of object-type abbreviations ("A-P-V") when consecutive
// types are joined by a unique relation, or as a sequence of relation
// names when they are not.
package metapath

import (
	"fmt"
	"strings"

	"shine/internal/hin"
)

// Path is an immutable meta-path: a sequence of relation IDs whose
// types compose, i.e. Relation(k).To == Relation(k+1).From. The empty
// path is valid and denotes the identity walk (Formula 10).
type Path struct {
	rels []hin.RelationID
	// label caches the canonical type-sequence rendering.
	label string
}

// New constructs a Path from a relation sequence, validating that the
// relations compose under the schema.
func New(s *hin.Schema, rels ...hin.RelationID) (Path, error) {
	for k, r := range rels {
		ri := s.Relation(r) // panics on out-of-range, matching schema contract
		if k > 0 {
			prev := s.Relation(rels[k-1])
			if prev.To != ri.From {
				return Path{}, fmt.Errorf(
					"metapath: relation %s (from %s) does not compose with %s (to %s)",
					ri.Name, s.Type(ri.From).Abbrev, prev.Name, s.Type(prev.To).Abbrev)
			}
		}
	}
	p := Path{rels: append([]hin.RelationID(nil), rels...)}
	p.label = p.render(s)
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(s *hin.Schema, rels ...hin.RelationID) Path {
	p, err := New(s, rels...)
	if err != nil {
		panic(err)
	}
	return p
}

// Parse builds a Path from the paper's type-abbreviation notation,
// e.g. "A-P-V" over the DBLP schema. Each consecutive type pair must
// be joined by exactly one relation in the schema; otherwise the
// notation is ambiguous and Parse returns an error telling the caller
// to construct the path from relation IDs instead.
func Parse(s *hin.Schema, notation string) (Path, error) {
	parts := strings.Split(notation, "-")
	if len(parts) < 2 {
		return Path{}, fmt.Errorf("metapath: %q has fewer than two types", notation)
	}
	types := make([]hin.TypeID, len(parts))
	for i, abbr := range parts {
		abbr = strings.TrimSpace(abbr)
		t, ok := s.TypeByAbbrev(abbr)
		if !ok {
			return Path{}, fmt.Errorf("metapath: unknown type abbreviation %q in %q", abbr, notation)
		}
		types[i] = t
	}
	rels := make([]hin.RelationID, 0, len(types)-1)
	for i := 0; i+1 < len(types); i++ {
		cands := s.RelationsBetween(types[i], types[i+1])
		switch len(cands) {
		case 0:
			return Path{}, fmt.Errorf("metapath: no relation from %s to %s in %q",
				s.Type(types[i]).Abbrev, s.Type(types[i+1]).Abbrev, notation)
		case 1:
			rels = append(rels, cands[0])
		default:
			return Path{}, fmt.Errorf(
				"metapath: %d relations from %s to %s; %q is ambiguous, construct the path from relation IDs",
				len(cands), s.Type(types[i]).Abbrev, s.Type(types[i+1]).Abbrev, notation)
		}
	}
	return New(s, rels...)
}

// MustParse is Parse that panics on error.
func MustParse(s *hin.Schema, notation string) Path {
	p, err := Parse(s, notation)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseAll parses a list of notations over the same schema.
func ParseAll(s *hin.Schema, notations []string) ([]Path, error) {
	paths := make([]Path, 0, len(notations))
	for _, n := range notations {
		p, err := Parse(s, n)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Len returns the number of relations in the path (the paper's path
// length l).
func (p Path) Len() int { return len(p.rels) }

// IsEmpty reports whether the path is the identity path.
func (p Path) IsEmpty() bool { return len(p.rels) == 0 }

// Relations returns a copy of the relation sequence.
func (p Path) Relations() []hin.RelationID {
	return append([]hin.RelationID(nil), p.rels...)
}

// Relation returns the k-th relation of the path.
func (p Path) Relation(k int) hin.RelationID { return p.rels[k] }

// Prefix returns the path made of the first k relations. Prefix(0) is
// the empty path.
func (p Path) Prefix(k int) Path {
	return Path{rels: p.rels[:k], label: ""}
}

// StartType returns the source type of the path, or hin.NoType for
// the empty path.
func (p Path) StartType(s *hin.Schema) hin.TypeID {
	if len(p.rels) == 0 {
		return hin.NoType
	}
	return s.Relation(p.rels[0]).From
}

// EndType returns the destination type of the path, or hin.NoType for
// the empty path.
func (p Path) EndType(s *hin.Schema) hin.TypeID {
	if len(p.rels) == 0 {
		return hin.NoType
	}
	return s.Relation(p.rels[len(p.rels)-1]).To
}

// render produces the canonical type-sequence label, e.g. "A-P-V".
func (p Path) render(s *hin.Schema) string {
	if len(p.rels) == 0 {
		return "∅"
	}
	var b strings.Builder
	b.WriteString(s.Type(s.Relation(p.rels[0]).From).Abbrev)
	for _, r := range p.rels {
		b.WriteString("-")
		b.WriteString(s.Type(s.Relation(r).To).Abbrev)
	}
	return b.String()
}

// String returns the canonical label computed at construction time.
// Paths produced by Prefix have no cached label and render as a
// relation count.
func (p Path) String() string {
	if p.label != "" {
		return p.label
	}
	if len(p.rels) == 0 {
		return "∅"
	}
	return fmt.Sprintf("path(%d relations)", len(p.rels))
}

// Reverse returns the path walked backwards: each relation replaced
// by its inverse, in reverse order. Walking p from e and asking for
// the mass at v corresponds to walking p.Reverse from v and asking
// about e's neighbourhood — useful for "which entities reach this
// object" queries during debugging and candidate mining.
func (p Path) Reverse(s *hin.Schema) Path {
	rels := make([]hin.RelationID, len(p.rels))
	for i, r := range p.rels {
		rels[len(p.rels)-1-i] = s.Inverse(r)
	}
	return MustNew(s, rels...)
}

// Concat returns the path p followed by q. The end type of p must
// equal the start type of q (checked by construction).
func (p Path) Concat(s *hin.Schema, q Path) (Path, error) {
	rels := make([]hin.RelationID, 0, len(p.rels)+len(q.rels))
	rels = append(rels, p.rels...)
	rels = append(rels, q.rels...)
	return New(s, rels...)
}

// Key returns a canonical comparable key for the path based on its
// relation sequence, suitable for map keys and caches.
func (p Path) Key() string {
	var b strings.Builder
	for k, r := range p.rels {
		if k > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	return b.String()
}

// Equal reports whether two paths have the same relation sequence.
func (p Path) Equal(q Path) bool {
	if len(p.rels) != len(q.rels) {
		return false
	}
	for i := range p.rels {
		if p.rels[i] != q.rels[i] {
			return false
		}
	}
	return true
}
