package metapath

import (
	"math/rand"
	"testing"

	"shine/internal/sparse"
)

// TestWalkMatchesReferenceBitForBit: the CSR scatter-gather kernel
// reproduces the map-backed reference kernel exactly — same support,
// same values to the last bit — across random graphs, paths and
// pruning levels. This is the determinism contract the frozen serving
// path rests on.
func TestWalkMatchesReferenceBitForBit(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		d, g, authors := randomDBLP(seed)
		w := NewWalker(g, 0) // cache off: every Walk runs the kernel
		rng := rand.New(rand.NewSource(seed))
		for _, p := range DBLPPaperPaths(d) {
			for _, a := range authors {
				maxSupport := 0
				if rng.Intn(2) == 0 {
					maxSupport = 1 + rng.Intn(6)
				}
				got, err := w.WalkPruned(a, p, maxSupport)
				if err != nil {
					t.Fatalf("seed %d: WalkPruned: %v", seed, err)
				}
				want, err := ReferenceWalk(g, a, p, maxSupport)
				if err != nil {
					t.Fatalf("seed %d: ReferenceWalk: %v", seed, err)
				}
				if got.Len() != len(want) {
					t.Fatalf("seed %d path %s e=%d k=%d: support %d vs reference %d",
						seed, p, a, maxSupport, got.Len(), len(want))
				}
				got.ForEach(func(i int32, x float64) {
					if wx := want[i]; x != wx {
						t.Fatalf("seed %d path %s e=%d k=%d: [%d] = %v, reference %v (bit-for-bit)",
							seed, p, a, maxSupport, i, x, wx)
					}
				})
			}
		}
	}
}

// TestWalkMixtureDistMatchesVectorMixture: the pooled frozen mixture
// agrees bit-for-bit with mixing the per-path reference walks in path
// order — the addition sequence logJoint uses.
func TestWalkMixtureDistMatchesVectorMixture(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d, g, authors := randomDBLP(seed)
		w := NewWalker(g, 64)
		paths := DBLPPaperPaths(d)
		rng := rand.New(rand.NewSource(seed + 100))
		weights := make([]float64, len(paths))
		sum := 0.0
		for i := range weights {
			weights[i] = rng.Float64()
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
		weights[rng.Intn(len(weights))] = 0 // exercise the skip-zero path

		for _, a := range authors {
			got, err := w.WalkMixtureDist(a, paths, weights, 0)
			if err != nil {
				t.Fatalf("seed %d: WalkMixtureDist: %v", seed, err)
			}
			refs := make([]sparse.Dist, len(paths))
			for k, p := range paths {
				rv, err := ReferenceWalk(g, a, p, 0)
				if err != nil {
					t.Fatal(err)
				}
				refs[k] = sparse.Freeze(rv)
			}
			want := sparse.MixDists(refs, weights)
			if got.Len() != want.Len() {
				t.Fatalf("seed %d e=%d: mixture support %d vs %d", seed, a, got.Len(), want.Len())
			}
			got.ForEach(func(i int32, x float64) {
				if wx := want.Get(i); x != wx {
					t.Fatalf("seed %d e=%d: mixture[%d] = %v, want %v (bit-for-bit)", seed, a, i, x, wx)
				}
			})
		}
	}
}

// TestWalkCacheReturnsAreImmutableAliases: the walker hands every
// caller the same frozen Dist backing arrays; corrupting a caller's
// *thawed copy* must not leak back into the cache. (The Dist API is
// read-only, so the only mutation surface is a Thaw'd map — verify the
// cache is unaffected by mutating it.)
func TestWalkCacheReturnsAreImmutableAliases(t *testing.T) {
	d, g, authors := randomDBLP(3)
	w := NewWalker(g, 64)
	p := DBLPPaperPaths(d)[0]
	first, err := w.Walk(authors[0], p)
	if err != nil {
		t.Fatal(err)
	}
	mutable := first.Thaw()
	for i := range mutable {
		mutable[i] = -1 // attack the thawed copy
	}
	again, err := w.Walk(authors[0], p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceWalk(g, authors[0], p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != len(ref) {
		t.Fatalf("cached support %d, want %d", again.Len(), len(ref))
	}
	again.ForEach(func(i int32, x float64) {
		if x != ref[i] {
			t.Fatalf("cache corrupted through a thawed copy: [%d] = %v, want %v", i, x, ref[i])
		}
	})
}
