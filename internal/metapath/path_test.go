package metapath

import (
	"strings"
	"testing"

	"shine/internal/hin"
)

func TestParseLength2(t *testing.T) {
	d := hin.NewDBLPSchema()
	p, err := Parse(d.Schema, "A-P-V")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	rels := p.Relations()
	if rels[0] != d.Write || rels[1] != d.PublishedAt {
		t.Errorf("relations = %v, want [write publishedAt]", rels)
	}
	if p.String() != "A-P-V" {
		t.Errorf("String = %q, want A-P-V", p.String())
	}
	if p.StartType(d.Schema) != d.Author || p.EndType(d.Schema) != d.Venue {
		t.Error("start/end types wrong")
	}
}

func TestParseLength4(t *testing.T) {
	d := hin.NewDBLPSchema()
	p := MustParse(d.Schema, "A-P-A-P-V")
	if p.Len() != 4 {
		t.Errorf("Len = %d, want 4", p.Len())
	}
	if p.EndType(d.Schema) != d.Venue {
		t.Error("end type not venue")
	}
}

func TestParseErrors(t *testing.T) {
	d := hin.NewDBLPSchema()
	cases := []struct {
		notation string
		wantErr  string
	}{
		{"A", "fewer than two"},
		{"A-X", "unknown type"},
		{"A-V", "no relation"},
		{"", "fewer than two"},
	}
	for _, c := range cases {
		_, err := Parse(d.Schema, c.notation)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.notation, err, c.wantErr)
		}
	}
}

func TestParseAmbiguousTypePair(t *testing.T) {
	s := hin.NewSchema()
	a := s.MustAddType("author", "A")
	p := s.MustAddType("paper", "P")
	s.MustAddRelation("write", "writtenBy", a, p)
	s.MustAddRelation("review", "reviewedBy", a, p)
	if _, err := Parse(s, "A-P"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous notation error = %v", err)
	}
	// Explicit relation construction still works.
	rel, _ := s.RelationByName("review")
	path, err := New(s, rel)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if path.Len() != 1 {
		t.Errorf("Len = %d", path.Len())
	}
}

func TestNewRejectsNonComposingRelations(t *testing.T) {
	d := hin.NewDBLPSchema()
	// write: A->P, then publish: V->P does not compose.
	if _, err := New(d.Schema, d.Write, d.Publish); err == nil {
		t.Error("non-composing relations accepted")
	}
}

func TestEmptyPath(t *testing.T) {
	d := hin.NewDBLPSchema()
	p, err := New(d.Schema)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !p.IsEmpty() || p.Len() != 0 {
		t.Error("empty path not empty")
	}
	if p.StartType(d.Schema) != hin.NoType || p.EndType(d.Schema) != hin.NoType {
		t.Error("empty path has types")
	}
	if p.String() != "∅" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPrefix(t *testing.T) {
	d := hin.NewDBLPSchema()
	p := MustParse(d.Schema, "A-P-V")
	if got := p.Prefix(1); got.Len() != 1 || got.Relation(0) != d.Write {
		t.Errorf("Prefix(1) = %v", got.Relations())
	}
	if !p.Prefix(0).IsEmpty() {
		t.Error("Prefix(0) not empty")
	}
}

func TestKeyAndEqual(t *testing.T) {
	d := hin.NewDBLPSchema()
	apv := MustParse(d.Schema, "A-P-V")
	apv2 := MustParse(d.Schema, "A-P-V")
	apt := MustParse(d.Schema, "A-P-T")
	if apv.Key() != apv2.Key() {
		t.Error("identical paths have different keys")
	}
	if apv.Key() == apt.Key() {
		t.Error("different paths share a key")
	}
	if !apv.Equal(apv2) || apv.Equal(apt) {
		t.Error("Equal wrong")
	}
	// Same-length different paths must not be Equal.
	apa := MustParse(d.Schema, "A-P-A")
	if apv.Equal(apa) {
		t.Error("A-P-V Equal A-P-A")
	}
}

func TestEnumerateCounts(t *testing.T) {
	d := hin.NewDBLPSchema()
	// From author: length-1 is only A-P (1 relation from author).
	l1, err := Enumerate(d.Schema, d.Author, 1)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(l1) != 1 {
		t.Fatalf("length-1 paths from A = %d, want 1", len(l1))
	}
	// Length ≤ 2: A-P plus A-P-{A,V,T,Y} = 5.
	l2, err := Enumerate(d.Schema, d.Author, 2)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(l2) != 5 {
		t.Fatalf("length≤2 paths from A = %d, want 5", len(l2))
	}
	// BFS ordering: shorter paths come first.
	for i := 1; i < len(l2); i++ {
		if l2[i].Len() < l2[i-1].Len() {
			t.Fatal("enumeration not in BFS order")
		}
	}
}

func TestEnumerateLength4CoversTable3(t *testing.T) {
	d := hin.NewDBLPSchema()
	all, err := Enumerate(d.Schema, d.Author, 4)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	keys := make(map[string]bool, len(all))
	for _, p := range all {
		keys[p.Key()] = true
	}
	for _, p := range DBLPPaperPaths(d) {
		if !keys[p.Key()] {
			t.Errorf("Table 3 path %s not enumerated", p)
		}
	}
}

func TestEnumerateErrors(t *testing.T) {
	d := hin.NewDBLPSchema()
	if _, err := Enumerate(d.Schema, d.Author, 0); err == nil {
		t.Error("maxLen 0 accepted")
	}
	if _, err := Enumerate(d.Schema, hin.TypeID(99), 2); err == nil {
		t.Error("invalid start type accepted")
	}
}

func TestEnumerateEndingIn(t *testing.T) {
	d := hin.NewDBLPSchema()
	paths, err := EnumerateEndingIn(d.Schema, d.Author, 2, d.Venue, d.Term)
	if err != nil {
		t.Fatalf("EnumerateEndingIn: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (A-P-V and A-P-T)", len(paths))
	}
	for _, p := range paths {
		end := p.EndType(d.Schema)
		if end != d.Venue && end != d.Term {
			t.Errorf("path %s ends in type %d", p, end)
		}
	}
}

func TestDBLPPaperPathSets(t *testing.T) {
	d := hin.NewDBLPSchema()
	all := DBLPPaperPaths(d)
	if len(all) != 10 {
		t.Fatalf("Table 3 has %d paths, want 10", len(all))
	}
	short, long := 0, 0
	for _, p := range all {
		switch p.Len() {
		case 2:
			short++
		case 4:
			long++
		default:
			t.Errorf("unexpected path length %d for %s", p.Len(), p)
		}
	}
	if short != 4 || long != 6 {
		t.Errorf("got %d length-2 and %d length-4 paths, want 4 and 6", short, long)
	}
	if got := DBLPLength2Paths(d); len(got) != 4 {
		t.Errorf("SHINE4 path set has %d paths, want 4", len(got))
	}
}

func TestIMDBActorPaths(t *testing.T) {
	m := hin.NewIMDBSchema()
	paths := IMDBActorPaths(m)
	if len(paths) != 14 {
		t.Fatalf("IMDb path set has %d paths, want 14", len(paths))
	}
	for _, p := range paths {
		if p.StartType(m.Schema) != m.Actor {
			t.Errorf("path %s does not start at actor", p)
		}
	}
}

func TestPathReverse(t *testing.T) {
	d := hin.NewDBLPSchema()
	apv := MustParse(d.Schema, "A-P-V")
	rev := apv.Reverse(d.Schema)
	if rev.String() != "V-P-A" {
		t.Errorf("Reverse = %s, want V-P-A", rev)
	}
	if !rev.Reverse(d.Schema).Equal(apv) {
		t.Error("double reverse is not the original")
	}
	// Empty path reverses to itself.
	empty, _ := New(d.Schema)
	if !empty.Reverse(d.Schema).IsEmpty() {
		t.Error("reversed empty path not empty")
	}
}

func TestPathConcat(t *testing.T) {
	d := hin.NewDBLPSchema()
	ap := MustParse(d.Schema, "A-P")
	pv := MustParse(d.Schema, "P-V")
	apv, err := ap.Concat(d.Schema, pv)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if !apv.Equal(MustParse(d.Schema, "A-P-V")) {
		t.Errorf("Concat = %s", apv)
	}
	// Non-composing concat is rejected.
	if _, err := ap.Concat(d.Schema, ap); err == nil {
		t.Error("non-composing concat accepted")
	}
}
