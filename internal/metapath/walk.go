package metapath

import (
	"container/list"
	"fmt"
	"sync"

	"shine/internal/hin"
	"shine/internal/sparse"
)

// Walker computes meta-path constrained random walk distributions
// Pe(v|p) over a graph (Formulas 10–11 of the paper):
//
//	Pe(v|∅) = 1 if v = e, else 0
//	Pe(v|p) = Σ_{v'} Pe(v'|p') · Rl(v', v) / |Rl(v')|
//
// where p = p' followed by relation Rl. The result of each walk is an
// object distribution: non-negative and summing to at most 1 — mass
// at an object with no Rl-links dies, exactly as the recursive
// formula dictates (each of its terms Rl(v', v) is 0).
//
// A Walker memoises full walk distributions per (entity, path) in a
// bounded LRU cache, because SHINE's EM loop evaluates the same
// candidate entities against the same path set many times. Walker is
// safe for concurrent use.
type Walker struct {
	g *hin.Graph

	mu        sync.Mutex
	cache     map[walkKey]*list.Element
	order     *list.List // front = most recently used
	capacity  int
	hits      uint64
	misses    uint64
	evictions uint64
}

type walkKey struct {
	entity hin.ObjectID
	path   string
	prune  int
}

type cacheEntry struct {
	key  walkKey
	dist sparse.Vector
}

// DefaultCacheSize is the default number of (entity, path)
// distributions a Walker retains.
const DefaultCacheSize = 65536

// NewWalker returns a Walker over g with the given cache capacity; a
// non-positive capacity disables caching.
func NewWalker(g *hin.Graph, cacheSize int) *Walker {
	w := &Walker{g: g, capacity: cacheSize}
	if cacheSize > 0 {
		w.cache = make(map[walkKey]*list.Element)
		w.order = list.New()
	}
	return w
}

// Graph returns the graph the walker operates on.
func (w *Walker) Graph() *hin.Graph { return w.g }

// Walk returns the distribution Pe(v|p) of observing each object v
// after a random walk from entity e constrained to meta-path p. The
// returned vector is owned by the cache and must not be modified;
// clone it if mutation is needed. Walking the empty path returns the
// unit distribution at e.
func (w *Walker) Walk(e hin.ObjectID, p Path) (sparse.Vector, error) {
	return w.WalkPruned(e, p, 0)
}

// WalkPruned is Walk with support pruning: after each relation hop,
// only the maxSupport largest entries of the intermediate
// distribution are kept (0 disables pruning). Pruned mass is dropped,
// not redistributed, so the result is an entry-wise lower bound on
// the exact distribution — the approximation a production deployment
// uses when hub objects (a venue with a million papers) would blow up
// intermediate frontiers. Pruned and exact walks are cached under
// distinct keys.
func (w *Walker) WalkPruned(e hin.ObjectID, p Path, maxSupport int) (sparse.Vector, error) {
	if e < 0 || int(e) >= w.g.NumObjects() {
		return nil, fmt.Errorf("metapath: walk from invalid object %d", e)
	}
	if maxSupport < 0 {
		return nil, fmt.Errorf("metapath: negative pruning bound %d", maxSupport)
	}
	if !p.IsEmpty() {
		if start := p.StartType(w.g.Schema()); w.g.TypeOf(e) != start {
			return nil, fmt.Errorf("metapath: path %s starts at type %s but object %d has type %s",
				p, w.g.Schema().Type(start).Abbrev, e,
				w.g.Schema().Type(w.g.TypeOf(e)).Abbrev)
		}
	}

	key := walkKey{e, p.Key(), maxSupport}
	if d, ok := w.lookup(key); ok {
		return d, nil
	}

	cur := sparse.Unit(int32(e))
	for _, rel := range p.Relations() {
		next := sparse.NewWithCapacity(cur.Len())
		for i, mass := range cur {
			v := hin.ObjectID(i)
			deg := w.g.Degree(rel, v)
			if deg == 0 {
				continue // mass dies, per Formula 11
			}
			share := mass / float64(deg)
			for _, dst := range w.g.Neighbors(rel, v) {
				next.Add(int32(dst), share)
			}
		}
		if maxSupport > 0 && next.Len() > maxSupport {
			pruned := sparse.NewWithCapacity(maxSupport)
			for _, entry := range next.Top(maxSupport) {
				pruned.Set(entry.Index, entry.Value)
			}
			next = pruned
		}
		cur = next
	}
	w.store(key, cur)
	return cur, nil
}

// WalkMixture returns the weighted combination Σ_p w_p · Pe(v|p)
// (Formula 12): the entity-specific object model for entity e under
// the given path set and weight vector. The caller owns the returned
// vector.
func (w *Walker) WalkMixture(e hin.ObjectID, paths []Path, weights []float64) (sparse.Vector, error) {
	return w.WalkMixturePruned(e, paths, weights, 0)
}

// WalkMixturePruned is WalkMixture with per-hop support pruning (see
// WalkPruned).
func (w *Walker) WalkMixturePruned(e hin.ObjectID, paths []Path, weights []float64, maxSupport int) (sparse.Vector, error) {
	if len(paths) != len(weights) {
		return nil, fmt.Errorf("metapath: %d paths with %d weights", len(paths), len(weights))
	}
	out := sparse.New()
	for k, p := range paths {
		if weights[k] == 0 {
			continue
		}
		d, err := w.WalkPruned(e, p, maxSupport)
		if err != nil {
			return nil, err
		}
		out.AccumScaled(d, weights[k])
	}
	return out, nil
}

func (w *Walker) lookup(key walkKey) (sparse.Vector, bool) {
	if w.cache == nil {
		return nil, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	el, ok := w.cache[key]
	if !ok {
		w.misses++
		return nil, false
	}
	w.order.MoveToFront(el)
	w.hits++
	return el.Value.(*cacheEntry).dist, true
}

func (w *Walker) store(key walkKey, dist sparse.Vector) {
	if w.cache == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if el, ok := w.cache[key]; ok {
		w.order.MoveToFront(el)
		el.Value.(*cacheEntry).dist = dist
		return
	}
	el := w.order.PushFront(&cacheEntry{key: key, dist: dist})
	w.cache[key] = el
	for len(w.cache) > w.capacity {
		back := w.order.Back()
		if back == nil {
			break
		}
		w.order.Remove(back)
		delete(w.cache, back.Value.(*cacheEntry).key)
		w.evictions++
	}
}

// CacheStats reports cache occupancy, hit/miss and eviction counters.
type CacheStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// CacheStats returns a snapshot of the walker's cache counters.
func (w *Walker) CacheStats() CacheStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return CacheStats{Entries: len(w.cache), Hits: w.hits, Misses: w.misses, Evictions: w.evictions}
}

// Collect emits the walker's cache counters. The signature matches
// the obs.Collector interface structurally, so an obs.Registry can
// scrape a Walker without this package importing obs (which would be
// an import cycle through shine).
func (w *Walker) Collect(emit func(name string, value float64)) {
	st := w.CacheStats()
	emit("shine_walker_cache_entries", float64(st.Entries))
	emit("shine_walker_cache_hits_total", float64(st.Hits))
	emit("shine_walker_cache_misses_total", float64(st.Misses))
	emit("shine_walker_cache_evictions_total", float64(st.Evictions))
}

// ClearCache discards all cached walk distributions.
func (w *Walker) ClearCache() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cache == nil {
		return
	}
	w.cache = make(map[walkKey]*list.Element)
	w.order = list.New()
}
