package metapath

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"shine/internal/hin"
	"shine/internal/sparse"
)

// Walker computes meta-path constrained random walk distributions
// Pe(v|p) over a graph (Formulas 10–11 of the paper):
//
//	Pe(v|∅) = 1 if v = e, else 0
//	Pe(v|p) = Σ_{v'} Pe(v'|p') · Rl(v', v) / |Rl(v')|
//
// where p = p' followed by relation Rl. The result of each walk is an
// object distribution: non-negative and summing to at most 1 — mass
// at an object with no Rl-links dies, exactly as the recursive
// formula dictates (each of its terms Rl(v', v) is 0).
//
// A Walker memoises full walk distributions per (entity, path) in a
// bounded LRU cache, because SHINE's EM loop evaluates the same
// candidate entities against the same path set many times. Walker is
// safe for concurrent use. Large caches are striped across
// independently locked shards so the parallel training pipeline and
// concurrent link batches do not serialise on one mutex; each shard
// is an exact LRU over its slice of the key space, so the total
// capacity bound holds per shard rather than globally.
//
// Hop expansion runs on a pooled dense scatter-gather accumulator
// (sparse.Accum) rather than a map-backed frontier: scattering mass
// into a dense array costs one array write per link instead of a hash
// probe, and sorting the touched-index list afterwards restores the
// ascending-order iteration the determinism guarantee needs. Results
// are frozen into immutable sparse.Dist values (parallel sorted
// arrays), which are smaller and GC-friendlier cache entries than
// maps and support O(log n) lookups and O(n+m) merges downstream.
type Walker struct {
	g *hin.Graph
	// accums pools dense accumulators sized to the graph's object
	// count, one checked out per walk in flight.
	accums *sparse.AccumPool
	// shards is nil when caching is disabled. Small caches use a
	// single shard, which preserves exact global LRU semantics.
	shards []*walkShard
	// walks, hops and canceled instrument the hop kernel: full walks
	// computed to completion, relation hops expanded, and walks
	// aborted by context cancellation. Cache hits touch none of them,
	// so a canceled request that did no work is distinguishable from
	// one served from cache.
	walks    atomic.Uint64
	hops     atomic.Uint64
	canceled atomic.Uint64
}

// walkShard is one stripe of the walk cache: an exact LRU with its
// own lock and counters.
type walkShard struct {
	mu        sync.Mutex
	capacity  int
	cache     map[walkKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type walkKey struct {
	entity hin.ObjectID
	path   string
	prune  int
}

type cacheEntry struct {
	key  walkKey
	dist sparse.Dist
}

// DefaultCacheSize is the default number of (entity, path)
// distributions a Walker retains.
const DefaultCacheSize = 65536

const (
	// cacheShards is the stripe count for sharded caches. Fixed so
	// shard assignment — and with it the per-shard metrics series —
	// is stable across hosts.
	cacheShards = 16
	// minShardedCapacity is the total capacity below which the cache
	// stays a single exact LRU: striping a tiny cache would shrink
	// each shard to a handful of entries and make the eviction
	// behaviour hash-dependent for no concurrency win.
	minShardedCapacity = 1024
)

// NewWalker returns a Walker over g with the given cache capacity; a
// non-positive capacity disables caching. Capacities of at least
// minShardedCapacity are divided evenly across cacheShards stripes.
func NewWalker(g *hin.Graph, cacheSize int) *Walker {
	w := &Walker{g: g, accums: sparse.NewAccumPool(g.NumObjects())}
	if cacheSize > 0 {
		n := 1
		if cacheSize >= minShardedCapacity {
			n = cacheShards
		}
		per := (cacheSize + n - 1) / n
		w.shards = make([]*walkShard, n)
		for i := range w.shards {
			w.shards[i] = &walkShard{
				capacity: per,
				cache:    make(map[walkKey]*list.Element),
				order:    list.New(),
			}
		}
	}
	return w
}

// Graph returns the graph the walker operates on.
func (w *Walker) Graph() *hin.Graph { return w.g }

// shardFor maps a key to its stripe by FNV-1a over the key fields.
func (w *Walker) shardFor(key walkKey) *walkShard {
	if len(w.shards) == 1 {
		return w.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h = (h ^ uint32(key.entity)) * prime32
	for i := 0; i < len(key.path); i++ {
		h = (h ^ uint32(key.path[i])) * prime32
	}
	h = (h ^ uint32(key.prune)) * prime32
	return w.shards[h%uint32(len(w.shards))]
}

// Walk returns the distribution Pe(v|p) of observing each object v
// after a random walk from entity e constrained to meta-path p. The
// result is an immutable frozen Dist, shared with the cache and every
// other caller; Thaw it if a mutable copy is needed. Walking the
// empty path returns the unit distribution at e.
func (w *Walker) Walk(e hin.ObjectID, p Path) (sparse.Dist, error) {
	return w.WalkPrunedContext(context.Background(), e, p, 0)
}

// WalkContext is Walk under a request context: cancellation is
// checked before the walk starts and between relation hops, so a
// client that disconnects mid-walk stops paying for the remaining
// hops instead of completing the full distribution. A canceled walk
// returns ctx.Err() and stores nothing in the cache.
func (w *Walker) WalkContext(ctx context.Context, e hin.ObjectID, p Path) (sparse.Dist, error) {
	return w.WalkPrunedContext(ctx, e, p, 0)
}

// WalkPruned is Walk with support pruning: after each relation hop,
// only the maxSupport largest entries of the intermediate
// distribution are kept (0 disables pruning). Pruned mass is dropped,
// not redistributed, so the result is an entry-wise lower bound on
// the exact distribution — the approximation a production deployment
// uses when hub objects (a venue with a million papers) would blow up
// intermediate frontiers. Pruned and exact walks are cached under
// distinct keys.
func (w *Walker) WalkPruned(e hin.ObjectID, p Path, maxSupport int) (sparse.Dist, error) {
	return w.WalkPrunedContext(context.Background(), e, p, maxSupport)
}

// WalkPrunedContext is WalkPruned under a request context (see
// WalkContext). An already-canceled context returns ctx.Err() before
// any hop is expanded — not even the cache is consulted.
func (w *Walker) WalkPrunedContext(ctx context.Context, e hin.ObjectID, p Path, maxSupport int) (sparse.Dist, error) {
	if err := ctx.Err(); err != nil {
		w.canceled.Add(1)
		return sparse.Dist{}, err
	}
	if err := w.checkWalk(e, p, maxSupport); err != nil {
		return sparse.Dist{}, err
	}
	key := walkKey{e, p.Key(), maxSupport}
	if d, ok := w.lookup(key); ok {
		return d, nil
	}
	cur, err := w.computeWalk(ctx, e, p, maxSupport)
	if err != nil {
		return sparse.Dist{}, err
	}
	w.store(key, cur)
	return cur, nil
}

// checkWalk validates a walk request.
func (w *Walker) checkWalk(e hin.ObjectID, p Path, maxSupport int) error {
	if e < 0 || int(e) >= w.g.NumObjects() {
		return fmt.Errorf("metapath: walk from invalid object %d", e)
	}
	if maxSupport < 0 {
		return fmt.Errorf("metapath: negative pruning bound %d", maxSupport)
	}
	if !p.IsEmpty() {
		if start := p.StartType(w.g.Schema()); w.g.TypeOf(e) != start {
			return fmt.Errorf("metapath: path %s starts at type %s but object %d has type %s",
				p, w.g.Schema().Type(start).Abbrev, e,
				w.g.Schema().Type(w.g.TypeOf(e)).Abbrev)
		}
	}
	return nil
}

// computeWalk runs the scatter-gather hop kernel. Each hop expands
// the current frontier — already in ascending index order, because
// frozen Dists store indices sorted — into a pooled dense
// accumulator, then freezes the touched entries back into a Dist.
// Cancellation is checked once per relation hop (before expanding
// it), the granularity at which a walk's cost accrues; a canceled
// walk returns ctx.Err() and its partial frontier is discarded.
//
// Determinism: float addition is not associative, so the result
// depends on the order mass is scattered. The kernel always visits
// sources in ascending index order and each source's neighbours in
// adjacency-list order — exactly the sequence the original map-backed
// kernel used after sorting its frontier — so walks are bit-for-bit
// reproducible across runs, worker counts, and both kernel
// implementations (ReferenceWalk cross-checks this in tests).
func (w *Walker) computeWalk(ctx context.Context, e hin.ObjectID, p Path, maxSupport int) (sparse.Dist, error) {
	cur := sparse.UnitDist(int32(e))
	rels := p.Relations()
	if len(rels) == 0 {
		w.walks.Add(1)
		return cur, nil
	}
	acc := w.accums.Get()
	defer w.accums.Put(acc)
	for _, rel := range rels {
		if err := ctx.Err(); err != nil {
			w.canceled.Add(1)
			return sparse.Dist{}, err
		}
		for k := 0; k < cur.Len(); k++ {
			i, mass := cur.At(k)
			v := hin.ObjectID(i)
			deg := w.g.Degree(rel, v)
			if deg == 0 {
				continue // mass dies, per Formula 11
			}
			share := mass / float64(deg)
			for _, dst := range w.g.Neighbors(rel, v) {
				acc.Add(int32(dst), share)
			}
		}
		if maxSupport > 0 && acc.Len() > maxSupport {
			cur = acc.TopDist(maxSupport)
		} else {
			cur = acc.Dist()
		}
		acc.Reset()
		w.hops.Add(1)
	}
	w.walks.Add(1)
	return cur, nil
}

// ReferenceWalk computes Pe(v|p) with the original map-backed kernel,
// without caching or pooling. It is retained as the oracle the CSR
// kernel is cross-checked against (and benchmarked against in
// BenchmarkWalkKernel); production code paths should use Walker.
func ReferenceWalk(g *hin.Graph, e hin.ObjectID, p Path, maxSupport int) (sparse.Vector, error) {
	w := Walker{g: g}
	if err := w.checkWalk(e, p, maxSupport); err != nil {
		return nil, err
	}
	cur := sparse.Unit(int32(e))
	for _, rel := range p.Relations() {
		next := sparse.NewWithCapacity(cur.Len())
		// Expand the frontier in ascending index order, not map order,
		// so the reference result is bit-for-bit reproducible.
		for _, i := range cur.Indices() {
			mass := cur[i]
			v := hin.ObjectID(i)
			deg := g.Degree(rel, v)
			if deg == 0 {
				continue
			}
			share := mass / float64(deg)
			for _, dst := range g.Neighbors(rel, v) {
				next.Add(int32(dst), share)
			}
		}
		if maxSupport > 0 && next.Len() > maxSupport {
			pruned := sparse.NewWithCapacity(maxSupport)
			for _, entry := range next.Top(maxSupport) {
				pruned.Set(entry.Index, entry.Value)
			}
			next = pruned
		}
		cur = next
	}
	return cur, nil
}

// WalkMixture returns the weighted combination Σ_p w_p · Pe(v|p)
// (Formula 12): the entity-specific object model for entity e under
// the given path set and weight vector. The caller owns the returned
// vector.
func (w *Walker) WalkMixture(e hin.ObjectID, paths []Path, weights []float64) (sparse.Vector, error) {
	return w.WalkMixturePruned(e, paths, weights, 0)
}

// WalkMixturePruned is WalkMixture with per-hop support pruning (see
// WalkPruned).
func (w *Walker) WalkMixturePruned(e hin.ObjectID, paths []Path, weights []float64, maxSupport int) (sparse.Vector, error) {
	if len(paths) != len(weights) {
		return nil, fmt.Errorf("metapath: %d paths with %d weights", len(paths), len(weights))
	}
	out := sparse.New()
	for k, p := range paths {
		if weights[k] == 0 {
			continue
		}
		d, err := w.WalkPruned(e, p, maxSupport)
		if err != nil {
			return nil, err
		}
		d.ScaledAddTo(out, weights[k])
	}
	return out, nil
}

// WalkMixtureDist is WalkMixturePruned frozen: it accumulates the
// weighted path distributions on a pooled dense accumulator and
// returns an immutable Dist the caller may share freely. Per output
// index, contributions are added in path order — the same sequence
// as the map-backed mixture and as Model.logJoint's per-object path
// loop — so all three agree bit-for-bit.
func (w *Walker) WalkMixtureDist(e hin.ObjectID, paths []Path, weights []float64, maxSupport int) (sparse.Dist, error) {
	return w.WalkMixtureDistContext(context.Background(), e, paths, weights, maxSupport)
}

// WalkMixtureDistContext is WalkMixtureDist under a request context:
// each constituent path walk checks cancellation between hops, so a
// canceled request aborts inside the first unfinished walk rather
// than after the full |paths|-walk mixture.
func (w *Walker) WalkMixtureDistContext(ctx context.Context, e hin.ObjectID, paths []Path, weights []float64, maxSupport int) (sparse.Dist, error) {
	if len(paths) != len(weights) {
		return sparse.Dist{}, fmt.Errorf("metapath: %d paths with %d weights", len(paths), len(weights))
	}
	acc := w.accums.Get()
	defer w.accums.Put(acc)
	for k, p := range paths {
		if weights[k] == 0 {
			continue
		}
		d, err := w.WalkPrunedContext(ctx, e, p, maxSupport)
		if err != nil {
			return sparse.Dist{}, err
		}
		acc.AddScaled(d, weights[k])
	}
	return acc.Dist(), nil
}

func (w *Walker) lookup(key walkKey) (sparse.Dist, bool) {
	if w.shards == nil {
		return sparse.Dist{}, false
	}
	s := w.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.cache[key]
	if !ok {
		s.misses++
		return sparse.Dist{}, false
	}
	s.order.MoveToFront(el)
	s.hits++
	return el.Value.(*cacheEntry).dist, true
}

func (w *Walker) store(key walkKey, dist sparse.Dist) {
	if w.shards == nil {
		return
	}
	s := w.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[key]; ok {
		s.order.MoveToFront(el)
		el.Value.(*cacheEntry).dist = dist
		return
	}
	el := s.order.PushFront(&cacheEntry{key: key, dist: dist})
	s.cache[key] = el
	for len(s.cache) > s.capacity {
		back := s.order.Back()
		if back == nil {
			break
		}
		s.order.Remove(back)
		delete(s.cache, back.Value.(*cacheEntry).key)
		s.evictions++
	}
}

// CacheStats reports cache occupancy, hit/miss and eviction counters.
type CacheStats struct {
	Entries   int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// snapshot reads one shard's counters under its lock.
func (s *walkShard) snapshot() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{Entries: len(s.cache), Hits: s.hits, Misses: s.misses, Evictions: s.evictions}
}

// CacheStats returns the walker's cache counters aggregated across
// all shards. Shards are snapshotted one at a time, so the aggregate
// is approximate under concurrent traffic (exact when quiescent).
func (w *Walker) CacheStats() CacheStats {
	var total CacheStats
	for _, s := range w.shards {
		st := s.snapshot()
		total.Entries += st.Entries
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
	}
	return total
}

// ShardStats returns a per-shard snapshot of the cache counters, in
// shard-index order. It returns nil when caching is disabled.
func (w *Walker) ShardStats() []CacheStats {
	if w.shards == nil {
		return nil
	}
	out := make([]CacheStats, len(w.shards))
	for i, s := range w.shards {
		out[i] = s.snapshot()
	}
	return out
}

// WalkStats reports the hop-kernel counters: full walks computed to
// completion, relation hops expanded, and walks aborted by context
// cancellation. Cache hits count in none of them.
type WalkStats struct {
	Completed uint64
	Hops      uint64
	Canceled  uint64
}

// WalkStats returns the walker's hop-kernel counters. The three
// loads are independent atomics, so the snapshot is approximate
// under concurrent traffic (exact when quiescent).
func (w *Walker) WalkStats() WalkStats {
	return WalkStats{
		Completed: w.walks.Load(),
		Hops:      w.hops.Load(),
		Canceled:  w.canceled.Load(),
	}
}

// Collect emits the walker's cache counters. The signature matches
// the obs.Collector interface structurally, so an obs.Registry can
// scrape a Walker without this package importing obs (which would be
// an import cycle through shine). Sharded caches additionally emit
// one labelled series per shard, so a dashboard can spot skewed
// stripes.
func (w *Walker) Collect(emit func(name string, value float64)) {
	ws := w.WalkStats()
	emit("shine_walker_walks_total", float64(ws.Completed))
	emit("shine_walker_walk_hops_total", float64(ws.Hops))
	emit("shine_walker_walks_canceled_total", float64(ws.Canceled))
	st := w.CacheStats()
	emit("shine_walker_cache_entries", float64(st.Entries))
	emit("shine_walker_cache_hits_total", float64(st.Hits))
	emit("shine_walker_cache_misses_total", float64(st.Misses))
	emit("shine_walker_cache_evictions_total", float64(st.Evictions))
	if len(w.shards) <= 1 {
		return
	}
	for i, ss := range w.ShardStats() {
		emit(fmt.Sprintf(`shine_walker_cache_shard_entries{shard="%d"}`, i), float64(ss.Entries))
		emit(fmt.Sprintf(`shine_walker_cache_shard_hits_total{shard="%d"}`, i), float64(ss.Hits))
		emit(fmt.Sprintf(`shine_walker_cache_shard_misses_total{shard="%d"}`, i), float64(ss.Misses))
		emit(fmt.Sprintf(`shine_walker_cache_shard_evictions_total{shard="%d"}`, i), float64(ss.Evictions))
	}
}

// ClearCache discards all cached walk distributions, keeping the
// hit/miss/eviction counters.
func (w *Walker) ClearCache() {
	for _, s := range w.shards {
		s.mu.Lock()
		s.cache = make(map[walkKey]*list.Element)
		s.order = list.New()
		s.mu.Unlock()
	}
}
