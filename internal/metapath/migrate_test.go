package metapath

import (
	"fmt"
	"testing"

	"shine/internal/hin"
)

// TestCloneForKeepsSurvivingEntries: after a delta, a clone with a
// keep predicate serves the surviving entity's walk from cache and
// recomputes the rejected one.
func TestCloneForKeepsSurvivingEntries(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	apv := MustParse(d.Schema, "A-P-V")

	weiDist, err := w.Walk(ids["wei"], apv)
	if err != nil {
		t.Fatalf("Walk(wei): %v", err)
	}
	if _, err := w.Walk(ids["coauthor"], apv); err != nil {
		t.Fatalf("Walk(coauthor): %v", err)
	}

	// Delta touching only the coauthor's neighbourhood.
	delta := g.Append()
	p := delta.MustAppend(d.Paper, "co-new-paper")
	delta.MustPatch(d.Write, ids["coauthor"], p)
	delta.MustPatch(d.Publish, ids["vldb"], p)
	g2, _, err := delta.Merge()
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	nw, stats := w.CloneFor(g2, func(e hin.ObjectID) bool { return e != ids["coauthor"] })
	if nw.Graph() != g2 {
		t.Fatal("clone does not serve the new graph")
	}
	if stats.Kept != 1 || stats.Dropped != 1 {
		t.Fatalf("stats = %+v, want Kept=1 Dropped=1", stats)
	}

	base := nw.CacheStats()
	got, err := nw.Walk(ids["wei"], apv)
	if err != nil {
		t.Fatalf("clone Walk(wei): %v", err)
	}
	after := nw.CacheStats()
	if after.Hits != base.Hits+1 {
		t.Errorf("surviving entry was not a cache hit: hits %d -> %d", base.Hits, after.Hits)
	}
	for _, v := range []hin.ObjectID{ids["sigmod"], ids["vldb"], ids["sigmetrics"]} {
		if got.Get(int32(v)) != weiDist.Get(int32(v)) {
			t.Errorf("migrated distribution differs at %d", v)
		}
	}

	if _, err := nw.Walk(ids["coauthor"], apv); err != nil {
		t.Fatalf("clone Walk(coauthor): %v", err)
	}
	final := nw.CacheStats()
	if final.Misses != after.Misses+1 {
		t.Errorf("dropped entry was not recomputed: misses %d -> %d", after.Misses, final.Misses)
	}
}

// TestCloneForNilKeepKeepsAll: a nil predicate migrates every entry
// and carries the counters forward.
func TestCloneForNilKeepKeepsAll(t *testing.T) {
	d, g, ids := paperExample(t)
	w := NewWalker(g, 16)
	apv := MustParse(d.Schema, "A-P-V")
	for _, e := range []hin.ObjectID{ids["wei"], ids["coauthor"]} {
		if _, err := w.Walk(e, apv); err != nil {
			t.Fatalf("Walk: %v", err)
		}
	}
	// A second walk to accumulate a hit.
	if _, err := w.Walk(ids["wei"], apv); err != nil {
		t.Fatalf("Walk: %v", err)
	}
	before, walksBefore := w.CacheStats(), w.WalkStats()

	nw, stats := w.CloneFor(g, nil)
	if stats.Kept != 2 || stats.Dropped != 0 {
		t.Fatalf("stats = %+v, want Kept=2 Dropped=0", stats)
	}
	after, walksAfter := nw.CacheStats(), nw.WalkStats()
	if after.Entries != before.Entries || after.Hits != before.Hits ||
		after.Misses != before.Misses || after.Evictions != before.Evictions {
		t.Errorf("cache counters not carried: before %+v after %+v", before, after)
	}
	if walksAfter != walksBefore {
		t.Errorf("walk counters not carried: before %+v after %+v", walksBefore, walksAfter)
	}
}

// TestCloneForShardedPreservesLRUOrder builds a sharded walker, fills
// one logical stream of entries and checks the clone evicts in the
// same order the source would have — i.e. recency survived migration.
func TestCloneForShardedPreservesLRUOrder(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	v := b.MustAddObject(d.Venue, "v")
	authors := make([]hin.ObjectID, 64)
	for i := range authors {
		authors[i] = b.MustAddObject(d.Author, fmt.Sprintf("a%d", i))
		p := b.MustAddObject(d.Paper, fmt.Sprintf("p%d", i))
		b.MustAddLink(d.Write, authors[i], p)
		b.MustAddLink(d.Publish, v, p)
	}
	g := b.Build()

	w := NewWalker(g, minShardedCapacity)
	if len(w.shards) != cacheShards {
		t.Fatalf("expected a sharded walker, got %d shards", len(w.shards))
	}
	apv := MustParse(d.Schema, "A-P-V")
	for _, a := range authors {
		if _, err := w.Walk(a, apv); err != nil {
			t.Fatalf("Walk: %v", err)
		}
	}

	nw, stats := w.CloneFor(g, nil)
	if stats.Kept != len(authors) {
		t.Fatalf("kept %d entries, want %d", stats.Kept, len(authors))
	}
	if len(nw.shards) != len(w.shards) {
		t.Fatalf("shard count not mirrored: %d vs %d", len(nw.shards), len(w.shards))
	}
	for i, src := range w.shards {
		dst := nw.shards[i]
		if dst.capacity != src.capacity {
			t.Fatalf("shard %d capacity %d, want %d", i, dst.capacity, src.capacity)
		}
		se, de := src.order.Front(), dst.order.Front()
		for se != nil || de != nil {
			if se == nil || de == nil {
				t.Fatalf("shard %d order length mismatch", i)
			}
			sk := se.Value.(*cacheEntry).key
			dk := de.Value.(*cacheEntry).key
			if sk != dk {
				t.Fatalf("shard %d recency order diverged: %v vs %v", i, sk, dk)
			}
			se, de = se.Next(), de.Next()
		}
	}
}
