// Package baselines implements the two comparison systems of the
// paper's evaluation (Section 5.2.1): the entity popularity baseline
// POP and the vector similarity baseline VSim.
package baselines

import (
	"fmt"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/namematch"
	"shine/internal/pagerank"
)

// POP links every mention to its most popular candidate entity,
// using the same PageRank-based popularity model as SHINE (Formula
// 7). Context is ignored entirely.
type POP struct {
	popularity map[hin.ObjectID]float64
	index      *namematch.Index
}

// NewPOP computes entity popularity offline and indexes entity names.
func NewPOP(g *hin.Graph, entityType hin.TypeID, opts pagerank.Options) (*POP, error) {
	res, err := pagerank.Compute(g, opts)
	if err != nil {
		return nil, fmt.Errorf("baselines: computing popularity: %w", err)
	}
	pop, err := pagerank.EntityPopularity(g, res.Scores, entityType)
	if err != nil {
		return nil, err
	}
	idx, err := namematch.BuildIndex(g, entityType)
	if err != nil {
		return nil, err
	}
	return &POP{popularity: pop, index: idx}, nil
}

// Link returns the most popular candidate for the document's mention.
// Ties break towards the lower entity ID, deterministically.
func (p *POP) Link(doc *corpus.Document) (hin.ObjectID, error) {
	cands := p.index.Candidates(doc.Mention)
	if len(cands) == 0 {
		return hin.NoObject, fmt.Errorf("baselines: mention %q has no candidates", doc.Mention)
	}
	best := cands[0]
	for _, e := range cands[1:] {
		if p.popularity[e] > p.popularity[best] {
			best = e
		}
	}
	return best, nil
}
