// Package baselines implements the two comparison systems of the
// paper's evaluation (Section 5.2.1): the entity popularity baseline
// POP and the vector similarity baseline VSim.
package baselines

import (
	"fmt"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/pagerank"
	"shine/internal/shine"
	"shine/internal/surftrie"
)

// POP links every mention to its most popular candidate entity,
// using the same PageRank-based popularity model as SHINE (Formula
// 7). Context is ignored entirely.
type POP struct {
	popularity map[hin.ObjectID]float64
	cands      shine.CandidateSource
}

// NewPOP computes entity popularity offline and resolves candidates
// through cands. Pass a SHINE model's CandidateSource() when comparing
// the two systems — eval.CompareLinkers feeds McNemar paired outcomes,
// which are only meaningful when both linkers choose from the same
// candidate set per mention. A nil cands builds the default
// surface-form trie over the graph, the same index shine.New builds,
// so even standalone POP resolves candidates by the model's rules
// rather than through a divergent path.
func NewPOP(g *hin.Graph, entityType hin.TypeID, cands shine.CandidateSource, opts pagerank.Options) (*POP, error) {
	res, err := pagerank.Compute(g, opts)
	if err != nil {
		return nil, fmt.Errorf("baselines: computing popularity: %w", err)
	}
	pop, err := pagerank.EntityPopularity(g, res.Scores, entityType)
	if err != nil {
		return nil, err
	}
	if cands == nil {
		trie, err := surftrie.Build(g, entityType)
		if err != nil {
			return nil, err
		}
		cands = trie
	}
	return &POP{popularity: pop, cands: cands}, nil
}

// Candidates exposes POP's candidate resolution so tests can pin it
// against the model's.
func (p *POP) Candidates(mention string) []hin.ObjectID {
	return p.cands.Candidates(mention)
}

// Link returns the most popular candidate for the document's mention.
// Ties break towards the lower entity ID, deterministically.
func (p *POP) Link(doc *corpus.Document) (hin.ObjectID, error) {
	cands := p.cands.Candidates(doc.Mention)
	if len(cands) == 0 {
		return hin.NoObject, fmt.Errorf("baselines: mention %q has no candidates", doc.Mention)
	}
	best := cands[0]
	for _, e := range cands[1:] {
		if p.popularity[e] > p.popularity[best] {
			best = e
		}
	}
	return best, nil
}
