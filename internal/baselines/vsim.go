package baselines

import (
	"fmt"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/namematch"
	"shine/internal/sparse"
)

// VSim is the vector similarity baseline of Section 5.2.1: for each
// mention it builds a bag-of-objects context vector from the document
// and a profile vector from each candidate's records in the network
// (for DBLP authors: coauthors, venues, title terms and publication
// years of her publications, with frequencies), then links to the
// candidate with the highest cosine similarity.
//
// The object types considered are configurable — Table 4 of the paper
// evaluates VSim under every subset of {coauthor, venue, term, year}.
type VSim struct {
	g          *hin.Graph
	entityType hin.TypeID
	index      *namematch.Index
	types      map[hin.TypeID]bool

	// profiles caches the per-entity profile vector, built lazily:
	// only candidates that actually occur are profiled.
	profiles map[hin.ObjectID]sparse.Vector
}

// NewVSim builds the baseline over the given graph for entities of
// entityType, using only profile/context objects of the given types.
// Passing no types means all types are used.
func NewVSim(g *hin.Graph, entityType hin.TypeID, types ...hin.TypeID) (*VSim, error) {
	idx, err := namematch.BuildIndex(g, entityType)
	if err != nil {
		return nil, err
	}
	v := &VSim{
		g:          g,
		entityType: entityType,
		index:      idx,
		profiles:   make(map[hin.ObjectID]sparse.Vector),
	}
	if len(types) > 0 {
		v.types = make(map[hin.TypeID]bool, len(types))
		for _, t := range types {
			v.types[t] = true
		}
	}
	return v, nil
}

// wantType reports whether objects of type t participate in vectors.
func (v *VSim) wantType(t hin.TypeID) bool {
	return v.types == nil || v.types[t]
}

// profile returns the entity's record vector: every object reachable
// via entity -> record -> object two-hop paths (e.g. author -> paper
// -> {coauthor, venue, term, year}), restricted to the selected
// types, with multiplicity; the entity itself is excluded.
func (v *VSim) profile(e hin.ObjectID) sparse.Vector {
	if p, ok := v.profiles[e]; ok {
		return p
	}
	p := sparse.New()
	schema := v.g.Schema()
	for _, rel := range schema.RelationsFrom(v.entityType) {
		for _, record := range v.g.Neighbors(rel, e) {
			for _, rel2 := range schema.RelationsFrom(v.g.TypeOf(record)) {
				to := schema.Relation(rel2).To
				if !v.wantType(to) {
					continue
				}
				for _, obj := range v.g.Neighbors(rel2, record) {
					if obj == e {
						continue
					}
					p.Add(int32(obj), 1)
				}
			}
		}
	}
	v.profiles[e] = p
	return p
}

// context builds the document's bag restricted to the selected types.
func (v *VSim) context(doc *corpus.Document) sparse.Vector {
	ctx := sparse.New()
	for _, oc := range doc.Objects {
		if v.wantType(v.g.TypeOf(oc.Object)) {
			ctx.Set(int32(oc.Object), float64(oc.Count))
		}
	}
	return ctx
}

// Link returns the candidate whose profile has the highest cosine
// similarity with the document context. Ties (including the all-zero
// case) break towards the lower entity ID.
func (v *VSim) Link(doc *corpus.Document) (hin.ObjectID, error) {
	cands := v.index.Candidates(doc.Mention)
	if len(cands) == 0 {
		return hin.NoObject, fmt.Errorf("baselines: mention %q has no candidates", doc.Mention)
	}
	ctx := v.context(doc)
	best := cands[0]
	bestSim := ctx.Cosine(v.profile(cands[0]))
	for _, e := range cands[1:] {
		if sim := ctx.Cosine(v.profile(e)); sim > bestSim {
			best, bestSim = e, sim
		}
	}
	return best, nil
}
