package baselines

import (
	"fmt"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/pagerank"
	"shine/internal/shine"
)

// twoWangs mirrors the shine package fixture: two authors sharing a
// name, in different communities, with different productivity.
func twoWangs(t testing.TB) (*hin.DBLPSchema, *hin.Graph, map[string]hin.ObjectID) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	ids := map[string]hin.ObjectID{
		"w1":     b.MustAddObject(d.Author, "Wei Wang 0001"),
		"w2":     b.MustAddObject(d.Author, "Wei Wang 0002"),
		"muntz":  b.MustAddObject(d.Author, "Richard R. Muntz"),
		"martin": b.MustAddObject(d.Author, "Eric Martin"),
		"sigmod": b.MustAddObject(d.Venue, "SIGMOD"),
		"nips":   b.MustAddObject(d.Venue, "NIPS"),
		"data":   b.MustAddObject(d.Term, "data"),
		"neural": b.MustAddObject(d.Term, "neural"),
		"1999":   b.MustAddObject(d.Year, "1999"),
		"2005":   b.MustAddObject(d.Year, "2005"),
	}
	for i := 0; i < 5; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("w1p%d", i))
		b.MustAddLink(d.Write, ids["w1"], p)
		b.MustAddLink(d.Write, ids["muntz"], p)
		b.MustAddLink(d.Publish, ids["sigmod"], p)
		b.MustAddLink(d.Contain, p, ids["data"])
		b.MustAddLink(d.PublishedIn, p, ids["1999"])
	}
	p := b.MustAddObject(d.Paper, "w2p0")
	b.MustAddLink(d.Write, ids["w2"], p)
	b.MustAddLink(d.Write, ids["martin"], p)
	b.MustAddLink(d.Publish, ids["nips"], p)
	b.MustAddLink(d.Contain, p, ids["neural"])
	b.MustAddLink(d.PublishedIn, p, ids["2005"])
	return d, b.Build(), ids
}

func TestPOPLinksToMostPopular(t *testing.T) {
	d, g, ids := twoWangs(t)
	pop, err := NewPOP(g, d.Author, nil, pagerank.DefaultOptions())
	if err != nil {
		t.Fatalf("NewPOP: %v", err)
	}
	// POP ignores context entirely: even a document about w2's world
	// links to the prolific w1.
	doc := corpus.NewDocument("d", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["nips"], ids["neural"]})
	e, err := pop.Link(doc)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if e != ids["w1"] {
		t.Errorf("POP linked to %d, want the popular w1 %d", e, ids["w1"])
	}
	if _, err := pop.Link(corpus.NewDocument("x", "Nobody", hin.NoObject, nil)); err == nil {
		t.Error("unknown mention accepted")
	}
}

func TestVSimUsesContext(t *testing.T) {
	d, g, ids := twoWangs(t)
	vs, err := NewVSim(g, d.Author)
	if err != nil {
		t.Fatalf("NewVSim: %v", err)
	}
	docB := corpus.NewDocument("b", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["martin"], ids["nips"], ids["neural"], ids["2005"]})
	e, err := vs.Link(docB)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if e != ids["w2"] {
		t.Errorf("VSim linked to %d, want w2 %d", e, ids["w2"])
	}
	docA := corpus.NewDocument("a", "Wei Wang", ids["w1"],
		[]hin.ObjectID{ids["muntz"], ids["sigmod"], ids["data"], ids["1999"]})
	if e, _ := vs.Link(docA); e != ids["w1"] {
		t.Errorf("VSim linked docA to %d, want w1", e)
	}
}

func TestVSimTypeSubsets(t *testing.T) {
	d, g, ids := twoWangs(t)

	// Venue-only VSim can still separate the two Wangs here.
	vsVenue, err := NewVSim(g, d.Author, d.Venue)
	if err != nil {
		t.Fatal(err)
	}
	docB := corpus.NewDocument("b", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["martin"], ids["nips"], ids["neural"], ids["2005"]})
	if e, _ := vsVenue.Link(docB); e != ids["w2"] {
		t.Errorf("venue-only VSim linked to %d", e)
	}

	// Year-only VSim sees only the year object.
	vsYear, err := NewVSim(g, d.Author, d.Year)
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := vsYear.Link(docB); e != ids["w2"] {
		t.Errorf("year-only VSim linked to %d", e)
	}

	// A type subset excluding everything in the document degenerates
	// to the deterministic low-ID tie break.
	docYearless := corpus.NewDocument("c", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["nips"]})
	if e, _ := vsYear.Link(docYearless); e != ids["w1"] {
		t.Errorf("zero-similarity tie broke to %d, want lowest ID", e)
	}
}

func TestVSimProfileExcludesEntityItself(t *testing.T) {
	d, g, ids := twoWangs(t)
	vs, err := NewVSim(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	p := vs.profile(ids["w1"])
	if p.Get(int32(ids["w1"])) != 0 {
		t.Error("profile contains the entity itself")
	}
	// Coauthor appears once per shared paper (5 times).
	if got := p.Get(int32(ids["muntz"])); got != 5 {
		t.Errorf("profile coauthor count = %v, want 5", got)
	}
	// Profile is cached.
	if p2 := vs.profile(ids["w1"]); &p2 == nil || p2.Len() != p.Len() {
		t.Error("profile cache broken")
	}
}

func TestUWalkUsesContext(t *testing.T) {
	d, g, ids := twoWangs(t)
	c := &corpus.Corpus{}
	docA := corpus.NewDocument("a", "Wei Wang", ids["w1"],
		[]hin.ObjectID{ids["muntz"], ids["sigmod"], ids["data"], ids["1999"]})
	docB := corpus.NewDocument("b", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["martin"], ids["nips"], ids["neural"], ids["2005"]})
	c.Add(docA)
	c.Add(docB)

	uw, err := NewUWalk(g, d.Author, c, 4, 0.2)
	if err != nil {
		t.Fatalf("NewUWalk: %v", err)
	}
	if e, err := uw.Link(docA); err != nil || e != ids["w1"] {
		t.Errorf("Link(docA) = %d, %v; want w1", e, err)
	}
	if e, err := uw.Link(docB); err != nil || e != ids["w2"] {
		t.Errorf("Link(docB) = %d, %v; want w2", e, err)
	}
	if _, err := uw.Link(corpus.NewDocument("x", "Nobody", hin.NoObject, nil)); err == nil {
		t.Error("unknown mention accepted")
	}
}

func TestUWalkValidation(t *testing.T) {
	d, g, ids := twoWangs(t)
	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("a", "Wei Wang", ids["w1"], []hin.ObjectID{ids["sigmod"]}))
	if _, err := NewUWalk(g, d.Author, c, 0, 0.2); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := NewUWalk(g, d.Author, c, 4, 1.5); err == nil {
		t.Error("theta out of range accepted")
	}
}

func TestUWalkMixtureIsSubProbability(t *testing.T) {
	d, g, ids := twoWangs(t)
	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("a", "Wei Wang", ids["w1"], []hin.ObjectID{ids["sigmod"]}))
	uw, err := NewUWalk(g, d.Author, c, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mix := uw.walkMixture(ids["w1"])
	sum := 0.0
	for _, x := range mix {
		if x < 0 {
			t.Fatal("negative mass")
		}
		sum += x
	}
	if sum > 1+1e-9 {
		t.Errorf("mixture mass %v exceeds 1", sum)
	}
}

// TestPOPSharesModelCandidates pins the property the McNemar pairing
// in eval.CompareLinkers depends on: a POP built over the model's own
// CandidateSource resolves exactly the candidate set the model does,
// for every mention — including fuzzy/custom sources the default trie
// would not replicate.
func TestPOPSharesModelCandidates(t *testing.T) {
	d, g, ids := twoWangs(t)
	c := &corpus.Corpus{}
	c.Add(corpus.NewDocument("a", "Wei Wang", ids["w1"],
		[]hin.ObjectID{ids["muntz"], ids["sigmod"], ids["data"], ids["1999"]}))
	c.Add(corpus.NewDocument("b", "Wei Wang", ids["w2"],
		[]hin.ObjectID{ids["martin"], ids["nips"], ids["neural"], ids["2005"]}))
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		t.Fatalf("shine.New: %v", err)
	}
	pop, err := NewPOP(g, d.Author, m.CandidateSource(), pagerank.DefaultOptions())
	if err != nil {
		t.Fatalf("NewPOP: %v", err)
	}
	for _, mention := range []string{"Wei Wang", "Richard R. Muntz", "Eric Martin", "Nobody Known"} {
		want := m.CandidateSource().Candidates(mention)
		got := pop.Candidates(mention)
		if len(got) != len(want) {
			t.Fatalf("mention %q: POP has %d candidates, model has %d", mention, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("mention %q candidate %d: POP %d, model %d", mention, i, got[i], want[i])
			}
		}
	}

	// The default (nil) source matches the model's stock trie too —
	// same construction rules — so standalone POP is not a divergent
	// resolver either.
	popDefault, err := NewPOP(g, d.Author, nil, pagerank.DefaultOptions())
	if err != nil {
		t.Fatalf("NewPOP(nil source): %v", err)
	}
	want := m.CandidateSource().Candidates("Wei Wang")
	got := popDefault.Candidates("Wei Wang")
	if len(got) != len(want) {
		t.Fatalf("default source: %d candidates, model trie has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("default source candidate %d: %d, model %d", i, got[i], want[i])
		}
	}
}
