package baselines

import (
	"fmt"
	"math"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/namematch"
	"shine/internal/pagerank"
	"shine/internal/sparse"
)

// UWalk is the "intuitive way" Section 3.2 of the paper describes and
// rejects: estimate the entity-specific object model with plain
// random walks that follow any relation with uniform probability at
// each step, instead of meta-path constrained walks. Everything else
// matches SHINE — PageRank popularity prior, θ-smoothed object model
// over the document bag — so evaluating UWalk against SHINE isolates
// exactly what the meta-path constraints (and their learned weights)
// buy.
type UWalk struct {
	g          *hin.Graph
	index      *namematch.Index
	popularity map[hin.ObjectID]float64
	generic    *corpus.GenericModel

	// steps is the walk horizon; step distributions 1..steps are
	// averaged, mirroring SHINE's mixture over paths of length ≤ 4.
	steps int
	theta float64
	floor float64

	// cache holds per-entity walk mixtures.
	cache map[hin.ObjectID]sparse.Vector
}

// NewUWalk builds the unconstrained-walk linker. steps is the walk
// horizon (the paper's meta-paths reach length 4); theta the
// smoothing weight.
func NewUWalk(g *hin.Graph, entityType hin.TypeID, docs *corpus.Corpus, steps int, theta float64) (*UWalk, error) {
	if steps < 1 {
		return nil, fmt.Errorf("baselines: walk horizon %d must be positive", steps)
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("baselines: theta %v outside (0, 1)", theta)
	}
	res, err := pagerank.Compute(g, pagerank.DefaultOptions())
	if err != nil {
		return nil, err
	}
	pop, err := pagerank.EntityPopularity(g, res.Scores, entityType)
	if err != nil {
		return nil, err
	}
	idx, err := namematch.BuildIndex(g, entityType)
	if err != nil {
		return nil, err
	}
	gen, err := corpus.EstimateGeneric(docs)
	if err != nil {
		return nil, err
	}
	return &UWalk{
		g:          g,
		index:      idx,
		popularity: pop,
		generic:    gen,
		steps:      steps,
		theta:      theta,
		floor:      1e-12,
		cache:      make(map[hin.ObjectID]sparse.Vector),
	}, nil
}

// walkMixture averages the uniform-walk distributions after 1..steps
// hops from e. Each hop follows every outgoing link of every relation
// with equal probability.
func (u *UWalk) walkMixture(e hin.ObjectID) sparse.Vector {
	if d, ok := u.cache[e]; ok {
		return d
	}
	mix := sparse.New()
	cur := sparse.Unit(int32(e))
	for step := 0; step < u.steps; step++ {
		next := sparse.NewWithCapacity(cur.Len())
		for i, mass := range cur {
			v := hin.ObjectID(i)
			total := u.g.TotalDegree(v)
			if total == 0 {
				continue
			}
			share := mass / float64(total)
			schema := u.g.Schema()
			for rel := 0; rel < schema.NumRelations(); rel++ {
				for _, dst := range u.g.Neighbors(hin.RelationID(rel), v) {
					next.Add(int32(dst), share)
				}
			}
		}
		cur = next
		mix.AccumScaled(cur, 1/float64(u.steps))
	}
	u.cache[e] = mix
	return mix
}

// Link scores every candidate with the same joint form as SHINE but
// the unconstrained walk mixture as Pe.
func (u *UWalk) Link(doc *corpus.Document) (hin.ObjectID, error) {
	cands := u.index.Candidates(doc.Mention)
	if len(cands) == 0 {
		return hin.NoObject, fmt.Errorf("baselines: mention %q has no candidates", doc.Mention)
	}
	best := hin.NoObject
	bestScore := math.Inf(-1)
	for _, e := range cands {
		pe := u.walkMixture(e)
		score := math.Log(math.Max(u.popularity[e], u.floor))
		for _, oc := range doc.Objects {
			pv := u.theta*pe.Get(int32(oc.Object)) + (1-u.theta)*u.generic.Prob(oc.Object)
			score += float64(oc.Count) * math.Log(math.Max(pv, u.floor))
		}
		if score > bestScore || (score == bestScore && e < best) {
			best, bestScore = e, score
		}
	}
	return best, nil
}
