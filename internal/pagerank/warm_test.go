package pagerank

import (
	"fmt"
	"math"
	"testing"

	"shine/internal/hin"
)

// smallDelta appends a handful of new papers wired to existing objects
// — the "new papers arrive every minute" shape — and returns the
// merged graph.
func smallDelta(t testing.TB, g *hin.Graph, papers int) *hin.Graph {
	t.Helper()
	s := g.Schema()
	paperT, _ := s.TypeByName("paper")
	write, _ := s.RelationByName("write")
	publish, _ := s.RelationByName("publish")
	authorT, _ := s.TypeByName("author")
	venueT, _ := s.TypeByName("venue")
	authors := g.ObjectsOfType(authorT)
	venues := g.ObjectsOfType(venueT)

	d := g.Append()
	for i := 0; i < papers; i++ {
		p := d.MustAppend(paperT, fmt.Sprintf("delta-paper-%d", i))
		d.MustPatch(write, authors[i%len(authors)], p)
		d.MustPatch(publish, venues[i%len(venues)], p)
	}
	merged, _, err := d.Merge()
	if err != nil {
		t.Fatalf("merge delta: %v", err)
	}
	return merged
}

func linf(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestRefineMatchesReferenceAfterDelta pins the warm-start correctness
// claim: after a small delta, Refine from the previous revision's
// scores lands within 1e-9 L∞ of ReferenceCompute on the new graph —
// the same bound the cold pull kernel is held to — at workers 1, 4
// and 8, in far fewer sweeps than a cold start.
func TestRefineMatchesReferenceAfterDelta(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := randomDBLP(t, seed, 40)
		opts := DefaultOptions()
		prev, err := Compute(g, opts)
		if err != nil {
			t.Fatalf("seed %d: cold Compute on base: %v", seed, err)
		}

		g2 := smallDelta(t, g, 3)
		cold, err := Compute(g2, opts)
		if err != nil {
			t.Fatalf("seed %d: cold Compute on merged: %v", seed, err)
		}
		oracle, err := ReferenceCompute(g2, opts)
		if err != nil {
			t.Fatalf("seed %d: ReferenceCompute: %v", seed, err)
		}

		for _, workers := range []int{1, 4, 8} {
			opts.Workers = workers
			warm, err := Refine(g2, opts, prev.Scores)
			if err != nil {
				t.Fatalf("seed %d workers %d: Refine: %v", seed, workers, err)
			}
			if !warm.Converged {
				t.Fatalf("seed %d workers %d: Refine did not converge (delta %g)", seed, workers, warm.Delta)
			}
			if d := linf(warm.Scores, oracle.Scores); d > 1e-9 {
				t.Errorf("seed %d workers %d: Refine vs reference L∞ = %g, want <= 1e-9", seed, workers, d)
			}
			if d := linf(warm.Scores, cold.Scores); d > 1e-9 {
				t.Errorf("seed %d workers %d: Refine vs cold Compute L∞ = %g, want <= 1e-9", seed, workers, d)
			}
			// An object-adding delta shifts the teleport term at
			// every vertex, so the residual is dense and the win here
			// is the warm head start alone (the push phase correctly
			// declines); the concentrated-delta speedup is pinned by
			// TestRefinePushDrainsLocalDelta.
			if warm.Iterations >= cold.Iterations {
				t.Errorf("seed %d workers %d: Refine used %d sweeps, cold used %d — warm start is not paying off",
					seed, workers, warm.Iterations, cold.Iterations)
			}
			sum := 0.0
			for _, s := range warm.Scores {
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("seed %d workers %d: Σpr = %v, want 1", seed, workers, sum)
			}
		}
	}
}

// TestRefineDeterministicAcrossWorkers extends the kernel's
// determinism contract to the warm path: the sweeps use the blocked
// fixed-order reductions and the push phase is serial, so workers
// 1/4/8 must be bit-identical.
func TestRefineDeterministicAcrossWorkers(t *testing.T) {
	g := randomDBLP(t, 7, 50)
	opts := DefaultOptions()
	prev, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("cold Compute: %v", err)
	}
	g2 := smallDelta(t, g, 4)

	opts.Workers = 1
	golden, err := Refine(g2, opts, prev.Scores)
	if err != nil {
		t.Fatalf("Refine(workers=1): %v", err)
	}
	for _, workers := range []int{4, 8} {
		opts.Workers = workers
		res, err := Refine(g2, opts, prev.Scores)
		if err != nil {
			t.Fatalf("Refine(workers=%d): %v", workers, err)
		}
		if res.Iterations != golden.Iterations || res.Pushes != golden.Pushes {
			t.Fatalf("workers=%d: (%d sweeps, %d pushes) differs from golden (%d, %d)",
				workers, res.Iterations, res.Pushes, golden.Iterations, golden.Pushes)
		}
		for v := range golden.Scores {
			if math.Float64bits(res.Scores[v]) != math.Float64bits(golden.Scores[v]) {
				t.Fatalf("workers=%d: score[%d] not bit-identical", workers, v)
			}
		}
	}
}

// TestRefinePushDrainsLocalDelta exercises the Gauss–Southwell phase
// proper: an edge-only delta confined to a tiny component of a large
// graph leaves the seed residual local, so the push queue drains it
// without sweeping the bulk, and one or two sweeps certify. This is
// the regime where Refine beats warm power iteration outright.
func TestRefinePushDrainsLocalDelta(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	// Big component: a well-connected bulk.
	bigAuthors := make([]hin.ObjectID, 150)
	for i := range bigAuthors {
		bigAuthors[i] = b.MustAddObject(d.Author, fmt.Sprintf("big-author-%d", i))
	}
	bigVenue := b.MustAddObject(d.Venue, "big-venue")
	for i := 0; i < 300; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("big-paper-%d", i))
		b.MustAddLink(d.Write, bigAuthors[i%len(bigAuthors)], p)
		b.MustAddLink(d.Publish, bigVenue, p)
	}
	// Tiny disconnected component the delta will land in.
	smallAuthor := b.MustAddObject(d.Author, "small-author")
	smallPapers := make([]hin.ObjectID, 4)
	for i := range smallPapers {
		smallPapers[i] = b.MustAddObject(d.Paper, fmt.Sprintf("small-paper-%d", i))
		b.MustAddLink(d.Write, smallAuthor, smallPapers[i])
	}
	g := b.Build()

	opts := DefaultOptions()
	prev, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("cold Compute: %v", err)
	}

	// Edge-only delta inside the small component: no new objects, no
	// renormalisation — the residual cannot reach the big component.
	delta := g.Append()
	delta.MustPatch(d.Write, smallAuthor, smallPapers[0])
	g2, _, err := delta.Merge()
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	cold, err := Compute(g2, opts)
	if err != nil {
		t.Fatalf("cold Compute on merged: %v", err)
	}
	warm, err := Refine(g2, opts, prev.Scores)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !warm.Converged {
		t.Fatalf("Refine did not converge (delta %g)", warm.Delta)
	}
	if warm.Pushes == 0 {
		t.Error("local delta did not trigger the push phase")
	}
	if warm.Iterations > 3 {
		t.Errorf("Refine needed %d sweeps on a local delta, want <= 3 (cold needed %d)",
			warm.Iterations, cold.Iterations)
	}
	if d := linf(warm.Scores, cold.Scores); d > 1e-9 {
		t.Errorf("Refine vs cold L∞ = %g, want <= 1e-9", d)
	}
}

// TestComputeWarmOption: Compute with Options.Warm set converges to
// the same fixed point from the supplied iterate, in fewer sweeps.
func TestComputeWarmOption(t *testing.T) {
	g := randomDBLP(t, 11, 40)
	opts := DefaultOptions()
	prev, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("cold Compute: %v", err)
	}
	g2 := smallDelta(t, g, 2)
	cold, err := Compute(g2, opts)
	if err != nil {
		t.Fatalf("cold Compute on merged: %v", err)
	}
	opts.Warm = prev.Scores
	warm, err := Compute(g2, opts)
	if err != nil {
		t.Fatalf("warm Compute: %v", err)
	}
	if !warm.Converged {
		t.Fatalf("warm Compute did not converge (delta %g)", warm.Delta)
	}
	if d := linf(warm.Scores, cold.Scores); d > 1e-9 {
		t.Errorf("warm vs cold L∞ = %g, want <= 1e-9", d)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm Compute used %d iterations, cold used %d", warm.Iterations, cold.Iterations)
	}
}

// TestRefineIdenticalGraph: refining with an unchanged graph certifies
// convergence on the seed sweep alone.
func TestRefineIdenticalGraph(t *testing.T) {
	g := randomDBLP(t, 13, 30)
	opts := DefaultOptions()
	prev, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("cold Compute: %v", err)
	}
	warm, err := Refine(g, opts, prev.Scores)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !warm.Converged || warm.Iterations != 1 || warm.Pushes != 0 {
		t.Errorf("no-op refine = %d sweeps, %d pushes, converged=%v; want 1, 0, true",
			warm.Iterations, warm.Pushes, warm.Converged)
	}
}

func TestWarmValidation(t *testing.T) {
	_, g, _, _ := starDBLP(t, 3)
	opts := DefaultOptions()
	n := g.NumObjects()

	opts.Warm = make([]float64, n+1)
	if _, err := Compute(g, opts); err == nil {
		t.Error("oversized warm vector accepted")
	}
	opts.Warm = []float64{math.NaN()}
	if _, err := Compute(g, opts); err == nil {
		t.Error("NaN warm score accepted")
	}
	opts.Warm = []float64{-1}
	if _, err := Compute(g, opts); err == nil {
		t.Error("negative warm score accepted")
	}
	opts.Warm = nil
	if _, err := Refine(g, opts, nil); err == nil {
		t.Error("Refine without a previous vector accepted")
	}
	opts.MaxPushes = -1
	if _, err := Refine(g, opts, make([]float64, n)); err == nil {
		t.Error("negative MaxPushes accepted")
	}
}
