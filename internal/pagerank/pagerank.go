// Package pagerank computes the whole-network PageRank scores that
// SHINE's entity popularity model is built on (Section 3.1 of the
// paper). Object types are ignored: every link, in either direction,
// propagates importance. The recurrence is
//
//	pr = λ·ip + (1−λ)·B·pr          (Formula 6)
//
// with ip the uniform initial score vector and B the column-normalised
// link matrix. The paper assumes every object has at least one
// outgoing link; real and synthetic networks occasionally violate
// that, so dangling objects redistribute their mass uniformly — the
// standard PageRank fix, which preserves Σpr = 1.
//
// Compute is a CSR-native pull-based power-iteration kernel: each
// iteration computes every object's next score from its in-neighbors'
// current scores by iterating the graph's CSR rows directly, fanned
// out across Options.Workers goroutines. Because every link in the
// network is stored together with its inverse, an object's in-neighbor
// multiset across all directed links equals its out-neighbor multiset
// across all relations, so the kernel pulls along the same rows the
// push formulation scatters from — with no per-edge closure and no
// write contention (each worker writes only its own vertex range).
// The dangling-mass and convergence-delta sums use blocked fixed-order
// reductions (internal/par), so the score vector is bit-for-bit
// identical for any worker count. ReferenceCompute retains the
// original edge-push kernel as a testing oracle.
package pagerank

import (
	"errors"
	"fmt"
	"math"

	"shine/internal/hin"
	"shine/internal/par"
)

// Options configures a PageRank computation. The zero value is not
// valid; use DefaultOptions as a base.
type Options struct {
	// Lambda balances the initial score against the propagated score
	// (λ in Formula 6). The paper sets λ = 0.2 in all experiments.
	Lambda float64
	// Tolerance is the L1-change threshold below which iteration
	// stops.
	Tolerance float64
	// MaxIterations caps the power iteration.
	MaxIterations int
	// Workers is the number of goroutines the per-iteration vertex
	// sweep fans out to; 0 selects GOMAXPROCS. The kernel's blocked
	// fixed-order reductions make the score vector bit-for-bit
	// identical for every Workers value. Like shine.Config.Workers it
	// is an execution knob, not model state, and is excluded from
	// saved models.
	Workers int `json:"-"`
	// Warm, when non-nil, is the starting iterate for the power
	// iteration instead of the uniform vector — typically the
	// converged scores of a previous, slightly different revision of
	// the graph. It may be shorter than the graph (objects past its
	// end start at the uniform score) and is renormalised to sum to 1.
	// Warm-starting changes the iteration path, not the fixed point:
	// the result still converges to the same Tolerance. Execution
	// state, not model state; excluded from saved models.
	Warm []float64 `json:"-"`
	// MaxPushes bounds the residual-queue pushes Refine performs
	// between its seed sweep and the certifying sweeps; 0 selects
	// 64×NumObjects. Execution knob; excluded from saved models.
	MaxPushes int `json:"-"`
}

// DefaultOptions returns the paper's configuration: λ = 0.2, with a
// tight convergence tolerance. Workers defaults to 0 (GOMAXPROCS).
func DefaultOptions() Options {
	return Options{Lambda: 0.2, Tolerance: 1e-10, MaxIterations: 200}
}

// Validate reports the first configuration problem, or nil. Compute
// and every Centrality backend call it; shine.Config.Validate
// delegates to it so a bad option set is caught at config time, not
// first compute.
func (o Options) Validate() error {
	// NaN fails every range comparison, so test for it explicitly:
	// NaN < 0 and NaN > 1 are both false.
	if math.IsNaN(o.Lambda) || o.Lambda < 0 || o.Lambda > 1 {
		return fmt.Errorf("pagerank: lambda %v outside [0, 1]", o.Lambda)
	}
	if math.IsNaN(o.Tolerance) || math.IsInf(o.Tolerance, 0) || o.Tolerance <= 0 {
		return fmt.Errorf("pagerank: tolerance %v must be positive and finite", o.Tolerance)
	}
	if o.MaxIterations <= 0 {
		return fmt.Errorf("pagerank: max iterations %d must be positive", o.MaxIterations)
	}
	if o.Workers < 0 {
		return fmt.Errorf("pagerank: workers %d negative (0 = GOMAXPROCS)", o.Workers)
	}
	if o.MaxPushes < 0 {
		return fmt.Errorf("pagerank: max pushes %d negative (0 = default)", o.MaxPushes)
	}
	return nil
}

// Result holds the converged PageRank vector and iteration metadata.
type Result struct {
	// Scores is indexed by ObjectID; Σ Scores = 1.
	Scores []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Delta is the final L1 change between successive iterations.
	Delta float64
	// Converged reports whether Delta fell below the tolerance before
	// MaxIterations was reached.
	Converged bool
	// Pushes is the number of residual-queue pushes performed; always
	// zero for Compute, see Refine.
	Pushes int
}

// sweepBlock is the fixed vertex-block size of the pull sweep. Each
// block's delta partial is accumulated serially and the partials merge
// in block order, so — like the EM reductions — the summation tree
// depends only on |V|, never on the worker count. Larger than
// par.DefaultBlock because a vertex touches many edges: scheduling
// overhead amortises over whole adjacency rows.
const sweepBlock = 512

// kernel bundles everything one pull sweep needs: the inverted column
// norms, the dangling-object list and the flat CSR row snapshots. Both
// Compute and Refine iterate through the same kernel, so the warm path
// is the same arithmetic in the same order as the cold one.
type kernel struct {
	n       int
	lambda  float64
	initial float64
	workers int

	// invOutDeg is 1/N_v, or 0 for dangling objects — the column norms
	// of B inverted once so the inner loop multiplies instead of
	// dividing per edge. Dangling objects (1/N_v undefined) are listed
	// by index so iterations never rescan all of V for them.
	invOutDeg []float64
	dangling  []int32

	nrel int
	offs [][]int32
	adjs [][]hin.ObjectID
}

func newKernel(g *hin.Graph, opts Options) *kernel {
	n := g.NumObjects()
	k := &kernel{
		n:       n,
		lambda:  opts.Lambda,
		initial: 1.0 / float64(n),
		workers: par.ClampWorkers(opts.Workers, par.NumBlocks(n, sweepBlock)),
	}

	// The out-degrees are shared from the graph's Build-time cache.
	outDeg := g.TotalDegrees()
	k.invOutDeg = make([]float64, n)
	for v, d := range outDeg {
		if d == 0 {
			k.dangling = append(k.dangling, int32(v))
		} else {
			k.invOutDeg[v] = 1 / float64(d)
		}
	}

	// Snapshot every relation's CSR rows up front; the sweep indexes
	// these flat arrays with no per-edge or per-row calls.
	k.nrel = g.NumRelations()
	k.offs = make([][]int32, k.nrel)
	k.adjs = make([][]hin.ObjectID, k.nrel)
	for r := 0; r < k.nrel; r++ {
		k.offs[r], k.adjs[r] = g.Rows(hin.RelationID(r))
	}
	return k
}

// iterate performs one pull sweep pr → next and returns the L1 change.
// When resid is non-nil it also records the per-vertex change
// next[v]−pr[v], i.e. the exact residual F(pr)−pr that Refine's push
// phase consumes. The extra store does not perturb the arithmetic:
// cold Compute results stay bit-identical to the pre-kernel code.
func (k *kernel) iterate(pr, next, resid []float64) float64 {
	// Mass from dangling objects is spread uniformly. The list is
	// typically tiny; the blocked reduction keeps it deterministic
	// and parallel when it is not.
	danglingMass := par.ReduceSum(len(k.dangling), par.DefaultBlock, k.workers, func(lo, hi int) float64 {
		s := 0.0
		for _, v := range k.dangling[lo:hi] {
			s += pr[v]
		}
		return s
	})
	base := k.lambda*k.initial + (1-k.lambda)*danglingMass/float64(k.n)

	// Pull sweep: next[v] = base + (1−λ)·Σ_rel Σ_{u∈N_rel(v)}
	// pr[u]·invOutDeg[u]. Each vertex's sum accumulates serially in
	// fixed (relation, adjacency) order, and the per-block L1-delta
	// partials merge in block order — one fused parallel pass.
	return par.ReduceSum(k.n, sweepBlock, k.workers, func(lo, hi int) float64 {
		d := 0.0
		for v := lo; v < hi; v++ {
			sum := 0.0
			for r := 0; r < k.nrel; r++ {
				off := k.offs[r]
				for _, u := range k.adjs[r][off[v]:off[v+1]] {
					sum += pr[u] * k.invOutDeg[u]
				}
			}
			nv := base + (1-k.lambda)*sum
			next[v] = nv
			diff := nv - pr[v]
			if resid != nil {
				resid[v] = diff
			}
			d += math.Abs(diff)
		}
		return d
	})
}

// Compute runs pull-based power iteration over the whole graph and
// returns the PageRank score of every object. The result is
// bit-identical for any Options.Workers value and matches
// ReferenceCompute up to floating-point summation-order differences
// (≤ ~1e-12 in practice; the equivalence tests pin 1e-9 L∞). With
// Options.Warm set the iteration starts from the supplied vector
// instead of the uniform one and typically converges in far fewer
// sweeps; Refine adds a push-based refinement on top for small deltas.
func Compute(g *hin.Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	k := newKernel(g, opts)

	pr := make([]float64, n)
	next := make([]float64, n)
	if opts.Warm != nil {
		if err := warmInit(pr, opts.Warm); err != nil {
			return nil, err
		}
	} else {
		for v := range pr {
			pr[v] = k.initial
		}
	}

	res := &Result{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		delta := k.iterate(pr, next, nil)
		pr, next = next, pr
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = pr
	return res, nil
}

// ReferenceCompute is the original serial edge-push kernel, retained
// as the testing oracle for Compute (the metapath.ReferenceWalk
// pattern): it visits every directed link through Graph.ForEachLink
// and scatters pr[src]/N_src into next[dst]. The pull kernel must
// match it within tight floating-point tolerance on any graph; the
// two differ only in per-vertex summation order.
func ReferenceCompute(g *hin.Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}

	// Precompute out-degrees once; they are the column norms of B.
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		outDeg[v] = g.TotalDegree(hin.ObjectID(v))
	}

	initial := 1.0 / float64(n)
	pr := make([]float64, n)
	next := make([]float64, n)
	for v := range pr {
		pr[v] = initial
	}

	res := &Result{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Mass from dangling objects is spread uniformly.
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += pr[v]
			}
		}
		base := opts.Lambda*initial + (1-opts.Lambda)*dangling/float64(n)
		for v := range next {
			next[v] = base
		}
		g.ForEachLink(func(_ hin.RelationID, src, dst hin.ObjectID) {
			next[dst] += (1 - opts.Lambda) * pr[src] / float64(outDeg[src])
		})

		delta := 0.0
		for v := range pr {
			delta += math.Abs(next[v] - pr[v])
		}
		pr, next = next, pr
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = pr
	return res, nil
}

// EntityPopularity normalises the PageRank scores over the entity set
// E (all objects of entityType), yielding the paper's entity
// popularity model P(e) = pr(e) / Σ_{e'∈E} pr(e') (Formula 7). The
// returned map contains one entry per entity and sums to 1.
func EntityPopularity(g *hin.Graph, scores []float64, entityType hin.TypeID) (map[hin.ObjectID]float64, error) {
	if len(scores) != g.NumObjects() {
		return nil, fmt.Errorf("pagerank: %d scores for %d objects", len(scores), g.NumObjects())
	}
	entities := g.ObjectsOfType(entityType)
	if len(entities) == 0 {
		return nil, fmt.Errorf("pagerank: no objects of entity type %d", entityType)
	}
	total := 0.0
	for _, e := range entities {
		total += scores[e]
	}
	pop := make(map[hin.ObjectID]float64, len(entities))
	if total == 0 {
		// Degenerate but possible with an all-isolated entity type:
		// fall back to the uniform popularity model (Formula 5).
		u := 1.0 / float64(len(entities))
		for _, e := range entities {
			pop[e] = u
		}
		return pop, nil
	}
	for _, e := range entities {
		pop[e] = scores[e] / total
	}
	return pop, nil
}

// UniformPopularity returns the uniform popularity model P(e) = 1/|E|
// (Formula 5), used by the paper's "-eom" ablations.
func UniformPopularity(g *hin.Graph, entityType hin.TypeID) (map[hin.ObjectID]float64, error) {
	entities := g.ObjectsOfType(entityType)
	if len(entities) == 0 {
		return nil, fmt.Errorf("pagerank: no objects of entity type %d", entityType)
	}
	u := 1.0 / float64(len(entities))
	pop := make(map[hin.ObjectID]float64, len(entities))
	for _, e := range entities {
		pop[e] = u
	}
	return pop, nil
}
