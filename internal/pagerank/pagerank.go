// Package pagerank computes the whole-network PageRank scores that
// SHINE's entity popularity model is built on (Section 3.1 of the
// paper). Object types are ignored: every link, in either direction,
// propagates importance. The recurrence is
//
//	pr = λ·ip + (1−λ)·B·pr          (Formula 6)
//
// with ip the uniform initial score vector and B the column-normalised
// link matrix. The paper assumes every object has at least one
// outgoing link; real and synthetic networks occasionally violate
// that, so dangling objects redistribute their mass uniformly — the
// standard PageRank fix, which preserves Σpr = 1.
package pagerank

import (
	"errors"
	"fmt"
	"math"

	"shine/internal/hin"
)

// Options configures a PageRank computation. The zero value is not
// valid; use DefaultOptions as a base.
type Options struct {
	// Lambda balances the initial score against the propagated score
	// (λ in Formula 6). The paper sets λ = 0.2 in all experiments.
	Lambda float64
	// Tolerance is the L1-change threshold below which iteration
	// stops.
	Tolerance float64
	// MaxIterations caps the power iteration.
	MaxIterations int
}

// DefaultOptions returns the paper's configuration: λ = 0.2, with a
// tight convergence tolerance.
func DefaultOptions() Options {
	return Options{Lambda: 0.2, Tolerance: 1e-10, MaxIterations: 200}
}

func (o Options) validate() error {
	if o.Lambda < 0 || o.Lambda > 1 {
		return fmt.Errorf("pagerank: lambda %v outside [0, 1]", o.Lambda)
	}
	if o.Tolerance <= 0 {
		return fmt.Errorf("pagerank: tolerance %v must be positive", o.Tolerance)
	}
	if o.MaxIterations <= 0 {
		return fmt.Errorf("pagerank: max iterations %d must be positive", o.MaxIterations)
	}
	return nil
}

// Result holds the converged PageRank vector and iteration metadata.
type Result struct {
	// Scores is indexed by ObjectID; Σ Scores = 1.
	Scores []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Delta is the final L1 change between successive iterations.
	Delta float64
	// Converged reports whether Delta fell below the tolerance before
	// MaxIterations was reached.
	Converged bool
}

// Compute runs power iteration over the whole graph and returns the
// PageRank score of every object.
func Compute(g *hin.Graph, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}

	// Precompute out-degrees once; they are the column norms of B.
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		outDeg[v] = g.TotalDegree(hin.ObjectID(v))
	}

	initial := 1.0 / float64(n)
	pr := make([]float64, n)
	next := make([]float64, n)
	for v := range pr {
		pr[v] = initial
	}

	res := &Result{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Mass from dangling objects is spread uniformly.
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += pr[v]
			}
		}
		base := opts.Lambda*initial + (1-opts.Lambda)*dangling/float64(n)
		for v := range next {
			next[v] = base
		}
		g.ForEachLink(func(_ hin.RelationID, src, dst hin.ObjectID) {
			next[dst] += (1 - opts.Lambda) * pr[src] / float64(outDeg[src])
		})

		delta := 0.0
		for v := range pr {
			delta += math.Abs(next[v] - pr[v])
		}
		pr, next = next, pr
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = pr
	return res, nil
}

// EntityPopularity normalises the PageRank scores over the entity set
// E (all objects of entityType), yielding the paper's entity
// popularity model P(e) = pr(e) / Σ_{e'∈E} pr(e') (Formula 7). The
// returned map contains one entry per entity and sums to 1.
func EntityPopularity(g *hin.Graph, scores []float64, entityType hin.TypeID) (map[hin.ObjectID]float64, error) {
	if len(scores) != g.NumObjects() {
		return nil, fmt.Errorf("pagerank: %d scores for %d objects", len(scores), g.NumObjects())
	}
	entities := g.ObjectsOfType(entityType)
	if len(entities) == 0 {
		return nil, fmt.Errorf("pagerank: no objects of entity type %d", entityType)
	}
	total := 0.0
	for _, e := range entities {
		total += scores[e]
	}
	pop := make(map[hin.ObjectID]float64, len(entities))
	if total == 0 {
		// Degenerate but possible with an all-isolated entity type:
		// fall back to the uniform popularity model (Formula 5).
		u := 1.0 / float64(len(entities))
		for _, e := range entities {
			pop[e] = u
		}
		return pop, nil
	}
	for _, e := range entities {
		pop[e] = scores[e] / total
	}
	return pop, nil
}

// UniformPopularity returns the uniform popularity model P(e) = 1/|E|
// (Formula 5), used by the paper's "-eom" ablations.
func UniformPopularity(g *hin.Graph, entityType hin.TypeID) (map[hin.ObjectID]float64, error) {
	entities := g.ObjectsOfType(entityType)
	if len(entities) == 0 {
		return nil, fmt.Errorf("pagerank: no objects of entity type %d", entityType)
	}
	u := 1.0 / float64(len(entities))
	pop := make(map[hin.ObjectID]float64, len(entities))
	for _, e := range entities {
		pop[e] = u
	}
	return pop, nil
}
