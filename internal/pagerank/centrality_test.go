package pagerank

import (
	"math"
	"strings"
	"testing"

	"shine/internal/hin"
)

func TestNewCentralityRegistry(t *testing.T) {
	d := hin.NewDBLPSchema()
	for _, name := range CentralityNames() {
		c, err := NewCentrality(name, d.Author)
		if err != nil {
			t.Fatalf("NewCentrality(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("NewCentrality(%q).Name() = %q", name, c.Name())
		}
		if !ValidCentrality(name) {
			t.Errorf("ValidCentrality(%q) = false", name)
		}
	}
	if _, err := NewCentrality("closeness", d.Author); err == nil {
		t.Error("unknown backend accepted")
	} else if !strings.Contains(err.Error(), "closeness") {
		t.Errorf("error %q does not name the offending backend", err)
	}
	if ValidCentrality("") || ValidCentrality("closeness") {
		t.Error("ValidCentrality accepted a non-backend")
	}
	if DefaultCentrality != "pagerank" {
		t.Errorf("DefaultCentrality = %q", DefaultCentrality)
	}
}

// TestCentralityWarmSupport pins which backends advertise warm
// restarts: pagerank, degree and ppr do; HITS deliberately does not
// (WithDelta's documented cold-restart stat depends on this).
func TestCentralityWarmSupport(t *testing.T) {
	d := hin.NewDBLPSchema()
	warm := map[string]bool{"pagerank": true, "degree": true, "hits": false, "ppr": true}
	for name, want := range warm {
		c, err := NewCentrality(name, d.Author)
		if err != nil {
			t.Fatalf("NewCentrality(%q): %v", name, err)
		}
		if _, ok := c.(WarmCentrality); ok != want {
			t.Errorf("%s implements WarmCentrality = %v, want %v", name, ok, want)
		}
	}
}

// TestCentralityGoldenDeterminismAcrossWorkers is the pull kernel's
// determinism harness applied to every backend: workers 1 is the
// golden run, and workers 4/8 must reproduce every score bit for bit,
// along with the iteration metadata.
func TestCentralityGoldenDeterminismAcrossWorkers(t *testing.T) {
	g := randomDBLP(t, 99, 60)
	d := hin.NewDBLPSchema()
	for _, name := range CentralityNames() {
		t.Run(name, func(t *testing.T) {
			c, err := NewCentrality(name, d.Author)
			if err != nil {
				t.Fatalf("NewCentrality: %v", err)
			}
			opts := DefaultOptions()
			opts.Workers = 1
			golden, err := c.Compute(g, opts)
			if err != nil {
				t.Fatalf("Compute(workers=1): %v", err)
			}
			for _, workers := range []int{4, 8} {
				opts.Workers = workers
				res, err := c.Compute(g, opts)
				if err != nil {
					t.Fatalf("Compute(workers=%d): %v", workers, err)
				}
				if res.Iterations != golden.Iterations || res.Converged != golden.Converged {
					t.Fatalf("workers=%d: metadata (%d, %v) differs from golden (%d, %v)",
						workers, res.Iterations, res.Converged, golden.Iterations, golden.Converged)
				}
				if math.Float64bits(res.Delta) != math.Float64bits(golden.Delta) {
					t.Fatalf("workers=%d: delta %x differs from golden %x",
						workers, math.Float64bits(res.Delta), math.Float64bits(golden.Delta))
				}
				for v := range golden.Scores {
					if math.Float64bits(res.Scores[v]) != math.Float64bits(golden.Scores[v]) {
						t.Fatalf("workers=%d: score[%d] = %x, golden %x — not bit-identical",
							workers, v, math.Float64bits(res.Scores[v]), math.Float64bits(golden.Scores[v]))
					}
				}
			}
		})
	}
}

// TestCentralityScoresSumToOne: every backend returns a probability
// vector over all objects.
func TestCentralityScoresSumToOne(t *testing.T) {
	g := randomDBLP(t, 7, 40)
	d := hin.NewDBLPSchema()
	for _, name := range CentralityNames() {
		c, err := NewCentrality(name, d.Author)
		if err != nil {
			t.Fatalf("NewCentrality(%q): %v", name, err)
		}
		res, err := c.Compute(g, DefaultOptions())
		if err != nil {
			t.Fatalf("%s.Compute: %v", name, err)
		}
		if len(res.Scores) != g.NumObjects() {
			t.Fatalf("%s: %d scores for %d objects", name, len(res.Scores), g.NumObjects())
		}
		sum := 0.0
		for v, s := range res.Scores {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("%s: invalid score %v at %d", name, s, v)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: scores sum to %v, want 1", name, sum)
		}
	}
}

func TestDegreeCentralityProportionalToDegrees(t *testing.T) {
	_, g, hub, leaf := starDBLP(t, 5)
	c, _ := NewCentrality("degree", hin.NewDBLPSchema().Author)
	res, err := c.Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("degree reported iterations=%d converged=%v, want single-pass convergence",
			res.Iterations, res.Converged)
	}
	deg := g.TotalDegrees()
	total := 0.0
	for _, dv := range deg {
		total += float64(dv)
	}
	for v := range res.Scores {
		want := float64(deg[v]) / total
		if math.Abs(res.Scores[v]-want) > 1e-15 {
			t.Fatalf("score[%d] = %v, want %v (degree %d / %v)", v, res.Scores[v], want, deg[v], total)
		}
	}
	if res.Scores[hub] <= res.Scores[leaf] {
		t.Errorf("hub (5 papers) scored %v <= leaf (1 paper) %v", res.Scores[hub], res.Scores[leaf])
	}
}

func TestDegreeCentralityLinklessGraphIsUniform(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	b.MustAddObject(d.Author, "A1")
	b.MustAddObject(d.Author, "A2")
	g := b.Build()
	c, _ := NewCentrality("degree", d.Author)
	res, err := c.Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for v, s := range res.Scores {
		if s != 0.5 {
			t.Errorf("score[%d] = %v, want 0.5", v, s)
		}
	}
}

func TestHITSHubOutranksLeaf(t *testing.T) {
	_, g, hub, leaf := starDBLP(t, 8)
	c, _ := NewCentrality("hits", hin.NewDBLPSchema().Author)
	res, err := c.Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Converged {
		t.Fatalf("HITS did not converge in %d iterations (delta %v)", res.Iterations, res.Delta)
	}
	if res.Scores[hub] <= res.Scores[leaf] {
		t.Errorf("hub authority %v <= leaf authority %v", res.Scores[hub], res.Scores[leaf])
	}
}

func TestHITSLinklessGraphIsUniform(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	b.MustAddObject(d.Author, "A1")
	b.MustAddObject(d.Author, "A2")
	b.MustAddObject(d.Venue, "V")
	g := b.Build()
	c, _ := NewCentrality("hits", d.Author)
	res, err := c.Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Converged {
		t.Error("linkless graph should report convergence")
	}
	for v, s := range res.Scores {
		if math.Abs(s-1.0/3) > 1e-15 {
			t.Errorf("score[%d] = %v, want 1/3", v, s)
		}
	}
}

// TestPPRTeleportRestrictedToEntityType: objects unreachable from the
// entity set get exactly zero mass — an isolated term receives neither
// teleport (wrong type) nor pull mass (no in-links) — while isolated
// entities still receive their teleport share.
func TestPPRTeleportRestrictedToEntityType(t *testing.T) {
	g := randomDBLP(t, 11, 30)
	d := hin.NewDBLPSchema()
	c, _ := NewCentrality("ppr", d.Author)
	res, err := c.Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	sawIsolatedTerm, sawIsolatedAuthor := false, false
	deg := g.TotalDegrees()
	for v := range res.Scores {
		if deg[v] != 0 {
			continue
		}
		switch g.TypeOf(hin.ObjectID(v)) {
		case d.Term:
			sawIsolatedTerm = true
			if res.Scores[v] != 0 {
				t.Errorf("isolated term %d has score %v, want exactly 0", v, res.Scores[v])
			}
		case d.Author:
			sawIsolatedAuthor = true
			if res.Scores[v] <= 0 {
				t.Errorf("isolated author %d has score %v, want > 0 (teleport mass)", v, res.Scores[v])
			}
		}
	}
	if !sawIsolatedTerm || !sawIsolatedAuthor {
		t.Fatalf("fixture lost its isolated objects (term=%v author=%v)", sawIsolatedTerm, sawIsolatedAuthor)
	}
}

func TestPPRNoEntitiesOfType(t *testing.T) {
	d, g, _, _ := starDBLP(t, 2)
	c, _ := NewCentrality("ppr", d.Term) // no term objects in starDBLP
	if _, err := c.Compute(g, DefaultOptions()); err == nil {
		t.Error("empty teleport set accepted")
	}
}

// TestPPRRefineMatchesCold: warm-started ppr converges to the cold
// fixed point.
func TestPPRRefineMatchesCold(t *testing.T) {
	d := hin.NewDBLPSchema()
	c, _ := NewCentrality("ppr", d.Author)
	wc := c.(WarmCentrality)

	g1 := randomDBLP(t, 21, 40)
	prev, err := c.Compute(g1, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute(g1): %v", err)
	}
	// A different seed reshuffles edges; the warm start must still
	// land on the new graph's own fixed point.
	g2 := randomDBLP(t, 22, 40)
	cold, err := c.Compute(g2, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute(g2): %v", err)
	}
	warm, err := wc.Refine(g2, DefaultOptions(), prev.Scores)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	for v := range cold.Scores {
		if math.Abs(cold.Scores[v]-warm.Scores[v]) > 1e-9 {
			t.Fatalf("score[%d]: cold %v vs warm %v", v, cold.Scores[v], warm.Scores[v])
		}
	}
	if _, err := wc.Refine(g2, DefaultOptions(), nil); err == nil {
		t.Error("Refine accepted an empty previous vector")
	}
}

func TestDegreeRefineMatchesCompute(t *testing.T) {
	d := hin.NewDBLPSchema()
	c, _ := NewCentrality("degree", d.Author)
	wc := c.(WarmCentrality)
	g := randomDBLP(t, 5, 25)
	cold, err := c.Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	warm, err := wc.Refine(g, DefaultOptions(), cold.Scores)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	for v := range cold.Scores {
		if math.Float64bits(cold.Scores[v]) != math.Float64bits(warm.Scores[v]) {
			t.Fatalf("score[%d] differs between Compute and Refine", v)
		}
	}
	if _, err := wc.Refine(g, DefaultOptions(), nil); err == nil {
		t.Error("Refine accepted an empty previous vector")
	}
}

// TestCentralityEmptyGraph: every backend rejects an empty graph
// rather than dividing by zero.
func TestCentralityEmptyGraph(t *testing.T) {
	d := hin.NewDBLPSchema()
	g := hin.NewBuilder(d.Schema).Build()
	for _, name := range CentralityNames() {
		c, _ := NewCentrality(name, d.Author)
		if _, err := c.Compute(g, DefaultOptions()); err == nil {
			t.Errorf("%s accepted an empty graph", name)
		}
	}
}

// TestOptionsRejectNaN pins the NaN validation fix: NaN fails both
// halves of a range comparison, so without explicit IsNaN checks a
// NaN Lambda or Tolerance would configure the kernel.
func TestOptionsRejectNaN(t *testing.T) {
	g := randomDBLP(t, 3, 10)
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"lambda NaN", func(o *Options) { o.Lambda = math.NaN() }},
		{"tolerance NaN", func(o *Options) { o.Tolerance = math.NaN() }},
		{"tolerance +Inf", func(o *Options) { o.Tolerance = math.Inf(1) }},
	}
	d := hin.NewDBLPSchema()
	for _, tc := range cases {
		opts := DefaultOptions()
		tc.mutate(&opts)
		if _, err := Compute(g, opts); err == nil {
			t.Errorf("Compute accepted %s", tc.name)
		}
		for _, name := range CentralityNames() {
			c, _ := NewCentrality(name, d.Author)
			if _, err := c.Compute(g, opts); err == nil {
				t.Errorf("%s accepted %s", name, tc.name)
			}
		}
	}
}

func TestEntityPopularityNilScores(t *testing.T) {
	d, g, _, _ := starDBLP(t, 2)
	if _, err := EntityPopularity(g, nil, d.Author); err == nil {
		t.Error("nil score vector accepted")
	}
}
