package pagerank

import (
	"math"
	"testing"

	"shine/internal/hin"
)

// starDBLP builds a graph where one author ("hub") writes many papers
// and another ("leaf") writes one, so the hub must outrank the leaf.
func starDBLP(t testing.TB, hubPapers int) (*hin.DBLPSchema, *hin.Graph, hin.ObjectID, hin.ObjectID) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	hub := b.MustAddObject(d.Author, "Hub Author")
	leaf := b.MustAddObject(d.Author, "Leaf Author")
	v := b.MustAddObject(d.Venue, "SIGMOD")
	for i := 0; i < hubPapers; i++ {
		p := b.MustAddObject(d.Paper, "hp"+string(rune('a'+i)))
		b.MustAddLink(d.Write, hub, p)
		b.MustAddLink(d.Publish, v, p)
	}
	p := b.MustAddObject(d.Paper, "leafpaper")
	b.MustAddLink(d.Write, leaf, p)
	b.MustAddLink(d.Publish, v, p)
	return d, b.Build(), hub, leaf
}

func TestComputeSumsToOne(t *testing.T) {
	_, g, _, _ := starDBLP(t, 5)
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Converged {
		t.Errorf("did not converge: delta=%v after %d iterations", res.Delta, res.Iterations)
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
	for v, s := range res.Scores {
		if s <= 0 {
			t.Errorf("object %d has non-positive score %v", v, s)
		}
	}
}

func TestProlificAuthorOutranksOnePaperAuthor(t *testing.T) {
	_, g, hub, leaf := starDBLP(t, 10)
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if res.Scores[hub] <= res.Scores[leaf] {
		t.Errorf("hub score %v <= leaf score %v; popularity model inverted",
			res.Scores[hub], res.Scores[leaf])
	}
}

func TestComputeHandlesDanglingObjects(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	b.MustAddObject(d.Author, "Isolated One")
	a := b.MustAddObject(d.Author, "Connected")
	p := b.MustAddObject(d.Paper, "P1")
	b.MustAddLink(d.Write, a, p)
	g := b.Build()

	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores with dangling object sum to %v, want 1", sum)
	}
}

func TestComputeLambdaOneIsUniform(t *testing.T) {
	_, g, _, _ := starDBLP(t, 3)
	opts := DefaultOptions()
	opts.Lambda = 1 // pure initial vector, no propagation
	res, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	want := 1.0 / float64(g.NumObjects())
	for v, s := range res.Scores {
		if math.Abs(s-want) > 1e-9 {
			t.Fatalf("lambda=1 score[%d] = %v, want uniform %v", v, s, want)
		}
	}
}

func TestComputeOptionValidation(t *testing.T) {
	_, g, _, _ := starDBLP(t, 2)
	bad := []Options{
		{Lambda: -0.1, Tolerance: 1e-9, MaxIterations: 10},
		{Lambda: 1.1, Tolerance: 1e-9, MaxIterations: 10},
		{Lambda: 0.2, Tolerance: 0, MaxIterations: 10},
		{Lambda: 0.2, Tolerance: 1e-9, MaxIterations: 0},
	}
	for i, o := range bad {
		if _, err := Compute(g, o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
}

func TestComputeEmptyGraph(t *testing.T) {
	d := hin.NewDBLPSchema()
	g := hin.NewBuilder(d.Schema).Build()
	if _, err := Compute(g, DefaultOptions()); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestEntityPopularityNormalisesOverEntityType(t *testing.T) {
	d, g, hub, leaf := starDBLP(t, 6)
	res, err := Compute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	pop, err := EntityPopularity(g, res.Scores, d.Author)
	if err != nil {
		t.Fatalf("EntityPopularity: %v", err)
	}
	if len(pop) != 2 {
		t.Fatalf("popularity over %d entities, want 2", len(pop))
	}
	sum := pop[hub] + pop[leaf]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("entity popularity sums to %v, want 1", sum)
	}
	if pop[hub] <= pop[leaf] {
		t.Errorf("hub popularity %v <= leaf %v", pop[hub], pop[leaf])
	}
}

func TestEntityPopularityErrors(t *testing.T) {
	d, g, _, _ := starDBLP(t, 2)
	if _, err := EntityPopularity(g, []float64{1, 2}, d.Author); err == nil {
		t.Error("mismatched score length accepted")
	}
	res, _ := Compute(g, DefaultOptions())
	// DBLP schema has a term type with no objects in this graph.
	if _, err := EntityPopularity(g, res.Scores, d.Term); err == nil {
		t.Error("empty entity type accepted")
	}
}

func TestEntityPopularityFallsBackToUniformOnZeroMass(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	a1 := b.MustAddObject(d.Author, "A1")
	a2 := b.MustAddObject(d.Author, "A2")
	g := b.Build()
	scores := make([]float64, g.NumObjects()) // all zero
	pop, err := EntityPopularity(g, scores, d.Author)
	if err != nil {
		t.Fatalf("EntityPopularity: %v", err)
	}
	if pop[a1] != 0.5 || pop[a2] != 0.5 {
		t.Errorf("zero-mass fallback = %v, want uniform", pop)
	}
}

func TestUniformPopularity(t *testing.T) {
	d, g, hub, leaf := starDBLP(t, 4)
	pop, err := UniformPopularity(g, d.Author)
	if err != nil {
		t.Fatalf("UniformPopularity: %v", err)
	}
	if pop[hub] != 0.5 || pop[leaf] != 0.5 {
		t.Errorf("uniform popularity = %v", pop)
	}
	if _, err := UniformPopularity(g, d.Term); err == nil {
		t.Error("empty entity type accepted")
	}
}

func TestMoreIterationsReduceDelta(t *testing.T) {
	_, g, _, _ := starDBLP(t, 8)
	short := DefaultOptions()
	short.MaxIterations = 2
	short.Tolerance = 1e-300 // force exactly MaxIterations
	long := short
	long.MaxIterations = 30

	rs, err := Compute(g, short)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	rl, err := Compute(g, long)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if rl.Delta >= rs.Delta {
		t.Errorf("delta after 30 iters (%v) not below delta after 2 (%v)", rl.Delta, rs.Delta)
	}
}
