package pagerank

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"shine/internal/hin"
	"shine/internal/par"
)

// Centrality is a pluggable backend for the entity popularity model
// P(e). The paper fixes popularity to whole-network PageRank (Formula
// 6), but other graph centralities — degree, HITS, type-personalized
// PageRank — materially move popularity-based linking accuracy, so the
// computation sits behind this interface and the backend is selected
// by name through shine.Config. Every backend returns one score per
// object with Σ scores = 1, and every backend is deterministic: the
// score vector is bit-for-bit identical for any Options.Workers value,
// because all reductions run through the same blocked fixed-order
// machinery as the pull kernel.
type Centrality interface {
	// Name is the backend's stable identifier — recorded in snapshot
	// meta so an artifact declares which backend produced its
	// popularity section, exposed in the shine_centrality_* metrics,
	// and accepted by the -popularity CLI flag.
	Name() string
	// Compute runs the backend over the whole graph. The returned
	// Result carries the scores plus iteration metadata in the same
	// shape as the PageRank kernel's (single-pass backends report one
	// iteration and Converged = true).
	Compute(g *hin.Graph, opts Options) (*Result, error)
}

// WarmCentrality is implemented by backends that can re-converge from
// a previous revision's score vector after a small graph change —
// Model.WithDelta probes for it and falls back to a cold Compute (with
// a documented stat) when the backend cannot warm-start, as HITS
// cannot: its L2-normalized alternating sweeps have no residual
// formulation compatible with the push phase, and a warm L1 iterate
// would have to be re-projected anyway.
type WarmCentrality interface {
	Centrality
	// Refine re-converges from prev, the converged scores of a
	// previous, slightly different revision of the graph. Same fixed
	// point and tolerance as Compute.
	Refine(g *hin.Graph, opts Options, prev []float64) (*Result, error)
}

// Backend names accepted by NewCentrality. DefaultCentrality is the
// paper's configuration.
const (
	DefaultCentrality = "pagerank"

	centralityPageRank = "pagerank"
	centralityDegree   = "degree"
	centralityHITS     = "hits"
	centralityPPR      = "ppr"
)

// CentralityNames lists the available backends in presentation order.
func CentralityNames() []string {
	return []string{centralityPageRank, centralityDegree, centralityHITS, centralityPPR}
}

// ValidCentrality reports whether name is a known backend.
func ValidCentrality(name string) bool {
	switch name {
	case centralityPageRank, centralityDegree, centralityHITS, centralityPPR:
		return true
	}
	return false
}

// NewCentrality constructs a backend by name. entityType parameterises
// the backends that need one — ppr teleports only to objects of the
// entity type; the others ignore it.
func NewCentrality(name string, entityType hin.TypeID) (Centrality, error) {
	switch name {
	case centralityPageRank:
		return prCentrality{}, nil
	case centralityDegree:
		return degreeCentrality{}, nil
	case centralityHITS:
		return hitsCentrality{}, nil
	case centralityPPR:
		return pprCentrality{entityType: entityType}, nil
	}
	return nil, fmt.Errorf("pagerank: unknown centrality backend %q (have %s)",
		name, strings.Join(CentralityNames(), ", "))
}

// ----------------------------------------------------------- pagerank

// prCentrality is the paper's backend: the CSR pull kernel of Compute,
// with Refine's warm start + Gauss–Southwell push phase for deltas.
type prCentrality struct{}

func (prCentrality) Name() string { return centralityPageRank }

func (prCentrality) Compute(g *hin.Graph, opts Options) (*Result, error) {
	return Compute(g, opts)
}

func (prCentrality) Refine(g *hin.Graph, opts Options, prev []float64) (*Result, error) {
	return Refine(g, opts, prev)
}

// ------------------------------------------------------------- degree

// degreeCentrality scores every object by its total degree across all
// relations, normalised to sum 1 — near-free, because the degrees come
// from the graph's build-time cache. An all-isolated graph degrades to
// the uniform vector so Σ = 1 holds unconditionally.
type degreeCentrality struct{}

func (degreeCentrality) Name() string { return centralityDegree }

func (degreeCentrality) Compute(g *hin.Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	deg := g.TotalDegrees()
	total := 0.0
	for _, d := range deg {
		total += float64(d)
	}
	scores := make([]float64, n)
	if total == 0 {
		u := 1 / float64(n)
		for v := range scores {
			scores[v] = u
		}
	} else {
		inv := 1 / total
		for v, d := range deg {
			scores[v] = float64(d) * inv
		}
	}
	return &Result{Scores: scores, Iterations: 1, Converged: true}, nil
}

// Refine recomputes from scratch: degree centrality is trivially
// incremental, a full recompute being a single O(|V|) pass over the
// merged graph's degree cache.
func (degreeCentrality) Refine(g *hin.Graph, opts Options, prev []float64) (*Result, error) {
	if len(prev) == 0 {
		return nil, errors.New("pagerank: Refine needs a previous score vector; use Compute for a cold start")
	}
	return degreeCentrality{}.Compute(g, opts)
}

// --------------------------------------------------------------- hits

// hitsCentrality runs Kleinberg's HITS over the whole network: two
// alternating sweeps (authority from hubs, hubs from authority) with
// L2 normalisation after each. Because every link is stored together
// with its inverse, an object's in-neighbor multiset equals its
// out-neighbor multiset, so both sweeps pull along the same CSR rows
// the PageRank kernel uses — the adjacency operator is symmetric on
// this representation, and the two score families converge to the same
// principal eigenvector; both are still iterated so the update rule is
// the textbook one. Convergence is the L1 change of the normalised
// authority vector, checked against Options.Tolerance. Options.Lambda
// is unused (HITS has no teleport). The final authority vector is
// renormalised to sum 1 so it plugs into EntityPopularity like every
// other backend. Deterministic across worker counts: the matvec, the
// sum-of-squares and the scale-and-delta passes all run through
// blocked fixed-order reductions.
type hitsCentrality struct{}

func (hitsCentrality) Name() string { return centralityHITS }

func (hitsCentrality) Compute(g *hin.Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	k := newKernel(g, opts)

	auth := make([]float64, n)
	hub := make([]float64, n)
	next := make([]float64, n)
	init := 1 / math.Sqrt(float64(n))
	for v := range auth {
		auth[v] = init
		hub[v] = init
	}

	res := &Result{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Authority half-step: next = A·hub, fused with Σ next².
		ss := k.adjSum(hub, next)
		if ss == 0 {
			// A linkless graph: A·(positive vector) = 0 everywhere, so
			// HITS is undefined. Degrade to the uniform vector, as
			// EntityPopularity does for zero mass.
			u := 1 / float64(n)
			for v := range auth {
				auth[v] = u
			}
			res.Iterations = iter + 1
			res.Converged = true
			res.Scores = auth
			return res, nil
		}
		delta := k.scaleDelta(next, auth, 1/math.Sqrt(ss))
		auth, next = next, auth

		// Hub half-step: next = A·auth, same normalisation.
		ss = k.adjSum(auth, next)
		k.scaleDelta(next, hub, 1/math.Sqrt(ss))
		hub, next = next, hub

		res.Iterations = iter + 1
		res.Delta = delta
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	// L1-normalise the authority vector so Σ scores = 1. The total is
	// positive: ‖auth‖₂ = 1 and every coordinate is non-negative.
	total := par.ReduceSum(n, sweepBlock, k.workers, func(lo, hi int) float64 {
		s := 0.0
		for _, x := range auth[lo:hi] {
			s += x
		}
		return s
	})
	inv := 1 / total
	for v := range auth {
		auth[v] *= inv
	}
	res.Scores = auth
	return res, nil
}

// adjSum computes dst = A·src over all CSR rows and returns Σ dst² via
// the same fused blocked reduction the pull kernel uses, so the result
// is bit-identical for any worker count.
func (k *kernel) adjSum(src, dst []float64) float64 {
	return par.ReduceSum(k.n, sweepBlock, k.workers, func(lo, hi int) float64 {
		ss := 0.0
		for v := lo; v < hi; v++ {
			sum := 0.0
			for r := 0; r < k.nrel; r++ {
				off := k.offs[r]
				for _, u := range k.adjs[r][off[v]:off[v+1]] {
					sum += src[u]
				}
			}
			dst[v] = sum
			ss += sum * sum
		}
		return ss
	})
}

// scaleDelta scales dst by inv in place and returns the L1 distance to
// old — the normalised-vector change HITS converges on.
func (k *kernel) scaleDelta(dst, old []float64, inv float64) float64 {
	return par.ReduceSum(k.n, sweepBlock, k.workers, func(lo, hi int) float64 {
		d := 0.0
		for v := lo; v < hi; v++ {
			nv := dst[v] * inv
			dst[v] = nv
			d += math.Abs(nv - old[v])
		}
		return d
	})
}

// ---------------------------------------------------------------- ppr

// pprCentrality is type-personalized PageRank: the Formula 6
// recurrence with the uniform teleport vector replaced by the uniform
// distribution over the entity type's objects, and dangling mass
// redistributed to the same distribution (the standard personalized
// fix, which keeps Σ = 1). Importance then accumulates relative to the
// entity set rather than the whole network: a venue is important
// because entities reach it, not because of raw connectivity. Supports
// warm restarts through Options.Warm / Refine — warm power iteration
// without the push phase, since the teleport support makes the seed
// residual dense on the entity set anyway.
type pprCentrality struct {
	entityType hin.TypeID
}

func (pprCentrality) Name() string { return centralityPPR }

func (c pprCentrality) Compute(g *hin.Graph, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	ents := g.ObjectsOfType(c.entityType)
	if len(ents) == 0 {
		return nil, fmt.Errorf("pagerank: ppr: no objects of entity type %d to teleport to", c.entityType)
	}
	k := newKernel(g, opts)
	p0 := 1 / float64(len(ents))
	isEnt := make([]bool, n)
	for _, e := range ents {
		isEnt[e] = true
	}

	pr := make([]float64, n)
	next := make([]float64, n)
	if opts.Warm != nil {
		if err := warmInit(pr, opts.Warm); err != nil {
			return nil, err
		}
	} else {
		for _, e := range ents {
			pr[e] = p0
		}
	}

	res := &Result{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		dangling := k.danglingMass(pr)
		// Teleport (and redistributed dangling) mass lands only on the
		// entity set; elsewhere the base term is zero.
		tele := (k.lambda + (1-k.lambda)*dangling) * p0
		delta := par.ReduceSum(k.n, sweepBlock, k.workers, func(lo, hi int) float64 {
			d := 0.0
			for v := lo; v < hi; v++ {
				sum := 0.0
				for r := 0; r < k.nrel; r++ {
					off := k.offs[r]
					for _, u := range k.adjs[r][off[v]:off[v+1]] {
						sum += pr[u] * k.invOutDeg[u]
					}
				}
				nv := (1 - k.lambda) * sum
				if isEnt[v] {
					nv += tele
				}
				next[v] = nv
				d += math.Abs(nv - pr[v])
			}
			return d
		})
		pr, next = next, pr
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = pr
	return res, nil
}

// Refine warm-starts the power iteration from prev. No push phase: the
// personalized teleport term makes the seed residual dense over the
// entity set, exactly the regime where kernel.push declines, so warm
// sweeps are the whole story here.
func (c pprCentrality) Refine(g *hin.Graph, opts Options, prev []float64) (*Result, error) {
	if len(prev) == 0 {
		return nil, errors.New("pagerank: Refine needs a previous score vector; use Compute for a cold start")
	}
	opts.Warm = prev
	return c.Compute(g, opts)
}

// danglingMass sums pr over the dangling-object list with the blocked
// fixed-order reduction — the same arithmetic in the same order as the
// inline sum in iterate.
func (k *kernel) danglingMass(pr []float64) float64 {
	return par.ReduceSum(len(k.dangling), par.DefaultBlock, k.workers, func(lo, hi int) float64 {
		s := 0.0
		for _, v := range k.dangling[lo:hi] {
			s += pr[v]
		}
		return s
	})
}
