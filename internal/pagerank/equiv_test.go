package pagerank

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"shine/internal/hin"
)

// randomDBLP builds a randomized DBLP-schema network with nAuthors
// authors, nAuthors*2 papers, a handful of venues and terms, random
// multi-edges, and a few isolated (dangling) objects of every type.
func randomDBLP(t testing.TB, seed int64, nAuthors int) *hin.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)

	authors := make([]hin.ObjectID, nAuthors)
	for i := range authors {
		authors[i] = b.MustAddObject(d.Author, fmt.Sprintf("author-%d", i))
	}
	venues := make([]hin.ObjectID, 4)
	for i := range venues {
		venues[i] = b.MustAddObject(d.Venue, fmt.Sprintf("venue-%d", i))
	}
	terms := make([]hin.ObjectID, 12)
	for i := range terms {
		terms[i] = b.MustAddObject(d.Term, fmt.Sprintf("term-%d", i))
	}
	years := make([]hin.ObjectID, 3)
	for i := range years {
		years[i] = b.MustAddObject(d.Year, fmt.Sprintf("%d", 2010+i))
	}
	for i := 0; i < nAuthors*2; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("paper-%d", i))
		// 1–3 authors; duplicates allowed (multiplicity carries weight).
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.MustAddLink(d.Write, authors[rng.Intn(nAuthors)], p)
		}
		b.MustAddLink(d.Publish, venues[rng.Intn(len(venues))], p)
		for k := 0; k < rng.Intn(4); k++ {
			b.MustAddLink(d.Contain, p, terms[rng.Intn(len(terms))])
		}
		if rng.Intn(2) == 0 {
			b.MustAddLink(d.PublishedIn, p, years[rng.Intn(len(years))])
		}
	}
	// Dangling objects: no links at all, in every type.
	for i := 0; i < 3; i++ {
		b.MustAddObject(d.Author, fmt.Sprintf("isolated-author-%d", i))
		b.MustAddObject(d.Term, fmt.Sprintf("isolated-term-%d", i))
	}
	return b.Build()
}

// TestPullMatchesReferenceOnRandomGraphs pins the tentpole's
// correctness claim: the CSR pull kernel and the edge-push oracle
// agree within 1e-9 L∞ on randomized graphs (they differ only in
// floating-point summation order).
func TestPullMatchesReferenceOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomDBLP(t, seed, 30+10*int(seed))
		opts := DefaultOptions()
		pull, err := Compute(g, opts)
		if err != nil {
			t.Fatalf("seed %d: Compute: %v", seed, err)
		}
		push, err := ReferenceCompute(g, opts)
		if err != nil {
			t.Fatalf("seed %d: ReferenceCompute: %v", seed, err)
		}
		if pull.Iterations != push.Iterations {
			t.Errorf("seed %d: pull converged in %d iterations, push in %d",
				seed, pull.Iterations, push.Iterations)
		}
		linf := 0.0
		for v := range pull.Scores {
			if d := math.Abs(pull.Scores[v] - push.Scores[v]); d > linf {
				linf = d
			}
		}
		if linf > 1e-9 {
			t.Errorf("seed %d: pull vs push L∞ = %g, want <= 1e-9", seed, linf)
		}
	}
}

// TestComputeMassPreservedWithDangling checks Σpr = 1 on graphs with
// isolated objects for both kernels and several λ values.
func TestComputeMassPreservedWithDangling(t *testing.T) {
	g := randomDBLP(t, 42, 40)
	if g.Stats().Isolated == 0 {
		t.Fatal("fixture has no dangling objects; test is vacuous")
	}
	for _, lambda := range []float64{0.0, 0.2, 0.7} {
		opts := DefaultOptions()
		opts.Lambda = lambda
		for name, kernel := range map[string]func(*hin.Graph, Options) (*Result, error){
			"pull": Compute, "push": ReferenceCompute,
		} {
			res, err := kernel(g, opts)
			if err != nil {
				t.Fatalf("%s λ=%v: %v", name, lambda, err)
			}
			sum := 0.0
			for _, s := range res.Scores {
				sum += s
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s λ=%v: Σpr = %v, want 1", name, lambda, sum)
			}
		}
	}
}

// TestComputeGoldenDeterminismAcrossWorkers is the determinism
// contract of the parallel kernel: workers ∈ {1, 4, 8} must produce
// byte-identical score vectors (and identical iteration metadata),
// because the blocked reductions fix the summation tree independently
// of the fan-out width.
func TestComputeGoldenDeterminismAcrossWorkers(t *testing.T) {
	g := randomDBLP(t, 99, 60)
	opts := DefaultOptions()
	opts.Workers = 1
	golden, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("Compute(workers=1): %v", err)
	}
	for _, workers := range []int{4, 8} {
		opts.Workers = workers
		res, err := Compute(g, opts)
		if err != nil {
			t.Fatalf("Compute(workers=%d): %v", workers, err)
		}
		if res.Iterations != golden.Iterations || res.Converged != golden.Converged {
			t.Fatalf("workers=%d: metadata (%d, %v) differs from golden (%d, %v)",
				workers, res.Iterations, res.Converged, golden.Iterations, golden.Converged)
		}
		if math.Float64bits(res.Delta) != math.Float64bits(golden.Delta) {
			t.Fatalf("workers=%d: delta %x differs from golden %x",
				workers, math.Float64bits(res.Delta), math.Float64bits(golden.Delta))
		}
		for v := range golden.Scores {
			if math.Float64bits(res.Scores[v]) != math.Float64bits(golden.Scores[v]) {
				t.Fatalf("workers=%d: score[%d] = %x, golden %x — not bit-identical",
					workers, v, math.Float64bits(res.Scores[v]), math.Float64bits(golden.Scores[v]))
			}
		}
	}
}

// TestReferenceComputeMatchesLegacyBehaviour re-runs the original
// kernel's test expectations against ReferenceCompute so the oracle
// itself cannot drift.
func TestReferenceComputeMatchesLegacyBehaviour(t *testing.T) {
	_, g, hub, leaf := starDBLP(t, 10)
	res, err := ReferenceCompute(g, DefaultOptions())
	if err != nil {
		t.Fatalf("ReferenceCompute: %v", err)
	}
	if !res.Converged {
		t.Errorf("did not converge: delta=%v", res.Delta)
	}
	if res.Scores[hub] <= res.Scores[leaf] {
		t.Errorf("hub score %v <= leaf score %v", res.Scores[hub], res.Scores[leaf])
	}
}

func TestComputeRejectsNegativeWorkers(t *testing.T) {
	_, g, _, _ := starDBLP(t, 2)
	opts := DefaultOptions()
	opts.Workers = -1
	if _, err := Compute(g, opts); err == nil {
		t.Error("negative Workers accepted")
	}
}
