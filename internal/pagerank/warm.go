package pagerank

import (
	"errors"
	"fmt"
	"math"

	"shine/internal/hin"
)

// warmInit fills pr from a previous score vector and renormalises so
// Σpr = 1 — the invariant the dangling-mass redistribution relies on.
// Objects past the vector's end (newly appended ones) start at score
// zero rather than 1/n: padding with the uniform score would rescale
// every carried-over coordinate and smear a small, local graph delta
// into a dense global residual, while zero-padding keeps the old
// coordinates (already at their old fixed point) essentially exact and
// concentrates the initial residual around the delta — which is what
// lets Refine's push phase drain it locally. Serial and order-fixed,
// so warm-started runs stay deterministic across worker counts.
func warmInit(pr, warm []float64) error {
	if len(warm) > len(pr) {
		return fmt.Errorf("pagerank: warm vector has %d scores for %d objects", len(warm), len(pr))
	}
	sum := 0.0
	for i, x := range warm {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return fmt.Errorf("pagerank: warm score %d is %v", i, x)
		}
		pr[i] = x
		sum += x
	}
	for i := len(warm); i < len(pr); i++ {
		pr[i] = 0
	}
	if sum <= 0 {
		return errors.New("pagerank: warm vector sums to zero")
	}
	inv := 1 / sum
	for i := range pr {
		pr[i] *= inv
	}
	return nil
}

// Refine re-converges PageRank after a small graph change, warm-started
// from prev (the converged scores of the previous graph revision; it
// may be shorter than the new graph). Three phases:
//
//  1. One seed pull sweep computes the exact residual r = F(p)−p of
//     the warm iterate without advancing it, where F is the Formula 6
//     update p ↦ λ·ip + (1−λ)·B·p (with dangling redistribution).
//  2. A bounded Gauss–Southwell push phase drains the residual where
//     it is concentrated — around the delta — instead of sweeping all
//     of V. Pushing m = r[v] moves p* no further away: the invariant
//     p* = p + (I−Ã)⁻¹·r is maintained exactly (p[v] += m; r[v] = 0;
//     r[u] += (1−λ)·m/N_v per out-edge), and each push shrinks ‖r‖₁
//     by at least λ·|m|. Dangling objects are never pushed (their
//     column of Ã is dense); their residual is left for phase 3.
//  3. Certifying pull sweeps — plain power iteration — run until the
//     L1 change falls below Options.Tolerance, exactly Compute's
//     convergence criterion. The sweep's delta IS ‖F(p)−p‖₁, so after
//     the push phase drove ‖r‖₁ under Tolerance/2 one sweep certifies.
//
// Convergence is therefore inherited from the pull sweeps; the push
// phase only relocates the iterate closer to the fixed point, and it
// declines to run at all when the seed residual is already dense (see
// push) — Refine then degrades gracefully to warm power iteration,
// which still needs only ~log(‖r₀‖₁/tol)/log(1/(1−λ)) sweeps instead
// of the cold ~log(1/tol)/log(1/(1−λ)). For a delta whose influence
// stays local — the common case on a large graph — the push phase
// drains the residual in O(vol(ball)) work and one or two sweeps
// certify, to the same tolerance and the same fixed point either way.
// The result is bit-identical for any Options.Workers value: sweeps
// use the blocked fixed-order reductions and the push phase is serial
// with a deterministic FIFO worklist.
func Refine(g *hin.Graph, opts Options, prev []float64) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.NumObjects()
	if n == 0 {
		return nil, errors.New("pagerank: empty graph")
	}
	if len(prev) == 0 {
		return nil, errors.New("pagerank: Refine needs a previous score vector; use Compute for a cold start")
	}
	k := newKernel(g, opts)

	pr := make([]float64, n)
	if err := warmInit(pr, prev); err != nil {
		return nil, err
	}
	next := make([]float64, n)
	resid := make([]float64, n)

	res := &Result{}
	// Phase 1: seed sweep. pr is left in place; next is scratch.
	delta := k.iterate(pr, next, resid)
	res.Iterations = 1
	res.Delta = delta
	if delta < opts.Tolerance {
		// The warm iterate was already converged on the new graph;
		// return the swept vector, as Compute would after its last
		// iteration.
		res.Converged = true
		res.Scores = next
		return res, nil
	}

	// Phase 2: bounded push refinement of (pr, resid).
	res.Pushes = k.push(pr, resid, opts)

	// Phase 3: certifying sweeps.
	for iter := res.Iterations; iter < opts.MaxIterations; iter++ {
		delta := k.iterate(pr, next, nil)
		pr, next = next, pr
		res.Iterations = iter + 1
		res.Delta = delta
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = pr
	return res, nil
}

// push runs a multi-round Gauss–Southwell residual queue on (p, r)
// where r is the exact residual F(p)−p. Each round drains every entry
// above a threshold set relative to the current ‖r‖₁ (entries below it
// hold ≤ 1/8 of the mass, so a round shrinks the residual about 8×),
// then re-thresholds and repeats — the standard multi-scale push. It
// stops when ‖r‖₁ falls under Tolerance/2, the residual goes dense, a
// round makes no progress, or the push budget runs out, and returns
// the number of pushes. Serial and deterministic: rounds rescan in
// ascending ID order and the FIFO worklist grows in fixed adjacency
// order.
//
// Pushing only pays while the residual is concentrated: a push costs
// deg(v) random-access updates, a pull sweep |E| streaming ones. Once
// the support covers more than a quarter of the graph the round is
// abandoned and Refine falls through to certifying sweeps. Note that a
// delta which adds objects shifts the teleport term λ/n at every
// vertex, so its residual is dense from the start and push correctly
// declines; the concentrated regime is the edge-only delta (and the
// sub-tolerance background of the carried-over vector never clears
// the round threshold, so it stays with the sweeps either way).
func (k *kernel) push(p, r []float64, opts Options) int {
	budget := opts.MaxPushes
	if budget == 0 {
		budget = 64 * k.n
	}
	target := opts.Tolerance / 2
	// No round thresholds finer than floor: even if all n entries sat
	// just below it they would total at most Tolerance/4 < target.
	floor := opts.Tolerance / (4 * float64(k.n))

	queue := make([]int32, 0, k.n)
	inQ := make([]bool, k.n)
	oneMinus := 1 - k.lambda
	pushes := 0

	for pushes < budget {
		// Fresh exact norm each round: the incremental tracking below
		// accumulates cancellation drift over thousands of updates,
		// and target is only a few ulps above it near convergence.
		rnorm := 0.0
		for _, x := range r {
			rnorm += math.Abs(x)
		}
		if rnorm <= target {
			break
		}
		eps := rnorm / (8 * float64(k.n))
		if eps < floor {
			eps = floor
		}
		queue = queue[:0]
		for i := range inQ {
			inQ[i] = false
		}
		for v := 0; v < k.n; v++ {
			if math.Abs(r[v]) > eps {
				queue = append(queue, int32(v))
				inQ[v] = true
			}
		}
		if len(queue) > k.n/4 {
			break // dense residual: sweeps win from here
		}
		roundPushes := 0
		for head := 0; head < len(queue) && rnorm > target && pushes < budget; head++ {
			// Reclaim the drained prefix once it dominates the
			// worklist so a long round cannot grow it without bound.
			if head > 1024 && head > len(queue)/2 {
				queue = append(queue[:0], queue[head:]...)
				head = 0
			}
			v := queue[head]
			inQ[v] = false
			m := r[v]
			if math.Abs(m) <= eps {
				continue
			}
			if k.invOutDeg[v] == 0 {
				// Dangling: its column of Ã spreads over all of V, so
				// a push would cost a whole sweep. Leave the residual
				// for the certifying sweeps.
				continue
			}
			pushes++
			roundPushes++
			r[v] = 0
			rnorm -= math.Abs(m)
			p[v] += m
			c := oneMinus * m * k.invOutDeg[v]
			for rel := 0; rel < k.nrel; rel++ {
				off := k.offs[rel]
				for _, u := range k.adjs[rel][off[v]:off[v+1]] {
					old := r[u]
					nu := old + c
					r[u] = nu
					rnorm += math.Abs(nu) - math.Abs(old)
					if !inQ[u] && math.Abs(nu) > eps {
						inQ[u] = true
						queue = append(queue, int32(u))
					}
				}
			}
		}
		if roundPushes == 0 {
			break // only dangling or sub-threshold mass left
		}
	}
	return pushes
}
