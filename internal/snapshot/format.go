// Package snapshot implements the versioned binary model artifact:
// one file holding everything a serving replica needs — the CSR
// graph, PageRank popularity, learned meta-path weights and config,
// the frozen per-candidate mixture index, the generic object model
// and the string/ID symbol tables — laid out as length-prefixed
// little-endian arrays so loading is a sequential validate-and-slice
// pass with no per-element parsing. A restored model's Link output is
// bit-identical to the model that was written.
//
// Wire format (all integers little-endian):
//
//	magic    [8]byte "SHINESNP"
//	version  uint32            format version; readers reject newer
//	count    uint32            number of sections
//	table    count × { id uint32, flags uint32, offset uint64,
//	                   length uint64, crc uint32 }
//	tableCRC uint32            CRC-32 (IEEE) of the table bytes
//	payloads                   section bytes at the tabled offsets
//
// Sections appear in the table with strictly ascending IDs, and their
// payloads are laid out contiguously in table order — a reordered or
// overlapping table is rejected. Every payload carries its own CRC-32
// in the table, checked before any field of it is decoded. The
// whole-artifact CRC-32 (over every byte of the file) is not stored;
// it is computed on read and write and reported as Info.Checksum so
// operators can confirm which artifact each replica serves.
//
// Compatibility: version bumps on any layout change. A reader
// encountering a newer version fails with a "built by a newer shine"
// error; older versions that can still be decoded are listed
// explicitly. Version 2 is current (it added the surface-form trie
// section); version 1 artifacts are still read, with the trie rebuilt
// from the graph instead of loaded warm.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

const (
	// Magic identifies a SHINE snapshot artifact.
	Magic = "SHINESNP"
	// FormatVersion is the current wire format version.
	FormatVersion = 2
	// minFormatVersion is the oldest version this build still reads.
	minFormatVersion = 1

	headerLen    = 8 + 4 + 4 // magic + version + section count
	tableEntry   = 4 + 4 + 8 + 8 + 4
	maxSections  = 64
	maxPathCount = 1 << 16
)

// Section IDs. Decode order is ID order; each section may reference
// counts established by earlier ones (the CSR section trusts the
// object count from the objects section, and so on).
const (
	secMeta       = 1 // JSON: schema, entity type, path notations, PageRank provenance
	secConfig     = 2 // JSON: shine.Config (execution knobs excluded)
	secObjects    = 3 // typeOf array + name symbol table
	secCSR        = 4 // per directed relation: row offsets + column indices
	secPopularity = 5 // dense P(e) over the entity list
	secWeights    = 6 // learned meta-path weight vector
	secGeneric    = 7 // generic object model Pg as a frozen sparse pair
	secMixtures   = 8 // frozen per-candidate mixture index
	secTrie       = 9 // frozen surface-form candidate trie (format v2+)
)

var sectionNames = map[uint32]string{
	secMeta:       "meta",
	secConfig:     "config",
	secObjects:    "objects",
	secCSR:        "csr",
	secPopularity: "popularity",
	secWeights:    "weights",
	secGeneric:    "generic",
	secMixtures:   "mixtures",
	secTrie:       "trie",
}

// ErrNewerVersion marks an artifact written by a newer shine build.
var ErrNewerVersion = errors.New("snapshot: artifact built by a newer shine")

// Info summarises an artifact for operators: `shine snapshot inspect`
// prints it, `shine serve` logs it at startup and exposes it in the
// /v1/healthz payload.
type Info struct {
	// FormatVersion is the artifact's wire format version.
	FormatVersion uint32 `json:"formatVersion"`
	// Checksum is the CRC-32 (IEEE) of the whole artifact, in hex —
	// the identity operators compare across a fleet.
	Checksum string `json:"checksum"`
	// Bytes is the artifact size.
	Bytes int64 `json:"bytes"`
	// Sections is the section count.
	Sections int `json:"sections"`

	EntityType     string `json:"entityType"`
	Objects        int    `json:"objects"`
	Links          int    `json:"links"`
	Entities       int    `json:"entities"`
	Paths          int    `json:"paths"`
	MixtureEntries int    `json:"mixtureEntries"`
	GenericSupport int    `json:"genericSupport"`
	// TrieNodes is the node count of the surface-form candidate trie;
	// 0 for version-1 artifacts, which carry no trie section.
	TrieNodes int `json:"trieNodes"`
	// Centrality is the backend that produced the artifact's
	// popularity section ("pagerank" for artifacts written before the
	// field existed). Loading enforces it against the serving config,
	// so operators can trust the reported name.
	Centrality string `json:"centrality"`
}

func (i Info) String() string {
	return fmt.Sprintf("snapshot v%d checksum=%s bytes=%d entityType=%s objects=%d links=%d entities=%d paths=%d mixtures=%d genericSupport=%d trieNodes=%d centrality=%s",
		i.FormatVersion, i.Checksum, i.Bytes, i.EntityType, i.Objects, i.Links, i.Entities, i.Paths, i.MixtureEntries, i.GenericSupport, i.TrieNodes, i.Centrality)
}

// metaSection is the JSON payload of section 1: everything small and
// structural. The schema is stored as forward relation pairs, exactly
// the calls that rebuild it.
type metaSection struct {
	EntityType   string     `json:"entityType"`
	Paths        []string   `json:"paths"`
	PRSeconds    float64    `json:"prSeconds"`
	PRIterations int        `json:"prIterations"`
	Types        []typeMeta `json:"types"`
	Relations    []relMeta  `json:"relations"`
	// Centrality records which pagerank.Centrality backend produced
	// the popularity section. Absent from artifacts written before the
	// field existed; it then decodes to "", which readers treat as
	// "pagerank" — the only backend that existed when those artifacts
	// were written.
	Centrality string `json:"centrality,omitempty"`
}

type typeMeta struct {
	Name   string `json:"name"`
	Abbrev string `json:"abbrev"`
}

type relMeta struct {
	Name    string `json:"name"`
	Inverse string `json:"inverse"`
	From    int32  `json:"from"`
	To      int32  `json:"to"`
}

var le = binary.LittleEndian

// Append helpers used by the writer.

func appendU32(b []byte, v uint32) []byte { return le.AppendUint32(b, v) }

func appendU32s(b []byte, xs []uint32) []byte {
	for _, x := range xs {
		b = le.AppendUint32(b, x)
	}
	return b
}

func appendI32s(b []byte, xs []int32) []byte {
	for _, x := range xs {
		b = le.AppendUint32(b, uint32(x))
	}
	return b
}

func appendF64s(b []byte, xs []float64) []byte {
	for _, x := range xs {
		b = le.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// cursor is the bounds-checked sequential decoder. Every declared
// count is validated against the bytes actually remaining before any
// allocation, so a hostile header can never drive an allocation
// larger than the artifact itself.
type cursor struct {
	b   []byte
	off int
	sec string // section name, for error messages
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) fail(format string, args ...interface{}) error {
	return fmt.Errorf("snapshot: section %s at offset %d: %s", c.sec, c.off, fmt.Sprintf(format, args...))
}

func (c *cursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, c.fail("truncated uint32")
	}
	v := le.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u32s(n int) ([]uint32, error) {
	if n < 0 || c.remaining()/4 < n {
		return nil, c.fail("%d uint32s declared, %d bytes remain", n, c.remaining())
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = le.Uint32(c.b[c.off+4*i:])
	}
	c.off += 4 * n
	return out, nil
}

func (c *cursor) i32s(n int) ([]int32, error) {
	if n < 0 || c.remaining()/4 < n {
		return nil, c.fail("%d int32s declared, %d bytes remain", n, c.remaining())
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(le.Uint32(c.b[c.off+4*i:]))
	}
	c.off += 4 * n
	return out, nil
}

func (c *cursor) f64s(n int) ([]float64, error) {
	if n < 0 || c.remaining()/8 < n {
		return nil, c.fail("%d float64s declared, %d bytes remain", n, c.remaining())
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(le.Uint64(c.b[c.off+8*i:]))
	}
	c.off += 8 * n
	return out, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, c.fail("%d bytes declared, %d remain", n, c.remaining())
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *cursor) done() error {
	if c.remaining() != 0 {
		return c.fail("%d trailing bytes", c.remaining())
	}
	return nil
}
