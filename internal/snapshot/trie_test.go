package snapshot_test

import (
	"hash/crc32"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"shine/internal/snapshot"
	"shine/internal/surftrie"
)

// trieMentions exercise every lookup mode over the fixture corpus
// ("Wei Wang", "Wei Wang (2)", "Rakesh Kumar").
var trieMentions = []string{"Wei Wang", "wang, wei", "W. Wang", "Rakesh Kumar", "Rakesh Kumer", "Nobody"}

// TestTrieRoundTrip: a trie restored from an artifact is structurally
// identical to the one that was written — same wire arrays, and
// bit-identical candidate lists in every lookup mode.
func TestTrieRoundTrip(t *testing.T) {
	f := newFixture(t)
	data := encodeFixture(t, f)
	s, err := snapshot.ReadBytes(data)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	m2, err := s.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	t1, t2 := f.model.Trie(), m2.Trie()
	if t1 == nil || t2 == nil {
		t.Fatal("model missing its trie")
	}
	if !reflect.DeepEqual(t1.Raw(), t2.Raw()) {
		t.Error("restored trie has different wire arrays")
	}
	for _, m := range trieMentions {
		if a, b := t1.Candidates(m), t2.Candidates(m); !slices.Equal(a, b) {
			t.Errorf("Candidates(%q): %v vs %v after snapshot", m, a, b)
		}
		if a, b := t1.LooseCandidates(m), t2.LooseCandidates(m); !slices.Equal(a, b) {
			t.Errorf("LooseCandidates(%q): %v vs %v after snapshot", m, a, b)
		}
		for dist := 0; dist <= surftrie.MaxDistance; dist++ {
			if a, b := t1.FuzzyCandidates(m, dist), t2.FuzzyCandidates(m, dist); !slices.Equal(a, b) {
				t.Errorf("FuzzyCandidates(%q, %d): %v vs %v after snapshot", m, dist, a, b)
			}
		}
	}
}

func TestInfoTrieNodes(t *testing.T) {
	f := newFixture(t)
	path := filepath.Join(t.TempDir(), "model.snap")
	info, err := snapshot.WriteFile(path, f.model.Parts())
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if want := f.model.Trie().Stats().Nodes; info.TrieNodes != want || want == 0 {
		t.Errorf("info.TrieNodes = %d, want %d (non-zero)", info.TrieNodes, want)
	}
	if info.FormatVersion != snapshot.FormatVersion {
		t.Errorf("info.FormatVersion = %d, want %d", info.FormatVersion, snapshot.FormatVersion)
	}
}

const (
	headerLen = 16
	entryLen  = 28
)

// trieSection locates section 9's table entry and payload bounds in a
// valid artifact.
func trieSection(t *testing.T, data []byte) (entryOff, payloadOff, payloadLen int) {
	t.Helper()
	count := int(leU32(data[12:]))
	for i := 0; i < count; i++ {
		row := headerLen + i*entryLen
		if leU32(data[row:]) == 9 {
			off := leU64(data[row+8:])
			length := leU64(data[row+16:])
			return row, int(off), int(length)
		}
	}
	t.Fatal("artifact has no trie section")
	return 0, 0, 0
}

// rewriteCRCs recomputes the trie section's payload CRC and the table
// CRC so a deliberate payload corruption reaches the trie decoder
// instead of being caught by the checksum layer.
func rewriteCRCs(data []byte, entryOff, payloadOff, payloadLen int) {
	binaryPutU32(data[entryOff+24:], crc32.ChecksumIEEE(data[payloadOff:payloadOff+payloadLen]))
	count := int(leU32(data[12:]))
	tableEnd := headerLen + entryLen*count
	binaryPutU32(data[tableEnd:], crc32.ChecksumIEEE(data[headerLen:tableEnd]))
}

// TestReadRejectsCorruptTrieSection corrupts the trie payload in ways
// the CRC no longer catches (it is recomputed over the corrupted
// bytes) — FromRaw's structural validation must reject each.
func TestReadRejectsCorruptTrieSection(t *testing.T) {
	f := newFixture(t)
	valid := encodeFixture(t, f)
	entryOff, payloadOff, payloadLen := trieSection(t, valid)

	corrupt := func(name string, mutate func(payload []byte)) {
		data := slices.Clone(valid)
		mutate(data[payloadOff : payloadOff+payloadLen])
		rewriteCRCs(data, entryOff, payloadOff, payloadLen)
		if _, err := snapshot.ReadBytes(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	corrupt("node count inflated", func(p []byte) {
		binaryPutU32(p[4:], 1<<30) // offsets for 2^30 nodes cannot fit the payload
	})
	corrupt("label length past payload", func(p []byte) {
		binaryPutU32(p[8:], uint32(payloadLen))
	})
	corrupt("last entity out of range", func(p []byte) {
		binaryPutU32(p[len(p)-4:], 0x7FFFFFFF)
	})
	corrupt("last entity negative", func(p []byte) {
		binaryPutU32(p[len(p)-4:], 0xFFFFFFFF)
	})

	// Truncating the declared section length breaks payload contiguity.
	data := slices.Clone(valid)
	le64Put(data[entryOff+16:], uint64(payloadLen-4))
	rewriteCRCs(data, entryOff, payloadOff, payloadLen-4)
	if _, err := snapshot.ReadBytes(data); err == nil {
		t.Error("truncated trie section accepted")
	}
}

// stripTrieSection turns a valid v2 artifact into the v1 layout: drop
// section 9's table entry and payload, shift the remaining payload
// offsets, and stamp version 1. This is byte-for-byte what a v1 build
// wrote, so it doubles as the backward-compatibility fixture.
func stripTrieSection(t *testing.T, data []byte) []byte {
	t.Helper()
	entryOff, payloadOff, payloadLen := trieSection(t, data)
	count := int(leU32(data[12:]))
	oldTableEnd := headerLen + entryLen*count

	out := make([]byte, 0, len(data)-entryLen-payloadLen)
	out = append(out, data[:8]...)
	out = appendTestU32(out, 1)               // version 1
	out = appendTestU32(out, uint32(count-1)) // without the trie section
	for i := 0; i < count; i++ {
		row := headerLen + i*entryLen
		if row == entryOff {
			continue
		}
		entry := slices.Clone(data[row : row+entryLen])
		le64Put(entry[8:], leU64(entry[8:])-entryLen) // payloads moved up one table row
		out = append(out, entry...)
	}
	newTableEnd := oldTableEnd - entryLen
	out = appendTestU32(out, crc32.ChecksumIEEE(out[headerLen:newTableEnd]))
	out = append(out, data[oldTableEnd+4:payloadOff]...) // all payloads before the trie's
	if payloadOff+payloadLen != len(data) {
		t.Fatal("trie payload is not last; cannot strip")
	}
	return out
}

// TestReadV1Artifact: a version-1 artifact (no trie section) still
// reads; the trie is rebuilt from the graph and serves the same
// candidates the persisted one would.
func TestReadV1Artifact(t *testing.T) {
	f := newFixture(t)
	v1 := stripTrieSection(t, encodeFixture(t, f))
	s, err := snapshot.ReadBytes(v1)
	if err != nil {
		t.Fatalf("ReadBytes(v1): %v", err)
	}
	if got := s.Info().FormatVersion; got != 1 {
		t.Errorf("info.FormatVersion = %d, want 1", got)
	}
	if got := s.Info().TrieNodes; got != 0 {
		t.Errorf("info.TrieNodes = %d for a v1 artifact, want 0", got)
	}
	if s.Parts().Trie != nil {
		t.Error("v1 artifact decoded a trie from nowhere")
	}
	m, err := s.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	if m.Trie() == nil {
		t.Fatal("FromParts did not rebuild the trie")
	}
	for _, mention := range trieMentions {
		if a, b := f.model.Trie().Candidates(mention), m.Trie().Candidates(mention); !slices.Equal(a, b) {
			t.Errorf("Candidates(%q): %v vs %v after v1 restore", mention, a, b)
		}
	}
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

func le64Put(b []byte, v uint64) {
	binaryPutU32(b, uint32(v))
	binaryPutU32(b[4:], uint32(v>>32))
}

func appendTestU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
