package snapshot_test

import (
	"testing"

	"shine/internal/snapshot"
)

// FuzzReadBytes hammers the artifact reader with mutated input. The
// contract under fuzzing: ReadBytes either returns an error or a
// Snapshot whose Model materialises — never a panic, and never an
// allocation driven by a declared count the payload cannot back.
func FuzzReadBytes(f *testing.F) {
	valid := encodeFixture(f, newFixture(f))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SHINESNP"))
	f.Add(valid[:16])
	f.Add(valid[:len(valid)/2])
	truncTable := append([]byte(nil), valid[:40]...)
	f.Add(truncTable)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	versionBump := append([]byte(nil), valid...)
	versionBump[8] = 0xFF
	f.Add(versionBump)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snapshot.ReadBytes(data)
		if err != nil {
			return
		}
		m, err := s.Model()
		if err != nil {
			t.Fatalf("accepted artifact failed to materialise: %v", err)
		}
		if m == nil || s.Info().Checksum == "" {
			t.Fatal("accepted artifact produced empty model or info")
		}
	})
}
