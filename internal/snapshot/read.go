package snapshot

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/sparse"
	"shine/internal/surftrie"
)

// Snapshot is a decoded artifact: the validated model decomposition
// plus its identity. Decoding already ran every structural check
// (CRCs, bounds, CSR invariants), so Model() is a cheap final
// assembly — a name-index build and a weight install, no walks, no
// PageRank.
type Snapshot struct {
	parts shine.Parts
	info  Info
}

// Info returns the artifact's identity and shape.
func (s *Snapshot) Info() Info { return s.info }

// Parts returns the decoded model decomposition (shared; do not
// modify).
func (s *Snapshot) Parts() shine.Parts { return s.parts }

// Model materialises the serving model.
func (s *Snapshot) Model() (*shine.Model, error) {
	return shine.FromParts(s.parts)
}

// ReadFile reads and validates an artifact from disk.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s, err := ReadBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return s, nil
}

// ReadBytes decodes and validates an artifact held in memory. Every
// declared length is bounded by the bytes present before anything is
// allocated, every section CRC is checked before its fields are
// decoded, and the reassembled graph and model pass the same
// invariant sweeps a from-scratch build would — corrupt, truncated or
// reordered input returns an error, never a panic or an outsized
// allocation.
func ReadBytes(data []byte) (*Snapshot, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than any artifact", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q, not a SHINE snapshot", data[:8])
	}
	version := le.Uint32(data[8:])
	if version > FormatVersion {
		return nil, fmt.Errorf("%w: artifact format v%d, this build reads up to v%d; upgrade the binary",
			ErrNewerVersion, version, FormatVersion)
	}
	if version < minFormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d", version)
	}
	count := int(le.Uint32(data[12:]))
	if count <= 0 || count > maxSections {
		return nil, fmt.Errorf("snapshot: section count %d out of range", count)
	}
	tableLen := tableEntry * count
	if len(data) < headerLen+tableLen+4 {
		return nil, fmt.Errorf("snapshot: truncated section table")
	}
	table := data[headerLen : headerLen+tableLen]
	if got, want := crc32.ChecksumIEEE(table), le.Uint32(data[headerLen+tableLen:]); got != want {
		return nil, fmt.Errorf("snapshot: section table checksum mismatch: file %08x, computed %08x", want, got)
	}

	// Parse the table. IDs must be strictly ascending and payloads
	// contiguous in table order — a shuffled table is corruption, not a
	// layout choice.
	type entry struct {
		id      uint32
		payload []byte
	}
	entries := make([]entry, count)
	expect := uint64(headerLen + tableLen + 4)
	for i := range entries {
		row := table[i*tableEntry:]
		id := le.Uint32(row)
		offset := le.Uint64(row[8:])
		length := le.Uint64(row[16:])
		crc := le.Uint32(row[24:])
		if i > 0 && entries[i-1].id >= id {
			return nil, fmt.Errorf("snapshot: section table not strictly ascending at entry %d (id %d)", i, id)
		}
		if offset != expect {
			return nil, fmt.Errorf("snapshot: section %s at offset %d, expected %d", sectionName(id), offset, expect)
		}
		if length > uint64(len(data))-offset {
			return nil, fmt.Errorf("snapshot: section %s length %d exceeds artifact", sectionName(id), length)
		}
		payload := data[offset : offset+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("snapshot: section %s checksum mismatch: table %08x, computed %08x", sectionName(id), crc, got)
		}
		entries[i] = entry{id: id, payload: payload}
		expect = offset + length
	}
	if expect != uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last section", uint64(len(data))-expect)
	}
	want := []uint32{secMeta, secConfig, secObjects, secCSR, secPopularity, secWeights, secGeneric, secMixtures}
	if version >= 2 {
		want = append(want, secTrie)
	}
	if count != len(want) {
		return nil, fmt.Errorf("snapshot: %d sections, format v%d has %d", count, version, len(want))
	}
	for i, id := range want {
		if entries[i].id != id {
			return nil, fmt.Errorf("snapshot: section %d is id %d, want %s", i, entries[i].id, sectionName(id))
		}
	}
	payload := func(id uint32) []byte { return entries[id-1].payload }

	// Section 1: meta — schema, entity type, paths.
	var meta metaSection
	if err := json.Unmarshal(payload(secMeta), &meta); err != nil {
		return nil, fmt.Errorf("snapshot: decoding meta: %w", err)
	}
	if len(meta.Paths) == 0 || len(meta.Paths) > maxPathCount {
		return nil, fmt.Errorf("snapshot: %d meta-paths out of range", len(meta.Paths))
	}
	schema := hin.NewSchema()
	for _, t := range meta.Types {
		if _, err := schema.AddType(t.Name, t.Abbrev); err != nil {
			return nil, fmt.Errorf("snapshot: rebuilding schema: %w", err)
		}
	}
	for _, r := range meta.Relations {
		if _, err := schema.AddRelation(r.Name, r.Inverse, hin.TypeID(r.From), hin.TypeID(r.To)); err != nil {
			return nil, fmt.Errorf("snapshot: rebuilding schema: %w", err)
		}
	}
	entityType, ok := schema.TypeByName(meta.EntityType)
	if !ok {
		return nil, fmt.Errorf("snapshot: schema has no entity type %q", meta.EntityType)
	}
	paths, err := metapath.ParseAll(schema, meta.Paths)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reparsing meta-paths: %w", err)
	}

	// Section 2: config.
	var cfg shine.Config
	if err := json.Unmarshal(payload(secConfig), &cfg); err != nil {
		return nil, fmt.Errorf("snapshot: decoding config: %w", err)
	}

	// Section 3: objects.
	c := &cursor{b: payload(secObjects), sec: "objects"}
	nu, err := c.u32()
	if err != nil {
		return nil, err
	}
	n := int(nu)
	typeOf, err := c.i32s(n)
	if err != nil {
		return nil, err
	}
	nameBytes, err := c.u32()
	if err != nil {
		return nil, err
	}
	nameOffs, err := c.u32s(n + 1)
	if err != nil {
		return nil, err
	}
	blob, err := c.bytes(int(nameBytes))
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	if nameOffs[0] != 0 || nameOffs[n] != nameBytes {
		return nil, fmt.Errorf("snapshot: name offsets span [%d, %d] over %d bytes", nameOffs[0], nameOffs[n], nameBytes)
	}
	names := make([]string, n)
	types := make([]hin.TypeID, n)
	for v := 0; v < n; v++ {
		if nameOffs[v+1] < nameOffs[v] || nameOffs[v+1] > nameBytes {
			return nil, fmt.Errorf("snapshot: name offsets decrease at object %d", v)
		}
		names[v] = string(blob[nameOffs[v]:nameOffs[v+1]])
		types[v] = hin.TypeID(typeOf[v])
	}

	// Section 4: CSR adjacency.
	c = &cursor{b: payload(secCSR), sec: "csr"}
	numRelsU, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int(numRelsU) != schema.NumRelations() {
		return nil, fmt.Errorf("snapshot: %d relation arrays for schema with %d relations", numRelsU, schema.NumRelations())
	}
	offs := make([][]int32, numRelsU)
	adjs := make([][]hin.ObjectID, numRelsU)
	for rel := range offs {
		off, err := c.i32s(n + 1)
		if err != nil {
			return nil, err
		}
		m, err := c.u32()
		if err != nil {
			return nil, err
		}
		if off[n] != int32(m) {
			return nil, fmt.Errorf("snapshot: relation %d declares %d links, offsets end at %d", rel, m, off[n])
		}
		adj, err := c.i32s(int(m))
		if err != nil {
			return nil, err
		}
		offs[rel] = off
		adjs[rel] = objectIDsFromInt32(adj)
	}
	if err := c.done(); err != nil {
		return nil, err
	}

	g, err := hin.FromParts(hin.GraphParts{
		Schema: schema, TypeOf: types, Names: names, Offs: offs, Adjs: adjs,
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	// Section 5: popularity.
	c = &cursor{b: payload(secPopularity), sec: "popularity"}
	popN, err := c.u32()
	if err != nil {
		return nil, err
	}
	popularity, err := c.f64s(int(popN))
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}

	// Section 6: weights.
	c = &cursor{b: payload(secWeights), sec: "weights"}
	wN, err := c.u32()
	if err != nil {
		return nil, err
	}
	weights, err := c.f64s(int(wN))
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}

	// Section 7: generic object model.
	c = &cursor{b: payload(secGeneric), sec: "generic"}
	gN, err := c.u32()
	if err != nil {
		return nil, err
	}
	gidx, err := c.i32s(int(gN))
	if err != nil {
		return nil, err
	}
	gval, err := c.f64s(int(gN))
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	gdist, err := sparse.NewDistFromRaw(gidx, gval)
	if err != nil {
		return nil, fmt.Errorf("snapshot: generic model: %w", err)
	}

	// Section 8: frozen mixtures.
	c = &cursor{b: payload(secMixtures), sec: "mixtures"}
	mixN, err := c.u32()
	if err != nil {
		return nil, err
	}
	ents, err := c.i32s(int(mixN))
	if err != nil {
		return nil, err
	}
	cum, err := c.u32s(int(mixN) + 1)
	if err != nil {
		return nil, err
	}
	if cum[0] != 0 {
		return nil, fmt.Errorf("snapshot: mixture offsets start at %d", cum[0])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			return nil, fmt.Errorf("snapshot: mixture offsets decrease at entry %d", i)
		}
	}
	totalNNZ := int(cum[mixN])
	midx, err := c.i32s(totalNNZ)
	if err != nil {
		return nil, err
	}
	mval, err := c.f64s(totalNNZ)
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	mixtures := make([]shine.MixtureEntry, mixN)
	for i := range mixtures {
		lo, hi := cum[i], cum[i+1]
		d, err := sparse.NewDistFromRaw(midx[lo:hi:hi], mval[lo:hi:hi])
		if err != nil {
			return nil, fmt.Errorf("snapshot: mixture for entity %d: %w", ents[i], err)
		}
		mixtures[i] = shine.MixtureEntry{Entity: hin.ObjectID(ents[i]), Mixture: d}
	}

	// Section 9 (format v2+): the frozen surface-form trie. Version-1
	// artifacts carry none; FromParts rebuilds it from the graph.
	var trie *surftrie.Trie
	if version >= 2 {
		c = &cursor{b: payload(secTrie), sec: "trie"}
		keys, err := c.u32()
		if err != nil {
			return nil, err
		}
		nodesU, err := c.u32()
		if err != nil {
			return nil, err
		}
		nodes := int(nodesU)
		labelLen, err := c.u32()
		if err != nil {
			return nil, err
		}
		labels, err := c.bytes(int(labelLen))
		if err != nil {
			return nil, err
		}
		labelLo, err := c.u32s(nodes + 1)
		if err != nil {
			return nil, err
		}
		childLo, err := c.u32s(nodes + 1)
		if err != nil {
			return nil, err
		}
		entryLo, err := c.u32s(nodes + 1)
		if err != nil {
			return nil, err
		}
		refsN, err := c.u32()
		if err != nil {
			return nil, err
		}
		refs, err := c.u32s(int(refsN))
		if err != nil {
			return nil, err
		}
		entsN, err := c.u32()
		if err != nil {
			return nil, err
		}
		trieEnts, err := c.i32s(int(entsN))
		if err != nil {
			return nil, err
		}
		if err := c.done(); err != nil {
			return nil, err
		}
		trie, err = surftrie.FromRaw(surftrie.Raw{
			Labels: labels, LabelLo: labelLo, ChildLo: childLo,
			EntryLo: entryLo, Refs: refs, Entities: trieEnts, Keys: keys,
		}, g, entityType)
		if err != nil {
			return nil, fmt.Errorf("snapshot: section trie: %w", err)
		}
	}

	parts := shine.Parts{
		Graph:        g,
		EntityType:   entityType,
		Paths:        paths,
		Config:       cfg,
		Weights:      weights,
		Popularity:   popularity,
		PRSeconds:    meta.PRSeconds,
		PRIterations: meta.PRIterations,
		Centrality:   meta.Centrality,
		Generic:      gdist.Thaw(),
		Mixtures:     mixtures,
		Trie:         trie,
	}
	// Dry-run the final assembly so a Snapshot in hand is a model that
	// will materialise: FromParts runs the semantic validation
	// (weights, popularity, mixture typing) that the wire-level sweep
	// above cannot.
	if _, err := shine.FromParts(parts); err != nil {
		return nil, err
	}
	return &Snapshot{parts: parts, info: infoFor(data, parts)}, nil
}

func sectionName(id uint32) string {
	if name, ok := sectionNames[id]; ok {
		return name
	}
	return fmt.Sprintf("#%d", id)
}

func objectIDsFromInt32(xs []int32) []hin.ObjectID {
	out := make([]hin.ObjectID, len(xs))
	for i, x := range xs {
		out[i] = hin.ObjectID(x)
	}
	return out
}
