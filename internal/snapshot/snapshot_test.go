package snapshot_test

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
	"shine/internal/snapshot"
)

// fixture builds a miniature DBLP network, a small corpus over it and
// a model with non-uniform weights and a populated mixture index —
// every section of the artifact is exercised.
type fixture struct {
	graph *hin.Graph
	docs  *corpus.Corpus
	model *shine.Model
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	wei1 := b.MustAddObject(d.Author, "Wei Wang")
	wei2 := b.MustAddObject(d.Author, "Wei Wang (2)")
	rakesh := b.MustAddObject(d.Author, "Rakesh Kumar")
	p1 := b.MustAddObject(d.Paper, "p1")
	p2 := b.MustAddObject(d.Paper, "p2")
	p3 := b.MustAddObject(d.Paper, "p3")
	sigmod := b.MustAddObject(d.Venue, "SIGMOD")
	vldb := b.MustAddObject(d.Venue, "VLDB")
	mining := b.MustAddObject(d.Term, "mining")
	data := b.MustAddObject(d.Term, "data")
	y1999 := b.MustAddObject(d.Year, "1999")
	b.MustAddLink(d.Write, wei1, p1)
	b.MustAddLink(d.Write, rakesh, p1)
	b.MustAddLink(d.Write, wei1, p2)
	b.MustAddLink(d.Write, wei2, p3)
	b.MustAddLink(d.Publish, sigmod, p1)
	b.MustAddLink(d.Publish, vldb, p2)
	b.MustAddLink(d.Publish, vldb, p3)
	b.MustAddLink(d.Contain, p1, mining)
	b.MustAddLink(d.Contain, p2, data)
	b.MustAddLink(d.Contain, p3, data)
	b.MustAddLink(d.PublishedIn, p1, y1999)
	g := b.Build()

	docs := &corpus.Corpus{}
	docs.Add(corpus.NewDocument("d1", "Wei Wang", wei1, []hin.ObjectID{sigmod, mining, rakesh}))
	docs.Add(corpus.NewDocument("d2", "Wei Wang", wei2, []hin.ObjectID{vldb, data}))
	docs.Add(corpus.NewDocument("d3", "Rakesh Kumar", rakesh, []hin.ObjectID{sigmod, mining}))

	paths, err := metapath.ParseAll(d.Schema, []string{"A-P-V", "A-P-T", "A-P-A"})
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	cfg := shine.DefaultConfig()
	cfg.WalkCacheSize = 64
	m, err := shine.New(g, d.Author, paths, docs, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m.SetWeights([]float64{5, 3, 2}); err != nil {
		t.Fatalf("SetWeights: %v", err)
	}
	if err := m.PrecomputeMixtures(); err != nil {
		t.Fatalf("PrecomputeMixtures: %v", err)
	}
	return &fixture{graph: g, docs: docs, model: m}
}

func encodeFixture(t testing.TB, f *fixture) []byte {
	t.Helper()
	data, err := snapshot.Encode(f.model.Parts())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}

// TestRoundTripBitIdentical is the golden acceptance test: a model
// restored from its artifact must produce Link output bit-identical
// to the in-memory model it was written from.
func TestRoundTripBitIdentical(t *testing.T) {
	f := newFixture(t)
	data := encodeFixture(t, f)
	s, err := snapshot.ReadBytes(data)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	m2, err := s.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	for _, doc := range f.docs.Docs {
		r1, err1 := f.model.Link(doc)
		r2, err2 := m2.Link(doc)
		if err1 != nil || err2 != nil {
			t.Fatalf("doc %s: Link errors %v, %v", doc.ID, err1, err2)
		}
		if r1.Entity != r2.Entity {
			t.Errorf("doc %s: entity %d vs %d after snapshot", doc.ID, r1.Entity, r2.Entity)
		}
		if len(r1.Candidates) != len(r2.Candidates) {
			t.Fatalf("doc %s: %d vs %d candidates", doc.ID, len(r1.Candidates), len(r2.Candidates))
		}
		for i := range r1.Candidates {
			c1, c2 := r1.Candidates[i], r2.Candidates[i]
			if c1.Entity != c2.Entity {
				t.Errorf("doc %s cand %d: entity %d vs %d", doc.ID, i, c1.Entity, c2.Entity)
			}
			if math.Float64bits(c1.LogJoint) != math.Float64bits(c2.LogJoint) {
				t.Errorf("doc %s cand %d: log joint %x vs %x — not bit-identical", doc.ID, i,
					math.Float64bits(c1.LogJoint), math.Float64bits(c2.LogJoint))
			}
			if math.Float64bits(c1.Posterior) != math.Float64bits(c2.Posterior) {
				t.Errorf("doc %s cand %d: posterior %x vs %x — not bit-identical", doc.ID, i,
					math.Float64bits(c1.Posterior), math.Float64bits(c2.Posterior))
			}
		}
	}
	// The restored mixture index starts warm: linking above must not
	// have built a single mixture.
	if st := m2.MixtureStats(); st.Builds != 0 {
		t.Errorf("restored model built %d mixtures, index should have loaded warm", st.Builds)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := newFixture(t)
	a, b := encodeFixture(t, f), encodeFixture(t, f)
	if !bytes.Equal(a, b) {
		t.Error("two encodes of the same model differ — artifacts must be deterministic")
	}
}

func TestWriteFileReadFile(t *testing.T) {
	f := newFixture(t)
	path := filepath.Join(t.TempDir(), "model.snap")
	info, err := snapshot.WriteFile(path, f.model.Parts())
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	s, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got := s.Info(); got != info {
		t.Errorf("Info mismatch:\nwrite: %+v\nread:  %+v", info, got)
	}
	if info.Checksum == "" || info.Objects != f.graph.NumObjects() || info.Paths != 3 {
		t.Errorf("implausible info: %+v", info)
	}
	if info.MixtureEntries == 0 {
		t.Error("no mixture entries persisted despite precompute")
	}
	if _, err := s.Model(); err != nil {
		t.Fatalf("Model: %v", err)
	}
}

func TestReadRejectsNewerVersion(t *testing.T) {
	f := newFixture(t)
	data := encodeFixture(t, f)
	binaryPutU32(data[8:], snapshot.FormatVersion+1)
	_, err := snapshot.ReadBytes(data)
	if !errors.Is(err, snapshot.ErrNewerVersion) {
		t.Errorf("newer-version artifact error = %v, want ErrNewerVersion", err)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	f := newFixture(t)
	data := encodeFixture(t, f)
	for _, cut := range []int{0, 7, 15, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := snapshot.ReadBytes(data[:cut]); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadRejectsBitFlips(t *testing.T) {
	f := newFixture(t)
	data := encodeFixture(t, f)
	// Flip one byte in every region: magic, version, table, payloads.
	for _, pos := range []int{0, 9, 20, len(data) / 3, len(data) / 2, len(data) - 1} {
		corrupted := append([]byte(nil), data...)
		corrupted[pos] ^= 0xFF
		if _, err := snapshot.ReadBytes(corrupted); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
}

// TestReadRejectsReorderedSections swaps two section table entries
// (fixing the table CRC so only the ordering is wrong) — the reader
// must reject a shuffled table, not silently decode sections in the
// wrong roles.
func TestReadRejectsReorderedSections(t *testing.T) {
	f := newFixture(t)
	data := encodeFixture(t, f)
	const headerLen, entryLen = 16, 28
	count := int(leU32(data[12:]))
	if count < 2 {
		t.Fatal("artifact has fewer than 2 sections")
	}
	e0 := headerLen
	e1 := headerLen + entryLen
	tmp := make([]byte, entryLen)
	copy(tmp, data[e0:e0+entryLen])
	copy(data[e0:e0+entryLen], data[e1:e1+entryLen])
	copy(data[e1:e1+entryLen], tmp)
	tableEnd := headerLen + entryLen*count
	binaryPutU32(data[tableEnd:], crc32.ChecksumIEEE(data[headerLen:tableEnd]))
	if _, err := snapshot.ReadBytes(data); err == nil {
		t.Error("reordered section table accepted")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := snapshot.ReadFile(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	if _, err := snapshot.WriteFile(path, f.model.Parts()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Overwrite with a second snapshot; no temp debris may remain.
	if _, err := snapshot.WriteFile(path, f.model.Parts()); err != nil {
		t.Fatalf("WriteFile (overwrite): %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.snap" {
		t.Errorf("directory not clean after atomic writes: %v", entries)
	}
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func binaryPutU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
