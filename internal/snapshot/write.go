package snapshot

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"shine/internal/hin"
	"shine/internal/shine"
	"shine/internal/sparse"
	"shine/internal/surftrie"
)

// Encode serialises a model decomposition into the artifact byte
// layout. The output is deterministic for a given Parts value — no
// timestamps, no host-dependent fields — so rebuilding the same model
// yields a byte-identical artifact with the same checksum.
func Encode(p shine.Parts) ([]byte, error) {
	p, err := normalizeParts(p)
	if err != nil {
		return nil, err
	}
	return encodeParts(p)
}

// normalizeParts fills the derivable pieces Encode needs that a
// hand-assembled Parts may omit: a nil Trie is built from the graph
// (deterministically, so the artifact bytes stay reproducible), and an
// empty Centrality is resolved from the config so every artifact this
// build writes records its popularity backend.
func normalizeParts(p shine.Parts) (shine.Parts, error) {
	if p.Trie == nil {
		if p.Graph == nil {
			return p, fmt.Errorf("snapshot: encoding: nil graph")
		}
		t, err := surftrie.Build(p.Graph, p.EntityType)
		if err != nil {
			return p, fmt.Errorf("snapshot: building surface trie: %w", err)
		}
		p.Trie = t
	}
	if p.Centrality == "" {
		p.Centrality = p.Config.CentralityName()
	}
	return p, nil
}

func encodeParts(p shine.Parts) ([]byte, error) {
	type section struct {
		id      uint32
		payload []byte
	}
	var secs []section
	add := func(id uint32, payload []byte) { secs = append(secs, section{id, payload}) }

	gp := p.Graph.Parts()
	schema := gp.Schema

	// Section 1: meta JSON.
	meta := metaSection{
		EntityType:   schema.Type(p.EntityType).Name,
		PRSeconds:    p.PRSeconds,
		PRIterations: p.PRIterations,
		Centrality:   p.Centrality,
	}
	for _, path := range p.Paths {
		meta.Paths = append(meta.Paths, path.String())
	}
	for i := 0; i < schema.NumTypes(); i++ {
		t := schema.Type(hin.TypeID(i))
		meta.Types = append(meta.Types, typeMeta{Name: t.Name, Abbrev: t.Abbrev})
	}
	for i := 0; i < schema.NumRelations(); i += 2 {
		r := schema.Relation(hin.RelationID(i))
		meta.Relations = append(meta.Relations, relMeta{
			Name:    r.Name,
			Inverse: schema.Relation(r.Inverse).Name,
			From:    int32(r.From),
			To:      int32(r.To),
		})
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding meta: %w", err)
	}
	add(secMeta, metaJSON)

	// Section 2: config JSON (Workers and PrecomputeMixtures carry
	// json:"-", so artifacts stay host-independent).
	cfgJSON, err := json.Marshal(p.Config)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding config: %w", err)
	}
	add(secConfig, cfgJSON)

	// Section 3: objects — typeOf array and the name symbol table as
	// one concatenated byte run with n+1 cumulative offsets.
	n := len(gp.TypeOf)
	nameBytes := 0
	for _, name := range gp.Names {
		nameBytes += len(name)
	}
	obj := appendU32(nil, uint32(n))
	obj = appendI32s(obj, typeIDsAsInt32(gp.TypeOf))
	obj = appendU32(obj, uint32(nameBytes))
	offs := make([]uint32, n+1)
	total := uint32(0)
	for i, name := range gp.Names {
		offs[i] = total
		total += uint32(len(name))
	}
	offs[n] = total
	obj = appendU32s(obj, offs)
	for _, name := range gp.Names {
		obj = append(obj, name...)
	}
	add(secObjects, obj)

	// Section 4: CSR adjacency, one (offsets, indices) pair per
	// directed relation in schema order.
	csr := appendU32(nil, uint32(len(gp.Offs)))
	for rel := range gp.Offs {
		csr = appendI32s(csr, gp.Offs[rel])
		csr = appendU32(csr, uint32(len(gp.Adjs[rel])))
		csr = appendI32s(csr, objectIDsAsInt32(gp.Adjs[rel]))
	}
	add(secCSR, csr)

	// Section 5: dense entity popularity.
	pop := appendU32(nil, uint32(len(p.Popularity)))
	pop = appendF64s(pop, p.Popularity)
	add(secPopularity, pop)

	// Section 6: learned weights, exact bits.
	w := appendU32(nil, uint32(len(p.Weights)))
	w = appendF64s(w, p.Weights)
	add(secWeights, w)

	// Section 7: generic object model as a frozen sparse pair.
	gidx, gval := sparse.Freeze(p.Generic).Raw()
	gen := appendU32(nil, uint32(len(gidx)))
	gen = appendI32s(gen, gidx)
	gen = appendF64s(gen, gval)
	add(secGeneric, gen)

	// Section 8: frozen mixture index — entity list, cumulative nnz
	// offsets, then all indices and all values concatenated.
	mix := appendU32(nil, uint32(len(p.Mixtures)))
	ents := make([]int32, len(p.Mixtures))
	cum := make([]uint32, len(p.Mixtures)+1)
	for i, en := range p.Mixtures {
		ents[i] = int32(en.Entity)
		cum[i+1] = cum[i] + uint32(en.Mixture.Len())
	}
	mix = appendI32s(mix, ents)
	mix = appendU32s(mix, cum)
	for _, en := range p.Mixtures {
		idx, _ := en.Mixture.Raw()
		mix = appendI32s(mix, idx)
	}
	for _, en := range p.Mixtures {
		_, val := en.Mixture.Raw()
		mix = appendF64s(mix, val)
	}
	add(secMixtures, mix)

	// Section 9: frozen surface-form trie — flat arrays verbatim, so
	// the restored index is structurally identical to the built one.
	raw := p.Trie.Raw()
	trieNodes := len(raw.LabelLo) - 1
	tr := appendU32(nil, raw.Keys)
	tr = appendU32(tr, uint32(trieNodes))
	tr = appendU32(tr, uint32(len(raw.Labels)))
	tr = append(tr, raw.Labels...)
	tr = appendU32s(tr, raw.LabelLo)
	tr = appendU32s(tr, raw.ChildLo)
	tr = appendU32s(tr, raw.EntryLo)
	tr = appendU32(tr, uint32(len(raw.Refs)))
	tr = appendU32s(tr, raw.Refs)
	tr = appendU32(tr, uint32(len(raw.Entities)))
	tr = appendI32s(tr, raw.Entities)
	add(secTrie, tr)

	// Assemble: header, table, table CRC, payloads.
	artifactLen := headerLen + tableEntry*len(secs) + 4
	offset := uint64(artifactLen)
	for _, s := range secs {
		artifactLen += len(s.payload)
	}
	out := make([]byte, 0, artifactLen)
	out = append(out, Magic...)
	out = appendU32(out, FormatVersion)
	out = appendU32(out, uint32(len(secs)))
	table := make([]byte, 0, tableEntry*len(secs))
	for _, s := range secs {
		table = appendU32(table, s.id)
		table = appendU32(table, 0) // flags, reserved
		table = le.AppendUint64(table, offset)
		table = le.AppendUint64(table, uint64(len(s.payload)))
		table = appendU32(table, crc32.ChecksumIEEE(s.payload))
		offset += uint64(len(s.payload))
	}
	out = append(out, table...)
	out = appendU32(out, crc32.ChecksumIEEE(table))
	for _, s := range secs {
		out = append(out, s.payload...)
	}
	return out, nil
}

func typeIDsAsInt32(ts []hin.TypeID) []int32 {
	out := make([]int32, len(ts))
	for i, t := range ts {
		out[i] = int32(t)
	}
	return out
}

func objectIDsAsInt32(ids []hin.ObjectID) []int32 {
	out := make([]int32, len(ids))
	for i, o := range ids {
		out[i] = int32(o)
	}
	return out
}

// Write serialises the decomposition to w, returning bytes written.
func Write(w io.Writer, p shine.Parts) (int64, error) {
	data, err := Encode(p)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile atomically writes the artifact: encode, write to a
// temporary file in the same directory, fsync, rename. A crash or
// concurrent reader never sees a half-written artifact — which is
// what makes `POST /v1/admin/reload` safe to point at a path a build
// pipeline is also writing.
func WriteFile(path string, p shine.Parts) (Info, error) {
	p, err := normalizeParts(p)
	if err != nil {
		return Info{}, err
	}
	data, err := encodeParts(p)
	if err != nil {
		return Info{}, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return Info{}, fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return Info{}, fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return Info{}, fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return Info{}, fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return Info{}, fmt.Errorf("snapshot: %w", err)
	}
	return infoFor(data, p), nil
}

// infoFor summarises an encoded artifact from its bytes and the parts
// it was built from. Version and section count come from the bytes,
// so a version-1 artifact read by this build reports itself as v1.
func infoFor(data []byte, p shine.Parts) Info {
	links := 0
	gp := p.Graph.Parts()
	for rel := 0; rel < len(gp.Adjs); rel += 2 {
		links += len(gp.Adjs[rel])
	}
	trieNodes := 0
	if p.Trie != nil {
		trieNodes = p.Trie.Stats().Nodes
	}
	// Old artifacts carry no backend name; "pagerank" was the only
	// backend when they were written.
	centrality := p.Centrality
	if centrality == "" {
		centrality = p.Config.CentralityName()
	}
	return Info{
		FormatVersion:  le.Uint32(data[8:]),
		Checksum:       fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)),
		Bytes:          int64(len(data)),
		Sections:       int(le.Uint32(data[12:])),
		TrieNodes:      trieNodes,
		EntityType:     p.Graph.Schema().Type(p.EntityType).Name,
		Objects:        p.Graph.NumObjects(),
		Links:          links,
		Entities:       len(p.Popularity),
		Paths:          len(p.Paths),
		MixtureEntries: len(p.Mixtures),
		GenericSupport: p.Generic.Len(),
		Centrality:     centrality,
	}
}
