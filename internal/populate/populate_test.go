package populate

import (
	"testing"

	"shine/internal/hin"
)

func baseGraph(t testing.TB) (*hin.DBLPSchema, *hin.Graph, hin.ObjectID) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	wei := b.MustAddObject(d.Author, "Wei Wang 0001")
	p := b.MustAddObject(d.Paper, "p1")
	b.MustAddLink(d.Write, wei, p)
	return d, b.Build(), wei
}

func TestEnricherAddsNewTypeRelationAndFact(t *testing.T) {
	d, g, wei := baseGraph(t)
	e := NewEnricher(g)

	org, err := e.EnsureType("organization", "ORG")
	if err != nil {
		t.Fatalf("EnsureType: %v", err)
	}
	rel, err := e.EnsureRelation("isAffiliatedWith", "hasMember", d.Author, org)
	if err != nil {
		t.Fatalf("EnsureRelation: %v", err)
	}
	if err := e.Add(Fact{Relation: rel, Subject: wei, ObjectName: "UCLA"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if e.Facts() != 1 {
		t.Errorf("Facts = %d", e.Facts())
	}
	g2, err := e.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	ucla, ok := g2.Lookup(org, "UCLA")
	if !ok {
		t.Fatal("UCLA object missing from enriched graph")
	}
	got := g2.Neighbors(rel, wei)
	if len(got) != 1 || got[0] != ucla {
		t.Errorf("affiliation neighbors = %v", got)
	}
	// Inverse derived automatically.
	inv := g2.Schema().Inverse(rel)
	if back := g2.Neighbors(inv, ucla); len(back) != 1 || back[0] != wei {
		t.Errorf("inverse neighbors = %v", back)
	}
	// Original links preserved.
	if g2.Degree(d.Write, wei) != 1 {
		t.Error("original write link lost")
	}
}

func TestEnsureTypeAndRelationIdempotent(t *testing.T) {
	d, g, _ := baseGraph(t)
	e := NewEnricher(g)
	org1, err := e.EnsureType("organization", "ORG")
	if err != nil {
		t.Fatal(err)
	}
	org2, err := e.EnsureType("organization", "XX") // abbrev ignored for existing
	if err != nil || org1 != org2 {
		t.Errorf("EnsureType not idempotent: %v, %d vs %d", err, org1, org2)
	}
	r1, err := e.EnsureRelation("isAffiliatedWith", "hasMember", d.Author, org1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.EnsureRelation("isAffiliatedWith", "", d.Author, org1)
	if err != nil || r1 != r2 {
		t.Errorf("EnsureRelation not idempotent: %v, %d vs %d", err, r1, r2)
	}
	// Existing relation with conflicting types is rejected.
	if _, err := e.EnsureRelation("isAffiliatedWith", "", d.Paper, org1); err == nil {
		t.Error("type-conflicting EnsureRelation accepted")
	}
}

func TestAddFactToExistingObject(t *testing.T) {
	d, g, wei := baseGraph(t)
	e := NewEnricher(g)
	// Reuse an existing relation type: add a write link to an
	// existing paper by name.
	if err := e.Add(Fact{Relation: d.Write, Subject: wei, ObjectName: "p1"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	g2, err := e.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// The paper was not duplicated; the link multiplicity grew.
	if g2.NumObjects() != g.NumObjects() {
		t.Errorf("object count changed: %d vs %d", g2.NumObjects(), g.NumObjects())
	}
	if g2.Degree(d.Write, wei) != 2 {
		t.Errorf("write degree = %d, want 2", g2.Degree(d.Write, wei))
	}
}

func TestAddFactRejectsBadSubject(t *testing.T) {
	d, g, _ := baseGraph(t)
	e := NewEnricher(g)
	// Subject of the wrong type for the relation.
	paper, _ := g.Lookup(d.Paper, "p1")
	if err := e.Add(Fact{Relation: d.Write, Subject: paper, ObjectName: "p1"}); err == nil {
		t.Error("wrong-typed subject accepted")
	}
}

func TestEnricherMultipleBuilds(t *testing.T) {
	d, g, wei := baseGraph(t)
	e := NewEnricher(g)
	org, _ := e.EnsureType("organization", "ORG")
	rel, _ := e.EnsureRelation("isAffiliatedWith", "hasMember", d.Author, org)

	if err := e.Add(Fact{Relation: rel, Subject: wei, ObjectName: "UCLA"}); err != nil {
		t.Fatal(err)
	}
	g1, err := e.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Add(Fact{Relation: rel, Subject: wei, ObjectName: "Tsinghua"}); err != nil {
		t.Fatal(err)
	}
	g2, err := e.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Degree(rel, wei) != 1 || g2.Degree(rel, wei) != 2 {
		t.Errorf("degrees = %d, %d; want 1, 2", g1.Degree(rel, wei), g2.Degree(rel, wei))
	}
}
