// Package populate implements the paper's motivating application
// (Section 1): enriching a heterogeneous information network with
// facts extracted from Web text *after* their entity mentions have
// been linked. The paper's running example extracts a graduateFrom
// relation between "Wei Wang" and "UCLA" and, once "Wei Wang" is
// linked to the right author entity, populates it into the network;
// Section 4 then shows how new object types (e.g. organisations) and
// relations become new meta-paths (A-ORG, A-P-A-ORG) the model can
// learn weights for.
package populate

import (
	"fmt"

	"shine/internal/hin"
)

// Fact is one extracted, linked statement: a relation between an
// entity already in the network and an object named in text (which
// may or may not exist in the network yet).
type Fact struct {
	// Relation is the relation type of the fact. It may be a relation
	// registered after the base graph was built (see
	// Enricher.EnsureRelation).
	Relation hin.RelationID
	// Subject is the linked entity (an object of the base graph or
	// one added by a previous fact).
	Subject hin.ObjectID
	// ObjectName names the fact's object; it is resolved or created
	// under the relation's destination type.
	ObjectName string
}

// Enricher accumulates facts on top of a base graph and produces an
// enriched immutable graph. It is not safe for concurrent use.
type Enricher struct {
	schema  *hin.Schema
	builder *hin.Builder
	facts   int
}

// NewEnricher starts an enrichment session over a base graph. The
// base graph is copied into a builder (object IDs preserved) and is
// never modified.
func NewEnricher(g *hin.Graph) *Enricher {
	return &Enricher{
		schema:  g.Schema(),
		builder: hin.NewBuilderFromGraph(g),
	}
}

// EnsureType returns the TypeID for the named object type, creating
// it (with the given abbreviation) if the schema lacks it — e.g.
// "organization"/"ORG" for affiliation facts.
func (e *Enricher) EnsureType(name, abbrev string) (hin.TypeID, error) {
	if t, ok := e.schema.TypeByName(name); ok {
		return t, nil
	}
	return e.schema.AddType(name, abbrev)
}

// EnsureRelation returns the RelationID of the named relation,
// creating it (with its inverse) from one type to another if absent —
// e.g. "isAffiliatedWith" from author to organization.
func (e *Enricher) EnsureRelation(name, invName string, from, to hin.TypeID) (hin.RelationID, error) {
	if r, ok := e.schema.RelationByName(name); ok {
		ri := e.schema.Relation(r)
		if ri.From != from || ri.To != to {
			return hin.NoRelation, fmt.Errorf(
				"populate: relation %q exists with types %d->%d, requested %d->%d",
				name, ri.From, ri.To, from, to)
		}
		return r, nil
	}
	return e.schema.AddRelation(name, invName, from, to)
}

// Add records one fact: the object is resolved by name under the
// relation's destination type (created if new) and linked to the
// subject.
func (e *Enricher) Add(f Fact) error {
	ri := e.schema.Relation(f.Relation)
	obj, err := e.builder.AddObject(ri.To, f.ObjectName)
	if err != nil {
		return fmt.Errorf("populate: resolving object %q: %w", f.ObjectName, err)
	}
	if err := e.builder.AddLink(f.Relation, f.Subject, obj); err != nil {
		return fmt.Errorf("populate: linking fact: %w", err)
	}
	e.facts++
	return nil
}

// Facts returns the number of facts added so far.
func (e *Enricher) Facts() int { return e.facts }

// Graph builds the enriched immutable graph. The enricher remains
// usable; further facts produce further graphs.
func (e *Enricher) Graph() (*hin.Graph, error) {
	g := e.builder.Build()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("populate: enriched graph invalid: %w", err)
	}
	return g, nil
}
