// Package synth generates deterministic synthetic datasets that stand
// in for the paper's private resources: the March-2013 DBLP dump, the
// manually annotated 709-document Web corpus, and the IMDb network.
// The generators reproduce the statistics the SHINE model is
// sensitive to — Zipfian author productivity, topical communities of
// venues and terms, ambiguous-name groups, and in-domain documents
// mixing an entity's true neighbourhood with domain noise — at
// configurable scale, with gold labels known by construction.
package synth

import "fmt"

// Name pools for synthetic people. The cross product gives 2,500
// distinct full names before disambiguation suffixes, enough that
// non-ambiguous authors rarely collide at small scales while
// ambiguous groups are constructed explicitly.
var firstNames = []string{
	"Wei", "Lei", "Ming", "Jun", "Hao", "Yan", "Feng", "Rakesh", "Anil",
	"Ravi", "Eric", "James", "John", "Robert", "Michael", "David",
	"Richard", "Thomas", "Daniel", "Matthew", "Anna", "Maria", "Laura",
	"Sarah", "Karen", "Nancy", "Lisa", "Emily", "Grace", "Helen",
	"Pierre", "Jean", "Hans", "Klaus", "Ivan", "Dmitri", "Carlos",
	"Jose", "Luis", "Marco", "Paolo", "Andrea", "Sven", "Lars",
	"Hiroshi", "Takeshi", "Kenji", "Jin", "Soo", "Chen",
}

var lastNames = []string{
	"Wang", "Zhang", "Li", "Chen", "Liu", "Yang", "Huang", "Kumar",
	"Gupta", "Sharma", "Martin", "Smith", "Johnson", "Brown", "Jones",
	"Miller", "Davis", "Wilson", "Anderson", "Taylor", "Moore",
	"Jackson", "White", "Harris", "Clark", "Lewis", "Walker", "Hall",
	"Young", "King", "Dubois", "Muller", "Schmidt", "Fischer",
	"Petrov", "Ivanov", "Garcia", "Rodriguez", "Lopez", "Rossi",
	"Ricci", "Larsson", "Berg", "Tanaka", "Suzuki", "Sato", "Kim",
	"Park", "Lee", "Nguyen",
}

// venueStems and topicNames provide vocabulary for synthetic venues
// and research areas.
var topicNames = []string{
	"databases", "datamining", "machinelearning", "networks",
	"systems", "theory", "graphics", "security", "bioinformatics",
	"nlp", "vision", "robotics", "architecture", "compilers",
	"distributed", "web",
}

// topicTermStems is the in-topic vocabulary seed; terms are generated
// as stem+index so every topic has a disjoint primary vocabulary.
var topicTermStems = []string{
	"query", "index", "transaction", "cluster", "kernel", "graph",
	"stream", "cache", "schema", "tensor", "gradient", "protocol",
	"routing", "consensus", "crypto", "genome", "parser", "render",
	"shader", "planner",
}

func venueName(topic, i int) string {
	return fmt.Sprintf("CONF-%s-%d", topicNames[topic%len(topicNames)], i)
}

func fullName(fi, li int) string {
	return firstNames[fi%len(firstNames)] + " " + lastNames[li%len(lastNames)]
}
