package synth

import (
	"fmt"
	"math"
	"math/rand"

	"shine/internal/hin"
	"shine/internal/textproc"
)

// DBLPConfig parameterises the synthetic DBLP-like network. The zero
// value is invalid; start from DefaultDBLPConfig.
type DBLPConfig struct {
	// Seed drives all randomness; equal configs generate identical
	// networks.
	Seed int64
	// RegularAuthors is the number of authors with unique names.
	RegularAuthors int
	// AmbiguousGroups is the number of "Wei Wang"-style surface names
	// shared by several distinct authors.
	AmbiguousGroups int
	// MinGroupSize and MaxGroupSize bound the number of authors per
	// ambiguous surface name.
	MinGroupSize, MaxGroupSize int
	// Topics is the number of research communities; venues, terms and
	// coauthorships cluster within topics.
	Topics int
	// VenuesPerTopic is the number of venues in each topic.
	VenuesPerTopic int
	// TermsPerTopic is the size of each topic's primary vocabulary.
	TermsPerTopic int
	// SharedTerms is the size of the cross-topic vocabulary.
	SharedTerms int
	// MaxPapersPerAuthor caps the Zipfian productivity draw.
	MaxPapersPerAuthor int
	// ZipfAlpha shapes the productivity distribution; larger means
	// more skew towards single-paper authors.
	ZipfAlpha float64
	// StarBoostMin, when positive, guarantees the first member of
	// every ambiguity group at least this many papers: real ambiguous
	// names typically pair one well-known researcher with several
	// students, which is what makes the popularity prior informative.
	StarBoostMin int
	// OffTopicTermProb is the chance an in-topic title term draw is
	// replaced by a term from a random topic, blurring topical
	// vocabulary the way real paper titles do.
	OffTopicTermProb float64
	// MaxCoauthorsPerPaper bounds the coauthor count of each paper.
	MaxCoauthorsPerPaper int
	// OffTopicVenueProb is the chance a paper lands in a venue outside
	// its lead author's topic.
	OffTopicVenueProb float64
	// TermsPerPaper is the number of title terms per paper.
	TermsPerPaper int
	// YearMin and YearMax bound publication years, inclusive.
	YearMin, YearMax int
}

// DefaultDBLPConfig returns a laptop-scale network: roughly 2,000
// authors across 8 topics, with 20 ambiguous surface names of 4–12
// authors each — the same regime (many candidates per mention, skewed
// productivity) as the paper's DBLP snapshot, at 1/600 scale.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Seed:                 1,
		RegularAuthors:       1800,
		AmbiguousGroups:      20,
		MinGroupSize:         4,
		MaxGroupSize:         12,
		Topics:               8,
		VenuesPerTopic:       5,
		TermsPerTopic:        40,
		SharedTerms:          60,
		MaxPapersPerAuthor:   60,
		ZipfAlpha:            1.15,
		StarBoostMin:         25,
		OffTopicTermProb:     0.2,
		MaxCoauthorsPerPaper: 3,
		OffTopicVenueProb:    0.15,
		TermsPerPaper:        6,
		YearMin:              1990,
		YearMax:              2013,
	}
}

// Validate checks the configuration for internal consistency.
func (c DBLPConfig) Validate() error {
	switch {
	case c.RegularAuthors < 0:
		return fmt.Errorf("synth: RegularAuthors %d negative", c.RegularAuthors)
	case c.AmbiguousGroups < 1:
		return fmt.Errorf("synth: need at least one ambiguous group, got %d", c.AmbiguousGroups)
	case c.MinGroupSize < 2:
		return fmt.Errorf("synth: MinGroupSize %d must be at least 2", c.MinGroupSize)
	case c.MaxGroupSize < c.MinGroupSize:
		return fmt.Errorf("synth: MaxGroupSize %d below MinGroupSize %d", c.MaxGroupSize, c.MinGroupSize)
	case c.Topics < 1:
		return fmt.Errorf("synth: Topics %d must be positive", c.Topics)
	case c.VenuesPerTopic < 1:
		return fmt.Errorf("synth: VenuesPerTopic %d must be positive", c.VenuesPerTopic)
	case c.TermsPerTopic < c.TermsPerPaper:
		return fmt.Errorf("synth: TermsPerTopic %d below TermsPerPaper %d", c.TermsPerTopic, c.TermsPerPaper)
	case c.MaxPapersPerAuthor < 1:
		return fmt.Errorf("synth: MaxPapersPerAuthor %d must be positive", c.MaxPapersPerAuthor)
	case c.ZipfAlpha <= 0:
		return fmt.Errorf("synth: ZipfAlpha %v must be positive", c.ZipfAlpha)
	case c.StarBoostMin < 0 || c.StarBoostMin > c.MaxPapersPerAuthor:
		return fmt.Errorf("synth: StarBoostMin %d outside [0, MaxPapersPerAuthor]", c.StarBoostMin)
	case c.OffTopicTermProb < 0 || c.OffTopicTermProb > 1:
		return fmt.Errorf("synth: OffTopicTermProb %v outside [0, 1]", c.OffTopicTermProb)
	case c.YearMax < c.YearMin:
		return fmt.Errorf("synth: YearMax %d before YearMin %d", c.YearMax, c.YearMin)
	}
	return nil
}

// AmbiguityGroup records one shared surface name and its member
// entities, ordered as generated.
type AmbiguityGroup struct {
	// Surface is the shared name as it appears in documents, e.g.
	// "Wei Wang". Member objects carry disambiguation suffixes.
	Surface string
	// Members are the author entity IDs sharing the surface name.
	Members []hin.ObjectID
}

// DBLPData is a generated network plus the side information document
// generation and evaluation need.
type DBLPData struct {
	Schema *hin.DBLPSchema
	Graph  *hin.Graph
	// Groups are the ambiguous surface names, in generation order.
	Groups []AmbiguityGroup
	// AuthorTopic maps every author entity to its research topic.
	AuthorTopic map[hin.ObjectID]int
	// PaperCount maps every author entity to its number of papers.
	PaperCount map[hin.ObjectID]int
	// TermWord maps a term object's stem (its graph name) back to a
	// raw word that normalises to it, for rendering document text.
	TermWord map[string]string
	// TopicTerms lists, per topic, the raw words of its vocabulary.
	TopicTerms [][]string
	// SharedWords is the cross-topic vocabulary (raw words).
	SharedWords []string
	// TopicVenues lists, per topic, the venue object IDs.
	TopicVenues [][]hin.ObjectID
}

// GenerateDBLP builds a synthetic DBLP-schema network according to
// cfg. Generation is deterministic in cfg (including Seed).
func GenerateDBLP(cfg DBLPConfig) (*DBLPData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	data := &DBLPData{
		Schema:      d,
		AuthorTopic: make(map[hin.ObjectID]int),
		PaperCount:  make(map[hin.ObjectID]int),
		TermWord:    make(map[string]string),
	}

	// Vocabulary: per-topic words plus a shared pool. Graph term
	// objects are named by the normalised stem of each word so that
	// document ingestion resolves exactly.
	termObjects := make(map[string]hin.ObjectID)
	addTermWord := func(word string) hin.ObjectID {
		stem := textproc.NormalizeTerm(word)
		if stem == "" {
			panic(fmt.Sprintf("synth: word %q normalises to nothing", word))
		}
		id := b.MustAddObject(d.Term, stem)
		if _, seen := termObjects[stem]; !seen {
			termObjects[stem] = id
			data.TermWord[stem] = word
		}
		return id
	}
	data.TopicTerms = make([][]string, cfg.Topics)
	topicTermIDs := make([][]hin.ObjectID, cfg.Topics)
	for t := 0; t < cfg.Topics; t++ {
		for i := 0; i < cfg.TermsPerTopic; i++ {
			word := synthWord(t, i)
			id := addTermWord(word)
			data.TopicTerms[t] = append(data.TopicTerms[t], word)
			topicTermIDs[t] = append(topicTermIDs[t], id)
		}
	}
	var sharedTermIDs []hin.ObjectID
	for i := 0; i < cfg.SharedTerms; i++ {
		word := synthWord(cfg.Topics, i) // pseudo-topic index for shared pool
		id := addTermWord(word)
		data.SharedWords = append(data.SharedWords, word)
		sharedTermIDs = append(sharedTermIDs, id)
	}

	// Venues per topic.
	data.TopicVenues = make([][]hin.ObjectID, cfg.Topics)
	for t := 0; t < cfg.Topics; t++ {
		for i := 0; i < cfg.VenuesPerTopic; i++ {
			data.TopicVenues[t] = append(data.TopicVenues[t], b.MustAddObject(d.Venue, venueName(t, i)))
		}
	}

	// Years.
	years := make([]hin.ObjectID, 0, cfg.YearMax-cfg.YearMin+1)
	for y := cfg.YearMin; y <= cfg.YearMax; y++ {
		years = append(years, b.MustAddObject(d.Year, fmt.Sprintf("%d", y)))
	}

	// Authors. Regular authors draw unique (first, last) pairs;
	// ambiguous groups consume further unique pairs and suffix their
	// members DBLP-style.
	namePairs := rng.Perm(len(firstNames) * len(lastNames))
	need := cfg.RegularAuthors + cfg.AmbiguousGroups
	if need > len(namePairs) {
		return nil, fmt.Errorf("synth: %d distinct names requested but only %d available",
			need, len(namePairs))
	}
	pairName := func(k int) string {
		p := namePairs[k]
		return fullName(p/len(lastNames), p%len(lastNames))
	}

	var authors []hin.ObjectID
	byTopic := make([][]hin.ObjectID, cfg.Topics)
	addAuthor := func(name string, topic int) hin.ObjectID {
		a := b.MustAddObject(d.Author, name)
		data.AuthorTopic[a] = topic
		authors = append(authors, a)
		byTopic[topic] = append(byTopic[topic], a)
		return a
	}
	for k := 0; k < cfg.RegularAuthors; k++ {
		addAuthor(pairName(k), rng.Intn(cfg.Topics))
	}
	stars := make(map[hin.ObjectID]bool)
	for gi := 0; gi < cfg.AmbiguousGroups; gi++ {
		surface := pairName(cfg.RegularAuthors + gi)
		size := cfg.MinGroupSize + rng.Intn(cfg.MaxGroupSize-cfg.MinGroupSize+1)
		group := AmbiguityGroup{Surface: surface}
		for m := 0; m < size; m++ {
			// Spread members across topics so that context is
			// discriminative, but with frequent same-topic collisions:
			// real "Wei Wang"s cluster in a handful of CS areas, and
			// same-area namesakes are exactly the hard cases where
			// fine-grained network evidence (specific venues,
			// coauthors, popularity) must carry the decision.
			topic := (gi + m) % cfg.Topics
			if rng.Float64() < 0.45 {
				topic = (gi + rng.Intn(2)) % cfg.Topics
			}
			a := addAuthor(fmt.Sprintf("%s %04d", surface, m+1), topic)
			group.Members = append(group.Members, a)
			if m == 0 {
				stars[a] = true
			}
		}
		data.Groups = append(data.Groups, group)
	}

	// Papers: Zipfian productivity, topical venues, topical terms and
	// same-topic coauthors.
	paperSeq := 0
	for _, a := range authors {
		topic := data.AuthorTopic[a]
		n := zipfCount(rng, cfg.ZipfAlpha, cfg.MaxPapersPerAuthor)
		if stars[a] && n < cfg.StarBoostMin {
			n = cfg.StarBoostMin + rng.Intn(cfg.MaxPapersPerAuthor-cfg.StarBoostMin+1)
		}
		data.PaperCount[a] += n
		for i := 0; i < n; i++ {
			p := b.MustAddObject(d.Paper, fmt.Sprintf("paper-%07d", paperSeq))
			paperSeq++
			b.MustAddLink(d.Write, a, p)

			// Coauthors from the same topic.
			k := rng.Intn(cfg.MaxCoauthorsPerPaper + 1)
			for c := 0; c < k && len(byTopic[topic]) > 1; c++ {
				co := byTopic[topic][rng.Intn(len(byTopic[topic]))]
				if co != a {
					b.MustAddLink(d.Write, co, p)
					data.PaperCount[co]++
				}
			}

			// Venue: usually in-topic.
			vt := topic
			if rng.Float64() < cfg.OffTopicVenueProb {
				vt = rng.Intn(cfg.Topics)
			}
			venues := data.TopicVenues[vt]
			b.MustAddLink(d.Publish, venues[rng.Intn(len(venues))], p)

			// Terms: mostly in-topic plus one shared word, with
			// occasional off-topic vocabulary.
			for ti := 0; ti < cfg.TermsPerPaper-1; ti++ {
				tt := topic
				if rng.Float64() < cfg.OffTopicTermProb {
					tt = rng.Intn(cfg.Topics)
				}
				b.MustAddLink(d.Contain, p, topicTermIDs[tt][rng.Intn(len(topicTermIDs[tt]))])
			}
			if len(sharedTermIDs) > 0 {
				b.MustAddLink(d.Contain, p, sharedTermIDs[rng.Intn(len(sharedTermIDs))])
			}

			b.MustAddLink(d.PublishedIn, p, years[rng.Intn(len(years))])
		}
	}

	data.Graph = b.Build()
	if err := data.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated graph invalid: %w", err)
	}
	return data, nil
}

// synthWord builds a pronounceable letters-only word unique to
// (pool, i). Words survive Porter stemming to distinct stems because
// the suffix letters vary in the final position.
func synthWord(pool, i int) string {
	stem := topicTermStems[(pool*7+i)%len(topicTermStems)]
	// Consonant-only suffix keeps words letters-only and avoids the
	// stemmer's suffix rules ('s' is excluded so step 1a never fires).
	const alphabet = "bcdfghjklmnpqrtvwxz"
	suffix := []byte{}
	n := pool*1000 + i
	for {
		suffix = append(suffix, alphabet[n%len(alphabet)])
		n /= len(alphabet)
		if n == 0 {
			break
		}
	}
	return stem + string(suffix)
}

// zipfCount draws a paper count in [1, max] from the discrete Pareto
// law P(n ≥ k) = k^-alpha, so P(n = 1) = 1 - 2^-alpha (a majority of
// single-paper authors, as in DBLP).
func zipfCount(rng *rand.Rand, alpha float64, max int) int {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	n := int(math.Floor(math.Pow(u, -1/alpha)))
	if n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}
