package synth

import (
	"fmt"

	"shine/internal/corpus"
)

// Dataset bundles a generated network with its document collection in
// both raw-text and ingested form — everything an experiment needs.
type Dataset struct {
	Data *DBLPData
	// RawDocs are the generated texts, aligned with Corpus.Docs.
	RawDocs []RawDoc
	// Corpus is the ingested document collection with gold labels.
	Corpus *corpus.Corpus
	// Ingester is the pipeline used, reusable for new documents.
	Ingester *corpus.Ingester
}

// BuildDataset generates a network, renders documents and runs the
// full ingestion pipeline over them, yielding a ready-to-link
// dataset. Determinism: equal configs give equal datasets.
func BuildDataset(netCfg DBLPConfig, docCfg DocConfig) (*Dataset, error) {
	data, err := GenerateDBLP(netCfg)
	if err != nil {
		return nil, fmt.Errorf("synth: generating network: %w", err)
	}
	raw, err := GenerateDocs(data, docCfg)
	if err != nil {
		return nil, fmt.Errorf("synth: generating documents: %w", err)
	}
	ing, err := corpus.NewIngester(data.Graph, corpus.DBLPIngestConfig(data.Schema))
	if err != nil {
		return nil, fmt.Errorf("synth: building ingester: %w", err)
	}
	c := &corpus.Corpus{}
	for _, rd := range raw {
		c.Add(ing.Ingest(rd.ID, rd.Mention, rd.Gold, rd.Text))
	}
	return &Dataset{Data: data, RawDocs: raw, Corpus: c, Ingester: ing}, nil
}
