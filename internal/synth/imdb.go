package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/textproc"
)

// IMDBConfig parameterises the synthetic IMDb-schema network used to
// demonstrate the model's schema generality (Section 4 of the paper
// sketches actor linking over IMDb).
type IMDBConfig struct {
	Seed              int64
	RegularActors     int
	AmbiguousGroups   int
	MinGroupSize      int
	MaxGroupSize      int
	Genres            int
	DirectorsPerGenre int
	KeywordsPerGenre  int
	MaxMoviesPerActor int
	KeywordsPerMovie  int
	NumDocs           int
}

// DefaultIMDBConfig returns a small actor-linking scenario.
func DefaultIMDBConfig() IMDBConfig {
	return IMDBConfig{
		Seed:              11,
		RegularActors:     600,
		AmbiguousGroups:   8,
		MinGroupSize:      3,
		MaxGroupSize:      8,
		Genres:            6,
		DirectorsPerGenre: 6,
		KeywordsPerGenre:  30,
		MaxMoviesPerActor: 30,
		KeywordsPerMovie:  4,
		NumDocs:           120,
	}
}

// IMDBData is the generated IMDb network plus document side data.
type IMDBData struct {
	Schema *hin.IMDBSchema
	Graph  *hin.Graph
	Groups []AmbiguityGroup
	// ActorGenre maps each actor to its primary genre.
	ActorGenre map[hin.ObjectID]int
	// MovieCount maps each actor to its number of movies.
	MovieCount map[hin.ObjectID]int
	// KeywordWord maps keyword stems back to raw words.
	KeywordWord map[string]string
	// GenreKeywords lists raw keyword words per genre.
	GenreKeywords [][]string
	// RawDocs and Corpus are the generated actor-mention documents.
	RawDocs []RawDoc
	Corpus  *corpus.Corpus
}

var genreNames = []string{"Action", "Drama", "Comedy", "Thriller", "Horror", "Romance", "Western", "Scifi"}

// GenerateIMDB builds a synthetic IMDb-schema network and an
// actor-mention document collection over it.
func GenerateIMDB(cfg IMDBConfig) (*IMDBData, error) {
	if cfg.RegularActors < 0 || cfg.AmbiguousGroups < 1 || cfg.MinGroupSize < 2 ||
		cfg.MaxGroupSize < cfg.MinGroupSize || cfg.Genres < 1 || cfg.Genres > len(genreNames) ||
		cfg.MaxMoviesPerActor < 1 || cfg.NumDocs < 1 {
		return nil, fmt.Errorf("synth: invalid IMDb config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := hin.NewIMDBSchema()
	b := hin.NewBuilder(m.Schema)
	data := &IMDBData{
		Schema:      m,
		ActorGenre:  make(map[hin.ObjectID]int),
		MovieCount:  make(map[hin.ObjectID]int),
		KeywordWord: make(map[string]string),
	}

	// Genres, directors and keywords.
	genres := make([]hin.ObjectID, cfg.Genres)
	directors := make([][]hin.ObjectID, cfg.Genres)
	keywords := make([][]hin.ObjectID, cfg.Genres)
	data.GenreKeywords = make([][]string, cfg.Genres)
	for gidx := 0; gidx < cfg.Genres; gidx++ {
		genres[gidx] = b.MustAddObject(m.Genre, genreNames[gidx])
		for di := 0; di < cfg.DirectorsPerGenre; di++ {
			directors[gidx] = append(directors[gidx],
				b.MustAddObject(m.Director, fmt.Sprintf("Director %s %d", genreNames[gidx], di)))
		}
		for ki := 0; ki < cfg.KeywordsPerGenre; ki++ {
			word := synthWord(100+gidx, ki)
			stem := textproc.NormalizeTerm(word)
			id := b.MustAddObject(m.Keyword, stem)
			if _, ok := data.KeywordWord[stem]; !ok {
				data.KeywordWord[stem] = word
			}
			keywords[gidx] = append(keywords[gidx], id)
			data.GenreKeywords[gidx] = append(data.GenreKeywords[gidx], word)
		}
	}

	// Actors: unique names plus ambiguous groups.
	namePairs := rng.Perm(len(firstNames) * len(lastNames))
	need := cfg.RegularActors + cfg.AmbiguousGroups
	if need > len(namePairs) {
		return nil, fmt.Errorf("synth: %d actor names requested, %d available", need, len(namePairs))
	}
	pairName := func(k int) string {
		p := namePairs[k]
		return fullName(p/len(lastNames), p%len(lastNames))
	}
	var actors []hin.ObjectID
	byGenre := make([][]hin.ObjectID, cfg.Genres)
	addActor := func(name string, genre int) hin.ObjectID {
		a := b.MustAddObject(m.Actor, name)
		data.ActorGenre[a] = genre
		actors = append(actors, a)
		byGenre[genre] = append(byGenre[genre], a)
		return a
	}
	for k := 0; k < cfg.RegularActors; k++ {
		addActor(pairName(k), rng.Intn(cfg.Genres))
	}
	for gi := 0; gi < cfg.AmbiguousGroups; gi++ {
		surface := pairName(cfg.RegularActors + gi)
		size := cfg.MinGroupSize + rng.Intn(cfg.MaxGroupSize-cfg.MinGroupSize+1)
		grp := AmbiguityGroup{Surface: surface}
		for mi := 0; mi < size; mi++ {
			genre := (gi + mi) % cfg.Genres
			grp.Members = append(grp.Members, addActor(fmt.Sprintf("%s %04d", surface, mi+1), genre))
		}
		data.Groups = append(data.Groups, grp)
	}

	// Movies.
	seq := 0
	for _, a := range actors {
		genre := data.ActorGenre[a]
		n := zipfCount(rng, 1.1, cfg.MaxMoviesPerActor)
		data.MovieCount[a] += n
		for i := 0; i < n; i++ {
			mv := b.MustAddObject(m.Movie, fmt.Sprintf("movie-%06d", seq))
			seq++
			b.MustAddLink(m.Perform, a, mv)
			if k := rng.Intn(3); k > 0 && len(byGenre[genre]) > 1 {
				for c := 0; c < k; c++ {
					co := byGenre[genre][rng.Intn(len(byGenre[genre]))]
					if co != a {
						b.MustAddLink(m.Perform, co, mv)
						data.MovieCount[co]++
					}
				}
			}
			b.MustAddLink(m.BelongTo, mv, genres[genre])
			b.MustAddLink(m.Direct, directors[genre][rng.Intn(len(directors[genre]))], mv)
			for ki := 0; ki < cfg.KeywordsPerMovie; ki++ {
				b.MustAddLink(m.Contain, mv, keywords[genre][rng.Intn(len(keywords[genre]))])
			}
		}
	}
	data.Graph = b.Build()
	if err := data.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated IMDb graph invalid: %w", err)
	}

	if err := generateIMDBDocs(rng, data, cfg); err != nil {
		return nil, err
	}
	return data, nil
}

// generateIMDBDocs renders actor-mention documents and ingests them.
func generateIMDBDocs(rng *rand.Rand, data *IMDBData, cfg IMDBConfig) error {
	var eligible []AmbiguityGroup
	for _, grp := range data.Groups {
		if len(grp.Members) >= 2 {
			eligible = append(eligible, grp)
		}
	}
	if len(eligible) == 0 {
		return fmt.Errorf("synth: no ambiguous actor groups generated")
	}
	g, m := data.Graph, data.Schema

	ing, err := corpus.NewIngester(g, corpus.IMDBIngestConfig(m))
	if err != nil {
		return fmt.Errorf("synth: building IMDb ingester: %w", err)
	}
	c := &corpus.Corpus{}
	for i := 0; i < cfg.NumDocs; i++ {
		grp := eligible[i%len(eligible)]
		// Gold weighted by filmography size.
		total := 0
		for _, mem := range grp.Members {
			total += data.MovieCount[mem]
		}
		gold := grp.Members[0]
		if total > 0 {
			r := rng.Intn(total)
			for _, mem := range grp.Members {
				r -= data.MovieCount[mem]
				if r < 0 {
					gold = mem
					break
				}
			}
		}

		var costars, dirs, words []string
		genreSet := map[string]bool{}
		for _, mv := range g.Neighbors(m.Perform, gold) {
			for _, co := range g.Neighbors(m.PerformedBy, mv) {
				if co != gold {
					costars = append(costars, stripSuffix(g.Name(co)))
				}
			}
			for _, dd := range g.Neighbors(m.DirectedBy, mv) {
				dirs = append(dirs, g.Name(dd))
			}
			for _, gg := range g.Neighbors(m.BelongTo, mv) {
				genreSet[g.Name(gg)] = true
			}
			for _, kw := range g.Neighbors(m.Contain, mv) {
				if w, ok := data.KeywordWord[g.Name(kw)]; ok {
					words = append(words, w)
				}
			}
		}
		genreList := make([]string, 0, len(genreSet))
		for gn := range genreSet {
			genreList = append(genreList, gn)
		}
		sort.Strings(genreList)
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s stars in %s films.", grp.Surface, strings.Join(genreList, " "))
		if len(costars) > 0 && rng.Float64() < 0.8 {
			fmt.Fprintf(&sb, " Frequently cast alongside %s.",
				strings.Join(sampleStrings(rng, costars, 2), " and "))
		}
		if len(dirs) > 0 && rng.Float64() < 0.8 {
			fmt.Fprintf(&sb, " Worked with %s.", strings.Join(sampleStrings(rng, dirs, 2), " and "))
		}
		if len(words) > 0 {
			fmt.Fprintf(&sb, " Reviews mention %s.", strings.Join(sampleStrings(rng, words, 5), ", "))
		}
		rd := RawDoc{
			ID:      fmt.Sprintf("imdb-doc-%04d", i),
			Mention: grp.Surface,
			Gold:    gold,
			Text:    sb.String(),
		}
		data.RawDocs = append(data.RawDocs, rd)
		c.Add(ing.Ingest(rd.ID, rd.Mention, rd.Gold, rd.Text))
	}
	data.Corpus = c
	return nil
}
