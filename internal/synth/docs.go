package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"shine/internal/hin"
)

// DocConfig parameterises Web-document generation. Each document is a
// small homepage-style text about one gold author from an ambiguous
// group: it mentions the shared surface name and mixes the author's
// true neighbourhood (coauthors, venues, title terms, a year) with
// domain noise, at the signal/noise ratio set here.
type DocConfig struct {
	// Seed drives the document sampling, independent of the network
	// seed.
	Seed int64
	// NumDocs is the number of documents (= mentions) to generate.
	NumDocs int
	// MinCandidates restricts gold authors to groups with at least
	// this many members, so every mention is genuinely ambiguous.
	MinCandidates int
	// MaxCoauthors, MaxVenues and Terms bound how much of the gold
	// author's true neighbourhood each document reveals.
	MaxCoauthors, MaxVenues, Terms int
	// NoiseTerms is the number of off-topic or shared vocabulary words
	// mixed in.
	NoiseTerms int
	// CoauthorProb, VenueProb and YearProb are the chances that a
	// document reveals any coauthors, any venues, or the publication
	// year at all; they model how often real homepages contain each
	// signal.
	CoauthorProb, VenueProb, YearProb float64
	// DistractorVenueProb is the chance of naming one venue from a
	// random topic, simulating service on a program committee outside
	// the author's area.
	DistractorVenueProb float64
	// IndirectSignalProb is the chance that a revealed venue or term
	// comes from the gold author's coauthors' papers rather than her
	// own — the kind of evidence only the length-4 meta-paths
	// (A-P-A-P-V, A-P-A-P-T) can relate back to the author.
	IndirectSignalProb float64
	// NILDocs appends this many out-of-network documents: each uses
	// one group's surface name as its mention but renders another
	// author's neighbourhood as context, modelling a namesake the
	// network does not contain. Their gold label is hin.NoObject.
	NILDocs int
}

// DefaultDocConfig mirrors the paper's corpus regime: one mention per
// document, most documents exposing terms and venues, coauthors
// sometimes absent, about 700 documents.
func DefaultDocConfig() DocConfig {
	return DocConfig{
		Seed:                2,
		NumDocs:             700,
		MinCandidates:       3,
		MaxCoauthors:        2,
		MaxVenues:           3,
		Terms:               4,
		NoiseTerms:          9,
		CoauthorProb:        0.45,
		VenueProb:           0.65,
		YearProb:            0.5,
		DistractorVenueProb: 0.4,
		IndirectSignalProb:  0.55,
	}
}

// Validate checks the configuration.
func (c DocConfig) Validate() error {
	switch {
	case c.NumDocs < 1:
		return fmt.Errorf("synth: NumDocs %d must be positive", c.NumDocs)
	case c.MinCandidates < 2:
		return fmt.Errorf("synth: MinCandidates %d must be at least 2", c.MinCandidates)
	case c.Terms < 1:
		return fmt.Errorf("synth: Terms %d must be positive", c.Terms)
	case c.NILDocs < 0:
		return fmt.Errorf("synth: NILDocs %d negative", c.NILDocs)
	}
	for _, p := range []float64{c.CoauthorProb, c.VenueProb, c.YearProb, c.DistractorVenueProb, c.IndirectSignalProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("synth: probability %v outside [0, 1]", p)
		}
	}
	return nil
}

// RawDoc is one generated Web document before ingestion.
type RawDoc struct {
	// ID names the document.
	ID string
	// Mention is the ambiguous surface name the document is about.
	Mention string
	// Gold is the true author entity.
	Gold hin.ObjectID
	// Text is the full document text, pipeline-ready.
	Text string
}

// neighbourhood is what the gold author's network vicinity offers for
// rendering: names are surface forms, terms are raw words.
type neighbourhood struct {
	coauthors []string
	venues    []string
	terms     []string
	years     []string
	// coVenues and coTerms come from the coauthors' own papers — the
	// author's two-hop neighbourhood.
	coVenues []string
	coTerms  []string
}

// authorNeighbourhood walks the gold author's papers and collects the
// renderable neighbourhood, with multiplicity (a venue published in
// six times appears six times, so sampling reflects walk
// probabilities).
func authorNeighbourhood(data *DBLPData, e hin.ObjectID) neighbourhood {
	g, d := data.Graph, data.Schema
	var nb neighbourhood
	seenCo := make(map[hin.ObjectID]bool)
	for _, p := range g.Neighbors(d.Write, e) {
		for _, co := range g.Neighbors(d.WrittenBy, p) {
			if co == e {
				continue
			}
			nb.coauthors = append(nb.coauthors, stripSuffix(g.Name(co)))
			if seenCo[co] {
				continue
			}
			seenCo[co] = true
			// Two-hop signals: what the coauthor publishes.
			for _, cp := range g.Neighbors(d.Write, co) {
				for _, v := range g.Neighbors(d.PublishedAt, cp) {
					nb.coVenues = append(nb.coVenues, g.Name(v))
				}
				for _, t := range g.Neighbors(d.Contain, cp) {
					if w, ok := data.TermWord[g.Name(t)]; ok {
						nb.coTerms = append(nb.coTerms, w)
					}
				}
			}
		}
		for _, v := range g.Neighbors(d.PublishedAt, p) {
			nb.venues = append(nb.venues, g.Name(v))
		}
		for _, t := range g.Neighbors(d.Contain, p) {
			if w, ok := data.TermWord[g.Name(t)]; ok {
				nb.terms = append(nb.terms, w)
			}
		}
		for _, y := range g.Neighbors(d.PublishedIn, p) {
			nb.years = append(nb.years, g.Name(y))
		}
	}
	return nb
}

// stripSuffix removes a DBLP disambiguation suffix for rendering.
func stripSuffix(name string) string {
	fields := strings.Fields(name)
	if n := len(fields); n > 1 {
		last := fields[n-1]
		allDigits := true
		for _, c := range last {
			if c < '0' || c > '9' {
				allDigits = false
				break
			}
		}
		if allDigits {
			fields = fields[:n-1]
		}
	}
	return strings.Join(fields, " ")
}

// GenerateDocs renders cfg.NumDocs documents over the generated
// network. Groups rotate round-robin; within a group the gold member
// is drawn with probability proportional to its paper count, matching
// the popularity bias of search-engine-harvested pages (the paper's
// corpus came from Google queries).
func GenerateDocs(data *DBLPData, cfg DocConfig) ([]RawDoc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var eligible []AmbiguityGroup
	for _, grp := range data.Groups {
		if len(grp.Members) >= cfg.MinCandidates {
			eligible = append(eligible, grp)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("synth: no ambiguity group has %d or more members", cfg.MinCandidates)
	}
	if cfg.NILDocs > 0 && len(eligible) < 2 {
		return nil, fmt.Errorf("synth: NIL documents need at least two eligible groups, have %d", len(eligible))
	}

	docs := make([]RawDoc, 0, cfg.NumDocs+cfg.NILDocs)
	for i := 0; i < cfg.NumDocs; i++ {
		grp := eligible[i%len(eligible)]
		gold := weightedMember(rng, data, grp)
		nb := authorNeighbourhood(data, gold)
		text := renderDoc(rng, data, grp.Surface, gold, nb, cfg)
		docs = append(docs, RawDoc{
			ID:      fmt.Sprintf("doc-%05d", i),
			Mention: grp.Surface,
			Gold:    gold,
			Text:    text,
		})
	}
	// Out-of-network documents: one group's surface name over another
	// author's world. The true referent ("the third Wei Wang") has no
	// entity record, so gold is NIL.
	for i := 0; i < cfg.NILDocs; i++ {
		grp := eligible[i%len(eligible)]
		other := eligible[(i+1)%len(eligible)]
		impostor := weightedMember(rng, data, other)
		nb := authorNeighbourhood(data, impostor)
		text := renderDoc(rng, data, grp.Surface, impostor, nb, cfg)
		docs = append(docs, RawDoc{
			ID:      fmt.Sprintf("nildoc-%05d", i),
			Mention: grp.Surface,
			Gold:    hin.NoObject,
			Text:    text,
		})
	}
	return docs, nil
}

// weightedMember draws a group member with probability proportional
// to its paper count.
func weightedMember(rng *rand.Rand, data *DBLPData, grp AmbiguityGroup) hin.ObjectID {
	total := 0
	for _, m := range grp.Members {
		total += data.PaperCount[m]
	}
	if total == 0 {
		return grp.Members[rng.Intn(len(grp.Members))]
	}
	r := rng.Intn(total)
	for _, m := range grp.Members {
		r -= data.PaperCount[m]
		if r < 0 {
			return m
		}
	}
	return grp.Members[len(grp.Members)-1]
}

// renderDoc assembles the document text.
func renderDoc(rng *rand.Rand, data *DBLPData, surface string, gold hin.ObjectID, nb neighbourhood, cfg DocConfig) string {
	var b strings.Builder
	topic := data.AuthorTopic[gold]
	fmt.Fprintf(&b, "%s is a researcher working on %s problems.", surface, topicNames[topic%len(topicNames)])

	if len(nb.coauthors) > 0 && rng.Float64() < cfg.CoauthorProb {
		names := sampleStrings(rng, nb.coauthors, cfg.MaxCoauthors)
		fmt.Fprintf(&b, " Collaborators include %s.", strings.Join(names, ", "))
	}
	if len(nb.venues) > 0 && rng.Float64() < cfg.VenueProb {
		venues := sampleMixed(rng, nb.venues, nb.coVenues, cfg.MaxVenues, cfg.IndirectSignalProb)
		fmt.Fprintf(&b, " %s has published at %s.", surface, strings.Join(venues, ", "))
	}
	if len(nb.years) > 0 && rng.Float64() < cfg.YearProb {
		fmt.Fprintf(&b, " A representative paper appeared in %s.", nb.years[rng.Intn(len(nb.years))])
	}
	if len(nb.terms) > 0 {
		words := sampleMixed(rng, nb.terms, nb.coTerms, cfg.Terms, cfg.IndirectSignalProb)
		fmt.Fprintf(&b, " Research interests span %s.", strings.Join(words, ", "))
	}

	// Noise: shared vocabulary and off-topic words.
	var noise []string
	for n := 0; n < cfg.NoiseTerms; n++ {
		if len(data.SharedWords) > 0 && rng.Float64() < 0.5 {
			noise = append(noise, data.SharedWords[rng.Intn(len(data.SharedWords))])
		} else {
			t := rng.Intn(len(data.TopicTerms))
			noise = append(noise, data.TopicTerms[t][rng.Intn(len(data.TopicTerms[t]))])
		}
	}
	if len(noise) > 0 {
		fmt.Fprintf(&b, " The page also mentions %s.", strings.Join(noise, ", "))
	}
	if rng.Float64() < cfg.DistractorVenueProb {
		t := rng.Intn(len(data.TopicVenues))
		vs := data.TopicVenues[t]
		fmt.Fprintf(&b, " %s served on the committee of %s.",
			surface, data.Graph.Name(vs[rng.Intn(len(vs))]))
	}
	return b.String()
}

// sampleMixed draws up to k distinct values, each draw taken from the
// indirect pool with probability indirectProb (falling back to the
// direct pool when the indirect one is empty).
func sampleMixed(rng *rand.Rand, direct, indirect []string, k int, indirectProb float64) []string {
	if k <= 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for tries := 0; tries < 8*k && len(out) < k; tries++ {
		pool := direct
		if len(indirect) > 0 && rng.Float64() < indirectProb {
			pool = indirect
		}
		if len(pool) == 0 {
			break
		}
		s := pool[rng.Intn(len(pool))]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	if len(out) > 1 {
		sort.Strings(out[1:])
	}
	return out
}

// sampleStrings draws up to k distinct values from pool (which may
// contain repeats; draws are by occurrence, so frequent values are
// favoured). The result preserves first-draw order.
func sampleStrings(rng *rand.Rand, pool []string, k int) []string {
	if k <= 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	// Bounded draws to avoid spinning when distinct values < k.
	for tries := 0; tries < 8*k && len(out) < k; tries++ {
		s := pool[rng.Intn(len(pool))]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out[1:]) // deterministic rendering apart from the lead value
	return out
}
