package synth

import (
	"testing"

	"shine/internal/metapath"
	"shine/internal/shine"
)

// TestScaleEndToEnd exercises a network an order of magnitude larger
// than the default experiments: generation, ingestion, learning and
// linking must stay correct (and finish) at ~10k authors. Skipped in
// -short mode.
func TestScaleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	net := DefaultDBLPConfig()
	net.RegularAuthors = 2300 // near the name-pool limit
	net.AmbiguousGroups = 40
	net.MaxGroupSize = 20
	net.Topics = 12
	doc := DefaultDocConfig()
	doc.NumDocs = 300

	ds, err := BuildDataset(net, doc)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	st := ds.Data.Graph.Stats()
	if st.Objects < 10_000 {
		t.Fatalf("scale dataset too small: %d objects", st.Objects)
	}
	if err := ds.Data.Graph.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	d := ds.Data.Schema
	m, err := shine.New(ds.Data.Graph, d.Author, metapath.DBLPPaperPaths(d), ds.Corpus, shine.DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stats, err := m.Learn(ds.Corpus)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if stats.EMIterations < 1 {
		t.Fatal("no EM iterations")
	}
	correct := 0
	for _, docu := range ds.Corpus.Docs {
		r, err := m.Link(docu)
		if err != nil {
			t.Fatalf("Link: %v", err)
		}
		if r.Entity == docu.Gold {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Corpus.Len())
	if acc < 0.6 {
		t.Errorf("scale accuracy %.3f below 0.6", acc)
	}
	t.Logf("scale run: %d objects, %d links, accuracy %.3f, %d EM iterations",
		st.Objects, st.Links, acc, stats.EMIterations)
}
