package synth

import (
	"math/rand"
	"strings"
	"testing"

	"shine/internal/hin"
	"shine/internal/namematch"
	"shine/internal/textproc"
)

// smallDBLPConfig keeps unit-test generation fast.
func smallDBLPConfig() DBLPConfig {
	cfg := DefaultDBLPConfig()
	cfg.RegularAuthors = 150
	cfg.AmbiguousGroups = 5
	cfg.Topics = 4
	cfg.MaxPapersPerAuthor = 20
	cfg.StarBoostMin = 10
	return cfg
}

func TestGenerateDBLPShape(t *testing.T) {
	cfg := smallDBLPConfig()
	data, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	st := data.Graph.Stats()
	wantAuthors := cfg.RegularAuthors
	for _, grp := range data.Groups {
		wantAuthors += len(grp.Members)
	}
	if st.ObjectsByTyp["author"] != wantAuthors {
		t.Errorf("authors = %d, want %d", st.ObjectsByTyp["author"], wantAuthors)
	}
	if st.ObjectsByTyp["venue"] != cfg.Topics*cfg.VenuesPerTopic {
		t.Errorf("venues = %d, want %d", st.ObjectsByTyp["venue"], cfg.Topics*cfg.VenuesPerTopic)
	}
	if st.ObjectsByTyp["year"] != cfg.YearMax-cfg.YearMin+1 {
		t.Errorf("years = %d", st.ObjectsByTyp["year"])
	}
	if st.ObjectsByTyp["paper"] == 0 {
		t.Error("no papers generated")
	}
	if len(data.Groups) != cfg.AmbiguousGroups {
		t.Errorf("groups = %d, want %d", len(data.Groups), cfg.AmbiguousGroups)
	}
	for _, grp := range data.Groups {
		if len(grp.Members) < cfg.MinGroupSize || len(grp.Members) > cfg.MaxGroupSize {
			t.Errorf("group %q has %d members, want [%d, %d]",
				grp.Surface, len(grp.Members), cfg.MinGroupSize, cfg.MaxGroupSize)
		}
	}
}

func TestGenerateDBLPDeterministic(t *testing.T) {
	cfg := smallDBLPConfig()
	d1, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Graph.NumObjects() != d2.Graph.NumObjects() || d1.Graph.NumLinks() != d2.Graph.NumLinks() {
		t.Fatalf("same seed gave different graphs: %d/%d objects, %d/%d links",
			d1.Graph.NumObjects(), d2.Graph.NumObjects(), d1.Graph.NumLinks(), d2.Graph.NumLinks())
	}
	for v := 0; v < d1.Graph.NumObjects(); v++ {
		if d1.Graph.Name(hin.ObjectID(v)) != d2.Graph.Name(hin.ObjectID(v)) {
			t.Fatalf("object %d named %q vs %q", v, d1.Graph.Name(hin.ObjectID(v)), d2.Graph.Name(hin.ObjectID(v)))
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	d3, err := GenerateDBLP(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Graph.NumLinks() == d1.Graph.NumLinks() && d3.Graph.NumObjects() == d1.Graph.NumObjects() {
		// Extremely unlikely if the seed actually matters; check one
		// name to be sure structure differs somewhere.
		same := true
		for v := 0; v < d1.Graph.NumObjects() && same; v++ {
			same = d1.Graph.Name(hin.ObjectID(v)) == d3.Graph.Name(hin.ObjectID(v))
		}
		if same {
			t.Error("different seeds gave identical graphs")
		}
	}
}

func TestGenerateDBLPAmbiguousNamesResolvable(t *testing.T) {
	data, err := GenerateDBLP(smallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := namematch.BuildIndex(data.Graph, data.Schema.Author)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range data.Groups {
		cands := idx.Candidates(grp.Surface)
		if len(cands) != len(grp.Members) {
			t.Errorf("surface %q resolves to %d candidates, group has %d members",
				grp.Surface, len(cands), len(grp.Members))
		}
	}
}

func TestGenerateDBLPTermWordsRoundTrip(t *testing.T) {
	data, err := GenerateDBLP(smallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.TermWord) == 0 {
		t.Fatal("no term words recorded")
	}
	for stem, word := range data.TermWord {
		if got := textproc.NormalizeTerm(word); got != stem {
			t.Errorf("TermWord[%q] = %q normalises to %q", stem, word, got)
		}
		if _, ok := data.Graph.Lookup(data.Schema.Term, stem); !ok {
			t.Errorf("stem %q has no term object", stem)
		}
	}
}

func TestGenerateDBLPConfigValidation(t *testing.T) {
	bad := []func(*DBLPConfig){
		func(c *DBLPConfig) { c.RegularAuthors = -1 },
		func(c *DBLPConfig) { c.AmbiguousGroups = 0 },
		func(c *DBLPConfig) { c.MinGroupSize = 1 },
		func(c *DBLPConfig) { c.MaxGroupSize = c.MinGroupSize - 1 },
		func(c *DBLPConfig) { c.Topics = 0 },
		func(c *DBLPConfig) { c.TermsPerTopic = 2 },
		func(c *DBLPConfig) { c.YearMax = c.YearMin - 1 },
		func(c *DBLPConfig) { c.ZipfAlpha = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultDBLPConfig()
		mutate(&cfg)
		if _, err := GenerateDBLP(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Too many names requested.
	cfg := DefaultDBLPConfig()
	cfg.RegularAuthors = 1_000_000
	if _, err := GenerateDBLP(cfg); err == nil {
		t.Error("impossible author count accepted")
	}
}

func TestZipfCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ones := 0
	for i := 0; i < 5000; i++ {
		n := zipfCount(rng, 1.15, 60)
		if n < 1 || n > 60 {
			t.Fatalf("zipfCount out of range: %d", n)
		}
		if n == 1 {
			ones++
		}
	}
	// A Zipf-like productivity law has a majority of single-paper
	// authors (in DBLP well over half).
	if ones < 2500 {
		t.Errorf("only %d/5000 single-paper draws; distribution not skewed", ones)
	}
}

func TestGenerateDocs(t *testing.T) {
	data, err := GenerateDBLP(smallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDocConfig()
	cfg.NumDocs = 40
	docs, err := GenerateDocs(data, cfg)
	if err != nil {
		t.Fatalf("GenerateDocs: %v", err)
	}
	if len(docs) != 40 {
		t.Fatalf("got %d docs", len(docs))
	}
	memberOf := make(map[hin.ObjectID]string)
	for _, grp := range data.Groups {
		for _, m := range grp.Members {
			memberOf[m] = grp.Surface
		}
	}
	for _, doc := range docs {
		if !strings.Contains(doc.Text, doc.Mention) {
			t.Errorf("doc %s text does not contain its mention %q", doc.ID, doc.Mention)
		}
		if memberOf[doc.Gold] != doc.Mention {
			t.Errorf("doc %s gold %d is not a member of group %q", doc.ID, doc.Gold, doc.Mention)
		}
	}
}

func TestGenerateDocsValidation(t *testing.T) {
	data, err := GenerateDBLP(smallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDocConfig()
	cfg.NumDocs = 0
	if _, err := GenerateDocs(data, cfg); err == nil {
		t.Error("zero docs accepted")
	}
	cfg = DefaultDocConfig()
	cfg.MinCandidates = 1000
	if _, err := GenerateDocs(data, cfg); err == nil {
		t.Error("unsatisfiable MinCandidates accepted")
	}
	cfg = DefaultDocConfig()
	cfg.CoauthorProb = 1.5
	if _, err := GenerateDocs(data, cfg); err == nil {
		t.Error("probability above 1 accepted")
	}
}

func TestBuildDatasetIngestsGoldSignals(t *testing.T) {
	netCfg := smallDBLPConfig()
	docCfg := DefaultDocConfig()
	docCfg.NumDocs = 30
	ds, err := BuildDataset(netCfg, docCfg)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	if ds.Corpus.Len() != 30 || len(ds.RawDocs) != 30 {
		t.Fatalf("corpus %d docs, raw %d", ds.Corpus.Len(), len(ds.RawDocs))
	}
	// Ingested documents must carry typed objects: at least terms in
	// every document (Terms sentence is unconditional).
	empty := 0
	for _, doc := range ds.Corpus.Docs {
		if doc.TotalCount() == 0 {
			empty++
		}
	}
	if empty > 0 {
		t.Errorf("%d of %d ingested documents have no objects", empty, ds.Corpus.Len())
	}
}

func TestGenerateIMDB(t *testing.T) {
	cfg := DefaultIMDBConfig()
	cfg.RegularActors = 100
	cfg.NumDocs = 20
	data, err := GenerateIMDB(cfg)
	if err != nil {
		t.Fatalf("GenerateIMDB: %v", err)
	}
	st := data.Graph.Stats()
	if st.ObjectsByTyp["genre"] != cfg.Genres {
		t.Errorf("genres = %d", st.ObjectsByTyp["genre"])
	}
	if st.ObjectsByTyp["movie"] == 0 {
		t.Error("no movies generated")
	}
	if len(data.RawDocs) != 20 || data.Corpus.Len() != 20 {
		t.Fatalf("docs = %d raw, %d ingested", len(data.RawDocs), data.Corpus.Len())
	}
	for _, doc := range data.Corpus.Docs {
		if doc.Gold == hin.NoObject {
			t.Error("IMDb doc without gold label")
		}
	}
	if _, err := GenerateIMDB(IMDBConfig{}); err == nil {
		t.Error("zero-value IMDb config accepted")
	}
}

func TestGenerateDocsNIL(t *testing.T) {
	data, err := GenerateDBLP(smallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDocConfig()
	cfg.NumDocs = 20
	cfg.NILDocs = 10
	docs, err := GenerateDocs(data, cfg)
	if err != nil {
		t.Fatalf("GenerateDocs: %v", err)
	}
	if len(docs) != 30 {
		t.Fatalf("got %d docs, want 30", len(docs))
	}
	nils := 0
	memberOf := make(map[hin.ObjectID]string)
	for _, grp := range data.Groups {
		for _, m := range grp.Members {
			memberOf[m] = grp.Surface
		}
	}
	for _, doc := range docs[20:] {
		if doc.Gold != hin.NoObject {
			t.Errorf("NIL doc %s has gold %d", doc.ID, doc.Gold)
			continue
		}
		nils++
		if !strings.Contains(doc.Text, doc.Mention) {
			t.Errorf("NIL doc %s text missing mention", doc.ID)
		}
	}
	if nils != 10 {
		t.Errorf("nils = %d", nils)
	}
	// Negative count rejected.
	cfg.NILDocs = -1
	if _, err := GenerateDocs(data, cfg); err == nil {
		t.Error("negative NILDocs accepted")
	}
}
