package surftrie

import (
	"testing"

	"shine/internal/namematch"
)

func TestFold(t *testing.T) {
	cases := map[string]string{
		"wang":         "wang", // pure ASCII passes through
		"garcía":       "garcia",
		"garcía-lópez": "garcialopez",
		"o'brien":      "obrien",
		"o’brien":      "obrien", // typographic apostrophe
		"müller":       "muller",
		"žižek":        "zizek",
		"næss":         "naess", // multi-character expansion
		"straße":       "strasse",
		"jean-pierre":  "jeanpierre",
		"nguyễn":       "nguyễn", // outside the Latin fold tables: passes through
		"":             "",
	}
	for in, want := range cases {
		if got := fold(in); got != want {
			t.Errorf("fold(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFoldKey(t *testing.T) {
	n := namematch.Parse("José García-López")
	if got, want := keyOf(n), "garcía-lópez\x00josé"; got != want {
		t.Errorf("keyOf = %q, want %q", got, want)
	}
	if got, want := foldKey(n), "garcialopez\x00jose"; got != want {
		t.Errorf("foldKey = %q, want %q", got, want)
	}
	// ASCII names fold to themselves, so no alias key is inserted.
	plain := namematch.Parse("Wei Wang")
	if keyOf(plain) != foldKey(plain) {
		t.Errorf("ASCII name folded: keyOf=%q foldKey=%q", keyOf(plain), foldKey(plain))
	}
}

func TestFoldRuneDrops(t *testing.T) {
	for _, r := range []rune{'-', '\'', '’', '.'} {
		if _, ok := foldRune(r); ok {
			t.Errorf("foldRune(%q) kept, want dropped", r)
		}
	}
	if f, ok := foldRune('æ'); !ok || f != "ae" {
		t.Errorf("foldRune(æ) = %q, %v", f, ok)
	}
	if f, ok := foldRune('x'); !ok || f != "x" {
		t.Errorf("foldRune(x) = %q, %v", f, ok)
	}
}
