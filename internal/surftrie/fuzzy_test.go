package surftrie

import (
	"math/rand"
	"slices"
	"testing"

	"shine/internal/hin"
	"shine/internal/namematch"
)

// levRunes is the independent rune-level Levenshtein oracle: the full
// (m+1)×(n+1) matrix, no trie, no pruning. The fuzzy walk is held
// against it exactly.
func levRunes(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if v := prev[j] + 1; v < d {
				d = v
			}
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func TestLevRunesOracle(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"abc", "xabc", 1},
		{"kitten", "sitting", 3},
		{"zoé", "zoè", 1}, // one rune edit, not two byte edits
		{"", "ab", 2},
	}
	for _, c := range cases {
		if got := levRunes(c.a, c.b); got != c.want {
			t.Errorf("levRunes(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// storedKeys returns the keys an entity's parsed name is indexed
// under: the canonical key, plus the folded alias when different —
// mirroring Build's insertions.
func storedKeys(n namematch.Name) []string {
	k := keyOf(n)
	if fk := foldKey(n); fk != k {
		return []string{k, fk}
	}
	return []string{k}
}

// buildFuzzFixture assembles a compact corpus dense in near-miss pairs
// (one-edit last names, diacritic variants, shared folded keys) so
// small distances actually discriminate.
func buildFuzzFixture(t testing.TB) (*hin.DBLPSchema, *hin.Graph, *Trie) {
	t.Helper()
	names := []string{
		"Wei Wang 0001", "Wei Wang 0002", "Wei Wing", "Wei Wong",
		"Wei Zhang", "Lei Wang", "Wen Wang", "W. Wang",
		"Richard R. Muntz", "Richard Munts", "Rachel Muntz",
		"José García", "Jose Garcia", "José García-López",
		"Mia Zoé", "Mia Zoè", "Mia Zoe",
		"Björn Müller", "Bjorn Muller", "Bjørn Moller",
		"Sø O'Brien", "So Obrien", "Michael Jeffrey Jordan",
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 120; i++ {
		names = append(names, genFuzzName(rng))
	}
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	for _, n := range names {
		b.MustAddObject(d.Author, n)
	}
	g := b.Build()
	trie, err := Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	return d, g, trie
}

func genFuzzName(rng *rand.Rand) string {
	firsts := []string{"wei", "wai", "wel", "jo", "joe", "zoé", "maría", "maria", "bo"}
	lasts := []string{"wang", "wanh", "wag", "garcía", "garcia", "garzia", "müller", "muler", "li", "lì"}
	return firsts[rng.Intn(len(firsts))] + " " + lasts[rng.Intn(len(lasts))]
}

// TestFuzzyOracle proves the walk equals the definition: an entity is
// returned at distance d exactly when one of its stored keys is within
// d rune edits of the mention's canonical or folded key.
func TestFuzzyOracle(t *testing.T) {
	d, g, trie := buildFuzzFixture(t)
	entities := g.ObjectsOfType(d.Author)
	type indexed struct {
		entity hin.ObjectID
		keys   []string
	}
	var all []indexed
	for _, e := range entities {
		n := namematch.Parse(g.Name(e))
		if n.IsEmpty() {
			continue
		}
		all = append(all, indexed{entity: e, keys: storedKeys(n)})
	}
	brute := func(mention string, dist int) []hin.ObjectID {
		n := namematch.Parse(mention)
		if n.IsEmpty() {
			return nil
		}
		patterns := storedKeys(n) // same key derivation as the lookup side
		var out []hin.ObjectID
		for _, ix := range all {
			found := false
			for _, p := range patterns {
				for _, k := range ix.keys {
					if levRunes(p, k) <= dist {
						found = true
					}
				}
			}
			if found {
				out = append(out, ix.entity)
			}
		}
		return sortDedup(out)
	}

	rng := rand.New(rand.NewSource(23))
	mentions := []string{
		"Wei Wang", "Wei Wnag", "We Wang", "Wei Wangg", "Wie Wang",
		"José García", "Jose Garcia", "Mia Zoé", "Mia Zoe", "Mla Zoé",
		"Richard Muntz", "Richar Muntz", "Björn Müller", "Bjorn Muller",
		"Nobody Atall", "Wang", "W Wang",
	}
	for i := 0; i < 150; i++ {
		m := genFuzzName(rng)
		if rng.Intn(2) == 0 {
			b := []byte(m)
			b[rng.Intn(len(b))] = byte('a' + rng.Intn(26))
			m = string(b)
		}
		mentions = append(mentions, m)
	}
	for _, m := range mentions {
		for dist := 0; dist <= MaxDistance; dist++ {
			got := trie.FuzzyCandidates(m, dist)
			want := brute(m, dist)
			if !slices.Equal(got, want) {
				t.Errorf("FuzzyCandidates(%q, %d) = %v, want %v", m, dist, got, want)
			}
		}
	}
}

// TestFuzzyMidRuneBranch pins the path-compression edge case: "zoé"
// and "zoè" share the first byte of their final rune, so the trie
// branches in the middle of a UTF-8 sequence and the DP must reassemble
// the rune across the edge boundary.
func TestFuzzyMidRuneBranch(t *testing.T) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	e1 := b.MustAddObject(d.Author, "Mia Zoé")
	e2 := b.MustAddObject(d.Author, "Mia Zoè")
	g := b.Build()
	trie, err := Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	got := trie.FuzzyCandidates("Mia Zoé", 1)
	want := sortDedup([]hin.ObjectID{e1, e2})
	if !slices.Equal(got, want) {
		t.Errorf("FuzzyCandidates(Mia Zoé, 1) = %v, want %v", got, want)
	}
}

func TestFuzzyClampsDistance(t *testing.T) {
	_, _, trie := buildFuzzFixture(t)
	if got, want := trie.FuzzyCandidates("Wei Wang", -5), trie.FuzzyCandidates("Wei Wang", 0); !slices.Equal(got, want) {
		t.Errorf("negative distance not clamped to 0: %v vs %v", got, want)
	}
	if got, want := trie.FuzzyCandidates("Wei Wang", 99), trie.FuzzyCandidates("Wei Wang", MaxDistance); !slices.Equal(got, want) {
		t.Errorf("oversized distance not clamped to MaxDistance: %v vs %v", got, want)
	}
	if got := trie.FuzzyCandidates("", 2); got != nil {
		t.Errorf("FuzzyCandidates(empty) = %v", got)
	}
}
