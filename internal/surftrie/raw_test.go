package surftrie_test

import (
	"reflect"
	"slices"
	"testing"

	"shine/internal/hin"
	"shine/internal/surftrie"
)

func rawFixture(t testing.TB) (*hin.DBLPSchema, *hin.Graph, *surftrie.Trie) {
	t.Helper()
	d, g := buildAuthorGraph(t,
		"Wei Wang 0001", "Wei Wang 0002", "Richard R. Muntz",
		"José García-López", "Mia Zoé", "Lei Wang",
	)
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	return d, g, trie
}

func cloneRaw(r surftrie.Raw) surftrie.Raw {
	return surftrie.Raw{
		Labels:   slices.Clone(r.Labels),
		LabelLo:  slices.Clone(r.LabelLo),
		ChildLo:  slices.Clone(r.ChildLo),
		EntryLo:  slices.Clone(r.EntryLo),
		Refs:     slices.Clone(r.Refs),
		Entities: slices.Clone(r.Entities),
		Keys:     r.Keys,
	}
}

// TestRawRoundTrip: Raw → FromRaw must reproduce the trie exactly —
// the same wire arrays and the same candidate lists in every mode.
func TestRawRoundTrip(t *testing.T) {
	d, g, trie := rawFixture(t)
	restored, err := surftrie.FromRaw(trie.Raw(), g, d.Author)
	if err != nil {
		t.Fatalf("FromRaw: %v", err)
	}
	if !reflect.DeepEqual(trie.Raw(), restored.Raw()) {
		t.Error("restored trie has different wire arrays")
	}
	if trie.Stats() != restored.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", trie.Stats(), restored.Stats())
	}
	for _, m := range []string{
		"Wei Wang", "wang, wei 0001", "W. Wang", "Richard Muntz",
		"José García-López", "Jose Garcia Lopez", "Mia Zoé", "Mia Zoè", "Nobody",
	} {
		if a, b := trie.Candidates(m), restored.Candidates(m); !slices.Equal(a, b) {
			t.Errorf("Candidates(%q): %v vs %v after round trip", m, a, b)
		}
		if a, b := trie.LooseCandidates(m), restored.LooseCandidates(m); !slices.Equal(a, b) {
			t.Errorf("LooseCandidates(%q): %v vs %v after round trip", m, a, b)
		}
		for dist := 0; dist <= surftrie.MaxDistance; dist++ {
			if a, b := trie.FuzzyCandidates(m, dist), restored.FuzzyCandidates(m, dist); !slices.Equal(a, b) {
				t.Errorf("FuzzyCandidates(%q, %d): %v vs %v after round trip", m, dist, a, b)
			}
		}
	}
}

// TestFromRawRejects feeds FromRaw one violated invariant at a time —
// the decoder of a hostile snapshot section must error on each, never
// panic.
func TestFromRawRejects(t *testing.T) {
	d, g, trie := rawFixture(t)
	valid := trie.Raw()
	if _, err := surftrie.FromRaw(cloneRaw(valid), g, d.Author); err != nil {
		t.Fatalf("valid raw rejected: %v", err)
	}
	nodes := len(valid.LabelLo) - 1

	// An author whose name is all digits parses to nothing; Build never
	// indexes it, so a raw entry referencing it is stale.
	db := hin.NewBuilderFromGraph(g)
	unparseable := db.MustAddObject(d.Author, "0042")
	gPlus := db.Build()

	cases := map[string]func(r *surftrie.Raw){
		"no nodes":          func(r *surftrie.Raw) { r.LabelLo = r.LabelLo[:1] },
		"childLo too short": func(r *surftrie.Raw) { r.ChildLo = r.ChildLo[:nodes] },
		"entryLo too short": func(r *surftrie.Raw) { r.EntryLo = r.EntryLo[:nodes] },
		"labelLo decreasing": func(r *surftrie.Raw) {
			r.LabelLo[1], r.LabelLo[2] = r.LabelLo[2]+1, r.LabelLo[1]
		},
		"labelLo exceeds labels": func(r *surftrie.Raw) { r.LabelLo[nodes] = uint32(len(r.Labels)) + 8 },
		"labelLo does not span":  func(r *surftrie.Raw) { r.Labels = append(r.Labels, 'x') },
		"entryLo does not span":  func(r *surftrie.Raw) { r.Refs = append(r.Refs, 0) },
		"childLo root not 1":     func(r *surftrie.Raw) { r.ChildLo[0] = 0 },
		"childLo does not span":  func(r *surftrie.Raw) { r.ChildLo[nodes] = uint32(nodes) - 1 },
		"ref out of range":       func(r *surftrie.Raw) { r.Refs[0] = uint32(len(r.Entities)) << 1 },
		"entity out of range":    func(r *surftrie.Raw) { r.Entities[0] = int32(g.NumObjects()) },
		"entity negative":        func(r *surftrie.Raw) { r.Entities[0] = -1 },
	}
	for name, mutate := range cases {
		r := cloneRaw(valid)
		mutate(&r)
		if _, err := surftrie.FromRaw(r, g, d.Author); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Wrong entity type: every entry points at an author, so decoding
	// against the venue type must fail.
	if _, err := surftrie.FromRaw(cloneRaw(valid), g, d.Venue); err == nil {
		t.Error("wrong entity type accepted")
	}
	// Stale entry: references an object whose name no longer parses.
	r := cloneRaw(valid)
	r.Entities[0] = int32(unparseable)
	if _, err := surftrie.FromRaw(r, gPlus, d.Author); err == nil {
		t.Error("entry with unparseable name accepted")
	}
}

// TestFromRawRejectsCycle crafts a structurally well-offset trie whose
// child range points backwards — the cycle FromRaw's forward-range
// check exists to rule out.
func TestFromRawRejectsCycle(t *testing.T) {
	d, g := buildAuthorGraph(t, "A B", "C D")
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	r := cloneRaw(trie.Raw())
	nodes := len(r.LabelLo) - 1
	if nodes != 3 {
		t.Fatalf("fixture has %d nodes, want 3 (root + two leaves)", nodes)
	}
	// Node 1 claiming children [1, 3) includes itself: monotone and
	// spanning, but not strictly forward.
	r.ChildLo = []uint32{1, 1, 3, 3}
	if _, err := surftrie.FromRaw(r, g, d.Author); err == nil {
		t.Error("backward child range (cycle) accepted")
	}
}

// TestFromRawRejectsUnsortedSiblings breaks the sibling ordering that
// findChild's binary search depends on.
func TestFromRawRejectsUnsortedSiblings(t *testing.T) {
	d, g := buildAuthorGraph(t, "A B", "C D")
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	r := cloneRaw(trie.Raw())
	// The two leaf edges spell "b\x00a" and "d\x00c"; swapping their
	// first bytes makes the root's children descend.
	r.Labels[r.LabelLo[1]], r.Labels[r.LabelLo[2]] = r.Labels[r.LabelLo[2]], r.Labels[r.LabelLo[1]]
	if _, err := surftrie.FromRaw(r, g, d.Author); err == nil {
		t.Error("unsorted siblings accepted")
	}
}

// TestFromRawRejectsEmptyEdge gives a non-root node an empty label.
func TestFromRawRejectsEmptyEdge(t *testing.T) {
	d, g := buildAuthorGraph(t, "A B", "C D")
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	r := cloneRaw(trie.Raw())
	r.LabelLo[1] = r.LabelLo[2] // node 1's label collapses to nothing
	if _, err := surftrie.FromRaw(r, g, d.Author); err == nil {
		t.Error("empty edge label accepted")
	}
}
