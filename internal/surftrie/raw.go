package surftrie

import (
	"fmt"

	"shine/internal/hin"
	"shine/internal/namematch"
)

// Raw is the flat wire representation of a frozen trie: exactly the
// five arrays plus the entity list, everything else reconstructible.
// Entry names are NOT serialised — they re-parse deterministically
// from the graph's symbol table at restore time, which keeps the
// snapshot section small and makes a stale section (entities moved or
// renamed) detectable by FromRaw.
type Raw struct {
	Labels   []byte
	LabelLo  []uint32
	ChildLo  []uint32
	EntryLo  []uint32
	Refs     []uint32
	Entities []int32
	Keys     uint32
}

// Raw returns the trie's wire representation. The slices alias the
// trie's internal arrays and must not be mutated.
func (t *Trie) Raw() Raw {
	ents := make([]int32, len(t.entries))
	for i := range t.entries {
		ents[i] = int32(t.entries[i].entity)
	}
	return Raw{
		Labels:   t.labels,
		LabelLo:  t.labelLo,
		ChildLo:  t.childLo,
		EntryLo:  t.entryLo,
		Refs:     t.refs,
		Entities: ents,
		Keys:     uint32(t.keys),
	}
}

// FromRaw validates a wire representation against the graph it claims
// to index and reassembles the trie. Input may be hostile (a corrupt
// or crafted snapshot section): every structural invariant is checked
// — monotone offset arrays, in-bounds indices, strictly-forward child
// ranges so the node graph cannot contain cycles — and violations
// return an error, never a panic or an unbounded allocation. Entry
// names are re-parsed from g, so a trie restored from a snapshot is
// structurally identical to the one that was written.
func FromRaw(raw Raw, g *hin.Graph, entityType hin.TypeID) (*Trie, error) {
	nodes := len(raw.LabelLo) - 1
	if nodes < 1 {
		return nil, fmt.Errorf("surftrie: raw trie has no nodes")
	}
	if len(raw.ChildLo) != nodes+1 {
		return nil, fmt.Errorf("surftrie: childLo has %d offsets, want %d", len(raw.ChildLo), nodes+1)
	}
	if len(raw.EntryLo) != nodes+1 {
		return nil, fmt.Errorf("surftrie: entryLo has %d offsets, want %d", len(raw.EntryLo), nodes+1)
	}
	if err := checkOffsets("labelLo", raw.LabelLo, len(raw.Labels)); err != nil {
		return nil, err
	}
	if err := checkOffsets("entryLo", raw.EntryLo, len(raw.Refs)); err != nil {
		return nil, err
	}
	if err := checkOffsets("childLo", raw.ChildLo, nodes); err != nil {
		return nil, err
	}
	if raw.LabelLo[0] != 0 || raw.LabelLo[nodes] != uint32(len(raw.Labels)) {
		return nil, fmt.Errorf("surftrie: labelLo does not span labels")
	}
	if raw.EntryLo[0] != 0 || raw.EntryLo[nodes] != uint32(len(raw.Refs)) {
		return nil, fmt.Errorf("surftrie: entryLo does not span refs")
	}
	if raw.ChildLo[0] != 1 || raw.ChildLo[nodes] != uint32(nodes) {
		return nil, fmt.Errorf("surftrie: childLo does not span nodes")
	}
	// Child ranges must point strictly forward (BFS layout), which
	// rules out cycles and unreachable self-references.
	for i := 0; i < nodes; i++ {
		if raw.ChildLo[i] < raw.ChildLo[i+1] && raw.ChildLo[i] <= uint32(i) {
			return nil, fmt.Errorf("surftrie: node %d has non-forward child range", i)
		}
	}
	// Non-root nodes carry a non-empty edge label; sibling first bytes
	// must be strictly ascending for findChild's binary search.
	for i := 1; i < nodes; i++ {
		if raw.LabelLo[i] == raw.LabelLo[i+1] {
			return nil, fmt.Errorf("surftrie: node %d has empty edge label", i)
		}
	}
	for i := 0; i < nodes; i++ {
		lo, hi := raw.ChildLo[i], raw.ChildLo[i+1]
		for c := lo + 1; c < hi; c++ {
			if raw.Labels[raw.LabelLo[c-1]] >= raw.Labels[raw.LabelLo[c]] {
				return nil, fmt.Errorf("surftrie: node %d children not sorted by first label byte", i)
			}
		}
	}
	for i, ref := range raw.Refs {
		if int(ref>>1) >= len(raw.Entities) {
			return nil, fmt.Errorf("surftrie: ref %d points past %d entries", i, len(raw.Entities))
		}
	}
	t := &Trie{
		labels:  raw.Labels,
		labelLo: raw.LabelLo,
		childLo: raw.ChildLo,
		entryLo: raw.EntryLo,
		refs:    raw.Refs,
		entries: make([]entry, len(raw.Entities)),
		keys:    int(raw.Keys),
	}
	for i, e := range raw.Entities {
		id := hin.ObjectID(e)
		if id < 0 || int(id) >= g.NumObjects() {
			return nil, fmt.Errorf("surftrie: entry %d references out-of-range object %d", i, id)
		}
		if g.TypeOf(id) != entityType {
			return nil, fmt.Errorf("surftrie: entry %d references object %d of type %d, want %d",
				i, id, g.TypeOf(id), entityType)
		}
		n := namematch.Parse(g.Name(id))
		if n.IsEmpty() {
			return nil, fmt.Errorf("surftrie: entry %d (object %d) has an unparseable name %q", i, id, g.Name(id))
		}
		t.entries[i] = entry{entity: id, name: n}
	}
	return t, nil
}

// checkOffsets verifies an offset array is monotone non-decreasing
// with every value ≤ limit.
func checkOffsets(what string, off []uint32, limit int) error {
	for i, v := range off {
		if int(v) > limit {
			return fmt.Errorf("surftrie: %s[%d]=%d exceeds %d", what, i, v, limit)
		}
		if i > 0 && v < off[i-1] {
			return fmt.Errorf("surftrie: %s[%d]=%d decreases from %d", what, i, v, off[i-1])
		}
	}
	return nil
}
