package surftrie_test

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"sync"
	"testing"

	"shine/internal/hin"
	"shine/internal/namematch"
	"shine/internal/surftrie"
)

func buildAuthorGraph(t testing.TB, names ...string) (*hin.DBLPSchema, *hin.Graph) {
	t.Helper()
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	for _, n := range names {
		b.MustAddObject(d.Author, n)
	}
	return d, b.Build()
}

func TestBuildErrors(t *testing.T) {
	d, g := buildAuthorGraph(t, "Wei Wang")
	if _, err := surftrie.Build(g, d.Venue); err == nil {
		t.Error("building over an empty type accepted")
	}
	// A population whose every name parses to nothing is an error, like
	// namematch.BuildIndex.
	d2, g2 := buildAuthorGraph(t, "0003")
	if _, err := surftrie.Build(g2, d2.Author); err == nil {
		t.Error("building over unparseable names accepted")
	}
}

func TestStats(t *testing.T) {
	d, g := buildAuthorGraph(t, "Wei Wang 0001", "Wei Wang 0002", "José García")
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	st := trie.Stats()
	// Two Wei Wangs share one key; José García adds a canonical key and
	// a folded alias.
	if st.Keys != 3 {
		t.Errorf("Keys = %d, want 3", st.Keys)
	}
	if st.Entries != 3 || trie.NumEntries() != 3 {
		t.Errorf("Entries = %d, want 3", st.Entries)
	}
	if st.Nodes < 2 || st.LabelBytes == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
}

func TestCandidatesBasic(t *testing.T) {
	d, g := buildAuthorGraph(t,
		"Wei Wang 0001", "Wei Wang 0002", "Wei Wang 0003",
		"Richard R. Muntz", "Eric Martin 0001", "Lei Wang",
	)
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	cands := trie.Candidates("Wei Wang")
	if len(cands) != 3 {
		t.Fatalf("Candidates(Wei Wang) = %d entities, want 3", len(cands))
	}
	if !slices.IsSorted(cands) {
		t.Error("candidates not sorted")
	}
	if got := trie.Candidates("Richard Muntz"); len(got) != 1 {
		t.Errorf("Candidates(Richard Muntz) = %d, want 1 via middle-name rule", len(got))
	}
	if got := trie.Candidates("Nobody Here"); len(got) != 0 {
		t.Errorf("Candidates(unknown) = %v", got)
	}
	if got := trie.Candidates(""); got != nil {
		t.Errorf("Candidates(empty) = %v", got)
	}
	// Loose finds the three Wei Wangs via the first initial; Lei Wang's
	// first name conflicts with the initial and stays out.
	if got := trie.LooseCandidates("W. Wang"); len(got) != 3 {
		t.Errorf("LooseCandidates(W. Wang) = %d, want 3", len(got))
	}
}

func TestCheckGraph(t *testing.T) {
	d, g := buildAuthorGraph(t, "Wei Wang", "Lei Wang")
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	if err := trie.CheckGraph(g, d.Author); err != nil {
		t.Errorf("CheckGraph against own graph: %v", err)
	}
	if err := trie.CheckGraph(g, d.Venue); err == nil {
		t.Error("CheckGraph accepted the wrong entity type")
	}
	// A smaller graph makes the second entry out of range.
	d2, tiny := buildAuthorGraph(t, "Wei Wang")
	if err := trie.CheckGraph(tiny, d2.Author); err == nil {
		t.Error("CheckGraph accepted a graph missing an indexed entity")
	}
}

// ------------------------------------------------- randomized oracle

// namePool are the building blocks of the generated corpus: plain
// ASCII, diacritics, hyphens, apostrophes, and tokens hostile to the
// parser (pure periods, digits).
var (
	firstPool = []string{
		"wei", "lei", "jian", "wen", "rakesh", "michael", "richard",
		"maría", "josé", "élodie", "françois", "björn", "søren", "zoé",
		"anne-marie", "w", "j", "...",
	}
	middlePool = []string{
		"", "", "", "r.", "j.", "jeffrey", "van der", "é.", "k",
	}
	lastPool = []string{
		"wang", "zhang", "li", "muntz", "martin", "jordan", "kumar",
		"garcía", "lópez", "garcía-lópez", "o'brien", "müller", "žižek",
		"nguyễn", "smith",
	}
)

// genName draws one surface form: name parts from the pools rendered
// in one of the accepted conventions, sometimes with a DBLP
// disambiguation suffix.
func genName(rng *rand.Rand) string {
	first := firstPool[rng.Intn(len(firstPool))]
	middle := middlePool[rng.Intn(len(middlePool))]
	last := lastPool[rng.Intn(len(lastPool))]
	full := first
	if middle != "" {
		full += " " + middle
	}
	full += " " + last
	switch rng.Intn(6) {
	case 0: // citation order
		full = last + ", " + first
		if middle != "" {
			full += " " + middle
		}
	case 1: // disambiguation suffix
		full += fmt.Sprintf(" %04d", rng.Intn(20))
	case 2: // single token
		full = last
	}
	return full
}

// perturb applies n random byte edits, producing the noisy-OCR
// mentions the fuzzy mode exists for. Edits are byte-level on purpose:
// they can corrupt a multi-byte rune, and the trie must still answer
// without panicking.
func perturb(rng *rand.Rand, s string, n int) string {
	b := []byte(s)
	for i := 0; i < n && len(b) > 0; i++ {
		pos := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0: // substitute
			b[pos] = byte('a' + rng.Intn(26))
		case 1: // delete
			b = append(b[:pos], b[pos+1:]...)
		case 2: // insert
			b = append(b[:pos], append([]byte{byte('a' + rng.Intn(26))}, b[pos:]...)...)
		}
	}
	return string(b)
}

// genMention draws a lookup: a corpus name verbatim, an initialised or
// citation-style variant, a perturbed form, or an unrelated string.
func genMention(rng *rand.Rand, names []string) string {
	base := names[rng.Intn(len(names))]
	switch rng.Intn(8) {
	case 0:
		return base
	case 1: // initialise the first token
		n := namematch.Parse(base)
		if n.First != "" {
			return string([]rune(n.First)[:1]) + ". " + n.Last
		}
		return base
	case 2: // citation order
		n := namematch.Parse(base)
		if n.First != "" {
			return n.Last + ", " + n.First
		}
		return base
	case 3:
		return base + fmt.Sprintf(" %04d", rng.Intn(20))
	case 4, 5:
		return perturb(rng, base, 1+rng.Intn(2))
	case 6:
		return genName(rng)
	default:
		return strings.ToUpper(base)
	}
}

// TestOracleEquivalence is the harness's central property: on a
// randomized corpus, the trie's exact and loose lookups are
// element-for-element identical to both the namematch.Index reference
// implementation and a brute-force Matches/MatchesLoose scan of every
// entity, and the fuzzy lookup is a superset of the exact one.
// Mentions are checked from several goroutines so `go test -race`
// doubles as the concurrent-lookup safety proof.
func TestOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := make([]string, 1500)
	for i := range names {
		names[i] = genName(rng)
	}
	d, g := buildAuthorGraph(t, names...)
	idx, err := namematch.BuildIndex(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		t.Fatal(err)
	}
	entities := g.ObjectsOfType(d.Author)
	parsed := make([]namematch.Name, len(entities))
	for i, e := range entities {
		parsed[i] = namematch.Parse(g.Name(e))
	}
	bruteExact := func(mention string) []hin.ObjectID {
		n := namematch.Parse(mention)
		if n.IsEmpty() {
			return nil
		}
		var out []hin.ObjectID
		for i, e := range entities {
			if !parsed[i].IsEmpty() && n.Matches(parsed[i]) {
				out = append(out, e)
			}
		}
		return out // entity iteration is ascending and duplicate-free
	}
	bruteLoose := func(mention string) []hin.ObjectID {
		n := namematch.Parse(mention)
		if n.IsEmpty() {
			return nil
		}
		var out []hin.ObjectID
		for i, e := range entities {
			if !parsed[i].IsEmpty() && n.MatchesLoose(parsed[i]) {
				out = append(out, e)
			}
		}
		return out
	}

	mentions := make([]string, 3000)
	for i := range mentions {
		mentions[i] = genMention(rng, names)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(mentions); i += workers {
				m := mentions[i]
				exact := trie.Candidates(m)
				if want := idx.Candidates(m); !slices.Equal(exact, want) {
					t.Errorf("Candidates(%q): trie %v, index %v", m, exact, want)
				}
				if want := bruteExact(m); !slices.Equal(exact, sortedIDs(want)) {
					t.Errorf("Candidates(%q): trie %v, brute scan %v", m, exact, want)
				}
				loose := trie.LooseCandidates(m)
				if want := idx.LooseCandidates(m); !slices.Equal(loose, want) {
					t.Errorf("LooseCandidates(%q): trie %v, index %v", m, loose, want)
				}
				if want := bruteLoose(m); !slices.Equal(loose, sortedIDs(want)) {
					t.Errorf("LooseCandidates(%q): trie %v, brute scan %v", m, loose, want)
				}
				// Fuzzy must contain exact at every distance, and grow
				// monotonically with the distance budget.
				prev := trie.FuzzyCandidates(m, 0)
				if !containsAll(prev, exact) {
					t.Errorf("FuzzyCandidates(%q, 0) misses exact candidates", m)
				}
				for dist := 1; dist <= surftrie.MaxDistance; dist++ {
					cur := trie.FuzzyCandidates(m, dist)
					if !containsAll(cur, prev) {
						t.Errorf("FuzzyCandidates(%q, %d) lost results present at %d", m, dist, dist-1)
					}
					prev = cur
				}
			}
		}()
	}
	wg.Wait()
}

func sortedIDs(ids []hin.ObjectID) []hin.ObjectID {
	out := slices.Clone(ids)
	slices.Sort(out)
	return slices.Compact(out)
}

// containsAll reports whether sorted superset covers every element of
// sorted subset.
func containsAll(superset, subset []hin.ObjectID) bool {
	i := 0
	for _, want := range subset {
		for i < len(superset) && superset[i] < want {
			i++
		}
		if i == len(superset) || superset[i] != want {
			return false
		}
	}
	return true
}

// FuzzTrieLookup holds every lookup mode against the oracle on
// arbitrary mention bytes: exact and loose must equal the reference
// index, fuzzy must be a sorted superset of exact, and nothing may
// panic — including on invalid UTF-8.
func FuzzTrieLookup(f *testing.F) {
	d, g := buildAuthorGraph(f,
		"Wei Wang 0001", "Wei Wang 0002", "Richard R. Muntz",
		"José García-López", "Mia Zoé", "Mia Zoè", "Sø O'Brien",
		"Michael Jeffrey Jordan", "W. Wang", "Lei Wang",
	)
	idx, err := namematch.BuildIndex(g, d.Author)
	if err != nil {
		f.Fatal(err)
	}
	trie, err := surftrie.Build(g, d.Author)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("Wei Wang")
	f.Add("wang, wei 0002")
	f.Add("W. Wang")
	f.Add("Jose Garcia Lopez")
	f.Add("Mia Zoé")
	f.Add("Wei Wing")
	f.Add("\xc3")
	f.Add("a\x00b")
	f.Add("")
	f.Fuzz(func(t *testing.T, mention string) {
		exact := trie.Candidates(mention)
		if want := idx.Candidates(mention); !slices.Equal(exact, want) {
			t.Fatalf("Candidates(%q): trie %v, index %v", mention, exact, want)
		}
		loose := trie.LooseCandidates(mention)
		if want := idx.LooseCandidates(mention); !slices.Equal(loose, want) {
			t.Fatalf("LooseCandidates(%q): trie %v, index %v", mention, loose, want)
		}
		for dist := 0; dist <= surftrie.MaxDistance; dist++ {
			fuzzy := trie.FuzzyCandidates(mention, dist)
			if !slices.IsSorted(fuzzy) {
				t.Fatalf("FuzzyCandidates(%q, %d) not sorted: %v", mention, dist, fuzzy)
			}
			if !containsAll(fuzzy, exact) {
				t.Fatalf("FuzzyCandidates(%q, %d) misses exact candidates", mention, dist)
			}
		}
	})
}
