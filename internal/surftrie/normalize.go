// Package surftrie implements the trie-backed fuzzy candidate index:
// a compressed (path-compressed, sorted-child) trie over normalized
// entity surface forms with per-terminal candidate lists. It serves
// three lookup modes:
//
//   - exact: the paper's Section 5.1 candidate rules, answered in
//     O(|mention|) and provably identical to the brute-force
//     namematch.Index reference implementation;
//   - initials ("loose"): first-initial matching for citation-style
//     mentions ("W. Wang" finds every "Wei Wang"), identical to
//     namematch.Index.LooseCandidates;
//   - fuzzy: bounded-edit-distance lookup (Levenshtein row-walk over
//     the trie, distance ≤ MaxDistance) for noisy OCR text, returning
//     a strict superset of the exact candidates.
//
// Keys are canonicalised through namematch.Parse (lowercase, periods
// stripped, "Last, First" reordered, DBLP disambiguation suffixes
// dropped) into "last\x00first". Entities whose names carry
// diacritics, hyphens or apostrophes are additionally indexed under a
// folded alias key ("garcía-lópez" → "garcialopez"), so folded and
// noisy mentions still reach them through the fuzzy walk.
//
// The frozen representation is five flat arrays (see Raw), which is
// what the binary snapshot subsystem persists: a restored trie is
// structurally identical to the one that was written and returns
// bit-identical candidate lists.
package surftrie

import (
	"strings"

	"shine/internal/namematch"
)

// sep separates the last-name and first-name components of a trie
// key. NUL cannot appear in a parsed name part (strings.Fields never
// yields it), so keys are unambiguous.
const sep = '\x00'

// keyOf returns the canonical trie key for a parsed name.
func keyOf(n namematch.Name) string {
	return n.Last + string(rune(sep)) + n.First
}

// foldKey returns the folded alias key: diacritics reduced to their
// ASCII base letters, hyphens and apostrophes dropped. Equal to
// keyOf(n) when the name needs no folding.
func foldKey(n namematch.Name) string {
	return fold(n.Last) + string(rune(sep)) + fold(n.First)
}

// fold maps a lowercase name part onto its folded form. The input is
// returned unchanged (no allocation) when nothing folds.
func fold(s string) string {
	changed := false
	for _, r := range s {
		if fr, ok := foldRune(r); !ok || fr != string(r) {
			changed = true
			break
		}
	}
	if !changed {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if fr, ok := foldRune(r); ok {
			b.WriteString(fr)
		}
	}
	return b.String()
}

// foldRune maps one rune to its folded spelling. The second return is
// false for runes that fold to nothing (hyphens, apostrophes,
// periods). Parsed names are already lowercase, so only lowercase
// diacritics need entries; anything unlisted passes through.
func foldRune(r rune) (string, bool) {
	switch r {
	case '-', '\'', '’', '.', '­': // hyphen, apostrophes, period, soft hyphen
		return "", false
	}
	if r < 0xC0 {
		return string(r), true
	}
	if f, ok := latinFolds[r]; ok {
		return f, true
	}
	return string(r), true
}

// latinFolds covers the Latin-1 Supplement and Latin Extended-A
// lowercase letters — the diacritics that actually occur in
// bibliographic author names. Multi-character expansions (æ → ae,
// ß → ss) are included so folded keys stay pronounceable.
var latinFolds = map[rune]string{
	'à': "a", 'á': "a", 'â': "a", 'ã': "a", 'ä': "a", 'å': "a",
	'æ': "ae", 'ç': "c",
	'è': "e", 'é': "e", 'ê': "e", 'ë': "e",
	'ì': "i", 'í': "i", 'î': "i", 'ï': "i",
	'ð': "d", 'ñ': "n",
	'ò': "o", 'ó': "o", 'ô': "o", 'õ': "o", 'ö': "o", 'ø': "o",
	'ù': "u", 'ú': "u", 'û': "u", 'ü': "u",
	'ý': "y", 'ÿ': "y", 'þ': "th", 'ß': "ss",
	'ā': "a", 'ă': "a", 'ą': "a",
	'ć': "c", 'ĉ': "c", 'ċ': "c", 'č': "c",
	'ď': "d", 'đ': "d",
	'ē': "e", 'ĕ': "e", 'ė': "e", 'ę': "e", 'ě': "e",
	'ĝ': "g", 'ğ': "g", 'ġ': "g", 'ģ': "g",
	'ĥ': "h", 'ħ': "h",
	'ĩ': "i", 'ī': "i", 'ĭ': "i", 'į': "i", 'ı': "i",
	'ĳ': "ij", 'ĵ': "j", 'ķ': "k",
	'ĺ': "l", 'ļ': "l", 'ľ': "l", 'ŀ': "l", 'ł': "l",
	'ń': "n", 'ņ': "n", 'ň': "n", 'ŉ': "n", 'ŋ': "n",
	'ō': "o", 'ŏ': "o", 'ő': "o", 'œ': "oe",
	'ŕ': "r", 'ŗ': "r", 'ř': "r",
	'ś': "s", 'ŝ': "s", 'ş': "s", 'š': "s",
	'ţ': "t", 'ť': "t", 'ŧ': "t",
	'ũ': "u", 'ū': "u", 'ŭ': "u", 'ů': "u", 'ű': "u", 'ų': "u",
	'ŵ': "w", 'ŷ': "y",
	'ź': "z", 'ż': "z", 'ž': "z",
}
