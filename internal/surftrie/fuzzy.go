package surftrie

import (
	"unicode/utf8"

	"shine/internal/hin"
	"shine/internal/namematch"
)

// MaxDistance is the largest edit distance FuzzyCandidates accepts.
// Distance 2 already absorbs the common OCR confusions (dropped
// letter, doubled letter, transposed pair as two edits); beyond that
// the candidate blocks stop being discriminative.
const MaxDistance = 2

// FuzzyCandidates returns every entity stored under a key within
// Levenshtein distance ≤ dist (rune-level) of the mention's canonical
// key or its folded form, in ascending ID order with no duplicates.
// dist is clamped to [0, MaxDistance]. No name-rule filter is applied
// — the caller gets the full noisy-recall block, which is by
// construction a superset of Candidates(mention) for any dist ≥ 0.
func (t *Trie) FuzzyCandidates(mention string, dist int) []hin.ObjectID {
	if dist < 0 {
		dist = 0
	}
	if dist > MaxDistance {
		dist = MaxDistance
	}
	n := namematch.Parse(mention)
	if n.IsEmpty() {
		return nil
	}
	var out []hin.ObjectID
	k := keyOf(n)
	out = t.fuzzyWalk(out, []rune(k), dist)
	if fk := foldKey(n); fk != k {
		out = t.fuzzyWalk(out, []rune(fk), dist)
	}
	return sortDedup(out)
}

// fuzzyWalk appends to out the entities at every terminal whose
// spelled key is within maxDist rune edits of pattern. It runs the
// classic Levenshtein DP rows down the trie: each node carries the DP
// row for the prefix it spells, children extend it one stored rune at
// a time, and a branch is pruned as soon as its row minimum exceeds
// maxDist — the row minimum is a lower bound for every key below.
func (t *Trie) fuzzyWalk(out []hin.ObjectID, pattern []rune, maxDist int) []hin.ObjectID {
	m := len(pattern)
	row := make([]int, m+1)
	for j := range row {
		row[j] = j // distance from "" to pattern[:j]: j insertions
	}
	return t.fuzzyNode(out, 0, pattern, row, nil, maxDist)
}

// fuzzyNode advances the DP row across node's edge label and recurses
// into its children. Stored keys are valid UTF-8, but path
// compression breaks edges at arbitrary byte positions — two keys can
// diverge at the second byte of a shared multi-byte rune — so an edge
// label may begin or end mid-rune. pending carries the undecoded tail
// bytes of such a split rune from the parent edge; only complete
// runes feed the DP. Every stored key is valid UTF-8, so pending is
// always empty at terminals and the final row cell is exact there.
func (t *Trie) fuzzyNode(out []hin.ObjectID, node int, pattern []rune, row []int, pending []byte, maxDist int) []hin.ObjectID {
	lab := t.label(node)
	buf := lab
	if len(pending) > 0 {
		buf = make([]byte, 0, len(pending)+len(lab))
		buf = append(buf, pending...)
		buf = append(buf, lab...)
	}
	for len(buf) > 0 {
		if !utf8.FullRune(buf) {
			break // split rune continues in a child edge
		}
		r, size := utf8.DecodeRune(buf)
		buf = buf[size:]
		row = nextRow(row, pattern, r)
		if minOf(row) > maxDist {
			return out
		}
	}
	if len(buf) == 0 && row[len(row)-1] <= maxDist {
		for _, ref := range t.nodeRefs(node) {
			out = append(out, t.entries[ref>>1].entity)
		}
	}
	lo, hi := t.children(node)
	for c := lo; c < hi; c++ {
		out = t.fuzzyNode(out, c, pattern, row, buf, maxDist)
	}
	return out
}

// nextRow computes the Levenshtein DP row after consuming stored rune
// r, from the row for the prefix before it. row[j] is the distance
// between the consumed stored prefix and pattern[:j].
func nextRow(row []int, pattern []rune, r rune) []int {
	next := make([]int, len(row))
	next[0] = row[0] + 1 // deletion of r
	for j := 1; j < len(row); j++ {
		sub := row[j-1]
		if pattern[j-1] != r {
			sub++
		}
		ins := next[j-1] + 1
		del := row[j] + 1
		d := sub
		if ins < d {
			d = ins
		}
		if del < d {
			d = del
		}
		next[j] = d
	}
	return next
}

func minOf(row []int) int {
	m := row[0]
	for _, v := range row[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
