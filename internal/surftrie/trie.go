package surftrie

import (
	"fmt"
	"slices"

	"shine/internal/hin"
	"shine/internal/namematch"
)

// entry is one indexed entity with its parsed name, kept for the
// rule-based filter (namematch.Name.Matches / MatchesLoose) applied
// after trie retrieval — retrieval blocks, the rules decide.
type entry struct {
	entity hin.ObjectID
	name   namematch.Name
}

// Trie is the frozen candidate index: a path-compressed trie over
// normalized surface keys laid out breadth-first in five flat arrays.
// Node i's edge label is labels[labelLo[i]:labelLo[i+1]], its
// children are the contiguous node range [childLo[i], childLo[i+1])
// (sorted by first label byte), and its terminal candidate refs are
// refs[entryLo[i]:entryLo[i+1]]. A ref packs an index into entries
// with a low alias bit: alias terminals come from folded keys and
// participate only in fuzzy retrieval.
//
// A Trie is immutable after Build/FromRaw and safe for concurrent
// lookups.
type Trie struct {
	labels  []byte
	labelLo []uint32
	childLo []uint32
	entryLo []uint32
	refs    []uint32
	entries []entry
	keys    int
}

// Stats summarises the index shape for logs and artifact inspection.
type Stats struct {
	// Keys is the number of distinct stored keys (canonical + alias).
	Keys int
	// Nodes is the number of trie nodes after path compression.
	Nodes int
	// Entries is the number of indexed entities.
	Entries int
	// LabelBytes is the total size of the compressed edge labels.
	LabelBytes int
}

// Stats returns the index shape.
func (t *Trie) Stats() Stats {
	return Stats{Keys: t.keys, Nodes: len(t.labelLo) - 1, Entries: len(t.entries), LabelBytes: len(t.labels)}
}

// NumEntries returns the number of indexed entities.
func (t *Trie) NumEntries() int { return len(t.entries) }

// ---------------------------------------------------------------- build

// bnode is the mutable byte-level trie used during construction; the
// freeze pass path-compresses it into the flat arrays.
type bnode struct {
	next    map[byte]*bnode
	primary []uint32
	alias   []uint32
}

func (n *bnode) terminal() bool { return len(n.primary)+len(n.alias) > 0 }

// Build indexes the names of every object of entityType in g, exactly
// the population namematch.BuildIndex indexes: objects whose names
// parse to nothing are skipped, everything else is inserted under its
// canonical "last\x00first" key plus a folded alias key when folding
// changes it. Build is deterministic: the same graph always freezes
// to the same arrays.
func Build(g *hin.Graph, entityType hin.TypeID) (*Trie, error) {
	ents := g.ObjectsOfType(entityType)
	if len(ents) == 0 {
		return nil, fmt.Errorf("surftrie: no objects of type %d to index", entityType)
	}
	root := &bnode{}
	var entries []entry
	keys := 0
	insert := func(key string, ref uint32, alias bool) {
		n := root
		for i := 0; i < len(key); i++ {
			c := key[i]
			if n.next == nil {
				n.next = make(map[byte]*bnode)
			}
			child := n.next[c]
			if child == nil {
				child = &bnode{}
				n.next[c] = child
			}
			n = child
		}
		if !n.terminal() {
			keys++
		}
		if alias {
			n.alias = append(n.alias, ref)
		} else {
			n.primary = append(n.primary, ref)
		}
	}
	for _, e := range ents {
		n := namematch.Parse(g.Name(e))
		if n.IsEmpty() {
			continue
		}
		ref := uint32(len(entries))
		entries = append(entries, entry{entity: e, name: n})
		k := keyOf(n)
		insert(k, ref, false)
		if fk := foldKey(n); fk != k {
			insert(fk, ref, true)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("surftrie: no parseable names among %d objects of type %d", len(ents), entityType)
	}
	return freeze(root, entries, keys), nil
}

// freeze path-compresses the byte trie and lays it out breadth-first,
// so each node's children occupy a contiguous id range and the whole
// structure becomes five flat arrays.
func freeze(root *bnode, entries []entry, keys int) *Trie {
	type qitem struct {
		n     *bnode
		label []byte
	}
	t := &Trie{
		entries: entries,
		keys:    keys,
		labelLo: []uint32{0},
		entryLo: []uint32{0},
	}
	queue := []qitem{{n: root}}
	for i := 0; i < len(queue); i++ {
		it := queue[i]
		t.labels = append(t.labels, it.label...)
		t.labelLo = append(t.labelLo, uint32(len(t.labels)))
		for _, ref := range it.n.primary {
			t.refs = append(t.refs, ref<<1)
		}
		for _, ref := range it.n.alias {
			t.refs = append(t.refs, ref<<1|1)
		}
		t.entryLo = append(t.entryLo, uint32(len(t.refs)))
		t.childLo = append(t.childLo, uint32(len(queue)))
		// Children in byte order keep the layout deterministic and the
		// sibling ranges binary-searchable.
		bs := make([]byte, 0, len(it.n.next))
		for b := range it.n.next {
			bs = append(bs, b)
		}
		slices.Sort(bs)
		for _, b := range bs {
			// Path compression: swallow single-child, non-terminal
			// chains into one edge label.
			label := []byte{b}
			child := it.n.next[b]
			for len(child.next) == 1 && !child.terminal() {
				for nb, nn := range child.next {
					label = append(label, nb)
					child = nn
				}
			}
			queue = append(queue, qitem{n: child, label: label})
		}
	}
	t.childLo = append(t.childLo, uint32(len(queue)))
	return t
}

// --------------------------------------------------------------- lookup

func (t *Trie) label(node int) []byte {
	return t.labels[t.labelLo[node]:t.labelLo[node+1]]
}

func (t *Trie) children(node int) (int, int) {
	return int(t.childLo[node]), int(t.childLo[node+1])
}

func (t *Trie) nodeRefs(node int) []uint32 {
	return t.refs[t.entryLo[node]:t.entryLo[node+1]]
}

// findChild binary-searches node's sibling range for the child whose
// label starts with b.
func (t *Trie) findChild(node int, b byte) (int, bool) {
	lo, hi := t.children(node)
	for lo < hi {
		mid := (lo + hi) / 2
		first := t.labels[t.labelLo[mid]]
		switch {
		case first == b:
			return mid, true
		case first < b:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}

// locate walks the trie to the node spelling exactly key.
func (t *Trie) locate(key string) (int, bool) {
	node, pos := 0, 0
	for pos < len(key) {
		c, ok := t.findChild(node, key[pos])
		if !ok {
			return 0, false
		}
		lab := t.label(c)
		if len(key)-pos < len(lab) {
			return 0, false
		}
		for j := 1; j < len(lab); j++ {
			if key[pos+j] != lab[j] {
				return 0, false
			}
		}
		pos += len(lab)
		node = c
	}
	return node, true
}

// locateSubtree walks to the shallowest node whose spelled prefix
// starts with p; every stored key with prefix p lies in its subtree.
func (t *Trie) locateSubtree(p string) (int, bool) {
	node, pos := 0, 0
	for pos < len(p) {
		c, ok := t.findChild(node, p[pos])
		if !ok {
			return 0, false
		}
		lab := t.label(c)
		n := len(lab)
		if rem := len(p) - pos; rem < n {
			n = rem
		}
		for j := 1; j < n; j++ {
			if p[pos+j] != lab[j] {
				return 0, false
			}
		}
		pos += len(lab) // may overshoot len(p): prefix ended mid-edge
		node = c
	}
	return node, true
}

// walkSubtree visits every node in the subtree rooted at node,
// including node itself.
func (t *Trie) walkSubtree(node int, visit func(node int)) {
	stack := []int{node}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(n)
		lo, hi := t.children(n)
		for c := hi - 1; c >= lo; c-- {
			stack = append(stack, c)
		}
	}
}

// Candidates returns the entities whose names are compatible with the
// mention under the paper's Section 5.1 rules, in ascending ID order
// with no duplicates — element-for-element identical to
// namematch.Index.Candidates. The slice is freshly allocated and
// owned by the caller.
func (t *Trie) Candidates(mention string) []hin.ObjectID {
	n := namematch.Parse(mention)
	if n.IsEmpty() {
		return nil
	}
	node, ok := t.locate(keyOf(n))
	if !ok {
		return nil
	}
	var out []hin.ObjectID
	for _, ref := range t.nodeRefs(node) {
		if ref&1 != 0 {
			continue // alias terminals serve only the fuzzy walk
		}
		e := t.entries[ref>>1]
		if n.Matches(e.name) {
			out = append(out, e.entity)
		}
	}
	return sortDedup(out)
}

// LooseCandidates extends Candidates with first-initial matching,
// identical to namematch.Index.LooseCandidates: the last name is
// walked exactly (O(|last|) instead of a hash of the whole block key)
// and the subtree below it — every first-name completion — is
// filtered through MatchesLoose.
func (t *Trie) LooseCandidates(mention string) []hin.ObjectID {
	n := namematch.Parse(mention)
	if n.IsEmpty() {
		return nil
	}
	root, ok := t.locateSubtree(n.Last + string(rune(sep)))
	if !ok {
		return nil
	}
	var out []hin.ObjectID
	t.walkSubtree(root, func(node int) {
		for _, ref := range t.nodeRefs(node) {
			if ref&1 != 0 {
				continue
			}
			e := t.entries[ref>>1]
			if n.MatchesLoose(e.name) {
				out = append(out, e.entity)
			}
		}
	})
	return sortDedup(out)
}

// sortDedup sorts ascending and removes duplicate IDs — an entity
// reachable through several stored keys must appear once.
func sortDedup(ids []hin.ObjectID) []hin.ObjectID {
	if len(ids) == 0 {
		return ids
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// CheckGraph verifies the index is consistent with a graph: every
// indexed entity must exist and carry entityType. Snapshot
// restoration calls this before adopting a decoded trie.
func (t *Trie) CheckGraph(g *hin.Graph, entityType hin.TypeID) error {
	for i := range t.entries {
		e := t.entries[i].entity
		if e < 0 || int(e) >= g.NumObjects() {
			return fmt.Errorf("surftrie: entry %d references out-of-range object %d", i, e)
		}
		if g.TypeOf(e) != entityType {
			return fmt.Errorf("surftrie: entry %d references object %d of type %d, want %d",
				i, e, g.TypeOf(e), entityType)
		}
	}
	return nil
}
