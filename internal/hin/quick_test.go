package hin

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a random DBLP-schema graph from a seed: a
// property-test generator exercising the builder with arbitrary (but
// schema-valid) shapes.
func randomGraph(seed int64) (*DBLPSchema, *Graph) {
	rng := rand.New(rand.NewSource(seed))
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)

	nAuthors := 1 + rng.Intn(10)
	nPapers := 1 + rng.Intn(20)
	nVenues := 1 + rng.Intn(4)
	authors := make([]ObjectID, nAuthors)
	for i := range authors {
		authors[i] = b.MustAddObject(d.Author, fmt.Sprintf("author-%d", i))
	}
	venues := make([]ObjectID, nVenues)
	for i := range venues {
		venues[i] = b.MustAddObject(d.Venue, fmt.Sprintf("venue-%d", i))
	}
	for i := 0; i < nPapers; i++ {
		p := b.MustAddObject(d.Paper, fmt.Sprintf("paper-%d", i))
		// Each paper gets 0-3 authors and 0-1 venues; some papers stay
		// partially connected on purpose.
		for k := rng.Intn(4); k > 0; k-- {
			b.MustAddLink(d.Write, authors[rng.Intn(nAuthors)], p)
		}
		if rng.Intn(4) > 0 {
			b.MustAddLink(d.Publish, venues[rng.Intn(nVenues)], p)
		}
	}
	return d, b.Build()
}

func TestQuickRandomGraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		_, g := randomGraph(seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickForwardInverseDegreesBalance(t *testing.T) {
	f := func(seed int64) bool {
		d, g := randomGraph(seed)
		// Total out-degree of a forward relation equals total
		// out-degree of its inverse: every link is counted once in
		// each direction.
		for rel := 0; rel < d.Schema.NumRelations(); rel += 2 {
			fwd, inv := 0, 0
			for v := 0; v < g.NumObjects(); v++ {
				fwd += g.Degree(RelationID(rel), ObjectID(v))
				inv += g.Degree(d.Schema.Inverse(RelationID(rel)), ObjectID(v))
			}
			if fwd != inv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		_, g := randomGraph(seed)
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		g2, err := ReadGraph(&buf)
		if err != nil {
			return false
		}
		if g2.NumObjects() != g.NumObjects() || g2.NumLinks() != g.NumLinks() {
			return false
		}
		for v := 0; v < g.NumObjects(); v++ {
			if g2.Name(ObjectID(v)) != g.Name(ObjectID(v)) {
				return false
			}
		}
		return g2.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 25} // serialisation is the slow part
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		_, g := randomGraph(seed)
		g2 := NewBuilderFromGraph(g).Build()
		if g2.NumObjects() != g.NumObjects() || g2.NumLinks() != g.NumLinks() {
			return false
		}
		for rel := 0; rel < g.Schema().NumRelations(); rel++ {
			for v := 0; v < g.NumObjects(); v++ {
				if g.Degree(RelationID(rel), ObjectID(v)) != g2.Degree(RelationID(rel), ObjectID(v)) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
