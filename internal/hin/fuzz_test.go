package hin

import (
	"bytes"
	"testing"
)

// FuzzReadGraph hardens the deserialiser: arbitrary bytes must never
// panic, and valid files must round-trip. The seed corpus includes a
// real serialised graph plus hostile variants.
func FuzzReadGraph(f *testing.F) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "Wei Wang")
	p := b.MustAddObject(d.Paper, "p1")
	b.MustAddLink(d.Write, a, p)
	var buf bytes.Buffer
	if _, err := b.Build().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SHINEHIN"))
	f.Add(append(append([]byte{}, valid[:20]...), 0xFF, 0xFF, 0xFF, 0xFF))
	truncated := append([]byte{}, valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0x55
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGraph(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Anything accepted must be a coherent graph.
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("accepted graph fails validation: %v", vErr)
		}
	})
}
