package hin

import "testing"

func TestNewBuilderFromGraphPreservesEverything(t *testing.T) {
	d, g, ids := tinyDBLP(t)
	b := NewBuilderFromGraph(g)
	g2 := b.Build()

	if g2.NumObjects() != g.NumObjects() || g2.NumLinks() != g.NumLinks() {
		t.Fatalf("clone: %d/%d objects, %d/%d links",
			g2.NumObjects(), g.NumObjects(), g2.NumLinks(), g.NumLinks())
	}
	for v := 0; v < g.NumObjects(); v++ {
		id := ObjectID(v)
		if g2.Name(id) != g.Name(id) || g2.TypeOf(id) != g.TypeOf(id) {
			t.Errorf("object %d changed identity", v)
		}
	}
	// Adjacency preserved, including multiplicity.
	for rel := 0; rel < g.Schema().NumRelations(); rel++ {
		for v := 0; v < g.NumObjects(); v++ {
			a, b2 := g.Neighbors(RelationID(rel), ObjectID(v)), g2.Neighbors(RelationID(rel), ObjectID(v))
			if len(a) != len(b2) {
				t.Fatalf("rel %d obj %d: %d vs %d neighbors", rel, v, len(a), len(b2))
			}
			for i := range a {
				if a[i] != b2[i] {
					t.Fatalf("rel %d obj %d neighbor %d: %d vs %d", rel, v, i, a[i], b2[i])
				}
			}
		}
	}
	_ = d
	_ = ids
}

func TestNewBuilderFromGraphExtension(t *testing.T) {
	d, g, ids := tinyDBLP(t)
	b := NewBuilderFromGraph(g)

	// Extend: a new paper for wei.
	p := b.MustAddObject(d.Paper, "new-paper")
	b.MustAddLink(d.Write, ids["wei"], p)
	g2 := b.Build()

	if got, want := g2.Degree(d.Write, ids["wei"]), g.Degree(d.Write, ids["wei"])+1; got != want {
		t.Errorf("extended degree = %d, want %d", got, want)
	}
	// The base graph is untouched.
	if g.NumObjects() != 9 {
		t.Errorf("base graph mutated: %d objects", g.NumObjects())
	}
}
