package hin

import (
	"fmt"
	"math"
	"testing"
)

// degreeGraph: three authors with 1, 2 and 5 papers.
func degreeGraph(t testing.TB) (*DBLPSchema, *Graph) {
	t.Helper()
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	counts := []int{1, 2, 5}
	for ai, n := range counts {
		a := b.MustAddObject(d.Author, fmt.Sprintf("a%d", ai))
		for i := 0; i < n; i++ {
			p := b.MustAddObject(d.Paper, fmt.Sprintf("p%d-%d", ai, i))
			b.MustAddLink(d.Write, a, p)
		}
	}
	return d, b.Build()
}

func TestDegreeDistribution(t *testing.T) {
	d, g := degreeGraph(t)
	s, err := g.DegreeDistribution(d.Author, d.Write)
	if err != nil {
		t.Fatalf("DegreeDistribution: %v", err)
	}
	if s.Objects != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-8.0/3) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Median != 2 {
		t.Errorf("Median = %v", s.Median)
	}
	// Gini of [1,2,5]: 2*(1*1+2*2+3*5)/(3*8) - 4/3 = 40/24 - 4/3 = 1/3.
	if math.Abs(s.Gini-1.0/3) > 1e-12 {
		t.Errorf("Gini = %v, want 1/3", s.Gini)
	}
}

func TestDegreeDistributionUniformGiniZero(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	for ai := 0; ai < 4; ai++ {
		a := b.MustAddObject(d.Author, fmt.Sprintf("a%d", ai))
		p := b.MustAddObject(d.Paper, fmt.Sprintf("p%d", ai))
		b.MustAddLink(d.Write, a, p)
	}
	g := b.Build()
	s, err := g.DegreeDistribution(d.Author, d.Write)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Gini) > 1e-12 {
		t.Errorf("uniform degrees Gini = %v, want 0", s.Gini)
	}
}

func TestDegreeDistributionErrors(t *testing.T) {
	d, g := degreeGraph(t)
	if _, err := g.DegreeDistribution(d.Venue, d.Write); err == nil {
		t.Error("empty type accepted")
	}
	if _, err := g.DegreeDistribution(d.Author, RelationID(99)); err == nil {
		t.Error("invalid relation accepted")
	}
}

func TestDegreeHistogram(t *testing.T) {
	d, g := degreeGraph(t)
	hist, err := g.DegreeHistogram(d.Author, d.Write)
	if err != nil {
		t.Fatalf("DegreeHistogram: %v", err)
	}
	// Degrees 1, 2, 5 -> buckets 0 (for 1), 1 (for 2-3), 2 (for 4-7).
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 1 {
		t.Errorf("histogram = %v", hist)
	}
	// Papers have zero write out-degree.
	ph, err := g.DegreeHistogram(d.Paper, d.Write)
	if err != nil {
		t.Fatal(err)
	}
	if ph[-1] != 8 {
		t.Errorf("zero bucket = %d, want 8", ph[-1])
	}
}

func TestPercentileSorted(t *testing.T) {
	if got := percentileSorted([]int{10}, 0.9); got != 10 {
		t.Errorf("single element percentile = %v", got)
	}
	if got := percentileSorted([]int{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v", got)
	}
}
