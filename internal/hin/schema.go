// Package hin implements the heterogeneous information network (HIN)
// substrate used by SHINE: typed objects, typed directed relations, a
// meta-level schema, and a compact immutable graph representation with
// per-relation adjacency in compressed sparse row (CSR) form.
//
// The terminology follows Shen, Han and Wang (SIGMOD 2014) and Sun et
// al.'s meta-path work: a HIN is a directed graph G = (V, Z) whose
// objects each belong to one object type T and whose links each belong
// to one relation type R, with |{T}| > 1 and |{R}| > 1. Every relation
// is registered together with its inverse so that random walks can
// traverse links in either direction.
package hin

import (
	"fmt"
	"strings"
)

// TypeID identifies an object type within a Schema.
type TypeID int32

// RelationID identifies a relation type within a Schema.
type RelationID int32

// NoType and NoRelation are sentinel values returned by lookups that
// find nothing.
const (
	NoType     TypeID     = -1
	NoRelation RelationID = -1
)

// TypeInfo describes one object type in the network schema.
type TypeInfo struct {
	// Name is the full type name, e.g. "author".
	Name string
	// Abbrev is the short code used in meta-path notation, e.g. "A".
	Abbrev string
}

// RelationInfo describes one relation type in the network schema. Every
// relation is directed; its inverse is a distinct RelationID recorded
// in Inverse.
type RelationInfo struct {
	// Name is the relation name, e.g. "write".
	Name string
	// From and To are the source and destination object types.
	From, To TypeID
	// Inverse is the RelationID of the reverse relation. AddRelation
	// always creates relations in inverse pairs, so Inverse is valid
	// for every relation.
	Inverse RelationID
}

// Schema is the meta-level description of a heterogeneous information
// network: the set of object types and the set of typed relations
// between them. The zero value is an empty schema ready to use.
type Schema struct {
	types     []TypeInfo
	relations []RelationInfo

	typeByName   map[string]TypeID
	typeByAbbrev map[string]TypeID
	relByName    map[string]RelationID
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		typeByName:   make(map[string]TypeID),
		typeByAbbrev: make(map[string]TypeID),
		relByName:    make(map[string]RelationID),
	}
}

func (s *Schema) ensureMaps() {
	if s.typeByName == nil {
		s.typeByName = make(map[string]TypeID)
		s.typeByAbbrev = make(map[string]TypeID)
		s.relByName = make(map[string]RelationID)
	}
}

// AddType registers a new object type and returns its TypeID. Both the
// full name and the abbreviation must be unique within the schema.
func (s *Schema) AddType(name, abbrev string) (TypeID, error) {
	s.ensureMaps()
	if name == "" || abbrev == "" {
		return NoType, fmt.Errorf("hin: type name and abbreviation must be non-empty")
	}
	if _, ok := s.typeByName[name]; ok {
		return NoType, fmt.Errorf("hin: duplicate type name %q", name)
	}
	if _, ok := s.typeByAbbrev[abbrev]; ok {
		return NoType, fmt.Errorf("hin: duplicate type abbreviation %q", abbrev)
	}
	id := TypeID(len(s.types))
	s.types = append(s.types, TypeInfo{Name: name, Abbrev: abbrev})
	s.typeByName[name] = id
	s.typeByAbbrev[abbrev] = id
	return id, nil
}

// MustAddType is AddType that panics on error, for use in schema
// construction code where the definitions are static.
func (s *Schema) MustAddType(name, abbrev string) TypeID {
	id, err := s.AddType(name, abbrev)
	if err != nil {
		panic(err)
	}
	return id
}

// AddRelation registers a directed relation from one type to another
// together with its inverse, and returns the forward RelationID. The
// inverse relation is named invName; if invName is empty it defaults to
// name + "^-1".
func (s *Schema) AddRelation(name, invName string, from, to TypeID) (RelationID, error) {
	s.ensureMaps()
	if name == "" {
		return NoRelation, fmt.Errorf("hin: relation name must be non-empty")
	}
	if invName == "" {
		invName = name + "^-1"
	}
	if !s.validType(from) || !s.validType(to) {
		return NoRelation, fmt.Errorf("hin: relation %q references unknown type", name)
	}
	if _, ok := s.relByName[name]; ok {
		return NoRelation, fmt.Errorf("hin: duplicate relation name %q", name)
	}
	if _, ok := s.relByName[invName]; ok {
		return NoRelation, fmt.Errorf("hin: duplicate relation name %q", invName)
	}
	fwd := RelationID(len(s.relations))
	inv := fwd + 1
	s.relations = append(s.relations,
		RelationInfo{Name: name, From: from, To: to, Inverse: inv},
		RelationInfo{Name: invName, From: to, To: from, Inverse: fwd},
	)
	s.relByName[name] = fwd
	s.relByName[invName] = inv
	return fwd, nil
}

// MustAddRelation is AddRelation that panics on error.
func (s *Schema) MustAddRelation(name, invName string, from, to TypeID) RelationID {
	id, err := s.AddRelation(name, invName, from, to)
	if err != nil {
		panic(err)
	}
	return id
}

func (s *Schema) validType(t TypeID) bool {
	return t >= 0 && int(t) < len(s.types)
}

func (s *Schema) validRelation(r RelationID) bool {
	return r >= 0 && int(r) < len(s.relations)
}

// NumTypes returns the number of registered object types.
func (s *Schema) NumTypes() int { return len(s.types) }

// NumRelations returns the number of registered relations, counting
// each inverse separately.
func (s *Schema) NumRelations() int { return len(s.relations) }

// Type returns the TypeInfo for id. It panics if id is out of range.
func (s *Schema) Type(id TypeID) TypeInfo {
	if !s.validType(id) {
		panic(fmt.Sprintf("hin: invalid TypeID %d", id))
	}
	return s.types[id]
}

// Relation returns the RelationInfo for id. It panics if id is out of
// range.
func (s *Schema) Relation(id RelationID) RelationInfo {
	if !s.validRelation(id) {
		panic(fmt.Sprintf("hin: invalid RelationID %d", id))
	}
	return s.relations[id]
}

// Inverse returns the RelationID of the inverse of r.
func (s *Schema) Inverse(r RelationID) RelationID {
	return s.Relation(r).Inverse
}

// TypeByName looks up an object type by its full name. The second
// return value reports whether the type exists.
func (s *Schema) TypeByName(name string) (TypeID, bool) {
	id, ok := s.typeByName[name]
	if !ok {
		return NoType, false
	}
	return id, true
}

// TypeByAbbrev looks up an object type by its meta-path abbreviation.
func (s *Schema) TypeByAbbrev(abbrev string) (TypeID, bool) {
	id, ok := s.typeByAbbrev[abbrev]
	if !ok {
		return NoType, false
	}
	return id, true
}

// RelationByName looks up a relation by name.
func (s *Schema) RelationByName(name string) (RelationID, bool) {
	id, ok := s.relByName[name]
	if !ok {
		return NoRelation, false
	}
	return id, true
}

// RelationsFrom returns the IDs of all relations whose source type is
// from, in registration order.
func (s *Schema) RelationsFrom(from TypeID) []RelationID {
	var out []RelationID
	for i, r := range s.relations {
		if r.From == from {
			out = append(out, RelationID(i))
		}
	}
	return out
}

// RelationsBetween returns the IDs of all relations leading from type
// from to type to.
func (s *Schema) RelationsBetween(from, to TypeID) []RelationID {
	var out []RelationID
	for i, r := range s.relations {
		if r.From == from && r.To == to {
			out = append(out, RelationID(i))
		}
	}
	return out
}

// String renders the schema in a compact human-readable form, one
// relation pair per line.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("schema{")
	for i, t := range s.types {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%s)", t.Name, t.Abbrev)
	}
	b.WriteString("}")
	for i := 0; i < len(s.relations); i += 2 {
		r := s.relations[i]
		fmt.Fprintf(&b, "\n  %s: %s -> %s (inverse %s)",
			r.Name, s.types[r.From].Abbrev, s.types[r.To].Abbrev,
			s.relations[r.Inverse].Name)
	}
	return b.String()
}
