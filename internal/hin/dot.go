package hin

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders a subgraph in Graphviz DOT format: the given seed
// objects plus everything within the given number of hops, with
// object types as node colours and relation names as edge labels.
// It is a debugging aid for inspecting an entity's neighbourhood —
// the evidence SHINE's random walks operate over.
func (g *Graph) WriteDOT(w io.Writer, seeds []ObjectID, hops int) error {
	if hops < 0 {
		return fmt.Errorf("hin: negative hop count %d", hops)
	}
	include := make(map[ObjectID]bool)
	frontier := make([]ObjectID, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= g.NumObjects() {
			return fmt.Errorf("hin: seed object %d out of range", s)
		}
		if !include[s] {
			include[s] = true
			frontier = append(frontier, s)
		}
	}
	for h := 0; h < hops; h++ {
		var next []ObjectID
		for _, v := range frontier {
			for rel := 0; rel < g.schema.NumRelations(); rel++ {
				for _, dst := range g.Neighbors(RelationID(rel), v) {
					if !include[dst] {
						include[dst] = true
						next = append(next, dst)
					}
				}
			}
		}
		frontier = next
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph hin {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [style=filled];")

	// A fixed palette cycled over type IDs keeps colours stable.
	palette := []string{"lightblue", "lightyellow", "lightpink", "lightgreen", "lavender", "wheat", "lightcyan"}
	for v := 0; v < g.NumObjects(); v++ {
		id := ObjectID(v)
		if !include[id] {
			continue
		}
		t := g.TypeOf(id)
		// %q escapes quotes and backslashes for DOT's C-style strings.
		fmt.Fprintf(bw, "  n%d [label=%q fillcolor=%s];\n",
			v, fmt.Sprintf("%s (%s)", flattenName(g.Name(id)), g.schema.Type(t).Abbrev),
			palette[int(t)%len(palette)])
	}
	// Forward relations only; the inverse arrows add no information.
	for rel := 0; rel < g.schema.NumRelations(); rel += 2 {
		name := g.schema.Relation(RelationID(rel)).Name
		for v := 0; v < g.NumObjects(); v++ {
			if !include[ObjectID(v)] {
				continue
			}
			for _, dst := range g.Neighbors(RelationID(rel), ObjectID(v)) {
				if !include[dst] {
					continue
				}
				fmt.Fprintf(bw, "  n%d -> n%d [label=%q];\n", v, dst, name)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// flattenName removes newlines from an object name for label use.
func flattenName(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}
