package hin

import (
	"fmt"
	"slices"

	"shine/internal/par"
)

// Delta stages objects and edges to be appended to an immutable base
// Graph. It is the incremental-update counterpart of Builder: open one
// with Graph.Append, stage additions with Append/Patch (which perform
// the same validation and normalisation AddObject/AddLink would), and
// splice the result into a new graph with Merge or MergeDeltas. The
// base graph is never modified. A Delta is not safe for concurrent
// use; the base graph remains safe to read concurrently throughout.
type Delta struct {
	base  *Graph
	baseN int

	// Staged objects, assigned IDs baseN, baseN+1, ... in Append order
	// — exactly the IDs a Builder replaying the base then the delta
	// would assign, which is what makes the merge bit-identical.
	typeOf []TypeID
	names  []string
	staged map[nameKey]ObjectID

	// edges holds staged links per forward relation, normalised like
	// Builder.edges. Endpoints may be base objects or staged objects.
	edges    [][]edge
	numEdges int
}

// Append opens an empty delta buffer over g. The returned Delta stages
// new objects and edges against g without modifying it.
func (g *Graph) Append() *Delta {
	return &Delta{
		base:   g,
		baseN:  g.NumObjects(),
		staged: make(map[nameKey]ObjectID),
		edges:  make([][]edge, g.schema.NumRelations()),
	}
}

// Append stages an object of the given type with the given name and
// returns its ObjectID. Like Builder.AddObject, names act as unique
// keys within a type: if the base graph or this delta already holds
// the object, its existing ID is returned and nothing is staged.
func (d *Delta) Append(typ TypeID, name string) (ObjectID, error) {
	if !d.base.schema.validType(typ) {
		return NoObject, fmt.Errorf("hin: Delta.Append: invalid type %d", typ)
	}
	key := nameKey{typ, name}
	if id, ok := d.base.nameIndex[key]; ok {
		return id, nil
	}
	if id, ok := d.staged[key]; ok {
		return id, nil
	}
	id := ObjectID(d.baseN + len(d.typeOf))
	d.typeOf = append(d.typeOf, typ)
	d.names = append(d.names, name)
	d.staged[key] = id
	return id, nil
}

// MustAppend is Append that panics on error.
func (d *Delta) MustAppend(typ TypeID, name string) ObjectID {
	id, err := d.Append(typ, name)
	if err != nil {
		panic(err)
	}
	return id
}

// Patch stages a link of relation rel from src to dst. Endpoints may
// be base objects or objects staged by this delta. Validation and
// normalisation mirror Builder.AddLink: inverse relations are folded
// onto their forward member, endpoint types are checked against the
// schema, and duplicates are kept (multiplicity carries weight in
// random walks).
func (d *Delta) Patch(rel RelationID, src, dst ObjectID) error {
	schema := d.base.schema
	if !schema.validRelation(rel) {
		return fmt.Errorf("hin: Delta.Patch: invalid relation %d", rel)
	}
	if !d.validObject(src) || !d.validObject(dst) {
		return fmt.Errorf("hin: Delta.Patch: object out of range (src=%d dst=%d)", src, dst)
	}
	// Normalise to the even (forward) member of the relation pair.
	if rel%2 == 1 {
		rel = schema.Inverse(rel)
		src, dst = dst, src
	}
	ri := schema.Relation(rel)
	if d.typeOfAt(src) != ri.From || d.typeOfAt(dst) != ri.To {
		return fmt.Errorf("hin: Delta.Patch: relation %s expects %s -> %s, got %s -> %s",
			ri.Name,
			schema.Type(ri.From).Abbrev, schema.Type(ri.To).Abbrev,
			schema.Type(d.typeOfAt(src)).Abbrev, schema.Type(d.typeOfAt(dst)).Abbrev)
	}
	// Relations registered in the schema after the delta was opened
	// grow the edge table, exactly like Builder.growEdges.
	for len(d.edges) < schema.NumRelations() {
		d.edges = append(d.edges, nil)
	}
	d.edges[rel] = append(d.edges[rel], edge{src, dst})
	d.numEdges++
	return nil
}

// MustPatch is Patch that panics on error.
func (d *Delta) MustPatch(rel RelationID, src, dst ObjectID) {
	if err := d.Patch(rel, src, dst); err != nil {
		panic(err)
	}
}

// Lookup resolves (type, name) against the base graph first, then the
// staged objects.
func (d *Delta) Lookup(typ TypeID, name string) (ObjectID, bool) {
	if id, ok := d.base.Lookup(typ, name); ok {
		return id, true
	}
	id, ok := d.staged[nameKey{typ, name}]
	if !ok {
		return NoObject, false
	}
	return id, true
}

// NumObjects returns the number of newly staged objects (base objects
// resolved by Append do not count).
func (d *Delta) NumObjects() int { return len(d.typeOf) }

// NumEdges returns the number of staged links, counting each
// forward/inverse pair once.
func (d *Delta) NumEdges() int { return d.numEdges }

// Empty reports whether the delta stages nothing at all.
func (d *Delta) Empty() bool { return len(d.typeOf) == 0 && d.numEdges == 0 }

// Base returns the graph the delta was opened over.
func (d *Delta) Base() *Graph { return d.base }

// Merge splices this delta into its base and returns the new graph.
// Shorthand for MergeDeltas(d.Base(), d).
func (d *Delta) Merge() (*Graph, MergeStats, error) {
	return MergeDeltas(d.base, d)
}

func (d *Delta) typeOfAt(v ObjectID) TypeID {
	if int(v) < d.baseN {
		return d.base.typeOf[v]
	}
	return d.typeOf[int(v)-d.baseN]
}

func (d *Delta) validObject(v ObjectID) bool {
	return v >= 0 && int(v) < d.baseN+len(d.typeOf)
}

// MergeStats summarises what a MergeDeltas spliced in.
type MergeStats struct {
	// NewObjects and NewEdges count staged additions (edges count each
	// forward/inverse pair once, matching Graph.NumLinks).
	NewObjects int
	NewEdges   int
	// Touched lists every object whose adjacency rows changed: the
	// endpoints of all staged edges (a link changes the row of both
	// ends — one per direction) plus every staged object. Sorted
	// ascending, no duplicates. Downstream caches key their
	// invalidation off this set.
	Touched []ObjectID
}

// MergeDeltas splices one or more deltas staged over the same base
// graph into a new immutable Graph in one pass per relation. The
// result is bit-identical to a from-scratch Builder.Build over the
// unioned input — same object IDs, same CSR bytes — because staged
// objects take the IDs a replaying Builder would assign and each
// touched CSR row is the sorted multiset merge of the base row and
// the staged additions. The base graph and the deltas are not
// modified; the returned graph shares nothing mutable with either.
//
// Deltas are applied in argument order. Two deltas staging the same
// (type, name) is an error: a from-scratch Builder would deduplicate
// them into one object, which a pairwise splice cannot reproduce —
// stage interdependent additions in a single delta instead.
func MergeDeltas(base *Graph, deltas ...*Delta) (*Graph, MergeStats, error) {
	schema := base.schema
	for i, d := range deltas {
		if d == nil {
			return nil, MergeStats{}, fmt.Errorf("hin: MergeDeltas: delta %d is nil", i)
		}
		if d.base != base {
			return nil, MergeStats{}, fmt.Errorf("hin: MergeDeltas: delta %d was staged over a different graph", i)
		}
	}
	numRels := schema.NumRelations()
	oldN := base.NumObjects()

	// Combined object tables. Each delta assigned staged IDs starting
	// at oldN; deltas after the first are shifted up by the number of
	// objects staged before them.
	typeOf := append([]TypeID(nil), base.typeOf...)
	names := append([]string(nil), base.names...)
	nameIndex := make(map[nameKey]ObjectID, len(base.nameIndex))
	for k, v := range base.nameIndex {
		nameIndex[k] = v
	}
	shifts := make([]ObjectID, len(deltas))
	next := oldN
	for i, d := range deltas {
		shifts[i] = ObjectID(next - d.baseN)
		for j := range d.typeOf {
			key := nameKey{d.typeOf[j], d.names[j]}
			if prev, dup := nameIndex[key]; dup {
				return nil, MergeStats{}, fmt.Errorf(
					"hin: MergeDeltas: %s %q staged more than once across deltas (already object %d); stage dependent additions in one delta",
					schema.Type(d.typeOf[j]).Name, d.names[j], prev)
			}
			nameIndex[key] = ObjectID(next)
			typeOf = append(typeOf, d.typeOf[j])
			names = append(names, d.names[j])
			next++
		}
	}
	newN := next

	// Staged edges per forward relation, endpoints remapped into the
	// combined ID space.
	stagedByRel := make([][]edge, numRels)
	newEdges := 0
	for i, d := range deltas {
		shift := shifts[i]
		remap := func(v ObjectID) ObjectID {
			if int(v) >= oldN {
				return v + shift
			}
			return v
		}
		for rel := 0; rel < len(d.edges); rel += 2 {
			for _, e := range d.edges[rel] {
				stagedByRel[rel] = append(stagedByRel[rel], edge{remap(e.src), remap(e.dst)})
				newEdges++
			}
		}
	}

	g := &Graph{
		schema:    schema,
		typeOf:    typeOf,
		names:     names,
		nameIndex: nameIndex,
		rels:      make([]csr, numRels),
	}
	g.byType = make([][]ObjectID, schema.NumTypes())
	for v, t := range g.typeOf {
		g.byType[t] = append(g.byType[t], ObjectID(v))
	}

	// Splice per relation pair, in parallel like Builder.Build: pairs
	// are independent and each pair's splice is deterministic, so the
	// result is identical for any worker count.
	numPairs := numRels / 2
	par.For(numPairs, 0, func(pair int) {
		rel := 2 * pair
		var baseFwd, baseInv csr
		if rel < len(base.rels) {
			baseFwd, baseInv = base.rels[rel], base.rels[rel+1]
		}
		fwd := stagedByRel[rel]
		g.rels[rel] = spliceCSR(oldN, newN, baseFwd, fwd, false)
		g.rels[rel+1] = spliceCSR(oldN, newN, baseInv, fwd, true)
	})
	g.sealDegrees()

	// Touched set: both endpoints of every staged edge plus every
	// staged object.
	touchedMark := make([]bool, newN)
	for _, edges := range stagedByRel {
		for _, e := range edges {
			touchedMark[e.src] = true
			touchedMark[e.dst] = true
		}
	}
	for v := oldN; v < newN; v++ {
		touchedMark[v] = true
	}
	var touched []ObjectID
	for v, t := range touchedMark {
		if t {
			touched = append(touched, ObjectID(v))
		}
	}

	return g, MergeStats{
		NewObjects: newN - oldN,
		NewEdges:   newEdges,
		Touched:    touched,
	}, nil
}

// spliceCSR merges one relation's staged edges into the base CSR in a
// single pass over both. Untouched rows are block-copied between
// touch points; each touched row is the two-pointer merge of the base
// row and the staged additions, both already sorted, which yields the
// same ascending multiset buildCSR's counting-sort-plus-row-sort
// produces — hence byte identity with a from-scratch build. A zero
// csr base (a relation registered after the base graph was built) is
// treated as all-empty rows.
func spliceCSR(oldN, newN int, base csr, staged []edge, reversed bool) csr {
	// Orient and sort the staged edges by (source, target) for this
	// direction.
	keyed := make([]edge, len(staged))
	for i, e := range staged {
		if reversed {
			keyed[i] = edge{src: e.dst, dst: e.src}
		} else {
			keyed[i] = e
		}
	}
	slices.SortFunc(keyed, func(a, b edge) int {
		if a.src != b.src {
			if a.src < b.src {
				return -1
			}
			return 1
		}
		switch {
		case a.dst < b.dst:
			return -1
		case a.dst > b.dst:
			return 1
		}
		return 0
	})

	baseLen := len(base.adj)
	off := make([]int32, newN+1)
	if base.off != nil {
		for v := 0; v < oldN; v++ {
			off[v+1] = base.off[v+1] - base.off[v]
		}
	}
	for _, e := range keyed {
		off[e.src+1]++
	}
	for i := 1; i <= newN; i++ {
		off[i] += off[i-1]
	}

	adj := make([]ObjectID, baseLen+len(keyed))
	basePos, outPos := 0, 0
	for i := 0; i < len(keyed); {
		v := keyed[i].src
		j := i
		for j < len(keyed) && keyed[j].src == v {
			j++
		}
		rowStart, rowEnd := baseLen, baseLen
		if base.off != nil && int(v) < oldN {
			rowStart, rowEnd = int(base.off[v]), int(base.off[v+1])
		}
		// Untouched base span up to row v, in one copy.
		outPos += copy(adj[outPos:], base.adj[basePos:rowStart])
		// Merge row v's base run with its staged run.
		row := base.adj[rowStart:rowEnd]
		bi := 0
		for k := i; k < j; k++ {
			d := keyed[k].dst
			for bi < len(row) && row[bi] <= d {
				adj[outPos] = row[bi]
				outPos++
				bi++
			}
			adj[outPos] = d
			outPos++
		}
		for bi < len(row) {
			adj[outPos] = row[bi]
			outPos++
			bi++
		}
		basePos = rowEnd
		i = j
	}
	copy(adj[outPos:], base.adj[basePos:])
	return csr{off: off, adj: adj}
}
