package hin

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTSubgraph(t *testing.T) {
	d, g, ids := tinyDBLP(t)
	_ = d
	var buf bytes.Buffer
	// One hop from wei: her papers only.
	if err := g.WriteDOT(&buf, []ObjectID{ids["wei"]}, 1); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph hin {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("output is not a DOT digraph")
	}
	for _, want := range []string{"Wei Wang", "p1", "p2", "write"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// SIGMOD is two hops away and must be absent at hops=1.
	if strings.Contains(out, "SIGMOD") {
		t.Error("hop limit not respected: SIGMOD included at 1 hop")
	}
	// At two hops it appears.
	buf.Reset()
	if err := g.WriteDOT(&buf, []ObjectID{ids["wei"]}, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SIGMOD") {
		t.Error("SIGMOD missing at 2 hops")
	}
}

func TestWriteDOTValidation(t *testing.T) {
	_, g, ids := tinyDBLP(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, []ObjectID{ids["wei"]}, -1); err == nil {
		t.Error("negative hops accepted")
	}
	if err := g.WriteDOT(&buf, []ObjectID{ObjectID(999)}, 1); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func TestWriteDOTEscapesNames(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, `Weird "Name"`)
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, []ObjectID{a}, 0); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	if strings.Count(buf.String(), `\"`) < 2 {
		t.Errorf("quotes not escaped: %s", buf.String())
	}
}
