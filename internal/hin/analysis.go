package hin

import (
	"fmt"
	"math"
	"sort"
)

// DegreeSummary describes the degree distribution of one object type
// under one relation — the statistics the paper's setting depends on
// (Zipfian author productivity is what makes the popularity model
// informative) and that the synthetic generator is calibrated to
// reproduce.
type DegreeSummary struct {
	// Objects is the number of objects of the type.
	Objects int
	// Min, Max, Mean and Median summarise the degree distribution.
	Min, Max int
	Mean     float64
	Median   float64
	// P90 and P99 are upper percentiles.
	P90, P99 int
	// Gini is the Gini coefficient of the degrees: 0 for perfectly
	// uniform, approaching 1 for extreme concentration. Zipfian
	// distributions sit high (> 0.5).
	Gini float64
}

// DegreeDistribution computes the degree summary for objects of type
// t under relation rel.
func (g *Graph) DegreeDistribution(t TypeID, rel RelationID) (DegreeSummary, error) {
	objs := g.ObjectsOfType(t)
	if len(objs) == 0 {
		return DegreeSummary{}, fmt.Errorf("hin: no objects of type %d", t)
	}
	if rel < 0 || int(rel) >= g.schema.NumRelations() {
		return DegreeSummary{}, fmt.Errorf("hin: invalid relation %d", rel)
	}
	degrees := make([]int, len(objs))
	for i, v := range objs {
		degrees[i] = g.Degree(rel, v)
	}
	sort.Ints(degrees)

	s := DegreeSummary{
		Objects: len(objs),
		Min:     degrees[0],
		Max:     degrees[len(degrees)-1],
	}
	total := 0
	for _, d := range degrees {
		total += d
	}
	s.Mean = float64(total) / float64(len(degrees))
	s.Median = percentileSorted(degrees, 0.5)
	s.P90 = int(percentileSorted(degrees, 0.9))
	s.P99 = int(percentileSorted(degrees, 0.99))
	s.Gini = giniSorted(degrees, total)
	return s, nil
}

// percentileSorted returns the p-th percentile (0 < p <= 1) of a
// sorted int slice, with linear interpolation.
func percentileSorted(sorted []int, p float64) float64 {
	if len(sorted) == 1 {
		return float64(sorted[0])
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// giniSorted computes the Gini coefficient of a sorted non-negative
// slice.
func giniSorted(sorted []int, total int) float64 {
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	weighted := 0.0
	for i, d := range sorted {
		weighted += float64(i+1) * float64(d)
	}
	return (2*weighted)/(n*float64(total)) - (n+1)/n
}

// DegreeHistogram buckets the degrees of objects of type t under
// relation rel into powers of two: bucket k counts degrees in
// [2^k, 2^(k+1)), with bucket -1 holding zero degrees. Keys are the
// bucket exponents, values the counts.
func (g *Graph) DegreeHistogram(t TypeID, rel RelationID) (map[int]int, error) {
	objs := g.ObjectsOfType(t)
	if len(objs) == 0 {
		return nil, fmt.Errorf("hin: no objects of type %d", t)
	}
	if rel < 0 || int(rel) >= g.schema.NumRelations() {
		return nil, fmt.Errorf("hin: invalid relation %d", rel)
	}
	hist := make(map[int]int)
	for _, v := range objs {
		d := g.Degree(rel, v)
		if d == 0 {
			hist[-1]++
			continue
		}
		hist[int(math.Floor(math.Log2(float64(d))))]++
	}
	return hist, nil
}
