package hin

import (
	"bytes"
	"fmt"
	"testing"
)

// tinyDBLP builds a miniature DBLP network with two authors sharing a
// coauthored paper:
//
//	wei ---write---> p1 <---write--- rakesh
//	sigmod -publish-> p1 -contain-> "mining"
//	p1 -publishedIn-> 1999
//	wei ---write---> p2, vldb -publish-> p2, p2 -contain-> "data"
func tinyDBLP(t testing.TB) (*DBLPSchema, *Graph, map[string]ObjectID) {
	t.Helper()
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	ids := map[string]ObjectID{
		"wei":    b.MustAddObject(d.Author, "Wei Wang"),
		"rakesh": b.MustAddObject(d.Author, "Rakesh Kumar"),
		"p1":     b.MustAddObject(d.Paper, "p1"),
		"p2":     b.MustAddObject(d.Paper, "p2"),
		"sigmod": b.MustAddObject(d.Venue, "SIGMOD"),
		"vldb":   b.MustAddObject(d.Venue, "VLDB"),
		"mining": b.MustAddObject(d.Term, "mining"),
		"data":   b.MustAddObject(d.Term, "data"),
		"1999":   b.MustAddObject(d.Year, "1999"),
	}
	b.MustAddLink(d.Write, ids["wei"], ids["p1"])
	b.MustAddLink(d.Write, ids["rakesh"], ids["p1"])
	b.MustAddLink(d.Write, ids["wei"], ids["p2"])
	b.MustAddLink(d.Publish, ids["sigmod"], ids["p1"])
	b.MustAddLink(d.Publish, ids["vldb"], ids["p2"])
	b.MustAddLink(d.Contain, ids["p1"], ids["mining"])
	b.MustAddLink(d.Contain, ids["p2"], ids["data"])
	b.MustAddLink(d.PublishedIn, ids["p1"], ids["1999"])
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d, g, ids
}

func TestBuilderDeduplicatesObjects(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a1 := b.MustAddObject(d.Author, "Wei Wang")
	a2 := b.MustAddObject(d.Author, "Wei Wang")
	if a1 != a2 {
		t.Errorf("same (type, name) produced distinct IDs %d, %d", a1, a2)
	}
	// Same name under a different type is a different object.
	v := b.MustAddObject(d.Venue, "Wei Wang")
	if v == a1 {
		t.Error("same name under different type shared an ID")
	}
	if b.NumObjects() != 2 {
		t.Errorf("NumObjects = %d, want 2", b.NumObjects())
	}
}

func TestBuilderRejectsBadLinks(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "A1")
	v := b.MustAddObject(d.Venue, "V1")
	if err := b.AddLink(d.Write, a, v); err == nil {
		t.Error("type-violating link accepted")
	}
	if err := b.AddLink(d.Write, a, ObjectID(99)); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := b.AddLink(RelationID(99), a, v); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestGraphNeighborsAndDegrees(t *testing.T) {
	d, g, ids := tinyDBLP(t)

	papers := g.Neighbors(d.Write, ids["wei"])
	if len(papers) != 2 {
		t.Fatalf("wei writes %d papers, want 2", len(papers))
	}
	if g.Degree(d.Write, ids["wei"]) != 2 {
		t.Errorf("Degree(write, wei) = %d, want 2", g.Degree(d.Write, ids["wei"]))
	}
	// Inverse adjacency was derived automatically.
	authors := g.Neighbors(d.WrittenBy, ids["p1"])
	if len(authors) != 2 {
		t.Fatalf("p1 writtenBy %d authors, want 2", len(authors))
	}
	found := map[ObjectID]bool{}
	for _, a := range authors {
		found[a] = true
	}
	if !found[ids["wei"]] || !found[ids["rakesh"]] {
		t.Errorf("p1 authors = %v, want wei and rakesh", authors)
	}
	// Venue has no write links.
	if got := g.Degree(d.Write, ids["sigmod"]); got != 0 {
		t.Errorf("Degree(write, sigmod) = %d, want 0", got)
	}
}

func TestBuilderAddLinkAcceptsInverseDirection(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "A1")
	p := b.MustAddObject(d.Paper, "P1")
	// Adding via the inverse relation must normalise to the same link.
	b.MustAddLink(d.WrittenBy, p, a)
	g := b.Build()
	if got := g.Neighbors(d.Write, a); len(got) != 1 || got[0] != p {
		t.Errorf("Neighbors(write, a) = %v, want [%d]", got, p)
	}
	if got := g.Neighbors(d.WrittenBy, p); len(got) != 1 || got[0] != a {
		t.Errorf("Neighbors(writtenBy, p) = %v, want [%d]", got, a)
	}
}

func TestLinkMultiplicityIsPreserved(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	v := b.MustAddObject(d.Venue, "SIGMOD")
	p := b.MustAddObject(d.Paper, "P1")
	p2 := b.MustAddObject(d.Paper, "P2")
	b.MustAddLink(d.Publish, v, p)
	b.MustAddLink(d.Publish, v, p)
	b.MustAddLink(d.Publish, v, p2)
	g := b.Build()
	if got := g.Degree(d.Publish, v); got != 3 {
		t.Errorf("Degree with duplicate link = %d, want 3", got)
	}
}

func TestGraphTotalDegree(t *testing.T) {
	d, g, ids := tinyDBLP(t)
	_ = d
	// p1 has links: writtenBy wei, writtenBy rakesh, publishedAt sigmod,
	// contain mining, publishedIn 1999 => out-degree 5.
	if got := g.TotalDegree(ids["p1"]); got != 5 {
		t.Errorf("TotalDegree(p1) = %d, want 5", got)
	}
	// 1999 has a single yearOf link back to p1.
	if got := g.TotalDegree(ids["1999"]); got != 1 {
		t.Errorf("TotalDegree(1999) = %d, want 1", got)
	}
}

func TestGraphObjectsOfTypeAndLookup(t *testing.T) {
	d, g, ids := tinyDBLP(t)
	authors := g.ObjectsOfType(d.Author)
	if len(authors) != 2 {
		t.Fatalf("%d authors, want 2", len(authors))
	}
	if id, ok := g.Lookup(d.Author, "Wei Wang"); !ok || id != ids["wei"] {
		t.Errorf("Lookup(author, Wei Wang) = %d, %v", id, ok)
	}
	if _, ok := g.Lookup(d.Venue, "Wei Wang"); ok {
		t.Error("Lookup found a venue named Wei Wang")
	}
	if g.ObjectsOfType(TypeID(99)) != nil {
		t.Error("ObjectsOfType(99) non-nil")
	}
}

func TestGraphForEachLinkVisitsBothDirections(t *testing.T) {
	_, g, _ := tinyDBLP(t)
	count := 0
	g.ForEachLink(func(rel RelationID, src, dst ObjectID) { count++ })
	if want := 2 * g.NumLinks(); count != want {
		t.Errorf("ForEachLink visited %d directed links, want %d", count, want)
	}
}

func TestGraphStats(t *testing.T) {
	_, g, _ := tinyDBLP(t)
	st := g.Stats()
	if st.Objects != 9 {
		t.Errorf("Stats.Objects = %d, want 9", st.Objects)
	}
	if st.Links != 8 {
		t.Errorf("Stats.Links = %d, want 8", st.Links)
	}
	if st.ObjectsByTyp["author"] != 2 {
		t.Errorf("authors = %d, want 2", st.ObjectsByTyp["author"])
	}
	if st.LinksByRel["write"] != 3 {
		t.Errorf("write links = %d, want 3", st.LinksByRel["write"])
	}
	if st.Isolated != 0 {
		t.Errorf("Isolated = %d, want 0", st.Isolated)
	}
}

func TestGraphStatsCountsIsolatedObjects(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	b.MustAddObject(d.Author, "Loner")
	g := b.Build()
	if st := g.Stats(); st.Isolated != 1 {
		t.Errorf("Isolated = %d, want 1", st.Isolated)
	}
}

func TestBuildIsRepeatable(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "A1")
	p := b.MustAddObject(d.Paper, "P1")
	b.MustAddLink(d.Write, a, p)
	g1 := b.Build()
	// Keep building after the first freeze.
	p2 := b.MustAddObject(d.Paper, "P2")
	b.MustAddLink(d.Write, a, p2)
	g2 := b.Build()
	if g1.NumObjects() != 2 || g2.NumObjects() != 3 {
		t.Errorf("graphs share state: %d, %d objects", g1.NumObjects(), g2.NumObjects())
	}
	if g1.Degree(d.Write, a) != 1 || g2.Degree(d.Write, a) != 2 {
		t.Errorf("degrees = %d, %d, want 1, 2", g1.Degree(d.Write, a), g2.Degree(d.Write, a))
	}
}

func TestTotalDegreesMatchesPerRelationSums(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a1 := b.MustAddObject(d.Author, "A1")
	a2 := b.MustAddObject(d.Author, "A2")
	v := b.MustAddObject(d.Venue, "V")
	for i := 0; i < 4; i++ {
		p := b.MustAddObject(d.Paper, "P"+string(rune('0'+i)))
		b.MustAddLink(d.Write, a1, p)
		if i%2 == 0 {
			b.MustAddLink(d.Write, a2, p)
		}
		b.MustAddLink(d.Publish, v, p)
	}
	b.MustAddObject(d.Term, "isolated")
	g := b.Build()

	degs := g.TotalDegrees()
	if len(degs) != g.NumObjects() {
		t.Fatalf("TotalDegrees has %d entries for %d objects", len(degs), g.NumObjects())
	}
	for ov := 0; ov < g.NumObjects(); ov++ {
		want := 0
		for rel := 0; rel < g.NumRelations(); rel++ {
			want += g.Degree(RelationID(rel), ObjectID(ov))
		}
		if int(degs[ov]) != want {
			t.Errorf("TotalDegrees[%d] = %d, per-relation sum = %d", ov, degs[ov], want)
		}
		if g.TotalDegree(ObjectID(ov)) != want {
			t.Errorf("TotalDegree(%d) = %d, want %d", ov, g.TotalDegree(ObjectID(ov)), want)
		}
	}
}

func TestRowsExposesCSRRuns(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a := b.MustAddObject(d.Author, "A")
	p1 := b.MustAddObject(d.Paper, "P1")
	p2 := b.MustAddObject(d.Paper, "P2")
	b.MustAddLink(d.Write, a, p2)
	b.MustAddLink(d.Write, a, p1)
	b.MustAddLink(d.Write, a, p1) // multiplicity
	g := b.Build()

	off, adj := g.Rows(d.Write)
	if len(off) != g.NumObjects()+1 {
		t.Fatalf("off has %d entries, want %d", len(off), g.NumObjects()+1)
	}
	if len(adj) != 3 {
		t.Fatalf("adj has %d entries, want 3", len(adj))
	}
	for ov := 0; ov < g.NumObjects(); ov++ {
		run := adj[off[ov]:off[ov+1]]
		want := g.Neighbors(d.Write, ObjectID(ov))
		if len(run) != len(want) {
			t.Fatalf("row %d: %v != Neighbors %v", ov, run, want)
		}
		for i := range run {
			if run[i] != want[i] {
				t.Fatalf("row %d: %v != Neighbors %v", ov, run, want)
			}
		}
	}
	// Runs are sorted ascending with multiplicity: P1, P1, P2.
	row := adj[off[a]:off[a+1]]
	if row[0] != p1 || row[1] != p1 || row[2] != p2 {
		t.Errorf("author row = %v, want [%d %d %d]", row, p1, p1, p2)
	}
}

// TestParallelBuildIsDeterministic freezes the same builder state
// twice and serialises both graphs: the parallel per-relation-pair
// construction must be invisible in the output bytes.
func TestParallelBuildIsDeterministic(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	for i := 0; i < 50; i++ {
		a := b.MustAddObject(d.Author, fmt.Sprintf("A%d", i))
		p := b.MustAddObject(d.Paper, fmt.Sprintf("P%d", i))
		b.MustAddLink(d.Write, a, p)
		if i > 0 {
			b.MustAddLink(d.Write, a, ObjectID(int(p)-2))
		}
	}
	var buf1, buf2 bytes.Buffer
	if _, err := b.Build().WriteTo(&buf1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build().WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("two Builds of identical state serialised differently")
	}
}
