package hin

// NewBuilderFromGraph returns a Builder pre-loaded with every object
// and link of g, sharing g's schema. It is the starting point for
// network enrichment: add newly extracted objects and relations, then
// Build a new immutable graph. The source graph is not modified.
//
// Object IDs are preserved: object v of g is object v of the builder,
// so entity references obtained from g (e.g. linking results) remain
// valid against the rebuilt graph.
//
// Note that the schema is shared, not copied: relation and type IDs
// registered after this call exist in the schema but have no links in
// g itself. Querying g with such IDs panics, exactly as querying with
// any other out-of-range ID would.
func NewBuilderFromGraph(g *Graph) *Builder {
	b := NewBuilder(g.schema)
	for v := 0; v < g.NumObjects(); v++ {
		b.MustAddObject(g.typeOf[v], g.names[v])
	}
	for rel := 0; rel < len(g.rels); rel += 2 {
		c := g.rels[rel]
		for v := 0; v < g.NumObjects(); v++ {
			for _, dst := range c.neighbors(ObjectID(v)) {
				b.MustAddLink(RelationID(rel), ObjectID(v), dst)
			}
		}
	}
	return b
}
