package hin

import (
	"strings"
	"testing"
)

func TestSchemaAddType(t *testing.T) {
	s := NewSchema()
	a, err := s.AddType("author", "A")
	if err != nil {
		t.Fatalf("AddType: %v", err)
	}
	p, err := s.AddType("paper", "P")
	if err != nil {
		t.Fatalf("AddType: %v", err)
	}
	if a == p {
		t.Fatalf("distinct types got same ID %d", a)
	}
	if s.NumTypes() != 2 {
		t.Fatalf("NumTypes = %d, want 2", s.NumTypes())
	}
	if got := s.Type(a); got.Name != "author" || got.Abbrev != "A" {
		t.Errorf("Type(a) = %+v", got)
	}
}

func TestSchemaAddTypeRejectsDuplicates(t *testing.T) {
	s := NewSchema()
	s.MustAddType("author", "A")
	if _, err := s.AddType("author", "X"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := s.AddType("actor", "A"); err == nil {
		t.Error("duplicate abbreviation accepted")
	}
	if _, err := s.AddType("", "B"); err == nil {
		t.Error("empty name accepted")
	}
}

func TestSchemaAddRelationCreatesInversePair(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("author", "A")
	p := s.MustAddType("paper", "P")
	w, err := s.AddRelation("write", "writtenBy", a, p)
	if err != nil {
		t.Fatalf("AddRelation: %v", err)
	}
	inv := s.Inverse(w)
	if inv == w {
		t.Fatal("relation is its own inverse")
	}
	wi := s.Relation(w)
	ii := s.Relation(inv)
	if wi.From != a || wi.To != p {
		t.Errorf("forward relation typed %d->%d, want %d->%d", wi.From, wi.To, a, p)
	}
	if ii.From != p || ii.To != a {
		t.Errorf("inverse relation typed %d->%d, want %d->%d", ii.From, ii.To, p, a)
	}
	if s.Inverse(inv) != w {
		t.Error("inverse of inverse is not the original relation")
	}
	if ii.Name != "writtenBy" {
		t.Errorf("inverse name = %q", ii.Name)
	}
}

func TestSchemaAddRelationDefaultInverseName(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("author", "A")
	p := s.MustAddType("paper", "P")
	w := s.MustAddRelation("write", "", a, p)
	if got := s.Relation(s.Inverse(w)).Name; got != "write^-1" {
		t.Errorf("default inverse name = %q, want write^-1", got)
	}
}

func TestSchemaAddRelationRejectsBadInput(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("author", "A")
	p := s.MustAddType("paper", "P")
	if _, err := s.AddRelation("", "", a, p); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, err := s.AddRelation("write", "", a, TypeID(99)); err == nil {
		t.Error("unknown target type accepted")
	}
	s.MustAddRelation("write", "writtenBy", a, p)
	if _, err := s.AddRelation("write", "", a, p); err == nil {
		t.Error("duplicate relation name accepted")
	}
	if _, err := s.AddRelation("cite", "write", p, p); err == nil {
		t.Error("inverse name colliding with existing relation accepted")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := NewSchema()
	a := s.MustAddType("author", "A")
	p := s.MustAddType("paper", "P")
	w := s.MustAddRelation("write", "writtenBy", a, p)

	if id, ok := s.TypeByName("author"); !ok || id != a {
		t.Errorf("TypeByName(author) = %d, %v", id, ok)
	}
	if id, ok := s.TypeByAbbrev("P"); !ok || id != p {
		t.Errorf("TypeByAbbrev(P) = %d, %v", id, ok)
	}
	if _, ok := s.TypeByName("nope"); ok {
		t.Error("TypeByName(nope) found something")
	}
	if _, ok := s.TypeByAbbrev("Z"); ok {
		t.Error("TypeByAbbrev(Z) found something")
	}
	if id, ok := s.RelationByName("writtenBy"); !ok || id != s.Inverse(w) {
		t.Errorf("RelationByName(writtenBy) = %d, %v", id, ok)
	}
	if _, ok := s.RelationByName("cites"); ok {
		t.Error("RelationByName(cites) found something")
	}
}

func TestSchemaRelationsFromAndBetween(t *testing.T) {
	d := NewDBLPSchema()
	s := d.Schema
	fromPaper := s.RelationsFrom(d.Paper)
	// paper -> author, venue, term, year: four relations.
	if len(fromPaper) != 4 {
		t.Fatalf("RelationsFrom(paper) = %d relations, want 4", len(fromPaper))
	}
	between := s.RelationsBetween(d.Author, d.Paper)
	if len(between) != 1 || between[0] != d.Write {
		t.Errorf("RelationsBetween(A, P) = %v, want [%d]", between, d.Write)
	}
	if got := s.RelationsBetween(d.Author, d.Venue); got != nil {
		t.Errorf("RelationsBetween(A, V) = %v, want nil", got)
	}
}

func TestDBLPSchemaShape(t *testing.T) {
	d := NewDBLPSchema()
	if d.Schema.NumTypes() != 5 {
		t.Errorf("DBLP has %d types, want 5", d.Schema.NumTypes())
	}
	if d.Schema.NumRelations() != 8 {
		t.Errorf("DBLP has %d relations, want 8 (4 pairs)", d.Schema.NumRelations())
	}
	if d.Schema.Inverse(d.Write) != d.WrittenBy {
		t.Error("Write/WrittenBy are not inverses")
	}
	if d.Schema.Relation(d.PublishedAt).From != d.Paper {
		t.Error("PublishedAt does not start at paper")
	}
}

func TestIMDBSchemaShape(t *testing.T) {
	m := NewIMDBSchema()
	if m.Schema.NumTypes() != 5 {
		t.Errorf("IMDb has %d types, want 5", m.Schema.NumTypes())
	}
	if m.Schema.NumRelations() != 8 {
		t.Errorf("IMDb has %d relations, want 8", m.Schema.NumRelations())
	}
	if m.Schema.Inverse(m.Perform) != m.PerformedBy {
		t.Error("Perform/PerformedBy are not inverses")
	}
	if got, ok := m.Schema.TypeByAbbrev("Ac"); !ok || got != m.Actor {
		t.Error("actor abbreviation Ac not found")
	}
}

func TestSchemaString(t *testing.T) {
	d := NewDBLPSchema()
	str := d.Schema.String()
	for _, want := range []string{"author(A)", "write", "publish", "contain", "publishedIn"} {
		if !strings.Contains(str, want) {
			t.Errorf("Schema.String() missing %q:\n%s", want, str)
		}
	}
}
