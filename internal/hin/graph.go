package hin

import (
	"fmt"
	"slices"

	"shine/internal/par"
)

// ObjectID identifies an object (node) within a Graph. IDs are dense:
// a graph with n objects uses IDs 0..n-1.
type ObjectID int32

// NoObject is the sentinel returned by lookups that find nothing.
const NoObject ObjectID = -1

// Builder accumulates objects and links and produces an immutable
// Graph. A Builder is not safe for concurrent use.
type Builder struct {
	schema *Schema

	typeOf []TypeID
	names  []string

	// nameIndex maps (type, name) to the object, used to deduplicate
	// objects added twice and to resolve names at build time.
	nameIndex map[nameKey]ObjectID

	// edges holds one (src, dst) list per relation. Only forward
	// relations (even IDs) are populated during building; inverses are
	// derived at Build time.
	edges [][]edge
}

type nameKey struct {
	typ  TypeID
	name string
}

type edge struct {
	src, dst ObjectID
}

// NewBuilder returns a Builder for a graph over the given schema. The
// schema must not be modified after the builder is created.
func NewBuilder(schema *Schema) *Builder {
	return &Builder{
		schema:    schema,
		nameIndex: make(map[nameKey]ObjectID),
		edges:     make([][]edge, schema.NumRelations()),
	}
}

// AddObject registers an object of the given type with the given name
// and returns its ObjectID. If an object with the same type and name
// already exists, its existing ID is returned; names therefore act as
// unique keys within a type.
func (b *Builder) AddObject(typ TypeID, name string) (ObjectID, error) {
	if !b.schema.validType(typ) {
		return NoObject, fmt.Errorf("hin: AddObject: invalid type %d", typ)
	}
	key := nameKey{typ, name}
	if id, ok := b.nameIndex[key]; ok {
		return id, nil
	}
	id := ObjectID(len(b.typeOf))
	b.typeOf = append(b.typeOf, typ)
	b.names = append(b.names, name)
	b.nameIndex[key] = id
	return id, nil
}

// MustAddObject is AddObject that panics on error.
func (b *Builder) MustAddObject(typ TypeID, name string) ObjectID {
	id, err := b.AddObject(typ, name)
	if err != nil {
		panic(err)
	}
	return id
}

// AddLink records a link of relation rel from src to dst. The inverse
// link is recorded automatically at Build time. rel may be either a
// forward or an inverse relation; the link is normalised to the
// forward direction internally. Duplicate links are kept: multiplicity
// carries weight in random walks (an author with six SIGMOD papers is
// six times likelier to walk to SIGMOD than one with a single paper).
func (b *Builder) AddLink(rel RelationID, src, dst ObjectID) error {
	if !b.schema.validRelation(rel) {
		return fmt.Errorf("hin: AddLink: invalid relation %d", rel)
	}
	if !b.validObject(src) || !b.validObject(dst) {
		return fmt.Errorf("hin: AddLink: object out of range (src=%d dst=%d)", src, dst)
	}
	// Normalise to the even (forward) member of the relation pair.
	if rel%2 == 1 {
		rel = b.schema.Inverse(rel)
		src, dst = dst, src
	}
	ri := b.schema.Relation(rel)
	if b.typeOf[src] != ri.From || b.typeOf[dst] != ri.To {
		return fmt.Errorf("hin: AddLink: relation %s expects %s -> %s, got %s -> %s",
			ri.Name,
			b.schema.Type(ri.From).Abbrev, b.schema.Type(ri.To).Abbrev,
			b.schema.Type(b.typeOf[src]).Abbrev, b.schema.Type(b.typeOf[dst]).Abbrev)
	}
	b.growEdges()
	b.edges[rel] = append(b.edges[rel], edge{src, dst})
	return nil
}

// growEdges extends the per-relation edge lists to cover relations
// registered in the schema after the builder was created (network
// enrichment adds relation types to a live schema).
func (b *Builder) growEdges() {
	for len(b.edges) < b.schema.NumRelations() {
		b.edges = append(b.edges, nil)
	}
}

// MustAddLink is AddLink that panics on error.
func (b *Builder) MustAddLink(rel RelationID, src, dst ObjectID) {
	if err := b.AddLink(rel, src, dst); err != nil {
		panic(err)
	}
}

func (b *Builder) validObject(v ObjectID) bool {
	return v >= 0 && int(v) < len(b.typeOf)
}

// NumObjects returns the number of objects added so far.
func (b *Builder) NumObjects() int { return len(b.typeOf) }

// Build freezes the builder into an immutable Graph. The builder can
// continue to accumulate objects and links afterwards; subsequent
// Build calls produce independent graphs.
func (b *Builder) Build() *Graph {
	b.growEdges()
	n := len(b.typeOf)
	g := &Graph{
		schema: b.schema,
		typeOf: append([]TypeID(nil), b.typeOf...),
		names:  append([]string(nil), b.names...),
		rels:   make([]csr, b.schema.NumRelations()),
	}

	// Per-type object lists.
	g.byType = make([][]ObjectID, b.schema.NumTypes())
	for v, t := range g.typeOf {
		g.byType[t] = append(g.byType[t], ObjectID(v))
	}

	// Name index for lookups on the frozen graph.
	g.nameIndex = make(map[nameKey]ObjectID, len(b.nameIndex))
	for k, v := range b.nameIndex {
		g.nameIndex[k] = v
	}

	// Materialise forward and inverse CSR structures per relation pair.
	// Pairs are independent (each writes only its own two rels slots),
	// so they build in parallel; the per-pair construction itself is
	// deterministic, so the resulting graph is identical for any worker
	// count.
	numPairs := b.schema.NumRelations() / 2
	par.For(numPairs, 0, func(pair int) {
		rel := 2 * pair
		fwd := b.edges[rel]
		g.rels[rel] = buildCSR(n, fwd, false)
		g.rels[rel+1] = buildCSR(n, fwd, true)
	})

	// Cache the per-object total out-degree (the PageRank out-degree
	// N_v) once: Stats, TotalDegree and the pull-based PageRank kernel
	// all read this array instead of rescanning every relation.
	g.sealDegrees()
	return g
}

// sealDegrees (re)computes the total-degree cache from the adjacency
// arrays and records the adjacency checksum that guards it. Every path
// that constructs or splices the CSR (Build, FromParts, MergeDeltas)
// must call this last; checkDegreeCache compares the checksum against
// the live arrays so a mutation that bypasses those paths fails loudly
// instead of silently skewing PageRank's 1/N_v column norms.
func (g *Graph) sealDegrees() {
	n := len(g.typeOf)
	g.totalDeg = make([]int32, n)
	var sum int64
	for rel := range g.rels {
		off := g.rels[rel].off
		for v := 0; v < n; v++ {
			g.totalDeg[v] += off[v+1] - off[v]
		}
		sum += int64(len(g.rels[rel].adj))
	}
	g.degSum = sum
}

// checkDegreeCache panics if the adjacency arrays no longer match the
// checksum recorded when the total-degree cache was sealed. Graphs are
// immutable; the only supported growth paths are a Builder rebuild and
// Append/MergeDeltas, both of which reseal the cache. The check is
// O(relations) — a handful of slice-length reads — so the hot callers
// (one call per PageRank run) pay nothing measurable. It cannot catch
// an in-place overwrite that keeps lengths unchanged, but every
// append-style mutation (the realistic bypass) changes a length.
func (g *Graph) checkDegreeCache() {
	var sum int64
	for rel := range g.rels {
		sum += int64(len(g.rels[rel].adj))
	}
	if sum != g.degSum {
		panic(fmt.Sprintf("hin: total-degree cache is stale: adjacency holds %d directed links but the cache was sealed over %d — graphs are immutable; grow them through Graph.Append/MergeDeltas or a Builder", sum, g.degSum))
	}
}

// buildCSR constructs a CSR adjacency over n nodes from the edge list.
// If reversed, each edge (s, d) is stored as d -> s.
func buildCSR(n int, edges []edge, reversed bool) csr {
	off := make([]int32, n+1)
	for _, e := range edges {
		s := e.src
		if reversed {
			s = e.dst
		}
		off[s+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	adj := make([]ObjectID, len(edges))
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		s, d := e.src, e.dst
		if reversed {
			s, d = d, s
		}
		adj[cursor[s]] = d
		cursor[s]++
	}
	// Sort each adjacency run for deterministic iteration and binary
	// searchability.
	for v := 0; v < n; v++ {
		slices.Sort(adj[off[v]:off[v+1]])
	}
	return csr{off: off, adj: adj}
}

// csr stores one relation's adjacency in compressed sparse row form
// over the global object ID space. Objects whose type does not match
// the relation's source type simply have empty rows.
type csr struct {
	off []int32
	adj []ObjectID
}

func (c csr) neighbors(v ObjectID) []ObjectID {
	return c.adj[c.off[v]:c.off[v+1]]
}

func (c csr) degree(v ObjectID) int {
	return int(c.off[v+1] - c.off[v])
}

// Graph is an immutable heterogeneous information network. It is safe
// for concurrent use by multiple goroutines.
type Graph struct {
	schema    *Schema
	typeOf    []TypeID
	names     []string
	byType    [][]ObjectID
	nameIndex map[nameKey]ObjectID
	rels      []csr
	// totalDeg caches the total out-degree of every object across all
	// relations, computed once at Build time.
	totalDeg []int32
	// degSum is the total directed-link count the totalDeg cache was
	// computed over; checkDegreeCache compares it against the live
	// adjacency lengths to catch mutations that bypass sealDegrees.
	degSum int64
}

// Schema returns the network schema the graph was built over.
func (g *Graph) Schema() *Schema { return g.schema }

// NumObjects returns the total number of objects |V|.
func (g *Graph) NumObjects() int { return len(g.typeOf) }

// NumLinks returns the total number of links |Z|, counting each
// forward/inverse pair once.
func (g *Graph) NumLinks() int {
	total := 0
	for rel := 0; rel < len(g.rels); rel += 2 {
		total += len(g.rels[rel].adj)
	}
	return total
}

// TypeOf returns the object type of v.
func (g *Graph) TypeOf(v ObjectID) TypeID { return g.typeOf[v] }

// Name returns the name of object v.
func (g *Graph) Name(v ObjectID) string { return g.names[v] }

// ObjectsOfType returns all objects of the given type, in ID order.
// The returned slice is shared and must not be modified.
func (g *Graph) ObjectsOfType(t TypeID) []ObjectID {
	if t < 0 || int(t) >= len(g.byType) {
		return nil
	}
	return g.byType[t]
}

// Lookup finds the object of the given type with the given name.
func (g *Graph) Lookup(t TypeID, name string) (ObjectID, bool) {
	id, ok := g.nameIndex[nameKey{t, name}]
	if !ok {
		return NoObject, false
	}
	return id, true
}

// Neighbors returns the targets of all links of relation rel leaving
// v, in ascending ID order with multiplicity. The returned slice is
// shared and must not be modified.
func (g *Graph) Neighbors(rel RelationID, v ObjectID) []ObjectID {
	return g.rels[rel].neighbors(v)
}

// Degree returns the number of links of relation rel leaving v,
// counting multiplicity. In the paper's notation this is |R(v)| for
// the relation R.
func (g *Graph) Degree(rel RelationID, v ObjectID) int {
	return g.rels[rel].degree(v)
}

// TotalDegree returns the number of outgoing links of v summed over
// all relations (every link contributes to exactly one relation in
// each direction, so this is the PageRank out-degree N_v). It panics
// if the degree cache has gone stale (see checkDegreeCache).
func (g *Graph) TotalDegree(v ObjectID) int {
	g.checkDegreeCache()
	return int(g.totalDeg[v])
}

// TotalDegrees returns the total out-degree of every object, indexed
// by ObjectID — the column norms of the PageRank link matrix B,
// computed once at Build time. The returned slice is shared and must
// not be modified. It panics if the degree cache has gone stale (see
// checkDegreeCache).
func (g *Graph) TotalDegrees() []int32 {
	g.checkDegreeCache()
	return g.totalDeg
}

// NumRelations returns the number of directed relations the graph
// stores adjacency for (forward and inverse relations both count).
func (g *Graph) NumRelations() int { return len(g.rels) }

// Rows exposes relation rel's raw CSR arrays: off has NumObjects()+1
// entries and adj[off[v]:off[v+1]] is v's neighbor run in ascending
// ID order with multiplicity. This is the zero-overhead accessor the
// pull-based PageRank kernel iterates — no per-edge closure, no
// per-row method call. Both slices are shared and must not be
// modified.
func (g *Graph) Rows(rel RelationID) (off []int32, adj []ObjectID) {
	return g.rels[rel].off, g.rels[rel].adj
}

// ForEachLink calls fn for every directed link in the graph, i.e. each
// undirected relation instance is visited twice, once per direction.
// Iteration order is deterministic: by relation ID, then by source ID.
func (g *Graph) ForEachLink(fn func(rel RelationID, src, dst ObjectID)) {
	for rel := range g.rels {
		c := g.rels[rel]
		for v := 0; v < len(g.typeOf); v++ {
			for _, d := range c.neighbors(ObjectID(v)) {
				fn(RelationID(rel), ObjectID(v), d)
			}
		}
	}
}

// Validate performs internal consistency checks on the graph and
// returns the first problem found, or nil. It verifies that every link
// respects the schema typing, that forward and inverse adjacency agree
// in size, and that the per-type object lists partition the objects.
func (g *Graph) Validate() error {
	n := len(g.typeOf)
	counted := 0
	for t, objs := range g.byType {
		for _, v := range objs {
			if g.typeOf[v] != TypeID(t) {
				return fmt.Errorf("hin: object %d listed under type %d but has type %d", v, t, g.typeOf[v])
			}
		}
		counted += len(objs)
	}
	if counted != n {
		return fmt.Errorf("hin: byType lists %d objects, graph has %d", counted, n)
	}
	for rel := 0; rel < len(g.rels); rel += 2 {
		fwd, inv := g.rels[rel], g.rels[rel+1]
		if len(fwd.adj) != len(inv.adj) {
			return fmt.Errorf("hin: relation %d has %d forward links but %d inverse links",
				rel, len(fwd.adj), len(inv.adj))
		}
		ri := g.schema.Relation(RelationID(rel))
		for v := 0; v < n; v++ {
			deg := fwd.degree(ObjectID(v))
			if deg == 0 {
				continue
			}
			if g.typeOf[v] != ri.From {
				return fmt.Errorf("hin: relation %s has links from object %d of wrong type", ri.Name, v)
			}
			for _, d := range fwd.neighbors(ObjectID(v)) {
				if g.typeOf[d] != ri.To {
					return fmt.Errorf("hin: relation %s links to object %d of wrong type", ri.Name, d)
				}
			}
		}
	}
	return nil
}

// Stats summarises the graph for logging and documentation.
type Stats struct {
	Objects      int
	Links        int
	ObjectsByTyp map[string]int
	LinksByRel   map[string]int
	Isolated     int // objects with no links at all
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	st := Stats{
		Objects:      g.NumObjects(),
		Links:        g.NumLinks(),
		ObjectsByTyp: make(map[string]int),
		LinksByRel:   make(map[string]int),
	}
	for t, objs := range g.byType {
		st.ObjectsByTyp[g.schema.Type(TypeID(t)).Name] = len(objs)
	}
	for rel := 0; rel < len(g.rels); rel += 2 {
		st.LinksByRel[g.schema.Relation(RelationID(rel)).Name] = len(g.rels[rel].adj)
	}
	// The Build-time degree cache makes this O(V) instead of the old
	// O(V·R) rescan of every relation per object.
	for _, d := range g.totalDeg {
		if d == 0 {
			st.Isolated++
		}
	}
	return st
}
