package hin

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary serialisation of a Graph together with its Schema. The format
// is versioned and checksummed so that corrupted or foreign files are
// rejected with a clear error instead of producing a silently broken
// network.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "SHINEHIN"
//	version uint32
//	--- schema ---
//	numTypes uint32, then per type: name, abbrev (length-prefixed)
//	numRels  uint32, then per relation: name, from, to, inverse
//	--- graph ---
//	numObjects uint32
//	typeOf     [numObjects]int32
//	names      numObjects length-prefixed strings
//	per forward relation: numEdges uint32, src dst pairs int32
//	crc32 of everything after the magic
const (
	graphMagic   = "SHINEHIN"
	graphVersion = 1
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// readChunkBytes bounds any single allocation made while decoding a
// declared-length field. Data is read in runs of at most this many
// bytes, so a truncated or hostile header declaring a huge count fails
// with io.ErrUnexpectedEOF after one chunk instead of allocating
// gigabytes up front for bytes that are not there.
const readChunkBytes = 1 << 20

// readInt32s decodes n little-endian int32 values, growing the result
// chunk by chunk so the transient allocation is bounded by the bytes
// actually present in the stream, not by the declared count.
func readInt32s(r io.Reader, n int) ([]int32, error) {
	maxChunk := readChunkBytes / 4
	out := make([]int32, 0, min(n, maxChunk))
	for remaining := n; remaining > 0; {
		chunk := make([]int32, min(remaining, maxChunk))
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		remaining -= len(chunk)
	}
	return out, nil
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("hin: string length %d exceeds sanity bound", n)
	}
	buf := make([]byte, 0, min(int(n), readChunkBytes))
	for remaining := int(n); remaining > 0; {
		chunk := make([]byte, min(remaining, readChunkBytes))
		if _, err := io.ReadFull(r, chunk); err != nil {
			return "", err
		}
		buf = append(buf, chunk...)
		remaining -= len(chunk)
	}
	return string(buf), nil
}

// WriteTo serialises the graph (including its schema) to w. It
// returns the number of bytes written, implementing io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	count := &countingWriter{w: w}
	bw := bufio.NewWriter(count)
	cw := &crcWriter{w: bw}

	if _, err := io.WriteString(bw, graphMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(graphVersion)); err != nil {
		return 0, err
	}

	// Schema.
	s := g.schema
	if err := binary.Write(cw, binary.LittleEndian, uint32(s.NumTypes())); err != nil {
		return 0, err
	}
	for i := 0; i < s.NumTypes(); i++ {
		t := s.Type(TypeID(i))
		if err := writeString(cw, t.Name); err != nil {
			return 0, err
		}
		if err := writeString(cw, t.Abbrev); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(s.NumRelations())); err != nil {
		return 0, err
	}
	for i := 0; i < s.NumRelations(); i++ {
		r := s.Relation(RelationID(i))
		if err := writeString(cw, r.Name); err != nil {
			return 0, err
		}
		if err := binary.Write(cw, binary.LittleEndian, []int32{int32(r.From), int32(r.To), int32(r.Inverse)}); err != nil {
			return 0, err
		}
	}

	// Objects.
	n := g.NumObjects()
	if err := binary.Write(cw, binary.LittleEndian, uint32(n)); err != nil {
		return 0, err
	}
	types := make([]int32, n)
	for v := 0; v < n; v++ {
		types[v] = int32(g.typeOf[v])
	}
	if err := binary.Write(cw, binary.LittleEndian, types); err != nil {
		return 0, err
	}
	for v := 0; v < n; v++ {
		if err := writeString(cw, g.names[v]); err != nil {
			return 0, err
		}
	}

	// Links: forward relations only.
	for rel := 0; rel < len(g.rels); rel += 2 {
		c := g.rels[rel]
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(c.adj))); err != nil {
			return 0, err
		}
		pairs := make([]int32, 0, 2*len(c.adj))
		for v := 0; v < n; v++ {
			for _, d := range c.neighbors(ObjectID(v)) {
				pairs = append(pairs, int32(v), int32(d))
			}
		}
		if err := binary.Write(cw, binary.LittleEndian, pairs); err != nil {
			return 0, err
		}
	}

	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return count.n, err
	}
	return count.n, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadGraph deserialises a graph written by WriteTo, reconstructing
// both the schema and the adjacency structure. It verifies the magic,
// version and checksum.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(graphMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hin: reading magic: %w", err)
	}
	if string(magic) != graphMagic {
		return nil, fmt.Errorf("hin: bad magic %q, not a SHINE graph file", magic)
	}
	cr := &crcReader{r: br}
	var version uint32
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != graphVersion {
		return nil, fmt.Errorf("hin: unsupported graph file version %d", version)
	}

	// Schema.
	schema := NewSchema()
	var numTypes uint32
	if err := binary.Read(cr, binary.LittleEndian, &numTypes); err != nil {
		return nil, err
	}
	for i := uint32(0); i < numTypes; i++ {
		name, err := readString(cr)
		if err != nil {
			return nil, err
		}
		abbrev, err := readString(cr)
		if err != nil {
			return nil, err
		}
		if _, err := schema.AddType(name, abbrev); err != nil {
			return nil, err
		}
	}
	var numRels uint32
	if err := binary.Read(cr, binary.LittleEndian, &numRels); err != nil {
		return nil, err
	}
	relNames := make([]string, numRels)
	relMeta := make([][3]int32, numRels)
	for i := uint32(0); i < numRels; i++ {
		name, err := readString(cr)
		if err != nil {
			return nil, err
		}
		var meta [3]int32
		if err := binary.Read(cr, binary.LittleEndian, meta[:]); err != nil {
			return nil, err
		}
		relNames[i] = name
		relMeta[i] = meta
	}
	// Relations were written as forward/inverse pairs in order, so
	// re-register them pairwise.
	if numRels%2 != 0 {
		return nil, fmt.Errorf("hin: odd relation count %d", numRels)
	}
	for i := uint32(0); i < numRels; i += 2 {
		from, to := TypeID(relMeta[i][0]), TypeID(relMeta[i][1])
		if _, err := schema.AddRelation(relNames[i], relNames[i+1], from, to); err != nil {
			return nil, err
		}
	}

	// Objects.
	var numObjects uint32
	if err := binary.Read(cr, binary.LittleEndian, &numObjects); err != nil {
		return nil, err
	}
	if numObjects > 1<<30 {
		return nil, fmt.Errorf("hin: object count %d exceeds sanity bound", numObjects)
	}
	types, err := readInt32s(cr, int(numObjects))
	if err != nil {
		return nil, err
	}
	b := NewBuilder(schema)
	for v := uint32(0); v < numObjects; v++ {
		name, err := readString(cr)
		if err != nil {
			return nil, err
		}
		id, err := b.AddObject(TypeID(types[v]), name)
		if err != nil {
			return nil, err
		}
		if id != ObjectID(v) {
			return nil, fmt.Errorf("hin: duplicate object (type %d, name of object %d) in file", types[v], v)
		}
	}

	// Links.
	for rel := uint32(0); rel < numRels; rel += 2 {
		var numEdges uint32
		if err := binary.Read(cr, binary.LittleEndian, &numEdges); err != nil {
			return nil, err
		}
		pairs, err := readInt32s(cr, 2*int(numEdges))
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(pairs); i += 2 {
			if err := b.AddLink(RelationID(rel), ObjectID(pairs[i]), ObjectID(pairs[i+1])); err != nil {
				return nil, err
			}
		}
	}

	gotCRC := cr.crc
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("hin: reading checksum: %w", err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("hin: checksum mismatch: file %08x, computed %08x", wantCRC, gotCRC)
	}
	return b.Build(), nil
}
