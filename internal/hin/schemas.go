package hin

// This file defines the two canonical network schemas used throughout
// the paper's experiments: the DBLP bibliographic network and the IMDb
// movie network (Figure 2 of the paper).

// DBLPSchema bundles the DBLP bibliographic network schema with its
// type and relation handles: five object types — papers (P), authors
// (A), publication venues (V), title terms (T) and publication years
// (Y) — and four relation pairs.
type DBLPSchema struct {
	Schema *Schema

	Author TypeID
	Paper  TypeID
	Venue  TypeID
	Term   TypeID
	Year   TypeID

	Write       RelationID // author -> paper
	WrittenBy   RelationID // paper -> author
	Publish     RelationID // venue -> paper
	PublishedAt RelationID // paper -> venue
	Contain     RelationID // paper -> term
	ContainedIn RelationID // term -> paper
	PublishedIn RelationID // paper -> year
	YearOf      RelationID // year -> paper
}

// NewDBLPSchema constructs the DBLP network schema of Figure 2(a).
func NewDBLPSchema() *DBLPSchema {
	s := NewSchema()
	d := &DBLPSchema{Schema: s}
	d.Author = s.MustAddType("author", "A")
	d.Paper = s.MustAddType("paper", "P")
	d.Venue = s.MustAddType("venue", "V")
	d.Term = s.MustAddType("term", "T")
	d.Year = s.MustAddType("year", "Y")

	d.Write = s.MustAddRelation("write", "writtenBy", d.Author, d.Paper)
	d.WrittenBy = s.Inverse(d.Write)
	d.Publish = s.MustAddRelation("publish", "publishedAt", d.Venue, d.Paper)
	d.PublishedAt = s.Inverse(d.Publish)
	d.Contain = s.MustAddRelation("contain", "containedIn", d.Paper, d.Term)
	d.ContainedIn = s.Inverse(d.Contain)
	d.PublishedIn = s.MustAddRelation("publishedIn", "yearOf", d.Paper, d.Year)
	d.YearOf = s.Inverse(d.PublishedIn)
	return d
}

// IMDBSchema bundles the IMDb movie network schema with its type and
// relation handles: movies (M), actors (Ac), genres (G), description
// keywords (K) and directors (D).
type IMDBSchema struct {
	Schema *Schema

	Movie    TypeID
	Actor    TypeID
	Genre    TypeID
	Keyword  TypeID
	Director TypeID

	Perform     RelationID // actor -> movie
	PerformedBy RelationID // movie -> actor
	BelongTo    RelationID // movie -> genre
	GenreOf     RelationID // genre -> movie
	Contain     RelationID // movie -> keyword
	ContainedIn RelationID // keyword -> movie
	Direct      RelationID // director -> movie
	DirectedBy  RelationID // movie -> director
}

// NewIMDBSchema constructs the IMDb network schema of Figure 2(b).
func NewIMDBSchema() *IMDBSchema {
	s := NewSchema()
	m := &IMDBSchema{Schema: s}
	m.Movie = s.MustAddType("movie", "M")
	m.Actor = s.MustAddType("actor", "Ac")
	m.Genre = s.MustAddType("genre", "G")
	m.Keyword = s.MustAddType("keyword", "K")
	m.Director = s.MustAddType("director", "D")

	m.Perform = s.MustAddRelation("perform", "performedBy", m.Actor, m.Movie)
	m.PerformedBy = s.Inverse(m.Perform)
	m.BelongTo = s.MustAddRelation("belongTo", "genreOf", m.Movie, m.Genre)
	m.GenreOf = s.Inverse(m.BelongTo)
	m.Contain = s.MustAddRelation("contain", "containedIn", m.Movie, m.Keyword)
	m.ContainedIn = s.Inverse(m.Contain)
	m.Direct = s.MustAddRelation("direct", "directedBy", m.Director, m.Movie)
	m.DirectedBy = s.Inverse(m.Direct)
	return m
}
