package hin

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// graphsByteIdentical asserts that two graphs are indistinguishable at
// the byte level: same object tables and the exact same CSR arrays.
func graphsByteIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if !slices.Equal(got.typeOf, want.typeOf) {
		t.Fatalf("typeOf differs: got %v want %v", got.typeOf, want.typeOf)
	}
	if !slices.Equal(got.names, want.names) {
		t.Fatalf("names differ: got %v want %v", got.names, want.names)
	}
	if len(got.rels) != len(want.rels) {
		t.Fatalf("relation count differs: got %d want %d", len(got.rels), len(want.rels))
	}
	for rel := range want.rels {
		if !slices.Equal(got.rels[rel].off, want.rels[rel].off) {
			t.Fatalf("relation %d offsets differ:\n got %v\nwant %v", rel, got.rels[rel].off, want.rels[rel].off)
		}
		if !slices.Equal(got.rels[rel].adj, want.rels[rel].adj) {
			t.Fatalf("relation %d adjacency differs:\n got %v\nwant %v", rel, got.rels[rel].adj, want.rels[rel].adj)
		}
	}
	if !slices.Equal(got.TotalDegrees(), want.TotalDegrees()) {
		t.Fatalf("total degrees differ")
	}
}

// recordedOp is one builder-level operation, replayable into a fresh
// Builder to reconstruct the unioned input from scratch. Object IDs
// can be recorded directly because identical ID assignment between
// the incremental and from-scratch paths is exactly the property
// under test.
type recordedOp struct {
	isObject bool
	typ      TypeID
	name     string
	rel      RelationID
	src, dst ObjectID
}

// TestMergeDeltasBitIdenticalProperty: K successive delta batches
// merged incrementally yield a graph byte-identical to one
// from-scratch Builder.Build over the unioned input.
func TestMergeDeltasBitIdenticalProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := NewDBLPSchema()

		var ops []recordedOp
		var authors, papers, venues []ObjectID

		addObject := func(add func(TypeID, string) (ObjectID, error), typ TypeID, name string) ObjectID {
			id, err := add(typ, name)
			if err != nil {
				t.Fatalf("seed %d: add object: %v", seed, err)
			}
			ops = append(ops, recordedOp{isObject: true, typ: typ, name: name})
			switch typ {
			case d.Author:
				if !slices.Contains(authors, id) {
					authors = append(authors, id)
				}
			case d.Paper:
				if !slices.Contains(papers, id) {
					papers = append(papers, id)
				}
			case d.Venue:
				if !slices.Contains(venues, id) {
					venues = append(venues, id)
				}
			}
			return id
		}
		addEdges := func(add func(RelationID, ObjectID, ObjectID) error, n int) {
			for i := 0; i < n; i++ {
				if len(papers) == 0 {
					return
				}
				p := papers[rng.Intn(len(papers))]
				var rel RelationID
				var src, dst ObjectID
				if len(authors) > 0 && (len(venues) == 0 || rng.Intn(2) == 0) {
					rel, src, dst = d.Write, authors[rng.Intn(len(authors))], p
				} else if len(venues) > 0 {
					rel, src, dst = d.Publish, venues[rng.Intn(len(venues))], p
				} else {
					continue
				}
				// Half the time exercise inverse-relation normalisation.
				if rng.Intn(2) == 0 {
					rel, src, dst = d.Schema.Inverse(rel), dst, src
				}
				if err := add(rel, src, dst); err != nil {
					t.Fatalf("seed %d: add edge: %v", seed, err)
				}
				ops = append(ops, recordedOp{rel: rel, src: src, dst: dst})
			}
		}

		// Base graph.
		b := NewBuilder(d.Schema)
		for i := 0; i < 1+rng.Intn(6); i++ {
			addObject(b.AddObject, d.Author, fmt.Sprintf("author-%d", i))
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			addObject(b.AddObject, d.Venue, fmt.Sprintf("venue-%d", i))
		}
		for i := 0; i < 1+rng.Intn(10); i++ {
			addObject(b.AddObject, d.Paper, fmt.Sprintf("paper-%d", i))
		}
		addEdges(b.AddLink, rng.Intn(25))
		g := b.Build()

		// K incremental batches. Names may collide with existing
		// objects on purpose: Append must resolve them exactly like a
		// replaying Builder.AddObject would.
		K := 2 + rng.Intn(4)
		for batch := 0; batch < K; batch++ {
			delta := g.Append()
			for i, n := 0, rng.Intn(5); i < n; i++ {
				typ := []TypeID{d.Author, d.Paper, d.Venue}[rng.Intn(3)]
				var name string
				if rng.Intn(4) == 0 && len(ops) > 0 {
					// Re-add an existing object: must dedup, not stage.
					name = fmt.Sprintf("author-%d", rng.Intn(3))
					typ = d.Author
				} else {
					name = fmt.Sprintf("b%d-%d-%d", batch, typ, i)
				}
				addObject(delta.Append, typ, name)
			}
			addEdges(delta.Patch, rng.Intn(10))

			merged, stats, err := delta.Merge()
			if err != nil {
				t.Fatalf("seed %d batch %d: merge: %v", seed, batch, err)
			}
			if err := merged.Validate(); err != nil {
				t.Fatalf("seed %d batch %d: merged graph invalid: %v", seed, batch, err)
			}
			if stats.NewObjects != delta.NumObjects() || stats.NewEdges != delta.NumEdges() {
				t.Fatalf("seed %d batch %d: stats %+v disagree with delta (%d objects, %d edges)",
					seed, batch, stats, delta.NumObjects(), delta.NumEdges())
			}
			if !slices.IsSorted(stats.Touched) {
				t.Fatalf("seed %d batch %d: Touched not sorted: %v", seed, batch, stats.Touched)
			}
			g = merged
		}

		// From-scratch build over the unioned input.
		fresh := NewBuilder(d.Schema)
		for _, op := range ops {
			if op.isObject {
				fresh.MustAddObject(op.typ, op.name)
			} else {
				fresh.MustAddLink(op.rel, op.src, op.dst)
			}
		}
		graphsByteIdentical(t, g, fresh.Build())
	}
}

// TestMergeDeltasMultiple splices two deltas staged over the same base
// in one MergeDeltas call and checks byte identity with a sequential
// from-scratch build.
func TestMergeDeltasMultiple(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a0 := b.MustAddObject(d.Author, "a0")
	p0 := b.MustAddObject(d.Paper, "p0")
	b.MustAddLink(d.Write, a0, p0)
	base := b.Build()

	d1 := base.Append()
	p1 := d1.MustAppend(d.Paper, "p1")
	d1.MustPatch(d.Write, a0, p1)

	d2 := base.Append()
	a1 := d2.MustAppend(d.Author, "a1")
	d2.MustPatch(d.Write, a1, p0)

	merged, stats, err := MergeDeltas(base, d1, d2)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if stats.NewObjects != 2 || stats.NewEdges != 2 {
		t.Fatalf("stats = %+v, want 2 objects 2 edges", stats)
	}

	fresh := NewBuilder(d.Schema)
	fa0 := fresh.MustAddObject(d.Author, "a0")
	fp0 := fresh.MustAddObject(d.Paper, "p0")
	fresh.MustAddLink(d.Write, fa0, fp0)
	fp1 := fresh.MustAddObject(d.Paper, "p1")
	fresh.MustAddLink(d.Write, fa0, fp1)
	fa1 := fresh.MustAddObject(d.Author, "a1")
	fresh.MustAddLink(d.Write, fa1, fp0)
	graphsByteIdentical(t, merged, fresh.Build())

	// The same (type, name) staged by both deltas cannot be spliced
	// pairwise — a from-scratch build would deduplicate it.
	d3 := base.Append()
	d3.MustAppend(d.Paper, "p1")
	if _, _, err := MergeDeltas(base, d1, d3); err == nil {
		t.Fatal("duplicate staged object across deltas: want error, got nil")
	}
}

// TestMergeDeltasTouched checks the invalidation key set: endpoints of
// staged edges in both directions plus staged objects, nothing else.
func TestMergeDeltasTouched(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a0 := b.MustAddObject(d.Author, "a0")
	a1 := b.MustAddObject(d.Author, "a1")
	p0 := b.MustAddObject(d.Paper, "p0")
	b.MustAddLink(d.Write, a0, p0)
	b.MustAddLink(d.Write, a1, p0)
	base := b.Build()

	delta := base.Append()
	p1 := delta.MustAppend(d.Paper, "p1")
	delta.MustPatch(d.Write, a0, p1)
	_, stats, err := delta.Merge()
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := []ObjectID{a0, p1}
	if !slices.Equal(stats.Touched, want) {
		t.Fatalf("Touched = %v, want %v (a1 and p0 have unchanged rows)", stats.Touched, want)
	}
}

func TestDeltaValidation(t *testing.T) {
	d := NewDBLPSchema()
	b := NewBuilder(d.Schema)
	a0 := b.MustAddObject(d.Author, "a0")
	p0 := b.MustAddObject(d.Paper, "p0")
	base := b.Build()

	delta := base.Append()
	if _, err := delta.Append(TypeID(99), "x"); err == nil {
		t.Error("invalid type: want error")
	}
	if err := delta.Patch(RelationID(99), a0, p0); err == nil {
		t.Error("invalid relation: want error")
	}
	if err := delta.Patch(d.Write, a0, ObjectID(42)); err == nil {
		t.Error("out-of-range endpoint: want error")
	}
	if err := delta.Patch(d.Write, p0, a0); err == nil {
		t.Error("type-mismatched endpoints: want error")
	}
	// Append resolves existing base objects instead of staging dupes.
	if id, err := delta.Append(d.Author, "a0"); err != nil || id != a0 {
		t.Errorf("Append existing = (%d, %v), want (%d, nil)", id, err, a0)
	}
	if delta.NumObjects() != 0 {
		t.Errorf("resolving an existing object staged %d objects", delta.NumObjects())
	}
	// A delta staged over one graph cannot merge into another.
	other := NewBuilder(d.Schema).Build()
	if _, _, err := MergeDeltas(other, delta); err == nil {
		t.Error("foreign base: want error")
	}
}

// TestMergeDeltasNewRelation: a relation registered in the schema
// after the base graph was built is patchable through a delta, and the
// merge still matches a from-scratch build.
func TestMergeDeltasNewRelation(t *testing.T) {
	schema := NewSchema()
	author := schema.MustAddType("author", "A")
	paper := schema.MustAddType("paper", "P")
	write := schema.MustAddRelation("write", "writtenBy", author, paper)

	b := NewBuilder(schema)
	a0 := b.MustAddObject(author, "a0")
	p0 := b.MustAddObject(paper, "p0")
	b.MustAddLink(write, a0, p0)
	base := b.Build()

	// Network enrichment: a brand-new relation type on a live schema.
	cite := schema.MustAddRelation("cite", "citedBy", paper, paper)
	delta := base.Append()
	p1 := delta.MustAppend(paper, "p1")
	delta.MustPatch(cite, p0, p1)
	merged, _, err := delta.Merge()
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.NumRelations() != schema.NumRelations() {
		t.Fatalf("merged stores %d relations, schema has %d", merged.NumRelations(), schema.NumRelations())
	}

	fresh := NewBuilder(schema)
	fa0 := fresh.MustAddObject(author, "a0")
	fp0 := fresh.MustAddObject(paper, "p0")
	fresh.MustAddLink(write, fa0, fp0)
	fp1 := fresh.MustAddObject(paper, "p1")
	fresh.MustAddLink(cite, fp0, fp1)
	graphsByteIdentical(t, merged, fresh.Build())
}

// TestDegreeCacheGuard: a mutation that bypasses the sealed
// construction paths must fail loudly on the next degree read, not
// silently skew PageRank's column norms.
func TestDegreeCacheGuard(t *testing.T) {
	_, g := randomGraph(1)
	g.TotalDegrees() // sealed cache passes

	g.rels[0].adj = append(g.rels[0].adj, 0) // rogue in-place append

	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on a mutated graph did not panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "stale") {
				t.Fatalf("%s panicked with %v, want a stale-cache message", name, r)
			}
		}()
		fn()
	}
	assertPanics("TotalDegrees", func() { g.TotalDegrees() })
	assertPanics("TotalDegree", func() { g.TotalDegree(0) })
}
