package hin

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestGraphRoundTrip(t *testing.T) {
	d, g, ids := tinyDBLP(t)

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
	if g2.NumObjects() != g.NumObjects() {
		t.Fatalf("objects = %d, want %d", g2.NumObjects(), g.NumObjects())
	}
	if g2.NumLinks() != g.NumLinks() {
		t.Fatalf("links = %d, want %d", g2.NumLinks(), g.NumLinks())
	}
	// Schema round-trips by name.
	a2, ok := g2.Schema().TypeByAbbrev("A")
	if !ok {
		t.Fatal("type A lost in round trip")
	}
	// Object identity: names, types and adjacency must be preserved.
	for v := 0; v < g.NumObjects(); v++ {
		if g2.Name(ObjectID(v)) != g.Name(ObjectID(v)) {
			t.Errorf("object %d name %q, want %q", v, g2.Name(ObjectID(v)), g.Name(ObjectID(v)))
		}
		if g2.TypeOf(ObjectID(v)) != g.TypeOf(ObjectID(v)) {
			t.Errorf("object %d type %d, want %d", v, g2.TypeOf(ObjectID(v)), g.TypeOf(ObjectID(v)))
		}
	}
	wei, ok := g2.Lookup(a2, "Wei Wang")
	if !ok || wei != ids["wei"] {
		t.Errorf("Lookup(Wei Wang) = %d, %v; want %d", wei, ok, ids["wei"])
	}
	w2, ok := g2.Schema().RelationByName("write")
	if !ok {
		t.Fatal("relation write lost in round trip")
	}
	if got, want := g2.Neighbors(w2, wei), g.Neighbors(d.Write, wei); len(got) != len(want) {
		t.Errorf("wei adjacency = %v, want %v", got, want)
	}
}

func TestReadGraphRejectsBadMagic(t *testing.T) {
	_, err := ReadGraph(strings.NewReader("NOTAGRAPHFILE___"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic error = %v", err)
	}
}

func TestReadGraphRejectsTruncation(t *testing.T) {
	_, g, _ := tinyDBLP(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 2} {
		if _, err := ReadGraph(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadGraphRejectsCorruption(t *testing.T) {
	_, g, _ := tinyDBLP(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the payload (object names region);
	// the checksum must catch it even if the structure still parses.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := ReadGraph(bytes.NewReader(corrupted)); err == nil {
		t.Error("corrupted file accepted")
	}
}

// TestReadGraphBoundsHostileCounts feeds headers whose declared
// lengths wildly exceed the bytes that follow. The reader must fail
// with a clean error after at most one bounded chunk — a hostile count
// alone must never drive a multi-gigabyte allocation.
func TestReadGraphBoundsHostileCounts(t *testing.T) {
	le := binary.LittleEndian
	u32 := func(b []byte, v uint32) []byte { return le.AppendUint32(b, v) }

	// magic + version + empty schema, then a huge object count and EOF.
	hostileObjects := []byte(graphMagic)
	hostileObjects = u32(hostileObjects, graphVersion)
	hostileObjects = u32(hostileObjects, 0) // numTypes
	hostileObjects = u32(hostileObjects, 0) // numRels
	hostileObjects = u32(hostileObjects, 1<<30)

	// magic + version, then one type whose name claims 16 MB.
	hostileString := []byte(graphMagic)
	hostileString = u32(hostileString, graphVersion)
	hostileString = u32(hostileString, 1) // numTypes
	hostileString = u32(hostileString, 1<<24)

	for name, data := range map[string][]byte{
		"objects": hostileObjects,
		"string":  hostileString,
	} {
		if _, err := ReadGraph(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile count accepted", name)
		}
	}
}

func TestReadGraphEmptyGraph(t *testing.T) {
	d := NewDBLPSchema()
	g := NewBuilder(d.Schema).Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g2.NumObjects() != 0 || g2.NumLinks() != 0 {
		t.Errorf("empty graph round-trip: %d objects, %d links", g2.NumObjects(), g2.NumLinks())
	}
	if g2.Schema().NumTypes() != 5 {
		t.Errorf("schema types = %d, want 5", g2.Schema().NumTypes())
	}
}

func TestWriteToReportsBytesWritten(t *testing.T) {
	_, g, _ := tinyDBLP(t)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	if n == 0 {
		t.Error("WriteTo reported zero bytes")
	}
}
