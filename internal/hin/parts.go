package hin

import "fmt"

// GraphParts is the flat-array decomposition of a Graph: everything a
// binary snapshot needs to persist so that FromParts can reassemble
// an identical graph without replaying edges through a Builder. The
// derived structures (per-type object lists, the name lookup index,
// the total-degree cache) are intentionally absent — they are cheap
// O(V) rebuilds, while the CSR adjacency they are derived from is the
// expensive part worth shipping verbatim.
type GraphParts struct {
	Schema *Schema
	// TypeOf and Names are indexed by ObjectID.
	TypeOf []TypeID
	Names  []string
	// Offs[rel] has len(TypeOf)+1 entries; Adjs[rel][Offs[rel][v]:
	// Offs[rel][v+1]] is object v's neighbor run under relation rel,
	// ascending with multiplicity. One entry per directed relation
	// (forward and inverse), in schema order.
	Offs [][]int32
	Adjs [][]ObjectID
}

// Parts decomposes the graph into its flat arrays. All slices are
// shared with the graph and must not be modified.
func (g *Graph) Parts() GraphParts {
	p := GraphParts{
		Schema: g.schema,
		TypeOf: g.typeOf,
		Names:  g.names,
		Offs:   make([][]int32, len(g.rels)),
		Adjs:   make([][]ObjectID, len(g.rels)),
	}
	for rel := range g.rels {
		p.Offs[rel] = g.rels[rel].off
		p.Adjs[rel] = g.rels[rel].adj
	}
	return p
}

// FromParts assembles an immutable Graph directly from flat arrays,
// validating every structural invariant a Builder would have
// guaranteed: types in range, offsets monotone and consistent with
// adjacency lengths, neighbor runs ascending and type-correct, and
// forward/inverse pairs of equal size. The slices are adopted without
// copying — callers hand over ownership. This is the snapshot load
// path: one validation sweep over the arrays instead of re-sorting
// every adjacency run.
func FromParts(p GraphParts) (*Graph, error) {
	if p.Schema == nil {
		return nil, fmt.Errorf("hin: FromParts: nil schema")
	}
	n := len(p.TypeOf)
	if len(p.Names) != n {
		return nil, fmt.Errorf("hin: FromParts: %d names for %d objects", len(p.Names), n)
	}
	numRels := p.Schema.NumRelations()
	if len(p.Offs) != numRels || len(p.Adjs) != numRels {
		return nil, fmt.Errorf("hin: FromParts: %d/%d relation arrays for schema with %d relations",
			len(p.Offs), len(p.Adjs), numRels)
	}
	for v, t := range p.TypeOf {
		if !p.Schema.validType(t) {
			return nil, fmt.Errorf("hin: FromParts: object %d has invalid type %d", v, t)
		}
	}

	g := &Graph{
		schema: p.Schema,
		typeOf: p.TypeOf,
		names:  p.Names,
		rels:   make([]csr, numRels),
	}
	for rel := 0; rel < numRels; rel++ {
		off, adj := p.Offs[rel], p.Adjs[rel]
		if len(off) != n+1 {
			return nil, fmt.Errorf("hin: FromParts: relation %d has %d offsets for %d objects", rel, len(off), n)
		}
		if off[0] != 0 || int(off[n]) != len(adj) {
			return nil, fmt.Errorf("hin: FromParts: relation %d offsets span [%d, %d] over %d links",
				rel, off[0], off[n], len(adj))
		}
		ri := p.Schema.Relation(RelationID(rel))
		for v := 0; v < n; v++ {
			if off[v+1] < off[v] {
				return nil, fmt.Errorf("hin: FromParts: relation %d offsets decrease at object %d", rel, v)
			}
			row := adj[off[v]:off[v+1]]
			if len(row) > 0 && p.TypeOf[v] != ri.From {
				return nil, fmt.Errorf("hin: FromParts: relation %s has links from object %d of wrong type", ri.Name, v)
			}
			for k, d := range row {
				if d < 0 || int(d) >= n {
					return nil, fmt.Errorf("hin: FromParts: relation %d links object %d to out-of-range %d", rel, v, d)
				}
				if p.TypeOf[d] != ri.To {
					return nil, fmt.Errorf("hin: FromParts: relation %s links to object %d of wrong type", ri.Name, d)
				}
				if k > 0 && row[k-1] > d {
					return nil, fmt.Errorf("hin: FromParts: relation %d row %d not ascending", rel, v)
				}
			}
		}
		g.rels[rel] = csr{off: off, adj: adj}
	}
	for rel := 0; rel < numRels; rel += 2 {
		if len(g.rels[rel].adj) != len(g.rels[rel+1].adj) {
			return nil, fmt.Errorf("hin: FromParts: relation %d has %d forward links but %d inverse links",
				rel, len(g.rels[rel].adj), len(g.rels[rel+1].adj))
		}
	}

	// Derived structures: per-type lists, the name lookup index and the
	// total-degree cache — O(V) rebuilds identical to Builder.Build's.
	g.byType = make([][]ObjectID, p.Schema.NumTypes())
	for v, t := range g.typeOf {
		g.byType[t] = append(g.byType[t], ObjectID(v))
	}
	g.nameIndex = make(map[nameKey]ObjectID, n)
	for v, name := range g.names {
		key := nameKey{g.typeOf[v], name}
		if prev, dup := g.nameIndex[key]; dup {
			return nil, fmt.Errorf("hin: FromParts: objects %d and %d share type %d and name %q", prev, v, g.typeOf[v], name)
		}
		g.nameIndex[key] = ObjectID(v)
	}
	g.sealDegrees()
	return g, nil
}
