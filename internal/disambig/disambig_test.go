package disambig

import (
	"strings"
	"testing"

	"shine/internal/bibload"
)

// twoClusters: four publications by two distinct "Wei Wang"s — one in
// a data-mining community (coauthor Han, SIGMOD), one in a theory
// community (coauthor Euler, STOC).
func twoClusters() []bibload.Publication {
	return []bibload.Publication{
		{Title: "Mining Frequent Patterns", Authors: []string{"Wei Wang", "Jiawei Han"}, Venue: "SIGMOD", Year: 1999},
		{Title: "Mining Data Streams Fast", Authors: []string{"Wei Wang", "Jiawei Han"}, Venue: "SIGMOD", Year: 2001},
		{Title: "Lower Bounds for Proofs", Authors: []string{"Wei Wang", "Leon Euler"}, Venue: "STOC", Year: 2000},
		{Title: "Proof Complexity Bounds", Authors: []string{"Wei Wang", "Leon Euler"}, Venue: "STOC", Year: 2002},
	}
}

func TestDisambiguateSplitsCommunities(t *testing.T) {
	out, rep, err := Disambiguate(twoClusters(), DefaultConfig())
	if err != nil {
		t.Fatalf("Disambiguate: %v", err)
	}
	if rep.SplitNames != 1 {
		t.Errorf("SplitNames = %d, want 1", rep.SplitNames)
	}
	// "Wei Wang" split into 2 entities, plus Han and Euler untouched.
	if rep.Entities != 4 {
		t.Errorf("Entities = %d, want 4", rep.Entities)
	}
	// Records 0,1 share one suffix, 2,3 the other; Han/Euler unchanged.
	name := func(pi, ai int) string { return out[pi].Authors[ai] }
	if name(0, 0) != name(1, 0) {
		t.Errorf("mining cluster split: %q vs %q", name(0, 0), name(1, 0))
	}
	if name(2, 0) != name(3, 0) {
		t.Errorf("theory cluster split: %q vs %q", name(2, 0), name(3, 0))
	}
	if name(0, 0) == name(2, 0) {
		t.Error("distinct communities merged")
	}
	if !strings.HasPrefix(name(0, 0), "Wei Wang ") {
		t.Errorf("suffix missing: %q", name(0, 0))
	}
	if name(0, 1) != "Jiawei Han" {
		t.Errorf("unambiguous coauthor renamed: %q", name(0, 1))
	}
	// Input untouched.
	if twoClusters()[0].Authors[0] != "Wei Wang" {
		t.Error("input mutated")
	}
}

func TestDisambiguateTransitiveCoauthors(t *testing.T) {
	// A chain: record 0 shares Han with record 1; record 1 shares Liu
	// with record 2 — all three are the same Wei Wang.
	pubs := []bibload.Publication{
		{Title: "Paper Alpha Mining", Authors: []string{"Wei Wang", "Jiawei Han"}, Venue: "V1"},
		{Title: "Paper Beta Graphs", Authors: []string{"Wei Wang", "Jiawei Han", "Mei Liu"}, Venue: "V2"},
		{Title: "Paper Gamma Streams", Authors: []string{"Wei Wang", "Mei Liu"}, Venue: "V3"},
	}
	out, rep, err := Disambiguate(pubs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SplitNames != 0 {
		t.Errorf("SplitNames = %d, want 0 (transitive closure)", rep.SplitNames)
	}
	for _, pub := range out {
		if pub.Authors[0] != "Wei Wang" {
			t.Errorf("single-entity name was suffixed: %q", pub.Authors[0])
		}
	}
}

func TestDisambiguateVenueTermEvidence(t *testing.T) {
	// No shared coauthors, but same venue and >= 2 shared title stems.
	pubs := []bibload.Publication{
		{Title: "Mining Frequent Patterns", Authors: []string{"Wei Wang"}, Venue: "SIGMOD"},
		{Title: "Frequent Patterns Revisited", Authors: []string{"Wei Wang"}, Venue: "SIGMOD"},
		// Same venue but disjoint vocabulary: a different person.
		{Title: "Quantum Chromodynamics Lattices", Authors: []string{"Wei Wang"}, Venue: "SIGMOD"},
	}
	_, rep, err := Disambiguate(pubs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two entities for Wei Wang: {0,1} and {2}.
	if rep.Entities != 2 {
		t.Errorf("Entities = %d, want 2", rep.Entities)
	}
}

func TestDisambiguateRespectsExistingSuffixes(t *testing.T) {
	pubs := []bibload.Publication{
		{Title: "Paper One Mining", Authors: []string{"Wei Wang 0001"}, Venue: "V"},
		{Title: "Paper Two Theory", Authors: []string{"Wei Wang 0002"}, Venue: "W"},
	}
	out, rep, err := Disambiguate(pubs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Names != 0 {
		t.Errorf("already-suffixed names examined: %d", rep.Names)
	}
	if out[0].Authors[0] != "Wei Wang 0001" || out[1].Authors[0] != "Wei Wang 0002" {
		t.Error("existing suffixes rewritten")
	}
}

func TestDisambiguateSuffixAll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SuffixAll = true
	pubs := []bibload.Publication{
		{Title: "Solo Paper Mining", Authors: []string{"Unique Author"}, Venue: "V"},
	}
	out, _, err := Disambiguate(pubs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Authors[0] != "Unique Author 0001" {
		t.Errorf("SuffixAll output = %q", out[0].Authors[0])
	}
}

func TestDisambiguateValidation(t *testing.T) {
	if _, _, err := Disambiguate(nil, DefaultConfig()); err == nil {
		t.Error("empty input accepted")
	}
	bad := DefaultConfig()
	bad.MinSharedTerms = 0
	if _, _, err := Disambiguate(twoClusters(), bad); err == nil {
		t.Error("zero MinSharedTerms accepted")
	}
}

func TestDisambiguateDeterministic(t *testing.T) {
	a, _, err := Disambiguate(twoClusters(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Disambiguate(twoClusters(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Authors {
			if a[i].Authors[j] != b[i].Authors[j] {
				t.Fatalf("nondeterministic: %q vs %q", a[i].Authors[j], b[i].Authors[j])
			}
		}
	}
}

// TestDisambiguateThenLoadEndToEnd runs the full preprocessing chain:
// ambiguous records -> disambiguation -> network -> the two entities
// are separately linkable.
func TestDisambiguateThenLoadEndToEnd(t *testing.T) {
	out, _, err := Disambiguate(twoClusters(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, pub := range out {
		sb.WriteString(`{"title": "` + pub.Title + `", "authors": ["` +
			strings.Join(pub.Authors, `", "`) + `"], "venue": "` + pub.Venue + `"}` + "\n")
	}
	d, g, _, err := bibload.Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Load after disambiguation: %v", err)
	}
	if got := len(g.ObjectsOfType(d.Author)); got != 4 {
		t.Errorf("network has %d authors, want 4 (two Wangs + Han + Euler)", got)
	}
}
