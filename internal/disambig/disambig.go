// Package disambig splits same-name authors in a publication corpus
// into distinct entities — the preprocessing step the paper's task
// definition depends on: "the entities in the network which would be
// linked with should be disambiguated", which the authors obtained by
// combining DBLP's own disambiguation suffixes with a manual gold set
// (Section 5.1). This package produces the same artifact
// automatically: publication records whose ambiguous author names
// carry "Name 0001"-style suffixes, ready for bibload.
//
// The algorithm is the classic graph-based one: two records sharing
// an author name belong to the same entity when their contexts
// overlap — a shared coauthor is near-conclusive, and a shared venue
// together with overlapping title vocabulary is strong evidence.
// Records are merged transitively (union-find), so an author's
// collaboration network is followed across papers.
package disambig

import (
	"fmt"
	"sort"
	"strings"

	"shine/internal/bibload"
	"shine/internal/textproc"
)

// Config tunes the merge evidence.
type Config struct {
	// MinSharedTerms is how many shared title stems (together with a
	// shared venue) merge two records in the absence of a shared
	// coauthor.
	MinSharedTerms int
	// SuffixAll, when true, suffixes every split name occurrence even
	// for names that resolve to a single entity. Default false: names
	// that need no splitting stay untouched.
	SuffixAll bool
}

// DefaultConfig returns the standard evidence thresholds.
func DefaultConfig() Config {
	return Config{MinSharedTerms: 2}
}

// Report summarises a disambiguation run.
type Report struct {
	// Names is how many distinct author names were examined.
	Names int
	// SplitNames is how many names resolved to more than one entity.
	SplitNames int
	// Entities is the total number of author entities after
	// disambiguation.
	Entities int
}

// Disambiguate rewrites the publications so that every author name
// denotes exactly one entity. Names already carrying a numeric suffix
// are treated as disambiguated and left alone. The input slice is not
// modified.
func Disambiguate(pubs []bibload.Publication, cfg Config) ([]bibload.Publication, Report, error) {
	if cfg.MinSharedTerms < 1 {
		return nil, Report{}, fmt.Errorf("disambig: MinSharedTerms %d must be positive", cfg.MinSharedTerms)
	}
	if len(pubs) == 0 {
		return nil, Report{}, fmt.Errorf("disambig: no publications")
	}

	// occurrences[name] lists the publication indices where the name
	// appears (a name appearing twice on one paper is one occurrence).
	occurrences := make(map[string][]int)
	for pi, pub := range pubs {
		seen := map[string]bool{}
		for _, a := range pub.Authors {
			name := canonical(a)
			if name == "" || hasSuffix(name) || seen[name] {
				continue
			}
			seen[name] = true
			occurrences[name] = append(occurrences[name], pi)
		}
	}

	// Per-publication feature sets, computed once.
	features := make([]pubFeatures, len(pubs))
	for pi, pub := range pubs {
		features[pi] = extractFeatures(pub)
	}

	out := make([]bibload.Publication, len(pubs))
	for i, pub := range pubs {
		out[i] = pub
		out[i].Authors = append([]string(nil), pub.Authors...)
	}

	rep := Report{Names: len(occurrences)}
	names := make([]string, 0, len(occurrences))
	for name := range occurrences {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic suffix assignment
	for _, name := range names {
		recs := occurrences[name]
		comps := cluster(name, recs, features, cfg)
		nEntities := 0
		for _, c := range comps {
			if len(c) > 0 {
				nEntities++
			}
		}
		rep.Entities += nEntities
		if nEntities > 1 {
			rep.SplitNames++
		}
		if nEntities == 1 && !cfg.SuffixAll {
			continue
		}
		// Assign suffixes in order of first occurrence.
		for ci, comp := range comps {
			suffixed := fmt.Sprintf("%s %04d", name, ci+1)
			for _, pi := range comp {
				renameAuthor(out[pi].Authors, name, suffixed)
			}
		}
	}
	return out, rep, nil
}

// pubFeatures is the merge evidence of one publication.
type pubFeatures struct {
	authors map[string]bool
	venue   string
	terms   map[string]bool
}

func extractFeatures(pub bibload.Publication) pubFeatures {
	f := pubFeatures{authors: make(map[string]bool), terms: make(map[string]bool)}
	for _, a := range pub.Authors {
		f.authors[canonical(a)] = true
	}
	f.venue = strings.TrimSpace(pub.Venue)
	for _, tok := range textproc.Tokenize(pub.Title) {
		if textproc.IsStopWord(tok.Lower) {
			continue
		}
		if stem := textproc.NormalizeTerm(tok.Lower); stem != "" {
			f.terms[stem] = true
		}
	}
	return f
}

// cluster groups a name's record occurrences into entities via
// union-find over pairwise evidence.
func cluster(name string, recs []int, features []pubFeatures, cfg Config) [][]int {
	uf := newUnionFind(len(recs))
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if sameEntity(name, features[recs[i]], features[recs[j]], cfg) {
				uf.union(i, j)
			}
		}
	}
	byRoot := make(map[int][]int)
	var order []int
	for i, pi := range recs {
		r := uf.find(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], pi)
	}
	comps := make([][]int, 0, len(order))
	for _, r := range order {
		comps = append(comps, byRoot[r])
	}
	return comps
}

// sameEntity decides whether two records of the same author name are
// the same person.
func sameEntity(name string, a, b pubFeatures, cfg Config) bool {
	// A shared coauthor (other than the name itself) is conclusive.
	for co := range a.authors {
		if co != name && b.authors[co] {
			return true
		}
	}
	// Shared venue plus overlapping title vocabulary.
	if a.venue != "" && a.venue == b.venue {
		shared := 0
		for t := range a.terms {
			if b.terms[t] {
				shared++
				if shared >= cfg.MinSharedTerms {
					return true
				}
			}
		}
	}
	return false
}

// renameAuthor rewrites one occurrence of name in the author list.
func renameAuthor(authors []string, name, to string) {
	for i, a := range authors {
		if canonical(a) == name {
			authors[i] = to
			return
		}
	}
}

// canonical normalises whitespace in a name.
func canonical(name string) string {
	return strings.Join(strings.Fields(name), " ")
}

// hasSuffix reports whether the name already carries a numeric
// disambiguation suffix.
func hasSuffix(name string) bool {
	fields := strings.Fields(name)
	if len(fields) < 2 {
		return false
	}
	last := fields[len(fields)-1]
	for _, c := range last {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// unionFind is a minimal disjoint-set with path compression and
// union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
