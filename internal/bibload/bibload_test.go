package bibload

import (
	"bytes"
	"strings"
	"testing"

	"shine/internal/corpus"
	"shine/internal/hin"
	"shine/internal/metapath"
	"shine/internal/shine"
)

const samplePubs = `
{"title": "Mining Frequent Patterns in Databases", "authors": ["Wei Wang 0001", "Richard R. Muntz"], "venue": "SIGMOD", "year": 1999}
{"title": "Neural Models for Learning", "authors": ["Wei Wang 0002", "Eric Martin"], "venue": "NIPS", "year": 2005}
{"title": "Mining Data Streams", "authors": ["Wei Wang 0001"], "venue": "SIGMOD", "year": 2001}
`

func TestLoadBuildsNetwork(t *testing.T) {
	d, g, st, err := Load(strings.NewReader(samplePubs))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Publications != 3 {
		t.Errorf("Publications = %d", st.Publications)
	}
	stats := g.Stats()
	if stats.ObjectsByTyp["paper"] != 3 {
		t.Errorf("papers = %d", stats.ObjectsByTyp["paper"])
	}
	if stats.ObjectsByTyp["author"] != 4 {
		t.Errorf("authors = %d", stats.ObjectsByTyp["author"])
	}
	if stats.ObjectsByTyp["venue"] != 2 {
		t.Errorf("venues = %d", stats.ObjectsByTyp["venue"])
	}
	// Title terms are stemmed: "Mining" -> "mine"; stop words ("in",
	// "for") dropped.
	if _, ok := g.Lookup(d.Term, "mine"); !ok {
		t.Error("stemmed term 'mine' missing")
	}
	if _, ok := g.Lookup(d.Term, "in"); ok {
		t.Error("stop word 'in' became a term")
	}
	if st.SkippedTerms == 0 {
		t.Error("no terms skipped despite stop words in titles")
	}
	// The prolific Wei Wang has two papers.
	w1, ok := g.Lookup(d.Author, "Wei Wang 0001")
	if !ok {
		t.Fatal("Wei Wang 0001 missing")
	}
	if got := g.Degree(d.Write, w1); got != 2 {
		t.Errorf("Wei Wang 0001 writes %d papers, want 2", got)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{"title": "", "authors": ["A"]}`,
		`{"title": "T", "authors": []}`,
		`{"title": "T", "authors": [" "]}`,
		`{"title": "T", "authors": ["A"], "year": 99}`,
		`not json at all`,
		``, // no publications
	}
	for i, in := range cases {
		if _, _, _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"title": "T", "authors": ["A"]}` + "\n\n"
	_, _, st, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Publications != 1 {
		t.Errorf("Publications = %d", st.Publications)
	}
}

func TestLoadedNetworkLinksEndToEnd(t *testing.T) {
	d, g, _, err := Load(strings.NewReader(samplePubs))
	if err != nil {
		t.Fatal(err)
	}
	ing, err := corpus.NewIngester(g, corpus.DBLPIngestConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	text := "Wei Wang published on mining frequent patterns at SIGMOD with Richard R. Muntz."
	doc := ing.Ingest("page", "Wei Wang", hin.NoObject, text)
	c := &corpus.Corpus{}
	c.Add(doc)
	m, err := shine.New(g, d.Author, metapath.DBLPPaperPaths(d), c, shine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Link(doc)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	w1, _ := g.Lookup(d.Author, "Wei Wang 0001")
	if r.Entity != w1 {
		t.Errorf("linked to %s, want Wei Wang 0001", g.Name(r.Entity))
	}
}

func TestExportRoundTrip(t *testing.T) {
	d, g, _, err := Load(strings.NewReader(samplePubs))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(&buf, d, g); err != nil {
		t.Fatalf("Export: %v", err)
	}
	d2, g2, st2, err := Load(&buf)
	if err != nil {
		t.Fatalf("reloading export: %v", err)
	}
	if st2.Publications != 3 {
		t.Errorf("round-trip publications = %d", st2.Publications)
	}
	// Structure survives: same author/venue/year object counts and
	// same write degrees.
	if got, want := g2.Stats().ObjectsByTyp["author"], g.Stats().ObjectsByTyp["author"]; got != want {
		t.Errorf("authors = %d, want %d", got, want)
	}
	w1a, _ := g.Lookup(d.Author, "Wei Wang 0001")
	w1b, ok := g2.Lookup(d2.Author, "Wei Wang 0001")
	if !ok {
		t.Fatal("author lost in round trip")
	}
	if g.Degree(d.Write, w1a) != g2.Degree(d2.Write, w1b) {
		t.Error("write degree changed in round trip")
	}
}
