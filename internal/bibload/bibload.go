// Package bibload builds a DBLP-schema heterogeneous information
// network from publication records — the ingestion path a real
// deployment uses instead of the synthetic generator. The input is
// JSON lines, one publication per line:
//
//	{"title": "Mining Frequent Patterns", "authors": ["Wei Wang 0001", "Jiawei Han"],
//	 "venue": "SIGMOD", "year": 1999}
//
// Title terms are stop-word filtered and Porter-stemmed exactly as
// the paper preprocesses DBLP titles (Section 5.1), so term objects
// in the network line up with what document ingestion produces.
package bibload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"shine/internal/hin"
	"shine/internal/textproc"
)

// Publication is one bibliographic record.
type Publication struct {
	// Title is the paper title; its terms become term objects.
	Title string `json:"title"`
	// Authors are the author names, already disambiguated (DBLP-style
	// numeric suffixes distinguish namesakes).
	Authors []string `json:"authors"`
	// Venue is the publication venue name.
	Venue string `json:"venue"`
	// Year is the publication year; 0 omits the year link.
	Year int `json:"year"`
}

// Validate reports the first problem with the record.
func (p Publication) Validate() error {
	if strings.TrimSpace(p.Title) == "" {
		return fmt.Errorf("bibload: publication has no title")
	}
	if len(p.Authors) == 0 {
		return fmt.Errorf("bibload: publication %q has no authors", p.Title)
	}
	for _, a := range p.Authors {
		if strings.TrimSpace(a) == "" {
			return fmt.Errorf("bibload: publication %q has an empty author name", p.Title)
		}
	}
	if p.Year != 0 && (p.Year < 1000 || p.Year > 2999) {
		return fmt.Errorf("bibload: publication %q has implausible year %d", p.Title, p.Year)
	}
	return nil
}

// Stats summarises a load.
type Stats struct {
	Publications int
	// SkippedTerms counts title tokens dropped as stop words or empty
	// stems.
	SkippedTerms int
}

// Load reads JSON-lines publications and builds the network. Records
// failing validation abort the load with a line-numbered error: a
// silently partial network would corrupt every downstream
// probability.
func Load(r io.Reader) (*hin.DBLPSchema, *hin.Graph, Stats, error) {
	d := hin.NewDBLPSchema()
	b := hin.NewBuilder(d.Schema)
	var st Stats

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var pub Publication
		if err := json.Unmarshal([]byte(raw), &pub); err != nil {
			return nil, nil, st, fmt.Errorf("bibload: line %d: %w", line, err)
		}
		if err := pub.Validate(); err != nil {
			return nil, nil, st, fmt.Errorf("bibload: line %d: %w", line, err)
		}
		if err := addPublication(d, b, pub, &st); err != nil {
			return nil, nil, st, fmt.Errorf("bibload: line %d: %w", line, err)
		}
		st.Publications++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, st, fmt.Errorf("bibload: reading input: %w", err)
	}
	if st.Publications == 0 {
		return nil, nil, st, fmt.Errorf("bibload: no publications in input")
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, nil, st, fmt.Errorf("bibload: built graph invalid: %w", err)
	}
	return d, g, st, nil
}

// addPublication inserts one record's objects and links.
func addPublication(d *hin.DBLPSchema, b *hin.Builder, pub Publication, st *Stats) error {
	// Paper object names must be unique; the title alone may recur
	// (reprints), so include a sequence number.
	paper, err := b.AddObject(d.Paper, fmt.Sprintf("%s #%d", pub.Title, st.Publications))
	if err != nil {
		return err
	}
	for _, name := range pub.Authors {
		a, err := b.AddObject(d.Author, strings.Join(strings.Fields(name), " "))
		if err != nil {
			return err
		}
		if err := b.AddLink(d.Write, a, paper); err != nil {
			return err
		}
	}
	if v := strings.TrimSpace(pub.Venue); v != "" {
		venue, err := b.AddObject(d.Venue, v)
		if err != nil {
			return err
		}
		if err := b.AddLink(d.Publish, venue, paper); err != nil {
			return err
		}
	}
	for _, tok := range textproc.Tokenize(pub.Title) {
		if textproc.IsStopWord(tok.Lower) {
			st.SkippedTerms++
			continue
		}
		stem := textproc.NormalizeTerm(tok.Lower)
		if stem == "" {
			st.SkippedTerms++
			continue
		}
		term, err := b.AddObject(d.Term, stem)
		if err != nil {
			return err
		}
		if err := b.AddLink(d.Contain, paper, term); err != nil {
			return err
		}
	}
	if pub.Year != 0 {
		year, err := b.AddObject(d.Year, fmt.Sprintf("%d", pub.Year))
		if err != nil {
			return err
		}
		if err := b.AddLink(d.PublishedIn, paper, year); err != nil {
			return err
		}
	}
	return nil
}

// Export writes a graph's publications back out as JSON lines — the
// inverse of Load, up to term stemming (titles are reconstructed from
// stems). Useful for moving networks between tools and for round-trip
// tests.
func Export(w io.Writer, d *hin.DBLPSchema, g *hin.Graph) error {
	enc := json.NewEncoder(w)
	for _, paper := range g.ObjectsOfType(d.Paper) {
		pub := Publication{Title: g.Name(paper)}
		for _, a := range g.Neighbors(d.WrittenBy, paper) {
			pub.Authors = append(pub.Authors, g.Name(a))
		}
		if vs := g.Neighbors(d.PublishedAt, paper); len(vs) > 0 {
			pub.Venue = g.Name(vs[0])
		}
		if ys := g.Neighbors(d.PublishedIn, paper); len(ys) > 0 {
			year, err := strconv.Atoi(g.Name(ys[0]))
			if err != nil {
				return fmt.Errorf("bibload: exporting %q: year object %q is not an integer: %w",
					pub.Title, g.Name(ys[0]), err)
			}
			pub.Year = year
		}
		if err := enc.Encode(pub); err != nil {
			return fmt.Errorf("bibload: exporting: %w", err)
		}
	}
	return nil
}
